#include <gtest/gtest.h>

#include <algorithm>

#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

// The real-thread runtime must produce exactly the sequential solutions.
// (Timing comes from the virtual driver; these tests demonstrate the
// engine's thread-safety on a genuinely concurrent run.)

std::vector<std::string> seq_solutions(const std::string& name) {
  RunConfig cfg;
  cfg.engine = EngineKind::Seq;
  return run_small(name, cfg).solutions;
}

class ThreadedAndp : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadedAndp, MatchesSequential) {
  const char* name = GetParam();
  std::vector<std::string> expect = seq_solutions(name);
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 4;
  cfg.use_threads = true;
  cfg.lpco = cfg.shallow = cfg.pdo = true;
  for (int round = 0; round < 3; ++round) {
    RunOutcome got = run_small(name, cfg);
    EXPECT_EQ(got.solutions, expect) << name << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, ThreadedAndp,
                         ::testing::Values("map2", "occur", "matrix",
                                           "takeuchi", "hanoi", "quick_sort",
                                           "bt_cluster", "pderiv"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(ThreadedAndpBacktracking, Map1MatchesSequential) {
  std::vector<std::string> expect = seq_solutions("map1");
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 3;
  cfg.use_threads = true;
  RunOutcome got = run_small("map1", cfg);
  EXPECT_EQ(got.solutions, expect);
}

TEST(ThreadedAndpFailure, FailingQueryTerminates) {
  Database db;
  load_library(db);
  db.consult("bad :- (1 =:= 1) & (1 =:= 2).");
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  o.use_threads = true;
  Engine m(db, o);
  EXPECT_TRUE(m.solve("bad.").solutions.empty());
}

TEST(ThreadedAndpStress, RepeatedRunsStable) {
  Database db;
  load_library(db);
  db.consult(R"PL(
fibp(N, F) :- N < 2, !, F = N.
fibp(N, F) :- N1 is N - 1, N2 is N - 2,
    fibp(N1, F1) & fibp(N2, F2), F is F1 + F2.
)PL");
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  o.use_threads = true;
  o.lpco = o.shallow = o.pdo = true;
  for (int i = 0; i < 5; ++i) {
    Engine m(db, o);
    EXPECT_EQ(m.solve("fibp(11, F).").solutions,
              (std::vector<std::string>{"F = 89"}));
  }
}

}  // namespace
}  // namespace ace
