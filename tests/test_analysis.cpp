#include <gtest/gtest.h>

#include "analysis/annotate.hpp"
#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

TEST(Annotate, IndependentGoalsFused) {
  SymbolTable syms;
  auto cas = analyze_program(syms, "p(X, Y) :- q(X), r(Y).");
  ASSERT_EQ(cas.size(), 1u);
  ASSERT_EQ(cas[0].groups.size(), 1u);
  EXPECT_EQ(cas[0].groups[0].size(), 2u);  // q and r fused
}

TEST(Annotate, SharedVariableBlocksFusion) {
  SymbolTable syms;
  auto cas = analyze_program(syms, "p(X, Y) :- q(X, Z), r(Z, Y).");
  ASSERT_EQ(cas.size(), 1u);
  EXPECT_EQ(cas[0].groups.size(), 2u);  // Z flows q -> r: sequential
}

TEST(Annotate, GroundedByIsAllowsFusion) {
  SymbolTable syms;
  auto cas =
      analyze_program(syms, "p(N, A, B) :- M is N + 1, q(M, A), r(M, B).");
  ASSERT_EQ(cas.size(), 1u);
  // After `M is N+1`, M is ground: q and r only share the ground M.
  ASSERT_EQ(cas[0].groups.size(), 2u);  // [is], [q & r]
  EXPECT_EQ(cas[0].groups[1].size(), 2u);
}

TEST(Annotate, BuiltinsStaySequential) {
  SymbolTable syms;
  auto cas = analyze_program(syms, "p(X, Y) :- X = 1, Y = 2.");
  ASSERT_EQ(cas.size(), 1u);
  EXPECT_EQ(cas[0].groups.size(), 2u);
}

TEST(Annotate, FactsPassThrough) {
  SymbolTable syms;
  std::string out = annotate_program(syms, "f(a, 1).\nf(b, 2).");
  EXPECT_NE(out.find("f(a, 1)."), std::string::npos);
  EXPECT_NE(out.find("f(b, 2)."), std::string::npos);
  EXPECT_EQ(out.find("&"), std::string::npos);
}

TEST(Annotate, OutputIsAmpAnnotated) {
  SymbolTable syms;
  std::string out =
      annotate_program(syms, "both(X, Y) :- left(X), right(Y).");
  EXPECT_NE(out.find("left(X) & right(Y)"), std::string::npos);
}

TEST(Annotate, AnnotatedProgramRunsAndMatchesOriginal) {
  // End-to-end: annotate a plain program, run both under the and-parallel
  // engine, compare solutions and check the annotated version actually
  // forked parallel work.
  const std::string plain = R"PL(
fib(N, F) :- N < 2, !, F = N.
fib(N, F) :- N1 is N - 1, N2 is N - 2, fib(N1, F1), fib(N2, F2),
    F is F1 + F2.
)PL";
  SymbolTable scratch;
  std::string annotated = annotate_program(scratch, plain);
  EXPECT_NE(annotated.find("fib(N1, F1) & fib(N2, F2)"), std::string::npos);

  Database db_plain;
  load_library(db_plain);
  db_plain.consult(plain);
  Engine seq(db_plain);
  std::vector<std::string> expect = seq.solve("fib(12, F).", 1).solutions;
  EXPECT_EQ(expect, (std::vector<std::string>{"F = 144"}));

  Database db_ann;
  load_library(db_ann);
  db_ann.consult(annotated);
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  o.lpco = o.shallow = o.pdo = true;
  Engine m(db_ann, o);
  SolveResult r = m.solve("fib(12, F).", 1);
  EXPECT_EQ(r.solutions, expect);
  EXPECT_GT(r.stats.parcall_frames + r.stats.lpco_merges, 0u);
}

TEST(Annotate, RoundtripParsesForWholeCorpus) {
  // The renderer must emit valid source for every workload program.
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    std::string annotated;
    ASSERT_NO_THROW(annotated = annotate_program(syms, w.source)) << w.name;
    Database db;
    EXPECT_NO_THROW(db.consult(annotated)) << w.name << "\n" << annotated;
  }
}

TEST(Determinacy, IndexedPredicatesProvenDet) {
  Database db;
  db.consult(R"PL(
kind(1, one). kind(2, two). kind(3, three).
walk([], done).
walk([_|T], R) :- walk(T, R).
)PL");
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("kind"), 2),
            Determinacy::Det);
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("walk"), 2),
            Determinacy::Det);
}

TEST(Determinacy, OverlappingKeysUnknown) {
  Database db;
  db.consult("t(a, 1). t(a, 2). u(X) :- v(X). u(2).");
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("t"), 2),
            Determinacy::Unknown);
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("u"), 1),
            Determinacy::Unknown);  // var-key clause
}

TEST(Determinacy, DynamicAlwaysUnknown) {
  Database db;
  db.consult(":- dynamic d/1.\nd(1).");
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("d"), 1),
            Determinacy::Unknown);
}

TEST(Determinacy, RuntimeSeesWhatStaticCannot) {
  // The paper's argument for runtime optimizations (§1): tr/2 is
  // statically Unknown (two var-key clauses), but at runtime SHALLOW's
  // check fires per call. Static analysis would annotate no savings here;
  // the runtime counters show the markers that were really needed.
  Database db;
  load_library(db);
  db.consult(R"PL(
tr(X, Y) :- Y is X * 2.
tr(X, Y) :- Y is X * 2 + 1.
go(A, B) :- tr(1, A) & tr(2, B).
)PL");
  EXPECT_EQ(analyze_determinacy(db, db.syms().intern("tr"), 2),
            Determinacy::Unknown);
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 2;
  o.shallow = true;
  Engine m(db, o);
  SolveResult r = m.solve("go(A, B).", 1);
  // tr creates choice points, so markers materialize despite SHALLOW.
  EXPECT_GT(r.stats.input_markers, 0u);
}

}  // namespace
}  // namespace ace
