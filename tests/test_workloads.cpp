#include <gtest/gtest.h>

#include <algorithm>

#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Differential: every and-parallel workload produces exactly the sequential
// solutions, for every optimization combination and several agent counts.

struct AndpCase {
  const char* workload;
  unsigned agents;
  bool lpco, shallow, pdo;
};

class AndpDifferential : public ::testing::TestWithParam<AndpCase> {};

TEST_P(AndpDifferential, MatchesSequential) {
  const AndpCase& c = GetParam();
  RunConfig seq_cfg;
  seq_cfg.engine = EngineKind::Seq;
  RunOutcome expect = run_small(c.workload, seq_cfg);

  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = c.agents;
  cfg.lpco = c.lpco;
  cfg.shallow = c.shallow;
  cfg.pdo = c.pdo;
  RunOutcome got = run_small(c.workload, cfg);

  // And-parallel backtracking preserves sequential order.
  EXPECT_EQ(got.solutions, expect.solutions);
}

std::vector<AndpCase> andp_cases() {
  std::vector<AndpCase> cases;
  const char* names[] = {"map1",      "map2",       "occur",     "matrix",
                         "matrix_bt", "pderiv",     "pderiv_bt", "annotator",
                         "annotator_bt", "takeuchi", "hanoi",    "bt_cluster",
                         "quick_sort", "nrev",      "fib"};
  for (const char* n : names) {
    for (unsigned agents : {1u, 3u}) {
      cases.push_back({n, agents, false, false, false});
      cases.push_back({n, agents, true, true, true});
    }
    cases.push_back({n, 2, true, false, false});
    cases.push_back({n, 2, false, true, false});
    cases.push_back({n, 2, false, false, true});
  }
  return cases;
}

std::string andp_case_name(const ::testing::TestParamInfo<AndpCase>& info) {
  const AndpCase& c = info.param;
  std::string s = c.workload;
  s += "_a" + std::to_string(c.agents);
  if (c.lpco) s += "_lpco";
  if (c.shallow) s += "_shallow";
  if (c.pdo) s += "_pdo";
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AndpDifferential,
                         ::testing::ValuesIn(andp_cases()), andp_case_name);

// ---------------------------------------------------------------------------
// Differential: or-parallel workloads produce the sequential solution SET
// (order may differ across agents).

struct OrpCase {
  const char* workload;
  unsigned agents;
  bool lao;
};

class OrpDifferential : public ::testing::TestWithParam<OrpCase> {};

TEST_P(OrpDifferential, MatchesSequentialSet) {
  const OrpCase& c = GetParam();
  RunConfig seq_cfg;
  seq_cfg.engine = EngineKind::Seq;
  RunOutcome expect = run_small(c.workload, seq_cfg);

  RunConfig cfg;
  cfg.engine = EngineKind::Orp;
  cfg.agents = c.agents;
  cfg.lao = c.lao;
  RunOutcome got = run_small(c.workload, cfg);

  EXPECT_EQ(sorted(got.solutions), sorted(expect.solutions));
}

std::vector<OrpCase> orp_cases() {
  std::vector<OrpCase> cases;
  const char* names[] = {"queens1", "queens2", "puzzle",
                         "ancestors", "members", "maps"};
  for (const char* n : names) {
    for (unsigned agents : {1u, 2u, 4u}) {
      for (bool lao : {false, true}) {
        cases.push_back({n, agents, lao});
      }
    }
  }
  return cases;
}

std::string orp_case_name(const ::testing::TestParamInfo<OrpCase>& info) {
  const OrpCase& c = info.param;
  std::string s = c.workload;
  s += "_a" + std::to_string(c.agents);
  if (c.lao) s += "_lao";
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrpDifferential,
                         ::testing::ValuesIn(orp_cases()), orp_case_name);

// ---------------------------------------------------------------------------
// Sanity facts about the corpus itself.

TEST(Workloads, RegistryComplete) {
  EXPECT_GE(workloads().size(), 16u);
  EXPECT_NO_THROW(workload("matrix"));
  EXPECT_THROW(workload("nonexistent"), AceError);
}

TEST(Workloads, KnownSolutionCounts) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  // queens1(5): 10 solutions; small query uses N=5.
  EXPECT_EQ(run_small("queens1", seq).num_solutions, 10u);
  EXPECT_EQ(run_small("queens2", seq).num_solutions, 10u);
  // 3x3 magic squares: 8 solutions.
  EXPECT_EQ(run_small("puzzle", seq).num_solutions, 8u);
  // descendants of node 16 among 1..255: subtree below 16 has 14 nodes.
  EXPECT_EQ(run_small("ancestors", seq).num_solutions, 14u);
  // members small: 8 values.
  EXPECT_EQ(run_small("members", seq).num_solutions, 8u);
  EXPECT_GT(run_small("maps", seq).num_solutions, 0u);
}

TEST(Workloads, DeterministicBenchesHaveOneSolution) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  for (const char* n : {"map2", "occur", "matrix", "pderiv", "annotator",
                        "takeuchi", "hanoi", "bt_cluster", "quick_sort",
                        "nrev", "fib"}) {
    EXPECT_EQ(run_small(n, seq).num_solutions, 1u) << n;
  }
}

TEST(Workloads, BacktrackingBenchesBacktrack) {
  // The _bt workloads must actually exercise backward execution: rejected
  // seeds unwind the whole parallel call (frames walked, retries taken).
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 2;
  for (const char* n : {"map1", "matrix_bt", "pderiv_bt", "annotator_bt"}) {
    RunOutcome r = run_small(n, cfg);
    EXPECT_GT(r.stats.cp_restores, 0u) << n;
    EXPECT_GT(r.stats.backtrack_frames, 0u) << n;
    EXPECT_GT(r.stats.untrail_ops, 0u) << n;
    EXPECT_EQ(r.num_solutions, 1u) << n;
  }
}

TEST(Workloads, QuickSortSortsCorrectly) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  const Workload& w = workload("quick_sort");
  RunOutcome r = run_workload(w, seq, "quick_sort(30, S).");
  ASSERT_EQ(r.num_solutions, 1u);
  // Verify order by checking through the engine itself.
  Database db;
  load_library(db);
  db.consult(w.source);
  db.consult(R"PL(
sorted_ok([]).
sorted_ok([_]).
sorted_ok([A, B|T]) :- A =< B, sorted_ok([B|T]).
)PL");
  Engine eng(db);
  EXPECT_TRUE(eng.succeeds("quick_sort(30, S), sorted_ok(S), length(S, 30)."));
}

// ---------------------------------------------------------------------------
// Attribution conservation (PR 4). The category sums must exactly partition
// virtual time — no charge may escape or double-count — on every workload,
// at 1, 5 and 10 agents, and enabling the per-predicate feature must not
// perturb the run at all.

RunConfig attrib_cfg(const Workload& w, unsigned agents) {
  RunConfig cfg;
  if (w.and_parallel) {
    cfg.engine = EngineKind::Andp;
    cfg.lpco = cfg.shallow = cfg.pdo = true;
  } else {
    cfg.engine = EngineKind::Orp;
    cfg.lao = true;
  }
  cfg.agents = agents;
  return cfg;
}

TEST(Attribution, CategorySumsPartitionVirtualTimeOnEveryWorkload) {
  for (const Workload& w : workloads()) {
    for (unsigned agents : {1u, 5u, 10u}) {
      RunOutcome out = run_small(w.name, attrib_cfg(w, agents));
      ASSERT_EQ(out.agent_clocks.size(), agents) << w.name << "@" << agents;

      // Conservation: the machine-level rollup equals the summed agent
      // clocks, and work/overhead/idle partition it with no remainder.
      std::uint64_t clock_sum = 0;
      for (std::uint64_t c : out.agent_clocks) clock_sum += c;
      EXPECT_EQ(out.attrib.total(), clock_sum) << w.name << "@" << agents;
      EXPECT_EQ(out.attrib.work() + out.attrib.overhead() + out.attrib.idle(),
                out.attrib.total())
          << w.name << "@" << agents;

      // Makespan shape: or-parallel reports the largest agent clock; the
      // and-parallel makespan is the top-level agent's clock, which helper
      // teardown (charges paid after their last publish) may trail past by
      // a few ticks — but never ahead of it.
      std::uint64_t max_clock =
          *std::max_element(out.agent_clocks.begin(), out.agent_clocks.end());
      if (w.and_parallel) {
        EXPECT_EQ(out.virtual_time, out.agent_clocks[0])
            << w.name << "@" << agents;
        EXPECT_LE(out.virtual_time, max_clock) << w.name << "@" << agents;
      } else {
        EXPECT_EQ(out.virtual_time, max_clock) << w.name << "@" << agents;
      }
      EXPECT_GT(out.attrib.work(), 0u) << w.name << "@" << agents;
    }
  }
}

TEST(Attribution, PerAgentAndPerPredicateRowsPartitionEachClock) {
  for (const char* name : {"map2", "pderiv_bt", "queens1"}) {
    const Workload& w = workload(name);
    RunConfig cfg = attrib_cfg(w, 5);
    cfg.attrib = true;  // enable per-predicate rows

    Database db;
    load_library(db);
    db.consult(w.source);
    Engine eng(db, cfg.engine_config());
    SolveResult r =
        eng.solve(w.small_query, w.all_solutions ? SIZE_MAX : std::size_t{1});

    ASSERT_EQ(r.per_agent_attrib.size(), r.agent_clocks.size()) << name;
    ASSERT_EQ(r.per_agent_preds.size(), r.agent_clocks.size()) << name;
    for (std::size_t i = 0; i < r.agent_clocks.size(); ++i) {
      // Each agent's category sums equal its clock...
      EXPECT_EQ(r.per_agent_attrib[i].total(), r.agent_clocks[i])
          << name << " agent " << i;
      // ...and its per-predicate rows partition the same clock: every
      // charge bills to the current predicate (or the pseudo-entry).
      std::uint64_t pred_sum = 0;
      for (const PredAttrib& row : r.per_agent_preds[i]) {
        pred_sum += row.a.total();
      }
      EXPECT_EQ(pred_sum, r.agent_clocks[i]) << name << " agent " << i;
    }
  }
}

TEST(Attribution, PerPredicateFeatureDoesNotPerturbExecution) {
  for (const Workload& w : workloads()) {
    RunConfig off = attrib_cfg(w, 5);
    RunConfig on = off;
    on.attrib = true;

    RunOutcome base = run_small(w.name, off);
    RunOutcome instrumented = run_small(w.name, on);

    // Bit-identical run: same makespan, same solutions in the same order,
    // same counters, same category breakdown.
    EXPECT_EQ(instrumented.virtual_time, base.virtual_time) << w.name;
    EXPECT_EQ(instrumented.solutions, base.solutions) << w.name;
    EXPECT_EQ(instrumented.stats.resolutions, base.stats.resolutions)
        << w.name;
    EXPECT_EQ(instrumented.stats.steals, base.stats.steals) << w.name;
    EXPECT_EQ(instrumented.agent_clocks, base.agent_clocks) << w.name;
    EXPECT_EQ(instrumented.attrib.at, base.attrib.at) << w.name;
  }
}

}  // namespace
}  // namespace ace
