#include <gtest/gtest.h>

#include <algorithm>

#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Differential: every and-parallel workload produces exactly the sequential
// solutions, for every optimization combination and several agent counts.

struct AndpCase {
  const char* workload;
  unsigned agents;
  bool lpco, shallow, pdo;
};

class AndpDifferential : public ::testing::TestWithParam<AndpCase> {};

TEST_P(AndpDifferential, MatchesSequential) {
  const AndpCase& c = GetParam();
  RunConfig seq_cfg;
  seq_cfg.engine = EngineKind::Seq;
  RunOutcome expect = run_small(c.workload, seq_cfg);

  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = c.agents;
  cfg.lpco = c.lpco;
  cfg.shallow = c.shallow;
  cfg.pdo = c.pdo;
  RunOutcome got = run_small(c.workload, cfg);

  // And-parallel backtracking preserves sequential order.
  EXPECT_EQ(got.solutions, expect.solutions);
}

std::vector<AndpCase> andp_cases() {
  std::vector<AndpCase> cases;
  const char* names[] = {"map1",      "map2",       "occur",     "matrix",
                         "matrix_bt", "pderiv",     "pderiv_bt", "annotator",
                         "annotator_bt", "takeuchi", "hanoi",    "bt_cluster",
                         "quick_sort", "nrev",      "fib"};
  for (const char* n : names) {
    for (unsigned agents : {1u, 3u}) {
      cases.push_back({n, agents, false, false, false});
      cases.push_back({n, agents, true, true, true});
    }
    cases.push_back({n, 2, true, false, false});
    cases.push_back({n, 2, false, true, false});
    cases.push_back({n, 2, false, false, true});
  }
  return cases;
}

std::string andp_case_name(const ::testing::TestParamInfo<AndpCase>& info) {
  const AndpCase& c = info.param;
  std::string s = c.workload;
  s += "_a" + std::to_string(c.agents);
  if (c.lpco) s += "_lpco";
  if (c.shallow) s += "_shallow";
  if (c.pdo) s += "_pdo";
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AndpDifferential,
                         ::testing::ValuesIn(andp_cases()), andp_case_name);

// ---------------------------------------------------------------------------
// Differential: or-parallel workloads produce the sequential solution SET
// (order may differ across agents).

struct OrpCase {
  const char* workload;
  unsigned agents;
  bool lao;
};

class OrpDifferential : public ::testing::TestWithParam<OrpCase> {};

TEST_P(OrpDifferential, MatchesSequentialSet) {
  const OrpCase& c = GetParam();
  RunConfig seq_cfg;
  seq_cfg.engine = EngineKind::Seq;
  RunOutcome expect = run_small(c.workload, seq_cfg);

  RunConfig cfg;
  cfg.engine = EngineKind::Orp;
  cfg.agents = c.agents;
  cfg.lao = c.lao;
  RunOutcome got = run_small(c.workload, cfg);

  EXPECT_EQ(sorted(got.solutions), sorted(expect.solutions));
}

std::vector<OrpCase> orp_cases() {
  std::vector<OrpCase> cases;
  const char* names[] = {"queens1", "queens2", "puzzle",
                         "ancestors", "members", "maps"};
  for (const char* n : names) {
    for (unsigned agents : {1u, 2u, 4u}) {
      for (bool lao : {false, true}) {
        cases.push_back({n, agents, lao});
      }
    }
  }
  return cases;
}

std::string orp_case_name(const ::testing::TestParamInfo<OrpCase>& info) {
  const OrpCase& c = info.param;
  std::string s = c.workload;
  s += "_a" + std::to_string(c.agents);
  if (c.lao) s += "_lao";
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrpDifferential,
                         ::testing::ValuesIn(orp_cases()), orp_case_name);

// ---------------------------------------------------------------------------
// Sanity facts about the corpus itself.

TEST(Workloads, RegistryComplete) {
  EXPECT_GE(workloads().size(), 16u);
  EXPECT_NO_THROW(workload("matrix"));
  EXPECT_THROW(workload("nonexistent"), AceError);
}

TEST(Workloads, KnownSolutionCounts) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  // queens1(5): 10 solutions; small query uses N=5.
  EXPECT_EQ(run_small("queens1", seq).num_solutions, 10u);
  EXPECT_EQ(run_small("queens2", seq).num_solutions, 10u);
  // 3x3 magic squares: 8 solutions.
  EXPECT_EQ(run_small("puzzle", seq).num_solutions, 8u);
  // descendants of node 16 among 1..255: subtree below 16 has 14 nodes.
  EXPECT_EQ(run_small("ancestors", seq).num_solutions, 14u);
  // members small: 8 values.
  EXPECT_EQ(run_small("members", seq).num_solutions, 8u);
  EXPECT_GT(run_small("maps", seq).num_solutions, 0u);
}

TEST(Workloads, DeterministicBenchesHaveOneSolution) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  for (const char* n : {"map2", "occur", "matrix", "pderiv", "annotator",
                        "takeuchi", "hanoi", "bt_cluster", "quick_sort",
                        "nrev", "fib"}) {
    EXPECT_EQ(run_small(n, seq).num_solutions, 1u) << n;
  }
}

TEST(Workloads, BacktrackingBenchesBacktrack) {
  // The _bt workloads must actually exercise backward execution: rejected
  // seeds unwind the whole parallel call (frames walked, retries taken).
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 2;
  for (const char* n : {"map1", "matrix_bt", "pderiv_bt", "annotator_bt"}) {
    RunOutcome r = run_small(n, cfg);
    EXPECT_GT(r.stats.cp_restores, 0u) << n;
    EXPECT_GT(r.stats.backtrack_frames, 0u) << n;
    EXPECT_GT(r.stats.untrail_ops, 0u) << n;
    EXPECT_EQ(r.num_solutions, 1u) << n;
  }
}

TEST(Workloads, QuickSortSortsCorrectly) {
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  const Workload& w = workload("quick_sort");
  RunOutcome r = run_workload(w, seq, "quick_sort(30, S).");
  ASSERT_EQ(r.num_solutions, 1u);
  // Verify order by checking through the engine itself.
  Database db;
  load_library(db);
  db.consult(w.source);
  db.consult(R"PL(
sorted_ok([]).
sorted_ok([_]).
sorted_ok([A, B|T]) :- A =< B, sorted_ok([B|T]).
)PL");
  SeqEngine eng(db);
  EXPECT_TRUE(eng.succeeds("quick_sort(30, S), sorted_ok(S), length(S, 30)."));
}

}  // namespace
}  // namespace ace
