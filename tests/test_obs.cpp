// Observability-layer tests: lock-free ring semantics (wraparound,
// concurrent writers), the disabled-path no-event guarantee, per-query
// span nesting across service -> session -> worker tracks, Chrome
// trace_event export validity, the strict-JSON validator itself, CSV
// export, the slow-query log, and the per-query Counters delta surfaced
// through Engine::query on all three engine kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "obs/ring.hpp"
#include "obs/slowlog.hpp"
#include "obs/timeline.hpp"
#include "serve/service.hpp"

namespace ace {
namespace {

using namespace std::chrono_literals;
using obs::EventKind;
using obs::EventRecord;
using obs::EventRing;
using obs::Recorder;
using obs::TrackSnapshot;

constexpr const char* kProgram = R"PL(
q(1). q(2). q(3).
r(a). r(b).
both(X, Y) :- q(X) & r(Y).
pick(X) :- q(X).
)PL";

EventRecord rec_of(EventKind k, std::uint64_t ts, std::uint64_t a = 0,
                   std::uint64_t b = 0, std::uint64_t qid = 0) {
  EventRecord r;
  r.ts_ns = ts;
  r.a = a;
  r.b = b;
  r.qid = qid;
  r.kind = k;
  return r;
}

// ---------------------------------------------------------------------------
// EventRing.

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, WraparoundKeepsNewestWindowAndCountsDrops) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.push(rec_of(EventKind::Steal, /*ts=*/i, /*a=*/i));
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<EventRecord> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first window of the newest 8 records: a = 12..19.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a, 12u + i);
    EXPECT_EQ(snap[i].ts_ns, 12u + i);
    EXPECT_EQ(snap[i].kind, EventKind::Steal);
  }
}

TEST(EventRing, SnapshotBelowCapacityIsExactAndOrdered) {
  EventRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push(rec_of(EventKind::Solution, i * 100, i, i * 2, /*qid=*/7));
  }
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<EventRecord> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a, i);
    EXPECT_EQ(snap[i].b, 2 * i);
    EXPECT_EQ(snap[i].qid, 7u);
  }
}

TEST(EventRing, ConcurrentWritersLoseNothingBelowCapacity) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  EventRing ring(kThreads * kPerThread);  // rounds up to 4096
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.push(rec_of(EventKind::Steal, i, /*a=*/t, /*b=*/i));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(ring.total(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<EventRecord> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), kThreads * kPerThread);

  // Every record is intact: per-writer counts match and each writer's
  // payload sequence arrives in order (slot claim order is ring order).
  std::vector<std::uint64_t> count(kThreads, 0);
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const EventRecord& r : snap) {
    ASSERT_LT(r.a, kThreads);
    EXPECT_EQ(r.kind, EventKind::Steal);
    ++count[static_cast<std::size_t>(r.a)];
    EXPECT_EQ(r.b, next[static_cast<std::size_t>(r.a)]++);
  }
  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(count[t], kPerThread);
}

// ---------------------------------------------------------------------------
// Recorder: disabled path and track bookkeeping.

TEST(RecorderTest, DisabledRecorderRecordsNothing) {
  Recorder rec;
  obs::Track* t = rec.create_track("t");
  rec.set_enabled(false);
  t->note(EventKind::Solution);
  t->note_qid(EventKind::Steal, 42, 1, 2);
  EXPECT_EQ(rec.total_events(), 0u);
  rec.set_enabled(true);
  t->note(EventKind::Solution);
  EXPECT_EQ(rec.total_events(), 1u);
}

TEST(RecorderTest, DisabledRecorderOnEngineEmitsNoEvents) {
  Database db;
  load_library(db);
  db.consult(kProgram);
  EngineConfig cfg;
  cfg.mode = EngineMode::Andp;
  cfg.agents = 2;
  Engine eng(db, cfg);

  Recorder rec;
  eng.set_recorder(&rec);
  rec.set_enabled(false);
  SolveResult r = eng.solve("both(X, Y).", SIZE_MAX);
  EXPECT_EQ(r.solutions.size(), 6u);
  EXPECT_EQ(rec.total_events(), 0u);  // every note() early-outs

  rec.set_enabled(true);
  eng.solve("both(X, Y).", SIZE_MAX);
  EXPECT_GT(rec.total_events(), 0u);
}

TEST(RecorderTest, TimestampsAreMonotonePerTrack) {
  Recorder rec;
  obs::Track* t = rec.create_track("t");
  for (int i = 0; i < 100; ++i) t->note(EventKind::Solution);
  std::vector<EventRecord> snap = t->ring().snapshot();
  ASSERT_EQ(snap.size(), 100u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].ts_ns, snap[i - 1].ts_ns);
  }
}

// ---------------------------------------------------------------------------
// Per-query spans through the serving stack.

struct TrackIndex {
  const TrackSnapshot* service = nullptr;
  std::vector<const TrackSnapshot*> dispatch;
  std::vector<const TrackSnapshot*> session;
  std::vector<const TrackSnapshot*> agent;
};

TrackIndex index_tracks(const std::vector<TrackSnapshot>& tracks) {
  TrackIndex ix;
  for (const TrackSnapshot& t : tracks) {
    if (t.name == "service") {
      ix.service = &t;
    } else if (t.name.rfind("dispatch", 0) == 0) {
      ix.dispatch.push_back(&t);
    } else if (t.name.rfind("session", 0) == 0) {
      ix.session.push_back(&t);
    } else if (t.name.rfind("agent", 0) == 0) {
      ix.agent.push_back(&t);
    }
  }
  return ix;
}

std::uint64_t ts_of(const TrackSnapshot& t, EventKind k, std::uint64_t qid,
                    bool* found) {
  for (const EventRecord& r : t.records) {
    if (r.kind == k && r.qid == qid) {
      *found = true;
      return r.ts_ns;
    }
  }
  *found = false;
  return 0;
}

TEST(ServeTracing, SpansNestFromServiceThroughSessionToWorkers) {
  Database db;
  load_library(db);
  db.consult(kProgram);

  Recorder rec;
  ServiceOptions sopts;
  sopts.dispatch_threads = 2;
  sopts.obs.recorder = &rec;
  QueryService service(db, sopts);

  QueryRequest req;
  req.query = "both(X, Y).";
  req.engine.mode = EngineMode::Andp;
  req.engine.agents = 2;
  QueryResult resp = service.run(std::move(req));
  ASSERT_TRUE(resp.completed()) << resp.error;
  EXPECT_EQ(resp.outcome, QueryOutcome::Success);
  ASSERT_NE(resp.trace_id, 0u);
  service.shutdown();

  // Keep the snapshot alive: TrackIndex holds pointers into it.
  std::vector<TrackSnapshot> snap = rec.snapshot();
  TrackIndex ix = index_tracks(snap);
  ASSERT_NE(ix.service, nullptr);
  ASSERT_EQ(ix.dispatch.size(), 2u);
  ASSERT_GE(ix.session.size(), 1u);
  ASSERT_GE(ix.agent.size(), 2u);

  const std::uint64_t qid = resp.trace_id;
  bool found = false;

  // Service track: admission bracketing.
  std::uint64_t submit = ts_of(*ix.service, EventKind::Submit, qid, &found);
  ASSERT_TRUE(found);
  std::uint64_t qenter =
      ts_of(*ix.service, EventKind::QueueEnter, qid, &found);
  ASSERT_TRUE(found);
  std::uint64_t qleave =
      ts_of(*ix.service, EventKind::QueueLeave, qid, &found);
  ASSERT_TRUE(found);

  // Dispatch track: exactly one thread served the query.
  std::uint64_t serve_b = 0, serve_e = 0;
  int serving_threads = 0;
  for (const TrackSnapshot* t : ix.dispatch) {
    bool b = false, e = false;
    std::uint64_t tb = ts_of(*t, EventKind::ServeBegin, qid, &b);
    std::uint64_t te = ts_of(*t, EventKind::ServeEnd, qid, &e);
    if (b || e) {
      ASSERT_TRUE(b && e);
      serve_b = tb;
      serve_e = te;
      ++serving_threads;
    }
  }
  ASSERT_EQ(serving_threads, 1);

  // Session track: query/parse/run spans, all under the serve span.
  std::uint64_t query_b = 0, query_e = 0, parse_b = 0, parse_e = 0,
                run_b = 0, run_e = 0;
  bool session_found = false;
  for (const TrackSnapshot* t : ix.session) {
    bool b = false;
    std::uint64_t tb = ts_of(*t, EventKind::QueryBegin, qid, &b);
    if (!b) continue;
    session_found = true;
    query_b = tb;
    query_e = ts_of(*t, EventKind::QueryEnd, qid, &found);
    ASSERT_TRUE(found);
    parse_b = ts_of(*t, EventKind::ParseBegin, qid, &found);
    ASSERT_TRUE(found);
    parse_e = ts_of(*t, EventKind::ParseEnd, qid, &found);
    ASSERT_TRUE(found);
    run_b = ts_of(*t, EventKind::RunBegin, qid, &found);
    ASSERT_TRUE(found);
    run_e = ts_of(*t, EventKind::RunEnd, qid, &found);
    ASSERT_TRUE(found);
  }
  ASSERT_TRUE(session_found);

  // Worker tracks: engine events stamped with the same query id.
  std::size_t agent_events = 0;
  for (const TrackSnapshot* t : ix.agent) {
    for (const EventRecord& r : t->records) {
      if (r.qid == qid) ++agent_events;
    }
  }
  EXPECT_GT(agent_events, 0u);

  // The nesting: submit <= enter <= leave; serve brackets the session
  // spans; parse and run nest inside the query span in order.
  EXPECT_LE(submit, qenter);
  EXPECT_LE(qenter, qleave);
  EXPECT_LE(serve_b, query_b);
  EXPECT_LE(query_b, parse_b);
  EXPECT_LE(parse_b, parse_e);
  EXPECT_LE(parse_e, run_b);
  EXPECT_LE(run_b, run_e);
  EXPECT_LE(run_e, query_e);
  EXPECT_LE(query_e, serve_e);
}

// ---------------------------------------------------------------------------
// Chrome trace_event export.

TEST(ChromeExport, TracedServeRunProducesValidChromeTrace) {
  Database db;
  load_library(db);
  db.consult(kProgram);

  Recorder rec;
  ServiceOptions sopts;
  sopts.dispatch_threads = 2;
  sopts.obs.recorder = &rec;
  QueryService service(db, sopts);

  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.query = i % 2 == 0 ? "both(X, Y)." : "pick(X).";
    if (i % 2 == 0) {
      req.engine.mode = EngineMode::Andp;
      req.engine.agents = 2;
    }
    QueryResult resp = service.run(std::move(req));
    ASSERT_TRUE(resp.completed()) << resp.error;
  }
  service.shutdown();

  std::string json = obs::chrome_trace_json(rec);
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
  // Spot checks: the span names and the track metadata made it through.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"X\""), std::string::npos);
}

TEST(ChromeExport, SimTracerExportsValidChromeTrace) {
  Database db;
  load_library(db);
  db.consult(kProgram);
  EngineConfig cfg;
  cfg.mode = EngineMode::Andp;
  cfg.agents = 2;
  Engine eng(db, cfg);
  Tracer tracer;
  eng.set_tracer(&tracer);
  eng.solve("both(X, Y).", SIZE_MAX);
  ASSERT_GT(tracer.size(), 0u);

  std::string json = obs::chrome_trace_json_from_sim(tracer);
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
}

TEST(ChromeExport, UnbalancedSpansStillValidate) {
  // A begin with no end (query cut off mid-run) must still export as
  // structurally valid Chrome JSON (closed at track end).
  Recorder rec;
  obs::Track* t = rec.create_track("t");
  t->note_qid(EventKind::QueryBegin, 1);
  t->note_qid(EventKind::ParseBegin, 1);
  t->note_qid(EventKind::ParseEnd, 1);
  // RunBegin without RunEnd; QueryEnd missing entirely.
  t->note_qid(EventKind::RunBegin, 1);
  t->note_qid(EventKind::Solution, 1);
  // A stray end with no begin on a second track.
  obs::Track* u = rec.create_track("u");
  u->note_qid(EventKind::RunEnd, 2);

  std::string json = obs::chrome_trace_json(rec);
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
}

TEST(ChromeValidator, RejectsStructurallyBrokenJson) {
  std::string err;
  EXPECT_FALSE(obs::validate_chrome_trace("", &err));
  EXPECT_FALSE(obs::validate_chrome_trace("{", &err));
  EXPECT_FALSE(obs::validate_chrome_trace("[]", &err));  // no traceEvents
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\":{}}", &err));
  // Trailing comma: strict parser refuses.
  EXPECT_FALSE(
      obs::validate_chrome_trace("{\"traceEvents\":[],}", &err));
  // Event missing required keys.
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\"}]}", &err));
  // Unknown phase.
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\",\"pid\":1,"
      "\"tid\":1,\"ts\":0}]}",
      &err));
  // Negative duration.
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":0,\"dur\":-1}]}",
      &err));
  // Non-monotone ts on one tid.
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":5,"
      "\"s\":\"t\"},"
      "{\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":1,"
      "\"s\":\"t\"}]}",
      &err));
  // A well-formed minimal trace passes.
  EXPECT_TRUE(obs::validate_chrome_trace(
      "{\"traceEvents\":["
      "{\"name\":\"p\",\"ph\":\"M\",\"pid\":1,\"tid\":0},"
      "{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,"
      "\"dur\":10},"
      "{\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":4,"
      "\"s\":\"t\"}]}",
      &err))
      << err;
}

TEST(CsvExport, OneLinePerRecordPlusHeader) {
  Recorder rec;
  obs::Track* t = rec.create_track("alpha");
  t->note_qid(EventKind::Solution, 3, 1, 2);
  t->note_qid(EventKind::Steal, 3, 4, 5);
  std::string csv = obs::to_csv(rec);
  EXPECT_NE(csv.find("ts_ns,track,track_name,kind,qid,a,b"),
            std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
  EXPECT_NE(csv.find("solution"), std::string::npos);
  EXPECT_NE(csv.find("steal"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2
}

// ---------------------------------------------------------------------------
// Slow-query log.

QueryResult result_with_latency(std::uint64_t id, std::chrono::microseconds us) {
  QueryResult r;
  r.id = id;
  r.outcome = QueryOutcome::Success;
  r.query = "q" + std::to_string(id) + ".";
  r.latency = us;
  return r;
}

TEST(SlowLog, KeepsSlowestAboveThreshold) {
  obs::SlowLogOptions opts;
  opts.threshold = 100us;
  opts.capacity = 2;
  obs::SlowQueryLog log(opts);
  EXPECT_TRUE(log.enabled());

  log.consider(result_with_latency(1, 50us));    // below threshold
  log.consider(result_with_latency(2, 200us));
  log.consider(result_with_latency(3, 400us));
  log.consider(result_with_latency(4, 300us));   // evicts the 200us entry
  EXPECT_EQ(log.size(), 2u);

  std::vector<QueryResult> snap = log.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, 3u);  // slowest first
  EXPECT_EQ(snap[1].id, 4u);

  std::string rendered = log.render();
  EXPECT_NE(rendered.find("q3."), std::string::npos);
  EXPECT_NE(rendered.find("q4."), std::string::npos);
  EXPECT_EQ(rendered.find("q2."), std::string::npos);
}

TEST(SlowLog, DisabledByDefaultAndCostsNothing) {
  obs::SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  log.consider(result_with_latency(1, std::chrono::microseconds(1 << 20)));
  EXPECT_EQ(log.size(), 0u);
}

TEST(SlowLog, ServiceFeedsTheLog) {
  Database db;
  load_library(db);
  db.consult(kProgram);
  ServiceOptions sopts;
  sopts.dispatch_threads = 1;
  sopts.obs.slowlog.threshold = std::chrono::microseconds(1);  // everything
  QueryService service(db, sopts);
  QueryRequest req;
  req.query = "pick(X).";
  QueryResult resp = service.run(std::move(req));
  ASSERT_TRUE(resp.completed());
  service.shutdown();
  EXPECT_GE(service.slowlog().size(), 1u);
  EXPECT_NE(service.slowlog().render().find("pick(X)."), std::string::npos);
}

TEST(SlowLog, RenderIncludesTopOverheadCategories) {
  obs::SlowLogOptions opts;
  opts.threshold = 1us;
  obs::SlowQueryLog log(opts);

  // A query that carried attribution: five categories, three of which are
  // overhead. Only the top-3 overhead categories appear in the note.
  QueryResult r = result_with_latency(9, 500us);
  r.attrib[CostCat::kUnify] = 400;     // work: contributes to total only
  r.attrib[CostCat::kParcall] = 300;   // overhead #1
  r.attrib[CostCat::kSched] = 200;     // overhead #2
  r.attrib[CostCat::kMarker] = 50;     // overhead #3
  r.attrib[CostCat::kOptCheck] = 10;   // overhead #4: squeezed out of top-3
  log.consider(r);
  // A query with no attribution renders without an overhead note.
  log.consider(result_with_latency(10, 400us));

  std::string out = log.render();
  // 560 overhead / 960 total = 58.3%.
  EXPECT_NE(out.find("ovh=58.3%[parcall:300,sched:200,marker:50]"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("opt_check"), std::string::npos) << out;
  // The attribution-free entry has no "ovh=" on its line.
  std::size_t q10 = out.find("q10.");
  ASSERT_NE(q10, std::string::npos);
  std::size_t line_start = out.rfind('\n', q10);
  ASSERT_NE(line_start, std::string::npos);
  EXPECT_EQ(out.find("ovh=", line_start), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Export robustness across ring states: empty, exactly full, overwritten.

TEST(ChromeExport, EmptyRingExportsValidTraceWithZeroDropped) {
  Recorder rec;
  rec.create_track("idle");
  std::string json = obs::chrome_trace_json(rec);
  EXPECT_NE(json.find("\"droppedEvents\":0,"), std::string::npos) << json;
  EXPECT_EQ(json.find("dropped_events"), std::string::npos) << json;
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
}

TEST(ChromeExport, ExactlyFullRingDropsNothing) {
  obs::RecorderOptions opts;
  opts.ring_capacity = 8;
  Recorder rec(opts);
  obs::Track* t = rec.create_track("t");
  for (std::uint64_t i = 0; i < 8; ++i) {
    t->note_qid(EventKind::Solution, /*qid=*/1, /*a=*/i);
  }
  std::vector<TrackSnapshot> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].dropped, 0u);
  EXPECT_EQ(snap[0].records.size(), 8u);

  std::string json = obs::chrome_trace_json(rec);
  EXPECT_NE(json.find("\"droppedEvents\":0,"), std::string::npos) << json;
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
}

TEST(ChromeExport, OverwrittenRingSurfacesDropsAndStillValidates) {
  obs::RecorderOptions opts;
  opts.ring_capacity = 8;
  Recorder rec(opts);
  obs::Track* t = rec.create_track("t");
  // 22 records into an 8-slot ring: the RunBegin and the first 13
  // solutions are overwritten; the surviving window ends with an orphan
  // RunEnd whose begin partner is gone.
  t->note_qid(EventKind::RunBegin, 1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t->note_qid(EventKind::Solution, 1, i);
  }
  t->note_qid(EventKind::RunEnd, 1);

  std::vector<TrackSnapshot> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].dropped, 14u);
  EXPECT_EQ(snap[0].records.size(), 8u);

  std::string json = obs::chrome_trace_json(rec);
  // Sum over tracks in the header plus a per-track metadata event.
  EXPECT_NE(json.find("\"droppedEvents\":14,"), std::string::npos) << json;
  EXPECT_NE(json.find("dropped_events"), std::string::npos) << json;
  // The orphan RunEnd still appears (degraded, not silently discarded).
  EXPECT_NE(json.find("run_end"), std::string::npos) << json;
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(json, &err)) << err;
}

TEST(ChromeValidator, RejectsNegativeDroppedEvents) {
  std::string err;
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"droppedEvents\":-3,\"traceEvents\":[]}", &err));
  EXPECT_NE(err.find("droppedEvents"), std::string::npos) << err;
  EXPECT_TRUE(obs::validate_chrome_trace(
      "{\"droppedEvents\":3,\"traceEvents\":[]}", &err))
      << err;
}

// ---------------------------------------------------------------------------
// Engine facade: per-query Counters delta on all three engine kinds.

TEST(EngineFacade, PerQueryCountersDeltaOnAllEngineKinds) {
  for (EngineMode mode :
       {EngineMode::Seq, EngineMode::Andp, EngineMode::Orp}) {
    Database db;
    load_library(db);
    db.consult(kProgram);
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.agents = mode == EngineMode::Seq ? 1 : 2;
    Engine eng(db, cfg);

    QueryResult first = eng.query("pick(X).");
    ASSERT_EQ(first.outcome, QueryOutcome::Success)
        << engine_mode_name(mode) << ": " << first.error;
    EXPECT_EQ(first.solutions.size(), 3u);
    EXPECT_GT(first.stats.resolutions, 0u);
    EXPECT_EQ(first.stats.solutions, 3u);
    EXPECT_FALSE(first.engine_reused);

    // Second run on the warm engine: the counters are a fresh per-query
    // delta, not a cumulative total.
    QueryResult second = eng.query("pick(X).");
    ASSERT_EQ(second.outcome, QueryOutcome::Success);
    EXPECT_TRUE(second.engine_reused);
    EXPECT_EQ(second.stats.resolutions, first.stats.resolutions)
        << engine_mode_name(mode);
    EXPECT_EQ(second.stats.solutions, first.stats.solutions);

    // A failing query is an outcome, not an error.
    QueryResult no = eng.query("q(99).");
    EXPECT_EQ(no.outcome, QueryOutcome::Fail);
    EXPECT_TRUE(no.completed());

    // A parse error is an Error outcome with a message, not a throw.
    QueryResult bad = eng.query("p(");
    EXPECT_EQ(bad.outcome, QueryOutcome::Error);
    EXPECT_FALSE(bad.error.empty());
  }
}

TEST(EngineFacade, DescribeAndJsonShape) {
  EngineConfig cfg;
  cfg.mode = EngineMode::Andp;
  cfg.agents = 4;
  cfg.lpco = cfg.shallow = cfg.pdo = true;
  EXPECT_EQ(cfg.describe(), "andp x4 +lpco+shallow+pdo");
  EXPECT_STREQ(engine_mode_name(EngineMode::Orp), "orp");

  Database db;
  load_library(db);
  db.consult(kProgram);
  Engine eng(db);
  QueryResult r = eng.query("pick(X).");
  std::string json = r.to_json();
  EXPECT_NE(json.find("\"v\":2"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"success\""), std::string::npos);
  EXPECT_NE(json.find("\"sols\":3"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(json.find("\"resolutions\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-query wall-clock timelines (obs/timeline.hpp).

TEST(Timeline, ExtractsQidCorrelatedSpansFromSnapshots) {
  Recorder rec;
  obs::Track* t = rec.create_track("svc");
  t->note_qid(EventKind::Submit, 7, /*a=*/1);
  t->note_qid(EventKind::QueueEnter, 7);
  t->note_qid(EventKind::QueueLeave, 7);
  t->note_qid(EventKind::AcquireBegin, 7);
  t->note_qid(EventKind::AcquireEnd, 7, /*a=*/1);
  t->note_qid(EventKind::RenderBegin, 7);
  t->note_qid(EventKind::RenderEnd, 7);
  t->note_qid(EventKind::QueueEnter, 0);  // qid 0: outside any query
  // An engine-internal event: skipped unless explicitly included.
  t->note_qid(EventKind::Steal, 7, 3, 4);
  // A begin left open (in-flight query): closed at the track's last event.
  t->note_qid(EventKind::ParseBegin, 9);
  t->note_qid(EventKind::Solution, 9);

  std::vector<obs::QueryTimeline> tls =
      obs::extract_timelines(rec.snapshot());
  ASSERT_EQ(tls.size(), 2u);  // sorted by qid; qid 0 dropped

  const obs::QueryTimeline& q7 = tls[0];
  EXPECT_EQ(q7.qid, 7u);
  ASSERT_EQ(q7.spans.size(), 3u);  // queued, acquire, render (no Steal)
  EXPECT_EQ(q7.spans[0].name, "queued");
  EXPECT_EQ(q7.spans[1].name, "acquire");
  EXPECT_EQ(q7.spans[2].name, "render");
  ASSERT_EQ(q7.points.size(), 1u);
  EXPECT_EQ(q7.points[0].name, "submit");
  EXPECT_GE(q7.last_ns, q7.first_ns);
  for (const obs::PhaseSpan& s : q7.spans) {
    EXPECT_GE(s.begin_ns, q7.first_ns);
    EXPECT_LE(s.end_ns, q7.last_ns);
    EXPECT_GE(s.end_ns, s.begin_ns);
  }

  const obs::QueryTimeline& q9 = tls[1];
  EXPECT_EQ(q9.qid, 9u);
  ASSERT_EQ(q9.spans.size(), 1u);
  EXPECT_EQ(q9.spans[0].name, "parse");
  // Closed at the track's last timestamp, not dropped.
  EXPECT_EQ(q9.spans[0].end_ns, q9.last_ns);

  // Engine events opt in (the watchdog's detailed view).
  std::vector<obs::QueryTimeline> deep =
      obs::extract_timelines(rec.snapshot(), /*include_engine_events=*/true);
  ASSERT_EQ(deep[0].qid, 7u);
  bool saw_steal = false;
  for (const obs::TimelinePoint& p : deep[0].points) {
    if (p.name == std::string("steal") && p.a == 3 && p.b == 4) {
      saw_steal = true;
    }
  }
  EXPECT_TRUE(saw_steal);

  std::string text = obs::render_timelines_text(tls);
  EXPECT_NE(text.find("recent query timelines (2 shown)"),
            std::string::npos);
  EXPECT_NE(text.find("qid 7"), std::string::npos);
  EXPECT_NE(text.find("queued"), std::string::npos);
  std::string capped = obs::render_timelines_text(tls, 1);
  EXPECT_NE(capped.find("(1 shown)"), std::string::npos);

  std::string detail = obs::render_timeline_detail(q7);
  EXPECT_NE(detail.find("qid 7"), std::string::npos);
  EXPECT_NE(detail.find("span"), std::string::npos);
  EXPECT_NE(detail.find("point"), std::string::npos);
}

TEST(Timeline, ServiceQueriesProduceCompletePhaseTimelines) {
  Database db;
  load_library(db);
  db.consult(kProgram);

  Recorder rec;
  ServiceOptions sopts;
  sopts.dispatch_threads = 2;
  sopts.obs.recorder = &rec;
  QueryService service(db, sopts);
  QueryRequest req;
  req.query = "both(X, Y).";
  QueryResult resp = service.run(std::move(req));
  ASSERT_TRUE(resp.completed()) << resp.error;
  ASSERT_NE(resp.trace_id, 0u);
  service.shutdown();

  std::vector<obs::QueryTimeline> tls =
      obs::extract_timelines(rec.snapshot());
  const obs::QueryTimeline* mine = nullptr;
  for (const obs::QueryTimeline& tl : tls) {
    if (tl.qid == resp.trace_id) mine = &tl;
  }
  ASSERT_NE(mine, nullptr);

  // The serving path stamps every phase of the vocabulary.
  std::set<std::string> names;
  for (const obs::PhaseSpan& s : mine->spans) names.insert(s.name);
  for (const char* want :
       {"queued", "serve", "acquire", "query", "parse", "run", "render"}) {
    EXPECT_EQ(names.count(want), 1u) << want;
  }
  // The acquire span records whether the pool served the checkout.
  for (const obs::PhaseSpan& s : mine->spans) {
    if (s.name == "acquire") EXPECT_LE(s.a, 1u);
  }
}

}  // namespace
}  // namespace ace
