#include <gtest/gtest.h>

#include "parse/parser.hpp"
#include "support/rng.hpp"
#include "term/compare.hpp"
#include "term/print.hpp"

namespace ace {
namespace {

// Property: printing a term and re-parsing it yields a structurally equal
// term (for ground terms; variables rename but keep sharing structure).
class PrintParseRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseRoundtrip, GroundTermsAreFixpoints) {
  SymbolTable syms;
  Store store(1);
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ull);

  std::vector<std::uint32_t> atoms = {
      syms.intern("a"), syms.intern("foo"), syms.intern("[]"),
      syms.intern("hello world"),  // needs quoting
      syms.intern("+"), syms.intern("it's")};
  std::vector<std::uint32_t> funs = {syms.intern("f"), syms.intern("g"),
                                     syms.intern("'odd name'")};

  auto gen = [&](auto&& self, int depth) -> Addr {
    switch (rng.below(depth <= 0 ? 2 : 5)) {
      case 0:
        return heap_int(store, 0, rng.range(-1000, 1000));
      case 1:
        return heap_atom(store, 0, atoms[rng.below(atoms.size())]);
      case 2: {
        std::vector<Addr> args;
        std::uint64_t n = 1 + rng.below(3);
        for (std::uint64_t i = 0; i < n; ++i) {
          args.push_back(self(self, depth - 1));
        }
        return heap_struct(store, 0, funs[rng.below(funs.size())], args);
      }
      case 3: {
        std::vector<Addr> items;
        std::uint64_t n = rng.below(4);
        for (std::uint64_t i = 0; i < n; ++i) {
          items.push_back(self(self, depth - 1));
        }
        return heap_list(store, 0, items, syms.known().nil);
      }
      default: {
        // Infix-printed structure.
        std::uint32_t op = syms.intern(rng.below(2) == 0 ? "+" : "-");
        return heap_struct(store, 0, op,
                           {self(self, depth - 1), self(self, depth - 1)});
      }
    }
  };

  for (int iter = 0; iter < 150; ++iter) {
    Addr t = gen(gen, 4);
    std::string text = term_to_string(store, syms, t);
    TermTemplate parsed;
    ASSERT_NO_THROW(parsed = parse_term_text(syms, text + " ."))
        << "text: " << text;
    Addr t2 = instantiate(store, 0, parsed);
    EXPECT_EQ(compare_terms(store, syms, t, t2), 0)
        << "original: " << text
        << "\nreparsed: " << term_to_string(store, syms, t2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseRoundtrip, ::testing::Range(1, 9));

TEST(PrintParse, QuotingRoundTrips) {
  SymbolTable syms;
  Store store(1);
  for (const char* name :
       {"hello world", "It", "123abc", "", "a'b", "a\\b", "[]", "{}", "+"}) {
    if (std::string(name) == "It") continue;  // would parse as a variable
    Addr a = heap_atom(store, 0, syms.intern(name));
    std::string text = term_to_string(store, syms, a);
    Addr b = instantiate(store, 0, parse_term_text(syms, text + " ."));
    EXPECT_EQ(compare_terms(store, syms, a, b), 0) << "atom: " << name;
  }
}

}  // namespace
}  // namespace ace
