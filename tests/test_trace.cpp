#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

TEST(Trace, RecordsAndpEvents) {
  Database db;
  load_library(db);
  db.consult(workload("occur").source);
  Tracer tracer;
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 3;
  o.lpco = true;
  Engine m(db, o);
  m.set_tracer(&tracer);
  SolveResult r = m.solve("occur(25, Cs).", 1);
  ASSERT_EQ(r.solutions.size(), 1u);
  ASSERT_GT(tracer.size(), 0u);

  bool saw_start = false, saw_complete = false, saw_create = false,
       saw_merge = false, saw_solution = false;
  for (const TraceRecord& rec : tracer.snapshot()) {
    switch (rec.event) {
      case TraceEvent::SlotStart: saw_start = true; break;
      case TraceEvent::SlotComplete: saw_complete = true; break;
      case TraceEvent::ParcallCreate: saw_create = true; break;
      case TraceEvent::LpcoMerge: saw_merge = true; break;
      case TraceEvent::Solution: saw_solution = true; break;
      default: break;
    }
    EXPECT_LT(rec.agent, 3u);
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_create);
  EXPECT_TRUE(saw_merge);
  EXPECT_TRUE(saw_solution);

  // Start/complete counts reconcile with the run's counters.
  std::size_t starts = 0;
  for (const TraceRecord& rec : tracer.snapshot()) {
    if (rec.event == TraceEvent::SlotStart) ++starts;
  }
  EXPECT_EQ(starts, r.stats.fetches + r.stats.steals);
}

TEST(Trace, RecordsOrpSharing) {
  Database db;
  load_library(db);
  db.consult(workload("members").source);
  Tracer tracer;
  EngineConfig o;
  o.mode = EngineMode::Orp;
  o.agents = 4;
  Engine m(db, o);
  m.set_tracer(&tracer);
  SolveResult r = m.solve("members(12, V, R).");
  EXPECT_EQ(r.solutions.size(), 12u);
  bool saw_share = false;
  for (const TraceRecord& rec : tracer.snapshot()) {
    if (rec.event == TraceEvent::Share) saw_share = true;
  }
  EXPECT_TRUE(saw_share);
  // A Share event fires per stack copy; sessions only when a private
  // chain had to be publicized first.
  std::size_t shares = 0;
  for (const TraceRecord& rec : tracer.snapshot()) {
    if (rec.event == TraceEvent::Share) ++shares;
  }
  EXPECT_GE(shares, r.stats.sharing_sessions);
}

TEST(Trace, CsvAndTimelineRender) {
  Database db;
  load_library(db);
  db.consult(workload("takeuchi").source);
  Tracer tracer;
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  Engine m(db, o);
  m.set_tracer(&tracer);
  m.solve("takeuchi(6, 4, 0, A).", 1);

  std::string csv = tracer.to_csv();
  EXPECT_EQ(csv.find("time,agent,event,a,b\n"), 0u);
  EXPECT_NE(csv.find("slot_start"), std::string::npos);

  std::string tl = tracer.timeline(4, 60);
  // Four lanes plus header and legend.
  EXPECT_EQ(std::count(tl.begin(), tl.end(), '\n'), 6);
  EXPECT_NE(tl.find("agent  0 |"), std::string::npos);
  EXPECT_NE(tl.find('#'), std::string::npos);
}

TEST(Trace, NullTracerCostsNothingAndChangesNothing) {
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 3;
  RunOutcome a = run_small("matrix", cfg);

  Database db;
  load_library(db);
  db.consult(workload("matrix").source);
  Tracer tracer;
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 3;
  Engine m(db, o);
  m.set_tracer(&tracer);
  SolveResult b = m.solve(workload("matrix").small_query, 1);
  // Tracing must not perturb virtual time or results.
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.solutions, b.solutions);
}

}  // namespace
}  // namespace ace
