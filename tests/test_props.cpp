// Property-based tests: randomized programs and invariants that must hold
// across engines and optimization flags.
#include <gtest/gtest.h>

#include <algorithm>

#include "builtins/lib.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Random generate-and-test programs: a list of nondeterministic digits and
// an arithmetic filter — heavy backtracking through parallel conjunctions.

class RandomSearchProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomSearchProgram, AllEnginesAgree) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  int len = 3 + static_cast<int>(rng.below(3));          // 3..5 digits
  int fanout = 2 + static_cast<int>(rng.below(2));       // 2..3 choices
  int mod = 3 + static_cast<int>(rng.below(7));          // filter modulus

  std::string src = "digit(X, Y) :- Y is X * 2.\n";
  if (fanout >= 2) src += "digit(X, Y) :- Y is X * 3 + 1.\n";
  if (fanout >= 3) src += "digit(X, Y) :- Y is X + 7.\n";
  src += R"PL(
walk([], []).
walk([H|T], [H2|T2]) :- digit(H, H2) & walk(T, T2).
)PL";
  src += strf(
      "go(Out) :- numlist(1, %d, L), walk(L, Out), sum_list(Out, S), "
      "0 =:= S mod %d.\n",
      len, mod);

  Database db;
  load_library(db);
  db.consult(src);

  Engine seq(db);
  std::vector<std::string> expect = seq.solve("go(Out).").solutions;

  for (unsigned agents : {1u, 3u}) {
    for (bool opts : {false, true}) {
      EngineConfig o;
      o.mode = EngineMode::Andp;
      o.agents = agents;
      o.lpco = o.shallow = o.pdo = opts;
      Engine m(db, o);
      EXPECT_EQ(m.solve("go(Out).").solutions, expect)
          << "agents=" << agents << " opts=" << opts << "\n"
          << src;
    }
  }
  for (bool lao : {false, true}) {
    EngineConfig o;
    o.mode = EngineMode::Orp;
    o.agents = 3;
    o.lao = lao;
    Engine m(db, o);
    EXPECT_EQ(sorted(m.solve("go(Out).").solutions), sorted(expect))
        << "lao=" << lao << "\n"
        << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSearchProgram, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Random sorting inputs through the Prolog engine: output is a sorted
// permutation of the input (checked by Prolog itself).

class SortLaws : public ::testing::TestWithParam<int> {};

TEST_P(SortLaws, QsortSortsRandomLists) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  std::vector<std::string> items;
  int n = 1 + static_cast<int>(rng.below(25));
  for (int i = 0; i < n; ++i) {
    items.push_back(strf("%lld", (long long)rng.range(-50, 50)));
  }
  std::string list = "[" + join(items, ",") + "]";

  Database db;
  load_library(db);
  db.consult(R"PL(
qpartition([], _, [], []).
qpartition([H|T], P, [H|L], G) :- H =< P, !, qpartition(T, P, L, G).
qpartition([H|T], P, L, [H|G]) :- qpartition(T, P, L, G).
qsort([], []).
qsort([P|T], S) :- qpartition(T, P, L, G), qsort(L, SL) & qsort(G, SG),
    append(SL, [P|SG], S).
sorted_ok([]).
sorted_ok([_]).
sorted_ok([A, B|T]) :- A =< B, sorted_ok([B|T]).
count_of(_, [], 0).
count_of(X, [X|T], C) :- !, count_of(X, T, C1), C is C1 + 1.
count_of(X, [_|T], C) :- count_of(X, T, C).
perm_ok(L, S) :- length(L, N), length(S, N),
    forall(member(X, L), (count_of(X, L, C), count_of(X, S, C))).
)PL");

  std::string q = strf("qsort(%s, S), sorted_ok(S), perm_ok(%s, S).",
                       list.c_str(), list.c_str());
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  o.lpco = o.shallow = o.pdo = true;
  Engine m(db, o);
  EXPECT_EQ(m.solve(q, 1).solutions.size(), 1u) << list;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortLaws, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Stats invariants that must hold for any program on any engine config.

class StatsInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(StatsInvariants, CountersAreConsistent) {
  const char* name = GetParam();
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 3;
  cfg.shallow = true;
  RunOutcome r = run_small(name, cfg);

  // Bindings happen before they can be undone (range unwinds may untrail
  // the same entry more than once — by design, unbinding is idempotent —
  // but only after at least one binding existed).
  if (r.stats.untrail_ops > 0) {
    EXPECT_GT(r.stats.trail_entries, 0u);
  }
  // Every slot completion stems from a fetch, a steal, the creator's own
  // first slot, an LPCO merge, a recomputation, or an outside-backtracking
  // resume of the target slot.
  EXPECT_LE(r.stats.slot_completions,
            r.stats.fetches + r.stats.steals + r.stats.parcall_frames +
                r.stats.lpco_merges + r.stats.recomputations +
                r.stats.outside_backtracks);
  // Shallow never produces more markers than slots.
  EXPECT_LE(r.stats.input_markers,
            r.stats.parcall_slots + r.stats.recomputations);
  // Virtual time is positive and at least the resolution charge.
  EXPECT_GE(r.virtual_time, r.stats.resolutions);
}

INSTANTIATE_TEST_SUITE_P(Programs, StatsInvariants,
                         ::testing::Values("map1", "matrix", "occur",
                                           "takeuchi", "quick_sort",
                                           "bt_cluster"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

// ---------------------------------------------------------------------------
// Failure injection: resolution limits abort cleanly on every engine.

TEST(FailureInjection, ResolutionLimitAndp) {
  Database db;
  load_library(db);
  db.consult("spin :- spin & spin.");
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 2;
  o.resolution_limit = 5000;
  Engine m(db, o);
  EXPECT_THROW(m.solve("spin.", 1), AceError);
}

TEST(FailureInjection, ResolutionLimitOrp) {
  Database db;
  load_library(db);
  db.consult("spin :- spin.\nspin :- spin.");
  EngineConfig o;
  o.mode = EngineMode::Orp;
  o.agents = 2;
  o.resolution_limit = 5000;
  Engine m(db, o);
  EXPECT_THROW(m.solve("spin.", 1), AceError);
}

TEST(FailureInjection, TypeErrorSurfacesFromParallelGoal) {
  Database db;
  load_library(db);
  db.consult("bad :- (X is foo) & true.");
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 2;
  Engine m(db, o);
  EXPECT_THROW(m.solve("bad.", 1), AceError);
}

}  // namespace
}  // namespace ace
