// Tests for the abstract-interpretation-driven auto-parallelizer: CGE
// emission, purity barriers, idempotence, differential solution sets
// against the whole workload corpus, kCgeCheck attribution conservation,
// flag-off fingerprint stability, lint fixits and the APL009 advisor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/annotate.hpp"
#include "analysis/lint.hpp"
#include "analysis/purity.hpp"
#include "builtins/lib.hpp"
#include "support/strutil.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

// A program whose fork-point groundness is genuinely undecidable at
// compile time: mk/1 exits with its argument Any (joined ground/free), so
// q and r provably share A only when mk took the free branch.
const char* kUndecidable = R"PL(
main(A) :- mk(A), q(A), r(A).
mk(a).
mk(_).
q(a).
q(X) :- X = b.
r(a).
r(b).
)PL";

AnnotateOptions cge_opts() {
  AnnotateOptions o;
  o.cge = true;
  o.entries.push_back("main(A).");
  return o;
}

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// CGE emission

TEST(Cge, EmittedWhereIndependenceIsUndecidable) {
  SymbolTable syms;
  std::string out = annotate_program(syms, kUndecidable, cge_opts());
  EXPECT_NE(out.find("(ground(A) -> q(A) & r(A) ; q(A), r(A))"),
            std::string::npos)
      << out;
}

TEST(Cge, OffByDefaultKeepsUndecidableSequential) {
  SymbolTable syms;
  AnnotateOptions o;
  o.entries.push_back("main(A).");
  std::string out = annotate_program(syms, kUndecidable, o);
  EXPECT_EQ(out.find("&"), std::string::npos) << out;
  EXPECT_EQ(out.find("indep"), std::string::npos) << out;
}

TEST(Cge, DefinitelyFreeSharedVariableStaysSequential) {
  // Z is definitely free at the fork point: ground(Z) could never succeed,
  // so no CGE is emitted even with --cge.
  SymbolTable syms;
  AnnotateOptions o;
  o.cge = true;
  std::string out =
      annotate_program(syms, "p(X, Y) :- q(X, Z), r(Z, Y).", o);
  EXPECT_EQ(out.find("&"), std::string::npos) << out;
  EXPECT_EQ(out.find("ground"), std::string::npos) << out;
}

TEST(Cge, IndepCheckForMaySharePairs) {
  // w/2 joins an aliasing exit (A = B) with a grounding one, so A and B
  // may share without being the same variable: the guard must be indep/2.
  const char* src = R"PL(
main(A, B) :- w(A, B), p(A), p(B).
w(X, X).
w(a, b).
p(a).
p(b).
)PL";
  SymbolTable syms;
  AnnotateOptions o;
  o.cge = true;
  o.entries.push_back("main(A, B).");
  std::string out = annotate_program(syms, src, o);
  EXPECT_NE(out.find("indep(A, B)"), std::string::npos) << out;
  EXPECT_NE(out.find("p(A) & p(B)"), std::string::npos) << out;
}

TEST(Cge, AnnotatedSolutionsMatchAcrossEngines) {
  SymbolTable syms;
  std::string annotated = annotate_program(syms, kUndecidable, cge_opts());

  Database db_plain;
  load_library(db_plain);
  db_plain.consult(kUndecidable);
  Engine seq(db_plain);
  const std::vector<std::string> expect = seq.solve("main(A).").solutions;
  ASSERT_FALSE(expect.empty());

  for (EngineMode mode : {EngineMode::Seq, EngineMode::Andp,
                          EngineMode::Orp}) {
    Database db;
    load_library(db);
    db.consult(annotated);
    EngineConfig cfg;
    cfg.mode = mode;
    cfg.agents = mode == EngineMode::Seq ? 1 : 4;
    Engine e(db, cfg);
    SolveResult r = e.solve("main(A).");
    EXPECT_EQ(sorted(r.solutions), sorted(expect))
        << "mode " << static_cast<int>(mode);
    if (mode != EngineMode::Seq) {
      // The guard really ran (and was charged to its own category).
      EXPECT_GT(r.stats.cge_checks, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Purity barriers

TEST(Purity, AssertIsABarrier) {
  SymbolTable syms;
  auto cas = analyze_program(
      syms, "main(X, Y) :- p(X), assertz(f(X)), q(Y).\np(1).\nq(2).");
  ASSERT_FALSE(cas.empty());
  // Three singleton groups: the assert may not move or run in parallel.
  EXPECT_EQ(cas[0].groups.size(), 3u);
  for (const auto& g : cas[0].groups) EXPECT_EQ(g.size(), 1u);
}

TEST(Purity, IoAndIndirectEffectsPropagate) {
  SymbolTable syms;
  auto cas = analyze_program(syms, R"PL(
main(X, Y) :- log(X), q(Y).
log(X) :- write(X), nl.
q(2).
)PL");
  ASSERT_FALSE(cas.empty());
  EXPECT_EQ(cas[0].groups.size(), 2u);  // log/1 is impure via write/nl
  EXPECT_EQ(cas[0].goals[0].effects & kEffectIo, kEffectIo);
}

TEST(Purity, TabledCallsStaySequential) {
  SymbolTable syms;
  auto cas = analyze_program(syms, R"PL(
:- table t/1.
main(X, Y) :- t(X), q(Y).
t(1).
q(2).
)PL");
  // cas[0] is the directive; cas[1] is main/2.
  ASSERT_GE(cas.size(), 2u);
  EXPECT_TRUE(cas[0].directive);
  EXPECT_EQ(cas[1].groups.size(), 2u);
  EXPECT_EQ(cas[1].goals[0].effects & kEffectTabled, kEffectTabled);
}

TEST(Purity, FixpointOverMutualRecursion) {
  SymbolTable syms;
  AbsProgram prog = AbsProgram::from_source(syms, R"PL(
a(X) :- b(X).
b(X) :- a(X).
b(X) :- assertz(f(X)).
)PL",
                                            /*include_library=*/false);
  PuritySummary purity = analyze_purity(prog, syms);
  EXPECT_EQ(purity.of(syms.intern("a"), 1) & kEffectDbWrite, kEffectDbWrite);
  EXPECT_EQ(purity.of(syms.intern("b"), 1) & kEffectDbWrite, kEffectDbWrite);
}

// ---------------------------------------------------------------------------
// Idempotence

TEST(Idempotence, DirectivesAndCgeSurviveRoundTrip) {
  SymbolTable syms;
  std::string once = annotate_program(syms, kUndecidable, cge_opts());
  SymbolTable syms2;
  std::string twice = annotate_program(syms2, once, cge_opts());
  EXPECT_EQ(once, twice);
}

TEST(Idempotence, WholeCorpusFixedPoint) {
  // The hand-annotated workload corpus already contains '&' conjunctions;
  // annotating an annotated program must be a fixed point.
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    std::string once = annotate_program(syms, w.source);
    SymbolTable syms2;
    std::string twice = annotate_program(syms2, once);
    EXPECT_EQ(once, twice) << w.name;
  }
}

TEST(Idempotence, DirectivesSurviveAndStayEffective) {
  // Directives are re-printed in the renderer's canonical spacing
  // (`path / 2`), which parses to the same term; the tabling declaration
  // must survive a round trip through the annotator.
  SymbolTable syms;
  std::string out = annotate_program(
      syms, ":- table path/2.\npath(X, Y) :- edge(X, Y).\nedge(a, b).");
  EXPECT_NE(out.find(":- table path / 2."), std::string::npos) << out;

  SymbolTable syms2;
  AbsProgram prog =
      AbsProgram::from_source(syms2, out, /*include_library=*/false);
  EXPECT_TRUE(prog.is_tabled(syms2.intern("path"), 2));
}

// ---------------------------------------------------------------------------
// Differential: auto-annotated solution sets match the original program on
// the whole corpus, across all three engines.

TEST(Differential, AutoAnnotationPreservesSolutionsOnCorpus) {
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    AnnotateOptions opts;
    opts.cge = true;
    opts.entries.push_back(w.small_query);
    std::string annotated;
    ASSERT_NO_THROW(annotated = annotate_program(syms, w.source, opts))
        << w.name;

    Workload rewritten = w;
    rewritten.source = annotated;

    RunConfig seq_cfg;
    const std::vector<std::string> expect =
        sorted(run_workload(w, seq_cfg, w.small_query).solutions);

    for (EngineKind mode : {EngineKind::Seq, EngineKind::Andp,
                            EngineKind::Orp}) {
      RunConfig cfg;
      cfg.engine = mode;
      cfg.agents = mode == EngineKind::Seq ? 1 : 4;
      if (mode == EngineKind::Andp) cfg.lpco = cfg.shallow = cfg.pdo = true;
      if (mode == EngineKind::Orp) cfg.lao = true;
      try {
        RunOutcome out = run_workload(rewritten, cfg, w.small_query);
        EXPECT_EQ(sorted(out.solutions), expect)
            << w.name << " mode " << static_cast<int>(mode);
      } catch (const std::exception& e) {
        FAIL() << w.name << " mode " << static_cast<int>(mode) << ": "
               << e.what() << "\n"
               << annotated;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Attribution: the new kCgeCheck category partitions agent clocks like
// every other category, and stays exactly zero when no guard runs.

TEST(Attribution, CgeCheckCategoryPartitionsAgentClocks) {
  SymbolTable syms;
  std::string annotated = annotate_program(syms, kUndecidable, cge_opts());
  Workload w;
  w.name = "cge_synthetic";
  w.source = annotated;
  w.query = "main(A).";
  w.small_query = "main(A).";
  w.and_parallel = true;
  w.all_solutions = true;

  for (unsigned agents : {1u, 5u, 10u}) {
    RunConfig cfg;
    cfg.engine = EngineKind::Andp;
    cfg.agents = agents;
    cfg.lpco = cfg.shallow = cfg.pdo = true;
    RunOutcome out = run_workload(w, cfg);
    ASSERT_EQ(out.agent_clocks.size(), agents) << agents;

    EXPECT_GT(out.attrib[CostCat::kCgeCheck], 0u) << agents;
    EXPECT_GT(out.stats.cge_checks, 0u) << agents;

    std::uint64_t clock_sum = 0;
    for (std::uint64_t c : out.agent_clocks) clock_sum += c;
    EXPECT_EQ(out.attrib.total(), clock_sum) << agents;
    EXPECT_EQ(out.attrib.work() + out.attrib.overhead() + out.attrib.idle(),
              out.attrib.total())
        << agents;
  }
}

TEST(Attribution, NoGuardsMeansZeroCgeCheckAndUnchangedJson) {
  // Programs without conditional annotations must not pay for the feature:
  // the category stays zero and the counters JSON keeps its shape.
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 5;
  cfg.lpco = cfg.shallow = cfg.pdo = true;
  RunOutcome out = run_small("fib", cfg);
  EXPECT_EQ(out.attrib[CostCat::kCgeCheck], 0u);
  EXPECT_EQ(out.stats.cge_checks, 0u);
  EXPECT_EQ(out.stats.to_json().find("cge_checks"), std::string::npos);
}

TEST(Attribution, RepeatedCgeRunsAreDeterministic) {
  SymbolTable syms;
  std::string annotated = annotate_program(syms, kUndecidable, cge_opts());
  Workload w;
  w.name = "cge_synthetic";
  w.source = annotated;
  w.query = "main(A).";
  w.small_query = "main(A).";
  w.and_parallel = true;
  w.all_solutions = true;
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 5;
  cfg.lpco = cfg.shallow = cfg.pdo = true;
  RunOutcome a = run_workload(w, cfg);
  RunOutcome b = run_workload(w, cfg);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.agent_clocks, b.agent_clocks);
  EXPECT_EQ(a.attrib.at, b.attrib.at);
}

// ---------------------------------------------------------------------------
// Annotator output is APL001-clean (the linter's default analysis agrees
// with the annotator's own proofs), on the corpus and on fuzzed programs.

TEST(LintClean, CorpusAnnotationsPassApl001) {
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    std::string annotated = annotate_program(syms, w.source);
    SymbolTable syms2;
    LintReport rep = lint_program(syms2, annotated);
    EXPECT_EQ(rep.sink.count_code("APL001"), 0u) << w.name << "\n"
                                                 << annotated;
  }
}

// Deterministic random program generator: a pool of defined predicates
// with bodies mixing facts, arithmetic, unifications, shared and private
// variables — shapes that exercise grouping, CGE synthesis and rendering.
std::string fuzz_program(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> d3(0, 2);
  std::uniform_int_distribution<int> d4(0, 3);
  std::string src;
  const int npreds = 3 + d3(rng);
  // Leaf facts every generated goal can call.
  src += "leaf(0, zero).\nleaf(N, s) :- N > 0.\n";
  for (int p = 0; p < npreds; ++p) {
    const std::string name = strf("p%d", p);
    const int ngoals = 2 + d4(rng);
    std::string body;
    std::vector<std::string> vars = {"A", "B", "C", "D"};
    for (int g = 0; g < ngoals; ++g) {
      if (!body.empty()) body += ", ";
      switch (d4(rng)) {
        case 0:
          body += strf("%s is A + %d", vars[1 + d3(rng)].c_str(), g);
          break;
        case 1:
          body += strf("leaf(A, %s)", vars[d4(rng)].c_str());
          break;
        case 2:
          if (p > 0) {
            body += strf("p%d(A, %s)", d3(rng) % p,
                         vars[1 + d3(rng)].c_str());
          } else {
            body += strf("leaf(A, %s)", vars[1 + d3(rng)].c_str());
          }
          break;
        default:
          body += strf("%s = %s", vars[1 + d3(rng)].c_str(),
                       coin(rng) ? "A" : "k");
          break;
      }
    }
    src += strf("%s(A, Out) :- %s.\n", name.c_str(), body.c_str());
    src += strf("%s(0, base).\n", name.c_str());
  }
  src += strf("main(A, Out) :- p%d(A, Out).\n", npreds - 1);
  return src;
}

TEST(LintClean, FuzzedAnnotationsParseAndPassApl001) {
  std::mt19937 rng(0xACEu);
  for (int i = 0; i < 500; ++i) {
    const std::string src = fuzz_program(rng);
    SymbolTable syms;
    AnnotateOptions opts;
    opts.cge = (i % 2) == 1;  // alternate: plain '&' and CGE emission
    std::string annotated;
    ASSERT_NO_THROW(annotated = annotate_program(syms, src, opts))
        << "iteration " << i << "\n"
        << src;

    // Output re-parses...
    Database db;
    ASSERT_NO_THROW(db.consult(annotated)) << "iteration " << i << "\n"
                                           << annotated;
    // ...is APL001-clean under the linter's default analysis...
    SymbolTable syms2;
    LintReport rep = lint_program(syms2, annotated);
    EXPECT_EQ(rep.sink.count_code("APL001"), 0u)
        << "iteration " << i << "\n"
        << annotated << "\n"
        << rep.sink.to_text();
    // ...and annotation is idempotent.
    SymbolTable syms3;
    EXPECT_EQ(annotate_program(syms3, annotated, opts), annotated)
        << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// Lint fixits and the APL009 advisor

TEST(Fixit, Apl007CarriesMachineApplicableTableDirective) {
  const std::string src = R"PL(path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
edge(a, b).
edge(b, c).
edge(a, c).
main(X, Y) :- path(X, Y).
)PL";
  SymbolTable syms;
  LintReport rep = lint_program(syms, src);
  ASSERT_EQ(rep.sink.count_code("APL007"), 1u) << rep.sink.to_text();

  const Diagnostic* d = nullptr;
  for (const Diagnostic& di : rep.sink.all()) {
    if (di.code == "APL007") d = &di;
  }
  ASSERT_NE(d, nullptr);
  ASSERT_GT(d->fixit.line, 0);
  EXPECT_EQ(d->fixit.text, ":- table path/2.");

  // Apply the insertion the way `ace_lint --fix` does and re-lint: the
  // diagnostic must be gone.
  std::vector<std::string> lines;
  std::string cur;
  for (char c : src) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.insert(lines.begin() + (d->fixit.line - 1), d->fixit.text);
  std::string fixed;
  for (const std::string& l : lines) fixed += l + "\n";

  SymbolTable syms2;
  LintReport rep2 = lint_program(syms2, fixed);
  EXPECT_EQ(rep2.sink.count_code("APL007"), 0u) << rep2.sink.to_text();
  EXPECT_EQ(rep2.sink.count_code("APL001"), 0u);
}

TEST(Apl009, FiresOnlyUnderPedanticAsNote) {
  const std::string src = "main(X, Y) :- left(X), right(Y).\nleft(1).\n"
                          "right(2).\n";
  SymbolTable syms;
  LintOptions opts;
  LintReport quiet = lint_program(syms, src, opts);
  EXPECT_EQ(quiet.sink.count_code("APL009"), 0u);

  opts.pedantic = true;
  SymbolTable syms2;
  LintReport rep = lint_program(syms2, src, opts);
  ASSERT_EQ(rep.sink.count_code("APL009"), 1u) << rep.sink.to_text();
  for (const Diagnostic& d : rep.sink.all()) {
    if (d.code == "APL009") {
      EXPECT_EQ(d.severity, Severity::Note);
      EXPECT_NE(d.message.find("left/1 & right/1"), std::string::npos);
    }
  }
  // Notes never trip --Werror (which promotes Warnings only).
  EXPECT_EQ(rep.warnings(), 0u);
}

TEST(Apl009, QuietOnAlreadyAnnotatedCode) {
  SymbolTable syms;
  LintOptions opts;
  opts.pedantic = true;
  LintReport rep = lint_program(
      syms, "main(X, Y) :- left(X) & right(Y).\nleft(1).\nright(2).\n",
      opts);
  EXPECT_EQ(rep.sink.count_code("APL009"), 0u) << rep.sink.to_text();
}

// ---------------------------------------------------------------------------
// indep/2 runtime semantics

TEST(IndepBuiltin, RuntimeSemantics) {
  Database db;
  load_library(db);
  db.consult("ok1 :- indep(f(X), g(Y)), q(X, Y).\n"
             "ok2(X) :- X = stuff, indep(X, X).\n"
             "no(X) :- indep(f(X, a), g(b, X)).\n"
             "q(1, 2).\n");
  Engine e(db);
  EXPECT_EQ(e.solve("ok1.", 1).solutions.size(), 1u);   // disjoint vars
  EXPECT_EQ(e.solve("ok2(X).", 1).solutions.size(), 1u);  // ground both sides
  EXPECT_TRUE(e.solve("no(X).", 1).solutions.empty());  // shared unbound X
}

TEST(IndepBuiltin, UserDefinitionTakesPrecedence) {
  // indep/2 postdates user programs (the annotator corpus workload defines
  // its own version-disjointness indep/2): a program-level definition must
  // keep its semantics instead of being shadowed by the CGE-guard builtin.
  Database db;
  load_library(db);
  db.consult("indep(g(A), g(B)) :- A =\\= B.\n"
             "t1 :- indep(g(1), g(2)).\n"
             "t2 :- indep(g(3), g(3)).\n");
  Engine e(db);
  EXPECT_TRUE(e.succeeds("t1."));
  // Both args are ground, so the *builtin* would succeed; the user
  // definition must fail here.
  EXPECT_FALSE(e.succeeds("t2."));

  // And the annotator never emits indep/2 guards into such a program.
  SymbolTable syms;
  AnnotateOptions o;
  o.cge = true;
  o.entries.push_back("main(A, B).");
  std::string out = annotate_program(syms,
                                     "main(A, B) :- w(A, B), p(A), p(B).\n"
                                     "w(X, X).\nw(a, b).\np(a).\np(b).\n"
                                     "indep(g(A), g(B)) :- A =\\= B.\n",
                                     o);
  EXPECT_EQ(out.find("indep(A, B)"), std::string::npos) << out;
}

}  // namespace
}  // namespace ace
