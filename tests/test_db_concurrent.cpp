// Concurrency contract of the epoch-reclaimed clause database.
//
// Covers the db::Snapshot read API end to end: readers pinning snapshots
// against concurrent writers (run under TSan/ASan in CI), stability of a
// pinned PredIndex view across publications, epoch reclamation draining
// the limbo list exactly when the last pin releases, the precision of the
// implicit StaticFacts invalidation and of TableSpace dependency
// invalidation (mutating p/N must not touch facts or tables that do not
// depend on p/N), and the hook-reentrancy guarantee: a change hook runs
// outside the writer lock and may call back into any Database entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/static_facts.hpp"
#include "db/database.hpp"
#include "db/snapshot.hpp"
#include "parse/parser.hpp"
#include "tab/table_space.hpp"

namespace ace {
namespace {

TermTemplate tt(Database& db, const std::string& src) {
  return parse_term_text(db.syms(), src);
}

// ---------------------------------------------------------------------------
// Readers vs writers: snapshots are never torn.

// Reader threads hammer find() + one view() per iteration while the main
// thread asserts and retracts. Every invariant violation is recorded in an
// atomic flag (gtest macros are not reliable off the main thread); memory
// safety of the retired versions is what ASan/TSan check in CI.
TEST(DbConcurrentTest, ReadersNeverTearWhileWritersPublish) {
  Database db;
  db.consult("p(0, seed).");
  const std::uint32_t psym = db.syms().intern("p");

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::atomic<std::uint64_t> reads{0};

  const unsigned kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      db::Snapshot snap(db);
      const IndexKey any{IndexKey::Kind::AnyCall, 0};
      while (!stop.load(std::memory_order_relaxed)) {
        const Predicate* p = snap.find(psym, 2);
        if (p == nullptr) {
          ok.store(false);
          break;
        }
        // One view per scoped operation: candidates, clause access and the
        // generation must all be mutually consistent within it.
        const PredIndex& ix = snap.view(*p);
        const std::vector<std::uint32_t>& cand = ix.candidates(any);
        std::uint32_t prev = 0;
        bool first = true;
        for (std::uint32_t o : cand) {
          if (o >= ix.num_clauses() || (!first && o <= prev)) {
            ok.store(false);
            break;
          }
          const Clause& c = ix.clause(o);
          if (c.retracted || c.head_sym != psym || c.head_arity != 2) {
            ok.store(false);
            break;
          }
          prev = o;
          first = false;
        }
        // Registry enumeration races the writer's root swaps too.
        const std::size_t n = snap.num_predicates();
        for (std::size_t i = 0; i < n; ++i) {
          if (snap.predicate_at(i) == nullptr) ok.store(false);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        snap.refresh();  // safe point: all references above are dead
      }
    });
  }

  // Writer: grow p/2, tombstone every third clause, and register brand-new
  // predicates so the registry root is republished as well.
  std::uint32_t last_ordinal = 0;
  for (int i = 1; i <= 300; ++i) {
    db.add_clause(tt(db, "p(" + std::to_string(i) + ", v)."));
    ++last_ordinal;
    if (i % 3 == 0) db.retract_clause(psym, 2, last_ordinal - 1);
    if (i % 50 == 0) db.consult("extra_" + std::to_string(i) + "(x).");
  }

  stop.store(true);
  for (std::thread& th : readers) th.join();

  EXPECT_TRUE(ok.load());
  EXPECT_GT(reads.load(), 0u);
  // With every pin gone, one more publication reclaims all retired
  // versions.
  db.add_clause(tt(db, "p(999, tail)."));
  EXPECT_EQ(db.limbo_size(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot stability: a pinned view is immutable across publications.

TEST(DbConcurrentTest, PinnedViewSurvivesPublications) {
  Database db;
  db.consult("s(1). s(2).");
  const Predicate* p = db.find(db.syms().intern("s"), 1);
  ASSERT_NE(p, nullptr);

  db::Snapshot snap(db);
  const PredIndex& old_ix = snap.view(*p);
  const std::uint64_t old_gen = old_ix.generation();
  ASSERT_EQ(old_ix.num_clauses(), 2u);

  db.add_clause(tt(db, "s(3)."));
  db.add_clause(tt(db, "s(4)."));

  // The retired version is parked behind our pin: still allocated and
  // bit-for-bit what it was at publication time.
  const IndexKey any{IndexKey::Kind::AnyCall, 0};
  EXPECT_EQ(old_ix.generation(), old_gen);
  EXPECT_EQ(old_ix.num_clauses(), 2u);
  EXPECT_EQ(old_ix.candidates(any), (std::vector<std::uint32_t>{0, 1}));

  // A fresh view through the same (still-pinned) snapshot sees the latest
  // published state — a pin buys memory validity, not staleness.
  const PredIndex& new_ix = snap.view(*p);
  EXPECT_EQ(new_ix.num_clauses(), 4u);
  EXPECT_GT(new_ix.generation(), old_gen);

  EXPECT_GE(db.limbo_size(), 2u);
}

// ---------------------------------------------------------------------------
// Epoch reclamation: limbo drains exactly when the last pin releases.

TEST(DbConcurrentTest, EpochReclamationDrainsWhenLastPinReleases) {
  Database db;
  db.consult("e(0).");
  const std::size_t live0 = PredIndex::live_count();
  // No pinned reader: every publication reclaims its own retired version.
  EXPECT_EQ(db.limbo_size(), 0u);

  {
    db::Snapshot snap(db);
    for (int i = 1; i <= 8; ++i)
      db.add_clause(tt(db, "e(" + std::to_string(i) + ")."));
    // All eight retired versions are held alive by the pin.
    EXPECT_EQ(db.limbo_size(), 8u);
    EXPECT_EQ(PredIndex::live_count(), live0 + 8);

    // refresh() moves the pin past the retired epochs; the next
    // publication may then free them.
    snap.refresh();
    db.add_clause(tt(db, "e(100)."));
    EXPECT_EQ(db.limbo_size(), 1u);  // only the newest retiree remains
  }

  // Pin fully released: the next publication drains the limbo list and the
  // live-version count returns to one per predicate.
  db.add_clause(tt(db, "e(101)."));
  EXPECT_EQ(db.limbo_size(), 0u);
  EXPECT_EQ(PredIndex::live_count(), live0);
}

// ---------------------------------------------------------------------------
// StaticFacts invalidation precision: only the mutated predicate's facts
// are dropped (a fresh PredIndex starts with a zero facts word).

TEST(DbConcurrentTest, StaticFactsInvalidationIsPerPredicate) {
  Database db;
  db.consult("p(1). p(2). q(a). q(b).");
  compute_static_facts(db);

  const Predicate* p = db.find(db.syms().intern("p"), 1);
  const Predicate* q = db.find(db.syms().intern("q"), 1);
  ASSERT_NE(p, nullptr);
  ASSERT_NE(q, nullptr);
  ASSERT_TRUE(p->static_facts() & StaticFacts::kValid);
  ASSERT_TRUE(q->static_facts() & StaticFacts::kValid);
  const std::uint32_t q_bits = q->static_facts();

  // Assert into p/1: p's facts are implicitly invalidated, q's survive.
  db.add_clause(tt(db, "p(3)."));
  EXPECT_EQ(p->static_facts(), 0u);
  EXPECT_EQ(q->static_facts(), q_bits);

  // Same for retract.
  compute_static_facts(db);
  ASSERT_TRUE(p->static_facts() & StaticFacts::kValid);
  EXPECT_TRUE(db.retract_clause(db.syms().intern("p"), 1, 2));
  EXPECT_EQ(p->static_facts(), 0u);
  EXPECT_EQ(q->static_facts(), q_bits);
}

// ---------------------------------------------------------------------------
// TableSpace invalidation precision: mutating a dependency drops exactly
// the tables derived from it.

TEST(DbConcurrentTest, TableInvalidationIsPerDependency) {
  Database db;
  db.consult("edge(1, 2). link(a, b).");
  tab::TableSpace space(&db);

  auto table_on = [&](const std::string& key, const char* dep) {
    auto t = std::make_shared<tab::CompletedTable>();
    t->key = key;
    t->sym = db.syms().intern(key.substr(0, key.find('(')));
    t->arity = 2;
    const std::uint32_t dsym = db.syms().intern(dep);
    const Predicate* dp = db.find(dsym, 2);
    t->deps.push_back(tab::TableDep{dsym, 2, dp->generation()});
    return t;
  };
  space.insert(table_on("path(A,B)", "edge"));
  space.insert(table_on("rel(A,B)", "link"));
  ASSERT_EQ(space.stats().entries, 2u);

  // Assert into edge/2: the change hook must drop the edge-dependent table
  // and nothing else.
  db.add_clause(tt(db, "edge(2, 3)."));
  EXPECT_EQ(space.lookup("path(A,B)"), nullptr);
  EXPECT_NE(space.lookup("rel(A,B)"), nullptr);
  tab::TableSpace::Stats st = space.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.invalidations, 1u);

  // Retract from link/2: now the link-dependent table goes too.
  EXPECT_TRUE(db.retract_clause(db.syms().intern("link"), 2, 0));
  EXPECT_EQ(space.lookup("rel(A,B)"), nullptr);
  EXPECT_EQ(space.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Hook reentrancy: change hooks run outside the writer lock, so a hook may
// call straight back into the Database without deadlocking; the nested
// mutation's event folds into the outer drain.

TEST(DbConcurrentTest, HookCallingBackIntoDatabaseDoesNotDeadlock) {
  Database db;
  std::vector<std::pair<std::uint32_t, unsigned>> events;
  std::atomic<int> fired{0};

  const std::uint64_t id =
      db.add_change_hook([&](std::uint32_t sym, unsigned arity) {
        events.emplace_back(sym, arity);
        if (fired.fetch_add(1) == 0) {
          // Re-entrant mutation: would deadlock if hooks were dispatched
          // under the writer lock.
          db.add_clause(tt(db, "nested(1)."));
          // The nested clause is already published (only its hook event is
          // deferred), and snapshot reads are legal from inside a hook.
          db::Snapshot snap(db);
          const Predicate* n = snap.find(db.syms().intern("nested"), 1);
          EXPECT_NE(n, nullptr);
          if (n != nullptr) EXPECT_EQ(snap.view(*n).num_clauses(), 1u);
        }
      });

  db.add_clause(tt(db, "outer(1)."));

  // Both the outer and the nested mutation were dispatched, in order.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, db.syms().intern("outer"));
  EXPECT_EQ(events[0].second, 1u);
  EXPECT_EQ(events[1].first, db.syms().intern("nested"));
  EXPECT_EQ(events[1].second, 1u);

  db.remove_change_hook(id);
  db.add_clause(tt(db, "outer(2)."));
  EXPECT_EQ(events.size(), 2u);  // removed hooks never fire again
}

// ---------------------------------------------------------------------------
// Concurrent hooks: a writer thread mutating while another thread reads
// through snapshots must keep the TableSpace hook path race-free (TSan).

TEST(DbConcurrentTest, ConcurrentWritersWithTableSpaceHook) {
  Database db;
  db.consult("base(0).");
  tab::TableSpace space(&db);
  const std::uint32_t bsym = db.syms().intern("base");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    db::Snapshot snap(db);
    const IndexKey any{IndexKey::Kind::AnyCall, 0};
    while (!stop.load(std::memory_order_relaxed)) {
      const Predicate* p = snap.find(bsym, 1);
      if (p != nullptr) (void)snap.view(*p).candidates(any).size();
      snap.refresh();
    }
  });

  for (int i = 1; i <= 200; ++i) {
    auto t = std::make_shared<tab::CompletedTable>();
    t->key = "k" + std::to_string(i);
    t->sym = bsym;
    t->arity = 1;
    t->deps.push_back(tab::TableDep{bsym, 1, 0});
    space.insert(std::move(t));
    db.add_clause(tt(db, "base(" + std::to_string(i) + ")."));
  }

  stop.store(true);
  reader.join();

  // Every insert was invalidated by the very next assert.
  tab::TableSpace::Stats st = space.stats();
  EXPECT_EQ(st.inserts, 200u);
  EXPECT_EQ(st.invalidations, 200u);
  EXPECT_EQ(st.entries, 0u);
}

}  // namespace
}  // namespace ace
