#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace ace {
namespace {

// Builtin behaviour is exercised through the sequential engine: each test
// runs a query and checks the solutions.
class BuiltinTest : public ::testing::Test {
 protected:
  BuiltinTest() { load_library(db); }

  std::vector<std::string> solve(const std::string& q,
                                 std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }
  bool succeeds(const std::string& q) {
    Engine eng(db);
    return eng.succeeds(q);
  }
  std::string output_of(const std::string& q) {
    Engine eng(db);
    return eng.solve(q, 1).output;
  }

  Database db;
};

TEST_F(BuiltinTest, TrueFail) {
  EXPECT_TRUE(succeeds("true."));
  EXPECT_FALSE(succeeds("fail."));
  EXPECT_FALSE(succeeds("false."));
}

TEST_F(BuiltinTest, Unify) {
  EXPECT_EQ(solve("X = 42."), (std::vector<std::string>{"X = 42"}));
  EXPECT_EQ(solve("f(X, b) = f(a, Y)."),
            (std::vector<std::string>{"X = a, Y = b"}));
  EXPECT_FALSE(succeeds("a = b."));
}

TEST_F(BuiltinTest, NotUnify) {
  EXPECT_TRUE(succeeds("a \\= b."));
  EXPECT_FALSE(succeeds("X \\= a."));  // X unifies with a
  // \= must not leave bindings behind.
  EXPECT_EQ(solve("( X \\= a ; X = ok )."),
            (std::vector<std::string>{"X = ok"}));
}

TEST_F(BuiltinTest, TermComparison) {
  EXPECT_TRUE(succeeds("f(a) == f(a)."));
  EXPECT_FALSE(succeeds("f(a) == f(b)."));
  EXPECT_TRUE(succeeds("f(a) \\== f(b)."));
  EXPECT_TRUE(succeeds("1 @< a."));
  EXPECT_TRUE(succeeds("a @< f(a)."));
  EXPECT_TRUE(succeeds("f(a) @=< f(a)."));
  EXPECT_TRUE(succeeds("b @> a."));
  EXPECT_TRUE(succeeds("X == X."));
  EXPECT_FALSE(succeeds("X == Y."));
}

TEST_F(BuiltinTest, TypeTests) {
  EXPECT_TRUE(succeeds("var(X)."));
  EXPECT_FALSE(succeeds("X = 1, var(X)."));
  EXPECT_TRUE(succeeds("nonvar(foo)."));
  EXPECT_TRUE(succeeds("atom(foo)."));
  EXPECT_FALSE(succeeds("atom(f(x))."));
  EXPECT_FALSE(succeeds("atom(1)."));
  EXPECT_TRUE(succeeds("atom([])."));
  EXPECT_TRUE(succeeds("integer(42)."));
  EXPECT_TRUE(succeeds("atomic(foo), atomic(42)."));
  EXPECT_FALSE(succeeds("atomic(f(x))."));
  EXPECT_TRUE(succeeds("compound(f(x)), compound([a])."));
  EXPECT_FALSE(succeeds("compound(foo)."));
  EXPECT_TRUE(succeeds("ground(f(a, [1, 2]))."));
  EXPECT_FALSE(succeeds("ground(f(a, X))."));
}

TEST_F(BuiltinTest, Arithmetic) {
  EXPECT_EQ(solve("X is 2 + 3 * 4."), (std::vector<std::string>{"X = 14"}));
  EXPECT_EQ(solve("X is (2 + 3) * 4."), (std::vector<std::string>{"X = 20"}));
  EXPECT_EQ(solve("X is 7 // 2."), (std::vector<std::string>{"X = 3"}));
  EXPECT_EQ(solve("X is 7 mod 3."), (std::vector<std::string>{"X = 1"}));
  EXPECT_EQ(solve("X is -7 mod 3."), (std::vector<std::string>{"X = 2"}));
  EXPECT_EQ(solve("X is -(3)."), (std::vector<std::string>{"X = -3"}));
  EXPECT_EQ(solve("X is abs(-9)."), (std::vector<std::string>{"X = 9"}));
  EXPECT_EQ(solve("X is min(3, 5) + max(3, 5)."),
            (std::vector<std::string>{"X = 8"}));
  EXPECT_EQ(solve("X is 2 ** 10."), (std::vector<std::string>{"X = 1024"}));
  EXPECT_EQ(solve("X is 5 /\\ 3, Y is 5 \\/ 3, Z is 5 xor 3."),
            (std::vector<std::string>{"X = 1, Y = 7, Z = 6"}));
  EXPECT_EQ(solve("X is 1 << 4, Y is 32 >> 2."),
            (std::vector<std::string>{"X = 16, Y = 8"}));
  EXPECT_EQ(solve("X is sign(-3) + sign(0) + sign(9)."),
            (std::vector<std::string>{"X = 0"}));
}

TEST_F(BuiltinTest, ArithmeticErrors) {
  EXPECT_THROW(succeeds("X is 1 / 0."), AceError);
  EXPECT_THROW(succeeds("X is Y + 1."), AceError);
  EXPECT_THROW(succeeds("X is foo."), AceError);
  EXPECT_THROW(succeeds("X is 2 ** -1."), AceError);
}

TEST_F(BuiltinTest, ArithmeticComparisons) {
  EXPECT_TRUE(succeeds("1 + 1 =:= 2."));
  EXPECT_TRUE(succeeds("3 =\\= 4."));
  EXPECT_TRUE(succeeds("2 < 3, 3 > 2, 2 =< 2, 3 >= 3."));
  EXPECT_FALSE(succeeds("3 < 2."));
}

TEST_F(BuiltinTest, Functor) {
  EXPECT_EQ(solve("functor(f(a, b), N, A)."),
            (std::vector<std::string>{"N = f, A = 2"}));
  EXPECT_EQ(solve("functor(foo, N, A)."),
            (std::vector<std::string>{"N = foo, A = 0"}));
  EXPECT_EQ(solve("functor(42, N, A)."),
            (std::vector<std::string>{"N = 42, A = 0"}));
  EXPECT_EQ(solve("functor([a], N, A)."),
            (std::vector<std::string>{"N = ., A = 2"}));
  EXPECT_EQ(solve("functor(T, f, 2).").size(), 1u);
  EXPECT_TRUE(succeeds("functor(T, f, 2), T = f(_, _)."));
  EXPECT_TRUE(succeeds("functor(T, foo, 0), T == foo."));
}

TEST_F(BuiltinTest, Arg) {
  EXPECT_EQ(solve("arg(2, f(a, b, c), X)."),
            (std::vector<std::string>{"X = b"}));
  EXPECT_FALSE(succeeds("arg(4, f(a, b, c), X)."));
  EXPECT_FALSE(succeeds("arg(0, f(a), X)."));
  EXPECT_EQ(solve("arg(1, [h|t], X)."), (std::vector<std::string>{"X = h"}));
}

TEST_F(BuiltinTest, Univ) {
  EXPECT_EQ(solve("f(a, b) =.. L."),
            (std::vector<std::string>{"L = [f,a,b]"}));
  EXPECT_EQ(solve("foo =.. L."), (std::vector<std::string>{"L = [foo]"}));
  EXPECT_EQ(solve("T =.. [g, 1, 2]."),
            (std::vector<std::string>{"T = g(1,2)"}));
  EXPECT_EQ(solve("T =.. [foo]."), (std::vector<std::string>{"T = foo"}));
  EXPECT_TRUE(succeeds("[a] =.. ['.', a, []]."));
}

TEST_F(BuiltinTest, CopyTerm) {
  EXPECT_TRUE(succeeds("copy_term(f(X, X, Y), f(A, B, C)), A == B, A \\== C."));
  EXPECT_EQ(solve("copy_term(f(1, a), T)."),
            (std::vector<std::string>{"T = f(1,a)"}));
}

TEST_F(BuiltinTest, Findall) {
  db.consult("n(1). n(2). n(3).");
  EXPECT_EQ(solve("findall(X, n(X), L)."),
            (std::vector<std::string>{"L = [1,2,3]"}));
  EXPECT_EQ(solve("findall(X - Y, (n(X), n(Y), X < Y), L)."),
            (std::vector<std::string>{"L = [(1 - 2),(1 - 3),(2 - 3)]"}));
  EXPECT_EQ(solve("findall(X, fail, L)."),
            (std::vector<std::string>{"L = []"}));
  // Nested findall.
  EXPECT_EQ(solve("findall(L1, (n(X), findall(Y, n(Y), L1)), L)."),
            (std::vector<std::string>{"L = [[1,2,3],[1,2,3],[1,2,3]]"}));
  // Rollback: bindings made inside do not escape.
  EXPECT_EQ(solve("findall(X, n(X), L), var(X), X = ok."),
            (std::vector<std::string>{"X = ok, L = [1,2,3]"}));
}

TEST_F(BuiltinTest, AssertRetract) {
  db.consult(":- dynamic fact/1.\nseed(10).");
  EXPECT_EQ(solve("assert(fact(1)), assert(fact(2)), findall(X, fact(X), L)."),
            (std::vector<std::string>{"L = [1,2]"}));
}

TEST_F(BuiltinTest, AssertA) {
  db.consult(":- dynamic fct/1.");
  EXPECT_EQ(
      solve("assert(fct(1)), asserta(fct(0)), findall(X, fct(X), L)."),
      (std::vector<std::string>{"L = [0,1]"}));
}

TEST_F(BuiltinTest, AssertRule) {
  db.consult(":- dynamic dbl/2.");
  EXPECT_EQ(solve("assert((dbl(X, Y) :- Y is X * 2)), dbl(21, R)."),
            (std::vector<std::string>{"R = 42"}));
}

TEST_F(BuiltinTest, SnapshotRefresh) {
  // snapshot_refresh/0: re-pins the worker's epoch snapshot. Semantically
  // transparent — succeeds once, binds nothing, reads see every update
  // published before the call.
  db.consult(":- dynamic sr/1.");
  EXPECT_TRUE(succeeds("snapshot_refresh."));
  EXPECT_EQ(solve("assert(sr(7)), snapshot_refresh, sr(X)."),
            (std::vector<std::string>{"X = 7"}));
  // Still deterministic under backtracking pressure.
  EXPECT_EQ(solve("assert(sr(1)), assert(sr(2)), snapshot_refresh, "
                  "findall(X, sr(X), L)."),
            (std::vector<std::string>{"L = [7,1,2]"}));
}

TEST_F(BuiltinTest, Retract) {
  db.consult(":- dynamic r/1.");
  EXPECT_EQ(solve("assert(r(1)), assert(r(2)), retract(r(1)), "
                  "findall(X, r(X), L)."),
            (std::vector<std::string>{"L = [2]"}));
  EXPECT_FALSE(succeeds("retract(r(99))."));
}

TEST_F(BuiltinTest, WriteAndNl) {
  std::string out = output_of("write(hello), nl, write(f(1, X)).");
  EXPECT_EQ(out.find("hello\nf(1,_G0_"), 0u);
}

TEST_F(BuiltinTest, LibraryLists) {
  EXPECT_EQ(solve("append([1, 2], [3], L)."),
            (std::vector<std::string>{"L = [1,2,3]"}));
  EXPECT_EQ(solve("append(X, [3], [1, 2, 3])."),
            (std::vector<std::string>{"X = [1,2]"}));
  EXPECT_EQ(solve("member(X, [a, b, c]).").size(), 3u);
  EXPECT_EQ(solve("select(X, [1, 2, 3], R).").size(), 3u);
  EXPECT_EQ(solve("reverse([1, 2, 3], R)."),
            (std::vector<std::string>{"R = [3,2,1]"}));
  EXPECT_EQ(solve("length([a, b, c], N)."),
            (std::vector<std::string>{"N = 3"}));
  EXPECT_EQ(solve("nth0(1, [a, b, c], X)."),
            (std::vector<std::string>{"X = b"}));
  EXPECT_EQ(solve("nth1(1, [a, b, c], X)."),
            (std::vector<std::string>{"X = a"}));
  EXPECT_EQ(solve("last([1, 2, 3], X)."), (std::vector<std::string>{"X = 3"}));
  EXPECT_EQ(solve("sum_list([1, 2, 3, 4], S)."),
            (std::vector<std::string>{"S = 10"}));
  EXPECT_EQ(solve("max_list([3, 1, 4, 1, 5], M)."),
            (std::vector<std::string>{"M = 5"}));
  EXPECT_EQ(solve("min_list([3, 1, 4], M)."),
            (std::vector<std::string>{"M = 1"}));
  EXPECT_EQ(solve("numlist(1, 5, L)."),
            (std::vector<std::string>{"L = [1,2,3,4,5]"}));
  EXPECT_EQ(solve("between(1, 4, X).").size(), 4u);
  EXPECT_TRUE(succeeds("memberchk(b, [a, b, b])."));
}

TEST_F(BuiltinTest, LibraryControl) {
  EXPECT_TRUE(succeeds("not(fail)."));
  EXPECT_FALSE(succeeds("not(true)."));
  EXPECT_TRUE(succeeds("ignore(fail)."));
  EXPECT_TRUE(succeeds("forall(member(X, [1, 2, 3]), X > 0)."));
  EXPECT_FALSE(succeeds("forall(member(X, [1, -2, 3]), X > 0)."));
}

TEST_F(BuiltinTest, OutputWriteUnquoted) {
  EXPECT_EQ(output_of("write('hello world')."), "hello world");
}

TEST_F(BuiltinTest, Tab) {
  EXPECT_EQ(output_of("write(a), tab(3), write(b)."), "a   b");
}

TEST_F(BuiltinTest, Succ) {
  EXPECT_EQ(solve("succ(3, X)."), (std::vector<std::string>{"X = 4"}));
  EXPECT_EQ(solve("succ(X, 4)."), (std::vector<std::string>{"X = 3"}));
  EXPECT_FALSE(succeeds("succ(X, 0)."));
  EXPECT_FALSE(succeeds("succ(2, 4)."));
  EXPECT_THROW(succeeds("succ(X, Y)."), AceError);
  EXPECT_THROW(succeeds("succ(-1, X)."), AceError);
}

TEST_F(BuiltinTest, MSortKeepsDuplicates) {
  EXPECT_EQ(solve("msort([3, 1, 2, 1], L)."),
            (std::vector<std::string>{"L = [1,1,2,3]"}));
  EXPECT_EQ(solve("msort([], L)."), (std::vector<std::string>{"L = []"}));
  EXPECT_EQ(solve("msort([b, a, f(1), 2, a], L)."),
            (std::vector<std::string>{"L = [2,a,a,b,f(1)]"}));
}

TEST_F(BuiltinTest, SortRemovesDuplicates) {
  EXPECT_EQ(solve("sort([3, 1, 2, 1, 3], L)."),
            (std::vector<std::string>{"L = [1,2,3]"}));
  EXPECT_EQ(solve("sort([a, a, a], L)."),
            (std::vector<std::string>{"L = [a]"}));
}

TEST_F(BuiltinTest, SortRejectsPartialLists) {
  EXPECT_THROW(succeeds("sort([1|_], L)."), AceError);
}

TEST_F(BuiltinTest, AtomCodes) {
  EXPECT_EQ(solve("atom_codes(abc, L)."),
            (std::vector<std::string>{"L = [97,98,99]"}));
  EXPECT_EQ(solve("atom_codes(A, [104, 105])."),
            (std::vector<std::string>{"A = hi"}));
  EXPECT_EQ(solve("atom_codes(42, L), atom_codes(A, L)."),
            (std::vector<std::string>{"L = [52,50], A = '42'"}));
}

TEST_F(BuiltinTest, NumberCodes) {
  EXPECT_EQ(solve("number_codes(123, L)."),
            (std::vector<std::string>{"L = [49,50,51]"}));
  EXPECT_EQ(solve("number_codes(N, [45, 55])."),
            (std::vector<std::string>{"N = -7"}));
  EXPECT_THROW(succeeds("number_codes(N, [104, 105])."), AceError);
}

TEST_F(BuiltinTest, AtomLengthAndConcat) {
  EXPECT_EQ(solve("atom_length(hello, N)."),
            (std::vector<std::string>{"N = 5"}));
  EXPECT_EQ(solve("atom_concat(foo, bar, A)."),
            (std::vector<std::string>{"A = foobar"}));
  EXPECT_TRUE(succeeds("atom_concat(a, b, ab)."));
  EXPECT_THROW(succeeds("atom_concat(X, b, ab)."), AceError);
}

TEST_F(BuiltinTest, CharCode) {
  EXPECT_EQ(solve("char_code(a, X)."), (std::vector<std::string>{"X = 97"}));
  EXPECT_EQ(solve("char_code(C, 98)."), (std::vector<std::string>{"C = b"}));
  EXPECT_THROW(succeeds("char_code(abc, X)."), AceError);
}

}  // namespace
}  // namespace ace
