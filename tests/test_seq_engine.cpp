#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace ace {
namespace {

class SeqEngineTest : public ::testing::Test {
 protected:
  SeqEngineTest() { load_library(db); }

  std::vector<std::string> solve(const std::string& q,
                                 std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }
  bool succeeds(const std::string& q) {
    Engine eng(db);
    return eng.succeeds(q);
  }

  Database db;
};

TEST_F(SeqEngineTest, FactsAndEnumeration) {
  db.consult("p(1). p(2). p(3).");
  EXPECT_EQ(solve("p(X)."),
            (std::vector<std::string>{"X = 1", "X = 2", "X = 3"}));
  EXPECT_EQ(solve("p(X).", 2).size(), 2u);
  EXPECT_EQ(solve("p(2)."), (std::vector<std::string>{"true"}));
  EXPECT_FALSE(succeeds("p(9)."));
}

TEST_F(SeqEngineTest, Conjunction) {
  db.consult("p(1). p(2). q(2). q(3).");
  EXPECT_EQ(solve("p(X), q(X)."), (std::vector<std::string>{"X = 2"}));
}

TEST_F(SeqEngineTest, RulesAndRecursion) {
  db.consult(R"PL(
nat(z).
nat(s(X)) :- nat(X).
plus(z, Y, Y).
plus(s(X), Y, s(Z)) :- plus(X, Y, Z).
)PL");
  EXPECT_EQ(solve("plus(s(s(z)), s(z), R)."),
            (std::vector<std::string>{"R = s(s(s(z)))"}));
  // Generative: enumerate the first three naturals.
  EXPECT_EQ(solve("nat(N).", 3),
            (std::vector<std::string>{"N = z", "N = s(z)", "N = s(s(z))"}));
  // Subtraction mode of plus.
  EXPECT_EQ(solve("plus(X, Y, s(s(z))).").size(), 3u);
}

TEST_F(SeqEngineTest, Disjunction) {
  EXPECT_EQ(solve("( X = 1 ; X = 2 ; X = 3 )."),
            (std::vector<std::string>{"X = 1", "X = 2", "X = 3"}));
}

TEST_F(SeqEngineTest, IfThenElse) {
  EXPECT_EQ(solve("( 1 < 2 -> X = yes ; X = no )."),
            (std::vector<std::string>{"X = yes"}));
  EXPECT_EQ(solve("( 2 < 1 -> X = yes ; X = no )."),
            (std::vector<std::string>{"X = no"}));
  // The condition is committed: only its first solution counts.
  db.consult("c(1). c(2).");
  EXPECT_EQ(solve("( c(X) -> Y = got ; Y = none )."),
            (std::vector<std::string>{"X = 1, Y = got"}));
  // Bare if-then fails when the condition fails.
  EXPECT_FALSE(succeeds("( fail -> true )."));
  EXPECT_TRUE(succeeds("( true -> true )."));
}

TEST_F(SeqEngineTest, Negation) {
  db.consult("p(1).");
  EXPECT_TRUE(succeeds("\\+ p(2)."));
  EXPECT_FALSE(succeeds("\\+ p(1)."));
  // Negation leaves no bindings.
  EXPECT_EQ(solve("\\+ fail, X = done."),
            (std::vector<std::string>{"X = done"}));
}

TEST_F(SeqEngineTest, Cut) {
  db.consult(R"PL(
first([X|_], X) :- !.
first(_, none).
maxi(X, Y, X) :- X >= Y, !.
maxi(_, Y, Y).
)PL");
  EXPECT_EQ(solve("first([a, b], X)."), (std::vector<std::string>{"X = a"}));
  EXPECT_EQ(solve("maxi(3, 5, M)."), (std::vector<std::string>{"M = 5"}));
  EXPECT_EQ(solve("maxi(5, 3, M)."), (std::vector<std::string>{"M = 5"}));
}

TEST_F(SeqEngineTest, CutPrunesAlternativesOfCaller) {
  db.consult(R"PL(
t(1). t(2). t(3).
once_t(X) :- t(X), !.
)PL");
  EXPECT_EQ(solve("once_t(X)."), (std::vector<std::string>{"X = 1"}));
  // Cut is local to the clause: alternatives of the caller survive.
  EXPECT_EQ(solve("( once_t(X) ; X = extra )."),
            (std::vector<std::string>{"X = 1", "X = extra"}));
}

TEST_F(SeqEngineTest, CutInsideDisjunctionIsClauseLevel) {
  db.consult("d(X) :- ( X = 1, ! ; X = 2 ).\nd(3).");
  EXPECT_EQ(solve("d(X)."), (std::vector<std::string>{"X = 1"}));
}

TEST_F(SeqEngineTest, CallMetaPredicate) {
  db.consult("p(7).");
  EXPECT_EQ(solve("G = p(X), call(G)."),
            (std::vector<std::string>{"G = p(7), X = 7"}));
  EXPECT_THROW(succeeds("call(X)."), AceError);
  EXPECT_THROW(succeeds("call(42)."), AceError);
}

TEST_F(SeqEngineTest, DeepBacktracking) {
  // Classic generate and test over two levels.
  EXPECT_EQ(
      solve("member(X, [1, 2, 3, 4]), member(Y, [1, 2, 3, 4]), "
            "X + Y =:= 5, X < Y."),
      (std::vector<std::string>{"X = 1, Y = 4", "X = 2, Y = 3"}));
}

TEST_F(SeqEngineTest, NaiveReverse) {
  db.consult(R"PL(
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
)PL");
  EXPECT_EQ(solve("nrev([1, 2, 3, 4, 5], R)."),
            (std::vector<std::string>{"R = [5,4,3,2,1]"}));
}

TEST_F(SeqEngineTest, AmpersandRunsSequentially) {
  // In the sequential engine '&' is ordinary conjunction.
  db.consult("both(X, Y) :- ( X = 1 ; X = 2 ) & ( Y = a ; Y = b ).");
  EXPECT_EQ(solve("both(X, Y).").size(), 4u);
}

TEST_F(SeqEngineTest, UndefinedPredicateThrows) {
  EXPECT_THROW(succeeds("no_such_thing(1)."), AceError);
}

TEST_F(SeqEngineTest, ResolutionLimitStopsRunaway) {
  db.consult("loop :- loop.");
  EngineConfig opts;
  opts.resolution_limit = 10000;
  Engine eng(db, opts);
  EXPECT_THROW(eng.solve("loop.", 1), AceError);
}

TEST_F(SeqEngineTest, QueensFiveSolutions) {
  db.consult(R"PL(
queens(N, Qs) :- numlist(1, N, Ns), qperm(Ns, [], Qs).
qperm([], Acc, Acc).
qperm(L, Acc, Qs) :- select(Q, L, R), qsafe(Q, Acc, 1), qperm(R, [Q|Acc], Qs).
qsafe(_, [], _).
qsafe(Q, [P|Ps], D) :- Q =\= P + D, Q =\= P - D, D1 is D + 1, qsafe(Q, Ps, D1).
)PL");
  EXPECT_EQ(solve("queens(5, Qs).").size(), 10u);
  EXPECT_EQ(solve("queens(6, Qs).").size(), 4u);
}

TEST_F(SeqEngineTest, SolutionOrderIsSourceOrder) {
  db.consult("color(red). color(green). color(blue).");
  EXPECT_EQ(solve("color(C)."),
            (std::vector<std::string>{"C = red", "C = green", "C = blue"}));
}

TEST_F(SeqEngineTest, IndexingAvoidsChoicePoints) {
  db.consult(R"PL(
kind(1, one). kind(2, two). kind(3, three).
)PL");
  Engine eng(db);
  SolveResult r = eng.solve("kind(2, K).", SIZE_MAX);
  ASSERT_EQ(r.solutions.size(), 1u);
  // First-argument indexing selects a single clause: no choice point.
  EXPECT_EQ(r.stats.choicepoints, 0u);
}

TEST_F(SeqEngineTest, VirtualTimeGrowsWithWork) {
  db.consult("idle. busy :- numlist(1, 200, L), sum_list(L, _).");
  Engine eng(db);
  std::uint64_t t_idle = eng.solve("idle.", 1).virtual_time;
  std::uint64_t t_busy = eng.solve("busy.", 1).virtual_time;
  EXPECT_GT(t_busy, t_idle * 10);
}

TEST_F(SeqEngineTest, StatsCountResolutions) {
  db.consult("cnt([]).\ncnt([_|T]) :- cnt(T).");
  Engine eng(db);
  SolveResult r = eng.solve("numlist(1, 50, L), cnt(L).", 1);
  EXPECT_GE(r.stats.resolutions, 51u);
  EXPECT_GT(r.stats.heap_cells, 0u);
}

TEST_F(SeqEngineTest, HeapReclaimedOnBacktracking) {
  db.consult(R"PL(
blob(X) :- numlist(1, 100, X).
pick(1). pick(2). pick(3).
)PL");
  // Each retry of pick discards the previous blob's heap.
  EXPECT_EQ(solve("pick(P), blob(_B), P =:= 3, _B = [H|_]."),
            (std::vector<std::string>{"P = 3, H = 1"}));
}

TEST_F(SeqEngineTest, VarNamedQueryOrdering) {
  EXPECT_EQ(solve("Y = 2, X = 1."), (std::vector<std::string>{"Y = 2, X = 1"}));
}

}  // namespace
}  // namespace ace
