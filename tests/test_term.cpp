#include <gtest/gtest.h>

#include "term/build.hpp"
#include "term/compare.hpp"
#include "term/copy.hpp"
#include "term/print.hpp"
#include "term/store.hpp"
#include "term/symtab.hpp"

namespace ace {
namespace {

class TermTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  Store store{2};

  std::string str(Addr a) { return term_to_string(store, syms, a); }
};

TEST_F(TermTest, CellEncoding) {
  Cell c = int_cell(-12345);
  EXPECT_EQ(c.tag(), Tag::Int);
  EXPECT_EQ(c.integer(), -12345);

  Cell big = int_cell((std::int64_t{1} << 60) - 1);
  EXPECT_EQ(big.integer(), (std::int64_t{1} << 60) - 1);

  Cell f = fun_cell(77, 3);
  EXPECT_EQ(f.tag(), Tag::Fun);
  EXPECT_EQ(f.fun_symbol(), 77u);
  EXPECT_EQ(f.fun_arity(), 3u);

  Cell a = atm_cell(5);
  EXPECT_EQ(a.tag(), Tag::Atm);
  EXPECT_EQ(a.symbol(), 5u);
}

TEST_F(TermTest, AddrEncoding) {
  Addr a = make_addr(3, 0x12345678u);
  EXPECT_EQ(addr_seg(a), 3u);
  EXPECT_EQ(addr_off(a), 0x12345678u);
}

TEST_F(TermTest, SymbolInterning) {
  std::uint32_t foo1 = syms.intern("foo");
  std::uint32_t bar = syms.intern("bar");
  std::uint32_t foo2 = syms.intern("foo");
  EXPECT_EQ(foo1, foo2);
  EXPECT_NE(foo1, bar);
  EXPECT_EQ(syms.name(foo1), "foo");
  EXPECT_EQ(syms.name(syms.known().nil), "[]");
}

TEST_F(TermTest, NewVarIsUnbound) {
  Addr v = store.new_var(0);
  EXPECT_TRUE(is_unbound(store, v));
  EXPECT_EQ(deref(store, v), v);
}

TEST_F(TermTest, DerefFollowsChains) {
  Addr v1 = store.new_var(0);
  Addr v2 = store.new_var(0);
  Addr target = heap_int(store, 0, 9);
  store.set(v1, ref_cell(v2));
  store.set(v2, ref_cell(target));
  EXPECT_EQ(deref(store, v1), target);
}

TEST_F(TermTest, HeapBuilders) {
  Addr i = heap_int(store, 0, 42);
  Addr at = heap_atom(store, 0, syms.intern("hello"));
  Addr s = heap_struct(store, 0, syms.intern("f"), {i, at});
  EXPECT_EQ(str(s), "f(42,hello)");

  Addr l = heap_list(store, 0, {i, at, s}, syms.known().nil);
  EXPECT_EQ(str(l), "[42,hello,f(42,hello)]");
}

TEST_F(TermTest, PartialListPrinting) {
  Addr v = store.new_var(0);
  Addr l = heap_list_tail(store, 0, {heap_int(store, 0, 1)}, v);
  std::string s = str(l);
  EXPECT_EQ(s.find("[1|_G"), 0u);
}

TEST_F(TermTest, QuotedAtomPrinting) {
  Addr a = heap_atom(store, 0, syms.intern("hello world"));
  EXPECT_EQ(str(a), "'hello world'");
  PrintOpts unquoted;
  unquoted.quoted = false;
  EXPECT_EQ(term_to_string(store, syms, a, unquoted), "hello world");
}

TEST_F(TermTest, InfixOperatorPrinting) {
  TemplateBuilder b(syms);
  Cell plus = b.structure("+", {b.integer(1), b.integer(2)});
  TermTemplate t = b.finish(plus);
  Addr a = instantiate(store, 0, t);
  EXPECT_EQ(str(a), "(1 + 2)");
}

TEST_F(TermTest, TemplateInstantiationFreshVars) {
  TemplateBuilder b(syms);
  Cell x = b.var("X");
  Cell t = b.structure("f", {x, x, b.var("Y")});
  TermTemplate tmpl = b.finish(t);
  EXPECT_EQ(tmpl.nvars, 2u);

  std::vector<Addr> vars1;
  std::vector<Addr> vars2;
  Addr a1 = instantiate(store, 0, tmpl, &vars1);
  Addr a2 = instantiate(store, 0, tmpl, &vars2);
  // Distinct instantiations share no variables.
  EXPECT_NE(vars1[0], vars2[0]);
  // Same variable slot shares within one instantiation.
  Cell c1 = store.get(deref(store, a1));
  ASSERT_EQ(c1.tag(), Tag::Str);
  EXPECT_EQ(deref(store, c1.ref() + 1), deref(store, c1.ref() + 2));
  (void)a2;
}

TEST_F(TermTest, TemplateListBuilding) {
  TemplateBuilder b(syms);
  Cell l = b.list({b.integer(1), b.integer(2)}, b.var("T"));
  TermTemplate tmpl = b.finish(l);
  Addr a = instantiate(store, 0, tmpl);
  EXPECT_EQ(str(a).substr(0, 5), "[1,2|");
}

TEST_F(TermTest, TermToTemplateRoundTrip) {
  // Build f(X, g(X, 3), [a|Y]) on the heap, encode, re-instantiate, print.
  Addr x = store.new_var(0);
  Addr y = store.new_var(0);
  Addr g = heap_struct(store, 0, syms.intern("g"), {x, heap_int(store, 0, 3)});
  Addr lst = heap_list_tail(store, 0, {heap_atom(store, 0, syms.intern("a"))},
                            y);
  Addr f = heap_struct(store, 0, syms.intern("f"), {x, g, lst});

  TermTemplate tmpl = term_to_template(store, f);
  EXPECT_EQ(tmpl.nvars, 2u);
  Addr f2 = instantiate(store, 0, tmpl);
  // Variables renamed but shape identical.
  Cell c = store.get(deref(store, f2));
  ASSERT_EQ(c.tag(), Tag::Str);
  // Shared variable: arg1 of f == arg1 of g.
  Addr arg1 = deref(store, c.ref() + 1);
  Cell garg = store.get(deref(store, c.ref() + 2));
  ASSERT_EQ(garg.tag(), Tag::Str);
  EXPECT_EQ(deref(store, garg.ref() + 1), arg1);
}

TEST_F(TermTest, CopyTermFreshensVariables) {
  Addr x = store.new_var(0);
  Addr f = heap_struct(store, 0, syms.intern("f"), {x, x});
  std::unordered_map<Addr, Addr> map;
  Addr c = copy_term(store, 1, f, map);
  EXPECT_EQ(addr_seg(deref(store, c)), 1u);
  Cell cc = store.get(deref(store, c));
  ASSERT_EQ(cc.tag(), Tag::Str);
  Addr a1 = deref(store, cc.ref() + 1);
  Addr a2 = deref(store, cc.ref() + 2);
  EXPECT_EQ(a1, a2);   // sharing preserved
  EXPECT_NE(a1, x);    // but fresh
}

TEST_F(TermTest, CompareStandardOrder) {
  Addr v = store.new_var(0);
  Addr i = heap_int(store, 0, 5);
  Addr a = heap_atom(store, 0, syms.intern("zebra"));
  Addr b = heap_atom(store, 0, syms.intern("apple"));
  Addr s = heap_struct(store, 0, syms.intern("f"), {i});
  Addr s2 = heap_struct(store, 0, syms.intern("f"), {a});

  EXPECT_LT(compare_terms(store, syms, v, i), 0);   // Var < Int
  EXPECT_LT(compare_terms(store, syms, i, a), 0);   // Int < Atom
  EXPECT_LT(compare_terms(store, syms, a, s), 0);   // Atom < Compound
  EXPECT_LT(compare_terms(store, syms, b, a), 0);   // alphabetic
  EXPECT_LT(compare_terms(store, syms, s, s2), 0);  // 5 < zebra in args
  EXPECT_EQ(compare_terms(store, syms, s, s), 0);
}

TEST_F(TermTest, CompareArityBeforeName) {
  Addr i = heap_int(store, 0, 1);
  Addr za = heap_struct(store, 0, syms.intern("z"), {i});
  Addr ab = heap_struct(store, 0, syms.intern("a"), {i, i});
  EXPECT_LT(compare_terms(store, syms, za, ab), 0);  // arity 1 < arity 2
}

TEST_F(TermTest, ListsCompareAsDotStructs) {
  Addr l1 = heap_list(store, 0, {heap_int(store, 0, 1)}, syms.known().nil);
  Addr l2 = heap_list(store, 0, {heap_int(store, 0, 2)}, syms.known().nil);
  EXPECT_LT(compare_terms(store, syms, l1, l2), 0);
}

TEST_F(TermTest, StoreTruncateReclaims) {
  std::size_t base = store.seg_size(0);
  heap_int(store, 0, 1);
  heap_int(store, 0, 2);
  EXPECT_EQ(store.seg_size(0), base + 2);
  store.truncate(0, base);
  EXPECT_EQ(store.seg_size(0), base);
}

TEST_F(TermTest, MaxDepthPrinting) {
  // Deep nesting prints "..." beyond the cap instead of recursing forever.
  Addr t = heap_int(store, 0, 0);
  for (int i = 0; i < 50; ++i) {
    t = heap_struct(store, 0, syms.intern("s"), {t});
  }
  PrintOpts opts;
  opts.max_depth = 5;
  std::string s = term_to_string(store, syms, t, opts);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace ace
