#include <gtest/gtest.h>

#include "workloads/harness.hpp"

namespace ace {
namespace {

// ---------------------------------------------------------------------------
// Virtual-time determinism: identical configurations give bit-identical
// clocks and counters, across engines and agent counts.

struct DetCase {
  const char* workload;
  EngineKind engine;
  unsigned agents;
  bool opts;
};

class Determinism : public ::testing::TestWithParam<DetCase> {};

TEST_P(Determinism, RepeatedRunsIdentical) {
  const DetCase& c = GetParam();
  RunConfig cfg;
  cfg.engine = c.engine;
  cfg.agents = c.agents;
  cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = c.opts;
  RunOutcome a = run_small(c.workload, cfg);
  RunOutcome b = run_small(c.workload, cfg);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.solutions, b.solutions);
  EXPECT_EQ(a.stats.resolutions, b.stats.resolutions);
  EXPECT_EQ(a.stats.choicepoints, b.stats.choicepoints);
  EXPECT_EQ(a.stats.steals, b.stats.steals);
  EXPECT_EQ(a.stats.input_markers, b.stats.input_markers);
  EXPECT_EQ(a.stats.copied_cells, b.stats.copied_cells);
  EXPECT_EQ(a.stats.sharing_sessions, b.stats.sharing_sessions);
  // Attribution is part of the deterministic surface too: identical runs
  // produce identical per-category charges and per-agent clocks, and the
  // categories partition the summed clocks exactly (conservation).
  EXPECT_EQ(a.attrib.at, b.attrib.at);
  EXPECT_EQ(a.agent_clocks, b.agent_clocks);
  std::uint64_t clock_sum = 0;
  for (std::uint64_t t : a.agent_clocks) clock_sum += t;
  EXPECT_EQ(a.attrib.total(), clock_sum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Determinism,
    ::testing::Values(DetCase{"matrix", EngineKind::Andp, 5, false},
                      DetCase{"matrix", EngineKind::Andp, 5, true},
                      DetCase{"map1", EngineKind::Andp, 3, true},
                      DetCase{"takeuchi", EngineKind::Andp, 10, true},
                      DetCase{"queens1", EngineKind::Orp, 4, false},
                      DetCase{"queens1", EngineKind::Orp, 4, true},
                      DetCase{"members", EngineKind::Orp, 8, true}),
    [](const ::testing::TestParamInfo<DetCase>& pinfo) {
      const DetCase& c = pinfo.param;
      std::string s = c.workload;
      s += c.engine == EngineKind::Andp ? "_andp" : "_orp";
      s += "_a" + std::to_string(c.agents);
      if (c.opts) s += "_opt";
      return s;
    });

// ---------------------------------------------------------------------------
// Cost-model structure.

TEST(CostModel, UnitModelChargesLess) {
  RunConfig std_cfg;
  std_cfg.engine = EngineKind::Andp;
  std_cfg.agents = 2;
  CostModel unit = CostModel::unit();
  RunConfig unit_cfg = std_cfg;
  unit_cfg.costs = &unit;
  RunOutcome a = run_small("matrix", std_cfg);
  RunOutcome b = run_small("matrix", unit_cfg);
  EXPECT_GT(a.virtual_time, b.virtual_time);
  // Same work happened.
  EXPECT_EQ(a.stats.resolutions, b.stats.resolutions);
}

TEST(CostModel, MarkerCostDrivesShallowGains) {
  // Doubling the marker costs should widen the shallow optimization's win.
  RunConfig base;
  base.engine = EngineKind::Andp;
  base.agents = 1;
  RunConfig opt = base;
  opt.shallow = true;

  CostModel cheap = CostModel::standard();
  CostModel dear = CostModel::standard();
  dear.input_marker *= 4;
  dear.end_marker *= 4;

  RunConfig base_cheap = base, opt_cheap = opt;
  base_cheap.costs = opt_cheap.costs = &cheap;
  RunConfig base_dear = base, opt_dear = opt;
  base_dear.costs = opt_dear.costs = &dear;

  double gain_cheap =
      double(run_small("hanoi", base_cheap).virtual_time) -
      double(run_small("hanoi", opt_cheap).virtual_time);
  double gain_dear =
      double(run_small("hanoi", base_dear).virtual_time) -
      double(run_small("hanoi", opt_dear).virtual_time);
  EXPECT_GT(gain_dear, gain_cheap);
}

// ---------------------------------------------------------------------------
// Speedup sanity on the simulator.

TEST(Speedup, AndpScalesOnBalancedWork) {
  RunConfig c1;
  c1.engine = EngineKind::Andp;
  c1.agents = 1;
  RunConfig c8 = c1;
  c8.agents = 8;
  const Workload& w = workload("occur");
  std::uint64_t t1 = run_workload(w, c1, "occur(60, Cs).").virtual_time;
  std::uint64_t t8 = run_workload(w, c8, "occur(60, Cs).").virtual_time;
  EXPECT_LT(t8 * 2, t1);  // >= 2x on 8 agents
}

TEST(Speedup, MoreAgentsNeverMuchWorse) {
  RunConfig c2;
  c2.engine = EngineKind::Andp;
  c2.agents = 2;
  RunConfig c6 = c2;
  c6.agents = 6;
  std::uint64_t t2 = run_small("takeuchi", c2).virtual_time;
  std::uint64_t t6 = run_small("takeuchi", c6).virtual_time;
  EXPECT_LT(t6, t2 * 3 / 2);
}

TEST(Speedup, OrpScalesOnSearch) {
  RunConfig c1;
  c1.engine = EngineKind::Orp;
  c1.agents = 1;
  RunConfig c6 = c1;
  c6.agents = 6;
  const Workload& w = workload("members");
  std::uint64_t t1 = run_workload(w, c1, "members(40, V, R).").virtual_time;
  std::uint64_t t6 = run_workload(w, c6, "members(40, V, R).").virtual_time;
  EXPECT_LT(t6 * 3, t1 * 2);  // at least 1.5x on 6 agents
}

// ---------------------------------------------------------------------------
// Paper-shape checks on the simulator (small instances; the benches run the
// full-scale versions).

TEST(PaperShape, UnoptimizedOneAgentOverheadBand) {
  // Paper §2.3: unoptimized &ACE pays 10-25% over sequential. Loosely
  // check the band (5%-60%) on a representative mix.
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  RunConfig par;
  par.engine = EngineKind::Andp;
  par.agents = 1;
  double total_seq = 0;
  double total_par = 0;
  for (const char* n : {"matrix", "occur", "hanoi", "quick_sort"}) {
    total_seq += double(run_small(n, seq).virtual_time);
    total_par += double(run_small(n, par).virtual_time);
  }
  double overhead = (total_par - total_seq) / total_seq;
  EXPECT_GT(overhead, 0.03);
  EXPECT_LT(overhead, 0.60);
}

TEST(PaperShape, AllOptimizationsShrinkOverhead) {
  // Paper §5: optimizations cut the parallel overhead to a few percent.
  RunConfig seq;
  seq.engine = EngineKind::Seq;
  RunConfig unopt;
  unopt.engine = EngineKind::Andp;
  unopt.agents = 1;
  RunConfig opt = unopt;
  opt.lpco = opt.shallow = opt.pdo = true;
  for (const char* n : {"matrix", "occur", "hanoi"}) {
    double ts = double(run_small(n, seq).virtual_time);
    double tu = double(run_small(n, unopt).virtual_time);
    double to = double(run_small(n, opt).virtual_time);
    EXPECT_LT(to, tu) << n;
    double opt_overhead = (to - ts) / ts;
    EXPECT_LT(opt_overhead, 0.25) << n;
  }
}

TEST(PaperShape, LaoHelpsMembersOnManyAgents) {
  const Workload& w = workload("members");
  RunConfig off;
  off.engine = EngineKind::Orp;
  off.agents = 8;
  RunConfig on = off;
  on.lao = true;
  std::uint64_t t_off =
      run_workload(w, off, "members(40, V, R).").virtual_time;
  std::uint64_t t_on = run_workload(w, on, "members(40, V, R).").virtual_time;
  EXPECT_LT(t_on, t_off);
}

}  // namespace
}  // namespace ace
