#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

class HigherOrderTest : public ::testing::Test {
 protected:
  HigherOrderTest() { load_library(db); }

  std::vector<std::string> solve(const std::string& q,
                                 std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }
  bool succeeds(const std::string& q) {
    Engine eng(db);
    return eng.succeeds(q);
  }

  Database db;
};

TEST_F(HigherOrderTest, CallWithExtraArgs) {
  db.consult("add(X, Y, Z) :- Z is X + Y.");
  EXPECT_EQ(solve("call(add, 1, 2, R)."), (std::vector<std::string>{"R = 3"}));
  EXPECT_EQ(solve("G = add(10), call(G, 5, R)."),
            (std::vector<std::string>{"G = add(10), R = 15"}));
  EXPECT_EQ(solve("call(add(1, 2), R)."), (std::vector<std::string>{"R = 3"}));
}

TEST_F(HigherOrderTest, CallClosureEnumerates) {
  db.consult("p(1, a). p(2, b).");
  EXPECT_EQ(solve("call(p, X, Y).").size(), 2u);
}

TEST_F(HigherOrderTest, CallErrors) {
  EXPECT_THROW(succeeds("call(42, x)."), AceError);
  EXPECT_THROW(succeeds("call(X, 1)."), AceError);
}

TEST_F(HigherOrderTest, MaplistCheck) {
  db.consult("pos(X) :- X > 0.");
  EXPECT_TRUE(succeeds("maplist(pos, [1, 2, 3])."));
  EXPECT_FALSE(succeeds("maplist(pos, [1, -2, 3])."));
  EXPECT_TRUE(succeeds("maplist(pos, [])."));
}

TEST_F(HigherOrderTest, MaplistTransform) {
  db.consult("dbl(X, Y) :- Y is X * 2.");
  EXPECT_EQ(solve("maplist(dbl, [1, 2, 3], L)."),
            (std::vector<std::string>{"L = [2,4,6]"}));
}

TEST_F(HigherOrderTest, MaplistThree) {
  db.consult("addp(X, Y, Z) :- Z is X + Y.");
  EXPECT_EQ(solve("maplist(addp, [1, 2], [10, 20], L)."),
            (std::vector<std::string>{"L = [11,22]"}));
  EXPECT_FALSE(succeeds("maplist(addp, [1], [1, 2], _)."));
}

TEST_F(HigherOrderTest, Foldl) {
  db.consult("acc(X, A0, A) :- A is A0 + X.");
  EXPECT_EQ(solve("foldl(acc, [1, 2, 3, 4], 0, S)."),
            (std::vector<std::string>{"S = 10"}));
  EXPECT_EQ(solve("foldl(acc, [], 7, S)."),
            (std::vector<std::string>{"S = 7"}));
}

TEST_F(HigherOrderTest, IncludeExclude) {
  db.consult("even(X) :- 0 =:= X mod 2.");
  EXPECT_EQ(solve("include(even, [1, 2, 3, 4, 5, 6], L)."),
            (std::vector<std::string>{"L = [2,4,6]"}));
  EXPECT_EQ(solve("exclude(even, [1, 2, 3, 4, 5, 6], L)."),
            (std::vector<std::string>{"L = [1,3,5]"}));
}

TEST_F(HigherOrderTest, PartialApplicationWithCapturedArgs) {
  db.consult("between_chk(L, H, X) :- X >= L, X =< H.");
  EXPECT_TRUE(succeeds("maplist(between_chk(1, 10), [2, 5, 9])."));
  EXPECT_FALSE(succeeds("maplist(between_chk(1, 10), [2, 50])."));
}

TEST_F(HigherOrderTest, HigherOrderInsideParallelGoals) {
  Database pdb;
  load_library(pdb);
  pdb.consult(R"PL(
dbl(X, Y) :- Y is X * 2.
trip(X, Y) :- Y is X * 3.
both(L, A, B) :- maplist(dbl, L, A) & maplist(trip, L, B).
)PL");
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 3;
  o.lpco = o.shallow = o.pdo = true;
  Engine m(pdb, o);
  EXPECT_EQ(m.solve("both([1, 2], A, B).").solutions,
            (std::vector<std::string>{"A = [2,4], B = [3,6]"}));
}

}  // namespace
}  // namespace ace
