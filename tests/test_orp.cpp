#include <gtest/gtest.h>

#include <algorithm>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class OrpTest : public ::testing::Test {
 protected:
  OrpTest() { load_library(db); }

  SolveResult run(const std::string& q, unsigned agents, bool lao = false,
                  std::size_t max = SIZE_MAX) {
    EngineConfig o;
    o.mode = EngineMode::Orp;
    o.agents = agents;
    o.lao = lao;
    Engine m(db, o);
    return m.solve(q, max);
  }
  std::vector<std::string> seq(const std::string& q) {
    Engine eng(db);
    return eng.solve(q).solutions;
  }

  Database db;
};

TEST_F(OrpTest, OneAgentMatchesSequential) {
  db.consult("p(1). p(2). p(3).");
  EXPECT_EQ(run("p(X).", 1).solutions, seq("p(X)."));
}

TEST_F(OrpTest, OneAgentWithLaoMatchesSequential) {
  db.consult("p(1). p(2). p(3).");
  EXPECT_EQ(run("p(X).", 1, /*lao=*/true).solutions, seq("p(X)."));
}

TEST_F(OrpTest, MultiAgentFindsAllSolutions) {
  db.consult(R"PL(
d(1). d(2). d(3). d(4).
pair(X, Y) :- d(X), d(Y).
)PL");
  std::vector<std::string> expect = sorted(seq("pair(X, Y)."));
  ASSERT_EQ(expect.size(), 16u);
  for (unsigned n : {2u, 4u, 8u}) {
    for (bool lao : {false, true}) {
      EXPECT_EQ(sorted(run("pair(X, Y).", n, lao).solutions), expect)
          << n << " agents, lao=" << lao;
    }
  }
}

TEST_F(OrpTest, NoDuplicateSolutions) {
  db.consult("c(1). c(2). c(3). c(4). c(5). c(6). c(7). c(8).");
  for (unsigned n : {2u, 5u}) {
    std::vector<std::string> sols = run("c(X).", n).solutions;
    std::vector<std::string> uniq = sorted(sols);
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    EXPECT_EQ(sols.size(), uniq.size()) << n << " agents";
    EXPECT_EQ(sols.size(), 8u);
  }
}

TEST_F(OrpTest, DeepRecursionMemberPattern) {
  db.consult(R"PL(
fib_iter(0, A, _, A) :- !.
fib_iter(N, A, B, F) :- N1 is N - 1, C is A + B, fib_iter(N1, B, C, F).
go(V, R) :- member(V, [5, 6, 7, 8, 9, 10]), fib_iter(V, 0, 1, R).
)PL");
  std::vector<std::string> expect = sorted(seq("go(V, R)."));
  ASSERT_EQ(expect.size(), 6u);
  for (unsigned n : {1u, 3u, 6u}) {
    for (bool lao : {false, true}) {
      EXPECT_EQ(sorted(run("go(V, R).", n, lao).solutions), expect)
          << n << " agents, lao=" << lao;
    }
  }
}

TEST_F(OrpTest, DisjunctionBranchesShared) {
  db.consult("alt(X) :- ( X = 1 ; X = 2 ; X = 3 ).");
  for (unsigned n : {1u, 2u, 4u}) {
    EXPECT_EQ(sorted(run("alt(X).", n).solutions),
              (std::vector<std::string>{"X = 1", "X = 2", "X = 3"}));
  }
}

TEST_F(OrpTest, CutCancelsPublicNodes) {
  db.consult(R"PL(
k(1). k(2). k(3).
onek(X) :- k(X), !.
mix(X, Y) :- k(X), onek(Y).
)PL");
  std::vector<std::string> expect = sorted(seq("mix(X, Y)."));
  for (unsigned n : {1u, 3u}) {
    EXPECT_EQ(sorted(run("mix(X, Y).", n).solutions), expect);
  }
}

TEST_F(OrpTest, QueensAllSolutionsAcrossAgents) {
  db.consult(R"PL(
queens(N, Qs) :- numlist(1, N, Ns), qperm(Ns, [], Qs).
qperm([], Acc, Acc).
qperm(L, Acc, Qs) :- select(Q, L, R), qsafe(Q, Acc, 1), qperm(R, [Q|Acc], Qs).
qsafe(_, [], _).
qsafe(Q, [P|Ps], D) :- Q =\= P + D, Q =\= P - D, D1 is D + 1, qsafe(Q, Ps, D1).
)PL");
  std::vector<std::string> expect = sorted(seq("queens(6, Qs)."));
  ASSERT_EQ(expect.size(), 4u);
  for (unsigned n : {1u, 2u, 4u, 10u}) {
    for (bool lao : {false, true}) {
      EXPECT_EQ(sorted(run("queens(6, Qs).", n, lao).solutions), expect)
          << n << " agents, lao=" << lao;
    }
  }
}

TEST_F(OrpTest, LaoReusesChoicePoints) {
  db.consult(R"PL(
go(V) :- member(V, [1, 2, 3, 4, 5, 6, 7, 8]).
)PL");
  SolveResult off = run("go(V).", 1, false);
  SolveResult on = run("go(V).", 1, true);
  EXPECT_EQ(off.solutions.size(), 8u);
  EXPECT_EQ(on.solutions.size(), 8u);
  EXPECT_GT(on.stats.lao_reuses, 0u);
  EXPECT_LT(on.stats.choicepoints, off.stats.choicepoints);
}

TEST_F(OrpTest, LaoCostsOnOneAgent) {
  // The paper's Table 3 shows a small 1-agent slowdown: the runtime checks
  // and kept-frame revisits cost something.
  db.consult(R"PL(
gen(X) :- member(X, [1,2,3,4,5,6,7,8,9,10]), X > 5.
)PL");
  SolveResult off = run("gen(X).", 1, false);
  SolveResult on = run("gen(X).", 1, true);
  EXPECT_EQ(off.solutions.size(), on.solutions.size());
  EXPECT_GT(on.stats.opt_checks, 0u);
}

TEST_F(OrpTest, SharingSessionsOccur) {
  db.consult(R"PL(
slow(0) :- !.
slow(N) :- N1 is N - 1, slow(N1).
job(X) :- member(X, [1, 2, 3, 4, 5, 6]), slow(200).
)PL");
  SolveResult r = run("job(X).", 4);
  EXPECT_EQ(r.solutions.size(), 6u);
  EXPECT_GT(r.stats.sharing_sessions, 0u);
  EXPECT_GT(r.stats.copied_cells, 0u);
}

TEST_F(OrpTest, SpeedupWithAgents) {
  db.consult(R"PL(
slow(0) :- !.
slow(N) :- N1 is N - 1, slow(N1).
job(X) :- member(X, [1, 2, 3, 4, 5, 6, 7, 8]), slow(400).
)PL");
  std::uint64_t t1 = run("job(X).", 1).virtual_time;
  std::uint64_t t4 = run("job(X).", 4).virtual_time;
  EXPECT_LT(t4 * 2, t1);
}

TEST_F(OrpTest, DeterministicAcrossRuns) {
  db.consult("e(1). e(2). e(3). e(4). e(5).");
  SolveResult a = run("e(X), e(Y).", 3);
  SolveResult b = run("e(X), e(Y).", 3);
  EXPECT_EQ(a.solutions, b.solutions);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.stats.sharing_sessions, b.stats.sharing_sessions);
}

TEST_F(OrpTest, FailingQueryExhaustsCleanly) {
  db.consult("f(1). f(2).");
  for (unsigned n : {1u, 3u}) {
    EXPECT_TRUE(run("f(X), X > 10.", n).solutions.empty());
  }
}

TEST_F(OrpTest, FindallInsideOrParallel) {
  db.consult("g(1). g(2). pick(X, L) :- g(X), findall(Y, g(Y), L).");
  std::vector<std::string> expect = sorted(seq("pick(X, L)."));
  EXPECT_EQ(sorted(run("pick(X, L).", 2).solutions), expect);
}

}  // namespace
}  // namespace ace
