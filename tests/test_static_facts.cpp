// Static-facts runtime wiring: check elision preserves solutions and only
// removes charges, facts invalidate on mutation, and the predict-vs-observe
// harness — analyzer verdicts (groundness, determinacy, parallel safety)
// checked against what actually happens at runtime for every workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/determinacy.hpp"
#include "analysis/static_facts.hpp"
#include "builtins/lib.hpp"
#include "db/database.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// The facts pass itself.
// ---------------------------------------------------------------------------

TEST(StaticFacts, ComputesAndStoresBits) {
  Database db;
  db.consult(
      "f(0, 1) :- !.\n"
      "f(N, V) :- N1 is N - 1, f(N1, V1), V is V1 + N.\n"
      "gen(1).\ngen(2).\ngen(N) :- N > 2.\n"
      "chain(0).\nchain(N) :- N > 0, N1 is N - 1, chain(N1).\n");
  StaticFactsReport rep = compute_static_facts(db);
  EXPECT_GT(rep.preds_analyzed, 0u);

  SymbolTable& syms = db.syms();
  const Predicate* f = db.find(syms.intern("f"), 2);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->fact(StaticFacts::kDet));
  EXPECT_TRUE(f->fact(StaticFacts::kGroundOnSuccess));

  // gen/1 has disjoint *head constants* (gen(1) / gen(2) / gen(N) :- N > 2)
  // but a free call gen(X) succeeds through all three clauses: the
  // exclusivity evidence is index-dependent, so it must earn kDetIndexed
  // and not the mode-independent kDet.
  const Predicate* gen = db.find(syms.intern("gen"), 1);
  ASSERT_NE(gen, nullptr);
  EXPECT_FALSE(gen->fact(StaticFacts::kDet));
  EXPECT_TRUE(gen->fact(StaticFacts::kDetIndexed));

  const Predicate* chain = db.find(syms.intern("chain"), 1);
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(chain->fact(StaticFacts::kValid));
}

TEST(StaticFacts, MutationInvalidatesAndRecomputeRestores) {
  Database db;
  db.consult("f(0, 1) :- !.\nf(N, V) :- N > 0, V is N * 2.\n");
  compute_static_facts(db);
  SymbolTable& syms = db.syms();
  const std::uint32_t fsym = syms.intern("f");
  ASSERT_TRUE(db.find(fsym, 2)->fact(StaticFacts::kDet));

  // assert(f(9, 9)) through the Database API clears the bits.
  SymbolTable& s2 = db.syms();
  TemplateBuilder b(s2);
  Cell head = b.structure("f", {b.integer(9), b.integer(9)});
  db.add_clause(b.finish(head));
  EXPECT_FALSE(db.find(fsym, 2)->fact(StaticFacts::kValid));
  EXPECT_FALSE(db.find(fsym, 2)->fact(StaticFacts::kDet));

  // Re-running the pass reattaches (now without the det fact: the new
  // fact f(9,9) overlaps the N > 0 clause).
  compute_static_facts(db);
  EXPECT_TRUE(db.find(fsym, 2)->fact(StaticFacts::kValid));
  EXPECT_FALSE(db.find(fsym, 2)->fact(StaticFacts::kDet));
  // Not even indexed: f(9, 9) overlaps the N > 0 clause for calls with a
  // bound first argument too.
  EXPECT_FALSE(db.find(fsym, 2)->fact(StaticFacts::kDetIndexed));
}

// ---------------------------------------------------------------------------
// Elision semantics: identical solutions; with one agent (deterministic
// schedule) the charged + elided checks exactly partition the baseline's.
// ---------------------------------------------------------------------------

TEST(StaticFacts, ElisionPreservesSolutionsAndPartitionsChecks) {
  struct Case {
    const char* name;
    EngineKind engine;
  };
  const Case cases[] = {
      {"map2", EngineKind::Andp},
      {"occur", EngineKind::Andp},
      {"takeuchi", EngineKind::Andp},
      {"members", EngineKind::Orp},
      {"queens1", EngineKind::Orp},
  };
  for (const Case& c : cases) {
    for (unsigned agents : {1u, 5u}) {
      RunConfig off;
      off.engine = c.engine;
      off.agents = agents;
      if (c.engine == EngineKind::Andp) {
        off.lpco = off.shallow = off.pdo = true;
      } else {
        off.lao = true;
      }
      RunConfig on = off;
      on.static_facts = true;

      RunOutcome base = run_small(c.name, off);
      RunOutcome sf = run_small(c.name, on);
      EXPECT_EQ(sorted(base.solutions), sorted(sf.solutions))
          << c.name << " x" << agents;
      EXPECT_EQ(base.stats.static_elisions, 0u) << c.name;
      EXPECT_GT(sf.stats.static_elisions, 0u) << c.name << " x" << agents;
      if (agents == 1) {
        // Deterministic schedule: every baseline check is either still
        // charged or counted as elided — nothing appears or disappears.
        EXPECT_EQ(sf.stats.opt_checks + sf.stats.static_elisions,
                  base.stats.opt_checks)
            << c.name;
        EXPECT_LE(sf.virtual_time, base.virtual_time) << c.name;
      }
    }
  }
}

TEST(StaticFacts, FlagOffIsBitIdenticalToBaseline) {
  // Same config twice, flag off: counters and time must match exactly
  // (the static-facts plumbing must be invisible when disabled).
  for (const char* name : {"map2", "members"}) {
    RunConfig cfg;
    cfg.engine = name == std::string("map2") ? EngineKind::Andp
                                             : EngineKind::Orp;
    cfg.agents = 5;
    cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
    RunOutcome a = run_small(name, cfg);
    RunOutcome b = run_small(name, cfg);
    EXPECT_EQ(a.solutions, b.solutions) << name;
    EXPECT_EQ(a.virtual_time, b.virtual_time) << name;
    EXPECT_EQ(a.stats.opt_checks, b.stats.opt_checks) << name;
    EXPECT_EQ(a.stats.static_elisions, 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Predict vs observe: for every workload, run the analyzer on the real
// query and check its verdicts against the runtime.
// ---------------------------------------------------------------------------

TEST(PredictVsObserve, GroundnessDeterminacyAndSafetyHoldAtRuntime) {
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    AbsProgram prog =
        AbsProgram::from_source(syms, w.source, /*include_library=*/true);
    AbstractInterpreter interp(prog, syms);
    TermTemplate query = parse_term_text(syms, w.small_query);
    AbsState exit_state(query.nvars);
    SuccessSummary sum = interp.analyze_entry(query, &exit_state);
    DeterminacyResult det = analyze_determinacy_program(prog, syms);

    // Observe: run the workload's small query on the sequential engine.
    RunConfig cfg;
    cfg.engine = EngineKind::Seq;
    RunOutcome obs = run_small(w.name, cfg);

    // (1) If the analyzer says the query cannot succeed, it must not.
    if (!sum.may_succeed) {
      EXPECT_EQ(obs.num_solutions, 0u) << w.name;
      continue;
    }

    // (2) Predicted-ground query variables are ground in every reported
    // solution (unbound runtime variables print as _G<seg>_<off>).
    bool all_ground = true;
    for (std::uint32_t v = 0; v < query.nvars; ++v) {
      if (exit_state.mode(v) != AbsMode::Ground) all_ground = false;
    }
    if (all_ground) {
      for (const std::string& s : obs.solutions) {
        EXPECT_EQ(s.find("_G"), std::string::npos)
            << w.name << ": predicted-ground solution has a free var: " << s;
      }
    }

    // (3) A determinacy fact on the query's predicate bounds the solution
    // count by one. The strict fact covers any call; the indexed fact
    // only covers calls whose first argument is ground, so it is checked
    // only when the query supplies a variable-free term there (this
    // distinction is load-bearing: maps(Cs) reaches free calls to a
    // multi-clause color/1 and yields hundreds of solutions).
    Cell root = query.root;
    if (root.tag() == Tag::Str || root.tag() == Tag::Atm) {
      std::uint32_t sym;
      unsigned arity = 0;
      if (root.tag() == Tag::Str) {
        Cell f = query.cells[root.ref()];
        sym = f.fun_symbol();
        arity = f.fun_arity();
      } else {
        sym = root.symbol();
      }
      std::function<bool(Cell)> tmpl_ground = [&](Cell t) -> bool {
        switch (t.tag()) {
          case Tag::VarSlot:
            return false;
          case Tag::Lst:
            return tmpl_ground(query.cells[t.ref()]) &&
                   tmpl_ground(query.cells[t.ref() + 1]);
          case Tag::Str: {
            Cell f = query.cells[t.ref()];
            for (unsigned i = 1; i <= f.fun_arity(); ++i) {
              if (!tmpl_ground(query.cells[t.ref() + i])) return false;
            }
            return true;
          }
          default:
            return true;
        }
      };
      const bool first_arg_ground =
          arity > 0 && tmpl_ground(query.cells[root.ref() + 1]);
      auto it = det.preds.find(pred_key(sym, arity));
      if (it != det.preds.end() &&
          (it->second.det ||
           (it->second.det_indexed && first_arg_ground))) {
        EXPECT_LE(obs.num_solutions, 1u) << w.name;
      }
    }

    // (4) The workloads carry '&' annotations the linter verified safe
    // (test_lint); observe: parallel execution agrees with sequential.
    if (w.and_parallel) {
      RunConfig par;
      par.engine = EngineKind::Andp;
      par.agents = 4;
      par.lpco = par.shallow = par.pdo = true;
      RunOutcome pobs = run_small(w.name, par);
      EXPECT_EQ(sorted(obs.solutions), sorted(pobs.solutions)) << w.name;
    }
  }
}

}  // namespace
}  // namespace ace
