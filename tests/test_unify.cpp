#include <gtest/gtest.h>

#include "parse/parser.hpp"
#include "support/rng.hpp"
#include "term/copy.hpp"
#include "term/build.hpp"
#include "term/compare.hpp"
#include "term/print.hpp"
#include "term/unify.hpp"

namespace ace {
namespace {

class UnifyTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  Store store{1};
  Trail trail;

  Addr term(const std::string& text) {
    TermTemplate t = parse_term_text(syms, text + " .");
    return instantiate(store, 0, t);
  }
  bool u(Addr a, Addr b) { return unify(store, trail, a, b); }
  std::string str(Addr a) { return term_to_string(store, syms, a); }
};

TEST_F(UnifyTest, Atoms) {
  EXPECT_TRUE(u(term("foo"), term("foo")));
  EXPECT_FALSE(u(term("foo"), term("bar")));
}

TEST_F(UnifyTest, Integers) {
  EXPECT_TRUE(u(term("42"), term("42")));
  EXPECT_FALSE(u(term("42"), term("43")));
  EXPECT_FALSE(u(term("42"), term("foo")));
}

TEST_F(UnifyTest, VarBinding) {
  Addr x = store.new_var(0);
  EXPECT_TRUE(u(x, term("f(1)")));
  EXPECT_EQ(str(x), "f(1)");
}

TEST_F(UnifyTest, VarVarAliasing) {
  Addr x = store.new_var(0);
  Addr y = store.new_var(0);
  EXPECT_TRUE(u(x, y));
  EXPECT_TRUE(u(y, term("99")));
  EXPECT_EQ(str(x), "99");
}

TEST_F(UnifyTest, Structures) {
  EXPECT_TRUE(u(term("f(X, g(X))"), term("f(1, Y)")));
  EXPECT_FALSE(u(term("f(1, 2)"), term("f(1, 3)")));
  EXPECT_FALSE(u(term("f(1)"), term("g(1)")));
  EXPECT_FALSE(u(term("f(1)"), term("f(1, 2)")));
}

TEST_F(UnifyTest, SharedVariablePropagation) {
  Addr a = term("f(X, X)");
  EXPECT_TRUE(u(a, term("f(1, Y)")));
  // Y must have become 1 through X.
  Cell c = store.get(deref(store, a));
  EXPECT_EQ(str(c.ref() + 2), "1");
}

TEST_F(UnifyTest, Lists) {
  EXPECT_TRUE(u(term("[1, 2, 3]"), term("[H|T]")));
  EXPECT_FALSE(u(term("[]"), term("[H|T]")));
  EXPECT_TRUE(u(term("[]"), term("[]")));
  Addr l = term("[A, B]");
  EXPECT_TRUE(u(l, term("[1, 2]")));
  EXPECT_EQ(str(l), "[1,2]");
}

TEST_F(UnifyTest, TrailRecordsBindings) {
  std::size_t mark = trail.size();
  Addr x = store.new_var(0);
  EXPECT_TRUE(u(x, term("7")));
  EXPECT_EQ(trail.size(), mark + 1);
  untrail(store, trail, mark);
  EXPECT_TRUE(is_unbound(store, x));
  EXPECT_EQ(trail.size(), mark);
}

TEST_F(UnifyTest, UntrailRangeResetsWithoutTruncating) {
  Addr x = store.new_var(0);
  Addr y = store.new_var(0);
  ASSERT_TRUE(u(x, term("1")));
  std::size_t lo = trail.size();
  ASSERT_TRUE(u(y, term("2")));
  std::size_t hi = trail.size();
  untrail_range(store, trail, lo, hi);
  EXPECT_TRUE(is_unbound(store, y));
  EXPECT_FALSE(is_unbound(store, x));
  EXPECT_EQ(trail.size(), hi);  // not truncated
}

TEST_F(UnifyTest, FailureUndoneByCaller) {
  // unify leaves partial bindings; untrail to the caller's mark restores.
  Addr a = term("f(X, 2)");
  std::size_t mark = trail.size();
  EXPECT_FALSE(u(a, term("f(1, 3)")));
  untrail(store, trail, mark);
  Cell c = store.get(deref(store, a));
  EXPECT_TRUE(is_unbound(store, deref(store, c.ref() + 1)));
}

TEST_F(UnifyTest, OccursCheck) {
  Addr x = store.new_var(0);
  Addr f = heap_struct(store, 0, syms.intern("f"), {x});
  EXPECT_FALSE(unify(store, trail, x, f, nullptr, /*occurs_check=*/true));
  // Without occurs check the cyclic binding is permitted (standard Prolog).
  EXPECT_TRUE(unify(store, trail, x, f, nullptr, false));
}

TEST_F(UnifyTest, OccursIn) {
  Addr x = store.new_var(0);
  Addr f = heap_struct(store, 0, syms.intern("f"),
                       {heap_struct(store, 0, syms.intern("g"), {x}),
                        heap_int(store, 0, 1)});
  EXPECT_TRUE(occurs_in(store, x, f));
  Addr y = store.new_var(0);
  EXPECT_FALSE(occurs_in(store, y, f));
  EXPECT_FALSE(occurs_in(store, x, term("h(1, [a])")));
}

TEST_F(UnifyTest, IsGround) {
  EXPECT_TRUE(is_ground(store, term("f(1, [a, b], g(c))")));
  EXPECT_FALSE(is_ground(store, term("f(1, [a|T])")));
}

TEST_F(UnifyTest, StepCounting) {
  std::uint64_t steps = 0;
  unify(store, trail, term("f(1, 2, 3)"), term("f(1, 2, 3)"), &steps);
  EXPECT_GE(steps, 4u);  // root + three args
}

// Property: for random ground terms, unify(a, copy(a)) succeeds and
// unify(a, b) implies compare(a, b) == 0 afterward for ground a, b.
class UnifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnifyProperty, RandomGroundTermsUnifyIffEqual) {
  SymbolTable syms;
  Store store(1);
  Trail trail;
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));

  // Random ground term generator.
  std::vector<std::uint32_t> atoms = {syms.intern("a"), syms.intern("b"),
                                      syms.intern("c")};
  std::vector<std::uint32_t> funs = {syms.intern("f"), syms.intern("g")};
  auto gen = [&](auto&& self, int depth) -> Addr {
    std::uint64_t pick = rng.below(depth <= 0 ? 2 : 4);
    switch (pick) {
      case 0:
        return heap_int(store, 0, rng.range(-5, 5));
      case 1:
        return heap_atom(store, 0, atoms[rng.below(atoms.size())]);
      case 2: {
        std::vector<Addr> args;
        std::uint64_t n = 1 + rng.below(3);
        for (std::uint64_t i = 0; i < n; ++i) {
          args.push_back(self(self, depth - 1));
        }
        return heap_struct(store, 0, funs[rng.below(funs.size())], args);
      }
      default: {
        std::vector<Addr> items;
        std::uint64_t n = rng.below(3);
        for (std::uint64_t i = 0; i < n; ++i) {
          items.push_back(self(self, depth - 1));
        }
        return heap_list(store, 0, items, syms.known().nil);
      }
    }
  };

  for (int iter = 0; iter < 200; ++iter) {
    Addr a = gen(gen, 4);
    Addr b = gen(gen, 4);
    bool equal = compare_terms(store, syms, a, b) == 0;
    std::size_t mark = trail.size();
    bool unified = unify(store, trail, a, b);
    EXPECT_EQ(unified, equal) << term_to_string(store, syms, a) << " vs "
                              << term_to_string(store, syms, b);
    untrail(store, trail, mark);

    // a always unifies with a fresh copy of itself.
    std::unordered_map<Addr, Addr> map;
    Addr c = copy_term(store, 0, a, map);
    EXPECT_TRUE(unify(store, trail, a, c));
    untrail(store, trail, mark);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace ace
