#include <gtest/gtest.h>

#include "db/database.hpp"

namespace ace {
namespace {

class DbTest : public ::testing::Test {
 protected:
  Database db;

  const Predicate* pred(const std::string& name, unsigned arity) {
    return db.find(db.syms().intern(name), arity);
  }
};

TEST_F(DbTest, ConsultAndFind) {
  db.consult("p(1). p(2). q(a) :- p(1).");
  ASSERT_NE(pred("p", 1), nullptr);
  ASSERT_NE(pred("q", 1), nullptr);
  EXPECT_EQ(pred("p", 1)->num_clauses(), 2u);
  EXPECT_EQ(pred("r", 0), nullptr);
  EXPECT_EQ(pred("p", 2), nullptr);  // arity matters
}

TEST_F(DbTest, FactsNormalizedToRules) {
  db.consult("f(x).");
  const Clause& c = pred("f", 1)->clause(0);
  EXPECT_TRUE(c.body_is_true);
  EXPECT_EQ(c.head_sym, db.syms().intern("f"));
  EXPECT_EQ(c.head_arity, 1u);
}

TEST_F(DbTest, FirstArgIndexingByAtom) {
  db.consult("t(a, 1). t(b, 2). t(a, 3). t(X, 0).");
  const Predicate* p = pred("t", 2);
  IndexKey ka{IndexKey::Kind::Atom, db.syms().intern("a")};
  IndexKey kb{IndexKey::Kind::Atom, db.syms().intern("b")};
  IndexKey kc{IndexKey::Kind::Atom, db.syms().intern("c")};
  // 'a' matches clauses 0, 2 and the var clause 3, in source order.
  EXPECT_EQ(p->candidates(ka), (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(p->candidates(kb), (std::vector<std::uint32_t>{1, 3}));
  // Unknown key: only var-key clauses.
  EXPECT_EQ(p->candidates(kc), (std::vector<std::uint32_t>{3}));
  // Unbound call: everything.
  IndexKey any{IndexKey::Kind::AnyCall, 0};
  EXPECT_EQ(p->candidates(any), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST_F(DbTest, IndexingDistinguishesListsAndStructs) {
  db.consult("s([], nil). s([H|T], cons). s(f(X), fun). s(42, int).");
  const Predicate* p = pred("s", 2);
  IndexKey nil_key{IndexKey::Kind::Atom, db.syms().intern("[]")};
  IndexKey lst{IndexKey::Kind::List, 0};
  IndexKey intk{IndexKey::Kind::Int, 42};
  EXPECT_EQ(p->candidates(nil_key).size(), 1u);
  EXPECT_EQ(p->candidates(lst).size(), 1u);
  EXPECT_EQ(p->candidates(intk).size(), 1u);
}

TEST_F(DbTest, StructKeyIncludesArity) {
  db.consult("g(f(_), one). g(f(_, _), two).");
  const Predicate* p = pred("g", 2);
  std::uint32_t f = db.syms().intern("f");
  IndexKey f1{IndexKey::Kind::Struct, (std::uint64_t{f} << 12) | 1};
  IndexKey f2{IndexKey::Kind::Struct, (std::uint64_t{f} << 12) | 2};
  EXPECT_EQ(p->candidates(f1), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(p->candidates(f2), (std::vector<std::uint32_t>{1}));
}

TEST_F(DbTest, RetractTombstonesAndGeneration) {
  db.consult("d(1). d(2). d(3).");
  const Predicate* p = pred("d", 1);
  std::uint64_t gen = p->generation();
  EXPECT_TRUE(db.retract_clause(db.syms().intern("d"), 1, /*ordinal=*/1));
  EXPECT_GT(p->generation(), gen);
  EXPECT_FALSE(db.retract_clause(db.syms().intern("d"), 1, /*ordinal=*/1));
  IndexKey any{IndexKey::Kind::AnyCall, 0};
  EXPECT_EQ(p->candidates(any), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(p->clause(1).retracted);
}

TEST_F(DbTest, NextMatchingFromFallback) {
  db.consult("e(a). e(b). e(a).");
  const Predicate* p = pred("e", 1);
  IndexKey ka{IndexKey::Kind::Atom, db.syms().intern("a")};
  EXPECT_EQ(p->next_matching_from(ka, -1), 0);
  EXPECT_EQ(p->next_matching_from(ka, 0), 2);
  EXPECT_EQ(p->next_matching_from(ka, 2), -1);
}

TEST_F(DbTest, AddClauseFront) {
  db.consult("h(1).");
  TermTemplate t = parse_term_text(db.syms(), "h(0).");
  db.add_clause(std::move(t), /*front=*/true);
  const Predicate* p = pred("h", 1);
  IndexKey any{IndexKey::Kind::AnyCall, 0};
  ASSERT_EQ(p->num_clauses(), 2u);
  EXPECT_EQ(p->candidates(any), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(p->clause(0).key.value, 0u);  // h(0): int key value 0
}

TEST_F(DbTest, DynamicDirective) {
  db.consult(":- dynamic counter/1, log/2.\ncounter(0).");
  EXPECT_TRUE(pred("counter", 1)->is_dynamic());
  EXPECT_TRUE(pred("log", 2)->is_dynamic());
}

TEST_F(DbTest, UnknownDirectiveIgnored) {
  db.consult(":- module(foo, []).\np(1).");
  EXPECT_NE(pred("p", 1), nullptr);
}

TEST_F(DbTest, MalformedDynamicThrows) {
  EXPECT_THROW(db.consult(":- dynamic foo."), AceError);
}

TEST_F(DbTest, ZeroArityPredicates) {
  db.consult("flag. flag :- fail.");
  const Predicate* p = pred("flag", 0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->num_clauses(), 2u);
  IndexKey any{IndexKey::Kind::AnyCall, 0};
  EXPECT_EQ(p->candidates(any).size(), 2u);
}

TEST_F(DbTest, BadClauseHeadThrows) {
  EXPECT_THROW(db.consult("42 :- true."), AceError);
  EXPECT_THROW(db.consult("[a] :- true."), AceError);
}

}  // namespace
}  // namespace ace
