#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace ace {
namespace {

class ExceptionTest : public ::testing::Test {
 protected:
  ExceptionTest() { load_library(db); }

  std::vector<std::string> solve(const std::string& q,
                                 std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }
  bool succeeds(const std::string& q) {
    Engine eng(db);
    return eng.succeeds(q);
  }

  Database db;
};

TEST_F(ExceptionTest, CatchMatchingBall) {
  EXPECT_EQ(solve("catch(throw(oops), oops, X = caught)."),
            (std::vector<std::string>{"X = caught"}));
}

TEST_F(ExceptionTest, CatchBindsBall) {
  EXPECT_EQ(solve("catch(throw(err(42)), err(E), true)."),
            (std::vector<std::string>{"E = 42"}));
}

TEST_F(ExceptionTest, NonMatchingBallPropagates) {
  EXPECT_THROW(solve("catch(throw(alpha), beta, true)."), AceError);
}

TEST_F(ExceptionTest, NestedCatchInnerFirst) {
  EXPECT_EQ(
      solve("catch(catch(throw(x), y, R = inner), x, R = outer)."),
      (std::vector<std::string>{"R = outer"}));
  EXPECT_EQ(
      solve("catch(catch(throw(y), y, R = inner), x, R = outer)."),
      (std::vector<std::string>{"R = inner"}));
}

TEST_F(ExceptionTest, UncaughtThrowSurfaces) {
  try {
    solve("throw(kaboom(1)).");
    FAIL() << "expected AceError";
  } catch (const AceError& e) {
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
  }
}

TEST_F(ExceptionTest, CatchTransparentToSuccess) {
  db.consult("p(1). p(2).");
  EXPECT_EQ(solve("catch(p(X), _, fail)."),
            (std::vector<std::string>{"X = 1", "X = 2"}));
}

TEST_F(ExceptionTest, CatchTransparentToFailure) {
  EXPECT_FALSE(succeeds("catch(fail, _, true), fail."));
  EXPECT_EQ(solve("( catch(fail, _, woops = X) ; X = after )."),
            (std::vector<std::string>{"X = after"}));
}

TEST_F(ExceptionTest, ThrowUndoesBindings) {
  EXPECT_EQ(solve("catch((X = 1, throw(t)), t, true), (var(X) -> R = unbound"
                  " ; R = bound)."),
            (std::vector<std::string>{"R = unbound"}));
}

TEST_F(ExceptionTest, BallIsCopiedOut) {
  // The thrown term survives the unwinding even when it referenced heap
  // structures built inside the guarded goal.
  EXPECT_EQ(solve("catch((Y = f(7), throw(err(Y))), err(Z), true)."),
            (std::vector<std::string>{"Z = f(7)"}));
}

TEST_F(ExceptionTest, ThrowThroughFindall) {
  db.consult("gen(1). gen(2).");
  EXPECT_EQ(solve("catch(findall(X, (gen(X), throw(stop)), _L), stop, "
                  "R = escaped)."),
            (std::vector<std::string>{"R = escaped"}));
}

TEST_F(ExceptionTest, ThrowPastCutBarrier) {
  db.consult("guarded(X) :- once((X = 1, throw(inner))).");
  EXPECT_EQ(solve("catch(guarded(_), inner, R = ok)."),
            (std::vector<std::string>{"R = ok"}));
}

TEST_F(ExceptionTest, RecoveryGoalCanFail) {
  EXPECT_FALSE(succeeds("catch(throw(t), t, fail)."));
}

TEST_F(ExceptionTest, RecoveryGoalCanThrow) {
  EXPECT_EQ(solve("catch(catch(throw(a), a, throw(b)), b, R = rethrown)."),
            (std::vector<std::string>{"R = rethrown"}));
}

TEST_F(ExceptionTest, OnceCommits) {
  db.consult("q(1). q(2). q(3).");
  EXPECT_EQ(solve("once(q(X))."), (std::vector<std::string>{"X = 1"}));
  EXPECT_FALSE(succeeds("once(fail)."));
}

TEST_F(ExceptionTest, ErrorInsideCatchIsPrologBall) {
  // Engine-level AceErrors (type errors etc.) are NOT Prolog balls in this
  // implementation; they surface as C++ exceptions.
  EXPECT_THROW(solve("catch(X is foo, _, true)."), AceError);
}

}  // namespace
}  // namespace ace
