// Linter tests: every APL code fires on a minimal seeded-bug program and
// stays silent on all shipped workloads (analyzed under their real
// queries), plus renderer round-trip properties for every workload source.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/annotate.hpp"
#include "analysis/lint.hpp"
#include "analysis/render.hpp"
#include "parse/parser.hpp"
#include "workloads/programs.hpp"

namespace ace {
namespace {

LintReport lint(const std::string& src, LintOptions opts = {}) {
  SymbolTable syms;
  return lint_program(syms, src, opts);
}

// ---------------------------------------------------------------------------
// Seeded bugs: each code fires on a minimal bad program.
// ---------------------------------------------------------------------------

TEST(Lint, Apl001FiresOnSharedUnboundVariable) {
  LintOptions opts;
  opts.entries = {"p(1, Out)."};
  LintReport rep = lint(
      "p(X, Y) :- q(X, Z) & r(Z, Y).\n"
      "q(A, B) :- B is A + 1.\n"
      "r(A, B) :- B is A * 2.\n",
      opts);
  EXPECT_EQ(rep.sink.count_code("APL001"), 1u);
}

TEST(Lint, Apl001SilentWhenSharedVariableIsGround) {
  LintOptions opts;
  opts.entries = {"p(1, A, B)."};
  LintReport rep = lint(
      "p(X, Y, Z) :- q(X, Y) & r(X, Z).\n"
      "q(A, B) :- B is A + 1.\n"
      "r(A, B) :- B is A * 2.\n",
      opts);
  EXPECT_EQ(rep.sink.count_code("APL001"), 0u);
}

TEST(Lint, Apl001SilentOnIndependentOutputs) {
  // Two parallel goals with disjoint free output variables are safe.
  LintOptions opts;
  opts.entries = {"top(R)."};
  LintReport rep = lint(
      "f(0, 1) :- !.\n"
      "f(N, V) :- N1 is N - 1, f(N1, V1), V is V1 + N.\n"
      "top(R) :- f(3, A) & f(4, B), R is A + B.\n",
      opts);
  EXPECT_EQ(rep.sink.count_code("APL001"), 0u);
}

TEST(Lint, Apl002FiresOnSingletonAndRespectsUnderscore) {
  LintReport rep = lint("u(X, Lone) :- v(X).\nv(_).\n");
  EXPECT_EQ(rep.sink.count_code("APL002"), 1u);
  LintReport silenced = lint("u(X, _Lone) :- v(X).\nv(_).\n");
  EXPECT_EQ(silenced.sink.count_code("APL002"), 0u);
}

TEST(Lint, Apl003FiresOnUndefinedPredicate) {
  LintReport rep = lint("v(X) :- w(X).\n");
  EXPECT_EQ(rep.sink.count_code("APL003"), 1u);
  // Library predicates are not "undefined".
  LintReport ok = lint("v(X, Y) :- append(X, [1], Y).\n");
  EXPECT_EQ(ok.sink.count_code("APL003"), 0u);
}

TEST(Lint, Apl004FiresOnPossiblyNonGroundArithmetic) {
  LintOptions opts;
  opts.entries = {"top(R)."};
  LintReport rep = lint(
      "c(X, Y) :- Y is X + 1.\n"
      "top(R) :- c(_In, R).\n",
      opts);
  EXPECT_GE(rep.sink.count_code("APL004"), 1u);
  // Same predicate under a ground call is clean.
  LintOptions ground;
  ground.entries = {"c(3, R)."};
  LintReport ok = lint("c(X, Y) :- Y is X + 1.\n", ground);
  EXPECT_EQ(ok.sink.count_code("APL004"), 0u);
}

TEST(Lint, Apl005FiresOnUnreachableClause) {
  LintReport rep = lint(
      "g(_) :- !, t1.\n"
      "g(0) :- t2.\n"
      "t1.\nt2.\n");
  EXPECT_EQ(rep.sink.count_code("APL005"), 1u);
}

TEST(Lint, Apl006OverlapIsPedanticOnly) {
  const std::string src =
      "o(1).\n"
      "o(N) :- N > 0.\n";
  LintReport quiet = lint(src);
  EXPECT_EQ(quiet.sink.count_code("APL006"), 0u);
  LintOptions opts;
  opts.pedantic = true;
  LintReport rep = lint(src, opts);
  EXPECT_GE(rep.sink.count_code("APL006"), 1u);
}

TEST(Lint, Apl007FiresOnUntabledNondetRecursion) {
  // The seeded bug: a left-recursive transitive closure with overlapping
  // clauses and no table declaration — the exponential-recomputation (and,
  // for SLD, nontermination) shape the diagnostic exists to catch.
  const std::string src =
      "edge(1, 2). edge(2, 3).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n";
  LintReport rep = lint(src);
  EXPECT_EQ(rep.sink.count_code("APL007"), 1u);
  // The message carries the machine-applicable fixit.
  bool found = false;
  for (const Diagnostic& d : rep.sink.all()) {
    if (d.code != "APL007") continue;
    found = true;
    EXPECT_EQ(d.predicate, "tc/2");
    EXPECT_NE(d.message.find(":- table tc/2."), std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(found);
}

TEST(Lint, Apl007SilencedByTableDirective) {
  const std::string src =
      ":- table tc/2.\n"
      "edge(1, 2). edge(2, 3).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n";
  EXPECT_EQ(lint(src).sink.count_code("APL007"), 0u);
  // Comma-separated spec lists count too.
  const std::string multi =
      ":- table tc/2, path/2.\n"
      "edge(1, 2).\n"
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  EXPECT_EQ(lint(multi).sink.count_code("APL007"), 0u);
}

TEST(Lint, Apl007QuietOnDeterminateAndExclusiveRecursion) {
  // Structurally exclusive []/[H|T] recursion: linear subgoal tree, no
  // warning even though the det proof may fall short of full `det`.
  const std::string walker =
      "len([], 0).\n"
      "len([_|T], N) :- len(T, M), N is M + 1.\n";
  EXPECT_EQ(lint(walker).sink.count_code("APL007"), 0u);
  // Cut-committed recursion is determinate: no warning.
  const std::string cut =
      "count(0) :- !.\n"
      "count(N) :- N1 is N - 1, count(N1).\n";
  EXPECT_EQ(lint(cut).sink.count_code("APL007"), 0u);
  // Non-recursive nondeterminism is APL006 territory, not APL007.
  const std::string flat =
      "pick(1).\n"
      "pick(N) :- N > 0.\n";
  EXPECT_EQ(lint(flat).sink.count_code("APL007"), 0u);
}

TEST(Lint, Apl008FiresOnParallelAssertReadWithoutRefresh) {
  // The seeded bug: one '&' branch asserts into a dynamic predicate that a
  // parallel sibling reads. The sibling reads through an epoch-pinned
  // snapshot, so whether it observes the new clause depends on agent
  // scheduling.
  const std::string src =
      ":- dynamic fact/1.\n"
      "fact(0).\n"
      "run(X) :- assert(fact(1)) & fact(X).\n";
  LintReport rep = lint(src);
  EXPECT_EQ(rep.sink.count_code("APL008"), 1u);
  bool found = false;
  for (const Diagnostic& d : rep.sink.all()) {
    if (d.code != "APL008") continue;
    found = true;
    EXPECT_EQ(d.predicate, "run/1");
    // The message carries the fixit idiom.
    EXPECT_NE(d.message.find("snapshot_refresh/0"), std::string::npos)
        << d.message;
    EXPECT_NE(d.message.find("fact/1"), std::string::npos) << d.message;
  }
  EXPECT_TRUE(found);
  // retract into the sibling-read predicate fires identically.
  const std::string retract_src =
      ":- dynamic fact/1.\n"
      "fact(0).\n"
      "run(X) :- retract(fact(0)) & fact(X).\n";
  EXPECT_EQ(lint(retract_src).sink.count_code("APL008"), 1u);
}

TEST(Lint, Apl008SilencedByRefreshIdiom) {
  // The documented idiom: the reading goal starts with snapshot_refresh/0.
  const std::string src =
      ":- dynamic fact/1.\n"
      "fact(0).\n"
      "run(X) :- assert(fact(1)) & (snapshot_refresh, fact(X)).\n";
  EXPECT_EQ(lint(src).sink.count_code("APL008"), 0u);
}

TEST(Lint, Apl008QuietWithoutDynamicOrParallelRead) {
  // Not declared dynamic: assert is a (runtime) bug of a different kind,
  // not a snapshot-ordering hazard the lint owns.
  const std::string not_dynamic =
      "fact(0).\n"
      "run(X) :- assert(fact(1)) & fact(X).\n";
  EXPECT_EQ(lint(not_dynamic).sink.count_code("APL008"), 0u);
  // No sibling reads the mutated predicate: nothing to mis-order.
  const std::string no_read =
      ":- dynamic fact/1.\n"
      "fact(0).\n"
      "other(1).\n"
      "run(X) :- assert(fact(1)) & other(X).\n";
  EXPECT_EQ(lint(no_read).sink.count_code("APL008"), 0u);
  // Sequential assert-then-read is ordered by the worker's own step
  // refresh: no warning outside '&'.
  const std::string sequential =
      ":- dynamic fact/1.\n"
      "fact(0).\n"
      "run(X) :- assert(fact(1)), fact(X).\n";
  EXPECT_EQ(lint(sequential).sink.count_code("APL008"), 0u);
}

// ---------------------------------------------------------------------------
// Shipped workloads are lint-clean under their real queries.
// ---------------------------------------------------------------------------

TEST(Lint, AllWorkloadsAreCleanUnderTheirQueries) {
  // Two shipped predicates legitimately trip the APL007 tabling advisor and
  // are deliberately left untabled: anc/2 (ancestors) is the classic
  // recomputation demo — the tabled closure family lives in
  // graph_workloads() — and qperm/3 (queens1) overlaps because its
  // select-based generator clause takes an unrestricted first argument.
  // Everything else must be clean, and no other code may fire at all.
  const std::map<std::string, std::size_t> known_apl007 = {
      {"ancestors", 1},
      {"queens1", 1},
  };
  for (const Workload& w : workloads()) {
    LintOptions opts;
    opts.entries = {w.query, w.small_query};
    SymbolTable syms;
    LintReport rep = lint_program(syms, w.source, opts);
    const auto it = known_apl007.find(w.name);
    const std::size_t allowed = it == known_apl007.end() ? 0 : it->second;
    EXPECT_EQ(rep.sink.count_code("APL007"), allowed)
        << w.name << ": " << rep.sink.to_text();
    EXPECT_EQ(rep.warnings(), allowed) << w.name << ": "
                                       << rep.sink.to_text();
    EXPECT_EQ(rep.errors(), 0u) << w.name << ": " << rep.sink.to_text();
  }
}

// ---------------------------------------------------------------------------
// Renderer round-trip: parse -> render -> parse is the identity on clause
// templates (modulo a variable-slot bijection) for every workload program.
// ---------------------------------------------------------------------------

bool cells_equal(const TermTemplate& ta, Cell a, const TermTemplate& tb,
                 Cell b, std::map<std::uint32_t, std::uint32_t>& vmap) {
  if (a.tag() != b.tag()) return false;
  switch (a.tag()) {
    case Tag::Atm:
      return a.symbol() == b.symbol();
    case Tag::Int:
      return a.integer() == b.integer();
    case Tag::VarSlot: {
      auto [it, inserted] = vmap.emplace(a.var_slot(), b.var_slot());
      return it->second == b.var_slot();
    }
    case Tag::Lst: {
      const Cell ha = ta.cells[a.ref()];
      const Cell aa = ta.cells[a.ref() + 1];
      const Cell hb = tb.cells[b.ref()];
      const Cell ab = tb.cells[b.ref() + 1];
      return cells_equal(ta, ha, tb, hb, vmap) &&
             cells_equal(ta, aa, tb, ab, vmap);
    }
    case Tag::Str: {
      const Cell fa = ta.cells[a.ref()];
      const Cell fb = tb.cells[b.ref()];
      if (fa.fun_symbol() != fb.fun_symbol() ||
          fa.fun_arity() != fb.fun_arity()) {
        return false;
      }
      for (unsigned i = 1; i <= fa.fun_arity(); ++i) {
        if (!cells_equal(ta, ta.cells[a.ref() + i], tb,
                         tb.cells[b.ref() + i], vmap)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;  // Ref/Fun never appear as template roots
  }
}

bool templates_equal(const TermTemplate& a, const TermTemplate& b) {
  std::map<std::uint32_t, std::uint32_t> vmap;
  return a.nvars == b.nvars && cells_equal(a, a.root, b, b.root, vmap);
}

TEST(Render, ParseRenderParseIsIdentityOnWorkloads) {
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    std::vector<TermTemplate> orig = parse_program(syms, w.source);
    std::string rendered;
    for (const TermTemplate& t : orig) {
      rendered += render_clause(syms, t);
      rendered += ".\n";
    }
    std::vector<TermTemplate> back = parse_program(syms, rendered);
    ASSERT_EQ(back.size(), orig.size()) << w.name << "\n" << rendered;
    for (std::size_t i = 0; i < orig.size(); ++i) {
      EXPECT_TRUE(templates_equal(orig[i], back[i]))
          << w.name << " clause " << i << ":\n  rendered as: "
          << render_clause(syms, orig[i]) << "\n  reparsed as: "
          << render_clause(syms, back[i]);
    }
  }
}

TEST(Render, TrickyOperatorTermsRoundTrip) {
  const char* cases[] = {
      "a :- b, (c -> d ; e).",
      "a :- (b ; c), d.",
      "p(X) :- X = (1, 2).",
      "p(X) :- X = [a, (b, c) | T], q(T).",
      "p :- q(- 1 + 2, -(3), - X), r(X).",
      "p(X, Y) :- Y is -X + (2 - 3) - 4, q(X).",
      "p :- a = (:-), b = (&), c = [;].",
      "p :- \\+ (a, b).",
      "p(X) :- q((a :- b), X).",
      "p :- a & (b, c) & (d ; e).",
      "p(X) :- X = f(- 1), Y = - (2 + 3), q(Y).",
      "p(X) :- X = '{}'(a), Y = {a, b}, q(Y).",
  };
  for (const char* src : cases) {
    SymbolTable syms;
    std::vector<TermTemplate> orig = parse_program(syms, src);
    ASSERT_EQ(orig.size(), 1u) << src;
    std::string rendered = render_clause(syms, orig[0]) + ".";
    std::vector<TermTemplate> back = parse_program(syms, rendered);
    ASSERT_EQ(back.size(), 1u) << src << " => " << rendered;
    EXPECT_TRUE(templates_equal(orig[0], back[0]))
        << src << " => " << rendered;
  }
}

// ---------------------------------------------------------------------------
// Annotator round-trip: annotated output must re-parse, and annotating an
// already-annotated program is a fixpoint (catches lost parentheses).
// ---------------------------------------------------------------------------

TEST(Render, AnnotateOutputReparsesAndIsIdempotent) {
  for (const Workload& w : workloads()) {
    SymbolTable syms;
    std::string once = annotate_program(syms, w.source);
    std::vector<TermTemplate> reparsed = parse_program(syms, once);
    std::vector<TermTemplate> orig = parse_program(syms, w.source);
    ASSERT_EQ(reparsed.size(), orig.size()) << w.name << "\n" << once;
    std::string twice = annotate_program(syms, once);
    EXPECT_EQ(once, twice) << w.name;
  }
}

}  // namespace
}  // namespace ace
