#include <gtest/gtest.h>

#include <thread>

#include "support/chunked_vector.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"

namespace ace {
namespace {

TEST(ChunkedVector, PushAndIndex) {
  ChunkedVector<int> v;
  EXPECT_EQ(v.size(), 0u);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_EQ(v.push_back(i * 3), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(v.size(), 100000u);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(ChunkedVector, StableAddressesAcrossGrowth) {
  ChunkedVector<int> v;
  v.push_back(42);
  int* p = &v[0];
  for (int i = 0; i < 1 << 18; ++i) v.push_back(i);
  EXPECT_EQ(p, &v[0]);
  EXPECT_EQ(*p, 42);
}

TEST(ChunkedVector, Truncate) {
  ChunkedVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  v.truncate(10);
  EXPECT_EQ(v.size(), 10u);
  v.push_back(99);
  EXPECT_EQ(v[10], 99);
}

TEST(ChunkedVector, CopyPrefixFrom) {
  ChunkedVector<int> a;
  ChunkedVector<int> b;
  for (int i = 0; i < 5000; ++i) a.push_back(i * 7);
  b.push_back(-1);
  b.copy_prefix_from(a, 3000);
  ASSERT_EQ(b.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(b[static_cast<std::size_t>(i)], i * 7);
}

TEST(ChunkedVector, ConcurrentReaderSeesPublishedElements) {
  // One writer appends; a reader concurrently reads the published prefix.
  ChunkedVector<std::size_t> v;
  constexpr std::size_t kN = 200000;
  std::thread writer([&] {
    for (std::size_t i = 0; i < kN; ++i) v.push_back(i);
  });
  std::size_t checked = 0;
  while (checked < kN) {
    std::size_t n = v.size();
    for (std::size_t i = checked; i < n; ++i) {
      ASSERT_EQ(v[i], i);
    }
    checked = n;
  }
  writer.join();
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%05d", 7), "00007");
  EXPECT_EQ(strf("no args"), "no args");
}

TEST(Strutil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strutil, PlainAtomNames) {
  EXPECT_TRUE(is_plain_atom_name("foo"));
  EXPECT_TRUE(is_plain_atom_name("fooBar_9"));
  EXPECT_TRUE(is_plain_atom_name("[]"));
  EXPECT_TRUE(is_plain_atom_name("+"));
  EXPECT_TRUE(is_plain_atom_name("=.."));
  EXPECT_FALSE(is_plain_atom_name("Foo"));
  EXPECT_FALSE(is_plain_atom_name("hello world"));
  EXPECT_FALSE(is_plain_atom_name(""));
  EXPECT_FALSE(is_plain_atom_name("9lives"));
}

TEST(Rng, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "v1", "v2"});
  t.add_row({"alpha", "1", "22"});
  t.add_row({"b", "333", "4"});
  std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Header then separator then two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(PaperCell, FormatsImprovement) {
  EXPECT_EQ(paper_cell(100, 80), "100/80 (+20%)");
  EXPECT_EQ(paper_cell(100, 110), "100/110 (-10%)");
}

}  // namespace
}  // namespace ace
