#include <gtest/gtest.h>

#include "parse/lexer.hpp"
#include "parse/parser.hpp"
#include "term/print.hpp"

namespace ace {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  SymbolTable syms;
  Store store{1};

  // Parses a term and prints it back canonically (with source var names).
  std::string roundtrip(const std::string& text) {
    TermTemplate t = parse_term_text(syms, text);
    std::vector<Addr> vars;
    Addr a = instantiate(store, 0, t, &vars);
    std::unordered_map<Addr, std::string> names;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      names.emplace(vars[i], t.var_names[i]);
    }
    PrintOpts opts;
    opts.var_names = &names;
    return term_to_string(store, syms, a, opts);
  }
};

TEST_F(ParserTest, Atoms) {
  EXPECT_EQ(roundtrip("foo."), "foo");
  EXPECT_EQ(roundtrip("'quoted atom'."), "'quoted atom'");
  EXPECT_EQ(roundtrip("[]."), "[]");
  EXPECT_EQ(roundtrip("{}."), "{}");
}

TEST_F(ParserTest, Integers) {
  EXPECT_EQ(roundtrip("42."), "42");
  EXPECT_EQ(roundtrip("- 1."), "-1");
  EXPECT_EQ(roundtrip("0'a."), "97");
}

TEST_F(ParserTest, Variables) {
  TermTemplate t = parse_term_text(syms, "f(X, Y, X).");
  EXPECT_EQ(t.nvars, 2u);
  EXPECT_EQ(t.var_names[0], "X");
  EXPECT_EQ(t.var_names[1], "Y");
}

TEST_F(ParserTest, AnonymousVariablesAreDistinct) {
  TermTemplate t = parse_term_text(syms, "f(_, _).");
  EXPECT_EQ(t.nvars, 2u);
}

TEST_F(ParserTest, Structures) {
  EXPECT_EQ(roundtrip("f(a, 1, g(b))."), "f(a,1,g(b))");
}

TEST_F(ParserTest, Lists) {
  EXPECT_EQ(roundtrip("[1, 2, 3]."), "[1,2,3]");
  EXPECT_EQ(roundtrip("[a|T].").substr(0, 3), "[a|");
  EXPECT_EQ(roundtrip("[[1], []]."), "[[1],[]]");
}

TEST_F(ParserTest, OperatorPrecedence) {
  // * binds tighter than +.
  EXPECT_EQ(roundtrip("1 + 2 * 3."), "(1 + (2 * 3))");
  EXPECT_EQ(roundtrip("(1 + 2) * 3."), "((1 + 2) * 3)");
  // Left associativity of -.
  EXPECT_EQ(roundtrip("7 - 2 - 1."), "((7 - 2) - 1)");
  // Comparison below arithmetic.
  EXPECT_EQ(roundtrip("X is 1 + 2."), "(X is (1 + 2))");
}

TEST_F(ParserTest, CommaAndAmpPrecedence) {
  // '&' (975) binds tighter than ',' (1000).
  EXPECT_EQ(roundtrip("a, b & c, d."), "(a,((b & c),d))");
  // xfy associativity.
  EXPECT_EQ(roundtrip("a & b & c."), "(a & (b & c))");
  EXPECT_EQ(roundtrip("a, b, c."), "(a,(b,c))");
}

TEST_F(ParserTest, ClauseStructure) {
  EXPECT_EQ(roundtrip("h(X) :- b1(X), b2."), "(h(X) :- (b1(X),b2))");
}

TEST_F(ParserTest, IfThenElse) {
  EXPECT_EQ(roundtrip("( a -> b ; c )."), "((a -> b) ; c)");
}

TEST_F(ParserTest, NegationPrefix) {
  EXPECT_EQ(roundtrip("\\+ foo(X)."), "\\+(foo(X))");
}

TEST_F(ParserTest, PrefixMinusOnExpression) {
  EXPECT_EQ(roundtrip("X is - Y."), "(X is -Y)");
  EXPECT_EQ(roundtrip("X is 3 - -2."), "(X is (3 - -2))");
}

TEST_F(ParserTest, CurlyBraces) {
  EXPECT_EQ(roundtrip("{a, b}."), "{(a,b)}");
}

TEST_F(ParserTest, CommentsSkipped) {
  EXPECT_EQ(roundtrip("% line comment\nfoo. % trailing"), "foo");
  EXPECT_EQ(roundtrip("/* block\ncomment */ bar."), "bar");
}

TEST_F(ParserTest, ProgramParsing) {
  auto clauses = parse_program(syms, R"PL(
p(1).
p(2) :- q.
q.
)PL");
  EXPECT_EQ(clauses.size(), 3u);
}

TEST_F(ParserTest, QuotedAtomEscapes) {
  EXPECT_EQ(roundtrip("'it''s'."), "'it\\'s'");
  EXPECT_EQ(roundtrip("'a\\nb'.").size(), 5u);  // 'a<newline>b' quoted
}

TEST_F(ParserTest, FunctorParenMustBeAdjacent) {
  // "f (a)" is NOT a functor application; f is an atom followed by (a),
  // which is a syntax error in term position... our parser treats the
  // parenthesized term as a standalone primary, so expect an error.
  EXPECT_THROW(parse_term_text(syms, "f (a)."), AceError);
}

TEST_F(ParserTest, Errors) {
  EXPECT_THROW(parse_term_text(syms, "f(a."), AceError);
  EXPECT_THROW(parse_term_text(syms, "f(a))."), AceError);
  EXPECT_THROW(parse_term_text(syms, "[1, 2."), AceError);
  EXPECT_THROW(parse_term_text(syms, ""), AceError);
  EXPECT_THROW(parse_term_text(syms, "foo"), AceError);  // missing '.'
  EXPECT_THROW(parse_term_text(syms, "'unterminated."), AceError);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  try {
    parse_term_text(syms, "f(a,\n  ).");
    FAIL() << "expected parse error";
  } catch (const AceError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(ParserTest, SemicolonAndBar) {
  EXPECT_EQ(roundtrip("a ; b."), "(a ; b)");
}

TEST_F(ParserTest, NestedOperatorsInArgs) {
  // Inside argument lists, ',' terminates at priority 999.
  EXPECT_EQ(roundtrip("f(1 + 2, X)."), "f((1 + 2),X)");
}

}  // namespace
}  // namespace ace
