// Serving-layer tests: session reuse, cancellation (mid-parcall, LAO,
// queued), deadlines with partial solutions, admission backpressure, and
// the assert/retract vs. concurrent-query race the Database shared lock
// exists to win.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "builtins/lib.hpp"
#include "obs/recorder.hpp"
#include "term/canon.hpp"
#include "serve/debug_pages.hpp"
#include "serve/http_metrics.hpp"
#include "serve/service.hpp"
#include "stats/prometheus.hpp"
#include "workloads/graphs.hpp"

namespace ace {
namespace {

using namespace std::chrono_literals;

// Long-running generators. spin/0 never terminates; nat/1 enumerates
// forever; work/1 burns a controllable number of resolutions.
constexpr const char* kSpinSrc = R"PL(
spin :- spin.
nat(z).
nat(s(X)) :- nat(X).
work(0) :- !.
work(N) :- N1 is N - 1, work(N1).
burn2 :- work(100000000) & work(100000000).
)PL";

// Backstop so a broken stop protocol fails the test instead of hanging it.
constexpr auto kBackstop = 10s;

EngineConfig seq_cfg() { return EngineConfig{}; }

EngineConfig andp_cfg(unsigned agents, bool shallow, bool pdo,
                      bool threads = false) {
  EngineConfig c;
  c.mode = EngineMode::Andp;
  c.agents = agents;
  c.lpco = true;
  c.shallow = shallow;
  c.pdo = pdo;
  c.use_threads = threads;
  return c;
}

EngineConfig orp_cfg(unsigned agents, bool lao) {
  EngineConfig c;
  c.mode = EngineMode::Orp;
  c.agents = agents;
  c.lao = lao;
  return c;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : builtins(db.syms()) { load_library(db); }

  Database db;
  Builtins builtins;
};

// ---------------------------------------------------------------------------
// EngineSession: reuse and cancellation.

TEST_F(ServeTest, SessionReuseProducesIdenticalResults) {
  db.consult("edge(a,b). edge(b,c). edge(a,c)."
             "path(X,Y) :- edge(X,Y)."
             "path(X,Y) :- edge(X,Z), path(Z,Y).");
  EngineSession session(db, builtins, seq_cfg());
  SolveResult first = session.run("path(a, X).");
  for (int i = 0; i < 5; ++i) {
    SolveResult again = session.run("path(a, X).");
    EXPECT_EQ(again.solutions, first.solutions) << "reuse " << i;
    EXPECT_EQ(again.stats.resolutions, first.stats.resolutions)
        << "reuse " << i;
    EXPECT_EQ(again.virtual_time, first.virtual_time) << "reuse " << i;
  }
  EXPECT_EQ(session.queries_run(), 6u);
}

TEST_F(ServeTest, CancelMidParcallAcrossOptimizationLevels) {
  db.consult(kSpinSrc);
  struct Variant {
    bool shallow;
    bool pdo;
    bool threads;
  };
  const Variant variants[] = {
      {false, false, false},
      {true, false, false},
      {false, true, false},
      {true, true, false},
      {true, true, true},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(testing::Message() << "shallow=" << v.shallow
                                    << " pdo=" << v.pdo
                                    << " threads=" << v.threads);
    EngineSession session(db, builtins, andp_cfg(4, v.shallow, v.pdo,
                                                 v.threads));
    std::thread canceller([&session] {
      // run() resets the session token at query start, so under heavy
      // scheduler load an early request can land before the reset and be
      // wiped. The backstop deadline is armed right after that reset:
      // once it is visible the reset is behind us and a cancel sticks.
      while (!session.token().has_deadline()) {
        std::this_thread::sleep_for(1ms);
      }
      std::this_thread::sleep_for(20ms);
      while (session.token().cause() == StopCause::None) {
        session.token().request_cancel();
        std::this_thread::sleep_for(1ms);
      }
    });
    QueryBudget budget;
    budget.deadline = kBackstop;  // safety net only; cancel should win
    SolveResult r = session.run("burn2.", budget);
    canceller.join();
    EXPECT_EQ(r.stop, StopCause::Cancelled);
    EXPECT_TRUE(r.solutions.empty());

    // The cancelled engine must not be wedged: the very same session must
    // serve a normal query correctly afterwards.
    SolveResult after = session.run("work(10).");
    EXPECT_EQ(after.stop, StopCause::None);
    ASSERT_EQ(after.solutions.size(), 1u);
  }
}

TEST_F(ServeTest, CancelOrpDuringLaoEnumerationThenReuse) {
  // Unbounded enumeration with multi-clause choice points so LAO reuse and
  // public-node takes are actually exercised when the cancel lands.
  db.consult("d(0). d(1). d(2). d(3). d(4). d(5). d(6). d(7)."
             "tup(A,B,C,D,E,F,G,H) :- d(A), d(B), d(C), d(D), d(E), d(F),"
             "    d(G), d(H).");
  for (bool lao : {false, true}) {
    SCOPED_TRACE(testing::Message() << "lao=" << lao);
    EngineSession session(db, builtins, orp_cfg(4, lao));
    std::thread canceller([&session] {
      std::this_thread::sleep_for(20ms);
      session.token().request_cancel();
    });
    QueryBudget budget;
    budget.deadline = kBackstop;
    SolveResult r = session.run("tup(A,B,C,D,E,F,G,H).", budget);
    canceller.join();
    EXPECT_EQ(r.stop, StopCause::Cancelled);
    // 8^8 tuples: the cancel must land long before exhaustion.
    EXPECT_LT(r.solutions.size(), std::size_t{1} << 24);

    SolveResult after = session.run("d(X).");
    EXPECT_EQ(after.stop, StopCause::None);
    EXPECT_EQ(after.solutions.size(), 8u);
  }
}

TEST_F(ServeTest, DeadlineReturnsPartialSolutions) {
  db.consult(kSpinSrc);
  EngineSession session(db, builtins, seq_cfg());
  QueryBudget budget;
  budget.deadline = 30ms;
  SolveResult r = session.run("nat(X).", budget);
  EXPECT_EQ(r.stop, StopCause::Deadline);
  EXPECT_GE(r.solutions.size(), 1u);  // z, s(z), ... found before expiry
  EXPECT_EQ(r.solutions[0], "X = z");

  // Reusable afterwards.
  SolveResult after = session.run("nat(X).", QueryBudget{0ns, 3});
  EXPECT_EQ(after.stop, StopCause::None);
  EXPECT_EQ(after.solutions.size(), 3u);
}

TEST_F(ServeTest, PreCancelledExternalTokenStopsImmediately) {
  db.consult(kSpinSrc);
  EngineSession session(db, builtins, seq_cfg());
  CancelToken token;
  token.request_cancel();
  SolveResult r = session.run("spin.", QueryBudget{}, &token);
  EXPECT_EQ(r.stop, StopCause::Cancelled);
  EXPECT_TRUE(r.solutions.empty());

  SolveResult after = session.run("nat(X).", QueryBudget{0ns, 2});
  EXPECT_EQ(after.solutions.size(), 2u);
}

TEST_F(ServeTest, ResolutionBudgetKeepsThrowingContract) {
  db.consult(kSpinSrc);
  EngineSession session(db, builtins, seq_cfg());
  QueryBudget budget;
  budget.resolution_limit = 1000;
  EXPECT_THROW(session.run("spin.", budget), AceError);
  // A thrown run must not wedge the session either.
  SolveResult after = session.run("work(10).");
  EXPECT_EQ(after.solutions.size(), 1u);
}

// ---------------------------------------------------------------------------
// QueryService: pooling, dispatch, budgets, backpressure.

TEST_F(ServeTest, ServiceRunsMixedEnginesConcurrently) {
  db.consult("d(1). d(2). d(3)."
             "pair(X,Y) :- d(X), d(Y)."
             "ppair(X,Y) :- d(X) & d(Y).");
  const std::vector<std::string> expected = {
      "X = 1, Y = 1", "X = 1, Y = 2", "X = 1, Y = 3",
      "X = 2, Y = 1", "X = 2, Y = 2", "X = 2, Y = 3",
      "X = 3, Y = 1", "X = 3, Y = 2", "X = 3, Y = 3"};

  ServiceOptions opts;
  opts.dispatch_threads = 4;
  QueryService service(db, opts);

  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    QueryRequest req;
    switch (i % 3) {
      case 0:
        req.engine = seq_cfg();
        req.query = "pair(X, Y).";
        break;
      case 1:
        req.engine = andp_cfg(4, true, true);
        req.query = "ppair(X, Y).";
        break;
      default:
        req.engine = orp_cfg(4, true);
        req.query = "pair(X, Y).";
        break;
    }
    tickets.push_back(service.submit(std::move(req)));
  }
  for (auto& t : tickets) {
    QueryResult resp = t.result.get();
    ASSERT_TRUE(resp.completed()) << resp.error;
    std::vector<std::string> sols = resp.solutions;
    std::sort(sols.begin(), sols.end());
    EXPECT_EQ(sols, expected);
    EXPECT_GT(resp.stats.resolutions, 0u);
  }
  service.shutdown();

  ServeMetricsSnapshot m = service.metrics_snapshot();
  EXPECT_EQ(m.submitted, 64u);
  EXPECT_EQ(m.admitted, 64u);
  EXPECT_EQ(m.completed, 64u);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.latency.count, 64u);
  // Three configs on four dispatch threads: far fewer cold builds than
  // queries — the pool must get hits.
  EXPECT_GT(m.pool_hits, 32u);
  EXPECT_GT(m.pool_hit_rate(), 0.5);
}

TEST_F(ServeTest, ServicePoolReuseIsObservable) {
  db.consult("d(1).");
  ServiceOptions opts;
  opts.dispatch_threads = 1;  // serialize so reuse is deterministic
  QueryService service(db, opts);
  QueryRequest req;
  req.query = "d(X).";
  QueryResult first = service.run(req);
  ASSERT_TRUE(first.completed());
  EXPECT_FALSE(first.engine_reused);
  QueryResult second = service.run(req);
  ASSERT_TRUE(second.completed());
  EXPECT_TRUE(second.engine_reused);
  EXPECT_EQ(second.solutions, first.solutions);
  EXPECT_EQ(service.metrics_snapshot().pool_hits, 1u);
}

TEST_F(ServeTest, ServiceCancelStopsRunningQuery) {
  db.consult(kSpinSrc);
  ServiceOptions opts;
  opts.dispatch_threads = 1;
  opts.default_deadline = kBackstop;
  QueryService service(db, opts);
  QueryRequest req;
  req.query = "spin.";
  QueryService::Ticket t = service.submit(std::move(req));
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(service.cancel(t.id));
  QueryResult resp = t.result.get();
  EXPECT_EQ(resp.outcome, QueryOutcome::Cancelled);

  // The engine that served the cancelled query is back in the pool and
  // must serve the next query correctly.
  QueryRequest again;
  again.query = "nat(X).";
  again.max_solutions = 2;
  QueryResult ok = service.run(again);
  EXPECT_TRUE(ok.completed());
  EXPECT_TRUE(ok.engine_reused);
  EXPECT_EQ(ok.solutions.size(), 2u);
  EXPECT_EQ(service.metrics_snapshot().cancelled, 1u);
}

TEST_F(ServeTest, ServiceCancelQueuedQueryNeverRuns) {
  db.consult(kSpinSrc);
  ServiceOptions opts;
  opts.dispatch_threads = 1;
  QueryService service(db, opts);

  // Block the only dispatch thread.
  QueryRequest blocker;
  blocker.query = "spin.";
  blocker.deadline = 400ms;
  QueryService::Ticket bt = service.submit(std::move(blocker));

  QueryRequest queued;
  queued.query = "nat(X).";
  queued.deadline = kBackstop;
  QueryService::Ticket qt = service.submit(std::move(queued));
  EXPECT_TRUE(service.cancel(qt.id));
  QueryResult resp = qt.result.get();
  EXPECT_EQ(resp.outcome, QueryOutcome::Cancelled);
  EXPECT_EQ(resp.stats.resolutions, 0u);  // answered without running

  QueryResult br = bt.result.get();
  EXPECT_EQ(br.outcome, QueryOutcome::DeadlineExpired);
  EXPECT_FALSE(service.cancel(qt.id));  // already finished
}

TEST_F(ServeTest, ServiceDeadlineExpiresInQueue) {
  db.consult(kSpinSrc);
  ServiceOptions opts;
  opts.dispatch_threads = 1;
  QueryService service(db, opts);

  QueryRequest blocker;
  blocker.query = "spin.";
  blocker.deadline = 300ms;
  QueryService::Ticket bt = service.submit(std::move(blocker));

  // These can only be dispatched after the blocker's 300ms, long past
  // their own 1ms deadlines: they must be answered without running.
  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.query = "nat(X).";
    req.deadline = 1ms;
    tickets.push_back(service.submit(std::move(req)));
  }
  for (auto& t : tickets) {
    QueryResult resp = t.result.get();
    EXPECT_EQ(resp.outcome, QueryOutcome::DeadlineExpired);
    EXPECT_EQ(resp.stats.resolutions, 0u);
  }
  EXPECT_EQ(bt.result.get().outcome, QueryOutcome::DeadlineExpired);
  EXPECT_EQ(service.metrics_snapshot().deadline_expired, 5u);
}

TEST_F(ServeTest, ServiceRunningDeadlineReturnsPartials) {
  db.consult(kSpinSrc);
  QueryService service(db);
  QueryRequest req;
  req.query = "nat(X).";
  req.deadline = 30ms;
  QueryResult resp = service.run(std::move(req));
  EXPECT_EQ(resp.outcome, QueryOutcome::DeadlineExpired);
  EXPECT_GE(resp.solutions.size(), 1u);
  EXPECT_EQ(resp.solutions[0], "X = z");
}

TEST_F(ServeTest, ServiceRejectsWhenQueueFull) {
  db.consult(kSpinSrc);
  ServiceOptions opts;
  opts.dispatch_threads = 1;
  opts.queue_capacity = 2;
  QueryService service(db, opts);

  QueryRequest blocker;
  blocker.query = "spin.";
  blocker.deadline = 300ms;
  QueryService::Ticket bt = service.submit(std::move(blocker));
  std::this_thread::sleep_for(30ms);  // ensure the blocker left the queue

  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    QueryRequest req;
    req.query = "nat(X).";
    req.max_solutions = 1;
    tickets.push_back(service.submit(std::move(req)));
  }
  std::size_t rejected = 0;
  for (auto& t : tickets) {
    QueryResult resp = t.result.get();
    if (resp.outcome == QueryOutcome::Overload) {
      ++rejected;
      EXPECT_FALSE(resp.error.empty());
    }
  }
  EXPECT_GE(rejected, 4u);  // capacity 2 of 6 submitted while blocked
  (void)bt.result.get();
  EXPECT_EQ(service.metrics_snapshot().rejected, rejected);
}

TEST_F(ServeTest, ServiceReportsErrorsWithoutPoisoningPool) {
  db.consult("d(1).");
  ServiceOptions opts;
  opts.dispatch_threads = 1;
  QueryService service(db, opts);

  QueryRequest bad;
  bad.query = "no_such_predicate(X).";
  QueryResult err = service.run(std::move(bad));
  EXPECT_EQ(err.outcome, QueryOutcome::Error);
  EXPECT_NE(err.error.find("undefined predicate"), std::string::npos);

  QueryRequest parse_bad;
  parse_bad.query = "d(((.";
  EXPECT_EQ(service.run(std::move(parse_bad)).outcome, QueryOutcome::Error);

  QueryRequest good;
  good.query = "d(X).";
  QueryResult ok = service.run(std::move(good));
  EXPECT_TRUE(ok.completed());
  EXPECT_TRUE(ok.engine_reused);  // the erroring session was still pooled
  EXPECT_EQ(service.metrics_snapshot().errors, 2u);
}

TEST_F(ServeTest, ServiceDefaultResolutionLimitApplies) {
  db.consult(kSpinSrc);
  ServiceOptions opts;
  opts.default_resolution_limit = 1000;
  QueryService service(db, opts);
  QueryRequest req;
  req.query = "spin.";
  QueryResult resp = service.run(std::move(req));
  EXPECT_EQ(resp.outcome, QueryOutcome::Error);
}

// The race the Database shared lock exists to win: queries that backtrack
// through a predicate while other served queries assert/retract into it.
// Under TSan/ASan this is the test that catches an unguarded bucket read.
TEST_F(ServeTest, ConcurrentAssertRetractWithBacktrackingQueries) {
  db.consult(":- dynamic item/1.\n"
             "item(seed).\n"
             "d(1). d(2). d(3). d(4). d(5). d(6). d(7). d(8).\n"
             "scan(N) :- d(_), d(_), d(_), item(N).\n");
  ServiceOptions opts;
  opts.dispatch_threads = 8;
  opts.queue_capacity = 1024;
  opts.default_deadline = kBackstop;
  QueryService service(db, opts);

  std::vector<QueryService::Ticket> tickets;
  for (int round = 0; round < 60; ++round) {
    QueryRequest w1;
    w1.query = "assertz(item(a)).";
    tickets.push_back(service.submit(std::move(w1)));

    QueryRequest r1;
    r1.query = "scan(X).";  // 512-way backtrack over d/1 then item/1 reads
    tickets.push_back(service.submit(std::move(r1)));

    QueryRequest w2;
    w2.query = "retract(item(a)).";
    tickets.push_back(service.submit(std::move(w2)));

    QueryRequest r2;
    r2.engine = orp_cfg(2, true);
    r2.query = "scan(X).";
    tickets.push_back(service.submit(std::move(r2)));
  }
  std::size_t ok = 0;
  for (auto& t : tickets) {
    QueryResult resp = t.result.get();
    // assert/retract/scan may succeed or (for retract of an absent fact)
    // fail with zero solutions; nothing may error, crash or expire.
    ASSERT_TRUE(resp.completed()) << resp.error;
    ++ok;
  }
  EXPECT_EQ(ok, 240u);
  // item(seed) never retracted: every scan saw at least the seed.
  service.shutdown();
}

TEST_F(ServeTest, ShutdownDrainsAdmittedWork) {
  db.consult("d(1). d(2).");
  ServiceOptions opts;
  opts.dispatch_threads = 2;
  QueryService service(db, opts);
  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    QueryRequest req;
    req.query = "d(X).";
    tickets.push_back(service.submit(std::move(req)));
  }
  service.shutdown();  // must drain, not drop
  for (auto& t : tickets) {
    EXPECT_TRUE(t.result.get().completed());
  }
  QueryRequest late;
  late.query = "d(X).";
  EXPECT_EQ(service.run(std::move(late)).outcome, QueryOutcome::Overload);
}

// ---------------------------------------------------------------------------
// Tabling across the serving path: the service-wide TableSpace is a
// cross-query cache shared by every pooled session, so completed tables
// must survive session checkin/checkout, serve renamed-variable variants,
// and be invalidated when any tenant asserts/retracts into a predicate a
// table depends on.

TEST_F(ServeTest, TabledAnswersServeAcrossSessionsAndInvalidate) {
  db.consult(graph_program_text() + ":- dynamic edge/2.\n" + chain_edges(16));
  QueryService service(db);

  // First call populates the shared table; tc/2 is left-recursive, so a
  // working answer needs SLG, not SLD.
  QueryRequest q1;
  q1.query = "tc(1, X).";
  QueryResult r1 = service.run(std::move(q1));
  ASSERT_EQ(r1.outcome, QueryOutcome::Success);
  EXPECT_EQ(r1.solutions.size(), 15u);

  ServeMetricsSnapshot after_fill = service.metrics_snapshot();
  EXPECT_TRUE(after_fill.tables_present);
  EXPECT_GT(after_fill.table_misses, 0u);
  EXPECT_GT(after_fill.table_inserts, 0u);
  EXPECT_GT(after_fill.table_entries, 0u);

  // A renamed-variable variant from a different engine config (hence a
  // different pooled session) hits the same completed table.
  QueryRequest q2;
  q2.engine = orp_cfg(2, true);
  q2.query = "tc(1, Y).";
  QueryResult r2 = service.run(std::move(q2));
  ASSERT_EQ(r2.outcome, QueryOutcome::Success);
  EXPECT_EQ(r2.solutions.size(), 15u);
  ServeMetricsSnapshot after_hit = service.metrics_snapshot();
  EXPECT_GT(after_hit.table_hits, after_fill.table_hits);

  // A tenant extends the graph: every table over edge/2 must drop, and the
  // next read must see the new edge, not the stale cache.
  QueryRequest w;
  w.query = "assertz(edge(16, 17)).";
  ASSERT_EQ(service.run(std::move(w)).outcome, QueryOutcome::Success);
  ServeMetricsSnapshot after_write = service.metrics_snapshot();
  EXPECT_GT(after_write.table_invalidations, 0u);

  QueryRequest q3;
  q3.query = "tc(1, X).";
  QueryResult r3 = service.run(std::move(q3));
  ASSERT_EQ(r3.outcome, QueryOutcome::Success);
  EXPECT_EQ(r3.solutions.size(), 16u);

  // Retract restores the original closure.
  QueryRequest u;
  u.query = "retract(edge(16, 17)).";
  ASSERT_EQ(service.run(std::move(u)).outcome, QueryOutcome::Success);
  QueryRequest q4;
  q4.query = "tc(1, Z).";
  QueryResult r4 = service.run(std::move(q4));
  ASSERT_EQ(r4.outcome, QueryOutcome::Success);
  EXPECT_EQ(r4.solutions.size(), 15u);

  // The table counters reach both export surfaces.
  ServeMetricsSnapshot final_snap = service.metrics_snapshot();
  std::string json = final_snap.to_json();
  EXPECT_NE(json.find("\"table_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"table_invalidations\":"), std::string::npos);
  std::string prom = prometheus_text(final_snap);
  EXPECT_NE(prom.find("ace_table_hits"), std::string::npos);
  EXPECT_NE(prom.find("ace_table_misses"), std::string::npos);
  EXPECT_NE(prom.find("ace_table_entries"), std::string::npos);
  service.shutdown();
}

// The serving-cache race: concurrent sessions read completed tables while
// a tenant asserts/retracts into the tabled predicate's support. Under
// TSan this is the test that catches an unguarded TableSpace read or a
// stale-generation publication.
TEST_F(ServeTest, ConcurrentTabledReadsWithInvalidatingWriters) {
  db.consult(graph_program_text() + ":- dynamic edge/2.\n" + chain_edges(12));
  ServiceOptions opts;
  opts.dispatch_threads = 8;
  opts.queue_capacity = 1024;
  opts.default_deadline = kBackstop;
  QueryService service(db, opts);

  std::vector<QueryService::Ticket> tickets;
  for (int round = 0; round < 40; ++round) {
    QueryRequest w1;
    w1.query = "assertz(edge(12, 13)).";
    tickets.push_back(service.submit(std::move(w1)));

    QueryRequest r1;
    r1.query = "tc(1, X).";  // left-recursive: needs the table machinery
    tickets.push_back(service.submit(std::move(r1)));

    QueryRequest r2;
    r2.engine = orp_cfg(2, true);
    r2.query = "path(1, X).";
    tickets.push_back(service.submit(std::move(r2)));

    QueryRequest w2;
    w2.query = "retract(edge(12, 13)).";
    tickets.push_back(service.submit(std::move(w2)));

    QueryRequest r3;
    r3.query = "sg(5, X).";
    tickets.push_back(service.submit(std::move(r3)));
  }
  for (auto& t : tickets) {
    QueryResult resp = t.result.get();
    // Writers may fail (retract of an absent edge), readers see either the
    // 12- or 13-node closure depending on interleaving; nothing may error,
    // deadlock, or serve a wedged table.
    ASSERT_TRUE(resp.completed()) << resp.error;
    if (resp.query == "tc(1, X).") {
      ASSERT_EQ(resp.outcome, QueryOutcome::Success);
      EXPECT_GE(resp.solutions.size(), 11u);
      EXPECT_LE(resp.solutions.size(), 12u);
    }
  }
  // The mix produced real cache traffic on the shared TableSpace.
  ServeMetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_TRUE(snap.tables_present);
  EXPECT_GT(snap.table_misses, 0u);
  EXPECT_GT(snap.table_invalidations, 0u);
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Metrics plumbing.

TEST(ServeMetricsTest, HistogramPercentilesAndJson) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(std::chrono::microseconds(100));
  for (int i = 0; i < 10; ++i) h.record(std::chrono::microseconds(100000));
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_us, 100000u);
  EXPECT_LE(s.percentile_us(0.5), 127u);   // bucket upper bound for 100us
  EXPECT_GE(s.percentile_us(0.99), 65536u);
  EXPECT_NEAR(s.mean_us(), (90 * 100 + 10 * 100000) / 100.0, 0.5);

  ServeMetrics m;
  m.on_submitted();
  m.on_admitted();
  m.on_completed();
  m.record_latency(std::chrono::microseconds(250));
  m.set_queue_depth(3);
  m.set_queue_depth(1);
  ServeMetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.queue_depth, 1u);
  EXPECT_EQ(snap.queue_peak, 3u);
  std::string json = snap.to_json();
  for (const char* key :
       {"\"submitted\":1", "\"admitted\":1", "\"completed\":1",
        "\"queue_peak\":3", "\"latency\":", "\"queue_wait\":",
        "\"pool_hit_rate\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// Satellite hardening: days-long (and corrupt) durations must neither wrap
// the counters nor push percentiles outside the observed range.
TEST(ServeMetricsTest, HistogramSurvivesExtremeDurations) {
  LatencyHistogram h;
  h.record(std::chrono::microseconds(-42));  // negative counts as zero
  h.record(std::chrono::microseconds(0));
  h.record(std::chrono::microseconds::max());
  h.record(std::chrono::microseconds::max());
  h.record(std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::hours(24 * 30)));  // one month
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  // The running sum saturates at UINT64_MAX instead of wrapping small.
  EXPECT_EQ(s.sum_us, ~std::uint64_t{0});
  EXPECT_EQ(s.max_us, static_cast<std::uint64_t>(
                          std::chrono::microseconds::max().count()));
  // Every sample landed in a bucket (the top bucket is a clamp).
  ASSERT_EQ(s.buckets.size(), LatencyHistogram::kBuckets);
  std::uint64_t total = 0;
  for (std::uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
  // Top-bucket percentiles report the observed max, not a fictitious
  // power-of-two bound; low percentiles stay in the zero bucket.
  EXPECT_EQ(s.percentile_us(1.0), s.max_us);
  EXPECT_EQ(s.percentile_us(0.99), s.max_us);
  EXPECT_LE(s.percentile_us(0.0), 1u);
  // JSON and Prometheus renderings stay finite and well-formed.
  ServeMetrics m;
  m.record_latency(std::chrono::microseconds::max());
  ServeMetricsSnapshot snap = m.snapshot();
  EXPECT_NE(snap.to_json().find("\"latency\":"), std::string::npos);
  std::string prom = prometheus_text(snap);
  EXPECT_NE(prom.find("ace_serve_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST(ServeMetricsTest, AttribRollupAggregatesAndRendersConditionally) {
  ServeMetrics m;
  // Before any attribution reports: neither surface mentions it.
  EXPECT_EQ(m.snapshot().to_json().find("attrib"), std::string::npos);
  EXPECT_EQ(prometheus_text(m.snapshot()).find("ace_attrib"),
            std::string::npos);

  AttribBreakdown a;
  a[CostCat::kUnify] = 10;
  a[CostCat::kParcall] = 5;
  m.add_attrib(a, 15);
  m.add_attrib(a, 15);
  ServeMetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.attrib_queries, 2u);
  EXPECT_EQ(snap.attrib_virtual_time, 30u);
  EXPECT_EQ(snap.attrib[CostCat::kUnify], 20u);
  EXPECT_EQ(snap.attrib[CostCat::kParcall], 10u);

  std::string prom = prometheus_text(snap);
  EXPECT_NE(prom.find("ace_attrib_queries_total 2"), std::string::npos);
  EXPECT_NE(prom.find("ace_attrib_makespan_total 30"), std::string::npos);
  EXPECT_NE(
      prom.find("ace_attrib_virtual_time_total{category=\"unify\"} 20"),
      std::string::npos);
  EXPECT_NE(
      prom.find("ace_attrib_virtual_time_total{category=\"parcall\"} 10"),
      std::string::npos);
}

// End-to-end scrape of the metrics endpoint: bind an ephemeral port, speak
// minimal HTTP/1.1, expect the render callback's body behind a 200.
TEST(MetricsHttp, ServesRenderedBodyOverHttp) {
  MetricsHttpServer server(0, [] { return std::string("ace_up 1\n"); });
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char* req = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::send(fd, req, std::strlen(req), 0),
            static_cast<ssize_t>(std::strlen(req)));
  std::string resp;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("ace_up 1\n"), std::string::npos);
  server.stop();  // idempotent with the destructor
}

// ---------------------------------------------------------------------------
// Wall-clock phase timelines, watchdog, /debug pages, Prometheus lint.

// Minimal HTTP GET against 127.0.0.1:port; returns the full response.
std::string http_get(std::uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string http_body(const std::string& resp) {
  std::size_t pos = resp.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : resp.substr(pos + 4);
}

// A program whose independence is undecidable statically, pre-annotated
// with the CGE the annotator would emit: the ground/1 guard runs at query
// time and is counted in Counters::cge_checks.
constexpr const char* kCgeSrc = R"PL(
cmain(A) :- cmk(A), (ground(A) -> cq(A) & cr(A) ; cq(A), cr(A)).
cmk(a).
cq(a).
cr(a).
)PL";

TEST_F(ServeTest, PhaseSpansPartitionWallLatency) {
  db.consult(kSpinSrc);
  QueryService service(db);

  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.query = "work(20000).";
    if (i % 2 == 1) req.engine = andp_cfg(2, true, true);
    QueryResult r = service.run(std::move(req));
    ASSERT_EQ(r.outcome, QueryOutcome::Success) << r.error;

    // Phases are measured unconditionally (no recorder attached here) and
    // partition the admission->response interval: contiguous boundaries
    // telescope, so the sum IS the latency (acceptance bar: within 1%).
    ASSERT_TRUE(r.phases.present);
    const std::uint64_t total = r.phases.total_ns();
    const std::uint64_t lat_ns =
        static_cast<std::uint64_t>(r.latency.count()) * 1000;
    EXPECT_EQ(total / 1000, static_cast<std::uint64_t>(r.latency.count()));
    EXPECT_LE(total >= lat_ns ? total - lat_ns : lat_ns - total,
              lat_ns / 100 + 1000)
        << "phases " << total << "ns vs latency " << lat_ns << "ns";
    EXPECT_GT(r.phases.run_ns, 0u);

    std::string json = r.to_json(true, false);
    EXPECT_NE(json.find("\"phases\":{\"queue_ns\":"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"run_ns\":"), std::string::npos);
  }
  service.shutdown();
}

TEST_F(ServeTest, WatchdogDumpsFlightRecorderForStuckQuery) {
  db.consult(kSpinSrc);
  obs::Recorder rec;
  ServiceOptions sopts;
  sopts.dispatch_threads = 2;
  sopts.obs.recorder = &rec;
  sopts.obs.watchdog_budget = 60ms;
  sopts.obs.watchdog_poll = 10ms;
  QueryService service(db, sopts);

  // Attribution traffic first, so the dump has a rollup to cite.
  for (int i = 0; i < 3; ++i) {
    QueryRequest req;
    req.query = "work(10000).";
    req.engine.attrib = true;
    QueryResult r = service.run(std::move(req));
    ASSERT_EQ(r.outcome, QueryOutcome::Success) << r.error;
  }

  QueryRequest stuck;
  stuck.query = "spin.";
  QueryService::Ticket ticket = service.submit(std::move(stuck));

  const auto deadline = std::chrono::steady_clock::now() + kBackstop;
  while (service.watchdog_fired() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_GE(service.watchdog_fired(), 1u) << "watchdog never fired";

  // Concurrent queries on the remaining dispatch thread are unperturbed
  // while the stuck query spins and the watchdog snapshots around it.
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.query = "work(10000).";
    QueryResult r = service.run(std::move(req));
    EXPECT_EQ(r.outcome, QueryOutcome::Success) << r.error;
  }

  std::vector<std::string> notes = service.slowlog().flight_notes();
  ASSERT_FALSE(notes.empty());
  char qid_tag[64];
  std::snprintf(qid_tag, sizeof(qid_tag), "watchdog: qid=%llu",
                (unsigned long long)ticket.id);
  // Under sanitizer slowdown other queries may also blow the budget and
  // leave notes of their own; find the stuck query's note by qid.
  auto note_it = std::find_if(
      notes.begin(), notes.end(), [&](const std::string& n) {
        return n.find(qid_tag) != std::string::npos;
      });
  ASSERT_NE(note_it, notes.end()) << notes.front();
  const std::string& note = *note_it;
  EXPECT_NE(note.find(qid_tag), std::string::npos) << note;
  EXPECT_NE(note.find("phase=engine"), std::string::npos) << note;
  EXPECT_NE(note.find("% spin."), std::string::npos) << note;
  EXPECT_NE(note.find("attrib top:"), std::string::npos) << note;
  // qid-correlated flight-recorder evidence: the stuck query's own spans.
  EXPECT_NE(note.find("span"), std::string::npos) << note;
  EXPECT_NE(note.find("queued"), std::string::npos) << note;
  EXPECT_NE(service.slowlog().render().find("watchdog flight notes"),
            std::string::npos);

  // Once per query: the dump does not repeat on later polls. (Absolute
  // counts are load-dependent — under sanitizers the warm-up queries can
  // legitimately fire too — so assert the count stops moving instead.)
  const std::uint64_t fired = service.watchdog_fired();
  EXPECT_GE(fired, 1u);
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(service.watchdog_fired(), fired);

  ASSERT_TRUE(service.cancel(ticket.id));
  QueryResult r = ticket.result.get();
  EXPECT_EQ(r.outcome, QueryOutcome::Cancelled);
  service.shutdown();
}

TEST_F(ServeTest, CgeChecksFlowThroughMetricsAndPrometheus) {
  db.consult(kCgeSrc);
  QueryService service(db);

  // Before any CGE traffic the family is absent (traffic-gated).
  EXPECT_EQ(prometheus_text(service.metrics_snapshot())
                .find("ace_cge_checks_total"),
            std::string::npos);

  QueryRequest req;
  req.query = "cmain(A).";
  req.engine = andp_cfg(4, true, true);
  QueryResult r = service.run(std::move(req));
  ASSERT_EQ(r.outcome, QueryOutcome::Success) << r.error;
  EXPECT_GT(r.stats.cge_checks, 0u);

  ServeMetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_GT(snap.cge_checks, 0u);
  EXPECT_NE(snap.to_json().find("\"cge_checks\":"), std::string::npos);
  EXPECT_NE(prometheus_text(snap).find("ace_cge_checks_total"),
            std::string::npos);
  service.shutdown();
}

TEST(ServeMetricsTest, QueueGaugeDepthNeverExceedsPeak) {
  // The depth/peak pair is packed into one atomic word: no interleaving of
  // writers and a scraper may ever observe depth > peak or a peak decrease.
  ServeMetrics m;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&m, &stop, t] {
      std::uint64_t x = 88172645463325252ULL + t;
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        m.set_queue_depth(x % 97);
      }
    });
  }
  std::uint64_t last_peak = 0;
  for (int i = 0; i < 20000; ++i) {
    ServeMetricsSnapshot s = m.snapshot();
    ASSERT_LE(s.queue_depth, s.queue_peak);
    ASSERT_GE(s.queue_peak, last_peak);
    last_peak = s.queue_peak;
  }
  stop = true;
  for (std::thread& w : writers) w.join();
  EXPECT_LE(m.snapshot().queue_peak, 96u);
}

// Exposition-format linter: the rules a Prometheus scraper actually
// enforces. HELP/TYPE pairing before samples, counter names end _total,
// histogram `le` strictly increasing with cumulative counts and a terminal
// +Inf, no duplicate series.
void lint_prometheus_text(const std::string& body) {
  std::map<std::string, std::string> types;  // family -> type
  std::set<std::string> helped;
  std::set<std::string> series;
  std::string hist;  // family of the open histogram bucket run
  double last_le = -1.0;
  bool saw_inf = false;
  std::uint64_t last_cum = 0;
  auto close_hist = [&] {
    if (!hist.empty()) EXPECT_TRUE(saw_inf) << hist << ": no +Inf bucket";
    hist.clear();
    last_le = -1.0;
    saw_inf = false;
    last_cum = 0;
  };
  auto ends_with = [](const std::string& s, const char* suf) {
    std::size_t n = std::strlen(suf);
    return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
  };

  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string fam;
      ls >> fam;
      EXPECT_TRUE(helped.insert(fam).second) << "duplicate HELP " << fam;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string fam, ty;
      ls >> fam >> ty;
      EXPECT_EQ(helped.count(fam), 1u) << "TYPE without HELP: " << fam;
      EXPECT_TRUE(types.emplace(fam, ty).second) << "duplicate TYPE " << fam;
      if (ty == "counter") {
        EXPECT_TRUE(ends_with(fam, "_total"))
            << "counter without _total suffix: " << fam;
      }
      continue;
    }
    if (line[0] == '#') continue;

    std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string sname = line.substr(0, sp);
    EXPECT_TRUE(series.insert(sname).second) << "duplicate series " << sname;
    std::string name = sname.substr(0, sname.find('{'));

    // _bucket/_sum/_count roll up to their histogram family.
    std::string fam = name;
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      if (!ends_with(name, suf)) continue;
      std::string base = name.substr(0, name.size() - std::strlen(suf));
      auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") {
        fam = base;
        break;
      }
    }
    ASSERT_EQ(types.count(fam), 1u) << "sample without TYPE: " << name;
    EXPECT_EQ(helped.count(fam), 1u) << "sample without HELP: " << name;

    if (types[fam] == "histogram" && name == fam + "_bucket") {
      if (fam != hist) {
        close_hist();
        hist = fam;
      }
      std::size_t lp = sname.find("le=\"");
      ASSERT_NE(lp, std::string::npos) << sname;
      std::size_t lq = sname.find('"', lp + 4);
      ASSERT_NE(lq, std::string::npos) << sname;
      std::string le = sname.substr(lp + 4, lq - lp - 4);
      std::uint64_t cum = std::stoull(line.substr(sp + 1));
      if (le == "+Inf") {
        saw_inf = true;
      } else {
        EXPECT_FALSE(saw_inf) << fam << ": +Inf bucket not terminal";
        double v = std::stod(le);
        EXPECT_GT(v, last_le) << fam << ": le not increasing";
        last_le = v;
      }
      EXPECT_GE(cum, last_cum) << fam << ": bucket counts not cumulative";
      last_cum = cum;
    } else if (!hist.empty() && fam != hist) {
      close_hist();
    }
  }
  close_hist();
}

TEST_F(ServeTest, PrometheusExpositionFormatLintOnLiveScrape) {
  // Traffic first so every traffic-gated family (tables, cge, attrib) is
  // present in the scrape the linter sees.
  db.consult(graph_program_text() + chain_edges(8) + kCgeSrc);
  QueryService service(db);

  QueryRequest tabled;
  tabled.query = "tc(1, X).";
  ASSERT_EQ(service.run(std::move(tabled)).outcome, QueryOutcome::Success);
  QueryRequest cge;
  cge.query = "cmain(A).";
  cge.engine = andp_cfg(4, true, true);
  cge.engine.attrib = true;
  ASSERT_EQ(service.run(std::move(cge)).outcome, QueryOutcome::Success);

  MetricsHttpServer server(
      0, [&service] { return prometheus_text(service.metrics_snapshot()); });
  std::string resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  std::string body = http_body(resp);

  // Everything this PR exports is in the live scrape...
  for (const char* needle :
       {"ace_serve_queue_depth", "ace_serve_queue_peak",
        "ace_cge_checks_total", "ace_table_hits_total", "ace_table_bytes",
        "ace_pool_idle_sessions", "ace_serve_active_queries",
        "ace_db_epoch", "ace_db_limbo_depth", "ace_db_pinned_snapshots",
        "ace_db_index_versions", "ace_db_pin_age_highwater_ns",
        "ace_serve_watchdog_fired_total", "ace_attrib_queries_total"}) {
    EXPECT_NE(body.find(needle), std::string::npos) << needle;
  }
  // ...and the whole exposition is format-clean.
  lint_prometheus_text(body);

  server.stop();
  service.shutdown();
}

TEST_F(ServeTest, DebugPagesRenderLiveState) {
  db.consult(kSpinSrc);
  obs::Recorder rec;
  ServiceOptions sopts;
  sopts.obs.recorder = &rec;
  QueryService service(db, sopts);

  for (int i = 0; i < 3; ++i) {
    QueryRequest req;
    req.query = "work(10000).";
    req.engine.attrib = true;
    ASSERT_EQ(service.run(std::move(req)).outcome, QueryOutcome::Success);
  }

  std::string statusz = render_statusz(service);
  EXPECT_NE(statusz.find("ace_serve status"), std::string::npos);
  EXPECT_NE(statusz.find("completed            3"), std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("[engine pool]"), std::string::npos);
  EXPECT_NE(statusz.find("[database]"), std::string::npos);
  EXPECT_NE(statusz.find("[watchdog]"), std::string::npos);

  std::string tracez = render_tracez(service);
  EXPECT_NE(tracez.find("recent queries: 3"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("phases: queue"), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("% work(10000)."), std::string::npos) << tracez;
  // Recorder detail rides along when one is attached.
  EXPECT_NE(tracez.find("recent query timelines"), std::string::npos);

  std::string flamez = render_flamez(service);
  EXPECT_NE(flamez.find(";user_work "), std::string::npos) << flamez;

  std::vector<RecentQuery> recent = service.recent_queries();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_TRUE(recent.back().phases.present);
  EXPECT_GT(recent.back().attrib.total(), 0u);
  service.shutdown();
}

TEST_F(ServeTest, DebugEndpointsServeOverHttpWithMetricsFallback) {
  db.consult(kSpinSrc);
  QueryService service(db);
  QueryRequest req;
  req.query = "work(10000).";
  ASSERT_EQ(service.run(std::move(req)).outcome, QueryOutcome::Success);

  MetricsHttpServer server(
      0, [&service] { return prometheus_text(service.metrics_snapshot()); });
  server.set_handler("/statusz",
                     [&service] { return render_statusz(service); });
  server.set_handler("/tracez",
                     [&service] { return render_tracez(service); });
  server.set_handler("/flamez",
                     [&service] { return render_flamez(service); });

  EXPECT_NE(http_body(http_get(server.port(), "/statusz"))
                .find("ace_serve status"),
            std::string::npos);
  EXPECT_NE(http_body(http_get(server.port(), "/tracez"))
                .find("recent queries:"),
            std::string::npos);
  std::string flamez = http_body(http_get(server.port(), "/flamez"));
  EXPECT_FALSE(flamez.empty());
  // Unknown paths (and /metrics itself) keep scraping metrics: the
  // original "any path" contract survives the handler registry.
  EXPECT_NE(http_body(http_get(server.port(), "/metrics"))
                .find("ace_serve_submitted_total"),
            std::string::npos);
  EXPECT_NE(http_body(http_get(server.port(), "/anything"))
                .find("ace_serve_submitted_total"),
            std::string::npos);

  server.stop();
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Sharded, cache-fronted serving: QueryRequestBuilder, canonical keys,
// the result cache's hit/invalidate/bypass/evict behavior, the zero-stale
// race, and the per-shard metrics surface.

TEST(QueryRequestBuilderTest, SetsEveryField) {
  EngineConfig cfg;
  cfg.mode = EngineMode::Andp;
  cfg.agents = 6;
  cfg.lpco = true;
  QueryRequest r = QueryRequestBuilder("p(X).")
                       .engine(cfg)
                       .tenant("acme")
                       .cache_mode(CacheMode::Bypass)
                       .deadline(5ms)
                       .max_solutions(7)
                       .resolution_limit(123)
                       .build();
  EXPECT_EQ(r.query, "p(X).");
  EXPECT_EQ(r.engine.mode, EngineMode::Andp);
  EXPECT_EQ(r.engine.agents, 6u);
  EXPECT_TRUE(r.engine.lpco);
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.cache_mode, CacheMode::Bypass);
  EXPECT_EQ(r.deadline, std::chrono::nanoseconds(5ms));
  EXPECT_EQ(r.max_solutions, 7u);
  EXPECT_EQ(r.resolution_limit, 123u);
  // Defaults: a bare builder is a plain request.
  QueryRequest d = QueryRequestBuilder("q.").build();
  EXPECT_TRUE(d.tenant.empty());
  EXPECT_EQ(d.cache_mode, CacheMode::Auto);
  EXPECT_EQ(d.max_solutions, SIZE_MAX);
}

TEST_F(ServeTest, CanonicalTemplateKeyVariantsAndNames) {
  auto key = [&](const char* q) {
    return canonical_template_key(parse_term_text(db.syms(), q));
  };
  // Deterministic, whitespace-insensitive.
  EXPECT_EQ(key("p(X, g(X), Y)."), key("p( X ,g( X ),  Y )."));
  // Different structure -> different key.
  EXPECT_NE(key("p(a)."), key("p(b)."));
  EXPECT_NE(key("p(X, X)."), key("p(X, Y)."));
  // Same structure but renamed variables -> different key: solutions
  // render with the query's variable names ("X = red" vs "Y = red"), so
  // variants must not share a cached answer.
  EXPECT_NE(key("p(X)."), key("p(Y)."));
}

TEST_F(ServeTest, ResultCacheServesRepeatedQueryWithoutEngine) {
  db.consult("color(red).\ncolor(green).\ncolor(blue).\n");
  ServiceOptions sopts;
  sopts.result_cache_capacity = 32;
  QueryService service(db, sopts);
  ASSERT_NE(service.result_cache(), nullptr);

  QueryResult first = service.run(QueryRequestBuilder("color(X).").build());
  ASSERT_EQ(first.outcome, QueryOutcome::Success);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.solutions.size(), 3u);

  QueryResult second = service.run(QueryRequestBuilder("color(X).").build());
  ASSERT_EQ(second.outcome, QueryOutcome::Success);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.engine_reused);  // no engine was touched
  EXPECT_EQ(second.solutions, first.solutions);
  EXPECT_NE(second.to_json().find("\"cache_hit\":true"), std::string::npos);

  serve::ResultCache::Stats cs = service.result_cache()->stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.inserts, 1u);
  EXPECT_EQ(cs.entries, 1u);

  // A renamed variant is a different key (it renders differently), so it
  // runs — and then hits on its own repeat.
  QueryResult variant = service.run(QueryRequestBuilder("color(C).").build());
  EXPECT_FALSE(variant.cache_hit);
  ASSERT_EQ(variant.solutions.size(), 3u);
  EXPECT_NE(variant.solutions[0], first.solutions[0]);
  EXPECT_TRUE(
      service.run(QueryRequestBuilder("color(C).").build()).cache_hit);
  service.shutdown();
}

TEST_F(ServeTest, ResultCacheInvalidatedByAssertAndRetract) {
  db.consult("color(red).\n");
  ServiceOptions sopts;
  sopts.result_cache_capacity = 32;
  QueryService service(db, sopts);

  ASSERT_EQ(
      service.run(QueryRequestBuilder("color(X).").build()).solutions.size(),
      1u);
  ASSERT_TRUE(service.run(QueryRequestBuilder("color(X).").build()).cache_hit);

  // An effectful served query mutates the supporting predicate: the cached
  // entry must die with it — the next read sees the new clause, never the
  // stale single-solution answer.
  ASSERT_EQ(
      service.run(QueryRequestBuilder("assertz(color(blue)).").build())
          .outcome,
      QueryOutcome::Success);
  QueryResult after = service.run(QueryRequestBuilder("color(X).").build());
  EXPECT_FALSE(after.cache_hit);
  ASSERT_EQ(after.solutions.size(), 2u);
  EXPECT_GE(service.result_cache()->stats().invalidations, 1u);

  ASSERT_EQ(
      service.run(QueryRequestBuilder("retract(color(blue)).").build())
          .outcome,
      QueryOutcome::Success);
  EXPECT_EQ(
      service.run(QueryRequestBuilder("color(X).").build()).solutions.size(),
      1u);
  service.shutdown();
}

TEST_F(ServeTest, ResultCacheBypassesEffectfulAndBypassModeQueries) {
  db.consult("c(0).\nstep :- retract(c(X)), Y is X + 1, assertz(c(Y)).\n");
  ServiceOptions sopts;
  sopts.result_cache_capacity = 32;
  QueryService service(db, sopts);

  // `step` reaches assertz/retract through a user predicate: the purity
  // analysis must flag it transitively, so both runs execute for real.
  ASSERT_EQ(service.run(QueryRequestBuilder("step.").build()).outcome,
            QueryOutcome::Success);
  ASSERT_EQ(service.run(QueryRequestBuilder("step.").build()).outcome,
            QueryOutcome::Success);
  serve::ResultCache::Stats cs = service.result_cache()->stats();
  EXPECT_GE(cs.bypasses, 2u);
  EXPECT_EQ(cs.inserts, 0u);

  // CacheMode::Bypass routes even a pure query around the cache.
  QueryResult b1 = service.run(QueryRequestBuilder("c(V).")
                                   .cache_mode(CacheMode::Bypass)
                                   .build());
  QueryResult b2 = service.run(QueryRequestBuilder("c(V).")
                                   .cache_mode(CacheMode::Bypass)
                                   .build());
  EXPECT_FALSE(b1.cache_hit);
  EXPECT_FALSE(b2.cache_hit);
  EXPECT_EQ(service.result_cache()->stats().inserts, 0u);
  ASSERT_EQ(b2.solutions.size(), 1u);
  EXPECT_EQ(b2.solutions[0], "V = 2");
  service.shutdown();
}

TEST_F(ServeTest, ResultCacheNeverServesStaleUnderConcurrentWrites) {
  // A writer advances a monotone counter through effectful served queries
  // while a reader hammers the cacheable read. Any stale cached answer
  // shows up as the counter going backwards.
  db.consult("c(0).\nstep :- retract(c(X)), Y is X + 1, assertz(c(Y)).\n");
  ServiceOptions sopts;
  sopts.result_cache_capacity = 8;
  sopts.dispatch_threads = 2;
  QueryService service(db, sopts);

  constexpr int kSteps = 40;
  std::thread writer([&service] {
    for (int i = 0; i < kSteps; ++i) {
      QueryResult r = service.run(QueryRequestBuilder("step.").build());
      EXPECT_EQ(r.outcome, QueryOutcome::Success);
    }
  });
  long long last = 0;
  bool saw_window = false;
  for (int i = 0; i < 200; ++i) {
    QueryResult r = service.run(QueryRequestBuilder("c(N).").build());
    // retract and assertz inside one step are two separate write
    // transactions, so a reader can legitimately land in the window where
    // c/1 is empty — a Prolog "no", cache or not. What it must never see
    // is a STALE value: once the counter reached k, no later read may
    // report less than k.
    if (r.outcome == QueryOutcome::Fail) {
      EXPECT_TRUE(r.solutions.empty());
      saw_window = true;
      continue;
    }
    ASSERT_EQ(r.outcome, QueryOutcome::Success);
    ASSERT_EQ(r.solutions.size(), 1u) << r.solutions.size();
    const std::string& sol = r.solutions[0];  // "N = <value>"
    long long v = std::stoll(sol.substr(sol.rfind(' ') + 1));
    ASSERT_GE(v, last) << "cached result went backwards: " << sol;
    last = v;
  }
  (void)saw_window;  // rare by design; asserting on it would flake
  writer.join();
  QueryResult fin = service.run(QueryRequestBuilder("c(N).").build());
  ASSERT_EQ(fin.solutions.size(), 1u);
  EXPECT_EQ(fin.solutions[0], "N = " + std::to_string(kSteps));
  service.shutdown();
}

TEST_F(ServeTest, ResultCacheEvictsLruUnderCapacityPressure) {
  db.consult("k(1). k(2). k(3). k(4). k(5). k(6).\n");
  ServiceOptions sopts;
  sopts.result_cache_capacity = 4;
  QueryService service(db, sopts);

  for (int i = 1; i <= 6; ++i) {
    std::string q = "k(" + std::to_string(i) + ").";
    ASSERT_EQ(service.run(QueryRequestBuilder(q).build()).outcome,
              QueryOutcome::Success);
  }
  serve::ResultCache::Stats cs = service.result_cache()->stats();
  EXPECT_EQ(cs.inserts, 6u);
  EXPECT_EQ(cs.entries, 4u);
  EXPECT_EQ(cs.evictions, 2u);
  EXPECT_GT(cs.bytes, 0u);

  // Most recent entries survived; the oldest were evicted.
  EXPECT_TRUE(service.run(QueryRequestBuilder("k(6).").build()).cache_hit);
  EXPECT_FALSE(service.run(QueryRequestBuilder("k(1).").build()).cache_hit);
  service.shutdown();
}

TEST_F(ServeTest, ShardsRouteByTenantAndSurfaceInMetrics) {
  db.consult("k(1). k(2).\n");
  ServiceOptions sopts;
  sopts.shards = 4;
  sopts.dispatch_threads = 1;
  sopts.result_cache_capacity = 8;
  QueryService service(db, sopts);
  EXPECT_EQ(service.num_shards(), 4u);

  // Routing is a pure function of the tenant (query text when absent).
  QueryRequest keyed = QueryRequestBuilder("k(X).").tenant("acme").build();
  const unsigned s0 = service.shard_of(keyed);
  EXPECT_EQ(service.shard_of(keyed), s0);
  EXPECT_LT(s0, 4u);

  constexpr int kQueries = 32;
  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < kQueries; ++i) {
    tickets.push_back(service.submit(
        QueryRequestBuilder("k(X).")
            .tenant("tenant" + std::to_string(i % 8))
            .build()));
  }
  for (auto& t : tickets) {
    EXPECT_EQ(t.result.get().outcome, QueryOutcome::Success);
  }

  ServeMetricsSnapshot snap = service.metrics_snapshot();
  ASSERT_EQ(snap.shards.size(), 4u);
  std::uint64_t submitted = 0, completed = 0;
  for (const auto& sh : snap.shards) {
    submitted += sh.submitted;
    completed += sh.completed;
  }
  EXPECT_EQ(submitted, kQueries);
  EXPECT_EQ(completed, kQueries);
  EXPECT_TRUE(snap.cache_present);
  EXPECT_GT(snap.cache_hits + snap.cache_misses, 0u);

  // The new surfaces render everywhere: snapshot JSON, statusz, and a
  // format-clean Prometheus exposition including the new families.
  std::string json = snap.to_json();
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\":"), std::string::npos);

  std::string statusz = render_statusz(service);
  EXPECT_NE(statusz.find("[shards]"), std::string::npos);
  EXPECT_NE(statusz.find("[result cache]"), std::string::npos);
  EXPECT_NE(statusz.find("shards               4"), std::string::npos);

  std::string prom = prometheus_text(snap);
  for (const char* needle :
       {"ace_result_cache_hits_total", "ace_result_cache_bypasses_total",
        "ace_result_cache_entries", "ace_shard_submitted_total",
        "ace_shard_queue_depth", "ace_shard_pool_hits_total"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  lint_prometheus_text(prom);
  service.shutdown();
}

TEST_F(ServeTest, CacheOffServiceHasNoCacheSurface) {
  db.consult("k(1).\n");
  QueryService service(db);  // defaults: shards=1, cache off
  EXPECT_EQ(service.result_cache(), nullptr);
  EXPECT_EQ(service.num_shards(), 1u);
  ASSERT_EQ(service.run(QueryRequestBuilder("k(X).").build()).outcome,
            QueryOutcome::Success);
  ServeMetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_FALSE(snap.cache_present);
  std::string json = snap.to_json();
  EXPECT_EQ(json.find("\"cache_hits\":"), std::string::npos);
  EXPECT_EQ(json.find("\"shards\":["), std::string::npos);
  EXPECT_EQ(prometheus_text(snap).find("ace_result_cache"),
            std::string::npos);
  service.shutdown();
}

}  // namespace
}  // namespace ace
