#include <gtest/gtest.h>

#include "engine/parcall.hpp"

namespace ace {
namespace {

std::vector<std::uint32_t> order_of(const Parcall& pf) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t it = pf.order_head; it != kNoSlot;
       it = pf.slots[it].order_next) {
    out.push_back(it);
  }
  return out;
}

std::vector<std::uint32_t> reverse_order_of(const Parcall& pf) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t it = pf.order_tail; it != kNoSlot;
       it = pf.slots[it].order_prev) {
    out.push_back(it);
  }
  return out;
}

TEST(ParcallOrder, AppendBuildsSequentialOrder) {
  Parcall pf;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pf.append_slot(Slot{}), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(order_of(pf), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(reverse_order_of(pf), (std::vector<std::uint32_t>{3, 2, 1, 0}));
  EXPECT_EQ(pf.order_head, 0u);
  EXPECT_EQ(pf.order_tail, 3u);
}

TEST(ParcallOrder, InsertAfterSplicesInPlace) {
  // The LPCO merge pattern: slot 1 expands into two new slots.
  Parcall pf;
  pf.append_slot(Slot{});  // 0
  pf.append_slot(Slot{});  // 1
  pf.append_slot(Slot{});  // 2
  std::uint32_t a = pf.insert_slot_after(Slot{}, 1);  // 3 after 1
  std::uint32_t b = pf.insert_slot_after(Slot{}, a);  // 4 after 3
  EXPECT_EQ(order_of(pf), (std::vector<std::uint32_t>{0, 1, 3, 4, 2}));
  EXPECT_EQ(reverse_order_of(pf), (std::vector<std::uint32_t>{2, 4, 3, 1, 0}));
  (void)b;
}

TEST(ParcallOrder, InsertAfterTailUpdatesTail) {
  Parcall pf;
  pf.append_slot(Slot{});  // 0
  std::uint32_t n = pf.insert_slot_after(Slot{}, 0);
  EXPECT_EQ(pf.order_tail, n);
  EXPECT_EQ(order_of(pf), (std::vector<std::uint32_t>{0, n}));
}

TEST(ParcallOrder, RecursiveExpansionStaysFlat) {
  // Repeated tail expansion, as in the paper's Figure 4 process_list:
  // each level replaces the last slot with (work, recursion).
  Parcall pf;
  std::uint32_t tail = pf.append_slot(Slot{});
  for (int level = 0; level < 20; ++level) {
    std::uint32_t work = pf.insert_slot_after(Slot{}, tail);
    tail = pf.insert_slot_after(Slot{}, work);
  }
  std::vector<std::uint32_t> order = order_of(pf);
  EXPECT_EQ(order.size(), 41u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), pf.order_tail);
  // Reverse traversal is consistent.
  std::vector<std::uint32_t> rev = reverse_order_of(pf);
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(rev, order);
}

TEST(SlotDefaults, FreshSlotIsClean) {
  Slot s;
  EXPECT_EQ(s.state, SlotState::Pending);
  EXPECT_EQ(s.newest_bt, kNoRef);
  EXPECT_TRUE(s.parts.empty());
  EXPECT_FALSE(s.resumed);
  EXPECT_FALSE(s.marker_pending);
  EXPECT_EQ(s.lpco_parent, kNoSlot);
  EXPECT_EQ(s.in_marker, kNoRef);
  EXPECT_EQ(s.end_marker, kNoRef);
}

TEST(RefEncoding, RoundTrips) {
  Ref r = make_ref(7, 123456);
  EXPECT_EQ(ref_agent(r), 7u);
  EXPECT_EQ(ref_index(r), 123456u);
  EXPECT_NE(r, kNoRef);
}

}  // namespace
}  // namespace ace
