#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() { load_library(db); }

  std::vector<std::string> solve(const std::string& q,
                                 std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }
  bool succeeds(const std::string& q) {
    Engine eng(db);
    return eng.succeeds(q);
  }

  Database db;
};

TEST_F(EdgeTest, DeepRecursion) {
  db.consult("down(0) :- !.\ndown(N) :- N1 is N - 1, down(N1).");
  EXPECT_TRUE(succeeds("down(200000)."));
}

TEST_F(EdgeTest, LongListConstruction) {
  EXPECT_EQ(solve("numlist(1, 20000, _L), length(_L, N), last(_L, X)."),
            (std::vector<std::string>{"N = 20000, X = 20000"}));
}

TEST_F(EdgeTest, LargeIntegers) {
  // 61-bit payload arithmetic.
  EXPECT_EQ(solve("X is 1152921504606846975."),  // 2^60 - 1
            (std::vector<std::string>{"X = 1152921504606846975"}));
  EXPECT_EQ(solve("X is -1152921504606846975."),
            (std::vector<std::string>{"X = -1152921504606846975"}));
  EXPECT_EQ(solve("X is 2 ** 59."),
            (std::vector<std::string>{"X = 576460752303423488"}));
}

TEST_F(EdgeTest, DeeplyNestedTerms) {
  // Build, unify and print a 2000-deep term without stack overflow on the
  // engine side (printing is recursive but shallow per level).
  db.consult(R"PL(
wrap(0, leaf) :- !.
wrap(N, s(T)) :- N1 is N - 1, wrap(N1, T).
)PL");
  EXPECT_TRUE(succeeds("wrap(2000, T), wrap(2000, T2), T == T2."));
}

TEST_F(EdgeTest, ManySolutionsEnumerated) {
  db.consult("d(0). d(1). d(2). d(3).");
  EXPECT_EQ(solve("d(A), d(B), d(C), d(D), d(E).").size(), 1024u);
}

TEST_F(EdgeTest, WideStructures) {
  // 200-argument structure through functor/arg/=..
  EXPECT_TRUE(
      succeeds("functor(T, big, 200), arg(200, T, A), A = x, "
               "T =.. [big|Args], length(Args, 200)."));
}

TEST_F(EdgeTest, EmptyProgramQueries) {
  EXPECT_TRUE(succeeds("true."));
  EXPECT_TRUE(succeeds("X = X."));
}

TEST_F(EdgeTest, RepeatedSolveOnSameDatabase) {
  db.consult("counter(0).");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(solve("counter(X)."), (std::vector<std::string>{"X = 0"}));
  }
}

TEST_F(EdgeTest, AssertAcrossSolves) {
  db.consult(":- dynamic seen/1.");
  Engine eng(db);
  EXPECT_EQ(eng.solve("assert(seen(1)).", 1).solutions.size(), 1u);
  EXPECT_EQ(eng.solve("findall(X, seen(X), L).", 1).solutions,
            (std::vector<std::string>{"L = [1]"}));
}

// ---------------------------------------------------------------------------
// Parser fuzz: random token soup must either parse or raise AceError —
// never crash or hang.

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomTokenSoupIsSafe) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  static const char* kTokens[] = {
      "foo", "Bar",  "_",   "42",  "-",    "+",   "(",  ")",  "[", "]",
      "|",   ",",    ".",   ":-",  "&",    ";",   "->", "!",  "{", "}",
      "is",  "'q a'", "=..", "\\+", "==",  "mod", "*",  "0'x"};
  for (int iter = 0; iter < 300; ++iter) {
    std::string src;
    int len = 1 + static_cast<int>(rng.below(15));
    for (int i = 0; i < len; ++i) {
      src += kTokens[rng.below(std::size(kTokens))];
      src += ' ';
    }
    src += ".";
    SymbolTable syms;
    try {
      parse_term_text(syms, src);
    } catch (const AceError&) {
      // expected for most soups
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Per-agent reporting.

TEST(PerAgentReport, CoversAllAgents) {
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.agents = 4;
  const Workload& w = workload("occur");
  Database db;
  load_library(db);
  db.consult(w.source);
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  Engine m(db, o);
  SolveResult r = m.solve(w.small_query, 1);
  ASSERT_EQ(r.per_agent.size(), 4u);
  ASSERT_EQ(r.agent_clocks.size(), 4u);
  // The aggregate equals the sum of the parts for a few key counters.
  std::uint64_t sum_res = 0;
  std::uint64_t sum_markers = 0;
  for (const Counters& c : r.per_agent) {
    sum_res += c.resolutions;
    sum_markers += c.input_markers + c.end_markers;
  }
  EXPECT_EQ(sum_res, r.stats.resolutions);
  EXPECT_EQ(sum_markers, r.stats.input_markers + r.stats.end_markers);
  std::string report = per_agent_report(r);
  EXPECT_NE(report.find("agent"), std::string::npos);
  EXPECT_NE(report.find("steals"), std::string::npos);
  // Header + separator + one row per agent.
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 6);
}

TEST(PerAgentReport, WorkIsActuallyDistributed) {
  Database db;
  load_library(db);
  db.consult(workload("takeuchi").source);
  EngineConfig o;
  o.mode = EngineMode::Andp;
  o.agents = 4;
  Engine m(db, o);
  SolveResult r = m.solve("takeuchi(8, 4, 0, A).", 1);
  int busy = 0;
  for (const Counters& c : r.per_agent) {
    if (c.resolutions > r.stats.resolutions / 20) ++busy;
  }
  EXPECT_GE(busy, 3);  // at least 3 of 4 agents did real work
}

}  // namespace
}  // namespace ace
