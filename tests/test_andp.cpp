#include <gtest/gtest.h>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace ace {
namespace {

class AndpTest : public ::testing::Test {
 protected:
  AndpTest() { load_library(db); }

  SolveResult run(const std::string& q, EngineConfig opts,
                  std::size_t max = SIZE_MAX) {
    Engine m(db, opts);
    return m.solve(q, max);
  }
  std::vector<std::string> seq(const std::string& q,
                               std::size_t max = SIZE_MAX) {
    Engine eng(db);
    return eng.solve(q, max).solutions;
  }

  EngineConfig agents(unsigned n) {
    EngineConfig o;
    o.mode = EngineMode::Andp;
    o.agents = n;
    return o;
  }

  Database db;
};

TEST_F(AndpTest, SimpleParcallForward) {
  db.consult("p(1). q(2). both(X, Y) :- p(X) & q(Y).");
  for (unsigned n : {1u, 2u, 4u}) {
    EXPECT_EQ(run("both(X, Y).", agents(n)).solutions,
              (std::vector<std::string>{"X = 1, Y = 2"}))
        << n << " agents";
  }
}

TEST_F(AndpTest, ParcallThreeGoals) {
  db.consult("w(X, Y, Z) :- X = a & Y = b & Z = c.");
  EXPECT_EQ(run("w(X, Y, Z).", agents(3)).solutions,
            (std::vector<std::string>{"X = a, Y = b, Z = c"}));
}

TEST_F(AndpTest, SlotFailureFailsParcall) {
  db.consult("bad(X) :- X = 1 & fail.");
  EXPECT_TRUE(run("bad(X).", agents(2)).solutions.empty());
  EXPECT_TRUE(run("bad(X).", agents(1)).solutions.empty());
}

TEST_F(AndpTest, FailurePropagatesPastParcall) {
  db.consult("t(1). t(2). g(X) :- t(X), (true & true), X > 1.");
  EXPECT_EQ(run("g(X).", agents(2)).solutions,
            (std::vector<std::string>{"X = 2"}));
}

TEST_F(AndpTest, OutsideBacktrackingEnumeratesInOrder) {
  db.consult(R"PL(
a(1). a(2).
b(x). b(y).
pair(A, B) :- a(A) & b(B).
)PL");
  std::vector<std::string> expect = seq("pair(A, B).");
  ASSERT_EQ(expect.size(), 4u);
  for (unsigned n : {1u, 2u, 3u}) {
    EXPECT_EQ(run("pair(A, B).", agents(n)).solutions, expect)
        << n << " agents";
  }
}

TEST_F(AndpTest, NestedParcalls) {
  db.consult(R"PL(
leaf(1). leaf(2).
inner(X, Y) :- leaf(X) & leaf(Y).
outer(A, B, C, D) :- inner(A, B) & inner(C, D).
)PL");
  std::vector<std::string> expect = seq("outer(A, B, C, D).");
  ASSERT_EQ(expect.size(), 16u);
  for (unsigned n : {1u, 2u, 4u}) {
    EXPECT_EQ(run("outer(A, B, C, D).", agents(n)).solutions, expect)
        << n << " agents";
  }
}

TEST_F(AndpTest, RecursiveParallelMap) {
  db.consult(R"PL(
dbl([], []).
dbl([H|T], [H2|T2]) :- H2 is H * 2 & dbl(T, T2).
)PL");
  std::vector<std::string> expect = seq("dbl([1, 2, 3, 4, 5], Out).");
  for (unsigned n : {1u, 2u, 4u}) {
    EngineConfig o = agents(n);
    EXPECT_EQ(run("dbl([1, 2, 3, 4, 5], Out).", o).solutions, expect);
    o.lpco = o.shallow = o.pdo = true;
    EXPECT_EQ(run("dbl([1, 2, 3, 4, 5], Out).", o).solutions, expect);
  }
}

TEST_F(AndpTest, BacktrackingThroughRecursiveParcalls) {
  db.consult(R"PL(
tr(X, Y) :- Y is X * 2.
tr(X, Y) :- Y is X * 2 + 1.
mapl([], []).
mapl([H|T], [H2|T2]) :- tr(H, H2) & mapl(T, T2).
)PL");
  std::vector<std::string> expect = seq("mapl([1, 2, 3], Out).");
  ASSERT_EQ(expect.size(), 8u);
  for (unsigned n : {1u, 2u, 4u}) {
    for (bool opt : {false, true}) {
      EngineConfig o = agents(n);
      o.lpco = o.shallow = o.pdo = opt;
      EXPECT_EQ(run("mapl([1, 2, 3], Out).", o).solutions, expect)
          << n << " agents, opts=" << opt;
    }
  }
}

TEST_F(AndpTest, GenerateAndTestAcrossParcall) {
  db.consult(R"PL(
tr(X, Y) :- Y is X * 2.
tr(X, Y) :- Y is X * 2 + 1.
mapl([], []).
mapl([H|T], [H2|T2]) :- tr(H, H2) & mapl(T, T2).
pick(L, Out) :- mapl(L, Out), sum_list(Out, S), 0 =:= S mod 7.
)PL");
  std::vector<std::string> expect = seq("pick([1, 2, 3, 4], Out).");
  for (unsigned n : {1u, 3u}) {
    for (bool opt : {false, true}) {
      EngineConfig o = agents(n);
      o.lpco = o.shallow = o.pdo = opt;
      EXPECT_EQ(run("pick([1, 2, 3, 4], Out).", o).solutions, expect);
    }
  }
}

TEST_F(AndpTest, CutInsideParallelGoalIsLocal) {
  db.consult(R"PL(
c(1). c(2).
firstc(X) :- c(X), !.
both(X, Y) :- firstc(X) & c(Y).
)PL");
  std::vector<std::string> expect = seq("both(X, Y).");
  ASSERT_EQ(expect.size(), 2u);
  EXPECT_EQ(run("both(X, Y).", agents(2)).solutions, expect);
}

TEST_F(AndpTest, DeterministicVirtualTime) {
  db.consult(R"PL(
fibp(N, F) :- N < 2, !, F = N.
fibp(N, F) :- N1 is N - 1, N2 is N - 2,
    fibp(N1, F1) & fibp(N2, F2), F is F1 + F2.
)PL");
  EngineConfig o = agents(4);
  SolveResult a = run("fibp(10, F).", o, 1);
  SolveResult b = run("fibp(10, F).", o, 1);
  EXPECT_EQ(a.solutions, (std::vector<std::string>{"F = 55"}));
  EXPECT_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.stats.resolutions, b.stats.resolutions);
  EXPECT_EQ(a.stats.steals, b.stats.steals);
}

TEST_F(AndpTest, ParallelSpeedsUpSimulatedTime) {
  db.consult(R"PL(
work(0) :- !.
work(N) :- N1 is N - 1, work(N1).
four :- work(300) & work(300) & work(300) & work(300).
)PL");
  std::uint64_t t1 = run("four.", agents(1), 1).virtual_time;
  std::uint64_t t4 = run("four.", agents(4), 1).virtual_time;
  EXPECT_LT(t4 * 2, t1);  // at least 2x speedup on 4 agents
}

TEST_F(AndpTest, OneAgentOverheadOverSequential) {
  db.consult(R"PL(
work(0) :- !.
work(N) :- N1 is N - 1, work(N1).
two :- work(200) & work(200).
)PL");
  Engine eng(db);
  std::uint64_t tseq = eng.solve("two.", 1).virtual_time;
  std::uint64_t tpar = run("two.", agents(1), 1).virtual_time;
  EXPECT_GT(tpar, tseq);  // parallel machinery costs something
  EXPECT_LT(tpar, tseq * 2);  // but not absurdly much
}

TEST_F(AndpTest, MarkersAllocatedWithoutShallow) {
  db.consult("m2 :- (1 =:= 1) & (2 =:= 2).");
  EngineConfig o = agents(2);
  SolveResult r = run("m2.", o, 1);
  EXPECT_GT(r.stats.input_markers, 0u);
}

TEST_F(AndpTest, ShallowSkipsMarkersForDeterministicSlots) {
  db.consult("m2 :- (1 =:= 1) & (2 =:= 2).");
  EngineConfig o = agents(2);
  o.shallow = true;
  SolveResult r = run("m2.", o, 1);
  EXPECT_EQ(r.stats.input_markers, 0u);
  EXPECT_EQ(r.stats.end_markers, 0u);
  EXPECT_GE(r.stats.shallow_skipped_markers, 4u);
}

TEST_F(AndpTest, ShallowMaterializesMarkerOnChoicePoint) {
  db.consult(R"PL(
nd(1). nd(2).
m2(X) :- nd(X) & (2 =:= 2).
)PL");
  EngineConfig o = agents(1);
  o.shallow = true;
  SolveResult r = run("m2(X).", o);
  // The nondeterministic slot needs its input marker after all.
  EXPECT_GE(r.stats.input_markers, 1u);
  EXPECT_EQ(r.solutions, seq("m2(X)."));
}

TEST_F(AndpTest, LpcoMergesRecursiveParcalls) {
  db.consult(R"PL(
dbl([], []).
dbl([H|T], [H2|T2]) :- H2 is H * 2 & dbl(T, T2).
)PL");
  EngineConfig o = agents(2);
  o.lpco = true;
  SolveResult r = run("dbl([1, 2, 3, 4, 5, 6], Out).", o, 1);
  EXPECT_GE(r.stats.lpco_merges, 4u);
  // Flattening: far fewer parcall frames than without.
  EngineConfig off = agents(2);
  SolveResult r0 = run("dbl([1, 2, 3, 4, 5, 6], Out).", off, 1);
  EXPECT_LT(r.stats.parcall_frames, r0.stats.parcall_frames);
}

TEST_F(AndpTest, PdoMergesAdjacentSlotsOnOneAgent) {
  db.consult("m3 :- (1 =:= 1) & (2 =:= 2) & (3 =:= 3).");
  EngineConfig o = agents(1);
  o.pdo = true;
  SolveResult r = run("m3.", o, 1);
  // On one agent every next slot is sequentially adjacent.
  EXPECT_GE(r.stats.pdo_merges, 2u);
  EXPECT_EQ(r.stats.input_markers, 1u);  // only the first slot needs one
}

TEST_F(AndpTest, OptimizationsReduceVirtualTime) {
  db.consult(R"PL(
dbl([], []).
dbl([H|T], [H2|T2]) :- H2 is H * 2 & dbl(T, T2).
)PL");
  std::string q = "dbl([1,2,3,4,5,6,7,8,9,10,11,12], Out).";
  EngineConfig off = agents(1);
  EngineConfig on = agents(1);
  on.lpco = on.shallow = on.pdo = true;
  EXPECT_LT(run(q, on, 1).virtual_time, run(q, off, 1).virtual_time);
}

TEST_F(AndpTest, FindallInsideParallelGoal) {
  db.consult(R"PL(
n(1). n(2). n(3).
fa(L1, L2) :- findall(X, n(X), L1) & findall(Y, n(Y), L2).
)PL");
  EXPECT_EQ(run("fa(L1, L2).", agents(2)).solutions,
            (std::vector<std::string>{"L1 = [1,2,3], L2 = [1,2,3]"}));
}

TEST_F(AndpTest, ManyAgentsNoWorkStillWorks) {
  db.consult("triv(ok).");
  EXPECT_EQ(run("triv(X).", agents(8)).solutions,
            (std::vector<std::string>{"X = ok"}));
}

}  // namespace
}  // namespace ace
