// SLG tabling tests (src/tab/): variant hits, SCC completion for mutual
// recursion, cross-query caching with assert/retract invalidation,
// tabled-vs-untabled solution equivalence, the cost-conservation invariant
// with the table categories, and bit-identity when tabling is off.
#include <gtest/gtest.h>

#include <algorithm>

#include <memory>

#include "builtins/lib.hpp"
#include "parse/parser.hpp"
#include "serve/session.hpp"
#include "tab/table_space.hpp"
#include "term/build.hpp"
#include "term/canon.hpp"
#include "workloads/graphs.hpp"
#include "workloads/harness.hpp"

namespace ace {
namespace {

std::vector<std::string> sorted_unique(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::unique_ptr<Database> make_db(const std::string& program) {
  auto db = std::make_unique<Database>();
  load_library(*db);
  db->consult(program);
  return db;
}

// ---------------------------------------------------------------------------
// Canonical subgoal keys (variant checking).

TEST(Canon, KeyDistinguishesStructureNotNames) {
  auto db = make_db("");
  SymbolTable& syms = db->syms();
  Store store(1);
  auto key_of = [&](const std::string& text) {
    TermTemplate t = parse_term_text(syms, text);
    Addr a = instantiate(store, 0, t, nullptr);
    return canonical_term_key(store, a);
  };
  // Variants: same key under variable renaming.
  EXPECT_EQ(key_of("p(X, Y, X)."), key_of("p(A, B, A)."));
  // Different sharing pattern is not a variant.
  EXPECT_NE(key_of("p(X, Y, X)."), key_of("p(A, A, B)."));
  // Ground vs variable, different functor, different constant.
  EXPECT_NE(key_of("p(1, Y, X)."), key_of("p(X, Y, X)."));
  EXPECT_NE(key_of("p(a)."), key_of("q(a)."));
  EXPECT_NE(key_of("p(1)."), key_of("p(2)."));
  // Lists and nesting participate structurally.
  EXPECT_EQ(key_of("p([X|T], f(T))."), key_of("p([A|B], f(B))."));
}

// ---------------------------------------------------------------------------
// TableSpace: the cross-query cache container.

TEST(TableSpace, LookupInsertInvalidate) {
  tab::TableSpace space;
  EXPECT_EQ(space.lookup("k"), nullptr);  // miss

  auto t = std::make_shared<tab::CompletedTable>();
  t->key = "k";
  t->sym = 1;
  t->arity = 2;
  t->deps.push_back({7, 2, 0});
  space.insert(t);

  auto got = space.lookup("k");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->key, "k");

  tab::TableSpace::Stats s = space.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Invalidating an unrelated predicate keeps the table.
  space.invalidate_pred(9, 1);
  EXPECT_NE(space.lookup("k"), nullptr);
  // Invalidating a dependency drops it.
  space.invalidate_pred(7, 2);
  EXPECT_EQ(space.lookup("k"), nullptr);
  s = space.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);

  // The dropped entry stays valid through the caller's pin.
  EXPECT_EQ(got->sym, 1u);
}

// ---------------------------------------------------------------------------
// Left recursion and cyclic graphs: the programs SLG admits and plain SLD
// cannot run.

TEST(Tabling, LeftRecursiveClosureOnCycleTerminates) {
  auto db = make_db(graph_program_text() +
                    "edge(1, 2). edge(2, 3). edge(3, 1).");
  Engine eng(*db);
  SolveResult r = eng.solve("tc(1, X).");
  EXPECT_EQ(sorted_unique(r.solutions),
            sorted_unique({"X = 1", "X = 2", "X = 3"}));
}

TEST(Tabling, UntabledLeftRecursionBlowsTheBudgetTabledDoesNot) {
  // Same clauses, no directive: plain SLD loops on the left recursion and
  // exhausts the resolution budget; the tabled program finishes well inside
  // it.
  const std::string clauses =
      "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n" +
      chain_edges(16);
  EngineConfig cfg;
  cfg.resolution_limit = 100000;

  auto untabled = make_db(clauses);
  Engine bad(*untabled, cfg);
  QueryResult qr = bad.query("tc(1, X).");
  EXPECT_EQ(qr.outcome, QueryOutcome::Error);  // budget exhausted

  auto tabled = make_db(":- table tc/2.\n" + clauses);
  Engine good(*tabled, cfg);
  SolveResult r = good.solve("tc(1, X).");
  EXPECT_EQ(r.solutions.size(), 15u);
}

TEST(Tabling, TabledClosureGrowsPolynomially) {
  // Chain of n nodes: answers grow linearly, passes are bounded, so the
  // virtual time of tabled tc must grow polynomially (~n^2), not
  // exponentially. Doubling n twice may multiply time by ~16; 64x would
  // mean super-cubic growth.
  auto vt = [](unsigned n) {
    auto db = make_db(graph_program_text() + chain_edges(n));
    Engine eng(*db);
    SolveResult r = eng.solve("tc(1, X).");
    EXPECT_EQ(r.solutions.size(), std::size_t{n - 1});
    return r.virtual_time;
  };
  std::uint64_t t8 = vt(8), t32 = vt(32);
  EXPECT_GT(t8, 0u);
  EXPECT_LT(t32, t8 * 64);
}

// ---------------------------------------------------------------------------
// Mutual recursion: one SCC spanning two tabled predicates must complete
// together, with answers flowing both ways.

TEST(Tabling, MutualRecursionSccCompletesTogether) {
  auto db = make_db(R"PL(
:- table p/1.
:- table q/1.
p(X) :- q(X).
p(a).
q(X) :- p(X).
q(b).
)PL");
  Engine eng(*db);
  SolveResult rp = eng.solve("p(X).");
  EXPECT_EQ(sorted_unique(rp.solutions), sorted_unique({"X = a", "X = b"}));
  // q completed as part of p's SCC: the second query is answered from the
  // cache without a new generator.
  tab::TableSpace::Stats before = eng.session().table_space()->stats();
  SolveResult rq = eng.solve("q(X).");
  EXPECT_EQ(sorted_unique(rq.solutions), sorted_unique({"X = a", "X = b"}));
  tab::TableSpace::Stats after = eng.session().table_space()->stats();
  EXPECT_GT(after.hits, before.hits);
}

TEST(Tabling, MutualEvenOddOverSuccessors) {
  auto db = make_db(R"PL(
:- table even/1.
:- table odd/1.
even(0).
even(X) :- X > 0, Y is X - 1, odd(Y).
odd(X) :- X > 0, Y is X - 1, even(Y).
)PL");
  Engine eng(*db);
  EXPECT_TRUE(eng.succeeds("even(10)."));
  EXPECT_FALSE(eng.succeeds("even(9)."));
  EXPECT_TRUE(eng.succeeds("odd(7)."));
}

// ---------------------------------------------------------------------------
// The cross-query serving cache: variant hits, renamed subgoals, and
// assert/retract invalidation.

TEST(Tabling, RepeatedQueryAnswersFromCompletedTable) {
  auto db = make_db(graph_program_text() + chain_edges(32));
  Engine eng(*db);

  SolveResult first = eng.solve("tc(1, X).");
  EXPECT_EQ(first.solutions.size(), 31u);
  tab::TableSpace::Stats s1 = eng.session().table_space()->stats();
  EXPECT_GE(s1.inserts, 1u);
  EXPECT_GE(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 0u);

  // Same subgoal with a renamed variable: a variant, so a cache hit.
  SolveResult second = eng.solve("tc(1, Y).");
  EXPECT_EQ(second.solutions.size(), 31u);
  tab::TableSpace::Stats s2 = eng.session().table_space()->stats();
  EXPECT_GE(s2.hits, 1u);
  EXPECT_EQ(s2.misses, s1.misses);  // no re-evaluation

  // The cached run never re-runs generator passes.
  EXPECT_EQ(second.stats.table_completions, 0u);
  EXPECT_LT(second.virtual_time, first.virtual_time);

  // A different subgoal is not a variant.
  SolveResult third = eng.solve("tc(2, X).");
  EXPECT_EQ(third.solutions.size(), 30u);
  EXPECT_GT(eng.session().table_space()->stats().misses, s2.misses);
}

TEST(Tabling, AssertAndRetractInvalidateDependentTables) {
  auto db = make_db(graph_program_text() + ":- dynamic edge/2.\n" +
                    chain_edges(8));
  Engine eng(*db);

  EXPECT_EQ(eng.solve("tc(1, X).").solutions.size(), 7u);
  tab::TableSpace::Stats s1 = eng.session().table_space()->stats();
  EXPECT_GE(s1.entries, 1u);

  // Asserting into edge/2 must drop every table derived from it.
  EXPECT_TRUE(eng.succeeds("assertz(edge(8, 9))."));
  tab::TableSpace::Stats s2 = eng.session().table_space()->stats();
  EXPECT_GT(s2.invalidations, s1.invalidations);

  // The next call misses, re-evaluates, and sees the new edge.
  SolveResult grown = eng.solve("tc(1, X).");
  EXPECT_EQ(grown.solutions.size(), 8u);
  EXPECT_GT(eng.session().table_space()->stats().misses, s1.misses);

  // Retract invalidates again and shrinks the closure back.
  EXPECT_TRUE(eng.succeeds("retract(edge(8, 9))."));
  EXPECT_EQ(eng.solve("tc(1, X).").solutions.size(), 7u);
}

// ---------------------------------------------------------------------------
// Differential: tabled and untabled definitions agree on every terminating
// graph workload, sequentially and under or-parallel execution.

TEST(Tabling, TabledMatchesUntabledOnGraphFamily) {
  const std::pair<const char*, const char*> pairs[] = {
      {"tc_chain64", "tc_chain64_notab"},
      {"tc_grid8", "tc_grid8_notab"},
      {"tc_rand64", "tc_rand64_notab"},
      {"path_grid8", "path_grid8_notab"},
      {"sg_grid8", "sg_grid8_notab"},
  };
  for (const auto& [tabled, untabled] : pairs) {
    RunConfig seq;
    seq.engine = EngineKind::Seq;
    RunOutcome a = run_workload(graph_workload(tabled), seq);
    RunOutcome b = run_workload(graph_workload(untabled), seq);
    // Tables deduplicate answers; the untabled run may enumerate a
    // derivation per path. The solution *sets* must agree.
    EXPECT_EQ(sorted_unique(a.solutions), sorted_unique(b.solutions))
        << tabled;
    EXPECT_GT(a.stats.table_misses, 0u) << tabled;
    EXPECT_EQ(b.stats.table_misses, 0u) << untabled;
  }
}

TEST(Tabling, OrParallelAgreesWithSequentialOnTabledWorkloads) {
  for (const char* name : {"tc_grid8", "sg_grid8", "path_grid8"}) {
    RunConfig seq;
    seq.engine = EngineKind::Seq;
    RunOutcome expect = run_workload(graph_workload(name), seq);
    for (unsigned agents : {5u, 10u}) {
      RunConfig orp;
      orp.engine = EngineKind::Orp;
      orp.agents = agents;
      RunOutcome got = run_workload(graph_workload(name), orp);
      EXPECT_EQ(sorted_unique(got.solutions), sorted_unique(expect.solutions))
          << name << "@" << agents;
    }
  }
}

// ---------------------------------------------------------------------------
// Conservation: with tabling active, the per-category sums (including the
// four table categories) still partition the summed agent clocks exactly.

TEST(Tabling, CategorySumsPartitionClocksOnGraphWorkloads) {
  for (const Workload& w : graph_workloads()) {
    for (unsigned agents : {1u, 5u, 10u}) {
      RunConfig cfg;
      cfg.engine = agents == 1 ? EngineKind::Seq : EngineKind::Orp;
      cfg.agents = agents;
      RunOutcome out = run_workload(w, cfg);
      std::uint64_t clock_sum = 0;
      for (std::uint64_t c : out.agent_clocks) clock_sum += c;
      EXPECT_EQ(out.attrib.total(), clock_sum) << w.name << "@" << agents;
      EXPECT_EQ(out.attrib.work() + out.attrib.overhead() + out.attrib.idle(),
                out.attrib.total())
          << w.name << "@" << agents;
      const bool tabled = w.name.find("notab") == std::string::npos;
      if (tabled) {
        // Table work must be visible in its own categories...
        EXPECT_GT(out.attrib[CostCat::kTableLookup] +
                      out.attrib[CostCat::kTableInsert],
                  0u)
            << w.name << "@" << agents;
      } else {
        // ...and absent when no predicate is tabled.
        EXPECT_EQ(out.attrib[CostCat::kTableLookup] +
                      out.attrib[CostCat::kTableInsert] +
                      out.attrib[CostCat::kTableSuspend] +
                      out.attrib[CostCat::kTableResume],
                  0u)
            << w.name << "@" << agents;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kill switch: with tabling disabled (or no directive present) runs are
// bit-identical to the pre-tabling engine.

TEST(Tabling, NoDirectivesMeansBitIdenticalOnAndOff) {
  for (const char* name : {"fib", "nrev", "queens1"}) {
    const Workload& w = workload(name);
    std::uint64_t vt_on = 0;
    for (bool tabling : {true, false}) {
      RunConfig cfg;
      cfg.engine = w.and_parallel ? EngineKind::Andp : EngineKind::Orp;
      cfg.agents = 4;
      cfg.tabling = tabling;
      RunOutcome out = run_small(name, cfg);
      if (tabling) {
        vt_on = out.virtual_time;
      } else {
        EXPECT_EQ(out.virtual_time, vt_on) << name;
      }
      EXPECT_EQ(out.stats.table_hits + out.stats.table_misses, 0u) << name;
    }
  }
}

TEST(Tabling, NoTableFlagIgnoresDirectives) {
  // With the kill switch a tabled program runs as plain SLD: the
  // right-recursive path/2 still terminates (and must produce the same
  // answer set); no table counters move.
  auto db = make_db(graph_program_text() + chain_edges(16));
  EngineConfig cfg;
  cfg.tabling = false;
  Engine eng(*db, cfg);
  SolveResult r = eng.solve("path(1, X).");
  EXPECT_EQ(sorted_unique(r.solutions).size(), 15u);
  EXPECT_EQ(r.stats.table_misses, 0u);
  EXPECT_EQ(eng.session().table_space(), nullptr);
  EXPECT_NE(eng.config().describe().find("+notab"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tabling composes with the rest of the language.

TEST(Tabling, TabledCallInsideFindall) {
  auto db = make_db(graph_program_text() + chain_edges(8));
  Engine eng(*db);
  SolveResult r = eng.solve("findall(X, tc(1, X), L), length(L, N).");
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_NE(r.solutions[0].find("N = 7"), std::string::npos);
}

TEST(Tabling, TabledAnswersFeedArithmeticAndSort) {
  auto db = make_db(graph_program_text() + grid_edges(4));
  Engine eng(*db);
  SolveResult r =
      eng.solve("findall(X, tc(1, X), L), msort(L, S), length(S, N).");
  ASSERT_EQ(r.solutions.size(), 1u);
  EXPECT_NE(r.solutions[0].find("N = 15"), std::string::npos);
}

}  // namespace
}  // namespace ace
