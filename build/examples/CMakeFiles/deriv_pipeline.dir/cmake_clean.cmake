file(REMOVE_RECURSE
  "CMakeFiles/deriv_pipeline.dir/deriv_pipeline.cpp.o"
  "CMakeFiles/deriv_pipeline.dir/deriv_pipeline.cpp.o.d"
  "deriv_pipeline"
  "deriv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deriv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
