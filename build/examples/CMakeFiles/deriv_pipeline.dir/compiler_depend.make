# Empty compiler generated dependencies file for deriv_pipeline.
# This may be replaced when dependencies are built.
