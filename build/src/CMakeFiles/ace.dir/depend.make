# Empty dependencies file for ace.
# This may be replaced when dependencies are built.
