
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/annotate.cpp" "src/CMakeFiles/ace.dir/analysis/annotate.cpp.o" "gcc" "src/CMakeFiles/ace.dir/analysis/annotate.cpp.o.d"
  "/root/repo/src/andp/failure.cpp" "src/CMakeFiles/ace.dir/andp/failure.cpp.o" "gcc" "src/CMakeFiles/ace.dir/andp/failure.cpp.o.d"
  "/root/repo/src/andp/machine.cpp" "src/CMakeFiles/ace.dir/andp/machine.cpp.o" "gcc" "src/CMakeFiles/ace.dir/andp/machine.cpp.o.d"
  "/root/repo/src/andp/parcall.cpp" "src/CMakeFiles/ace.dir/andp/parcall.cpp.o" "gcc" "src/CMakeFiles/ace.dir/andp/parcall.cpp.o.d"
  "/root/repo/src/builtins/arith.cpp" "src/CMakeFiles/ace.dir/builtins/arith.cpp.o" "gcc" "src/CMakeFiles/ace.dir/builtins/arith.cpp.o.d"
  "/root/repo/src/builtins/builtins.cpp" "src/CMakeFiles/ace.dir/builtins/builtins.cpp.o" "gcc" "src/CMakeFiles/ace.dir/builtins/builtins.cpp.o.d"
  "/root/repo/src/builtins/lib.cpp" "src/CMakeFiles/ace.dir/builtins/lib.cpp.o" "gcc" "src/CMakeFiles/ace.dir/builtins/lib.cpp.o.d"
  "/root/repo/src/db/clause.cpp" "src/CMakeFiles/ace.dir/db/clause.cpp.o" "gcc" "src/CMakeFiles/ace.dir/db/clause.cpp.o.d"
  "/root/repo/src/db/database.cpp" "src/CMakeFiles/ace.dir/db/database.cpp.o" "gcc" "src/CMakeFiles/ace.dir/db/database.cpp.o.d"
  "/root/repo/src/db/predicate.cpp" "src/CMakeFiles/ace.dir/db/predicate.cpp.o" "gcc" "src/CMakeFiles/ace.dir/db/predicate.cpp.o.d"
  "/root/repo/src/engine/backtrack.cpp" "src/CMakeFiles/ace.dir/engine/backtrack.cpp.o" "gcc" "src/CMakeFiles/ace.dir/engine/backtrack.cpp.o.d"
  "/root/repo/src/engine/machine.cpp" "src/CMakeFiles/ace.dir/engine/machine.cpp.o" "gcc" "src/CMakeFiles/ace.dir/engine/machine.cpp.o.d"
  "/root/repo/src/engine/solve.cpp" "src/CMakeFiles/ace.dir/engine/solve.cpp.o" "gcc" "src/CMakeFiles/ace.dir/engine/solve.cpp.o.d"
  "/root/repo/src/engine/step.cpp" "src/CMakeFiles/ace.dir/engine/step.cpp.o" "gcc" "src/CMakeFiles/ace.dir/engine/step.cpp.o.d"
  "/root/repo/src/orp/machine.cpp" "src/CMakeFiles/ace.dir/orp/machine.cpp.o" "gcc" "src/CMakeFiles/ace.dir/orp/machine.cpp.o.d"
  "/root/repo/src/orp/shared_tree.cpp" "src/CMakeFiles/ace.dir/orp/shared_tree.cpp.o" "gcc" "src/CMakeFiles/ace.dir/orp/shared_tree.cpp.o.d"
  "/root/repo/src/parse/lexer.cpp" "src/CMakeFiles/ace.dir/parse/lexer.cpp.o" "gcc" "src/CMakeFiles/ace.dir/parse/lexer.cpp.o.d"
  "/root/repo/src/parse/ops.cpp" "src/CMakeFiles/ace.dir/parse/ops.cpp.o" "gcc" "src/CMakeFiles/ace.dir/parse/ops.cpp.o.d"
  "/root/repo/src/parse/parser.cpp" "src/CMakeFiles/ace.dir/parse/parser.cpp.o" "gcc" "src/CMakeFiles/ace.dir/parse/parser.cpp.o.d"
  "/root/repo/src/runtime/thread_driver.cpp" "src/CMakeFiles/ace.dir/runtime/thread_driver.cpp.o" "gcc" "src/CMakeFiles/ace.dir/runtime/thread_driver.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/ace.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/ace.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/ace.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/ace.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/virtual_driver.cpp" "src/CMakeFiles/ace.dir/sim/virtual_driver.cpp.o" "gcc" "src/CMakeFiles/ace.dir/sim/virtual_driver.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/ace.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/ace.dir/stats/stats.cpp.o.d"
  "/root/repo/src/support/diag.cpp" "src/CMakeFiles/ace.dir/support/diag.cpp.o" "gcc" "src/CMakeFiles/ace.dir/support/diag.cpp.o.d"
  "/root/repo/src/support/strutil.cpp" "src/CMakeFiles/ace.dir/support/strutil.cpp.o" "gcc" "src/CMakeFiles/ace.dir/support/strutil.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ace.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ace.dir/support/table.cpp.o.d"
  "/root/repo/src/term/build.cpp" "src/CMakeFiles/ace.dir/term/build.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/build.cpp.o.d"
  "/root/repo/src/term/compare.cpp" "src/CMakeFiles/ace.dir/term/compare.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/compare.cpp.o.d"
  "/root/repo/src/term/copy.cpp" "src/CMakeFiles/ace.dir/term/copy.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/copy.cpp.o.d"
  "/root/repo/src/term/print.cpp" "src/CMakeFiles/ace.dir/term/print.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/print.cpp.o.d"
  "/root/repo/src/term/store.cpp" "src/CMakeFiles/ace.dir/term/store.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/store.cpp.o.d"
  "/root/repo/src/term/symtab.cpp" "src/CMakeFiles/ace.dir/term/symtab.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/symtab.cpp.o.d"
  "/root/repo/src/term/unify.cpp" "src/CMakeFiles/ace.dir/term/unify.cpp.o" "gcc" "src/CMakeFiles/ace.dir/term/unify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
