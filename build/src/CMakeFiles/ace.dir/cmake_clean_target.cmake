file(REMOVE_RECURSE
  "libace.a"
)
