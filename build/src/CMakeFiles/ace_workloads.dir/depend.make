# Empty dependencies file for ace_workloads.
# This may be replaced when dependencies are built.
