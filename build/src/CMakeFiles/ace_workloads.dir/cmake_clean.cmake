file(REMOVE_RECURSE
  "CMakeFiles/ace_workloads.dir/workloads/harness.cpp.o"
  "CMakeFiles/ace_workloads.dir/workloads/harness.cpp.o.d"
  "CMakeFiles/ace_workloads.dir/workloads/programs.cpp.o"
  "CMakeFiles/ace_workloads.dir/workloads/programs.cpp.o.d"
  "libace_workloads.a"
  "libace_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
