file(REMOVE_RECURSE
  "libace_workloads.a"
)
