file(REMOVE_RECURSE
  "CMakeFiles/ace_run.dir/ace_run.cpp.o"
  "CMakeFiles/ace_run.dir/ace_run.cpp.o.d"
  "ace_run"
  "ace_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
