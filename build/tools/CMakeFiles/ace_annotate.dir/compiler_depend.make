# Empty compiler generated dependencies file for ace_annotate.
# This may be replaced when dependencies are built.
