file(REMOVE_RECURSE
  "CMakeFiles/ace_annotate.dir/ace_annotate.cpp.o"
  "CMakeFiles/ace_annotate.dir/ace_annotate.cpp.o.d"
  "ace_annotate"
  "ace_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
