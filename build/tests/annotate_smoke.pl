p(X, Y) :- q(X), r(Y).
