file(REMOVE_RECURSE
  "CMakeFiles/test_parcall.dir/test_parcall.cpp.o"
  "CMakeFiles/test_parcall.dir/test_parcall.cpp.o.d"
  "test_parcall"
  "test_parcall.pdb"
  "test_parcall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
