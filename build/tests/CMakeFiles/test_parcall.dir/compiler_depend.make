# Empty compiler generated dependencies file for test_parcall.
# This may be replaced when dependencies are built.
