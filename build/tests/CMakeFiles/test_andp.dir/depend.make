# Empty dependencies file for test_andp.
# This may be replaced when dependencies are built.
