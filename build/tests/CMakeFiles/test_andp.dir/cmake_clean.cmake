file(REMOVE_RECURSE
  "CMakeFiles/test_andp.dir/test_andp.cpp.o"
  "CMakeFiles/test_andp.dir/test_andp.cpp.o.d"
  "test_andp"
  "test_andp.pdb"
  "test_andp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_andp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
