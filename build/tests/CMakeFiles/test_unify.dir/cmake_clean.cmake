file(REMOVE_RECURSE
  "CMakeFiles/test_unify.dir/test_unify.cpp.o"
  "CMakeFiles/test_unify.dir/test_unify.cpp.o.d"
  "test_unify"
  "test_unify.pdb"
  "test_unify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
