# Empty compiler generated dependencies file for test_higher_order.
# This may be replaced when dependencies are built.
