file(REMOVE_RECURSE
  "CMakeFiles/test_higher_order.dir/test_higher_order.cpp.o"
  "CMakeFiles/test_higher_order.dir/test_higher_order.cpp.o.d"
  "test_higher_order"
  "test_higher_order.pdb"
  "test_higher_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_higher_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
