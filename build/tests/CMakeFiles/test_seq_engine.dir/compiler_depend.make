# Empty compiler generated dependencies file for test_seq_engine.
# This may be replaced when dependencies are built.
