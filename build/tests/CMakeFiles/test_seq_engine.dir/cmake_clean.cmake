file(REMOVE_RECURSE
  "CMakeFiles/test_seq_engine.dir/test_seq_engine.cpp.o"
  "CMakeFiles/test_seq_engine.dir/test_seq_engine.cpp.o.d"
  "test_seq_engine"
  "test_seq_engine.pdb"
  "test_seq_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
