file(REMOVE_RECURSE
  "CMakeFiles/test_builtins.dir/test_builtins.cpp.o"
  "CMakeFiles/test_builtins.dir/test_builtins.cpp.o.d"
  "test_builtins"
  "test_builtins.pdb"
  "test_builtins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builtins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
