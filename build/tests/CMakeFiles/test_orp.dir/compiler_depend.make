# Empty compiler generated dependencies file for test_orp.
# This may be replaced when dependencies are built.
