file(REMOVE_RECURSE
  "CMakeFiles/test_orp.dir/test_orp.cpp.o"
  "CMakeFiles/test_orp.dir/test_orp.cpp.o.d"
  "test_orp"
  "test_orp.pdb"
  "test_orp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
