# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_term[1]_include.cmake")
include("/root/repo/build/tests/test_unify[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_builtins[1]_include.cmake")
include("/root/repo/build/tests/test_seq_engine[1]_include.cmake")
include("/root/repo/build/tests/test_andp[1]_include.cmake")
include("/root/repo/build/tests/test_orp[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_threads[1]_include.cmake")
include("/root/repo/build/tests/test_props[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_exceptions[1]_include.cmake")
include("/root/repo/build/tests/test_higher_order[1]_include.cmake")
include("/root/repo/build/tests/test_parcall[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
add_test(tool_ace_run_workload "/root/repo/build/tools/ace_run" "--engine" "andp" "--agents" "4" "--all-opts" "--stats" "--workload" "occur" "--query" "occur(25, Cs).")
set_tests_properties(tool_ace_run_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_ace_run_orp "/root/repo/build/tools/ace_run" "--engine" "orp" "--agents" "4" "--lao" "--workload" "members" "--query" "members(8, V, R).")
set_tests_properties(tool_ace_run_orp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_ace_annotate "sh" "-c" "echo 'p(X, Y) :- q(X), r(Y).' > annotate_smoke.pl &&           /root/repo/build/tools/ace_annotate annotate_smoke.pl | grep -q 'q(X) & r(Y)'")
set_tests_properties(tool_ace_annotate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
