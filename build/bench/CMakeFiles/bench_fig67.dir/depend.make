# Empty dependencies file for bench_fig67.
# This may be replaced when dependencies are built.
