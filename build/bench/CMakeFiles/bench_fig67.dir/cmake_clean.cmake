file(REMOVE_RECURSE
  "CMakeFiles/bench_fig67.dir/bench_fig67.cpp.o"
  "CMakeFiles/bench_fig67.dir/bench_fig67.cpp.o.d"
  "bench_fig67"
  "bench_fig67.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig67.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
