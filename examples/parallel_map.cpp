// Data and-parallelism: a recursive parallel map, demonstrating how LPCO
// flattens the nested parcall chain into one wide parallel call (paper
// Figure 4) and what that does to backward execution (paper Figure 5).
//
//   $ ./parallel_map [list_length]
#include <cstdio>
#include <cstdlib>

#include "engine/engine.hpp"
#include "builtins/lib.hpp"
#include "support/strutil.hpp"

int main(int argc, char** argv) {
  using namespace ace;
  int len = argc > 1 ? std::atoi(argv[1]) : 12;

  Database db;
  load_library(db);
  db.consult(R"PL(
% Nondeterministic per-element transform (two candidates per element).
tr(X, Y) :- Y is X * 2.
tr(X, Y) :- Y is X * 2 + 1.

process_list([], []).
process_list([H|T], [H2|T2]) :- tr(H, H2) & process_list(T, T2).

% Generate-and-test: the test fails until the right combination is found,
% driving outside backtracking over the parallel call.
search(N, K, Out) :- numlist(1, N, L), process_list(L, Out),
    sum_list(Out, S), 0 =:= S mod K.
)PL");

  std::string query = strf("search(%d, 97, Out).", len);
  std::printf("parallel map with backtracking, %d elements\n\n", len);
  std::printf("%-7s %-6s %12s %9s %10s %11s %12s\n", "agents", "LPCO",
              "vtime", "speedup", "parcalls", "lpco merges", "bt frames");

  for (bool lpco : {false, true}) {
    std::uint64_t t1 = 0;
    for (unsigned agents : {1u, 2u, 4u, 8u}) {
      EngineConfig opts;
      opts.mode = EngineMode::Andp;
      opts.agents = agents;
      opts.lpco = lpco;
      Engine m(db, opts);
      SolveResult r = m.solve(query, 1);
      if (agents == 1) t1 = r.virtual_time;
      std::printf("%-7u %-6s %12llu %8.2fx %10llu %11llu %12llu\n", agents,
                  lpco ? "on" : "off", (unsigned long long)r.virtual_time,
                  double(t1) / double(r.virtual_time),
                  (unsigned long long)r.stats.parcall_frames,
                  (unsigned long long)r.stats.lpco_merges,
                  (unsigned long long)r.stats.backtrack_frames);
    }
  }
  std::printf(
      "\nWith LPCO the recursion's nested parcalls merge into one flat\n"
      "frame (compare the parcall counts): backtracking scans one slot\n"
      "list instead of descending a chain of nested frames.\n");
  return 0;
}
