// Visualizing parallel execution: runs a workload with the tracer attached
// and prints per-agent timelines, with and without the optimizations —
// you can *see* the idle gaps close.
//
//   $ ./trace_timeline [workload] [agents]
#include <cstdio>
#include <cstdlib>

#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

int main(int argc, char** argv) {
  using namespace ace;
  std::string name = argc > 1 ? argv[1] : "occur";
  unsigned agents = argc > 2 ? unsigned(std::atoi(argv[2])) : 4;

  const Workload& w = workload(name);
  for (bool opt : {false, true}) {
    Database db;
    load_library(db);
    db.consult(w.source);
    Tracer tracer;
    EngineConfig o;
    o.mode = EngineMode::Andp;
    o.agents = agents;
    o.lpco = o.shallow = o.pdo = opt;
    Engine m(db, o);
    m.set_tracer(&tracer);
    SolveResult r = m.solve(w.query, 1);

    std::printf("%s on %u agents, optimizations %s — virtual time %llu\n",
                name.c_str(), agents, opt ? "ON" : "OFF",
                (unsigned long long)r.virtual_time);
    std::printf("%s\n", tracer.timeline(agents).c_str());
    std::printf("%s\n", per_agent_report(r).c_str());
  }
  return 0;
}
