% A Conditional Graph Expression, as emitted by `ace_annotate --cge`: at
% compile time mk/1 may exit with its argument ground or unbound, so goal
% independence is undecidable. The runtime ground/1 guard (charged to the
% cge_check cost category) picks the parallel branch exactly when it is
% safe; the else branch is the unchanged sequential conjunction.
%
%   ace_annotate --cge --entry 'main(A).' examples/cge.pl
%   ace_run --engine andp --agents 4 --all-opts --stats examples/cge.pl \
%       'main(A).'
mk(a).
mk(_).
q(a).
q(b).
r(a).
r(b).
main(A) :-
    mk(A),
    (ground(A) -> q(A) & r(A) ; q(A), r(A)).
