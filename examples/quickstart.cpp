// Quickstart: load a program, run queries on the three engines.
//
//   $ ./quickstart
//
// Shows: consulting Prolog source, enumerating solutions sequentially,
// running the same program on the and-parallel engine (virtual-time
// simulator) and inspecting the runtime statistics the paper's
// optimizations act on.
#include <cstdio>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

int main() {
  using namespace ace;

  // 1. Build a database: the bundled library plus our program. `&` marks
  //    independent goals that the and-parallel engine may run in parallel.
  Database db;
  load_library(db);
  db.consult(R"PL(
% Distances between cities.
road(home, depot, 4).
road(depot, plant, 7).
road(home, plant, 13).
road(plant, port, 2).
road(depot, port, 11).

% A trip is a sequence of roads; trips/3 enumerates them nondeterministically.
trip(A, B, [A-B], D) :- road(A, B, D).
trip(A, C, [A-B|Rest], D) :- road(A, B, D1), trip(B, C, Rest, D2),
    D is D1 + D2.

% Two independent trips evaluated in and-parallel.
both_trips(R1, D1, R2, D2) :-
    trip(home, port, R1, D1) & trip(depot, port, R2, D2).
)PL");

  // 2. Sequential engine: enumerate all solutions of a query.
  Engine seq(db);
  SolveResult r = seq.solve("trip(home, port, Route, Dist).");
  std::printf("trip(home, port, Route, Dist) — %zu solutions:\n",
              r.solutions.size());
  for (const std::string& s : r.solutions) {
    std::printf("  %s\n", s.c_str());
  }

  // 3. And-parallel engine with 4 simulated agents and all of the paper's
  //    optimizations on. Solutions (and their order) match the sequential
  //    engine exactly.
  EngineConfig opts;
  opts.mode = EngineMode::Andp;
  opts.agents = 4;
  opts.lpco = opts.shallow = opts.pdo = true;
  Engine andp(db, opts);
  SolveResult pr = andp.solve("both_trips(R1, D1, R2, D2).", 2);
  std::printf("\nboth_trips/4 on 4 agents, first two solutions:\n");
  for (const std::string& s : pr.solutions) {
    std::printf("  %s\n", s.c_str());
  }

  // 4. The measurements the paper's optimization schemas act on.
  std::printf("\nvirtual time: %llu units\n",
              (unsigned long long)pr.virtual_time);
  std::printf("stats:\n%s", pr.stats.summary().c_str());
  return 0;
}
