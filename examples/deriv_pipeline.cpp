// Symbolic differentiation pipeline: the pderiv workload driven through
// all three engines with per-optimization statistics — a tour of the
// system as a downstream user would wire it up.
//
//   $ ./deriv_pipeline [num_expressions] [expression_depth]
#include <cstdio>
#include <cstdlib>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "support/strutil.hpp"

int main(int argc, char** argv) {
  using namespace ace;
  int k = argc > 1 ? std::atoi(argv[1]) : 12;
  int depth = argc > 2 ? std::atoi(argv[2]) : 10;

  Database db;
  load_library(db);
  db.consult(R"PL(
d(x, x, 1).
d(N, _, 0) :- integer(N).
d(A + B, X, DA + DB) :- d(A, X, DA) & d(B, X, DB).
d(A - B, X, DA - DB) :- d(A, X, DA) & d(B, X, DB).
d(A * B, X, A * DB + DA * B) :- d(A, X, DA) & d(B, X, DB).

mkexp(0, x) :- !.
mkexp(N, x * E + N) :- N1 is N - 1, mkexp(N1, E).

deriv_all([], _, []).
deriv_all([E|Es], X, [D|Ds]) :- d(E, X, D) & deriv_all(Es, X, Ds).

mkexps(0, _, []) :- !.
mkexps(K, N, [E|Es]) :- mkexp(N, E), K1 is K - 1, mkexps(K1, N, Es).

run(K, N, Ds) :- mkexps(K, N, Es), deriv_all(Es, x, Ds).
)PL");

  std::string query = strf("run(%d, %d, Ds).", k, depth);
  std::printf("differentiating %d expressions of depth %d\n\n", k, depth);

  Engine seq(db);
  SolveResult rs = seq.solve(query, 1);
  std::printf("sequential:              vtime %10llu\n",
              (unsigned long long)rs.virtual_time);

  struct Config {
    const char* label;
    bool lpco, shallow, pdo;
  };
  for (const Config& c : {Config{"andp 1 agent, no opts  ", false, false, false},
                          Config{"andp 1 agent, all opts ", true, true, true}}) {
    EngineConfig opts;
    opts.mode = EngineMode::Andp;
    opts.agents = 1;
    opts.lpco = c.lpco;
    opts.shallow = c.shallow;
    opts.pdo = c.pdo;
    Engine m(db, opts);
    SolveResult r = m.solve(query, 1);
    double overhead = (double(r.virtual_time) - double(rs.virtual_time)) /
                      double(rs.virtual_time) * 100.0;
    std::printf("%s vtime %10llu  overhead %+5.1f%%\n", c.label,
                (unsigned long long)r.virtual_time, overhead);
  }

  std::printf("\nscaling (all optimizations on):\n");
  std::uint64_t t1 = 0;
  for (unsigned agents = 1; agents <= 10; ++agents) {
    EngineConfig opts;
    opts.mode = EngineMode::Andp;
    opts.agents = agents;
    opts.lpco = opts.shallow = opts.pdo = true;
    Engine m(db, opts);
    SolveResult r = m.solve(query, 1);
    if (agents == 1) t1 = r.virtual_time;
    std::printf("  %2u agents: vtime %10llu  speedup %5.2fx  "
                "markers %llu (skipped %llu)\n",
                agents, (unsigned long long)r.virtual_time,
                double(t1) / double(r.virtual_time),
                (unsigned long long)(r.stats.input_markers +
                                     r.stats.end_markers),
                (unsigned long long)r.stats.shallow_skipped_markers);
  }
  return 0;
}
