// Or-parallel search: n-queens on the MUSE-style engine, demonstrating the
// Last Alternative Optimization (paper §3.2).
//
//   $ ./nqueens_search [board_size] [agents]
//
// Prints the solution count, the virtual-time speedup across agent counts,
// and the LAO effect on choice-point allocation.
#include <cstdio>
#include <cstdlib>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"
#include "support/strutil.hpp"

int main(int argc, char** argv) {
  using namespace ace;
  int n = argc > 1 ? std::atoi(argv[1]) : 7;
  unsigned max_agents = argc > 2 ? unsigned(std::atoi(argv[2])) : 8;

  Database db;
  load_library(db);
  db.consult(R"PL(
queens(N, Qs) :- numlist(1, N, Ns), place(Ns, [], Qs).
place([], Acc, Acc).
place(L, Acc, Qs) :- select(Q, L, R), safe(Q, Acc, 1), place(R, [Q|Acc], Qs).
safe(_, [], _).
safe(Q, [P|Ps], D) :- Q =\= P + D, Q =\= P - D, D1 is D + 1, safe(Q, Ps, D1).
)PL");

  std::string query = strf("queens(%d, Qs).", n);
  std::printf("n-queens, N=%d, or-parallel MUSE-style engine\n\n", n);
  std::printf("%-7s %-5s %12s %9s %9s %12s %10s\n", "agents", "LAO", "vtime",
              "speedup", "sols", "choicepts", "cp reused");

  for (bool lao : {false, true}) {
    std::uint64_t t1 = 0;
    for (unsigned agents = 1; agents <= max_agents; agents *= 2) {
      EngineConfig opts;
      opts.mode = EngineMode::Orp;
      opts.agents = agents;
      opts.lao = lao;
      Engine m(db, opts);
      SolveResult r = m.solve(query);
      if (agents == 1) t1 = r.virtual_time;
      std::printf("%-7u %-5s %12llu %8.2fx %9zu %12llu %10llu\n", agents,
                  lao ? "on" : "off", (unsigned long long)r.virtual_time,
                  double(t1) / double(r.virtual_time), r.solutions.size(),
                  (unsigned long long)r.stats.choicepoints,
                  (unsigned long long)r.stats.lao_reuses);
    }
  }
  std::printf(
      "\nLAO flattens the or-tree: reused choice points keep idle agents'\n"
      "work-finding cheap (paper Figure 7), at a small 1-agent check cost\n"
      "(paper Table 3's negative 1-processor entries).\n");
  return 0;
}
