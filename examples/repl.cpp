// A minimal interactive top level over the engines.
//
//   $ ./repl [--andp N | --orp N] [--lpco --shallow --pdo --lao] [file.pl...]
//   ?- member(X, [1, 2, 3]).
//   X = 1 ;
//   X = 2 .
//
// Type a query ending in '.'; ';' asks for the next solution, anything else
// stops the enumeration. 'halt.' exits.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "builtins/lib.hpp"
#include "engine/engine.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ace::AceError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  Database db;
  load_library(db);

  enum { kSeq, kAndp, kOrp } engine = kSeq;
  unsigned agents = 1;
  EngineConfig andp_opts;
  andp_opts.mode = EngineMode::Andp;
  EngineConfig orp_opts;
  orp_opts.mode = EngineMode::Orp;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--andp" && i + 1 < argc) {
      engine = kAndp;
      agents = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--orp" && i + 1 < argc) {
      engine = kOrp;
      agents = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--lpco") {
      andp_opts.lpco = true;
    } else if (arg == "--shallow") {
      andp_opts.shallow = true;
    } else if (arg == "--pdo") {
      andp_opts.pdo = true;
    } else if (arg == "--lao") {
      orp_opts.lao = true;
    } else {
      try {
        db.consult(read_file(arg));
        std::printf("%% consulted %s\n", arg.c_str());
      } catch (const AceError& e) {
        std::fprintf(stderr, "%% %s\n", e.what());
        return 1;
      }
    }
  }
  andp_opts.agents = agents;
  orp_opts.agents = agents;

  std::printf("ace-schemas top level (%s",
              engine == kSeq ? "sequential"
                             : (engine == kAndp ? "and-parallel"
                                                : "or-parallel"));
  if (engine != kSeq) std::printf(", %u agents", agents);
  std::printf("). 'halt.' to quit.\n");

  std::string line;
  for (;;) {
    std::printf("?- ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "halt." || line == "halt") break;
    if (line.back() != '.') line += '.';

    try {
      SolveResult r;
      // Enumerate lazily-ish: fetch in batches, let the user page with ';'.
      std::size_t shown = 0;
      std::size_t want = 1;
      for (;;) {
        switch (engine) {
          case kSeq: {
            Engine eng(db);
            r = eng.solve(line, want);
            break;
          }
          case kAndp: {
            Engine m(db, andp_opts);
            r = m.solve(line, want);
            break;
          }
          case kOrp: {
            Engine m(db, orp_opts);
            r = m.solve(line, want);
            break;
          }
        }
        if (!r.output.empty() && shown == 0) {
          std::printf("%s", r.output.c_str());
        }
        if (r.solutions.size() <= shown) {
          std::printf(shown == 0 ? "false.\n" : ".\n");
          break;
        }
        std::printf("%s ", r.solutions.back().c_str());
        shown = r.solutions.size();
        std::fflush(stdout);
        std::string more;
        if (!std::getline(std::cin, more) || more != ";") {
          std::printf(".\n");
          break;
        }
        ++want;
      }
    } catch (const AceError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }
  return 0;
}
