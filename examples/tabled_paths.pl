% Tabled transitive closure: without the directive, APL007 flags path/2
% (directly recursive, not provably determinate -> exponential re-derivation
% under backtracking). `ace_lint --fix` inserts the directive automatically.
%
%   ace_lint --Werror --pedantic examples/tabled_paths.pl
%   ace_run --engine orp --agents 4 --lao examples/tabled_paths.pl \
%       'path(a, X).'
:- table path/2.
edge(a, b).
edge(b, c).
edge(c, d).
edge(b, d).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
