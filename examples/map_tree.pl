% Independent and-parallel tree map: the two subtree recursions share no
% variable once the input tree is ground, so they run under one '&' group.
%
%   ace_run --engine andp --agents 4 --all-opts examples/map_tree.pl \
%       'main(T).'
%   ace_lint --entry 'main(T).' examples/map_tree.pl
tr(leaf(N), leaf(M)) :- M is N * N.
tr(node(L, R), node(L2, R2)) :- tr(L, L2) & tr(R, R2).
main(Out) :-
    tr(node(node(leaf(1), leaf(2)), node(leaf(3), leaf(4))), Out).
