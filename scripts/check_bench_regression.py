#!/usr/bin/env python3
"""Regression gate for the bench_attrib / bench_tab / bench_db pipeline.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json [--tolerance 0.05]
        [--throughput-tolerance 0.5] [--noise-floor METRIC=VALUE]...

Compares two BENCH_*.json documents (bench | bench_to_json) run for run,
keyed by (name, engine, agents). Three metric kinds:

  virtual_time  (bench_attrib, bench_tab) — lower is better. A run
        REGRESSES when its candidate virtual time exceeds the baseline by
        more than --tolerance (default 5%). The simulator is deterministic,
        so on an unchanged engine the gate is exact.
  mops  (bench_db) — higher is better. Wall-clock throughput is noisy and
        machine-dependent, so a run only REGRESSES when its candidate
        throughput drops below baseline by more than
        --throughput-tolerance (default 50%) — the gate catches collapses
        (a reader path that silently reverted to a global lock), not jitter.
  qps   (bench_serve --soak) — higher is better, same wall-clock gate as
        mops. Latency fields (p50_us, p99_us, ...) ride along as data and
        never gate: percentiles on a shared CI runner are all jitter.
  cache_hit_rate  (bench_serve --soak, cache-fronted scenarios) — higher
        is better, checked in addition to the run's qps. The rate is a
        deterministic property of the scenario's query mix (not wall
        clock), so it gates on an absolute drop: a run REGRESSES when the
        candidate rate falls more than --hit-rate-tolerance (default 0.10)
        below baseline. --noise-floor cache_hit_rate=V skips gating runs
        whose baseline rate is under V.

--noise-floor METRIC=VALUE (repeatable) declares the absolute value below
which a wall-clock metric is indistinguishable from scheduler noise: when
the BASELINE value of that metric is under the floor the run is reported
but not gated. This keeps tiny-denominator runs (a 3ms scenario on a busy
runner) from tripping the percentage gate while the meaningful runs still
gate hard.

Improvements and new runs are reported but never fail the gate; a run that
disappears from the candidate fails it (a silently dropped workload is how
regressions hide). Exit codes: 0 ok, 1 regression/missing run, 2 bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        print(f"error: {path}: no runs[] array", file=sys.stderr)
        sys.exit(2)
    out = {}
    for r in runs:
        try:
            key = (r["name"], r["engine"], int(r["agents"]))
            out[key] = r
        except (KeyError, TypeError, ValueError) as e:
            print(f"error: {path}: malformed run {r!r}: {e}", file=sys.stderr)
            sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional virtual-time increase "
                         "(default 0.05 = 5%%)")
    ap.add_argument("--throughput-tolerance", type=float, default=0.5,
                    help="allowed fractional throughput (mops/qps) decrease "
                         "for wall-clock runs (default 0.5 = 50%%)")
    ap.add_argument("--hit-rate-tolerance", type=float, default=0.10,
                    help="allowed absolute cache_hit_rate drop "
                         "(default 0.10)")
    ap.add_argument("--noise-floor", action="append", default=[],
                    metavar="METRIC=VALUE",
                    help="absolute baseline value below which METRIC does "
                         "not gate (repeatable, e.g. --noise-floor qps=25)")
    args = ap.parse_args()

    floors = {}
    for spec in args.noise_floor:
        metric, sep, value = spec.partition("=")
        if not sep or not metric:
            print(f"error: bad --noise-floor {spec!r} (want METRIC=VALUE)",
                  file=sys.stderr)
            sys.exit(2)
        try:
            floors[metric] = float(value)
        except ValueError:
            print(f"error: bad --noise-floor value {value!r}",
                  file=sys.stderr)
            sys.exit(2)

    base = load_runs(args.baseline)
    cand = load_runs(args.candidate)

    regressions = []
    improvements = 0
    unchanged = 0
    for key, b in sorted(base.items()):
        c = cand.get(key)
        name = f"{key[0]}/{key[1]}@{key[2]}"
        if c is None:
            regressions.append(f"{name}: missing from candidate")
            continue
        if "virtual_time" in b:
            bvt = int(b["virtual_time"])
            cvt = int(c.get("virtual_time", 0))
            if bvt == 0:
                continue
            if bvt < floors.get("virtual_time", 0.0):
                print(f"note: {name}: virtual_time {bvt} below noise floor "
                      f"{floors['virtual_time']:g}; not gated")
                continue
            delta = (cvt - bvt) / bvt
            if delta > args.tolerance:
                regressions.append(
                    f"{name}: virtual time {bvt} -> {cvt} "
                    f"(+{100 * delta:.2f}%, "
                    f"tolerance {100 * args.tolerance:.1f}%)")
            elif cvt < bvt:
                improvements += 1
                print(f"ok: {name}: improved {bvt} -> {cvt} "
                      f"({100 * delta:.2f}%)")
            else:
                unchanged += 1
        elif "mops" in b or "qps" in b:
            metric, unit = (("mops", "Mops/s") if "mops" in b
                            else ("qps", "q/s"))
            bth = float(b[metric])
            cth = float(c.get(metric, 0.0))
            if bth <= 0:
                continue
            if bth < floors.get(metric, 0.0):
                print(f"note: {name}: {metric} {bth:.3f} below noise floor "
                      f"{floors[metric]:g}; not gated")
                continue
            drop = (bth - cth) / bth
            if drop > args.throughput_tolerance:
                regressions.append(
                    f"{name}: throughput {bth:.3f} -> {cth:.3f} {unit} "
                    f"(-{100 * drop:.1f}%, tolerance "
                    f"{100 * args.throughput_tolerance:.0f}%)")
            elif cth > bth:
                improvements += 1
                print(f"ok: {name}: improved {bth:.3f} -> {cth:.3f} {unit}")
            else:
                unchanged += 1
        else:
            print(f"error: baseline run {name} has none of virtual_time, "
                  f"mops, qps", file=sys.stderr)
            sys.exit(2)
        # Cache hit rate rides on qps runs as an extra gated metric: the
        # scenario's query mix makes it deterministic, so it gates on an
        # absolute drop rather than the wall-clock percentage tolerance.
        if "cache_hit_rate" in b:
            brate = float(b["cache_hit_rate"])
            crate = float(c.get("cache_hit_rate", 0.0))
            if brate < floors.get("cache_hit_rate", 0.0):
                print(f"note: {name}: cache_hit_rate {brate:.3f} below "
                      f"noise floor {floors['cache_hit_rate']:g}; not gated")
            elif brate - crate > args.hit_rate_tolerance:
                regressions.append(
                    f"{name}: cache_hit_rate {brate:.3f} -> {crate:.3f} "
                    f"(drop {brate - crate:.3f}, tolerance "
                    f"{args.hit_rate_tolerance:.2f})")
            elif crate > brate:
                print(f"ok: {name}: cache_hit_rate improved "
                      f"{brate:.3f} -> {crate:.3f}")

    new_runs = sorted(set(cand) - set(base))
    for key in new_runs:
        print(f"note: new run {key[0]}/{key[1]}@{key[2]} "
              f"(no baseline; not gated)")

    print(f"checked {len(base)} baseline runs: {unchanged} unchanged, "
          f"{improvements} improved, {len(regressions)} regressed, "
          f"{len(new_runs)} new")
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
