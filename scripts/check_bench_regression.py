#!/usr/bin/env python3
"""Virtual-time regression gate for the bench_attrib pipeline.

Usage:
    check_bench_regression.py BASELINE.json CANDIDATE.json [--tolerance 0.05]

Compares two BENCH_attrib.json documents (bench_attrib | bench_to_json) run
for run, keyed by (name, engine, agents). A run REGRESSES when its candidate
virtual time exceeds the baseline by more than the tolerance (default 5%).
Improvements and new runs are reported but never fail the gate; a run that
disappears from the candidate fails it (a silently dropped workload is how
regressions hide).

The simulator is deterministic, so on an unchanged engine the two documents
are identical and this script is a no-op that prints one OK line per run
set. Exit codes: 0 ok, 1 regression/missing run, 2 bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        print(f"error: {path}: no runs[] array", file=sys.stderr)
        sys.exit(2)
    out = {}
    for r in runs:
        try:
            key = (r["name"], r["engine"], int(r["agents"]))
            out[key] = r
        except (KeyError, TypeError, ValueError) as e:
            print(f"error: {path}: malformed run {r!r}: {e}", file=sys.stderr)
            sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="allowed fractional virtual-time increase "
                         "(default 0.05 = 5%%)")
    args = ap.parse_args()

    base = load_runs(args.baseline)
    cand = load_runs(args.candidate)

    regressions = []
    improvements = 0
    unchanged = 0
    for key, b in sorted(base.items()):
        c = cand.get(key)
        name = f"{key[0]}/{key[1]}@{key[2]}"
        if c is None:
            regressions.append(f"{name}: missing from candidate")
            continue
        bvt = int(b["virtual_time"])
        cvt = int(c["virtual_time"])
        if bvt == 0:
            continue
        delta = (cvt - bvt) / bvt
        if delta > args.tolerance:
            regressions.append(
                f"{name}: virtual time {bvt} -> {cvt} (+{100 * delta:.2f}%, "
                f"tolerance {100 * args.tolerance:.1f}%)")
        elif cvt < bvt:
            improvements += 1
            print(f"ok: {name}: improved {bvt} -> {cvt} "
                  f"({100 * delta:.2f}%)")
        else:
            unchanged += 1

    new_runs = sorted(set(cand) - set(base))
    for key in new_runs:
        print(f"note: new run {key[0]}/{key[1]}@{key[2]} "
              f"(no baseline; not gated)")

    print(f"checked {len(base)} baseline runs: {unchanged} unchanged, "
          f"{improvements} improved, {len(regressions)} regressed, "
          f"{len(new_runs)} new")
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        return 1
    print("bench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
