// ace_stats: speedup-trajectory analyzer.
//
//   ace_stats [options] <file.pl...> '<query.>'
//   ace_stats [options] --workload <name> [--query '<query.>']
//
// Runs one query at a ladder of agent counts and reports, per rung, the
// paper's accounting identity
//
//   agents * makespan = work + overhead + idle(charged) + idle(tail)
//
// as a table: relative speedup (vs the 1-agent rung), achieved speedup
// (work/makespan), efficiency and the percentage each loss category eats.
// The last rung additionally gets the full `--explain` style decomposition
// (per-category attribution, schema savings, slot critical path) plus the
// per-predicate attribution rows merged over agents.
//
// Options:
//   --engine seq|andp|orp      (default andp)
//   --agents-list A,B,C        agent counts to sweep (default 1,5,10)
//   --lpco --shallow --pdo --lao --all-opts --static-facts
//   --max-solutions N          solution cap per run
//   --limit N                  resolution limit per run
//   --preds N                  per-predicate rows to print (default 10)
//   --json                     machine-readable output: one JSON object with
//                              a "runs" array of speedup reports
//   --flame FILE               write collapsed-stack attribution samples for
//                              the last rung (flamegraph.pl / speedscope)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "builtins/lib.hpp"
#include "sim/trace.hpp"
#include "stats/speedup.hpp"
#include "support/strutil.hpp"
#include "workloads/harness.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ace::AceError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: ace_stats [--engine seq|andp|orp]"
               " [--agents-list 1,5,10]\n"
               "                 [--lpco] [--shallow] [--pdo] [--lao]"
               " [--all-opts]\n"
               "                 [--static-facts] [--max-solutions N]"
               " [--limit N]\n"
               "                 [--preds N] [--json] [--flame FILE]\n"
               "                 (<file.pl>... '<query.>' | --workload <name>"
               " [--query '<q.>'])\n");
  std::exit(2);
}

std::vector<unsigned> parse_agents_list(const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    unsigned long v = std::stoul(tok);
    if (v == 0 || v > 1024) usage();
    out.push_back(static_cast<unsigned>(v));
  }
  if (out.empty()) usage();
  return out;
}

// Per-predicate rows merged over all agents of a run, largest total first.
std::vector<ace::PredAttrib> merge_preds(
    const std::vector<std::vector<ace::PredAttrib>>& per_agent_preds) {
  std::map<std::string, ace::AttribBreakdown> merged;
  for (const auto& rows : per_agent_preds) {
    for (const ace::PredAttrib& row : rows) merged[row.pred].add(row.a);
  }
  std::vector<ace::PredAttrib> out;
  out.reserve(merged.size());
  for (auto& [pred, a] : merged) out.push_back({pred, a});
  std::stable_sort(out.begin(), out.end(),
                   [](const ace::PredAttrib& x, const ace::PredAttrib& y) {
                     return x.a.total() > y.a.total();
                   });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  RunConfig cfg;
  cfg.engine = EngineKind::Andp;
  cfg.attrib = true;
  std::vector<std::string> files;
  std::string query;
  std::string workload_name;
  std::string flame_path;
  std::vector<unsigned> agents_list = {1, 5, 10};
  std::size_t num_preds = 10;
  bool want_json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--engine") {
      std::string e = next();
      if (e == "seq") {
        cfg.engine = EngineKind::Seq;
      } else if (e == "andp") {
        cfg.engine = EngineKind::Andp;
      } else if (e == "orp") {
        cfg.engine = EngineKind::Orp;
      } else {
        usage();
      }
    } else if (arg == "--agents-list") {
      agents_list = parse_agents_list(next());
    } else if (arg == "--lpco") {
      cfg.lpco = true;
    } else if (arg == "--shallow") {
      cfg.shallow = true;
    } else if (arg == "--pdo") {
      cfg.pdo = true;
    } else if (arg == "--lao") {
      cfg.lao = true;
    } else if (arg == "--all-opts") {
      cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
    } else if (arg == "--static-facts") {
      cfg.static_facts = true;
    } else if (arg == "--max-solutions") {
      cfg.max_solutions = std::stoul(next());
    } else if (arg == "--limit") {
      cfg.resolution_limit = std::stoull(next());
    } else if (arg == "--preds") {
      num_preds = std::stoul(next());
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--flame") {
      flame_path = next();
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--query") {
      query = next();
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (cfg.engine == EngineKind::Seq) agents_list = {1};

  try {
    Database db;
    load_library(db);
    std::string label;
    if (!workload_name.empty()) {
      const Workload& w = workload(workload_name);
      db.consult(w.source);
      label = w.name;
      if (query.empty()) query = w.query;
      if (cfg.max_solutions == SIZE_MAX && !w.all_solutions) {
        cfg.max_solutions = 1;
      }
    } else {
      if (files.empty()) usage();
      if (query.empty()) {
        query = files.back();
        files.pop_back();
        if (files.empty() && query.find(".pl") != std::string::npos) usage();
      }
      for (const std::string& f : files) {
        db.consult(read_file(f));
        if (!label.empty()) label += "+";
        label += f;
      }
    }

    const CostModel costs =
        cfg.costs != nullptr ? *cfg.costs : CostModel::standard();

    struct Rung {
      unsigned agents;
      SpeedupReport report;
      SolveResult result;
    };
    std::vector<Rung> rungs;
    for (unsigned agents : agents_list) {
      RunConfig rc = cfg;
      rc.agents = agents;
      Engine eng(db, rc.engine_config(), costs);
      Tracer tracer;
      eng.set_tracer(&tracer);
      SolveResult r = eng.solve(query, cfg.max_solutions);
      SpeedupReport rep = analyze_speedup(r, agents);
      analyze_critical_path(rep, tracer.snapshot());
      rungs.push_back({agents, std::move(rep), std::move(r)});
    }

    const Rung& last = rungs.back();
    std::uint64_t base_vt = rungs.front().report.makespan;

    if (want_json) {
      std::string out = strf("{\"program\":\"%s\",\"engine\":\"%s\"",
                             label.c_str(), engine_mode_name(cfg.engine));
      out += ",\"runs\":[";
      for (std::size_t i = 0; i < rungs.size(); ++i) {
        if (i != 0) out += ",";
        out += rungs[i].report.to_json();
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
    } else {
      std::printf("%% %s on %s engine, query %s\n", label.c_str(),
                  engine_mode_name(cfg.engine), query.c_str());
      std::printf(
          "agents     makespan  rel-speedup  achieved   eff%%   work%%  "
          "ovhd%%   idle%%\n");
      for (const Rung& rung : rungs) {
        const SpeedupReport& rep = rung.report;
        double rel = rep.makespan == 0
                         ? 0.0
                         : (double)base_vt / (double)rep.makespan;
        std::uint64_t budget = (std::uint64_t)rep.agents * rep.makespan;
        auto pct = [&](std::uint64_t v) {
          return budget == 0 ? 0.0 : 100.0 * (double)v / (double)budget;
        };
        std::printf("%6u %12llu %11.2fx %8.2fx %6.1f %7.1f %7.1f %7.1f\n",
                    rep.agents, (unsigned long long)rep.makespan, rel,
                    rep.achieved_speedup(), 100.0 * rep.efficiency(),
                    pct(rep.work), pct(rep.overhead),
                    pct(rep.idle_charged + rep.idle_tail));
      }
      std::printf("\n%s", last.report.render().c_str());
      std::vector<PredAttrib> preds = merge_preds(last.result.per_agent_preds);
      if (!preds.empty() && num_preds > 0) {
        std::printf("  top predicates (%u agents):\n", last.agents);
        std::printf(
            "    predicate                 total    share    work%%    "
            "ovhd%%\n");
        std::uint64_t grand = 0;
        for (const PredAttrib& p : preds) grand += p.a.total();
        for (std::size_t i = 0; i < preds.size() && i < num_preds; ++i) {
          const PredAttrib& p = preds[i];
          std::uint64_t tot = p.a.total();
          double share = grand == 0 ? 0.0 : 100.0 * (double)tot / (double)grand;
          double workp = tot == 0 ? 0.0 : 100.0 * (double)p.a.work() / (double)tot;
          double ovhp = tot == 0 ? 0.0 : 100.0 * (double)p.a.overhead() / (double)tot;
          std::printf("    %-20s %12llu  %6.1f%%  %6.1f%%  %6.1f%%\n",
                      p.pred.c_str(), (unsigned long long)tot, share, workp,
                      ovhp);
        }
      }
    }

    if (!flame_path.empty()) {
      std::ofstream out(flame_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", flame_path.c_str());
        return 2;
      }
      std::string stacks = collapsed_stacks(last.result.per_agent_attrib,
                                            last.result.per_agent_preds);
      out << stacks;
      std::fprintf(stderr,
                   "flame: %zu bytes of collapsed stacks -> %s "
                   "(feed to flamegraph.pl or speedscope)\n",
                   stacks.size(), flame_path.c_str());
    }
    return 0;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
