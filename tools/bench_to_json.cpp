// bench_to_json: converts machine-readable `ATTRIB` lines (stdin) into the
// checked-in BENCH_*.json documents (stdout). bench_attrib and bench_tab
// both emit the wire format:
//
//   bench_attrib | bench_to_json > BENCH_attrib.json
//   bench_tab    | bench_to_json > BENCH_tab.json
//
// Every `ATTRIB key=value ...` line becomes one object in the "runs" array;
// dotted keys (cat.unify, save.flattening, tab.hits) nest into the
// "categories" / "savings" / "tab" / ... sub-objects. Non-ATTRIB lines (the
// human-readable table) are ignored, so the tool can eat the bench's full
// stdout. The output is deterministic for deterministic input: keys keep
// their input order and numbers are emitted verbatim.
//
// The document carries "schema_version" (bumped when the document layout
// changes incompatibly). `-o FILE` writes there instead of stdout and
// REFUSES to overwrite an existing FILE whose schema_version is newer than
// this tool's — regenerating an old baseline with an old binary cannot
// silently drop fields a newer schema added.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// The document layout version this tool emits.
constexpr long kSchemaVersion = 1;

}  // namespace

namespace {

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  bool seen_digit = false, seen_dot = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '-' && i == 0) continue;
    if (c == '.' && !seen_dot) {
      seen_dot = true;
      continue;
    }
    if (c < '0' || c > '9') return false;
    seen_digit = true;
  }
  return seen_digit;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string value_json(const std::string& v) {
  if (is_number(v)) return v;
  return "\"" + json_escape(v) + "\"";
}

// One ATTRIB line -> one JSON object. Dotted keys are grouped into nested
// objects; grouping relies on dotted keys with the same prefix being
// adjacent, which is how bench_attrib emits them.
std::string line_to_json(const std::string& line) {
  std::istringstream ss(line);
  std::string tok;
  ss >> tok;  // "ATTRIB"
  std::string out = "{";
  std::string open_group;
  bool first = true;
  auto close_group = [&]() {
    if (!open_group.empty()) {
      out += "}";
      open_group.clear();
    }
  };
  while (ss >> tok) {
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) continue;
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    std::size_t dot = key.find('.');
    std::string group = dot == std::string::npos ? "" : key.substr(0, dot);
    std::string leaf = dot == std::string::npos ? key : key.substr(dot + 1);
    if (group != open_group) {
      close_group();
      if (!first) out += ",";
      first = false;
      if (!group.empty()) {
        static const char* kGroupName[] = {"cat", "save", "elide"};
        static const char* kJsonName[] = {"categories", "savings", "elisions"};
        std::string gname = group;
        for (int i = 0; i < 3; ++i) {
          if (group == kGroupName[i]) gname = kJsonName[i];
        }
        out += "\"" + json_escape(gname) + "\":{";
        open_group = group;
        out += "\"" + json_escape(leaf) + "\":" + value_json(val);
        continue;
      }
    } else if (!group.empty()) {
      out += ",\"" + json_escape(leaf) + "\":" + value_json(val);
      continue;
    } else if (!first) {
      out += ",";
    }
    first = false;
    if (key == "vt") key = "virtual_time";  // long-form name in the document
    out += "\"" + json_escape(key) + "\":" + value_json(val);
  }
  close_group();
  out += "}";
  return out;
}

// Best-effort extraction of "schema_version": N from an existing document
// (no JSON parser needed for a flat header field). Returns 0 when the file
// does not exist or carries no schema_version (pre-versioning documents).
long existing_schema_version(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t pos = line.find("\"schema_version\"");
    if (pos == std::string::npos) continue;
    pos = line.find(':', pos);
    if (pos == std::string::npos) continue;
    return std::strtol(line.c_str() + pos + 1, nullptr, 10);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" || arg == "--output") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_to_json: missing value for %s\n",
                     arg.c_str());
        return 2;
      }
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench | bench_to_json [-o FILE]  (ATTRIB lines on "
                   "stdin)\n");
      return 2;
    }
  }

  std::vector<std::string> runs;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.rfind("ATTRIB ", 0) == 0) runs.push_back(line_to_json(line));
  }
  if (runs.empty()) {
    std::fprintf(stderr, "bench_to_json: no ATTRIB lines on stdin\n");
    return 1;
  }

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    long existing = existing_schema_version(out_path);
    if (existing > kSchemaVersion) {
      std::fprintf(stderr,
                   "bench_to_json: refusing to overwrite %s: its "
                   "schema_version %ld is newer than this tool's %ld "
                   "(regenerating would drop fields)\n",
                   out_path.c_str(), existing, kSchemaVersion);
      return 1;
    }
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_to_json: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
  }

  std::fprintf(out, "{\n  \"version\": 1,\n");
  std::fprintf(out, "  \"schema_version\": %ld,\n", kSchemaVersion);
  std::fprintf(out, "  \"generator\": \"bench_attrib | bench_to_json\",\n");
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(out, "    %s%s\n", runs[i].c_str(),
                 i + 1 == runs.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
