// ace_run: command-line workload runner.
//
//   ace_run [options] <file.pl...> '<query.>'
//   ace_run [options] --workload <name> [--query '<query.>']
//
// Options:
//   --engine seq|andp|orp      (default seq)
//   --agents N                 (default 1)
//   --lpco --shallow --pdo --lao --all-opts
//   --threads                  (andp only: real std::thread driver)
//   --max-solutions N          (default: all for or-parallel corpus
//                               queries, 1 otherwise)
//   --stats                    print the full counter block
//   --limit N                  resolution limit (abort runaway programs)
//
// Prints each solution, then the virtual time; with --stats the counters
// the paper's optimizations act on.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "builtins/lib.hpp"
#include "workloads/harness.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ace::AceError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: ace_run [--engine seq|andp|orp] [--agents N]\n"
               "               [--lpco] [--shallow] [--pdo] [--lao]"
               " [--all-opts]\n"
               "               [--threads] [--max-solutions N] [--stats]"
               " [--limit N]\n"
               "               (<file.pl>... '<query.>' | --workload <name>"
               " [--query '<q.>'])\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  RunConfig cfg;
  cfg.engine = EngineKind::Seq;
  std::vector<std::string> files;
  std::string query;
  std::string workload_name;
  bool want_stats = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--engine") {
      std::string e = next();
      if (e == "seq") {
        cfg.engine = EngineKind::Seq;
      } else if (e == "andp") {
        cfg.engine = EngineKind::Andp;
      } else if (e == "orp") {
        cfg.engine = EngineKind::Orp;
      } else {
        usage();
      }
    } else if (arg == "--agents") {
      cfg.agents = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--lpco") {
      cfg.lpco = true;
    } else if (arg == "--shallow") {
      cfg.shallow = true;
    } else if (arg == "--pdo") {
      cfg.pdo = true;
    } else if (arg == "--lao") {
      cfg.lao = true;
    } else if (arg == "--all-opts") {
      cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
    } else if (arg == "--threads") {
      cfg.use_threads = true;
    } else if (arg == "--max-solutions") {
      cfg.max_solutions = std::stoul(next());
    } else if (arg == "--limit") {
      cfg.resolution_limit = std::stoull(next());
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--query") {
      query = next();
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }

  try {
    RunOutcome out;
    if (!workload_name.empty()) {
      out = run_workload(workload(workload_name), cfg, query);
    } else {
      if (files.empty()) usage();
      // Last non-flag argument is the query if it is not a readable file.
      if (query.empty()) {
        query = files.back();
        files.pop_back();
        if (files.empty() && query.find(".pl") != std::string::npos) usage();
      }
      Database db;
      load_library(db);
      for (const std::string& f : files) db.consult(read_file(f));
      Workload w;
      w.name = "cli";
      w.all_solutions = cfg.max_solutions != 1;
      // Run directly through the harness types.
      if (cfg.engine == EngineKind::Seq) {
        WorkerOptions wopts;
        wopts.resolution_limit = cfg.resolution_limit;
        SeqEngine eng(db, wopts);
        SolveResult r = eng.solve(query, cfg.max_solutions);
        out.virtual_time = r.virtual_time;
        out.solutions = r.solutions;
        out.num_solutions = r.solutions.size();
        out.stats = r.stats;
      } else if (cfg.engine == EngineKind::Andp) {
        AndpOptions o;
        o.agents = cfg.agents;
        o.lpco = cfg.lpco;
        o.shallow = cfg.shallow;
        o.pdo = cfg.pdo;
        o.use_threads = cfg.use_threads;
        o.resolution_limit = cfg.resolution_limit;
        AndpMachine m(db, o);
        SolveResult r = m.solve(query, cfg.max_solutions);
        out.virtual_time = r.virtual_time;
        out.solutions = r.solutions;
        out.num_solutions = r.solutions.size();
        out.stats = r.stats;
      } else {
        OrpOptions o;
        o.agents = cfg.agents;
        o.lao = cfg.lao;
        o.resolution_limit = cfg.resolution_limit;
        OrpMachine m(db, o);
        SolveResult r = m.solve(query, cfg.max_solutions);
        out.virtual_time = r.virtual_time;
        out.solutions = r.solutions;
        out.num_solutions = r.solutions.size();
        out.stats = r.stats;
      }
    }

    for (const std::string& s : out.solutions) {
      std::printf("%s\n", s.c_str());
    }
    std::printf("%% %zu solution(s), virtual time %llu\n", out.num_solutions,
                (unsigned long long)out.virtual_time);
    if (want_stats) std::printf("%s", out.stats.summary().c_str());
    return out.num_solutions > 0 ? 0 : 1;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
