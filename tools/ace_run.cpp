// ace_run: command-line workload runner.
//
//   ace_run [options] <file.pl...> '<query.>'
//   ace_run [options] --workload <name> [--query '<query.>']
//
// Options:
//   --engine seq|andp|orp      (default seq)
//   --agents N                 (default 1)
//   --lpco --shallow --pdo --lao --all-opts
//   --static-facts             attach load-time analysis facts and elide
//                              statically proven optimization checks
//   --table / --no-table       honor / ignore `:- table p/N.` directives
//                              (default: honor; programs without the
//                              directive are unaffected either way)
//   --analyze                  lint the program before running (diagnostics
//                              on stderr; the query still runs)
//   --threads                  (andp only: real std::thread driver)
//   --max-solutions N          (default: all for or-parallel corpus
//                               queries, 1 otherwise)
//   --stats                    print the full counter block
//   --limit N                  resolution limit (abort runaway programs)
//   --json                     print the versioned QueryResult JSON object
//                              (same wire shape as ace_serve) instead of
//                              the plain-text solution listing
//   --trace FILE               record the query with the obs layer and
//                              write Chrome trace_event JSON (Perfetto)
//   --attrib                   collect per-predicate attribution and print
//                              the per-category virtual-time table
//   --explain                  print the speedup decomposition ("where did
//                              the speedup go"): work/overhead/idle split
//                              of the agents*makespan budget, per-category
//                              attribution, schema savings and the slot
//                              critical path (with --json: the report as a
//                              JSON object instead)
//   --flame FILE               write collapsed-stack attribution samples
//                              (agent;pred;category weight) for
//                              flamegraph.pl / speedscope / inferno
//
// Prints each solution, then the virtual time; with --stats the counters
// the paper's optimizations act on. All three engines run through the
// unified ace::Engine facade (PR 2).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.hpp"
#include "builtins/lib.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "sim/trace.hpp"
#include "stats/speedup.hpp"
#include "workloads/harness.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ace::AceError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: ace_run [--engine seq|andp|orp] [--agents N]\n"
               "               [--lpco] [--shallow] [--pdo] [--lao]"
               " [--all-opts]\n"
               "               [--static-facts] [--analyze]"
               " [--table] [--no-table]\n"
               "               [--threads] [--max-solutions N] [--stats]"
               " [--limit N]\n"
               "               [--json] [--trace FILE]\n"
               "               [--attrib] [--explain] [--flame FILE]\n"
               "               (<file.pl>... '<query.>' | --workload <name>"
               " [--query '<q.>'])\n"
               "       ace_run --list-workloads\n"
               "       ace_run --workload <name> --dump-program\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  RunConfig cfg;
  cfg.engine = EngineKind::Seq;
  std::vector<std::string> files;
  std::string query;
  std::string workload_name;
  std::string trace_path;
  std::string flame_path;
  bool want_stats = false;
  bool want_json = false;
  bool want_analyze = false;
  bool want_explain = false;
  bool dump_program = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--engine") {
      std::string e = next();
      if (e == "seq") {
        cfg.engine = EngineKind::Seq;
      } else if (e == "andp") {
        cfg.engine = EngineKind::Andp;
      } else if (e == "orp") {
        cfg.engine = EngineKind::Orp;
      } else {
        usage();
      }
    } else if (arg == "--agents") {
      cfg.agents = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--lpco") {
      cfg.lpco = true;
    } else if (arg == "--shallow") {
      cfg.shallow = true;
    } else if (arg == "--pdo") {
      cfg.pdo = true;
    } else if (arg == "--lao") {
      cfg.lao = true;
    } else if (arg == "--all-opts") {
      cfg.lpco = cfg.shallow = cfg.pdo = cfg.lao = true;
    } else if (arg == "--static-facts") {
      cfg.static_facts = true;
    } else if (arg == "--table") {
      cfg.tabling = true;
    } else if (arg == "--no-table") {
      cfg.tabling = false;
    } else if (arg == "--analyze") {
      want_analyze = true;
    } else if (arg == "--threads") {
      cfg.use_threads = true;
    } else if (arg == "--max-solutions") {
      cfg.max_solutions = std::stoul(next());
    } else if (arg == "--limit") {
      cfg.resolution_limit = std::stoull(next());
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--attrib") {
      cfg.attrib = true;
    } else if (arg == "--explain") {
      want_explain = true;
      cfg.attrib = true;  // per-predicate detail rides along
    } else if (arg == "--flame") {
      flame_path = next();
      cfg.attrib = true;  // collapsed stacks want predicate frames
    } else if (arg.rfind("--flame=", 0) == 0) {
      flame_path = arg.substr(std::strlen("--flame="));
      cfg.attrib = true;
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (arg == "--query") {
      query = next();
    } else if (arg == "--list-workloads") {
      // One name per line, for shell loops (CI dogfood gates).
      for (const Workload& w : workloads()) {
        std::printf("%s\n", w.name.c_str());
      }
      return 0;
    } else if (arg == "--dump-program") {
      dump_program = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }

  if (dump_program) {
    // Print the corpus program source (the CI lint/annotate dogfood gates
    // feed these dumps straight into ace_lint / ace_annotate).
    if (workload_name.empty()) usage();
    try {
      std::printf("%s", workload(workload_name).source.c_str());
    } catch (const AceError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  try {
    Database db;
    load_library(db);
    std::string program_text;  // all consulted sources, for --analyze
    if (!workload_name.empty()) {
      const Workload& w = workload(workload_name);
      db.consult(w.source);
      program_text = w.source;
      if (query.empty()) query = w.query;
      if (cfg.max_solutions == SIZE_MAX && !w.all_solutions) {
        cfg.max_solutions = 1;
      }
    } else {
      if (files.empty()) usage();
      // Last non-flag argument is the query if it is not a readable file.
      if (query.empty()) {
        query = files.back();
        files.pop_back();
        if (files.empty() && query.find(".pl") != std::string::npos) usage();
      }
      for (const std::string& f : files) {
        std::string src = read_file(f);
        db.consult(src);
        program_text += src;
        program_text += "\n";
      }
    }

    if (want_analyze) {
      LintOptions lopts;
      if (!query.empty()) lopts.entries.push_back(query);
      LintReport rep = lint_program(db.syms(), program_text, lopts);
      rep.sink.sort_by_location();
      std::fprintf(stderr, "%s", rep.sink.to_text().c_str());
      std::fprintf(stderr, "%% analyze: %zu warning(s), %zu error(s)\n",
                   rep.warnings(), rep.errors());
    }

    const CostModel costs =
        cfg.costs != nullptr ? *cfg.costs : CostModel::standard();
    Engine eng(db, cfg.engine_config(), costs);

    obs::Recorder recorder;
    if (!trace_path.empty()) eng.set_recorder(&recorder);
    Tracer tracer;
    if (want_explain) eng.set_tracer(&tracer);

    int rc;
    if (want_json && !want_explain && flame_path.empty()) {
      QueryBudget budget;
      budget.max_solutions = cfg.max_solutions;
      QueryResult r = eng.query(query, budget);
      std::printf("%s\n", r.to_json().c_str());
      if (want_stats) std::printf("%s", r.stats.summary().c_str());
      rc = r.outcome == QueryOutcome::Success ? 0 : 1;
    } else {
      SolveResult r = eng.solve(query, cfg.max_solutions);
      if (!want_json) {
        for (const std::string& s : r.solutions) {
          std::printf("%s\n", s.c_str());
        }
        std::printf("%% %zu solution(s), virtual time %llu\n",
                    r.solutions.size(), (unsigned long long)r.virtual_time);
        if (want_stats) std::printf("%s", r.stats.summary().c_str());
        if (cfg.attrib && !want_explain) {
          std::printf("%% attribution by category:\n%s",
                      r.attrib.table("  ").c_str());
        }
      }
      if (want_explain) {
        SpeedupReport rep = analyze_speedup(r, cfg.agents);
        analyze_critical_path(rep, tracer.snapshot());
        if (want_json) {
          std::printf("%s\n", rep.to_json().c_str());
        } else {
          std::printf("%s", rep.render().c_str());
        }
      }
      if (!flame_path.empty()) {
        std::ofstream out(flame_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", flame_path.c_str());
          return 2;
        }
        std::string stacks =
            collapsed_stacks(r.per_agent_attrib, r.per_agent_preds);
        out << stacks;
        std::fprintf(stderr,
                     "flame: %zu bytes of collapsed stacks -> %s "
                     "(feed to flamegraph.pl or speedscope)\n",
                     stacks.size(), flame_path.c_str());
      }
      rc = r.solutions.empty() ? 1 : 0;
    }

    if (!trace_path.empty()) {
      std::string json = obs::chrome_trace_json(recorder);
      std::string err;
      if (!obs::validate_chrome_trace(json, &err)) {
        std::fprintf(stderr, "error: trace export failed validation: %s\n",
                     err.c_str());
        return 2;
      }
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 2;
      }
      out << json;
      std::fprintf(stderr,
                   "trace: %llu events on %zu tracks -> %s "
                   "(load in ui.perfetto.dev)\n",
                   (unsigned long long)recorder.total_events(),
                   recorder.num_tracks(), trace_path.c_str());
    }
    return rc;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
