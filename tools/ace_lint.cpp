// ace_lint: static-analysis linter for &-annotated programs — an
// and-parallel "race detector" plus general hygiene checks.
//
//   ace_lint [options] file.pl...
//
//   --entry 'goal.'   entry query driving the sharing/groundness analysis
//                     (repeatable; default: root predicates, ground args)
//   --json            machine-readable diagnostics (one JSON object/file)
//   --Werror          exit non-zero on warnings (for CI); also promotes
//                     the reported severity
//   --pedantic        include APL006 overlapping-clause notes and the
//                     APL009 missed-parallelism advisor
//   --facts           print per-predicate static facts (det/no-choice/
//                     lao-chain/ground-on-success)
//   --fix             apply machine-applicable fixits in place (e.g. the
//                     APL007 ':- table p/N.' insertion), then re-lint
//
// Exit status: 0 clean, 1 errors (or warnings with --Werror), 2 usage or
// file/parse errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "support/strutil.hpp"

using namespace ace;

namespace {

// Applies all machine-applicable fixits to `source` (insertions are
// processed bottom-up so earlier line numbers stay valid). Returns the
// number of fixits applied.
std::size_t apply_fixits(const LintReport& rep, std::string& source) {
  std::vector<const Fixit*> fixes;
  for (const Diagnostic& d : rep.sink.all()) {
    if (d.fixit.line > 0) fixes.push_back(&d.fixit);
  }
  if (fixes.empty()) return 0;
  std::stable_sort(fixes.begin(), fixes.end(),
                   [](const Fixit* a, const Fixit* b) {
                     return a->line > b->line;
                   });
  std::vector<std::string> lines;
  std::string cur;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  const bool trailing = !cur.empty();
  if (trailing) lines.push_back(cur);
  for (const Fixit* f : fixes) {
    const std::size_t at =
        std::min(static_cast<std::size_t>(f->line - 1), lines.size());
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), f->text);
  }
  source.clear();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    source += lines[i];
    if (i + 1 < lines.size() || !trailing) source += '\n';
  }
  return fixes.size();
}

int lint_file(const char* path, const LintOptions& opts, bool json,
              bool werror, bool facts, bool fix) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string source = ss.str();

  SymbolTable syms;
  LintReport rep = lint_program(syms, source, opts);

  if (fix) {
    const std::size_t applied = apply_fixits(rep, source);
    if (applied > 0) {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", path);
        return 2;
      }
      out << source;
      out.close();
      std::fprintf(stderr, "%% %s: applied %zu fixit(s)\n", path, applied);
      // Re-lint the fixed source so the report reflects the file on disk.
      SymbolTable syms2;
      rep = lint_program(syms2, source, opts);
    }
  }

  if (json) {
    std::printf(
        "{\"file\":\"%s\",\"clauses\":%zu,\"summaries\":%zu,"
        "\"warnings\":%zu,\"errors\":%zu,\"diagnostics\":%s}\n",
        json_escape(path).c_str(), rep.num_clauses, rep.num_summaries,
        rep.warnings(), rep.errors(), rep.sink.to_json().c_str());
  } else {
    for (const Diagnostic& d : rep.sink.all()) {
      Severity sev = d.severity;
      if (werror && sev == Severity::Warning) sev = Severity::Error;
      std::printf("%s:%d:%d: %s: %s [%s%s%s]\n", path, d.span.line,
                  d.span.col, severity_name(sev), d.message.c_str(),
                  d.code.c_str(), d.predicate.empty() ? "" : " ",
                  d.predicate.c_str());
    }
    std::fprintf(stderr,
                 "%% %s: %zu clause(s), %zu summarie(s), %zu warning(s), "
                 "%zu error(s)\n",
                 path, rep.num_clauses, rep.num_summaries, rep.warnings(),
                 rep.errors());
  }

  if (facts) {
    AbsProgram prog =
        AbsProgram::from_source(syms, ss.str(), /*include_library=*/false);
    AbstractInterpreter interp(
        AbsProgram::from_source(syms, ss.str(), /*include_library=*/true),
        syms);
    for (const auto& [pk, pa] : rep.det.preds) {
      const auto sym = static_cast<std::uint32_t>(pk >> 12);
      const auto arity = static_cast<unsigned>(pk & 0xFFF);
      if (!prog.defines(sym, arity)) continue;  // program preds only
      const bool gos = interp.ground_on_success_top(sym, arity);
      std::printf("%% fact %s/%u: det=%d det_indexed=%d no_choice=%d "
                  "lao_chain=%d ground_on_success=%d\n",
                  syms.name(sym).c_str(), arity, pa.det ? 1 : 0,
                  pa.det_indexed ? 1 : 0, pa.no_choice ? 1 : 0,
                  pa.lao_chain ? 1 : 0, gos ? 1 : 0);
    }
  }

  if (rep.errors() > 0) return 1;
  if (werror && rep.warnings() > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions opts;
  bool json = false;
  bool werror = false;
  bool facts = false;
  bool fix = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--entry") == 0 && i + 1 < argc) {
      opts.entries.push_back(argv[++i]);
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--Werror") == 0) {
      werror = true;
    } else if (std::strcmp(a, "--pedantic") == 0) {
      opts.pedantic = true;
    } else if (std::strcmp(a, "--facts") == 0) {
      facts = true;
    } else if (std::strcmp(a, "--fix") == 0) {
      fix = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a);
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: ace_lint [--entry 'goal.'] [--json] [--Werror] "
                 "[--pedantic] [--facts] [--fix] <file.pl>...\n");
    return 2;
  }
  int rc = 0;
  for (const char* f : files) {
    try {
      rc = std::max(rc, lint_file(f, opts, json, werror, facts, fix));
    } catch (const AceError& e) {
      std::fprintf(stderr, "%s: error: %s\n", f, e.what());
      rc = 2;
    }
  }
  return rc;
}
