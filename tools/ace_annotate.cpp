// ace_annotate: the stand-in parallelizing compiler (see
// src/analysis/annotate.hpp). Reads Prolog source files, prints the
// '&'-annotated program on stdout and a per-clause analysis summary on
// stderr.
//
//   ace_annotate file.pl... > annotated.pl
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/annotate.hpp"

int main(int argc, char** argv) {
  using namespace ace;
  if (argc < 2) {
    std::fprintf(stderr, "usage: ace_annotate <file.pl>...\n");
    return 2;
  }
  try {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) throw AceError(std::string("cannot open ") + argv[i]);
      std::ostringstream ss;
      ss << in.rdbuf();

      SymbolTable syms;
      std::string annotated = annotate_program(syms, ss.str());
      std::printf("%% %s (annotated by ace_annotate)\n%s", argv[i],
                  annotated.c_str());

      SymbolTable syms2;
      std::size_t fused = 0;
      std::size_t clauses = 0;
      for (const ClauseAnalysis& ca : analyze_program(syms2, ss.str())) {
        ++clauses;
        for (const auto& g : ca.groups) {
          if (g.size() > 1) ++fused;
        }
      }
      std::fprintf(stderr, "%% %s: %zu clause(s), %zu parallel group(s)\n",
                   argv[i], clauses, fused);
    }
    return 0;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
