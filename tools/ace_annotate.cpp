// ace_annotate: the parallelizing compiler front end (see
// src/analysis/annotate.hpp). Reads Prolog source files, prints the
// '&'-annotated program on stdout and a per-clause analysis summary on
// stderr.
//
//   ace_annotate [options] file.pl... > annotated.pl
//
//   --cge            emit Conditional Graph Expressions where independence
//                    is statically undecidable (default: keep sequential)
//   --no-absint      use the legacy syntactic analysis instead of the
//                    abstract interpreter
//   --absint         force the abstract interpreter (the default)
//   --entry QUERY    analyze from QUERY (repeatable; default: root
//                    predicates under all-ground arguments)
//   --report         print a per-clause decision report on stderr
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/annotate.hpp"
#include "support/strutil.hpp"

namespace {

void annotate_file(const char* path, const ace::AnnotateOptions& opts,
                   bool report) {
  using namespace ace;
  std::ifstream in(path);
  if (!in) throw AceError(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << in.rdbuf();

  SymbolTable syms;
  std::string annotated = annotate_program(syms, ss.str(), opts);
  std::printf("%% %s (annotated by ace_annotate)\n%s", path,
              annotated.c_str());

  SymbolTable syms2;
  std::size_t fused = 0;
  std::size_t conditional = 0;
  std::size_t clauses = 0;
  for (const ClauseAnalysis& ca : analyze_program(syms2, ss.str(), opts)) {
    ++clauses;
    for (const ParGroup& g : ca.par_groups) {
      if (g.goals.size() <= 1) continue;
      ++fused;
      if (!g.checks.empty()) ++conditional;
      if (report) {
        std::string members;
        for (std::size_t idx : g.goals) {
          if (!members.empty()) members += " & ";
          members += strf("%s/%u", ca.goals[idx].name.c_str(),
                          ca.goals[idx].arity);
        }
        if (g.checks.empty()) {
          std::fprintf(stderr, "%%   %s: parallel [%s]\n", ca.head.c_str(),
                       members.c_str());
        } else {
          std::string checks;
          for (const std::string& c : g.checks) {
            if (!checks.empty()) checks += ", ";
            checks += c;
          }
          std::fprintf(stderr, "%%   %s: conditional [%s] if %s\n",
                       ca.head.c_str(), members.c_str(), checks.c_str());
        }
      }
    }
    if (report) {
      for (std::size_t i = 0; i < ca.goals.size(); ++i) {
        if (ca.goals[i].effects != 0) {
          std::fprintf(stderr, "%%   %s: barrier %s/%u (effects 0x%x)\n",
                       ca.head.c_str(), ca.goals[i].name.c_str(),
                       ca.goals[i].arity, ca.goals[i].effects);
        }
      }
    }
  }
  std::fprintf(stderr,
               "%% %s: %zu clause(s), %zu parallel group(s), "
               "%zu conditional\n",
               path, clauses, fused, conditional);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  AnnotateOptions opts;
  bool report = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--cge") == 0) {
      opts.cge = true;
    } else if (std::strcmp(a, "--absint") == 0) {
      opts.use_absint = true;
    } else if (std::strcmp(a, "--no-absint") == 0) {
      opts.use_absint = false;
    } else if (std::strcmp(a, "--report") == 0) {
      report = true;
    } else if (std::strcmp(a, "--entry") == 0 && i + 1 < argc) {
      opts.entries.push_back(argv[++i]);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a);
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: ace_annotate [--cge] [--absint|--no-absint] "
                 "[--entry QUERY] [--report] <file.pl>...\n");
    return 2;
  }
  try {
    for (const char* f : files) annotate_file(f, opts, report);
    return 0;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
