// ace_serve: concurrent query front-end over a shared program.
//
//   ace_serve [options] <file.pl>...        queries on stdin, one per line
//   ace_serve [options] --workload <name>
//
// Each input line is a '.'-terminated query, optionally prefixed by a
// bracketed option group that picks the engine and budgets for that query:
//
//   [engine=andp agents=4 lpco shallow pdo threads] fib(20, F).
//   [engine=orp agents=8 lao max=50] queens(8, Q).
//   [deadline=100 limit=500000] loop.
//
// Recognized per-line options: engine=seq|andp|orp, agents=N, lpco,
// shallow, pdo, lao, all-opts, sfacts, notab (ignore table directives),
// threads, max=N (solution cap), deadline=MILLIS, limit=N (resolution
// budget), tenant=NAME (shard routing key), nocache (bypass the result
// cache for this query).
//
// Service options:
//   --shards N            independent shards, each with its own admission
//                         queue, dispatch threads and engine pool; requests
//                         route by tenant= (default 1)
//   --service-threads N   dispatch threads / concurrent engines per shard
//                         (default 4)
//   --queue N             admission queue capacity per shard (default 128)
//   --pool N              warm-session pool capacity per shard (default 16)
//   --result-cache N      canonicalized query->result cache, max N entries
//                         (default 0 = off); pure repeated queries are
//                         answered without running an engine
//   --deadline MILLIS     default per-query deadline (default none)
//   --limit N             default resolution limit (default none)
//   --window N            max in-flight submissions (default = queue size;
//                         closed-loop submission avoids self-inflicted
//                         rejects when feeding from a file)
//   --quiet               suppress per-solution output
//   --metrics             print the serving-metrics JSON on exit
//   --analyze             lint the loaded program (diagnostics on stderr;
//                         warning/error counts appear in --metrics JSON)
//   --static-facts        default every query to static-fact check elision
//   --no-table            default every query to ignore `:- table p/N.`
//                         directives (kill switch for the shared memo-table
//                         cache; --table restores the default)
//   --v1                  PR-1 text output ("=== id=... outcome=...")
//   --trace FILE          record the full request path (service, dispatch,
//                         session and agent tracks) and write a Chrome
//                         trace_event JSON file on exit; open it in
//                         Perfetto (ui.perfetto.dev) or about://tracing
//   --slowlog-ms N        keep the slowest queries at/above N ms and print
//                         the slow-query log to stderr on exit
//   --attrib              default every query to cost attribution (per-
//                         category virtual-time breakdowns feed the serving
//                         metrics and the Prometheus endpoint)
//   --metrics-port N      serve Prometheus text metrics on 127.0.0.1:N
//                         (N=0 binds an ephemeral port; the bound port is
//                         printed to stderr); also serves the /statusz,
//                         /tracez and /flamez debug pages
//   --watchdog-ms N       stuck-query watchdog: dump a flight-recorder
//                         snapshot to the slow-query log for any query
//                         older than N ms (once per query)
//
// Output: one versioned QueryResult JSON object per line (v2), in
// submission order:
//   {"v":2,"id":3,"outcome":"success","query":"p(X).","sols":2,...}
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "builtins/lib.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "serve/debug_pages.hpp"
#include "serve/http_metrics.hpp"
#include "serve/service.hpp"
#include "stats/prometheus.hpp"
#include "workloads/harness.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ace::AceError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: ace_serve [--shards N] [--service-threads N]"
               " [--queue N] [--pool N]\n"
               "                 [--result-cache N]\n"
               "                 [--deadline MILLIS] [--limit N] [--window N]\n"
               "                 [--quiet] [--metrics] [--v1]"
               " [--analyze] [--static-facts] [--no-table]\n"
               "                 [--trace FILE] [--slowlog-ms N] [--attrib]\n"
               "                 [--metrics-port N] [--watchdog-ms N]\n"
               "                 (<file.pl>... | --workload <name>)\n"
               "queries on stdin, one per line:\n"
               "  [engine=andp agents=4 lpco deadline=100 max=3"
               " tenant=acme] goal(X).\n");
  std::exit(2);
}

// Everything a bracketed option group can set for one query; main() turns
// this into a QueryRequest through QueryRequestBuilder.
struct LineOptions {
  ace::EngineConfig engine;
  std::string tenant;
  bool nocache = false;
  std::size_t max_solutions = SIZE_MAX;
  std::chrono::nanoseconds deadline{0};
  std::uint64_t resolution_limit = 0;
};

// Parses a leading "[opt opt ...] " group off `line` into `req`.
// Returns false on a malformed group.
bool parse_line_options(std::string& line, LineOptions& req) {
  std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos || line[start] != '[') return true;
  std::size_t end = line.find(']', start);
  if (end == std::string::npos) return false;
  std::istringstream opts(line.substr(start + 1, end - start - 1));
  line = line.substr(end + 1);
  std::string tok;
  while (opts >> tok) {
    std::string key = tok;
    std::string val;
    std::size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      key = tok.substr(0, eq);
      val = tok.substr(eq + 1);
    }
    using ace::EngineMode;
    if (key == "engine") {
      if (val == "seq") {
        req.engine.mode = EngineMode::Seq;
      } else if (val == "andp") {
        req.engine.mode = EngineMode::Andp;
      } else if (val == "orp") {
        req.engine.mode = EngineMode::Orp;
      } else {
        return false;
      }
    } else if (key == "agents") {
      req.engine.agents = static_cast<unsigned>(std::stoul(val));
    } else if (key == "lpco") {
      req.engine.lpco = true;
    } else if (key == "shallow") {
      req.engine.shallow = true;
    } else if (key == "pdo") {
      req.engine.pdo = true;
    } else if (key == "lao") {
      req.engine.lao = true;
    } else if (key == "all-opts") {
      req.engine.lpco = req.engine.shallow = true;
      req.engine.pdo = req.engine.lao = true;
    } else if (key == "sfacts") {
      req.engine.static_facts = true;
    } else if (key == "notab") {
      req.engine.tabling = false;
    } else if (key == "attrib") {
      req.engine.attrib = true;
    } else if (key == "threads") {
      req.engine.use_threads = true;
    } else if (key == "max") {
      req.max_solutions = std::stoul(val);
    } else if (key == "deadline") {
      req.deadline = std::chrono::milliseconds(std::stoull(val));
    } else if (key == "limit") {
      req.resolution_limit = std::stoull(val);
    } else if (key == "tenant") {
      req.tenant = val;
    } else if (key == "nocache") {
      req.nocache = true;
    } else {
      return false;
    }
  }
  return true;
}

struct InFlight {
  std::string text;
  ace::QueryService::Ticket ticket;
};

// PR-1 text rendering, kept for one PR behind --v1.
void print_response_v1(const std::string& text, const ace::QueryResult& resp,
                       bool quiet) {
  std::printf("=== id=%llu outcome=%s engine_reused=%d queue_us=%lld "
              "latency_us=%lld sols=%zu",
              (unsigned long long)resp.id,
              ace::query_outcome_name(resp.outcome),
              resp.engine_reused ? 1 : 0, (long long)resp.queue_wait.count(),
              (long long)resp.latency.count(), resp.solutions.size());
  if (!resp.error.empty()) std::printf(" error=\"%s\"", resp.error.c_str());
  std::printf("  %% %s\n", text.c_str());
  if (!quiet) {
    for (const std::string& s : resp.solutions) std::printf("%s\n", s.c_str());
    if (!resp.output.empty()) std::printf("%s", resp.output.c_str());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ace;
  ServiceOptions sopts;
  std::vector<std::string> files;
  std::string workload_name;
  std::string trace_path;
  std::size_t window = 0;
  bool quiet = false;
  bool want_metrics = false;
  bool v1 = false;
  bool want_analyze = false;
  bool default_sfacts = false;
  bool default_attrib = false;
  bool default_notab = false;
  int metrics_port = -1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--shards") {
      sopts.shards = static_cast<unsigned>(std::stoul(next()));
      if (sopts.shards == 0) usage();
    } else if (arg == "--result-cache") {
      sopts.result_cache_capacity = std::stoul(next());
    } else if (arg == "--service-threads") {
      sopts.dispatch_threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--queue") {
      sopts.queue_capacity = std::stoul(next());
    } else if (arg == "--pool") {
      sopts.pool_capacity = std::stoul(next());
    } else if (arg == "--deadline") {
      sopts.default_deadline = std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--limit") {
      sopts.default_resolution_limit = std::stoull(next());
    } else if (arg == "--window") {
      window = std::stoul(next());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--v1") {
      v1 = true;
    } else if (arg == "--analyze") {
      want_analyze = true;
    } else if (arg == "--static-facts") {
      default_sfacts = true;
    } else if (arg == "--no-table") {
      default_notab = true;
    } else if (arg == "--table") {
      default_notab = false;
    } else if (arg == "--attrib") {
      default_attrib = true;
    } else if (arg == "--metrics-port") {
      metrics_port = static_cast<int>(std::stoul(next()));
      if (metrics_port > 65535) usage();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--slowlog-ms") {
      sopts.obs.slowlog.threshold =
          std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--watchdog-ms") {
      sopts.obs.watchdog_budget =
          std::chrono::milliseconds(std::stoull(next()));
    } else if (arg == "--workload") {
      workload_name = next();
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && workload_name.empty()) usage();
  if (window == 0) window = sopts.queue_capacity;

  std::unique_ptr<obs::Recorder> recorder;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::Recorder>();
    sopts.obs.recorder = recorder.get();
  }

  try {
    Database db;
    load_library(db);
    std::string program_text;
    if (!workload_name.empty()) {
      db.consult(workload(workload_name).source);
      program_text = workload(workload_name).source;
    }
    for (const std::string& f : files) {
      std::string src = read_file(f);
      db.consult(src);
      program_text += src;
      program_text += "\n";
    }

    QueryService service(db, sopts);

    // The metrics server captures `service`; it is declared after it so it
    // is destroyed (listener closed, thread joined) before the service.
    std::unique_ptr<MetricsHttpServer> metrics_server;
    if (metrics_port >= 0) {
      metrics_server = std::make_unique<MetricsHttpServer>(
          static_cast<std::uint16_t>(metrics_port),
          [&service] { return prometheus_text(service.metrics_snapshot()); });
      metrics_server->set_handler(
          "/statusz", [&service] { return render_statusz(service); });
      metrics_server->set_handler(
          "/tracez", [&service] { return render_tracez(service); });
      metrics_server->set_handler(
          "/flamez", [&service] { return render_flamez(service); });
      std::fprintf(stderr,
                   "metrics: serving http://127.0.0.1:%u/metrics "
                   "(+/statusz /tracez /flamez)\n",
                   unsigned{metrics_server->port()});
    }

    if (want_analyze) {
      LintReport rep = lint_program(db.syms(), program_text);
      rep.sink.sort_by_location();
      std::fprintf(stderr, "%s", rep.sink.to_text().c_str());
      std::fprintf(stderr, "%% analyze: %zu warning(s), %zu error(s)\n",
                   rep.warnings(), rep.errors());
      service.set_lint_counts(rep.warnings(), rep.errors());
    }

    // Closed-loop feed: keep at most `window` queries in flight so piping a
    // large file does not bounce off the admission queue that exists to
    // protect against *other* clients.
    std::deque<InFlight> inflight;
    std::size_t errors = 0;
    auto drain_one = [&]() {
      InFlight f = std::move(inflight.front());
      inflight.pop_front();
      QueryResult resp = f.ticket.result.get();
      if (resp.outcome == QueryOutcome::Error ||
          resp.outcome == QueryOutcome::Overload) {
        ++errors;
      }
      if (v1) {
        print_response_v1(f.text, resp, quiet);
      } else {
        std::printf("%s\n",
                    resp.to_json(/*include_stats=*/true,
                                 /*include_solutions=*/!quiet)
                        .c_str());
        std::fflush(stdout);
      }
    };

    std::string line;
    while (std::getline(std::cin, line)) {
      LineOptions lo;
      if (!parse_line_options(line, lo)) {
        std::fprintf(stderr, "error: malformed option group: %s\n",
                     line.c_str());
        ++errors;
        continue;
      }
      std::size_t pos = line.find_first_not_of(" \t");
      if (pos == std::string::npos) continue;    // blank
      if (line[pos] == '%') continue;            // comment
      if (default_sfacts) lo.engine.static_facts = true;
      if (default_attrib) lo.engine.attrib = true;
      if (default_notab) lo.engine.tabling = false;
      if (inflight.size() >= window) drain_one();
      InFlight f;
      f.text = line.substr(pos);
      f.ticket = service.submit(
          QueryRequestBuilder(f.text)
              .engine(lo.engine)
              .tenant(std::move(lo.tenant))
              .cache_mode(lo.nocache ? CacheMode::Bypass : CacheMode::Auto)
              .deadline(lo.deadline)
              .max_solutions(lo.max_solutions)
              .resolution_limit(lo.resolution_limit)
              .build());
      inflight.push_back(std::move(f));
    }
    while (!inflight.empty()) drain_one();
    service.shutdown();

    if (want_metrics) {
      std::printf("%s\n", service.metrics_snapshot().to_json().c_str());
    }
    if (sopts.obs.slowlog.threshold.count() > 0) {
      std::fprintf(stderr, "%s", service.slowlog().render().c_str());
    }
    if (recorder != nullptr) {
      std::string json = obs::chrome_trace_json(*recorder);
      std::string err;
      if (!obs::validate_chrome_trace(json, &err)) {
        std::fprintf(stderr, "error: trace export failed validation: %s\n",
                     err.c_str());
        return 2;
      }
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 2;
      }
      out << json;
      std::fprintf(stderr,
                   "trace: %llu events on %zu tracks -> %s "
                   "(load in ui.perfetto.dev)\n",
                   (unsigned long long)recorder->total_events(),
                   recorder->num_tracks(), trace_path.c_str());
    }
    return errors == 0 ? 0 : 1;
  } catch (const AceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
