// Real-thread driver: runs each agent's step loop on its own std::thread.
//
// The engines' shared structures (chunked arenas, parcall mutexes, atomic
// pending counters) are thread-safe by construction; this driver exists to
// demonstrate the implementation is genuinely parallel-capable. Timing
// measurements come from the deterministic virtual driver (DESIGN.md §1).
#pragma once

#include <string>
#include <vector>

#include "engine/worker.hpp"

namespace ace {

class ThreadDriver {
 public:
  // Runs all workers until the top-level worker exhausts the query or
  // `max_solutions` solutions are collected into `solutions`. If `cancel`
  // is non-null it is polled by the coordinator loop (helpers observe it
  // inside Worker::step), giving the sim and thread runtimes one shared
  // stop protocol: an external cancel or deadline expiry throws
  // QueryStopped out of run() after all helper threads are joined, with
  // any solutions found so far already in `solutions`.
  void run(const std::vector<Worker*>& workers, std::size_t max_solutions,
           std::vector<std::string>& solutions,
           CancelToken* cancel = nullptr);
};

}  // namespace ace
