// Real-thread driver: runs each agent's step loop on its own std::thread.
//
// The engines' shared structures (chunked arenas, parcall mutexes, atomic
// pending counters) are thread-safe by construction; this driver exists to
// demonstrate the implementation is genuinely parallel-capable. Timing
// measurements come from the deterministic virtual driver (DESIGN.md §1).
#pragma once

#include <string>
#include <vector>

#include "engine/worker.hpp"

namespace ace {

class ThreadDriver {
 public:
  // Runs all workers until the top-level worker exhausts the query or
  // `max_solutions` solutions are collected into `solutions`.
  void run(const std::vector<Worker*>& workers, std::size_t max_solutions,
           std::vector<std::string>& solutions);
};

}  // namespace ace
