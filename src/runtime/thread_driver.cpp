#include "runtime/thread_driver.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace ace {

void ThreadDriver::run(const std::vector<Worker*>& workers,
                       std::size_t max_solutions,
                       std::vector<std::string>& solutions,
                       CancelToken* cancel) {
  std::atomic<bool> done{false};
  std::exception_ptr helper_error;
  std::mutex error_mu;

  // Helper agents 1..n-1.
  std::vector<std::thread> threads;
  threads.reserve(workers.size() - 1);
  for (std::size_t i = 1; i < workers.size(); ++i) {
    threads.emplace_back([&, i] {
      Worker* w = workers[i];
      try {
        while (!done.load(std::memory_order_acquire)) {
          StepOutcome out = w->step();
          if (out == StepOutcome::Idle) std::this_thread::yield();
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!helper_error) helper_error = std::current_exception();
        done.store(true, std::memory_order_release);
      }
    });
  }

  // Top-level agent runs on this thread.
  Worker* top = workers[0];
  try {
    while (!done.load(std::memory_order_acquire)) {
      // Coordinator-side stop poll (helpers poll inside step()): ensures a
      // stop lands even if the top worker would otherwise spin idle.
      if (cancel != nullptr) cancel->raise_if_stopped();
      StepOutcome out = top->step();
      if (out == StepOutcome::Solution) {
        solutions.push_back(top->solution_string());
        if (solutions.size() >= max_solutions) break;
        top->request_next_solution();
      } else if (out == StepOutcome::Exhausted) {
        break;
      }
    }
  } catch (...) {
    done.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    throw;
  }

  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  if (helper_error) std::rethrow_exception(helper_error);
}

}  // namespace ace
