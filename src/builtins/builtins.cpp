#include "builtins/builtins.hpp"

#include <algorithm>
#include <cstdlib>

#include "engine/worker.hpp"
#include "support/strutil.hpp"
#include "term/compare.hpp"
#include "term/copy.hpp"

namespace ace {
namespace {

std::uint64_t key_of(std::uint32_t sym, unsigned arity) {
  return (std::uint64_t{sym} << 12) | arity;
}

// Structure args live right after the Fun cell.
Addr struct_arg(const Store& store, Addr str_root, unsigned i) {
  Cell c = store.get(deref(store, str_root));
  ACE_DCHECK(c.tag() == Tag::Str);
  return c.ref() + i;
}

// CGE guard walks (ground/1, indep/2). Both count visited cells so the
// caller can charge the walk to CostCat::kCgeCheck — the runtime price of
// an independence question the annotator could not settle at compile time.

// Early-exit groundness test; `*cells` counts visited positions.
bool walk_ground(const Store& store, Addr a, std::uint64_t* cells) {
  std::vector<Addr> work{a};
  while (!work.empty()) {
    Addr t = deref(store, work.back());
    work.pop_back();
    ++*cells;
    Cell c = store.get(t);
    switch (c.tag()) {
      case Tag::Ref:
        return false;
      case Tag::Str: {
        Cell f = store.get(c.ref());
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          work.push_back(c.ref() + i);
        }
        break;
      }
      case Tag::Lst:
        work.push_back(c.ref());
        work.push_back(c.ref() + 1);
        break;
      default:
        break;
    }
  }
  return true;
}

// Collects the unbound variables reachable from `a` (by address).
void collect_unbound(const Store& store, Addr a, std::vector<Addr>& vars,
                     std::uint64_t* cells) {
  std::vector<Addr> work{a};
  while (!work.empty()) {
    Addr t = deref(store, work.back());
    work.pop_back();
    ++*cells;
    Cell c = store.get(t);
    switch (c.tag()) {
      case Tag::Ref:
        vars.push_back(t);
        break;
      case Tag::Str: {
        Cell f = store.get(c.ref());
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          work.push_back(c.ref() + i);
        }
        break;
      }
      case Tag::Lst:
        work.push_back(c.ref());
        work.push_back(c.ref() + 1);
        break;
      default:
        break;
    }
  }
}

}  // namespace

Builtins::Builtins(SymbolTable& syms) {
  reg(syms, "true", 0, BuiltinId::True);
  reg(syms, "fail", 0, BuiltinId::Fail);
  reg(syms, "false", 0, BuiltinId::Fail);
  reg(syms, "=", 2, BuiltinId::Unify);
  reg(syms, "\\=", 2, BuiltinId::NotUnify);
  reg(syms, "==", 2, BuiltinId::TermEq);
  reg(syms, "\\==", 2, BuiltinId::TermNeq);
  reg(syms, "@<", 2, BuiltinId::TermLt);
  reg(syms, "@>", 2, BuiltinId::TermGt);
  reg(syms, "@=<", 2, BuiltinId::TermLeq);
  reg(syms, "@>=", 2, BuiltinId::TermGeq);
  reg(syms, "var", 1, BuiltinId::Var);
  reg(syms, "nonvar", 1, BuiltinId::Nonvar);
  reg(syms, "atom", 1, BuiltinId::Atom);
  reg(syms, "integer", 1, BuiltinId::Integer);
  reg(syms, "atomic", 1, BuiltinId::Atomic);
  reg(syms, "compound", 1, BuiltinId::Compound);
  reg(syms, "ground", 1, BuiltinId::Ground);
  reg(syms, "is", 2, BuiltinId::Is);
  reg(syms, "=:=", 2, BuiltinId::ArithEq);
  reg(syms, "=\\=", 2, BuiltinId::ArithNeq);
  reg(syms, "<", 2, BuiltinId::Lt);
  reg(syms, ">", 2, BuiltinId::Gt);
  reg(syms, "=<", 2, BuiltinId::Leq);
  reg(syms, ">=", 2, BuiltinId::Geq);
  reg(syms, "functor", 3, BuiltinId::Functor);
  reg(syms, "arg", 3, BuiltinId::Arg);
  reg(syms, "=..", 2, BuiltinId::Univ);
  reg(syms, "copy_term", 2, BuiltinId::CopyTerm);
  reg(syms, "findall", 3, BuiltinId::Findall);
  reg(syms, "snapshot_refresh", 0, BuiltinId::SnapshotRefresh);
  reg(syms, "indep", 2, BuiltinId::Indep);
  reg(syms, "assert", 1, BuiltinId::AssertZ);
  reg(syms, "assertz", 1, BuiltinId::AssertZ);
  reg(syms, "asserta", 1, BuiltinId::AssertA);
  reg(syms, "retract", 1, BuiltinId::Retract);
  reg(syms, "write", 1, BuiltinId::Write);
  reg(syms, "print", 1, BuiltinId::Write);
  reg(syms, "nl", 0, BuiltinId::Nl);
  reg(syms, "tab", 1, BuiltinId::Tab);
  reg(syms, "$ite_commit", 1, BuiltinId::IteCommit);
  reg(syms, "$tab_gen", 1, BuiltinId::TabGen);
  reg(syms, "throw", 1, BuiltinId::Throw);
  reg(syms, "catch", 3, BuiltinId::Catch);
  reg(syms, "once", 1, BuiltinId::Once);
  reg(syms, "succ", 2, BuiltinId::Succ);
  reg(syms, "msort", 2, BuiltinId::MSort);
  reg(syms, "sort", 2, BuiltinId::Sort);
  reg(syms, "atom_codes", 2, BuiltinId::AtomCodes);
  reg(syms, "number_codes", 2, BuiltinId::NumberCodes);
  reg(syms, "atom_length", 2, BuiltinId::AtomLength);
  reg(syms, "atom_concat", 3, BuiltinId::AtomConcat);
  reg(syms, "char_code", 2, BuiltinId::CharCode);
  ite_commit_sym_ = syms.intern("$ite_commit");
  tab_gen_sym_ = syms.intern("$tab_gen");

  arith_.plus = syms.intern("+");
  arith_.minus = syms.intern("-");
  arith_.times = syms.intern("*");
  arith_.idiv2 = syms.intern("//");
  arith_.fdiv = syms.intern("/");
  arith_.mod = syms.intern("mod");
  arith_.rem = syms.intern("rem");
  arith_.min = syms.intern("min");
  arith_.max = syms.intern("max");
  arith_.abs = syms.intern("abs");
  arith_.sign = syms.intern("sign");
  arith_.neg_functor = syms.intern("-");
  arith_.plus_functor = syms.intern("+");
  arith_.bitand_ = syms.intern("/\\");
  arith_.bitor_ = syms.intern("\\/");
  arith_.bitxor = syms.intern("xor");
  arith_.shl = syms.intern("<<");
  arith_.shr = syms.intern(">>");
  arith_.pow = syms.intern("**");
}

void Builtins::reg(SymbolTable& syms, const char* name, unsigned arity,
                   BuiltinId id) {
  map_.emplace(key_of(syms.intern(name), arity), id);
}

std::optional<BuiltinId> Builtins::lookup(std::uint32_t sym,
                                          unsigned arity) const {
  auto it = map_.find(key_of(sym, arity));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

namespace {

BuiltinResult bool_result(bool ok) {
  return ok ? BuiltinResult::Ok : BuiltinResult::Failed;
}

// =/2 with stat accounting.
bool do_unify(Worker& w, Addr a, Addr b) {
  std::uint64_t steps = 0;
  std::uint64_t mark = w.trail_.size();
  bool ok = unify(w.store_, w.trail_, a, b, &steps, w.opts_.occurs_check);
  w.stats_.unify_steps += steps;
  w.charge(CostCat::kUnify, steps * w.costs_.unify_step);
  if (!ok) {
    std::uint64_t undone = w.trail_.size() - mark;
    untrail(w.store_, w.trail_, mark);
    w.stats_.untrail_ops += undone;
    w.charge(CostCat::kUnify, undone * w.costs_.untrail_entry);
  } else {
    std::uint64_t added = w.trail_.size() - mark;
    w.stats_.trail_entries += added;
    w.charge(CostCat::kUnify, added * w.costs_.trail_entry);
  }
  return ok;
}

BuiltinResult do_functor(Worker& w, Addr goal) {
  Addr t = deref(w.store_, struct_arg(w.store_, goal, 1));
  Addr fa = struct_arg(w.store_, goal, 2);
  Addr aa = struct_arg(w.store_, goal, 3);
  Cell c = w.store_.get(t);
  unsigned seg = w.seg();
  if (c.tag() != Tag::Ref) {
    Addr name;
    std::int64_t arity;
    switch (c.tag()) {
      case Tag::Int:
        name = t;
        arity = 0;
        break;
      case Tag::Atm:
        name = t;
        arity = 0;
        break;
      case Tag::Lst:
        name = heap_atom(w.store_, seg, w.syms_.known().dot);
        arity = 2;
        break;
      default: {
        Cell f = w.store_.get(c.ref());
        name = heap_atom(w.store_, seg, f.fun_symbol());
        arity = f.fun_arity();
        break;
      }
    }
    Addr an = heap_int(w.store_, seg, arity);
    return bool_result(do_unify(w, fa, name) && do_unify(w, aa, an));
  }
  // Construct mode.
  Addr fd = deref(w.store_, fa);
  Addr ad = deref(w.store_, aa);
  Cell fc = w.store_.get(fd);
  Cell ac = w.store_.get(ad);
  if (ac.tag() != Tag::Int) throw AceError("functor/3: arity not integer");
  std::int64_t arity = ac.integer();
  if (arity == 0) return bool_result(do_unify(w, t, fd));
  if (fc.tag() != Tag::Atm) throw AceError("functor/3: name not atom");
  if (arity < 0 || arity > static_cast<std::int64_t>(kMaxArity)) {
    throw AceError("functor/3: arity out of range");
  }
  std::vector<Addr> args;
  args.reserve(static_cast<std::size_t>(arity));
  for (std::int64_t i = 0; i < arity; ++i) {
    args.push_back(w.store_.new_var(seg));
  }
  Addr built;
  if (fc.symbol() == w.syms_.known().dot && arity == 2) {
    built = heap_cons(w.store_, seg, args[0], args[1]);
  } else {
    built = heap_struct(w.store_, seg, fc.symbol(), args);
  }
  return bool_result(do_unify(w, t, built));
}

BuiltinResult do_arg(Worker& w, Addr goal) {
  Addr n = deref(w.store_, struct_arg(w.store_, goal, 1));
  Addr t = deref(w.store_, struct_arg(w.store_, goal, 2));
  Addr out = struct_arg(w.store_, goal, 3);
  Cell nc = w.store_.get(n);
  Cell tc = w.store_.get(t);
  if (nc.tag() != Tag::Int) throw AceError("arg/3: index not integer");
  std::int64_t i = nc.integer();
  if (tc.tag() == Tag::Lst) {
    if (i < 1 || i > 2) return BuiltinResult::Failed;
    return bool_result(do_unify(w, out, tc.ref() + (i - 1)));
  }
  if (tc.tag() != Tag::Str) throw AceError("arg/3: not a compound term");
  Cell f = w.store_.get(tc.ref());
  if (i < 1 || i > static_cast<std::int64_t>(f.fun_arity())) {
    return BuiltinResult::Failed;
  }
  return bool_result(do_unify(w, out, tc.ref() + i));
}

BuiltinResult do_univ(Worker& w, Addr goal) {
  Addr t = deref(w.store_, struct_arg(w.store_, goal, 1));
  Addr l = struct_arg(w.store_, goal, 2);
  Cell tc = w.store_.get(t);
  unsigned seg = w.seg();
  const std::uint32_t nil = w.syms_.known().nil;
  if (tc.tag() != Tag::Ref) {
    // Decompose.
    std::vector<Addr> items;
    switch (tc.tag()) {
      case Tag::Atm:
      case Tag::Int:
        items.push_back(t);
        break;
      case Tag::Lst:
        items.push_back(heap_atom(w.store_, seg, w.syms_.known().dot));
        items.push_back(tc.ref());
        items.push_back(tc.ref() + 1);
        break;
      default: {
        Cell f = w.store_.get(tc.ref());
        items.push_back(heap_atom(w.store_, seg, f.fun_symbol()));
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          items.push_back(tc.ref() + i);
        }
        break;
      }
    }
    Addr lst = heap_list(w.store_, seg, items, nil);
    return bool_result(do_unify(w, l, lst));
  }
  // Construct: walk the list.
  std::vector<Addr> items;
  Addr cur = deref(w.store_, l);
  for (;;) {
    Cell c = w.store_.get(cur);
    if (c.tag() == Tag::Atm && c.symbol() == nil) break;
    if (c.tag() != Tag::Lst) throw AceError("=../2: not a proper list");
    items.push_back(c.ref());
    cur = deref(w.store_, c.ref() + 1);
  }
  if (items.empty()) throw AceError("=../2: empty list");
  Addr head = deref(w.store_, items[0]);
  Cell hc = w.store_.get(head);
  if (items.size() == 1) return bool_result(do_unify(w, t, head));
  if (hc.tag() != Tag::Atm) throw AceError("=../2: functor not an atom");
  std::vector<Addr> args(items.begin() + 1, items.end());
  Addr built;
  if (hc.symbol() == w.syms_.known().dot && args.size() == 2) {
    built = heap_cons(w.store_, seg, args[0], args[1]);
  } else {
    built = heap_struct(w.store_, seg, hc.symbol(), args);
  }
  return bool_result(do_unify(w, t, built));
}

BuiltinResult do_retract(Worker& w, Addr goal) {
  Addr arg = deref(w.store_, struct_arg(w.store_, goal, 1));
  // Normalize to (Head :- Body) or bare Head.
  Addr head = arg;
  Addr body = 0;
  Cell c = w.store_.get(arg);
  const std::uint32_t neck = w.syms_.known().neck;
  if (c.tag() == Tag::Str) {
    Cell f = w.store_.get(c.ref());
    if (f.fun_symbol() == neck && f.fun_arity() == 2) {
      head = c.ref() + 1;
      body = c.ref() + 2;
    }
  }
  Addr dh = deref(w.store_, head);
  Cell hc = w.store_.get(dh);
  std::uint32_t sym;
  unsigned arity;
  if (hc.tag() == Tag::Atm) {
    sym = hc.symbol();
    arity = 0;
  } else if (hc.tag() == Tag::Str) {
    Cell f = w.store_.get(hc.ref());
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    throw AceError("retract/1: head not callable");
  }
  // A write transaction covers the whole scan-unify-retract sequence: the
  // clause we matched must still be clause i when we retract it, even with
  // other served queries asserting/retracting concurrently. Change hooks
  // queued by the retraction fire when the transaction closes (outside the
  // writer critical section, so a hook may re-enter the database).
  Database::WriteTxn txn(w.db_);
  Predicate* pred = txn.find(sym, arity);
  if (pred == nullptr) return BuiltinResult::Failed;
  const PredIndex& ix = txn.view(*pred);
  for (std::uint32_t i = 0; i < ix.num_clauses(); ++i) {
    const Clause& cl = ix.clause(i);
    if (cl.retracted) continue;
    std::uint64_t mark = w.trail_.size();
    Addr inst = instantiate(w.store_, w.seg(), cl.tmpl);
    w.stats_.heap_cells += cl.tmpl.instantiation_cost();
    w.charge(CostCat::kBuiltin, cl.tmpl.instantiation_cost() * w.costs_.heap_cell);
    Addr ch = struct_arg(w.store_, inst, 1);
    Addr cb = struct_arg(w.store_, inst, 2);
    bool ok = do_unify(w, head, ch) && (body == 0 || do_unify(w, body, cb));
    if (ok) {
      txn.retract(*pred, i);
      return BuiltinResult::Ok;
    }
    std::uint64_t undone = w.trail_.size() - mark;
    untrail(w.store_, w.trail_, mark);
    w.stats_.untrail_ops += undone;
  }
  return BuiltinResult::Failed;
}

// Walks a proper list into element addresses; throws on partial lists.
std::vector<Addr> list_elements(Worker& w, Addr l, const char* who) {
  std::vector<Addr> items;
  Addr cur = deref(w.store_, l);
  for (;;) {
    Cell c = w.store_.get(cur);
    if (c.tag() == Tag::Atm && c.symbol() == w.syms_.known().nil) break;
    if (c.tag() != Tag::Lst) {
      throw AceError(std::string(who) + ": not a proper list");
    }
    items.push_back(c.ref());
    cur = deref(w.store_, c.ref() + 1);
  }
  return items;
}

// Builds a code list (list of ints) for a string.
Addr codes_of(Worker& w, const std::string& s) {
  std::vector<Addr> items;
  items.reserve(s.size());
  for (char ch : s) {
    items.push_back(heap_int(w.store_, w.seg(),
                             static_cast<unsigned char>(ch)));
  }
  w.stats_.heap_cells += s.size() * 3 + 1;
  return heap_list(w.store_, w.seg(), items, w.syms_.known().nil);
}

// Reads a code list back into a string.
std::string string_of_codes(Worker& w, Addr l, const char* who) {
  std::string out;
  for (Addr item : list_elements(w, l, who)) {
    Cell c = w.store_.get(deref(w.store_, item));
    if (c.tag() != Tag::Int || c.integer() < 0 || c.integer() > 255) {
      throw AceError(std::string(who) + ": invalid character code");
    }
    out += static_cast<char>(c.integer());
  }
  return out;
}

BuiltinResult do_sort(Worker& w, Addr goal, bool dedup) {
  Addr in = struct_arg(w.store_, goal, 1);
  Addr out = struct_arg(w.store_, goal, 2);
  std::vector<Addr> items = list_elements(w, in, dedup ? "sort/2" : "msort/2");
  std::stable_sort(items.begin(), items.end(), [&](Addr a, Addr b) {
    return compare_terms(w.store_, w.syms_, a, b) < 0;
  });
  if (dedup) {
    items.erase(std::unique(items.begin(), items.end(),
                            [&](Addr a, Addr b) {
                              return compare_terms(w.store_, w.syms_, a, b) ==
                                     0;
                            }),
                items.end());
  }
  w.charge(CostCat::kBuiltin, items.size() * w.costs_.heap_cell * 3);
  Addr lst = heap_list(w.store_, w.seg(), items, w.syms_.known().nil);
  return bool_result(w.unify_charge(out, lst));
}

}  // namespace

BuiltinResult exec_builtin(Worker& w, BuiltinId id, Addr goal, Ref rest,
                           Ref cut_parent) {
  (void)cut_parent;
  Store& store = w.store_;
  auto arg = [&](unsigned i) { return struct_arg(store, goal, i); };

  switch (id) {
    case BuiltinId::True:
      return BuiltinResult::Ok;
    case BuiltinId::Fail:
      return BuiltinResult::Failed;
    case BuiltinId::Unify:
      return bool_result(do_unify(w, arg(1), arg(2)));
    case BuiltinId::NotUnify: {
      std::uint64_t mark = w.trail_.size();
      std::uint64_t steps = 0;
      bool ok = unify(store, w.trail_, arg(1), arg(2), &steps,
                      w.opts_.occurs_check);
      w.stats_.unify_steps += steps;
      w.charge(CostCat::kUnify, steps * w.costs_.unify_step);
      std::uint64_t undone = w.trail_.size() - mark;
      untrail(store, w.trail_, mark);
      w.stats_.untrail_ops += undone;
      w.charge(CostCat::kUnify, undone * w.costs_.untrail_entry);
      return bool_result(!ok);
    }
    case BuiltinId::TermEq:
      return bool_result(
          compare_terms(store, w.syms_, arg(1), arg(2)) == 0);
    case BuiltinId::TermNeq:
      return bool_result(
          compare_terms(store, w.syms_, arg(1), arg(2)) != 0);
    case BuiltinId::TermLt:
      return bool_result(compare_terms(store, w.syms_, arg(1), arg(2)) < 0);
    case BuiltinId::TermGt:
      return bool_result(compare_terms(store, w.syms_, arg(1), arg(2)) > 0);
    case BuiltinId::TermLeq:
      return bool_result(
          compare_terms(store, w.syms_, arg(1), arg(2)) <= 0);
    case BuiltinId::TermGeq:
      return bool_result(
          compare_terms(store, w.syms_, arg(1), arg(2)) >= 0);
    case BuiltinId::Var:
      return bool_result(
          store.get(deref(store, arg(1))).tag() == Tag::Ref);
    case BuiltinId::Nonvar:
      return bool_result(
          store.get(deref(store, arg(1))).tag() != Tag::Ref);
    case BuiltinId::Atom: {
      Cell c = store.get(deref(store, arg(1)));
      return bool_result(c.tag() == Tag::Atm);
    }
    case BuiltinId::Integer: {
      Cell c = store.get(deref(store, arg(1)));
      return bool_result(c.tag() == Tag::Int);
    }
    case BuiltinId::Atomic: {
      Cell c = store.get(deref(store, arg(1)));
      return bool_result(c.tag() == Tag::Atm || c.tag() == Tag::Int);
    }
    case BuiltinId::Compound: {
      Cell c = store.get(deref(store, arg(1)));
      return bool_result(c.tag() == Tag::Str || c.tag() == Tag::Lst);
    }
    case BuiltinId::Ground: {
      std::uint64_t cells = 0;
      const bool ok = walk_ground(store, arg(1), &cells);
      w.charge(CostCat::kCgeCheck, cells * w.costs_.cge_check_cell);
      return bool_result(ok);
    }
    case BuiltinId::Indep: {
      std::uint64_t cells = 0;
      std::vector<Addr> left;
      collect_unbound(store, arg(1), left, &cells);
      bool disjoint = true;
      if (!left.empty()) {
        std::sort(left.begin(), left.end());
        std::vector<Addr> right;
        collect_unbound(store, arg(2), right, &cells);
        for (Addr v : right) {
          if (std::binary_search(left.begin(), left.end(), v)) {
            disjoint = false;
            break;
          }
        }
      }
      w.charge(CostCat::kCgeCheck, cells * w.costs_.cge_check_cell);
      return bool_result(disjoint);
    }
    case BuiltinId::Is: {
      std::int64_t v = arith_eval(w, arg(2));
      Addr vi = heap_int(store, w.seg(), v);
      w.stats_.heap_cells += 1;
      return bool_result(do_unify(w, arg(1), vi));
    }
    case BuiltinId::ArithEq:
      return bool_result(arith_eval(w, arg(1)) == arith_eval(w, arg(2)));
    case BuiltinId::ArithNeq:
      return bool_result(arith_eval(w, arg(1)) != arith_eval(w, arg(2)));
    case BuiltinId::Lt:
      return bool_result(arith_eval(w, arg(1)) < arith_eval(w, arg(2)));
    case BuiltinId::Gt:
      return bool_result(arith_eval(w, arg(1)) > arith_eval(w, arg(2)));
    case BuiltinId::Leq:
      return bool_result(arith_eval(w, arg(1)) <= arith_eval(w, arg(2)));
    case BuiltinId::Geq:
      return bool_result(arith_eval(w, arg(1)) >= arith_eval(w, arg(2)));
    case BuiltinId::Functor:
      return do_functor(w, goal);
    case BuiltinId::Arg:
      return do_arg(w, goal);
    case BuiltinId::Univ:
      return do_univ(w, goal);
    case BuiltinId::CopyTerm: {
      std::unordered_map<Addr, Addr> var_map;
      std::uint64_t cells = 0;
      Addr copy = copy_term(store, w.seg(), arg(1), var_map, &cells);
      w.stats_.heap_cells += cells;
      w.charge(CostCat::kBuiltin, cells * w.costs_.heap_cell);
      return bool_result(do_unify(w, arg(2), copy));
    }
    case BuiltinId::Findall:
      w.begin_nested(arg(1), arg(2), arg(3));
      (void)rest;
      return BuiltinResult::Handled;
    case BuiltinId::AssertZ:
    case BuiltinId::AssertA: {
      Addr t = deref(store, arg(1));
      TermTemplate tmpl = term_to_template(store, t);
      w.db_.add_clause(std::move(tmpl), id == BuiltinId::AssertA);
      return BuiltinResult::Ok;
    }
    case BuiltinId::Retract:
      return do_retract(w, goal);
    case BuiltinId::SnapshotRefresh:
      // Safe here: builtin dispatch holds no PredIndex reference (clause
      // resolution borrows its view only inside call_user_pred_clauses).
      w.snap_ensure();
      return BuiltinResult::Ok;
    case BuiltinId::Write: {
      PrintOpts opts;
      opts.quoted = false;
      w.io_.append(term_to_string(store, w.syms_, arg(1), opts));
      return BuiltinResult::Ok;
    }
    case BuiltinId::Nl:
      w.io_.append("\n");
      return BuiltinResult::Ok;
    case BuiltinId::Tab: {
      std::int64_t n = arith_eval(w, arg(1));
      if (n > 0) w.io_.append(std::string(static_cast<std::size_t>(n), ' '));
      return BuiltinResult::Ok;
    }
    case BuiltinId::Throw:
      w.do_throw(arg(1));
      return BuiltinResult::Handled;
    case BuiltinId::Catch: {
      // Frame: call_goal = catcher, alt_term = recovery.
      Ref cf = w.push_choice_term(arg(3), cut_parent, AltKind::Catch);
      w.frame(cf).call_goal = arg(2);
      // The guarded goal runs cut-opaque (like call/1): its barrier is the
      // catch frame, so a cut inside cannot remove the catcher.
      w.glist_ = w.push_goal(arg(1), rest, w.bt_);
      return BuiltinResult::Handled;
    }
    case BuiltinId::Once: {
      // once(G) == (G -> true): commit to the first solution.
      Addr alt = heap_atom(store, w.seg(), w.syms_.known().fail);
      Ref ite = w.push_choice_term(alt, cut_parent, AltKind::IteElse);
      Addr commit = heap_struct(
          store, w.seg(), w.builtins_.ite_commit_sym(),
          {heap_int(store, w.seg(), static_cast<std::int64_t>(ite))});
      w.stats_.heap_cells += 5;
      Ref commit_ref = w.push_goal(commit, rest, cut_parent);
      w.glist_ = w.push_goal(arg(1), commit_ref, ite);
      return BuiltinResult::Handled;
    }
    case BuiltinId::Succ: {
      Addr x = deref(store, arg(1));
      Addr y = deref(store, arg(2));
      Cell cx = store.get(x);
      Cell cy = store.get(y);
      if (cx.tag() == Tag::Int) {
        if (cx.integer() < 0) throw AceError("succ/2: negative argument");
        return bool_result(
            w.unify_charge(y, heap_int(store, w.seg(), cx.integer() + 1)));
      }
      if (cy.tag() == Tag::Int) {
        if (cy.integer() <= 0) return BuiltinResult::Failed;
        return bool_result(
            w.unify_charge(x, heap_int(store, w.seg(), cy.integer() - 1)));
      }
      throw AceError("succ/2: arguments insufficiently instantiated");
    }
    case BuiltinId::MSort:
      return do_sort(w, goal, /*dedup=*/false);
    case BuiltinId::Sort:
      return do_sort(w, goal, /*dedup=*/true);
    case BuiltinId::AtomCodes: {
      Addr a = deref(store, arg(1));
      Cell c = store.get(a);
      if (c.tag() == Tag::Atm) {
        return bool_result(
            w.unify_charge(arg(2), codes_of(w, w.syms_.name(c.symbol()))));
      }
      if (c.tag() == Tag::Int) {
        return bool_result(w.unify_charge(
            arg(2), codes_of(w, strf("%lld", (long long)c.integer()))));
      }
      std::string s = string_of_codes(w, arg(2), "atom_codes/2");
      std::uint32_t sym = w.db_.syms().intern(s);
      return bool_result(w.unify_charge(a, heap_atom(store, w.seg(), sym)));
    }
    case BuiltinId::NumberCodes: {
      Addr a = deref(store, arg(1));
      Cell c = store.get(a);
      if (c.tag() == Tag::Int) {
        return bool_result(w.unify_charge(
            arg(2), codes_of(w, strf("%lld", (long long)c.integer()))));
      }
      std::string s = string_of_codes(w, arg(2), "number_codes/2");
      if (s.empty()) throw AceError("number_codes/2: empty code list");
      char* end = nullptr;
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (end != s.c_str() + s.size()) {
        throw AceError("number_codes/2: not a number: " + s);
      }
      return bool_result(w.unify_charge(a, heap_int(store, w.seg(), v)));
    }
    case BuiltinId::AtomLength: {
      Addr a = deref(store, arg(1));
      Cell c = store.get(a);
      if (c.tag() != Tag::Atm) throw AceError("atom_length/2: not an atom");
      return bool_result(w.unify_charge(
          arg(2),
          heap_int(store, w.seg(),
                   static_cast<std::int64_t>(w.syms_.name(c.symbol())
                                                 .size()))));
    }
    case BuiltinId::AtomConcat: {
      Cell ca = store.get(deref(store, arg(1)));
      Cell cb = store.get(deref(store, arg(2)));
      if (ca.tag() != Tag::Atm || cb.tag() != Tag::Atm) {
        throw AceError("atom_concat/3: first two arguments must be atoms");
      }
      std::string s = w.syms_.name(ca.symbol()) + w.syms_.name(cb.symbol());
      std::uint32_t sym = w.db_.syms().intern(s);
      return bool_result(
          w.unify_charge(arg(3), heap_atom(store, w.seg(), sym)));
    }
    case BuiltinId::CharCode: {
      Addr a = deref(store, arg(1));
      Cell c = store.get(a);
      if (c.tag() == Tag::Atm) {
        const std::string& n = w.syms_.name(c.symbol());
        if (n.size() != 1) throw AceError("char_code/2: not a one-char atom");
        return bool_result(w.unify_charge(
            arg(2),
            heap_int(store, w.seg(),
                     static_cast<unsigned char>(n[0]))));
      }
      Cell cc = store.get(deref(store, arg(2)));
      if (cc.tag() != Tag::Int || cc.integer() < 0 || cc.integer() > 255) {
        throw AceError("char_code/2: invalid code");
      }
      std::string n(1, static_cast<char>(cc.integer()));
      std::uint32_t sym = w.db_.syms().intern(n);
      return bool_result(w.unify_charge(a, heap_atom(store, w.seg(), sym)));
    }
    case BuiltinId::IteCommit: {
      // Kill choice points down to (and including) the referenced ITE frame.
      Addr n = deref(store, arg(1));
      Cell c = store.get(n);
      ACE_CHECK(c.tag() == Tag::Int);
      Ref ite = static_cast<Ref>(c.integer());
      w.do_cut(w.frame(ite).prev_bt);
      return BuiltinResult::Ok;
    }
    case BuiltinId::TabGen: {
      // One clause pass of a tabled generator (engine/tabling.cpp pushes
      // '$tab_gen'(Idx) as the re-runnable goal of the nested context).
      Addr n = deref(store, arg(1));
      Cell c = store.get(n);
      ACE_CHECK(c.tag() == Tag::Int);
      std::uint32_t gi = static_cast<std::uint32_t>(c.integer());
      ACE_CHECK(gi < w.tab_gens_.size());
      // Copy the descriptor: the pass below may push further generators,
      // reallocating tab_gens_.
      tab::GenFrame g = w.tab_gens_[gi];
      w.call_user_pred_clauses(g.goal, g.sym, g.arity);
      return BuiltinResult::Handled;
    }
  }
  ACE_CHECK_MSG(false, "unknown builtin id");
  return BuiltinResult::Failed;
}

}  // namespace ace
