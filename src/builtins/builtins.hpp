// Builtin predicate registry and dispatcher.
//
// Control constructs (',', '&', ';', '->', '!', call/1, '\+') are handled
// directly by the engine step dispatcher; everything else lands here.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "engine/frames.hpp"
#include "term/cell.hpp"
#include "term/symtab.hpp"

namespace ace {

class Worker;

enum class BuiltinId : std::uint8_t {
  True,
  Fail,
  Unify,        // =/2
  NotUnify,     // \=/2
  TermEq,       // ==/2
  TermNeq,      // \==/2
  TermLt,       // @</2
  TermGt,       // @>/2
  TermLeq,      // @=</2
  TermGeq,      // @>=/2
  Var,
  Nonvar,
  Atom,
  Integer,
  Atomic,
  Compound,
  Ground,
  Is,           // is/2
  ArithEq,      // =:=
  ArithNeq,     // =\=
  Lt,
  Gt,
  Leq,
  Geq,
  Functor,      // functor/3
  Arg,          // arg/3
  Univ,         // =../2
  CopyTerm,     // copy_term/2
  Findall,      // findall/3
  AssertZ,      // assert/1, assertz/1
  AssertA,      // asserta/1
  Retract,      // retract/1 (semi-deterministic: first match)
  Write,
  Nl,
  Tab,          // tab/1
  IteCommit,    // internal $ite_commit/1
  TabGen,       // internal $tab_gen/1: run one tabled-generator clause pass
  Throw,        // throw/1
  Catch,        // catch/3
  Once,         // once/1
  Succ,         // succ/2 (both modes)
  MSort,        // msort/2 (standard order, duplicates kept)
  Sort,         // sort/2 (standard order, duplicates removed)
  AtomCodes,    // atom_codes/2 (both modes)
  NumberCodes,  // number_codes/2 (both modes)
  AtomLength,   // atom_length/2
  AtomConcat,   // atom_concat/3 (first two args bound)
  CharCode,     // char_code/2 (both modes)
  // snapshot_refresh/0: re-pin the calling worker's db::Snapshot to the
  // current database epoch so subsequent reads observe every assert/
  // retract published before the call. A no-op for solutions/bindings;
  // the snapshot-refresh idiom for '&'-parallel goals that must observe a
  // sibling's database writes (see APL008 in docs/analysis.md).
  SnapshotRefresh,
  // indep/2: succeeds when the two argument terms reach no common unbound
  // variable *right now* — the runtime half of a Conditional Graph
  // Expression, `( ground(X), indep(X, Y) -> g1 & g2 ; g1, g2 )`. Like
  // ground/1 it is a test (no bindings); both are charged to
  // CostCat::kCgeCheck rather than kBuiltin.
  Indep,
};

enum class BuiltinResult : std::uint8_t {
  Ok,       // succeeded; caller advances to the continuation
  Failed,   // caller backtracks
  Handled,  // builtin took over control flow (set glist_/mode_ itself)
};

// Cached symbol ids for arithmetic evaluation.
struct ArithOps {
  std::uint32_t plus, minus, times, idiv2, fdiv, mod, rem, min, max, abs,
      sign, neg_functor /* -/1 */, plus_functor /* +/1 */, bitand_, bitor_,
      bitxor, shl, shr, pow;
};

class Builtins {
 public:
  explicit Builtins(SymbolTable& syms);

  std::optional<BuiltinId> lookup(std::uint32_t sym, unsigned arity) const;
  const ArithOps& arith() const { return arith_; }
  std::uint32_t ite_commit_sym() const { return ite_commit_sym_; }
  std::uint32_t tab_gen_sym() const { return tab_gen_sym_; }

 private:
  void reg(SymbolTable& syms, const char* name, unsigned arity, BuiltinId id);

  std::unordered_map<std::uint64_t, BuiltinId> map_;
  ArithOps arith_{};
  std::uint32_t ite_commit_sym_ = 0;
  std::uint32_t tab_gen_sym_ = 0;
};

// Executes builtin `id` for the goal term at `goal`. `rest`/`cut_parent`
// are the current continuation (needed by Handled-style builtins).
// Throws AceError for type errors (uninstantiated arithmetic, etc.).
BuiltinResult exec_builtin(Worker& w, BuiltinId id, Addr goal, Ref rest,
                           Ref cut_parent);

// Arithmetic evaluation of the term at `a`.
std::int64_t arith_eval(Worker& w, Addr a);

}  // namespace ace
