#include "builtins/lib.hpp"

#include "db/database.hpp"

namespace ace {

const char* prolog_library_source() {
  return R"PL(
% ---- list utilities ---------------------------------------------------
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], A, A).
reverse_acc([H|T], A, R) :- reverse_acc(T, [H|A], R).

length(L, N) :- length_acc(L, 0, N).
length_acc([], N, N).
length_acc([_|T], A, N) :- A1 is A + 1, length_acc(T, A1, N).

nth0(I, L, E) :- nth_walk(L, 0, I, E).
nth1(I, L, E) :- nth_walk(L, 1, I, E).
nth_walk([H|_], N, N, H).
nth_walk([_|T], N, I, E) :- N1 is N + 1, nth_walk(T, N1, I, E).

last([X], X).
last([_|T], X) :- last(T, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).

min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

% ---- generators --------------------------------------------------------
between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

% ---- higher order -------------------------------------------------------
maplist(_, []).
maplist(G, [X|Xs]) :- call(G, X), maplist(G, Xs).
maplist(_, [], []).
maplist(G, [X|Xs], [Y|Ys]) :- call(G, X, Y), maplist(G, Xs, Ys).
maplist(_, [], [], []).
maplist(G, [X|Xs], [Y|Ys], [Z|Zs]) :- call(G, X, Y, Z),
    maplist(G, Xs, Ys, Zs).

foldl(_, [], A, A).
foldl(G, [X|Xs], A0, A) :- call(G, X, A0, A1), foldl(G, Xs, A1, A).

include(_, [], []).
include(G, [X|Xs], Out) :-
    ( call(G, X) -> Out = [X|Rest] ; Out = Rest ),
    include(G, Xs, Rest).

exclude(_, [], []).
exclude(G, [X|Xs], Out) :-
    ( call(G, X) -> Out = Rest ; Out = [X|Rest] ),
    exclude(G, Xs, Rest).

% ---- misc ---------------------------------------------------------------
not(G) :- \+ G.
ignore(G) :- (G -> true ; true).
forall(C, A) :- \+ (C, \+ A).
)PL";
}

void load_library(Database& db) { db.consult(prolog_library_source()); }

}  // namespace ace
