// The Prolog-level standard library, consulted into every Database by the
// machine facades (list utilities, between/3, negation helpers). Written in
// the object language so it exercises the engine itself.
#pragma once

namespace ace {

class Database;

const char* prolog_library_source();
void load_library(Database& db);

}  // namespace ace
