#include "builtins/builtins.hpp"

#include "engine/worker.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

std::int64_t checked_div(std::int64_t a, std::int64_t b) {
  if (b == 0) throw AceError("arithmetic: division by zero");
  return a / b;
}

std::int64_t checked_mod(std::int64_t a, std::int64_t b) {
  if (b == 0) throw AceError("arithmetic: division by zero");
  std::int64_t r = a % b;
  // Prolog mod has the sign of the divisor.
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

// Overflow wraps (two's complement), matching fixed-width Prolog integer
// dialects. The intermediates go through uint64 so the wrap is defined
// behavior rather than signed-overflow UB (the sanitizer CI job traps UB).
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

std::int64_t ipow(std::int64_t base, std::int64_t exp) {
  if (exp < 0) throw AceError("arithmetic: negative exponent");
  std::uint64_t b = static_cast<std::uint64_t>(base);
  std::uint64_t r = 1;
  while (exp > 0) {
    if (exp & 1) r *= b;
    b *= b;
    exp >>= 1;
  }
  return static_cast<std::int64_t>(r);
}

}  // namespace

std::int64_t arith_eval(Worker& w, Addr a) {
  const ArithOps& ops = w.builtins_.arith();
  a = deref(w.store_, a);
  Cell c = w.store_.get(a);
  switch (c.tag()) {
    case Tag::Int:
      return c.integer();
    case Tag::Ref:
      throw AceError("arithmetic: unbound variable");
    case Tag::Atm:
      throw AceError(strf("arithmetic: unknown constant '%s'",
                          w.syms_.name(c.symbol()).c_str()));
    case Tag::Str:
      break;
    default:
      throw AceError("arithmetic: type error");
  }

  Addr fun = c.ref();
  Cell f = w.store_.get(fun);
  std::uint32_t sym = f.fun_symbol();
  unsigned arity = f.fun_arity();

  if (arity == 1) {
    std::int64_t x = arith_eval(w, fun + 1);
    if (sym == ops.neg_functor) return -x;
    if (sym == ops.plus_functor) return x;
    if (sym == ops.abs) return x < 0 ? -x : x;
    if (sym == ops.sign) return x > 0 ? 1 : (x < 0 ? -1 : 0);
    throw AceError(strf("arithmetic: unknown function %s/1",
                        w.syms_.name(sym).c_str()));
  }
  if (arity == 2) {
    std::int64_t x = arith_eval(w, fun + 1);
    std::int64_t y = arith_eval(w, fun + 2);
    if (sym == ops.plus) return wrap_add(x, y);
    if (sym == ops.minus) return wrap_sub(x, y);
    if (sym == ops.times) return wrap_mul(x, y);
    // Both '/' and '//' are integer division (this dialect has no floats).
    if (sym == ops.fdiv || sym == ops.idiv2) return checked_div(x, y);
    if (sym == ops.mod) return checked_mod(x, y);
    if (sym == ops.rem) {
      if (y == 0) throw AceError("arithmetic: division by zero");
      return x % y;
    }
    if (sym == ops.min) return x < y ? x : y;
    if (sym == ops.max) return x > y ? x : y;
    if (sym == ops.bitand_) return x & y;
    if (sym == ops.bitor_) return x | y;
    if (sym == ops.bitxor) return x ^ y;
    if (sym == ops.shl) return x << y;
    if (sym == ops.shr) return x >> y;
    if (sym == ops.pow) return ipow(x, y);
    throw AceError(strf("arithmetic: unknown function %s/2",
                        w.syms_.name(sym).c_str()));
  }
  throw AceError("arithmetic: unknown function");
}

}  // namespace ace
