// Lock-free bounded event ring.
//
// One ring backs one Track of the Recorder. The common case is a single
// writer (the worker/dispatch thread that owns the track), but the design
// is safe for multiple concurrent writers (the service-wide track is
// written from arbitrary client threads): writers claim a slot with one
// fetch_add and publish it with a release store of the slot's sequence
// tag. The ring never blocks and never allocates after construction; when
// full it overwrites the oldest records (the newest window is what a
// flight recorder wants) and accounts the loss in dropped().
//
// Record payloads are stored as relaxed atomic words, so a snapshot taken
// while writers are still running is race-free (torn slots are detected by
// re-checking the sequence tag and skipped). Snapshots taken after the
// writers quiesce are exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/events.hpp"

namespace ace::obs {

class EventRing {
 public:
  // `capacity` is rounded up to a power of two (min 8).
  explicit EventRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  void push(const EventRecord& r) {
    std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    // Invalidate while the payload is in flight so a concurrent snapshot
    // cannot accept a half-written record.
    s.tag.store(0, std::memory_order_release);
    s.w[0].store(r.ts_ns, std::memory_order_relaxed);
    s.w[1].store(r.a, std::memory_order_relaxed);
    s.w[2].store(r.b, std::memory_order_relaxed);
    s.w[3].store(r.qid, std::memory_order_relaxed);
    s.w[4].store(static_cast<std::uint64_t>(r.kind),
                 std::memory_order_relaxed);
    s.tag.store(seq + 1, std::memory_order_release);
  }

  // Total records ever pushed.
  std::uint64_t total() const {
    return head_.load(std::memory_order_acquire);
  }
  // Records currently retrievable (≤ capacity).
  std::uint64_t size() const {
    std::uint64_t n = total();
    return n > capacity() ? capacity() : n;
  }
  // Records lost to overwrite.
  std::uint64_t dropped() const {
    std::uint64_t n = total();
    return n > capacity() ? n - capacity() : 0;
  }

  // Copies the retrievable window, oldest first. Slots being concurrently
  // rewritten are skipped (their replacement will be seen by a later
  // snapshot); with quiescent writers the snapshot is complete and exact.
  std::vector<EventRecord> snapshot() const {
    std::vector<EventRecord> out;
    std::uint64_t end = total();
    std::uint64_t begin = end > capacity() ? end - capacity() : 0;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t seq = begin; seq < end; ++seq) {
      const Slot& s = slots_[seq & mask_];
      if (s.tag.load(std::memory_order_acquire) != seq + 1) continue;
      EventRecord r;
      r.ts_ns = s.w[0].load(std::memory_order_relaxed);
      r.a = s.w[1].load(std::memory_order_relaxed);
      r.b = s.w[2].load(std::memory_order_relaxed);
      r.qid = s.w[3].load(std::memory_order_relaxed);
      r.kind = static_cast<EventKind>(
          s.w[4].load(std::memory_order_relaxed));
      // Re-check: a writer may have started overwriting mid-copy.
      if (s.tag.load(std::memory_order_acquire) != seq + 1) continue;
      out.push_back(r);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};  // seq+1 when w[] holds record seq
    std::atomic<std::uint64_t> w[5]{};
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace ace::obs
