// Slow-query log: keeps the slowest N queries above a configurable
// latency threshold, with enough context (query text, engine, outcome,
// queue wait, per-query counters) to explain *why* each one was slow —
// the first thing an operator reaches for before opening a full trace.
//
// record() is called once per completed query by the QueryService; the
// threshold test is one comparison before any lock is taken, so a
// disabled or rarely-hit log costs nothing on the serving hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/result.hpp"

namespace ace::obs {

struct SlowLogOptions {
  // Queries at or above this latency are logged; zero disables the log.
  std::chrono::microseconds threshold{0};
  // Retains the `capacity` slowest entries (eviction by lowest latency).
  std::size_t capacity = 64;
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowLogOptions opts = {}) : opts_(opts) {}

  bool enabled() const { return opts_.threshold.count() > 0; }
  std::chrono::microseconds threshold() const { return opts_.threshold; }

  // Considers one completed query. Cheap early-out below the threshold.
  void consider(const QueryResult& r) {
    if (!enabled() || r.latency < opts_.threshold) return;
    admit(r);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  // Slowest first.
  std::vector<QueryResult> snapshot() const;

  // Watchdog flight notes: pre-rendered evidence dumps for queries that
  // exceeded their wall budget *while still running* (so they cannot be
  // admitted as completed entries yet, and their ring events would be
  // overwritten by the time they finish). Bounded side-channel, newest
  // kept; works even when the latency threshold is zero/disabled.
  void add_flight_note(std::string note);
  std::vector<std::string> flight_notes() const;

  // Human-readable rendering, slowest first. Queries that carried cost
  // attribution additionally get an " ovh=..%[cat:time,...]" note with
  // their top-3 overhead categories:
  //   1824us (queue 3us) id=42 outcome=ok sols=1 resolutions=19224
  //       ovh=12.3%[parcall:1230,sched:450,marker:60]  % slow(X).
  std::string render() const;

 private:
  void admit(const QueryResult& r);

  static constexpr std::size_t kMaxFlightNotes = 16;

  SlowLogOptions opts_;
  mutable std::mutex mu_;
  std::vector<QueryResult> entries_;  // unordered; eviction scans for min
  std::vector<std::string> flight_notes_;  // oldest first, bounded
};

}  // namespace ace::obs
