#include "obs/slowlog.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/strutil.hpp"

namespace ace::obs {

namespace {

// " ovh=12.3%[parcall:123,sched:45]": the fraction of the query's summed
// virtual time spent on parallel overhead, with the top-3 overhead
// categories and their charges — enough to pick the right schema before
// opening a trace. Empty when the query carried no attribution.
std::string attrib_note(const AttribBreakdown& a) {
  std::uint64_t total = a.total();
  if (total == 0) return "";
  std::vector<std::pair<CostCat, std::uint64_t>> ovh;
  for (std::size_t i = 0; i < kNumCostCats; ++i) {
    CostCat c = static_cast<CostCat>(i);
    if (cost_cat_is_overhead(c) && a.at[i] > 0) ovh.emplace_back(c, a.at[i]);
  }
  std::string out = strf(" ovh=%.1f%%", 100.0 * (double)a.overhead() /
                                            (double)total);
  if (ovh.empty()) return out;
  std::stable_sort(ovh.begin(), ovh.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });
  if (ovh.size() > 3) ovh.resize(3);
  out += "[";
  for (std::size_t i = 0; i < ovh.size(); ++i) {
    if (i != 0) out += ",";
    out += strf("%s:%llu", cost_cat_name(ovh[i].first),
                (unsigned long long)ovh[i].second);
  }
  out += "]";
  return out;
}

}  // namespace

void SlowQueryLog::admit(const QueryResult& r) {
  QueryResult entry = r;
  entry.solutions.clear();  // keep the log light: counts, not payloads
  entry.output.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < opts_.capacity) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Evict the fastest retained entry if the newcomer is slower.
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const QueryResult& x, const QueryResult& y) {
        return x.latency < y.latency;
      });
  if (fastest != entries_.end() && fastest->latency < entry.latency) {
    *fastest = std::move(entry);
  }
}

void SlowQueryLog::add_flight_note(std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flight_notes_.size() >= kMaxFlightNotes) {
    flight_notes_.erase(flight_notes_.begin());
  }
  flight_notes_.push_back(std::move(note));
}

std::vector<std::string> SlowQueryLog::flight_notes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flight_notes_;
}

std::vector<QueryResult> SlowQueryLog::snapshot() const {
  std::vector<QueryResult> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryResult& x, const QueryResult& y) {
              return x.latency > y.latency;
            });
  return out;
}

std::string SlowQueryLog::render() const {
  std::vector<QueryResult> entries = snapshot();
  std::vector<std::string> notes = flight_notes();
  std::string out;
  if (!notes.empty()) {
    out += strf("watchdog flight notes: %zu\n", notes.size());
    for (const std::string& n : notes) out += n;
  }
  if (entries.empty()) {
    return out + strf("slow-query log: empty (threshold %lldus)\n",
                      (long long)opts_.threshold.count());
  }
  out += strf("slow-query log: %zu entr%s at/above %lldus\n",
              entries.size(), entries.size() == 1 ? "y" : "ies",
              (long long)opts_.threshold.count());
  for (const QueryResult& e : entries) {
    out += strf("%8lldus (queue %lldus) id=%llu outcome=%s sols=%llu "
                "resolutions=%llu steals=%llu%s%s  %% %s\n",
                (long long)e.latency.count(),
                (long long)e.queue_wait.count(), (unsigned long long)e.id,
                query_outcome_name(e.outcome),
                (unsigned long long)e.stats.solutions,
                (unsigned long long)e.stats.resolutions,
                (unsigned long long)e.stats.steals,
                attrib_note(e.attrib).c_str(),
                e.trace_id != 0
                    ? strf(" trace=%llu", (unsigned long long)e.trace_id)
                          .c_str()
                    : "",
                e.query.c_str());
  }
  return out;
}

}  // namespace ace::obs
