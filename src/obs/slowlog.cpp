#include "obs/slowlog.hpp"

#include <algorithm>

#include "support/strutil.hpp"

namespace ace::obs {

void SlowQueryLog::admit(const QueryResult& r) {
  QueryResult entry = r;
  entry.solutions.clear();  // keep the log light: counts, not payloads
  entry.output.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < opts_.capacity) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Evict the fastest retained entry if the newcomer is slower.
  auto fastest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const QueryResult& x, const QueryResult& y) {
        return x.latency < y.latency;
      });
  if (fastest != entries_.end() && fastest->latency < entry.latency) {
    *fastest = std::move(entry);
  }
}

std::vector<QueryResult> SlowQueryLog::snapshot() const {
  std::vector<QueryResult> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryResult& x, const QueryResult& y) {
              return x.latency > y.latency;
            });
  return out;
}

std::string SlowQueryLog::render() const {
  std::vector<QueryResult> entries = snapshot();
  if (entries.empty()) {
    return strf("slow-query log: empty (threshold %lldus)\n",
                (long long)opts_.threshold.count());
  }
  std::string out = strf("slow-query log: %zu entr%s at/above %lldus\n",
                         entries.size(), entries.size() == 1 ? "y" : "ies",
                         (long long)opts_.threshold.count());
  for (const QueryResult& e : entries) {
    out += strf("%8lldus (queue %lldus) id=%llu outcome=%s sols=%llu "
                "resolutions=%llu steals=%llu%s  %% %s\n",
                (long long)e.latency.count(),
                (long long)e.queue_wait.count(), (unsigned long long)e.id,
                query_outcome_name(e.outcome),
                (unsigned long long)e.stats.solutions,
                (unsigned long long)e.stats.resolutions,
                (unsigned long long)e.stats.steals,
                e.trace_id != 0
                    ? strf(" trace=%llu", (unsigned long long)e.trace_id)
                          .c_str()
                    : "",
                e.query.c_str());
  }
  return out;
}

}  // namespace ace::obs
