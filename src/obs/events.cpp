#include "obs/events.hpp"

namespace ace::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::SlotStart:
      return "slot_start";
    case EventKind::SlotComplete:
      return "slot_complete";
    case EventKind::SlotFail:
      return "slot_fail";
    case EventKind::ParcallCreate:
      return "parcall_create";
    case EventKind::LpcoMerge:
      return "lpco_merge";
    case EventKind::Steal:
      return "steal";
    case EventKind::OutsideBt:
      return "outside_bt";
    case EventKind::Share:
      return "share";
    case EventKind::Solution:
      return "solution";
    case EventKind::LaoReuse:
      return "lao_reuse";
    case EventKind::ShallowSkip:
      return "shallow_skip";
    case EventKind::PdoMerge:
      return "pdo_merge";
    case EventKind::CancelLand:
      return "cancel_land";
    case EventKind::QueueEnter:
      return "queue_enter";
    case EventKind::QueueLeave:
      return "queue_leave";
    case EventKind::ServeBegin:
      return "serve_begin";
    case EventKind::ServeEnd:
      return "serve_end";
    case EventKind::QueryBegin:
      return "query_begin";
    case EventKind::QueryEnd:
      return "query_end";
    case EventKind::ParseBegin:
      return "parse_begin";
    case EventKind::ParseEnd:
      return "parse_end";
    case EventKind::RunBegin:
      return "run_begin";
    case EventKind::RunEnd:
      return "run_end";
    case EventKind::Submit:
      return "submit";
    case EventKind::CancelRequest:
      return "cancel_request";
    case EventKind::SessionCheckout:
      return "session_checkout";
    case EventKind::SessionCheckin:
      return "session_checkin";
    case EventKind::AcquireBegin:
      return "acquire_begin";
    case EventKind::AcquireEnd:
      return "acquire_end";
    case EventKind::RenderBegin:
      return "render_begin";
    case EventKind::RenderEnd:
      return "render_end";
    case EventKind::WatchdogFire:
      return "watchdog_fire";
    case EventKind::kCount:
      break;
  }
  return "?";
}

}  // namespace ace::obs
