// Exporters for the observability layer.
//
// chrome_trace_json() renders a Recorder's contents as Chrome
// `trace_event` JSON (the "JSON Array Format" object form) loadable in
// about://tracing and Perfetto. Span-shaped event pairs (queue residency,
// serve, query, parse, run, slots, copy sessions) are emitted as complete
// "X" events with microsecond timestamps; everything else becomes an
// instant "i" event. Each track maps to one tid; track names are published
// with "M" metadata events; the query id and the two payload words ride in
// "args".
//
// Rings are bounded flight recorders: when a track's ring wrapped, the
// overwritten-record count is surfaced in the export header as a top-level
// "droppedEvents" field (sum over tracks) plus one per-track
// "dropped_events" metadata event, and begin/end pairs whose partner was
// overwritten degrade gracefully (orphan ends become instants, orphan
// begins close at the track's last timestamp).
//
// to_csv() is the plain flat form: one line per record across all tracks.
//
// validate_chrome_trace() is a structural checker used by tests and by
// `ace_serve --trace` before writing: strict JSON, required keys per
// event, known phases, non-negative durations, and per-(pid,tid) monotone
// timestamps.
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace ace {
class Tracer;  // sim/trace.hpp
}

namespace ace::obs {

std::string chrome_trace_json(const Recorder& rec);
std::string chrome_trace_json(const std::vector<TrackSnapshot>& tracks);

std::string to_csv(const Recorder& rec);

// Renders a *simulator* trace (virtual-time Tracer) in the same Chrome
// format, one tid per agent, virtual time units exported as microseconds —
// lets bench_fig5-style runs open in Perfetto too.
std::string chrome_trace_json_from_sim(const Tracer& tracer);

// Returns true if `json` is a structurally valid Chrome trace: parses as
// strict JSON, has a traceEvents array, every event has name/ph/pid/tid,
// phases are M/X/i, X events carry dur >= 0, non-metadata events carry
// ts >= 0, and ts is non-decreasing per (pid,tid) in array order. On
// failure, *error (if non-null) describes the first problem.
bool validate_chrome_trace(const std::string& json, std::string* error);

}  // namespace ace::obs
