// Event vocabulary for the real-thread observability layer (src/obs/).
//
// The first block of kinds mirrors the virtual-time simulator's TraceEvent
// one-for-one (same order, same meaning) so the engine's single set of
// trace sites — Worker::trace() — can feed both recorders with a plain
// static_cast. The second block covers the serving stack: per-query spans
// (queue residency, dispatch, parse, drive loop) and service points
// (submit, cancel landing, engine-pool checkout).
//
// Every record is five words: a timestamp in nanoseconds since the owning
// Recorder's epoch, the event kind, the query id the event belongs to (0
// when outside any query), and two kind-specific payload words `a`/`b`
// (documented per kind below).
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace ace::obs {

enum class EventKind : std::uint8_t {
  // ---- Engine events (aligned with ace::TraceEvent) ----------------------
  SlotStart,      // a = pf, b = slot
  SlotComplete,   // a = pf, b = slot
  SlotFail,       // a = pf, b = slot
  ParcallCreate,  // a = pf, b = #slots
  LpcoMerge,      // LPCO trigger: a = pf merged into, b = #new slots
  Steal,          // a = pf, b = slot (and-parallel) / victim, node (sim)
  OutsideBt,      // a = pf
  Share,          // MUSE share/copy session: a = victim agent, b = node id
  Solution,       // -
  LaoReuse,       // LAO trigger: a = ctrl index of the reused frame
  ShallowSkip,    // SHALLOW trigger: a = pf, b = slot (markers elided)
  PdoMerge,       // PDO trigger: a = pf, b = slot
  CancelLand,     // a stop landed in the engine: a = StopCause

  // ---- Serving / session spans -------------------------------------------
  QueueEnter,       // admission queue residency begins (service track)
  QueueLeave,       // popped by a dispatch thread
  ServeBegin,       // dispatch thread starts serving the query
  ServeEnd,         // a = outcome (QueryOutcome)
  QueryBegin,       // session starts executing (session track)
  QueryEnd,         // a = #solutions, b = StopCause
  ParseBegin,       // query-text parse
  ParseEnd,         //
  RunBegin,         // drive loop (after parse/load)
  RunEnd,           //

  // ---- Service points ----------------------------------------------------
  Submit,           // a = 1 if admitted, 0 if rejected (overload)
  CancelRequest,    // external cancel(id) observed by the service
  SessionCheckout,  // a = 1 if pool hit (warm reuse), 0 if cold build
  SessionCheckin,   //

  // ---- Wall-clock phase spans (appended; see obs/timeline.hpp) -----------
  AcquireBegin,     // session-acquire (pool checkout / cold build) begins
  AcquireEnd,       // a = 1 if pool hit, 0 if cold build
  RenderBegin,      // response rendering/bookkeeping begins
  RenderEnd,        //
  WatchdogFire,     // wall budget exceeded: a = phase ordinal, b = age in ms

  kCount,
};

// The engine block must stay aligned with the simulator's vocabulary: the
// hot path converts with a static_cast.
static_assert(static_cast<int>(EventKind::SlotStart) ==
              static_cast<int>(TraceEvent::SlotStart));
static_assert(static_cast<int>(EventKind::Solution) ==
              static_cast<int>(TraceEvent::Solution));
static_assert(static_cast<int>(EventKind::LaoReuse) ==
              static_cast<int>(TraceEvent::LaoReuse));
static_assert(static_cast<int>(EventKind::ShallowSkip) ==
              static_cast<int>(TraceEvent::ShallowSkip));
static_assert(static_cast<int>(EventKind::PdoMerge) ==
              static_cast<int>(TraceEvent::PdoMerge));
static_assert(static_cast<int>(EventKind::CancelLand) ==
              static_cast<int>(TraceEvent::CancelLand));

const char* event_kind_name(EventKind k);

struct EventRecord {
  std::uint64_t ts_ns = 0;  // since the Recorder's epoch
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t qid = 0;    // query id (0 = none)
  EventKind kind = EventKind::kCount;
};

}  // namespace ace::obs
