#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <utility>

#include "sim/trace.hpp"
#include "support/strutil.hpp"

namespace ace::obs {

namespace {

// ---------------------------------------------------------------------------
// Chrome trace_event rendering.

struct OutEvent {
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  bool is_span = false;  // "X" complete event; else "i" instant
  const char* name = "?";
  std::uint64_t qid = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Kinds that open a span, with the display name of the span they open.
const char* span_name_of_begin(EventKind k) {
  switch (k) {
    case EventKind::QueueEnter:
      return "queued";
    case EventKind::ServeBegin:
      return "serve";
    case EventKind::QueryBegin:
      return "query";
    case EventKind::ParseBegin:
      return "parse";
    case EventKind::RunBegin:
      return "run";
    case EventKind::AcquireBegin:
      return "acquire";
    case EventKind::RenderBegin:
      return "render";
    case EventKind::SlotStart:
      return "slot";
    default:
      return nullptr;
  }
}

// For a closing kind, the kind that must have opened the span.
bool is_end_of(EventKind end, EventKind begin) {
  switch (end) {
    case EventKind::QueueLeave:
      return begin == EventKind::QueueEnter;
    case EventKind::ServeEnd:
      return begin == EventKind::ServeBegin;
    case EventKind::QueryEnd:
      return begin == EventKind::QueryBegin;
    case EventKind::ParseEnd:
      return begin == EventKind::ParseBegin;
    case EventKind::RunEnd:
      return begin == EventKind::RunBegin;
    case EventKind::AcquireEnd:
      return begin == EventKind::AcquireBegin;
    case EventKind::RenderEnd:
      return begin == EventKind::RenderBegin;
    case EventKind::SlotComplete:
    case EventKind::SlotFail:
      return begin == EventKind::SlotStart;
    default:
      return false;
  }
}

bool is_span_end(EventKind k) {
  switch (k) {
    case EventKind::QueueLeave:
    case EventKind::ServeEnd:
    case EventKind::QueryEnd:
    case EventKind::ParseEnd:
    case EventKind::RunEnd:
    case EventKind::AcquireEnd:
    case EventKind::RenderEnd:
    case EventKind::SlotComplete:
    case EventKind::SlotFail:
      return true;
    default:
      return false;
  }
}

// Converts one track's records to output events: well-matched
// begin/end pairs become "X" complete spans; unmatched begins are closed
// at the track's last timestamp; everything else is an instant.
void convert_track(const TrackSnapshot& track, std::vector<OutEvent>* out) {
  struct Open {
    EventRecord rec;
  };
  std::vector<Open> stack;
  std::uint64_t last_ts = 0;
  for (const EventRecord& r : track.records) {
    last_ts = std::max(last_ts, r.ts_ns);
  }

  auto emit_instant = [&](const EventRecord& r) {
    OutEvent e;
    e.tid = track.id;
    e.ts_ns = r.ts_ns;
    e.name = event_kind_name(r.kind);
    e.qid = r.qid;
    e.a = r.a;
    e.b = r.b;
    out->push_back(e);
  };
  auto emit_span = [&](const EventRecord& begin, std::uint64_t end_ts) {
    OutEvent e;
    e.tid = track.id;
    e.ts_ns = begin.ts_ns;
    e.dur_ns = end_ts >= begin.ts_ns ? end_ts - begin.ts_ns : 0;
    e.is_span = true;
    e.name = span_name_of_begin(begin.kind);
    e.qid = begin.qid;
    e.a = begin.a;
    e.b = begin.b;
    out->push_back(e);
  };

  for (const EventRecord& r : track.records) {
    if (span_name_of_begin(r.kind) != nullptr) {
      stack.push_back(Open{r});
      continue;
    }
    if (is_span_end(r.kind)) {
      // Find the nearest matching open (slots additionally match on
      // (pf, slot) so interleaved slot lifetimes pair correctly).
      bool matched = false;
      for (std::size_t i = stack.size(); i-- > 0;) {
        const EventRecord& o = stack[i].rec;
        if (!is_end_of(r.kind, o.kind)) continue;
        if (o.kind == EventKind::SlotStart &&
            (o.a != r.a || o.b != r.b)) {
          continue;
        }
        emit_span(o, r.ts_ns);
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
        matched = true;
        break;
      }
      if (!matched) emit_instant(r);  // end without a recorded begin
      // SlotFail also marks the failure itself; keep it visible.
      if (r.kind == EventKind::SlotFail) emit_instant(r);
      continue;
    }
    emit_instant(r);
  }
  // Overflow or teardown can eat an End; close leftovers at the last
  // timestamp seen on the track so the JSON stays well-formed.
  for (const Open& o : stack) emit_span(o.rec, last_ts);
}

std::string render(const std::vector<TrackSnapshot>& tracks,
                   std::vector<OutEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const OutEvent& x, const OutEvent& y) {
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.ts_ns < y.ts_ns;
            });

  // Surface ring overwrite loss in the export header: a consumer that only
  // reads the first line knows whether the window is complete. Per-track
  // counts additionally ride as metadata events below.
  std::uint64_t dropped_total = 0;
  for (const TrackSnapshot& t : tracks) dropped_total += t.dropped;

  std::string out =
      strf("{\"displayTimeUnit\":\"ms\",\"droppedEvents\":%llu,"
           "\"traceEvents\":[",
           (unsigned long long)dropped_total);
  bool first = true;
  auto push = [&](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += obj;
  };

  push("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"ace\"}}");
  for (const TrackSnapshot& t : tracks) {
    push(strf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
              "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
              t.id, json_escape(t.name).c_str()));
    if (t.dropped > 0) {
      push(strf("{\"name\":\"dropped_events\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%u,\"args\":{\"count\":%llu}}",
                t.id, (unsigned long long)t.dropped));
    }
  }

  for (const OutEvent& e : events) {
    std::string args = strf("{\"qid\":%llu,\"a\":%llu,\"b\":%llu}",
                            (unsigned long long)e.qid,
                            (unsigned long long)e.a,
                            (unsigned long long)e.b);
    if (e.is_span) {
      push(strf("{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                "\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
                e.name, e.tid, double(e.ts_ns) / 1000.0,
                double(e.dur_ns) / 1000.0, args.c_str()));
    } else {
      push(strf("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                "\"tid\":%u,\"ts\":%.3f,\"args\":%s}",
                e.name, e.tid, double(e.ts_ns) / 1000.0, args.c_str()));
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TrackSnapshot>& tracks) {
  std::vector<OutEvent> events;
  for (const TrackSnapshot& t : tracks) convert_track(t, &events);
  return render(tracks, std::move(events));
}

std::string chrome_trace_json(const Recorder& rec) {
  return chrome_trace_json(rec.snapshot());
}

std::string to_csv(const Recorder& rec) {
  std::string out = "ts_ns,track,track_name,kind,qid,a,b\n";
  for (const TrackSnapshot& t : rec.snapshot()) {
    for (const EventRecord& r : t.records) {
      out += strf("%llu,%u,%s,%s,%llu,%llu,%llu\n",
                  (unsigned long long)r.ts_ns, t.id, t.name.c_str(),
                  event_kind_name(r.kind), (unsigned long long)r.qid,
                  (unsigned long long)r.a, (unsigned long long)r.b);
    }
  }
  return out;
}

std::string chrome_trace_json_from_sim(const Tracer& tracer) {
  // One synthetic track per agent; one virtual time unit maps to 1ns, so
  // the exported "ts" microseconds are virtual-time/1000 — relative
  // ordering and span widths are what matter.
  std::map<unsigned, TrackSnapshot> by_agent;
  for (const TraceRecord& r : tracer.snapshot()) {
    TrackSnapshot& t = by_agent[r.agent];
    EventRecord e;
    e.ts_ns = r.time;
    e.a = r.a;
    e.b = r.b;
    e.kind = static_cast<EventKind>(r.event);
    t.records.push_back(e);
  }
  std::vector<TrackSnapshot> tracks;
  for (auto& [agent, t] : by_agent) {
    t.id = agent;
    t.name = strf("agent %u (virtual)", agent);
    std::stable_sort(t.records.begin(), t.records.end(),
                     [](const EventRecord& x, const EventRecord& y) {
                       return x.ts_ns < y.ts_ns;
                     });
    tracks.push_back(std::move(t));
  }
  return chrome_trace_json(tracks);
}

// ---------------------------------------------------------------------------
// Structural validation: a small strict JSON parser plus trace checks.

namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool boolean = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const char* p, const char* end) : p_(p), end_(end) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) *error = err_;
      return false;
    }
    skip_ws();
    if (p_ != end_) {
      if (error != nullptr) *error = "trailing content after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_.empty()) {
      err_ = strf("%s (at offset %zu)", msg.c_str(),
                  static_cast<std::size_t>(p_ - start_));
    }
    return false;
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool value(JsonValue* out) {
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out->kind = JsonValue::Kind::Str;
        return string(&out->str);
      case 't':
        return literal("true", out, JsonValue::Kind::Bool, true);
      case 'f':
        return literal("false", out, JsonValue::Kind::Bool, false);
      case 'n':
        return literal("null", out, JsonValue::Kind::Null, false);
      default:
        return number(out);
    }
  }

  bool literal(const char* word, JsonValue* out, JsonValue::Kind kind,
               bool b) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ == end_ || *p_ != *w) return fail("bad literal");
    }
    out->kind = kind;
    out->boolean = b;
    return true;
  }

  bool number(JsonValue* out) {
    const char* begin = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("invalid number");
    }
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("invalid fraction");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("invalid exponent");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    out->kind = JsonValue::Kind::Num;
    out->num = std::strtod(std::string(begin, p_).c_str(), nullptr);
    return true;
  }

  bool string(std::string* out) {
    ++p_;  // opening quote
    while (true) {
      if (p_ == end_) return fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return fail("unterminated escape");
        switch (*p_) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ == end_ ||
                  !std::isxdigit(static_cast<unsigned char>(*p_))) {
                return fail("invalid \\u escape");
              }
              char h = *p_;
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // Keep it simple: re-encode BMP code points as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
        ++p_;
        continue;
      }
      *out += static_cast<char>(c);
      ++p_;
    }
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::Arr;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::Obj;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail("expected object key");
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail("expected ':'");
      ++p_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
  std::string err_;
};

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  JsonValue root;
  {
    JsonParser parser(json.data(), json.data() + json.size());
    std::string perr;
    if (!parser.parse(&root, &perr)) {
      return set_error(error, "not strict JSON: " + perr);
    }
  }
  if (root.kind != JsonValue::Kind::Obj) {
    return set_error(error, "top level is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::Arr) {
    return set_error(error, "missing traceEvents array");
  }
  // Optional header field written by render(): must be a non-negative
  // number when present (wrapped rings report their overwrite loss here).
  const JsonValue* dropped = root.find("droppedEvents");
  if (dropped != nullptr &&
      (dropped->kind != JsonValue::Kind::Num || dropped->num < 0)) {
    return set_error(error, "droppedEvents is not a non-negative number");
  }

  std::map<std::pair<double, double>, double> last_ts;  // (pid,tid) -> ts
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JsonValue& e = events->arr[i];
    auto where = [&](const char* what) {
      return strf("event %zu: %s", i, what);
    };
    if (e.kind != JsonValue::Kind::Obj) {
      return set_error(error, where("not an object"));
    }
    const JsonValue* name = e.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::Str) {
      return set_error(error, where("missing string name"));
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::Str) {
      return set_error(error, where("missing string ph"));
    }
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (pid == nullptr || pid->kind != JsonValue::Kind::Num ||
        tid == nullptr || tid->kind != JsonValue::Kind::Num) {
      return set_error(error, where("missing numeric pid/tid"));
    }
    if (ph->str == "M") continue;  // metadata: no timestamp required
    if (ph->str != "X" && ph->str != "i" && ph->str != "B" &&
        ph->str != "E") {
      return set_error(error, where("unknown phase"));
    }
    const JsonValue* ts = e.find("ts");
    if (ts == nullptr || ts->kind != JsonValue::Kind::Num ||
        ts->num < 0) {
      return set_error(error, where("missing non-negative ts"));
    }
    if (ph->str == "X") {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::Num ||
          dur->num < 0) {
        return set_error(error, where("X event without dur >= 0"));
      }
    }
    auto key = std::make_pair(pid->num, tid->num);
    auto it = last_ts.find(key);
    if (it != last_ts.end() && ts->num < it->second) {
      return set_error(error, where("timestamps not monotone per track"));
    }
    last_ts[key] = ts->num;
  }
  return true;
}

}  // namespace ace::obs
