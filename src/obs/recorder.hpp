// Recorder: the process-wide (or service-wide) event sink of the
// observability layer.
//
//   Recorder rec;                         // epoch = construction time
//   Track* t = rec.create_track("agent 0");
//   t->set_query(qid);                    // stamp subsequent events
//   t->note(EventKind::SlotStart, pf, slot);
//   ...
//   std::string json = chrome_trace_json(rec);   // obs/export.hpp
//
// One Track per real thread of interest (each engine agent, each dispatch
// thread, one shared multi-writer track for the service's submit side).
// Tracks own a lock-free EventRing each; note() is wait-free: one enabled
// load, one clock read, one slot claim. When no Recorder is attached the
// engine pays a single predicted-not-taken branch per event site
// (Worker::trace's combined null check) — the same discipline as the
// simulator's Tracer.
//
// The recorder is runtime-toggleable: set_enabled(false) makes every
// note() a cheap early-out without detaching any track, so a serving
// process can open and close tracing windows while under load.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/ring.hpp"

namespace ace::obs {

class Recorder;

class Track {
 public:
  const std::string& name() const { return name_; }
  std::uint32_t id() const { return id_; }

  // Stamps subsequent note() records with `qid`. Single-writer tracks set
  // this between queries (the owning thread, or a thread that
  // happens-before the owning thread's next step).
  void set_query(std::uint64_t qid) { qid_ = qid; }
  std::uint64_t query() const { return qid_; }

  // Records one event at the recorder's current time. Wait-free.
  inline void note(EventKind k, std::uint64_t a = 0, std::uint64_t b = 0);
  // As note(), but with an explicit query id (multi-writer tracks).
  inline void note_qid(EventKind k, std::uint64_t qid, std::uint64_t a = 0,
                       std::uint64_t b = 0);

  const EventRing& ring() const { return ring_; }

 private:
  friend class Recorder;
  Track(Recorder* rec, std::uint32_t id, std::string name,
        std::size_t capacity)
      : rec_(rec), id_(id), name_(std::move(name)), ring_(capacity) {}

  Recorder* rec_;
  std::uint32_t id_;
  std::string name_;
  std::uint64_t qid_ = 0;
  EventRing ring_;
};

struct TrackSnapshot {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t dropped = 0;
  std::vector<EventRecord> records;  // oldest first
};

struct RecorderOptions {
  // Per-track ring capacity (records, rounded up to a power of two).
  // 16384 records × 48 bytes ≈ 0.8 MiB per track.
  std::size_t ring_capacity = 1 << 14;
};

class Recorder {
 public:
  explicit Recorder(RecorderOptions opts = {})
      : opts_(opts), epoch_(Clock::now()) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Creates a new track. The returned pointer is stable for the
  // recorder's lifetime. Thread-safe.
  Track* create_track(std::string name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto t = std::unique_ptr<Track>(
        new Track(this, static_cast<std::uint32_t>(tracks_.size()),
                  std::move(name), opts_.ring_capacity));
    tracks_.push_back(std::move(t));
    return tracks_.back().get();
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Nanoseconds since the recorder's epoch.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
  }

  std::size_t num_tracks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tracks_.size();
  }

  std::uint64_t total_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& t : tracks_) n += t->ring().total();
    return n;
  }

  std::vector<TrackSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TrackSnapshot> out;
    out.reserve(tracks_.size());
    for (const auto& t : tracks_) {
      TrackSnapshot s;
      s.id = t->id();
      s.name = t->name();
      s.dropped = t->ring().dropped();
      s.records = t->ring().snapshot();
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  using Clock = std::chrono::steady_clock;

  RecorderOptions opts_;
  Clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Track>> tracks_;
};

inline void Track::note(EventKind k, std::uint64_t a, std::uint64_t b) {
  note_qid(k, qid_, a, b);
}

inline void Track::note_qid(EventKind k, std::uint64_t qid, std::uint64_t a,
                            std::uint64_t b) {
  if (!rec_->enabled()) return;
  EventRecord r;
  r.ts_ns = rec_->now_ns();
  r.a = a;
  r.b = b;
  r.qid = qid;
  r.kind = k;
  ring_.push(r);
}

// RAII span helper: Begin on construction, End on destruction, both
// stamped with the same query id.
class Span {
 public:
  Span(Track* track, std::uint64_t qid, EventKind begin, EventKind end,
       std::uint64_t a = 0, std::uint64_t b = 0)
      : track_(track), qid_(qid), end_(end) {
    if (track_ != nullptr) track_->note_qid(begin, qid_, a, b);
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Closes the span early with explicit payload words.
  void close(std::uint64_t a = 0, std::uint64_t b = 0) {
    if (track_ != nullptr) track_->note_qid(end_, qid_, a, b);
    track_ = nullptr;
  }

 private:
  Track* track_;
  std::uint64_t qid_;
  EventKind end_;
};

}  // namespace ace::obs
