// Per-query wall-clock phase timelines, reconstructed from flight-recorder
// snapshots.
//
// The serving stack stamps qid-correlated begin/end events (QueueEnter,
// AcquireBegin, ParseBegin, RunBegin, RenderBegin, ...) across several
// tracks: the service's shared submit track, per-dispatch-thread tracks and
// per-session tracks. extract_timelines() re-assembles those records into
// one QueryTimeline per query id — the same pairing rules the Chrome
// exporter uses, but grouped by query instead of by track — so /tracez and
// the watchdog can show "where did query 42 spend its wall time" without
// loading a trace file into a UI.
//
// All timestamps are nanoseconds since the owning Recorder's epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.hpp"

namespace ace::obs {

struct PhaseSpan {
  std::string name;           // "queued", "serve", "acquire", "parse", ...
  std::uint32_t track = 0;    // track id the span was recorded on
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t a = 0;        // payload words from the begin record
  std::uint64_t b = 0;

  std::uint64_t dur_ns() const {
    return end_ns >= begin_ns ? end_ns - begin_ns : 0;
  }
};

struct TimelinePoint {
  std::string name;         // instant event name ("submit", "cancel_request")
  std::uint32_t track = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

struct QueryTimeline {
  std::uint64_t qid = 0;
  std::vector<PhaseSpan> spans;     // sorted by begin_ns
  std::vector<TimelinePoint> points;  // sorted by ts_ns
  std::uint64_t first_ns = 0;       // earliest record for this qid
  std::uint64_t last_ns = 0;        // latest record for this qid

  std::uint64_t wall_ns() const {
    return last_ns >= first_ns ? last_ns - first_ns : 0;
  }
};

// Reconstructs per-query timelines from a recorder snapshot. Engine-internal
// events (slot lifecycles, steals, ...) are skipped unless
// `include_engine_events` is set — serving timelines only need the phase
// vocabulary. Unmatched begins (ring overwrite, in-flight queries) are
// closed at the owning track's last timestamp. Records with qid 0 are
// ignored. Result is sorted by qid.
std::vector<QueryTimeline> extract_timelines(
    const std::vector<TrackSnapshot>& tracks,
    bool include_engine_events = false);

// Renders timelines as an aligned text table, newest-first, at most
// `max_queries` entries (0 = all). This is the /tracez payload.
std::string render_timelines_text(const std::vector<QueryTimeline>& tls,
                                  std::size_t max_queries = 0);

// One-timeline detail dump (watchdog flight notes): every span and point
// with offsets relative to the query's first event.
std::string render_timeline_detail(const QueryTimeline& tl);

}  // namespace ace::obs
