#include "obs/timeline.hpp"

#include <algorithm>
#include <map>

#include "support/strutil.hpp"

namespace ace::obs {

namespace {

bool is_engine_kind(EventKind k) {
  return static_cast<int>(k) <= static_cast<int>(EventKind::CancelLand);
}

// Span-pairing vocabulary; mirrors obs/export.cpp so the text timelines and
// the Chrome traces agree on names.
const char* begin_name(EventKind k) {
  switch (k) {
    case EventKind::QueueEnter:
      return "queued";
    case EventKind::ServeBegin:
      return "serve";
    case EventKind::QueryBegin:
      return "query";
    case EventKind::ParseBegin:
      return "parse";
    case EventKind::RunBegin:
      return "run";
    case EventKind::AcquireBegin:
      return "acquire";
    case EventKind::RenderBegin:
      return "render";
    case EventKind::SlotStart:
      return "slot";
    default:
      return nullptr;
  }
}

bool closes(EventKind end, EventKind begin) {
  switch (end) {
    case EventKind::QueueLeave:
      return begin == EventKind::QueueEnter;
    case EventKind::ServeEnd:
      return begin == EventKind::ServeBegin;
    case EventKind::QueryEnd:
      return begin == EventKind::QueryBegin;
    case EventKind::ParseEnd:
      return begin == EventKind::ParseBegin;
    case EventKind::RunEnd:
      return begin == EventKind::RunBegin;
    case EventKind::AcquireEnd:
      return begin == EventKind::AcquireBegin;
    case EventKind::RenderEnd:
      return begin == EventKind::RenderBegin;
    case EventKind::SlotComplete:
    case EventKind::SlotFail:
      return begin == EventKind::SlotStart;
    default:
      return false;
  }
}

bool is_close(EventKind k) {
  switch (k) {
    case EventKind::QueueLeave:
    case EventKind::ServeEnd:
    case EventKind::QueryEnd:
    case EventKind::ParseEnd:
    case EventKind::RunEnd:
    case EventKind::AcquireEnd:
    case EventKind::RenderEnd:
    case EventKind::SlotComplete:
    case EventKind::SlotFail:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<QueryTimeline> extract_timelines(
    const std::vector<TrackSnapshot>& tracks, bool include_engine_events) {
  std::map<std::uint64_t, QueryTimeline> by_qid;

  auto touch = [&](std::uint64_t qid, std::uint64_t ts) -> QueryTimeline& {
    QueryTimeline& tl = by_qid[qid];
    if (tl.spans.empty() && tl.points.empty()) {
      tl.qid = qid;
      tl.first_ns = ts;
      tl.last_ns = ts;
    } else {
      tl.first_ns = std::min(tl.first_ns, ts);
      tl.last_ns = std::max(tl.last_ns, ts);
    }
    return tl;
  };

  for (const TrackSnapshot& track : tracks) {
    std::vector<EventRecord> stack;
    std::uint64_t track_last = 0;
    for (const EventRecord& r : track.records) {
      track_last = std::max(track_last, r.ts_ns);
    }

    auto emit_span = [&](const EventRecord& begin, std::uint64_t end_ts) {
      QueryTimeline& tl = touch(begin.qid, begin.ts_ns);
      tl.last_ns = std::max(tl.last_ns, end_ts);
      PhaseSpan s;
      s.name = begin_name(begin.kind);
      s.track = track.id;
      s.begin_ns = begin.ts_ns;
      s.end_ns = end_ts;
      s.a = begin.a;
      s.b = begin.b;
      tl.spans.push_back(std::move(s));
    };
    auto emit_point = [&](const EventRecord& r) {
      QueryTimeline& tl = touch(r.qid, r.ts_ns);
      TimelinePoint p;
      p.name = event_kind_name(r.kind);
      p.track = track.id;
      p.ts_ns = r.ts_ns;
      p.a = r.a;
      p.b = r.b;
      tl.points.push_back(std::move(p));
    };

    for (const EventRecord& r : track.records) {
      if (r.qid == 0) continue;
      if (!include_engine_events && is_engine_kind(r.kind)) continue;
      if (begin_name(r.kind) != nullptr) {
        stack.push_back(r);
        continue;
      }
      if (is_close(r.kind)) {
        bool matched = false;
        for (std::size_t i = stack.size(); i-- > 0;) {
          const EventRecord& o = stack[i];
          if (!closes(r.kind, o.kind) || o.qid != r.qid) continue;
          if (o.kind == EventKind::SlotStart &&
              (o.a != r.a || o.b != r.b)) {
            continue;
          }
          emit_span(o, r.ts_ns);
          stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
          matched = true;
          break;
        }
        if (!matched) emit_point(r);
        continue;
      }
      emit_point(r);
    }
    // Ring overwrite or an in-flight query can leave a begin unmatched;
    // close at the track's last timestamp so the span is still visible.
    for (const EventRecord& o : stack) emit_span(o, track_last);
  }

  std::vector<QueryTimeline> out;
  out.reserve(by_qid.size());
  for (auto& [qid, tl] : by_qid) {
    std::sort(tl.spans.begin(), tl.spans.end(),
              [](const PhaseSpan& x, const PhaseSpan& y) {
                if (x.begin_ns != y.begin_ns) return x.begin_ns < y.begin_ns;
                return x.end_ns < y.end_ns;
              });
    std::sort(tl.points.begin(), tl.points.end(),
              [](const TimelinePoint& x, const TimelinePoint& y) {
                return x.ts_ns < y.ts_ns;
              });
    out.push_back(std::move(tl));
  }
  return out;
}

namespace {

std::string us(std::uint64_t ns) {
  return strf("%.1fus", double(ns) / 1000.0);
}

}  // namespace

std::string render_timelines_text(const std::vector<QueryTimeline>& tls,
                                  std::size_t max_queries) {
  // Newest first: highest first_ns at the top.
  std::vector<const QueryTimeline*> order;
  order.reserve(tls.size());
  for (const QueryTimeline& tl : tls) order.push_back(&tl);
  std::sort(order.begin(), order.end(),
            [](const QueryTimeline* x, const QueryTimeline* y) {
              return x->first_ns > y->first_ns;
            });
  if (max_queries != 0 && order.size() > max_queries) {
    order.resize(max_queries);
  }

  std::string out = strf("recent query timelines (%zu shown)\n",
                         order.size());
  for (const QueryTimeline* tl : order) {
    out += strf("qid %llu  wall %s\n", (unsigned long long)tl->qid,
                us(tl->wall_ns()).c_str());
    for (const PhaseSpan& s : tl->spans) {
      out += strf("  +%-12s %-8s %s\n",
                  us(s.begin_ns - tl->first_ns).c_str(), s.name.c_str(),
                  us(s.dur_ns()).c_str());
    }
  }
  return out;
}

std::string render_timeline_detail(const QueryTimeline& tl) {
  std::string out =
      strf("qid %llu  wall %s  spans %zu  points %zu\n",
           (unsigned long long)tl.qid, us(tl.wall_ns()).c_str(),
           tl.spans.size(), tl.points.size());
  for (const PhaseSpan& s : tl.spans) {
    out += strf("  span  +%-12s %-8s dur %-12s track %u a=%llu b=%llu\n",
                us(s.begin_ns - tl.first_ns).c_str(), s.name.c_str(),
                us(s.dur_ns()).c_str(), s.track, (unsigned long long)s.a,
                (unsigned long long)s.b);
  }
  for (const TimelinePoint& p : tl.points) {
    out += strf("  point +%-12s %-16s track %u a=%llu b=%llu\n",
                us(p.ts_ns - tl.first_ns).c_str(), p.name.c_str(), p.track,
                (unsigned long long)p.a, (unsigned long long)p.b);
  }
  return out;
}

}  // namespace ace::obs
