#include "sim/trace.hpp"

#include <algorithm>

#include "support/strutil.hpp"

namespace ace {

const char* Tracer::event_name(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::SlotStart:
      return "slot_start";
    case TraceEvent::SlotComplete:
      return "slot_complete";
    case TraceEvent::SlotFail:
      return "slot_fail";
    case TraceEvent::ParcallCreate:
      return "parcall_create";
    case TraceEvent::LpcoMerge:
      return "lpco_merge";
    case TraceEvent::Steal:
      return "steal";
    case TraceEvent::OutsideBt:
      return "outside_bt";
    case TraceEvent::Share:
      return "share";
    case TraceEvent::Solution:
      return "solution";
    case TraceEvent::LaoReuse:
      return "lao_reuse";
    case TraceEvent::ShallowSkip:
      return "shallow_skip";
    case TraceEvent::PdoMerge:
      return "pdo_merge";
    case TraceEvent::CancelLand:
      return "cancel_land";
  }
  return "?";
}

std::string Tracer::to_csv() const {
  std::string out = "time,agent,event,a,b\n";
  for (const TraceRecord& r : snapshot()) {
    out += strf("%llu,%u,%s,%llu,%llu\n", (unsigned long long)r.time, r.agent,
                event_name(r.event), (unsigned long long)r.a,
                (unsigned long long)r.b);
  }
  return out;
}

std::string Tracer::timeline(unsigned num_agents, unsigned width) const {
  std::vector<TraceRecord> recs = snapshot();
  if (recs.empty() || width == 0) return "(no trace)\n";
  std::uint64_t makespan = 0;
  for (const TraceRecord& r : recs) makespan = std::max(makespan, r.time);
  if (makespan == 0) makespan = 1;

  // Per agent, per bucket: pick the "most interesting" event in the
  // bucket; busy spans (between SlotStart and SlotComplete/Fail) fill '#'.
  std::vector<std::string> lanes(num_agents, std::string(width, '.'));
  auto bucket_of = [&](std::uint64_t t) {
    std::uint64_t b = t * width / (makespan + 1);
    return static_cast<unsigned>(b >= width ? width - 1 : b);
  };

  // Fill busy spans first.
  std::vector<std::uint64_t> open_since(num_agents, ~std::uint64_t{0});
  std::sort(recs.begin(), recs.end(),
            [](const TraceRecord& x, const TraceRecord& y) {
              return x.time < y.time;
            });
  for (const TraceRecord& r : recs) {
    if (r.agent >= num_agents) continue;
    if (r.event == TraceEvent::SlotStart) {
      open_since[r.agent] = r.time;
    } else if (r.event == TraceEvent::SlotComplete ||
               r.event == TraceEvent::SlotFail) {
      if (open_since[r.agent] != ~std::uint64_t{0}) {
        unsigned lo = bucket_of(open_since[r.agent]);
        unsigned hi = bucket_of(r.time);
        for (unsigned i = lo; i <= hi && i < width; ++i) {
          lanes[r.agent][i] = '#';
        }
        open_since[r.agent] = ~std::uint64_t{0};
      }
    }
  }
  // Point events overlay.
  for (const TraceRecord& r : recs) {
    if (r.agent >= num_agents) continue;
    char c = 0;
    switch (r.event) {
      case TraceEvent::Steal:
        c = 'S';
        break;
      case TraceEvent::OutsideBt:
        c = 'B';
        break;
      case TraceEvent::Share:
        c = 'C';
        break;
      case TraceEvent::Solution:
        c = '*';
        break;
      default:
        break;
    }
    if (c != 0) lanes[r.agent][bucket_of(r.time)] = c;
  }

  std::string out = strf("virtual time 0..%llu, %u columns\n",
                         (unsigned long long)makespan, width);
  for (unsigned a = 0; a < num_agents; ++a) {
    out += strf("agent %2u |%s|\n", a, lanes[a].c_str());
  }
  out += "legend: '#' running a subgoal, '.' idle, 'S' steal, "
         "'B' outside backtracking, 'C' stack copy, '*' solution\n";
  return out;
}

}  // namespace ace
