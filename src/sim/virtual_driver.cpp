#include "sim/virtual_driver.hpp"

namespace ace {

StepOutcome VirtualDriver::run_until_event(
    const std::vector<Worker*>& workers, std::uint64_t stall_limit,
    CancelToken* cancel) {
  std::uint64_t idle_streak = 0;
  std::uint64_t polls = 0;
  for (;;) {
    // Shared stop protocol: the workers poll the token inside step(); the
    // driver polls it here as well so a stop lands even when the next
    // runnable worker is the paused/done top-level one. The clock read is
    // decimated; the sticky-flag check runs every iteration.
    if (cancel != nullptr) cancel->raise_if_stopped((++polls & 63u) == 0);
    // Pick the runnable worker with the minimum clock. The paused
    // top-level worker is not runnable; when it pauses we are done.
    Worker* top = workers[0];
    if (top->mode_ == Worker::Mode::SolutionPause) {
      return StepOutcome::Solution;
    }
    if (top->mode_ == Worker::Mode::Done) {
      return StepOutcome::Exhausted;
    }

    Worker* next = nullptr;
    for (Worker* w : workers) {
      if (w->mode_ == Worker::Mode::Done) continue;
      if (next == nullptr || w->clock_ < next->clock_) next = w;
    }
    ACE_CHECK(next != nullptr);

    StepOutcome out = next->step();
    if (out == StepOutcome::Idle) {
      ++idle_streak;
      if (idle_streak > stall_limit) {
        throw AceError("virtual driver stall: all agents idle");
      }
    } else {
      idle_streak = 0;
    }
  }
}

}  // namespace ace
