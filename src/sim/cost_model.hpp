// Virtual-time cost model.
//
// The engines charge every overhead-relevant operation to an agent-local
// virtual clock through this table. The defaults are calibrated (see
// cost_model.cpp) so that the *unoptimized* and-parallel engine pays a
// 10-25% single-agent overhead over the sequential engine — the band the
// paper reports for unoptimized &ACE vs SICStus — and so that the
// optimizations' savings flow from the operations they actually eliminate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ace {

// Overhead category a virtual-time charge is attributed to. Every charge an
// agent makes carries exactly one category, so the per-category sums always
// partition the agent's virtual clock (the conservation invariant tested in
// test_sim). The categories follow the paper's accounting: the first five are
// "work" an ideal sequential engine would also pay; the next five are the
// parallel overheads the optimization schemas (flattening, procrastination,
// sequentialization) attack; Idle is time an agent spends waiting.
enum class CostCat : std::uint8_t {
  kUnify = 0,     // unification steps, trail writes, unwind during unify
  kClauseLookup,  // call dispatch + clause-head instantiation
  kBacktrack,     // choice points, restores, untrail, frame unwinding
  kBuiltin,       // builtin execution (arith, compare, findall copy, ...)
  kUserWork,      // heap/goal-node construction for user code
  kParcall,       // parcall frame + slot management, completion, teardown
  kMarker,        // input/end marker allocation and crossings
  kPublish,       // or-parallel: sharing sessions, node publication, copying
  kSched,         // fetch/steal of parallel work
  kIdle,          // scheduler idle ticks + waiting for a sharing partner
  kOptCheck,      // runtime checks that guard LPCO/SHALLOW/PDO/LAO triggers
  kTableLookup,   // tabling: subgoal canonicalization + table probes and
                  // answer consumption (work: a sequential tabled engine
                  // pays it too)
  kTableInsert,   // tabling: answer dedup + template capture, table setup
  kTableSuspend,  // tabling: consumer/generator suspension bookkeeping
  kTableResume,   // tabling: fixpoint re-runs and consumer resumption
  kCgeCheck,      // runtime independence checks of conditional graph
                  // expressions (ground/1, indep/2 guarding a '&' the
                  // annotator could not prove independent statically)
  kCount,
};

inline constexpr std::size_t kNumCostCats =
    static_cast<std::size_t>(CostCat::kCount);

// Short stable identifier ("unify", "parcall", ...) used in JSON exports,
// Prometheus labels and collapsed stacks. Returns "?" for out-of-range.
const char* cost_cat_name(CostCat cat);

// True for the categories that constitute parallel overhead (kParcall,
// kMarker, kPublish, kSched, kOptCheck) — i.e. charges an ideal sequential
// execution would not pay. kIdle is neither work nor overhead: the speedup
// decomposition reports it separately.
bool cost_cat_is_overhead(CostCat cat);

struct CostModel {
  using C = std::uint64_t;

  // Core resolution machinery (paid by sequential and parallel engines).
  C call_dispatch = 6;     // per user-predicate call (lookup + dispatch)
  C builtin = 4;           // per builtin execution (plus op-specific work)
  C unify_step = 2;        // per cell pair visited
  C heap_cell = 1;         // per heap cell allocated
  C goal_node = 1;         // per continuation node
  C choicepoint = 12;      // allocate a choice point
  C cp_restore = 8;        // restore state from a choice point
  C trail_entry = 1;
  C untrail_entry = 1;
  C backtrack_frame = 3;   // walk/kill one frame during unwinding

  // And-parallel machinery.
  C parcall_frame = 20;    // allocate a parcall frame
  C parcall_slot = 6;      // per slot in a parcall frame
  C input_marker = 16;     // allocate input marker ("the expense incurred
                           // in allocating these markers is considerable",
                           // paper §4.1)
  C end_marker = 16;       // allocate end marker
  C marker_bt = 8;         // cross a marker during backtracking
  C slot_complete = 4;     // completion bookkeeping + pf counter update
  C pf_scan_slot = 3;      // outside backtracking: scan one slot descriptor
  C pf_teardown = 60;      // dismantle one parcall frame during unwinding
                           // (navigate its slot list, markers and section
                           // links — the per-nesting-level traversal LPCO's
                           // flattening eliminates, paper §3.1)
  C fetch = 4;             // take work from own pool
  C steal = 12;            // take work from a remote pool
  C idle_tick = 8;         // one scheduler idle loop iteration
  C kill_slot = 8;         // cancel a sibling slot on parcall failure

  // Optimization runtime checks (nonzero: the paper stresses the benefit
  // must be weighed against the cost of applying the optimization; LAO's
  // 1-agent slowdown in Table 3 comes from exactly this).
  C opt_check = 2;
  // LAO's in-place refresh of the reused choice point (MUSE must update
  // the shared node under its lock; nearly as dear as a fresh frame).
  C lao_update = 10;
  // Dispatching a CGE guard (ground/1, indep/2); the groundness /
  // disjointness walk itself additionally charges cge_check_cell per cell
  // visited — the run-time price of compile-time undecidability.
  C cge_check = 4;
  C cge_check_cell = 1;

  // Or-parallel machinery.
  C copy_cell = 1;          // MUSE stack copying, per word
  C share_session = 40;     // fixed cost of a sharing session
  C public_take = 6;        // grab an alternative from a public node
  C tree_descent = 4;       // scan one public node looking for work
  C public_make = 8;        // convert a private CP to public

  // Tabling (SLG) machinery. Lookup covers canonicalization plus the
  // completed/local table probes of one tabled call; insert covers answer
  // dedup and the per-cell template capture (charged per cell at
  // heap_cell); suspend/resume are the scheduling costs of incomplete
  // tables (consumer exhaustion, generator fixpoint re-runs).
  C table_lookup = 8;
  C table_insert = 10;
  C table_suspend = 6;
  C table_resume = 12;

  // Returns the default model.
  static CostModel standard();
  // A model with every cost = 1 (for tests that want pure step counts).
  static CostModel unit();
};

}  // namespace ace
