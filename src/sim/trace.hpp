// Execution tracing for the virtual-time simulator.
//
// When a Tracer is attached to a machine, every scheduling-relevant event
// (slot execution spans, parcall creation/flattening, steals, outside
// backtracking, sharing sessions) is recorded with its agent and virtual
// timestamp. The recording can be rendered as an ASCII timeline (one lane
// per agent) or dumped as CSV for external plotting.
//
// Tracing is entirely optional: a null tracer pointer costs one branch per
// event site.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ace {

enum class TraceEvent : std::uint8_t {
  SlotStart,     // a = pf, b = slot
  SlotComplete,  // a = pf, b = slot
  SlotFail,      // a = pf, b = slot
  ParcallCreate, // a = pf, b = #slots
  LpcoMerge,     // a = pf, b = #new slots
  Steal,         // a = victim agent, b = pf
  OutsideBt,     // a = pf
  Share,         // a = victim agent, b = node id
  Solution,      // -
  LaoReuse,      // a = ctrl index of the reused choice point
  ShallowSkip,   // a = pf, b = slot (both boundary markers elided)
  PdoMerge,      // a = pf, b = slot
  CancelLand,    // a = StopCause (recorded by the obs layer; unused in sim)
};

struct TraceRecord {
  std::uint64_t time;
  unsigned agent;
  TraceEvent event;
  std::uint64_t a;
  std::uint64_t b;
};

class Tracer {
 public:
  void record(std::uint64_t time, unsigned agent, TraceEvent ev,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back({time, agent, ev, a, b});
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }
  std::vector<TraceRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  // One CSV line per record: time,agent,event,a,b
  std::string to_csv() const;

  // ASCII timeline: one lane per agent, `width` columns spanning
  // [0, makespan]. Each column shows the dominant activity in its time
  // bucket: '#' executing a slot, '.' idle, 'S' steal, 'B' outside
  // backtracking, 'C' sharing/copying, '*' solution.
  std::string timeline(unsigned num_agents, unsigned width = 72) const;

  static const char* event_name(TraceEvent ev);

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> records_;
};

}  // namespace ace
