// Deterministic virtual-time driver.
//
// Steps the worker with the minimum virtual clock (ties broken by agent
// id). Because every state transition is performed by some worker's step at
// its own clock, and observers only react to state they see when stepped,
// the interleaving — and therefore every counter and clock — is a pure
// function of (program, options, agent count). This is the measurement
// substrate substituting for the paper's 10-processor Sequent Symmetry
// (DESIGN.md §1).
#pragma once

#include <vector>

#include "engine/worker.hpp"

namespace ace {

class VirtualDriver {
 public:
  // Steps until the top-level worker (workers[0]) reports a Solution or
  // Exhausted. Throws AceError on stall (every worker idle for
  // `stall_limit` consecutive rounds). If `cancel` is non-null the token
  // is also polled between steps (the same stop protocol as the
  // real-thread driver): a stop throws QueryStopped even while every
  // agent sits idle.
  StepOutcome run_until_event(const std::vector<Worker*>& workers,
                              std::uint64_t stall_limit = 1u << 22,
                              CancelToken* cancel = nullptr);

  // Virtual makespan: the top-level worker's clock.
  static std::uint64_t makespan(const std::vector<Worker*>& workers) {
    return workers[0]->clock_;
  }
};

}  // namespace ace
