#include "sim/cost_model.hpp"

namespace ace {

// Calibration notes.
//
// The sequential engine pays: call_dispatch, builtin, unify_step, heap_cell,
// goal_node, choicepoint/cp_restore, trail/untrail, backtrack_frame.
//
// The and-parallel engine additionally pays parcall_frame + slots, markers,
// fetch/steal/idle, slot bookkeeping and marker crossings on backtracking.
// On benchmarks with parallel calls every few resolutions (matrix, map,
// pderiv) the marker+parcall charges amount to ~10-25% of the sequential
// work at 1 agent, matching the unoptimized overhead the paper reports
// (Section 2.3). SHALLOW removes the marker charges for deterministic
// subgoals (most subgoals in the Table 4 benchmarks), PDO removes them for
// sequentially adjacent subgoals, and LPCO removes nested parcall frames
// plus the marker crossings / pf scans during backward execution.
CostModel CostModel::standard() { return CostModel{}; }

const char* cost_cat_name(CostCat cat) {
  switch (cat) {
    case CostCat::kUnify: return "unify";
    case CostCat::kClauseLookup: return "clause_lookup";
    case CostCat::kBacktrack: return "backtrack";
    case CostCat::kBuiltin: return "builtin";
    case CostCat::kUserWork: return "user_work";
    case CostCat::kParcall: return "parcall";
    case CostCat::kMarker: return "marker";
    case CostCat::kPublish: return "publish";
    case CostCat::kSched: return "sched";
    case CostCat::kIdle: return "idle";
    case CostCat::kOptCheck: return "opt_check";
    case CostCat::kTableLookup: return "table_lookup";
    case CostCat::kTableInsert: return "table_insert";
    case CostCat::kTableSuspend: return "table_suspend";
    case CostCat::kTableResume: return "table_resume";
    case CostCat::kCgeCheck: return "cge_check";
    case CostCat::kCount: break;
  }
  return "?";
}

bool cost_cat_is_overhead(CostCat cat) {
  switch (cat) {
    case CostCat::kParcall:
    case CostCat::kMarker:
    case CostCat::kPublish:
    case CostCat::kSched:
    case CostCat::kOptCheck:
    // Table lookups/inserts are *work* (a sequential tabled engine pays
    // them); only the scheduling half of tabling is overhead.
    case CostCat::kTableSuspend:
    case CostCat::kTableResume:
    // CGE guards exist only to enable parallelism: a sequential execution
    // of the unannotated program never runs them.
    case CostCat::kCgeCheck:
      return true;
    default:
      return false;
  }
}

CostModel CostModel::unit() {
  CostModel m;
  m.call_dispatch = 1;
  m.builtin = 1;
  m.unify_step = 1;
  m.heap_cell = 1;
  m.goal_node = 1;
  m.choicepoint = 1;
  m.cp_restore = 1;
  m.trail_entry = 1;
  m.untrail_entry = 1;
  m.backtrack_frame = 1;
  m.parcall_frame = 1;
  m.parcall_slot = 1;
  m.input_marker = 1;
  m.end_marker = 1;
  m.marker_bt = 1;
  m.slot_complete = 1;
  m.pf_scan_slot = 1;
  m.pf_teardown = 1;
  m.fetch = 1;
  m.steal = 1;
  m.idle_tick = 1;
  m.kill_slot = 1;
  m.opt_check = 1;
  m.lao_update = 1;
  m.cge_check = 1;
  m.cge_check_cell = 1;
  m.copy_cell = 1;
  m.share_session = 1;
  m.public_take = 1;
  m.tree_descent = 1;
  m.public_make = 1;
  m.table_lookup = 1;
  m.table_insert = 1;
  m.table_suspend = 1;
  m.table_resume = 1;
  return m;
}

}  // namespace ace
