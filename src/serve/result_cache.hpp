// ResultCache: the canonicalized whole-query answer cache of the serving
// layer.
//
// Where tab::TableSpace memoizes *subgoals* (per-predicate, under SLG
// tabling), the ResultCache memoizes *entire served queries*: the key is
// the query's canonical template form (term/canon.hpp — variant-invariant
// structure plus the variable-name trailer solutions render with) joined
// with the engine identity and result-shaping budget fields, and the
// value is a completed QueryResult. A hit skips admission-to-render
// engine work entirely.
//
// Correctness contract: a cached answer is never served across an
// invalidating assert/retract ("zero stale results"). Three mechanisms
// compose, all built on the db::Database change-hook + generation
// machinery the tabling subsystem introduced (src/tab/dep.hpp):
//
//   1. Precise invalidation. Every entry records the predicates the run
//      consulted, with the index generation observed (including
//      observed-undefined predicates, kDepUndefined). The cache registers
//      a Database change hook and drops exactly the entries derived from
//      a mutated predicate.
//   2. Insert double-check. The service samples Database::epoch() before
//      the engine runs; insert() re-reads it before *and* after
//      publishing and discards the entry when any write intervened — an
//      entry computed across a concurrent mutation is never left
//      installed (engine/tabling.cpp's publication double-check).
//   3. Hit-time validation. Hooks fire after the writer lock releases, so
//      there is a window where a new clause set is readable while the
//      hook has not yet dropped dependent entries. lookup() therefore
//      re-verifies every recorded generation against the live database
//      (Database::pred_generation) and treats any mismatch as a miss,
//      dropping the entry. A hit is thus indistinguishable from a fresh
//      run against the current database.
//
// Locking: the cache's own mutex guards the map/LRU/reverse index; the
// hit-time generation checks call back into the Database *outside* that
// mutex (no lock nesting in either direction — the change hook also runs
// with no Database lock held). Counters are relaxed atomics so metrics
// snapshots never contend with queries.
//
// Eviction: bounded by entry count (ServiceOptions::result_cache_capacity)
// with LRU order maintained on every hit; resident bytes are tracked as a
// gauge for the metrics surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/result.hpp"
#include "tab/dep.hpp"

namespace ace {

class Database;

namespace serve {

// One immutable cached query: the completed QueryResult (with per-response
// fields like id/latency zeroed by the service before insert) plus the
// dependency record that guards it.
struct CachedResult {
  std::string key;
  QueryResult result;
  std::vector<tab::TableDep> deps;
};

class ResultCache {
 public:
  // `capacity` is the maximum entry count (LRU beyond it). When `db` is
  // non-null the cache registers a change hook and invalidates affected
  // entries on every assert/retract; the hook is removed on destruction.
  // The cache must not outlive the database.
  ResultCache(Database* db, std::size_t capacity);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Validated lookup: returns the entry only when every recorded dep
  // generation still matches the live database (mechanism 3 above);
  // stale entries are dropped and counted as a miss + invalidation.
  std::shared_ptr<const CachedResult> lookup(const std::string& key);

  // Publishes an entry derived while the database sat at `epoch_before`
  // (Database::epoch() sampled before the engine ran). Returns false —
  // and installs nothing durable — when any write intervened.
  bool insert(std::shared_ptr<const CachedResult> entry,
              std::uint64_t epoch_before);

  // A request the service chose not to cache (effectful per the purity
  // analysis, CacheMode::Bypass, unparseable, or an uncacheable outcome).
  void note_bypass() { bypasses_.fetch_add(1, std::memory_order_relaxed); }

  // Drops every entry whose deps include sym/arity. Called by the
  // database change hook; also usable directly by tests.
  void invalidate_pred(std::uint32_t sym, unsigned arity);

  // Drops everything (tests / explicit reset).
  void clear();

  std::size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t invalidations = 0;  // entries dropped by pred changes
    std::uint64_t evictions = 0;      // entries dropped by LRU pressure
    std::uint64_t bypasses = 0;       // requests served around the cache
    std::uint64_t entries = 0;        // current entry count (gauge)
    std::uint64_t bytes = 0;          // approx. resident bytes (gauge)
  };
  Stats stats() const;

  // Approximate resident size of one entry (key + solutions + output +
  // deps). A sizing gauge, not an allocator audit.
  static std::uint64_t approx_bytes(const CachedResult& e);

 private:
  struct Slot {
    std::shared_ptr<const CachedResult> entry;
    std::list<std::string>::iterator lru;  // position in lru_
  };

  // Removes `key` if present; returns true when an entry was dropped.
  // Caller classifies the drop (invalidation vs eviction). mu_ held.
  bool erase_locked(const std::string& key);

  Database* db_ = nullptr;
  std::uint64_t hook_id_ = 0;
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> entries_;
  std::list<std::string> lru_;  // front = most recently used
  // Reverse dependency index: pred -> keys of entries derived from it.
  std::unordered_map<std::uint64_t, std::vector<std::string>> by_dep_;
  std::uint64_t bytes_ = 0;  // Σ approx_bytes over entries_; guarded by mu_

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypasses_{0};
};

}  // namespace serve
}  // namespace ace
