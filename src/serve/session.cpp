// EngineSession implementation: pre-warmed engine construction, the
// between-queries reset, and the three per-mode drive loops (one
// implementation of each loop; ace::Engine delegates here).
#include "serve/session.hpp"

#include <algorithm>

#include "analysis/static_facts.hpp"
#include "andp/context.hpp"
#include "obs/recorder.hpp"
#include "orp/shared_tree.hpp"
#include "runtime/thread_driver.hpp"
#include "sim/virtual_driver.hpp"
#include "support/strutil.hpp"
#include "tab/table_space.hpp"

namespace ace {

EngineSession::EngineSession(Database& db, const Builtins& builtins,
                             EngineConfig cfg, const CostModel& costs)
    : db_(db), builtins_(builtins), cfg_(cfg), costs_(costs) {
  if (cfg_.mode == EngineMode::Seq) cfg_.agents = 1;
  ACE_CHECK(cfg_.agents >= 1);

  // Attach load-time analysis facts before any worker runs. Idempotent, so
  // pooled sessions sharing one database just refresh the same bits; runs
  // without the flag never touch (nor read) them.
  if (cfg_.static_facts) compute_static_facts(db);

  WorkerOptions wopts;
  wopts.parallel_and = cfg_.mode == EngineMode::Andp;
  wopts.lpco = cfg_.lpco;
  wopts.shallow = cfg_.shallow;
  wopts.pdo = cfg_.pdo;
  wopts.lao = cfg_.lao;
  wopts.static_facts = cfg_.static_facts;
  wopts.attrib = cfg_.attrib;
  wopts.occurs_check = cfg_.occurs_check;
  wopts.tabling = cfg_.tabling;
  wopts.resolution_limit = cfg_.resolution_limit;

  if (cfg_.mode == EngineMode::Orp) {
    // MUSE: one private single-segment store per agent.
    orp_ = std::make_unique<OrpContext>();
    for (unsigned a = 0; a < cfg_.agents; ++a) {
      stores_.push_back(std::make_unique<Store>(1));
      owned_.push_back(std::make_unique<Worker>(a, *stores_.back(), db_,
                                                builtins_, costs_, wopts,
                                                io_));
      workers_.push_back(owned_.back().get());
    }
    for (Worker* w : workers_) {
      w->orp_ = orp_.get();
      w->group_ = &workers_;
      w->seg_ = 0;  // each worker owns segment 0 of its private store
      w->cancel_ = &token_;
    }
  } else {
    // Seq/Andp: one shared store, one heap segment per agent.
    stores_.push_back(std::make_unique<Store>(cfg_.agents));
    if (cfg_.mode == EngineMode::Andp) {
      par_ = std::make_unique<ParContext>(cfg_.agents);
    }
    for (unsigned a = 0; a < cfg_.agents; ++a) {
      owned_.push_back(std::make_unique<Worker>(a, *stores_[0], db_,
                                                builtins_, costs_, wopts,
                                                io_));
      workers_.push_back(owned_.back().get());
    }
    for (Worker* w : workers_) {
      if (par_ != nullptr) w->par_ = par_.get();
      w->group_ = &workers_;
      w->cancel_ = &token_;
    }
  }

  // Private cross-query memo cache; the serving layer swaps in a shared
  // one via set_table_space. Constructed even for programs without table
  // directives — a worker only consults it behind the has_tabled() branch.
  if (cfg_.tabling) {
    set_table_space(std::make_shared<tab::TableSpace>(&db_));
  }
}

EngineSession::~EngineSession() = default;

void EngineSession::set_tracer(Tracer* tracer) {
  for (Worker* w : workers_) w->tracer_ = tracer;
}

void EngineSession::set_recorder(obs::Recorder* recorder) {
  if (recorder == recorder_) return;  // idempotent re-attach
  recorder_ = recorder;
  session_track_ = nullptr;
  agent_tracks_.clear();
  if (recorder_ == nullptr) {
    for (Worker* w : workers_) w->obs_ = nullptr;
    return;
  }
  session_track_ = recorder_->create_track(
      strf("session [%s]", cfg_.describe().c_str()));
  agent_tracks_.reserve(workers_.size());
  for (std::size_t a = 0; a < workers_.size(); ++a) {
    agent_tracks_.push_back(recorder_->create_track(strf("agent %zu", a)));
    workers_[a]->obs_ = agent_tracks_.back();
  }
}

void EngineSession::set_table_space(std::shared_ptr<tab::TableSpace> space) {
  tabsp_ = std::move(space);
  for (Worker* w : workers_) w->tabsp_ = tabsp_.get();
}

void EngineSession::reset() {
  for (Worker* w : workers_) w->reset_for_reuse();
  if (par_ != nullptr) par_->reset();
  if (orp_ != nullptr) orp_->reset();
  io_.clear();
}

void EngineSession::absorb_stop(const QueryStopped& stopped,
                                SolveResult& result) {
  // The resolution budget keeps its historical contract: solve() throws.
  if (stopped.cause() == StopCause::ResolutionLimit) throw stopped;
  if (session_track_ != nullptr) {
    session_track_->note(obs::EventKind::CancelLand,
                         static_cast<std::uint64_t>(stopped.cause()));
  }
  result.stop = stopped.cause();
}

void EngineSession::finalize(SolveResult& result) {
  if (cfg_.mode == EngineMode::Orp) {
    // Makespan: the last clock that did useful work; use the max clock.
    std::uint64_t makespan = 0;
    for (Worker* w : workers_) makespan = std::max(makespan, w->clock_);
    result.virtual_time = makespan;
  } else {
    result.virtual_time = VirtualDriver::makespan(workers_);
  }
  for (Worker* w : workers_) {
    result.stats.add(w->stats_);
    result.per_agent.push_back(w->stats_);
    result.agent_clocks.push_back(w->clock_);
    result.attrib.add(w->attrib_);
    result.per_agent_attrib.push_back(w->attrib_);
    result.per_agent_preds.push_back(cfg_.attrib ? w->pred_attrib_rows()
                                                 : std::vector<PredAttrib>{});
  }
  result.savings = schema_savings(result.stats, costs_);
  result.output = io_.snapshot();

  // Merge per-worker query-dependency records (result-cache runs only).
  if (workers_[0]->deps_on_) {
    result.deps_tracked = true;
    std::unordered_set<std::uint64_t> seen;
    for (Worker* w : workers_) {
      result.deps_tabled |= w->deps_track_.tabled;
      for (const tab::TableDep& d : w->deps_track_.deps) {
        if (seen.insert(tab::dep_key(d.sym, d.arity)).second) {
          result.query_deps.push_back(d);
        }
      }
    }
  }
}

SolveResult EngineSession::run(const std::string& query_text,
                               const QueryBudget& budget,
                               CancelToken* external, std::uint64_t qid,
                               bool collect_deps) {
  // Reset first: this is what guarantees a cancelled/failed previous query
  // can never wedge the reused engine.
  reset();

  // reset_for_reuse() disarmed every tracker; re-arm when the serving
  // layer wants this run's predicate dependencies (result-cache insert).
  if (collect_deps) {
    for (Worker* w : workers_) w->deps_on_ = true;
  }

  // Stamp the query id onto every track before any worker runs; the driver
  // threads are created after this, so the store is ordered-before their
  // first note(). Span RAII guarantees matched Begin/End even when a parse
  // error or a rethrown resolution-limit stop unwinds through run().
  if (session_track_ != nullptr) session_track_->set_query(qid);
  for (obs::Track* t : agent_tracks_) t->set_query(qid);
  obs::Span query_span(session_track_, qid, obs::EventKind::QueryBegin,
                       obs::EventKind::QueryEnd);

  CancelToken* tok = external != nullptr ? external : &token_;
  if (external == nullptr) token_.reset();
  if (budget.deadline.count() > 0) tok->arm_deadline(budget.deadline);
  for (Worker* w : workers_) {
    w->cancel_ = tok;
    w->opts_.resolution_limit = budget.resolution_limit != 0
                                    ? budget.resolution_limit
                                    : cfg_.resolution_limit;
  }

  // Parse after arming the token so even parse-heavy queries obey external
  // cancels (the parse itself is not interruptible, but it is quick).
  // NOTE: `query` must outlive the drive loops below — workers keep a
  // pointer to the template (Worker::query_) for solution rendering.
  obs::Span parse_span(session_track_, qid, obs::EventKind::ParseBegin,
                       obs::EventKind::ParseEnd);
  TermTemplate query = parse_term_text(db_.syms(), query_text);
  workers_[0]->load_query(query);
  parse_span.close(query_text.size());
  const auto wall_parse_done = std::chrono::steady_clock::now();

  SolveResult result;
  {
    obs::Span run_span(session_track_, qid, obs::EventKind::RunBegin,
                       obs::EventKind::RunEnd);
    switch (cfg_.mode) {
      case EngineMode::Seq:
        result = run_seq(budget, tok);
        break;
      case EngineMode::Andp:
        result = run_andp(budget, tok);
        break;
      case EngineMode::Orp:
        result = run_orp(budget, tok);
        break;
    }
    run_span.close(result.solutions.size(), result.stats.resolutions);
  }
  result.wall_parse_done = wall_parse_done;
  result.wall_run_done = std::chrono::steady_clock::now();
  ++queries_run_;
  query_span.close(result.solutions.size(),
                   static_cast<std::uint64_t>(result.stop));
  return result;
}

SolveResult EngineSession::run_seq(const QueryBudget& budget,
                                   CancelToken* tok) {
  (void)tok;  // the worker polls the token inside step()
  Worker* w = workers_[0];
  SolveResult result;
  try {
    while (result.solutions.size() < budget.max_solutions) {
      StepOutcome out = w->step();
      if (out == StepOutcome::Solution) {
        result.solutions.push_back(w->solution_string());
        if (result.solutions.size() >= budget.max_solutions) break;
        w->request_next_solution();
      } else if (out == StepOutcome::Exhausted) {
        break;
      }
    }
  } catch (const QueryStopped& stopped) {
    absorb_stop(stopped, result);
  }
  finalize(result);
  return result;
}

SolveResult EngineSession::run_andp(const QueryBudget& budget,
                                    CancelToken* tok) {
  SolveResult result;
  try {
    if (cfg_.use_threads) {
      ThreadDriver driver;
      driver.run(workers_, budget.max_solutions, result.solutions, tok);
    } else {
      VirtualDriver driver;
      while (result.solutions.size() < budget.max_solutions) {
        StepOutcome out = driver.run_until_event(workers_, 1u << 22, tok);
        if (out == StepOutcome::Solution) {
          result.solutions.push_back(workers_[0]->solution_string());
          if (result.solutions.size() >= budget.max_solutions) break;
          workers_[0]->request_next_solution();
        } else {
          break;
        }
      }
    }
  } catch (const QueryStopped& stopped) {
    absorb_stop(stopped, result);
  }
  finalize(result);
  return result;
}

SolveResult EngineSession::run_orp(const QueryBudget& budget,
                                   CancelToken* tok) {
  // Every worker can land on a solution; give them all the query-variable
  // bookkeeping (stack copying preserves offsets, so the addresses match).
  for (Worker* w : workers_) {
    w->query_ = workers_[0]->query_;
    w->query_vars_ = workers_[0]->query_vars_;
  }

  SolveResult result;
  std::uint64_t idle_streak = 0;
  std::uint64_t polls = 0;
  const std::uint64_t stall_limit = 1u << 22;
  try {
    while (result.solutions.size() < budget.max_solutions) {
      if (tok != nullptr) tok->raise_if_stopped((++polls & 63u) == 0);
      // Exhausted when every worker is idle and no public alternatives
      // remain.
      bool all_idle =
          std::all_of(workers_.begin(), workers_.end(),
                      [](Worker* w) { return w->is_idle(); });
      if (all_idle) {
        // has_public_work() reads candidate buckets; pin a snapshot for
        // the probe so a concurrently served assert/retract cannot free
        // the index versions it walks (the session thread runs between
        // worker steps here, so no worker pin covers it).
        db::Snapshot snap(db_);
        if (!orp_->has_public_work()) break;
      }

      Worker* next = nullptr;
      for (Worker* w : workers_) {
        if (next == nullptr || w->clock_ < next->clock_) next = w;
      }
      StepOutcome out = next->step();
      if (out == StepOutcome::Solution) {
        result.solutions.push_back(next->solution_string());
        if (result.solutions.size() >= budget.max_solutions) break;
        next->request_next_solution();
        idle_streak = 0;
      } else if (out == StepOutcome::Idle) {
        if (++idle_streak > stall_limit) {
          throw AceError("or-parallel driver stall");
        }
      } else {
        idle_streak = 0;
      }
    }
  } catch (const QueryStopped& stopped) {
    absorb_stop(stopped, result);
  }
  finalize(result);
  return result;
}

}  // namespace ace
