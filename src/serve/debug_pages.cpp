#include "serve/debug_pages.hpp"

#include <algorithm>
#include <chrono>

#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "serve/service.hpp"
#include "support/strutil.hpp"

namespace ace {

namespace {

std::string us(std::uint64_t ns) {
  return strf("%.1fus", double(ns) / 1000.0);
}

}  // namespace

std::string render_statusz(const QueryService& service) {
  const ServeMetricsSnapshot s = service.metrics_snapshot();
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - service.started_at());
  std::string out = "ace_serve status\n================\n";
  out += strf("uptime_ms            %lld\n", (long long)uptime.count());
  out += strf("shards               %u\n", service.num_shards());
  out += strf("dispatch_threads     %llu\n",
              (unsigned long long)s.dispatch_threads);
  out += "\n[queries]\n";
  out += strf("submitted            %llu\n", (unsigned long long)s.submitted);
  out += strf("admitted             %llu\n", (unsigned long long)s.admitted);
  out += strf("rejected             %llu\n", (unsigned long long)s.rejected);
  out += strf("completed            %llu\n", (unsigned long long)s.completed);
  out += strf("cancelled            %llu\n", (unsigned long long)s.cancelled);
  out += strf("deadline_expired     %llu\n",
              (unsigned long long)s.deadline_expired);
  out += strf("errors               %llu\n", (unsigned long long)s.errors);
  out += strf("active               %llu\n",
              (unsigned long long)s.active_queries);
  out += strf("inflight             %llu\n", (unsigned long long)s.inflight);
  out += "\n[queue]\n";
  out += strf("depth                %llu\n",
              (unsigned long long)s.queue_depth);
  out += strf("peak                 %llu\n", (unsigned long long)s.queue_peak);
  out += strf("p50_wait_us          %llu\n",
              (unsigned long long)s.queue_wait.percentile_us(0.50));
  out += strf("p99_wait_us          %llu\n",
              (unsigned long long)s.queue_wait.percentile_us(0.99));
  out += "\n[latency]\n";
  out += strf("p50_us               %llu\n",
              (unsigned long long)s.latency.percentile_us(0.50));
  out += strf("p99_us               %llu\n",
              (unsigned long long)s.latency.percentile_us(0.99));
  out += strf("max_us               %llu\n",
              (unsigned long long)s.latency.max_us);
  out += "\n[engine pool]\n";
  out += strf("idle                 %llu\n", (unsigned long long)s.pool_idle);
  out += strf("capacity             %llu\n",
              (unsigned long long)s.pool_capacity);
  out += strf("hits                 %llu\n", (unsigned long long)s.pool_hits);
  out += strf("misses               %llu\n",
              (unsigned long long)s.pool_misses);
  out += strf("hit_rate             %.3f\n", s.pool_hit_rate());
  out += "\n[database]\n";
  out += strf("epoch                %llu\n", (unsigned long long)s.db_epoch);
  out += strf("epoch_lag            %llu\n",
              (unsigned long long)s.db_epoch_lag);
  out += strf("limbo_depth          %llu\n",
              (unsigned long long)s.db_limbo_depth);
  out += strf("pinned_snapshots     %llu\n",
              (unsigned long long)s.db_pinned_snapshots);
  out += strf("index_versions       %llu\n",
              (unsigned long long)s.db_index_versions);
  out += strf("oldest_pin_age       %s\n", us(s.db_oldest_pin_age_ns).c_str());
  out += strf("pin_age_highwater    %s\n", us(s.db_pin_age_hw_ns).c_str());
  out += "\n[table cache]\n";
  out += strf("entries              %llu\n",
              (unsigned long long)s.table_entries);
  out += strf("bytes                %llu\n",
              (unsigned long long)s.table_bytes);
  out += strf("hits                 %llu\n", (unsigned long long)s.table_hits);
  out += strf("misses               %llu\n",
              (unsigned long long)s.table_misses);
  out += strf("invalidations        %llu\n",
              (unsigned long long)s.table_invalidations);
  if (s.cache_present) {
    out += "\n[result cache]\n";
    out += strf("entries              %llu\n",
                (unsigned long long)s.cache_entries);
    out += strf("capacity             %llu\n",
                (unsigned long long)s.cache_capacity);
    out += strf("bytes                %llu\n",
                (unsigned long long)s.cache_bytes);
    out += strf("hits                 %llu\n",
                (unsigned long long)s.cache_hits);
    out += strf("misses               %llu\n",
                (unsigned long long)s.cache_misses);
    out += strf("hit_rate             %.3f\n", s.cache_hit_rate());
    out += strf("inserts              %llu\n",
                (unsigned long long)s.cache_inserts);
    out += strf("invalidations        %llu\n",
                (unsigned long long)s.cache_invalidations);
    out += strf("evictions            %llu\n",
                (unsigned long long)s.cache_evictions);
    out += strf("bypasses             %llu\n",
                (unsigned long long)s.cache_bypasses);
  }
  if (s.shards.size() > 1) {
    out += "\n[shards]\n";
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const ServeMetricsSnapshot::ShardSnapshot& sh = s.shards[i];
      out += strf(
          "shard %-2llu  submitted %llu  completed %llu  depth %llu  "
          "peak %llu  pool_idle %llu  pool_hits %llu  pool_misses %llu\n",
          (unsigned long long)i, (unsigned long long)sh.submitted,
          (unsigned long long)sh.completed,
          (unsigned long long)sh.queue_depth,
          (unsigned long long)sh.queue_peak,
          (unsigned long long)sh.pool_idle,
          (unsigned long long)sh.pool_hits,
          (unsigned long long)sh.pool_misses);
    }
  }
  out += "\n[watchdog]\n";
  const auto budget = service.options().obs.watchdog_budget;
  out += strf("budget_ms            %lld\n",
              (long long)(budget.count() / 1000000));
  out += strf("fired                %llu\n",
              (unsigned long long)s.watchdog_fired);
  return out;
}

std::string render_tracez(const QueryService& service) {
  std::vector<RecentQuery> recent = service.recent_queries();
  std::string out = strf("recent queries: %zu (newest first)\n",
                         recent.size());
  // Newest last in the ring; print newest first.
  for (auto it = recent.rbegin(); it != recent.rend(); ++it) {
    const RecentQuery& q = *it;
    out += strf("qid %llu  %s  wall %lldus  vt %llu  %% %s\n",
                (unsigned long long)q.id, query_outcome_name(q.outcome),
                (long long)q.latency.count(),
                (unsigned long long)q.virtual_time, q.query.c_str());
    if (q.phases.present) {
      out += strf(
          "  phases: queue %s | acquire %s | parse %s | run %s | render %s\n",
          us(q.phases.queue_ns).c_str(), us(q.phases.acquire_ns).c_str(),
          us(q.phases.parse_ns).c_str(), us(q.phases.run_ns).c_str(),
          us(q.phases.render_ns).c_str());
    }
  }
  // Recorder-level detail (per-track spans) when tracing is attached.
  if (service.recorder() != nullptr) {
    std::vector<obs::QueryTimeline> tls =
        obs::extract_timelines(service.recorder()->snapshot());
    out += "\n";
    out += obs::render_timelines_text(tls, QueryService::kRecentCapacity);
  }
  return out;
}

std::string render_flamez(const QueryService& service) {
  // Collapsed-stack attribution: one "q<id>;<category> <charge>" line per
  // (recent query, nonzero category) — flamegraph.pl-compatible, with the
  // query id as the root frame.
  std::vector<RecentQuery> recent = service.recent_queries();
  std::string out;
  for (const RecentQuery& q : recent) {
    for (std::size_t i = 0; i < kNumCostCats; ++i) {
      if (q.attrib.at[i] == 0) continue;
      out += strf("q%llu;%s %llu\n", (unsigned long long)q.id,
                  cost_cat_name(static_cast<CostCat>(i)),
                  (unsigned long long)q.attrib.at[i]);
    }
  }
  if (out.empty()) {
    out = "# no attribution recorded yet (run queries first)\n";
  }
  return out;
}

}  // namespace ace
