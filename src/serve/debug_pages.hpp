// The /debug introspection pages served next to /metrics:
//
//   /statusz  one-screen service state: pool + queue + db + table-cache
//             gauges, watchdog counters, uptime.
//   /tracez   recent query phase timelines (from the service's bounded
//             RecentQuery ring; recorder detail when one is attached).
//   /flamez   collapsed-stack attribution ("qid;category charge" lines)
//             for the last N queries — feed straight into a flamegraph
//             script, or read the totals by eye.
//
// All renderers are read-only: metrics snapshots, bounded ring copies and
// lock-free recorder snapshots — safe to call while the service is under
// load. Register with MetricsHttpServer::set_handler().
#pragma once

#include <string>

namespace ace {

class QueryService;

std::string render_statusz(const QueryService& service);
std::string render_tracez(const QueryService& service);
std::string render_flamez(const QueryService& service);

}  // namespace ace
