// QueryRequest: one query submission to a QueryService, plus the fluent
// builder the tools and tests construct it with.
//
// Redesigned with the sharded/cached serving topology: a request now
// carries a routing key (`tenant`) and a cache policy (`cache_mode`) next
// to the engine/budget fields. Requests stay plain aggregates — existing
// brace-init call sites keep compiling — while QueryRequestBuilder gives
// call sites that only set a few fields a named, order-independent form
// that will not churn when the struct grows again.
#pragma once

#include <chrono>
#include <climits>
#include <cstdint>
#include <string>
#include <utility>

#include "engine/engine.hpp"

namespace ace {

// Per-request result-cache policy (see src/serve/result_cache.hpp).
enum class CacheMode : std::uint8_t {
  // Serve from / install into the result cache when the service has one
  // and the purity analysis clears the query of effects. This is the
  // default: effectful queries are detected and bypassed automatically.
  Auto,
  // Never consult or populate the cache for this request (clients that
  // need a fresh engine run, e.g. when measuring).
  Bypass,
};

struct QueryRequest {
  std::string query;  // '.'-terminated goal text
  EngineConfig engine;
  // Shard routing key: requests with equal tenants land on the same shard
  // (queue + engine pool), isolating tenants from each other's bursts.
  // Empty = route by the query text itself.
  std::string tenant;
  CacheMode cache_mode = CacheMode::Auto;
  // Zero = no deadline (or the service default, if one is configured).
  std::chrono::nanoseconds deadline{0};
  std::size_t max_solutions = SIZE_MAX;
  // Overrides ServiceOptions::default_resolution_limit when nonzero.
  std::uint64_t resolution_limit = 0;
};

// Fluent construction: QueryRequestBuilder("p(X).").tenant("acme").build().
class QueryRequestBuilder {
 public:
  explicit QueryRequestBuilder(std::string query) {
    req_.query = std::move(query);
  }

  QueryRequestBuilder& engine(EngineConfig cfg) {
    req_.engine = cfg;
    return *this;
  }
  QueryRequestBuilder& tenant(std::string t) {
    req_.tenant = std::move(t);
    return *this;
  }
  QueryRequestBuilder& cache_mode(CacheMode m) {
    req_.cache_mode = m;
    return *this;
  }
  QueryRequestBuilder& deadline(std::chrono::nanoseconds d) {
    req_.deadline = d;
    return *this;
  }
  QueryRequestBuilder& max_solutions(std::size_t n) {
    req_.max_solutions = n;
    return *this;
  }
  QueryRequestBuilder& resolution_limit(std::uint64_t n) {
    req_.resolution_limit = n;
    return *this;
  }

  QueryRequest build() const& { return req_; }
  QueryRequest build() && { return std::move(req_); }

 private:
  QueryRequest req_;
};

}  // namespace ace
