// Minimal HTTP/1.1 endpoint serving Prometheus text metrics and the
// /debug introspection pages.
//
// One accept thread, blocking I/O, one request per connection. The GET
// path selects a handler registered with set_handler() (/statusz, /tracez,
// /flamez); any other path — including /metrics and the bare / — falls
// back to the default `render` callback, preserving the original
// "any path scrapes metrics" contract. Responses are
// `200 OK text/plain; version=0.0.4`; anything fancier belongs behind a
// real reverse proxy. Port 0 binds an ephemeral port (tests); port()
// reports the bound one. stop() shuts the listener down and joins the
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace ace {

class MetricsHttpServer {
 public:
  using RenderFn = std::function<std::string()>;

  // Binds 127.0.0.1:port and starts the accept thread. Throws AceError if
  // the socket cannot be bound.
  MetricsHttpServer(std::uint16_t port, RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // The bound port (resolves port 0 to the kernel-assigned one).
  std::uint16_t port() const { return port_; }

  // Registers (or replaces) the handler for an exact request path, e.g.
  // "/statusz". Thread-safe; takes effect for the next request.
  void set_handler(const std::string& path, RenderFn render);

  void stop();

 private:
  void accept_loop();
  // Extracts the request path from a raw request buffer ("GET /x HTTP/1.1").
  static std::string request_path(const char* buf, std::size_t n);

  RenderFn render_;
  std::mutex handlers_mu_;
  std::map<std::string, RenderFn> handlers_;
  // Written by the constructor and stop(), read concurrently by the accept
  // thread — atomic so the shutdown handshake is race-free.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ace
