// Minimal HTTP/1.1 endpoint serving Prometheus text metrics.
//
// One accept thread, blocking I/O, one request per connection: every GET
// (any path) receives `200 OK text/plain; version=0.0.4` with the body the
// `render` callback produces at request time. That is all a Prometheus
// scraper (or curl) needs; anything fancier belongs behind a real reverse
// proxy. Port 0 binds an ephemeral port (tests); port() reports the bound
// one. stop() shuts the listener down and joins the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ace {

class MetricsHttpServer {
 public:
  using RenderFn = std::function<std::string()>;

  // Binds 127.0.0.1:port and starts the accept thread. Throws AceError if
  // the socket cannot be bound.
  MetricsHttpServer(std::uint16_t port, RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // The bound port (resolves port 0 to the kernel-assigned one).
  std::uint16_t port() const { return port_; }

  void stop();

 private:
  void accept_loop();

  RenderFn render_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ace
