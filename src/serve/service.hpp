// QueryService: the concurrent multi-tenant query front-end.
//
//   submit() ──route by tenant──► shard 0 ┐ admission queue ► dispatch
//       │                        shard 1 │ (reject-with-    │ threads
//       ▼                          ...   │  overload when   ▼
//  Ticket{id, future}            shard N ┘  full)     result cache?
//                                                      hit ─► respond
//                                                      miss ► engine-pool
//                                                             checkout
//
// One QueryService owns: the shared Database (callers consult programs
// before/while serving; assert/retract from served queries is safe under
// the Database's shared lock), N independent *shards* — each a bounded
// FIFO admission queue, its own dispatch threads and its own pool of
// pre-warmed EngineSessions — an optional canonicalized query->result
// cache fronting the engines (serve/result_cache.hpp), and the serving
// metrics surface (src/stats/serve_metrics.hpp).
//
// Sharding. Requests are routed by QueryRequest::tenant (falling back to
// the query text when empty): hash(key) % shards. Everything contended —
// queue mutex, pool mutex, dispatch wakeups — is per shard, so tenants on
// different shards never serialize on each other's admission path, and a
// burst from one tenant can only fill its own queue. shards=1 (the
// default) is exactly the historical single-pool topology.
//
// Result cache. With result_cache_capacity > 0, completed pure queries
// are cached under their canonical template key (variant structure +
// variable names + engine identity + result-shaping budget) and repeated
// submissions are answered without touching an engine. Effectful queries
// — flagged by the purity analysis (analysis/purity.hpp) or
// CacheMode::Bypass — always run. Invalidation and the zero-stale-results
// guarantee live in serve/result_cache.hpp.
//
// Per-query budgets: wall-clock deadline (measured from admission, so time
// spent queued counts — a request that expires in the queue is answered
// DeadlineExpired without ever running), solution cap, and resolution
// limit. Cancellation: submit() returns a ticket id; cancel(id) stops the
// query whether it is still queued or already running (the per-request
// CancelToken is shared with the running session's workers).
//
// Dispatch is FIFO per shard and deadline-aware: expired requests are
// answered immediately on pop instead of wasting an engine. Responses
// carry partial solutions for Cancelled/DeadlineExpired queries —
// everything found before the stop landed.
//
// Responses are the versioned wire type ace::QueryResult: one outcome
// enum, per-query Counters delta, queue/latency accounting, and a trace
// handle when an obs::Recorder is attached via ServiceOptions. With a
// recorder the service traces the full request path — Submit and
// QueueEnter/QueueLeave on a shared service track, ServeBegin/ServeEnd
// plus SessionCheckout/Checkin on per-dispatch-thread tracks, and the
// session/agent spans below them (same qid = the ticket id throughout).
// Completed queries at/above SlowLogOptions::threshold land in the
// slow-query log (slowlog()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/slowlog.hpp"
#include "serve/request.hpp"
#include "serve/result_cache.hpp"
#include "serve/session.hpp"
#include "stats/serve_metrics.hpp"
#include "tab/table_space.hpp"

namespace ace {

namespace obs {
class Recorder;
class Track;
}

struct AbsProgram;
struct PuritySummary;

struct ServiceOptions {
  // Shard topology: `shards` independent (queue + dispatch threads +
  // engine pool) units; the three capacity knobs below are PER SHARD.
  unsigned shards = 1;
  unsigned dispatch_threads = 4;     // concurrent engines per shard
  std::size_t queue_capacity = 128;  // admission bound per shard
  std::size_t pool_capacity = 16;    // max idle warm sessions per shard
  // Canonicalized query->result cache: maximum cached entries (LRU
  // beyond). 0 = no cache — the engine runs every request, bit-identical
  // to the pre-cache serving path.
  std::size_t result_cache_capacity = 0;
  // Defaults applied when a request leaves the field zero.
  std::chrono::nanoseconds default_deadline{0};  // 0 = no deadline
  std::uint64_t default_resolution_limit = 0;

  // Observability knobs, grouped so the serving-topology fields above
  // stay a flat, skimmable bag. All members are defaulted: existing
  // aggregate-init call sites that never named them keep compiling.
  struct Observability {
    // Caller-owned recorder (must outlive the service); null = no tracing.
    obs::Recorder* recorder = nullptr;
    obs::SlowLogOptions slowlog{};
    // Stuck-query watchdog: when > 0, a background thread checks
    // in-flight queries every `watchdog_poll` and dumps a flight-recorder
    // snapshot (current phase, qid-correlated events, attribution top-3)
    // to the slow-query log for any query older than `watchdog_budget` —
    // once per query. Strictly read-only w.r.t. the running query.
    std::chrono::nanoseconds watchdog_budget{0};  // 0 = disabled
    std::chrono::milliseconds watchdog_poll{50};
  };
  Observability obs{};
};

// Coarse serving phase of one in-flight query, advanced by the dispatch
// thread and read by the watchdog (relaxed atomic int).
enum class ServePhase : int { Queued, Acquire, Engine, Render };
const char* serve_phase_name(ServePhase p);

// Bounded per-query history entry kept by the service for the /tracez and
// /flamez debug pages: phases are always measured (no recorder needed),
// attribution rides along when the engine reported it.
struct RecentQuery {
  std::uint64_t id = 0;
  std::string query;
  QueryOutcome outcome = QueryOutcome::Error;
  std::chrono::microseconds latency{0};
  std::uint64_t virtual_time = 0;
  PhaseNanos phases;
  AttribBreakdown attrib;
};

class QueryService {
 public:
  QueryService(Database& db, ServiceOptions opts = {},
               const CostModel& costs = CostModel::standard());
  ~QueryService();  // shutdown(): drains the queues, joins threads

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<QueryResult> result;
  };

  // Admission control: O(1). If the routed shard's queue is at capacity
  // the ticket's future is already resolved with QueryOutcome::Overload
  // (backpressure — callers should retry later or shed load).
  Ticket submit(QueryRequest req);

  // Convenience: submit and wait.
  QueryResult run(QueryRequest req);

  // Requests cancellation of a queued or running query. Returns false if
  // the id is unknown or already finished.
  bool cancel(std::uint64_t id);

  // Stops accepting new work, drains everything already admitted, joins
  // the dispatch threads. Idempotent.
  void shutdown();

  const ServeMetrics& metrics() const { return metrics_; }
  // Serving metrics plus the shared memo-table cache counters, the result
  // cache counters and the per-shard gauges folded into the snapshot.
  ServeMetricsSnapshot metrics_snapshot() const;

  // The service-wide memo-table cache, shared by every pooled session:
  // a table completed while serving one request answers later variant
  // calls from any session until an assert/retract invalidates it.
  tab::TableSpace& tables() { return *tablespace_; }

  // The whole-query result cache; null when result_cache_capacity == 0.
  serve::ResultCache* result_cache() { return result_cache_.get(); }
  const serve::ResultCache* result_cache() const {
    return result_cache_.get();
  }

  // Shard a request would be routed to (metrics/tests; pure function of
  // the routing key).
  unsigned shard_of(const QueryRequest& req) const;
  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  // Attaches the load-time lint result of the served program to the
  // metrics (ace_serve --analyze); surfaced in metrics_snapshot().to_json().
  void set_lint_counts(std::uint64_t warnings, std::uint64_t errors) {
    metrics_.set_lint_counts(warnings, errors);
  }
  const obs::SlowQueryLog& slowlog() const { return slowlog_; }
  // Total queued requests across all shards.
  std::size_t queue_depth() const;
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // ---- Introspection for the /debug surface ------------------------------
  const ServiceOptions& options() const { return opts_; }
  obs::Recorder* recorder() const { return opts_.obs.recorder; }
  // Total idle warm sessions across all shard pools.
  std::size_t pool_idle() const;
  std::uint64_t watchdog_fired() const {
    return watchdog_fired_.load(std::memory_order_relaxed);
  }
  std::chrono::steady_clock::time_point started_at() const {
    return started_at_;
  }
  // Most recent completed queries, newest last (bounded ring of
  // kRecentCapacity).
  std::vector<RecentQuery> recent_queries() const;
  static constexpr std::size_t kRecentCapacity = 64;

 private:
  // Shared in-flight registry entry: the submit side creates it, the
  // dispatch thread advances `phase`, cancel() reaches the token through
  // it, and the watchdog reads all of it without touching the query.
  struct QueryProgress {
    std::uint64_t id = 0;
    std::string query;
    std::chrono::steady_clock::time_point admitted_at;
    std::shared_ptr<CancelToken> token;
    std::atomic<int> phase{static_cast<int>(ServePhase::Queued)};
    std::atomic<bool> dumped{false};  // watchdog fired for this query
  };

  struct Pending {
    std::uint64_t id = 0;
    QueryRequest req;
    unsigned shard = 0;  // routed shard index
    std::promise<QueryResult> promise;
    std::shared_ptr<CancelToken> token;
    std::shared_ptr<QueryProgress> progress;
    std::chrono::steady_clock::time_point admitted_at;
    std::chrono::steady_clock::time_point deadline_at;  // max() = none
    bool has_deadline = false;
    // Last phase-boundary timestamp (zero until serve_one runs); respond()
    // closes the render phase against it so phases partition latency.
    std::chrono::steady_clock::time_point phase_mark{};
  };

  // One independent serving unit: admission queue, dispatch threads and
  // warm-session pool, plus the relaxed gauges the per-shard metrics
  // surface reads without touching the mutexes.
  struct Shard {
    unsigned index = 0;
    mutable std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<Pending> queue;
    bool stopping = false;  // guarded by queue_mu

    mutable std::mutex pool_mu;
    std::vector<std::unique_ptr<EngineSession>> idle_sessions;

    std::vector<std::thread> threads;

    std::atomic<std::uint64_t> submitted{0};  // admitted to this shard
    std::atomic<std::uint64_t> completed{0};  // responses sent
    std::atomic<std::uint64_t> pool_hits{0};
    std::atomic<std::uint64_t> pool_misses{0};
    std::atomic<std::uint64_t> depth{0};  // mirrors queue.size()
    std::atomic<std::uint64_t> depth_peak{0};
  };

  void dispatch_loop(Shard& shard, unsigned thread_index);
  void serve_one(Pending&& p, obs::Track* track);
  void respond(Pending& p, QueryResult&& resp);
  void watchdog_loop();
  std::string watchdog_report(const QueryProgress& prog,
                              std::chrono::nanoseconds age) const;
  std::unique_ptr<EngineSession> checkout(Shard& shard,
                                          const EngineConfig& cfg,
                                          bool* reused_out);
  void checkin(Shard& shard, std::unique_ptr<EngineSession> session);
  std::size_t total_queue_depth() const;  // relaxed sum of shard gauges

  // ---- Result-cache support ----------------------------------------------
  // Effects of `tmpl`'s goal per the purity analysis, built lazily from
  // the live database and rebuilt after any mutation (change-hook dirty
  // flag). Conservative staleness is fine: correctness of served answers
  // never depends on it (the cache's dep machinery does that); it only
  // decides which queries are worth caching.
  unsigned query_effects(const TermTemplate& tmpl) const;
  static std::string cache_key(const TermTemplate& tmpl,
                               const QueryRequest& req);

  Database& db_;
  ServiceOptions opts_;
  CostModel costs_;
  Builtins builtins_;  // shared by all sessions (const after construction)
  std::shared_ptr<tab::TableSpace> tablespace_;
  std::unique_ptr<serve::ResultCache> result_cache_;
  ServeMetrics metrics_;
  obs::SlowQueryLog slowlog_;

  // Multi-writer track for the submit/cancel side (clients call from
  // arbitrary threads; the ring is lock-free) and one single-writer track
  // per dispatch thread (numbered across shards). Null when no recorder
  // is configured.
  obs::Track* service_track_ = nullptr;
  std::vector<obs::Track*> dispatch_tracks_;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool stopped_ = false;  // shutdown() ran to completion (guarded by reg_mu_)

  mutable std::mutex reg_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<QueryProgress>> inflight_;

  mutable std::mutex recent_mu_;
  std::deque<RecentQuery> recent_;  // bounded to kRecentCapacity

  // Purity-analysis cache for the effectful-query bypass.
  mutable std::mutex purity_mu_;
  mutable std::unique_ptr<AbsProgram> purity_prog_;
  mutable std::unique_ptr<PuritySummary> purity_;
  mutable std::atomic<bool> purity_dirty_{true};
  std::uint64_t purity_hook_ = 0;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> active_{0};  // queries inside serve_one
  std::atomic<std::uint64_t> watchdog_fired_{0};
  std::chrono::steady_clock::time_point started_at_;

  // Watchdog thread state (only started when watchdog_budget > 0).
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::thread wd_thread_;
};

}  // namespace ace
