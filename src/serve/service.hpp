// QueryService: the concurrent multi-tenant query front-end.
//
//             submit() ──► bounded admission queue ──► dispatch threads
//                 │   (reject-with-overload when full)      │
//                 ▼                                         ▼
//           Ticket{id, future}                    engine-pool checkout
//                                                (warm EngineSession reuse)
//
// One QueryService owns: the shared Database (callers consult programs
// before/while serving; assert/retract from served queries is safe under
// the Database's shared lock), a pool of pre-warmed EngineSessions keyed by
// EngineConfig, a bounded FIFO admission queue with backpressure, and the
// serving metrics surface (src/stats/serve_metrics.hpp).
//
// Per-query budgets: wall-clock deadline (measured from admission, so time
// spent queued counts — a request that expires in the queue is answered
// DeadlineExpired without ever running), solution cap, and resolution
// limit. Cancellation: submit() returns a ticket id; cancel(id) stops the
// query whether it is still queued or already running (the per-request
// CancelToken is shared with the running session's workers).
//
// Dispatch is FIFO and deadline-aware: expired requests are answered
// immediately on pop instead of wasting an engine. Responses carry partial
// solutions for Cancelled/DeadlineExpired queries — everything found
// before the stop landed.
//
// Responses are the versioned wire type ace::QueryResult (PR 2): one
// outcome enum, per-query Counters delta, queue/latency accounting, and a
// trace handle when an obs::Recorder is attached via ServiceOptions. With
// a recorder the service traces the full request path — Submit and
// QueueEnter/QueueLeave on a shared service track, ServeBegin/ServeEnd
// plus SessionCheckout/Checkin on per-dispatch-thread tracks, and the
// session/agent spans below them (same qid = the ticket id throughout).
// Completed queries at/above SlowLogOptions::threshold land in the
// slow-query log (slowlog()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/slowlog.hpp"
#include "serve/session.hpp"
#include "stats/serve_metrics.hpp"
#include "tab/table_space.hpp"

namespace ace {

namespace obs {
class Recorder;
class Track;
}

struct ServiceOptions {
  unsigned dispatch_threads = 4;   // concurrent engine instances
  std::size_t queue_capacity = 128;  // admission bound (backpressure)
  std::size_t pool_capacity = 16;    // max idle warm sessions kept
  // Defaults applied when a request leaves the field zero.
  std::chrono::nanoseconds default_deadline{0};  // 0 = no deadline
  std::uint64_t default_resolution_limit = 0;
  // Optional observability: a caller-owned recorder (must outlive the
  // service) and the slow-query log configuration.
  obs::Recorder* recorder = nullptr;
  obs::SlowLogOptions slowlog{};
  // Stuck-query watchdog: when > 0, a background thread checks in-flight
  // queries every `watchdog_poll` and dumps a flight-recorder snapshot
  // (current phase, qid-correlated events, attribution top-3) to the
  // slow-query log for any query older than `watchdog_budget` — once per
  // query. Strictly read-only w.r.t. the running query.
  std::chrono::nanoseconds watchdog_budget{0};  // 0 = disabled
  std::chrono::milliseconds watchdog_poll{50};
};

// Coarse serving phase of one in-flight query, advanced by the dispatch
// thread and read by the watchdog (relaxed atomic int).
enum class ServePhase : int { Queued, Acquire, Engine, Render };
const char* serve_phase_name(ServePhase p);

// Bounded per-query history entry kept by the service for the /tracez and
// /flamez debug pages: phases are always measured (no recorder needed),
// attribution rides along when the engine reported it.
struct RecentQuery {
  std::uint64_t id = 0;
  std::string query;
  QueryOutcome outcome = QueryOutcome::Error;
  std::chrono::microseconds latency{0};
  std::uint64_t virtual_time = 0;
  PhaseNanos phases;
  AttribBreakdown attrib;
};

// PR 1 compatibility alias: the serving response is now the shared
// versioned wire type (engine/result.hpp). Kept for one PR.
using QueryResponse = QueryResult;

struct QueryRequest {
  std::string query;            // '.'-terminated goal text
  EngineConfig engine;          // which engine/flags to run it on
  std::chrono::nanoseconds deadline{0};  // 0 = service default
  std::size_t max_solutions = SIZE_MAX;
  std::uint64_t resolution_limit = 0;    // 0 = service default
};

class QueryService {
 public:
  QueryService(Database& db, ServiceOptions opts = {},
               const CostModel& costs = CostModel::standard());
  ~QueryService();  // shutdown(): drains the queue, joins threads

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::future<QueryResult> result;
  };

  // Admission control: O(1). If the queue is at capacity the ticket's
  // future is already resolved with QueryOutcome::Overload (backpressure —
  // callers should retry later or shed load).
  Ticket submit(QueryRequest req);

  // Convenience: submit and wait.
  QueryResult run(QueryRequest req);

  // Requests cancellation of a queued or running query. Returns false if
  // the id is unknown or already finished.
  bool cancel(std::uint64_t id);

  // Stops accepting new work, drains everything already admitted, joins
  // the dispatch threads. Idempotent.
  void shutdown();

  const ServeMetrics& metrics() const { return metrics_; }
  // Serving metrics plus the shared memo-table cache counters (hits,
  // misses, entries, invalidations) folded into the snapshot.
  ServeMetricsSnapshot metrics_snapshot() const;

  // The service-wide memo-table cache, shared by every pooled session:
  // a table completed while serving one request answers later variant
  // calls from any session until an assert/retract invalidates it.
  tab::TableSpace& tables() { return *tablespace_; }

  // Attaches the load-time lint result of the served program to the
  // metrics (ace_serve --analyze); surfaced in metrics_snapshot().to_json().
  void set_lint_counts(std::uint64_t warnings, std::uint64_t errors) {
    metrics_.set_lint_counts(warnings, errors);
  }
  const obs::SlowQueryLog& slowlog() const { return slowlog_; }
  std::size_t queue_depth() const;
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  // ---- Introspection for the /debug surface ------------------------------
  const ServiceOptions& options() const { return opts_; }
  obs::Recorder* recorder() const { return opts_.recorder; }
  std::size_t pool_idle() const;
  std::uint64_t watchdog_fired() const {
    return watchdog_fired_.load(std::memory_order_relaxed);
  }
  std::chrono::steady_clock::time_point started_at() const {
    return started_at_;
  }
  // Most recent completed queries, newest last (bounded ring of
  // kRecentCapacity).
  std::vector<RecentQuery> recent_queries() const;
  static constexpr std::size_t kRecentCapacity = 64;

 private:
  // Shared in-flight registry entry: the submit side creates it, the
  // dispatch thread advances `phase`, cancel() reaches the token through
  // it, and the watchdog reads all of it without touching the query.
  struct QueryProgress {
    std::uint64_t id = 0;
    std::string query;
    std::chrono::steady_clock::time_point admitted_at;
    std::shared_ptr<CancelToken> token;
    std::atomic<int> phase{static_cast<int>(ServePhase::Queued)};
    std::atomic<bool> dumped{false};  // watchdog fired for this query
  };

  struct Pending {
    std::uint64_t id = 0;
    QueryRequest req;
    std::promise<QueryResult> promise;
    std::shared_ptr<CancelToken> token;
    std::shared_ptr<QueryProgress> progress;
    std::chrono::steady_clock::time_point admitted_at;
    std::chrono::steady_clock::time_point deadline_at;  // max() = none
    bool has_deadline = false;
    // Last phase-boundary timestamp (zero until serve_one runs); respond()
    // closes the render phase against it so phases partition latency.
    std::chrono::steady_clock::time_point phase_mark{};
  };

  void dispatch_loop(unsigned thread_index);
  void serve_one(Pending&& p, obs::Track* track);
  void respond(Pending& p, QueryResult&& resp);
  void watchdog_loop();
  std::string watchdog_report(const QueryProgress& prog,
                              std::chrono::nanoseconds age) const;
  std::unique_ptr<EngineSession> checkout(const EngineConfig& cfg,
                                          bool* reused_out);
  void checkin(std::unique_ptr<EngineSession> session);

  Database& db_;
  ServiceOptions opts_;
  CostModel costs_;
  Builtins builtins_;  // shared by all sessions (const after construction)
  std::shared_ptr<tab::TableSpace> tablespace_;
  ServeMetrics metrics_;
  obs::SlowQueryLog slowlog_;

  // Multi-writer track for the submit/cancel side (clients call from
  // arbitrary threads; the ring is lock-free) and one single-writer track
  // per dispatch thread. Null when no recorder is configured.
  obs::Track* service_track_ = nullptr;
  std::vector<obs::Track*> dispatch_tracks_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  mutable std::mutex pool_mu_;
  std::vector<std::unique_ptr<EngineSession>> idle_sessions_;

  mutable std::mutex reg_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<QueryProgress>> inflight_;

  mutable std::mutex recent_mu_;
  std::deque<RecentQuery> recent_;  // bounded to kRecentCapacity

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> active_{0};  // queries inside serve_one
  std::atomic<std::uint64_t> watchdog_fired_{0};
  std::chrono::steady_clock::time_point started_at_;
  std::vector<std::thread> threads_;

  // Watchdog thread state (only started when watchdog_budget > 0).
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::thread wd_thread_;
};

}  // namespace ace
