#include "serve/service.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "support/strutil.hpp"

namespace ace {

using SteadyClock = std::chrono::steady_clock;

namespace {

std::chrono::microseconds since(SteadyClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      SteadyClock::now() - t0);
}

}  // namespace

QueryService::QueryService(Database& db, ServiceOptions opts,
                           const CostModel& costs)
    : db_(db),
      opts_(opts),
      costs_(costs),
      builtins_(db.syms()),
      tablespace_(std::make_shared<tab::TableSpace>(&db)),
      slowlog_(opts.slowlog) {
  ACE_CHECK(opts_.dispatch_threads >= 1);
  if (opts_.recorder != nullptr) {
    // Tracks are created before the threads so every dispatch thread sees
    // its own pointer without synchronization.
    service_track_ = opts_.recorder->create_track("service");
    dispatch_tracks_.reserve(opts_.dispatch_threads);
    for (unsigned i = 0; i < opts_.dispatch_threads; ++i) {
      dispatch_tracks_.push_back(
          opts_.recorder->create_track(strf("dispatch %u", i)));
    }
  }
  threads_.reserve(opts_.dispatch_threads);
  for (unsigned i = 0; i < opts_.dispatch_threads; ++i) {
    threads_.emplace_back([this, i] { dispatch_loop(i); });
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

std::size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

QueryService::Ticket QueryService::submit(QueryRequest req) {
  metrics_.on_submitted();
  Pending p;
  p.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.req = std::move(req);
  p.token = std::make_shared<CancelToken>();
  p.admitted_at = SteadyClock::now();
  std::chrono::nanoseconds dl = p.req.deadline.count() != 0
                                    ? p.req.deadline
                                    : opts_.default_deadline;
  p.has_deadline = dl.count() > 0;
  p.deadline_at =
      p.has_deadline ? p.admitted_at + dl : SteadyClock::time_point::max();
  if (p.req.resolution_limit == 0) {
    p.req.resolution_limit = opts_.default_resolution_limit;
  }
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::Submit, p.id);
  }

  Ticket ticket;
  ticket.id = p.id;
  ticket.result = p.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || queue_.size() >= opts_.queue_capacity) {
      // Reject-with-overload: resolve the future immediately; the caller
      // sees backpressure without blocking.
      metrics_.on_rejected();
      QueryResult resp;
      resp.id = p.id;
      resp.query = p.req.query;
      resp.outcome = QueryOutcome::Overload;
      resp.error = stopping_ ? "service stopping" : "admission queue full";
      resp.latency = since(p.admitted_at);
      p.promise.set_value(std::move(resp));
      return ticket;
    }
    metrics_.on_admitted();
    if (service_track_ != nullptr) {
      service_track_->note_qid(obs::EventKind::QueueEnter, p.id,
                               queue_.size());
    }
    {
      std::lock_guard<std::mutex> rlock(reg_mu_);
      inflight_.emplace(p.id, p.token);
    }
    queue_.push_back(std::move(p));
    metrics_.set_queue_depth(queue_.size());
  }
  queue_cv_.notify_one();
  return ticket;
}

QueryResult QueryService::run(QueryRequest req) {
  Ticket t = submit(std::move(req));
  return t.result.get();
}

bool QueryService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::CancelRequest, id);
  }
  it->second->request_cancel();
  return true;
}

void QueryService::dispatch_loop(unsigned thread_index) {
  obs::Track* track = thread_index < dispatch_tracks_.size()
                          ? dispatch_tracks_[thread_index]
                          : nullptr;
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ && drained: exit after the queue is fully served.
        return;
      }
      p = std::move(queue_.front());
      queue_.pop_front();
      metrics_.set_queue_depth(queue_.size());
      if (service_track_ != nullptr) {
        service_track_->note_qid(obs::EventKind::QueueLeave, p.id,
                                 queue_.size());
      }
    }
    serve_one(std::move(p), track);
  }
}

void QueryService::respond(Pending& p, QueryResult&& resp) {
  resp.id = p.id;
  if (resp.query.empty()) resp.query = p.req.query;
  resp.latency = since(p.admitted_at);
  metrics_.record_latency(resp.latency);
  // Roll the query's cost attribution into the serving metrics (skipped
  // for responses that never reached an engine: their breakdown is empty).
  if (resp.attrib.total() > 0) {
    metrics_.add_attrib(resp.attrib, resp.virtual_time);
  }
  switch (resp.outcome) {
    case QueryOutcome::Success:
    case QueryOutcome::Fail:
      metrics_.on_completed();
      break;
    case QueryOutcome::Cancelled:
      metrics_.on_cancelled();
      break;
    case QueryOutcome::DeadlineExpired:
      metrics_.on_deadline_expired();
      break;
    case QueryOutcome::Error:
      metrics_.on_error();
      break;
    case QueryOutcome::Overload:
      metrics_.on_rejected();  // defensive: overloads resolve in submit()
      break;
  }
  slowlog_.consider(resp);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    inflight_.erase(p.id);
  }
  p.promise.set_value(std::move(resp));
}

void QueryService::serve_one(Pending&& p, obs::Track* track) {
  QueryResult resp;
  resp.queue_wait = since(p.admitted_at);
  metrics_.record_queue_wait(resp.queue_wait);
  if (track != nullptr) track->set_query(p.id);
  obs::Span serve_span(track, p.id, obs::EventKind::ServeBegin,
                       obs::EventKind::ServeEnd);

  // Deadline-aware dispatch: answer queue-expired requests without
  // spending an engine on them.
  SteadyClock::time_point now = SteadyClock::now();
  if (p.has_deadline && now >= p.deadline_at) {
    resp.outcome = QueryOutcome::DeadlineExpired;
    respond(p, std::move(resp));
    return;
  }
  // Cancelled while queued.
  if (p.token->stop_requested()) {
    resp.outcome = QueryOutcome::Cancelled;
    respond(p, std::move(resp));
    return;
  }

  bool reused = false;
  std::unique_ptr<EngineSession> session = checkout(p.req.engine, &reused);
  resp.engine_reused = reused;
  if (opts_.recorder != nullptr) {
    session->set_recorder(opts_.recorder);
    resp.trace_id = p.id;
    if (track != nullptr) {
      track->note(obs::EventKind::SessionCheckout, reused ? 1 : 0);
    }
  }

  QueryBudget budget;
  budget.max_solutions = p.req.max_solutions;
  budget.resolution_limit = p.req.resolution_limit;
  if (p.has_deadline) {
    budget.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
        p.deadline_at - now);
  }

  try {
    resp.absorb(session->run(p.req.query, budget, p.token.get(), p.id));
  } catch (const AceError& e) {
    // Parse errors, undefined predicates, resolution-budget exhaustion,
    // uncaught throw/1 balls. The session's next run() resets all engine
    // state, so the pooled engine stays healthy regardless.
    resp.outcome = QueryOutcome::Error;
    resp.error = e.what();
  }

  // Always return the session: the reset-on-run invariant means even a
  // stopped or errored session is safe to reuse.
  if (track != nullptr && opts_.recorder != nullptr) {
    track->note(obs::EventKind::SessionCheckin);
  }
  checkin(std::move(session));
  respond(p, std::move(resp));
}

std::unique_ptr<EngineSession> QueryService::checkout(
    const EngineConfig& cfg, bool* reused_out) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (auto it = idle_sessions_.begin(); it != idle_sessions_.end(); ++it) {
      if ((*it)->config() == cfg) {
        std::unique_ptr<EngineSession> s = std::move(*it);
        idle_sessions_.erase(it);
        metrics_.on_pool_hit();
        *reused_out = true;
        return s;
      }
    }
  }
  metrics_.on_pool_miss();
  *reused_out = false;
  auto session = std::make_unique<EngineSession>(db_, builtins_, cfg, costs_);
  // Swap the session's private memo cache for the service-wide one so
  // completed tables serve every tenant (pooled sessions keep it for life).
  if (cfg.tabling) session->set_table_space(tablespace_);
  return session;
}

ServeMetricsSnapshot QueryService::metrics_snapshot() const {
  ServeMetricsSnapshot s = metrics_.snapshot();
  tab::TableSpace::Stats t = tablespace_->stats();
  s.tables_present = t.hits + t.misses + t.inserts + t.invalidations > 0 ||
                     t.entries > 0;
  s.table_hits = t.hits;
  s.table_misses = t.misses;
  s.table_inserts = t.inserts;
  s.table_invalidations = t.invalidations;
  s.table_entries = t.entries;
  return s;
}

void QueryService::checkin(std::unique_ptr<EngineSession> session) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (idle_sessions_.size() < opts_.pool_capacity) {
    idle_sessions_.push_back(std::move(session));
  }
  // else: drop — the pool is bounded.
}

}  // namespace ace
