#include "serve/service.hpp"

#include <algorithm>
#include <functional>

#include "analysis/purity.hpp"
#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "support/strutil.hpp"
#include "term/canon.hpp"

namespace ace {

using SteadyClock = std::chrono::steady_clock;

namespace {

std::chrono::microseconds since(SteadyClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      SteadyClock::now() - t0);
}

std::uint64_t ns_between(SteadyClock::time_point a,
                         SteadyClock::time_point b) {
  return b > a ? static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         b - a)
                         .count())
               : 0;
}

}  // namespace

const char* serve_phase_name(ServePhase p) {
  switch (p) {
    case ServePhase::Queued:
      return "queued";
    case ServePhase::Acquire:
      return "acquire";
    case ServePhase::Engine:
      return "engine";
    case ServePhase::Render:
      return "render";
  }
  return "?";
}

QueryService::QueryService(Database& db, ServiceOptions opts,
                           const CostModel& costs)
    : db_(db),
      opts_(opts),
      costs_(costs),
      builtins_(db.syms()),
      tablespace_(std::make_shared<tab::TableSpace>(&db)),
      slowlog_(opts.obs.slowlog),
      started_at_(SteadyClock::now()) {
  ACE_CHECK(opts_.shards >= 1);
  ACE_CHECK(opts_.dispatch_threads >= 1);
  if (opts_.result_cache_capacity > 0) {
    result_cache_ =
        std::make_unique<serve::ResultCache>(&db_, opts_.result_cache_capacity);
    // Any mutation staled the purity summary the cache-bypass decision
    // reads; rebuild lazily on the next cacheable request.
    purity_hook_ = db_.add_change_hook([this](std::uint32_t, unsigned) {
      purity_dirty_.store(true, std::memory_order_release);
    });
  }
  const unsigned total_threads = opts_.shards * opts_.dispatch_threads;
  if (opts_.obs.recorder != nullptr) {
    // Tracks are created before the threads so every dispatch thread sees
    // its own pointer without synchronization. Numbered across shards
    // (shard * threads + i) to keep the historical "dispatch N" names.
    service_track_ = opts_.obs.recorder->create_track("service");
    dispatch_tracks_.reserve(total_threads);
    for (unsigned i = 0; i < total_threads; ++i) {
      dispatch_tracks_.push_back(
          opts_.obs.recorder->create_track(strf("dispatch %u", i)));
    }
  }
  shards_.reserve(opts_.shards);
  for (unsigned s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
  }
  for (auto& sh : shards_) {
    sh->threads.reserve(opts_.dispatch_threads);
    for (unsigned i = 0; i < opts_.dispatch_threads; ++i) {
      Shard* shard = sh.get();
      sh->threads.emplace_back([this, shard, i] { dispatch_loop(*shard, i); });
    }
  }
  if (opts_.obs.watchdog_budget.count() > 0) {
    wd_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  for (auto& sh : shards_) {
    {
      std::lock_guard<std::mutex> lock(sh->queue_mu);
      sh->stopping = true;
    }
    sh->queue_cv.notify_all();
  }
  for (auto& sh : shards_) {
    for (std::thread& t : sh->threads) t.join();
    sh->threads.clear();
  }
  {
    std::lock_guard<std::mutex> lock(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (wd_thread_.joinable()) wd_thread_.join();
  if (purity_hook_ != 0) {
    db_.remove_change_hook(purity_hook_);
    purity_hook_ = 0;
  }
}

std::size_t QueryService::total_queue_depth() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    total += sh->depth.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t QueryService::queue_depth() const { return total_queue_depth(); }

unsigned QueryService::shard_of(const QueryRequest& req) const {
  if (shards_.size() <= 1) return 0;
  const std::string& key = req.tenant.empty() ? req.query : req.tenant;
  return static_cast<unsigned>(std::hash<std::string>{}(key) %
                               shards_.size());
}

QueryService::Ticket QueryService::submit(QueryRequest req) {
  metrics_.on_submitted();
  Pending p;
  p.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.req = std::move(req);
  p.shard = shard_of(p.req);
  p.token = std::make_shared<CancelToken>();
  p.admitted_at = SteadyClock::now();
  std::chrono::nanoseconds dl = p.req.deadline.count() != 0
                                    ? p.req.deadline
                                    : opts_.default_deadline;
  p.has_deadline = dl.count() > 0;
  p.deadline_at =
      p.has_deadline ? p.admitted_at + dl : SteadyClock::time_point::max();
  if (p.req.resolution_limit == 0) {
    p.req.resolution_limit = opts_.default_resolution_limit;
  }
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::Submit, p.id);
  }

  Ticket ticket;
  ticket.id = p.id;
  ticket.result = p.promise.get_future();

  Shard& shard = *shards_[p.shard];
  {
    std::lock_guard<std::mutex> lock(shard.queue_mu);
    if (shard.stopping || shard.queue.size() >= opts_.queue_capacity) {
      // Reject-with-overload: resolve the future immediately; the caller
      // sees backpressure without blocking.
      metrics_.on_rejected();
      QueryResult resp;
      resp.id = p.id;
      resp.query = p.req.query;
      resp.outcome = QueryOutcome::Overload;
      resp.error =
          shard.stopping ? "service stopping" : "admission queue full";
      resp.latency = since(p.admitted_at);
      p.promise.set_value(std::move(resp));
      return ticket;
    }
    metrics_.on_admitted();
    shard.submitted.fetch_add(1, std::memory_order_relaxed);
    if (service_track_ != nullptr) {
      service_track_->note_qid(obs::EventKind::QueueEnter, p.id,
                               shard.queue.size());
    }
    p.progress = std::make_shared<QueryProgress>();
    p.progress->id = p.id;
    p.progress->query = p.req.query;
    p.progress->admitted_at = p.admitted_at;
    p.progress->token = p.token;
    {
      std::lock_guard<std::mutex> rlock(reg_mu_);
      inflight_.emplace(p.id, p.progress);
    }
    shard.queue.push_back(std::move(p));
    const std::uint64_t depth = shard.queue.size();
    shard.depth.store(depth, std::memory_order_relaxed);
    if (depth > shard.depth_peak.load(std::memory_order_relaxed)) {
      shard.depth_peak.store(depth, std::memory_order_relaxed);
    }
    metrics_.set_queue_depth(total_queue_depth());
  }
  shard.queue_cv.notify_one();
  return ticket;
}

QueryResult QueryService::run(QueryRequest req) {
  Ticket t = submit(std::move(req));
  return t.result.get();
}

bool QueryService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::CancelRequest, id);
  }
  it->second->token->request_cancel();
  return true;
}

void QueryService::dispatch_loop(Shard& shard, unsigned thread_index) {
  const unsigned track_index =
      shard.index * opts_.dispatch_threads + thread_index;
  obs::Track* track = track_index < dispatch_tracks_.size()
                          ? dispatch_tracks_[track_index]
                          : nullptr;
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mu);
      shard.queue_cv.wait(
          lock, [&shard] { return shard.stopping || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        // stopping && drained: exit after the queue is fully served.
        return;
      }
      p = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.depth.store(shard.queue.size(), std::memory_order_relaxed);
      metrics_.set_queue_depth(total_queue_depth());
      if (service_track_ != nullptr) {
        service_track_->note_qid(obs::EventKind::QueueLeave, p.id,
                                 shard.queue.size());
      }
    }
    serve_one(std::move(p), track);
  }
}

void QueryService::respond(Pending& p, QueryResult&& resp) {
  resp.id = p.id;
  if (resp.query.empty()) resp.query = p.req.query;
  // One final timestamp closes both the render phase and the end-to-end
  // latency, so the phase durations telescope to exactly the reported
  // latency (admit -> this point).
  const SteadyClock::time_point t_final = SteadyClock::now();
  resp.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      t_final - p.admitted_at);
  if (p.phase_mark.time_since_epoch().count() != 0) {
    resp.phases.render_ns = ns_between(p.phase_mark, t_final);
    resp.phases.present = true;
  }
  metrics_.record_latency(resp.latency);
  // Roll the query's cost attribution into the serving metrics (skipped
  // for responses that never reached an engine: their breakdown is empty).
  if (resp.attrib.total() > 0) {
    metrics_.add_attrib(resp.attrib, resp.virtual_time);
  }
  metrics_.add_cge_checks(resp.stats.cge_checks);
  switch (resp.outcome) {
    case QueryOutcome::Success:
    case QueryOutcome::Fail:
      metrics_.on_completed();
      break;
    case QueryOutcome::Cancelled:
      metrics_.on_cancelled();
      break;
    case QueryOutcome::DeadlineExpired:
      metrics_.on_deadline_expired();
      break;
    case QueryOutcome::Error:
      metrics_.on_error();
      break;
    case QueryOutcome::Overload:
      metrics_.on_rejected();  // defensive: overloads resolve in submit()
      break;
  }
  if (p.shard < shards_.size()) {
    shards_[p.shard]->completed.fetch_add(1, std::memory_order_relaxed);
  }
  slowlog_.consider(resp);
  {
    RecentQuery rq;
    rq.id = resp.id;
    rq.query = resp.query;
    rq.outcome = resp.outcome;
    rq.latency = resp.latency;
    rq.virtual_time = resp.virtual_time;
    rq.phases = resp.phases;
    rq.attrib = resp.attrib;
    std::lock_guard<std::mutex> lock(recent_mu_);
    if (recent_.size() >= kRecentCapacity) recent_.pop_front();
    recent_.push_back(std::move(rq));
  }
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    inflight_.erase(p.id);
  }
  p.promise.set_value(std::move(resp));
}

std::vector<RecentQuery> QueryService::recent_queries() const {
  std::lock_guard<std::mutex> lock(recent_mu_);
  return std::vector<RecentQuery>(recent_.begin(), recent_.end());
}

std::size_t QueryService::pool_idle() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->pool_mu);
    total += sh->idle_sessions.size();
  }
  return total;
}

unsigned QueryService::query_effects(const TermTemplate& tmpl) const {
  std::lock_guard<std::mutex> lock(purity_mu_);
  if (purity_ == nullptr ||
      purity_dirty_.exchange(false, std::memory_order_acq_rel)) {
    purity_prog_ = std::make_unique<AbsProgram>(
        AbsProgram::from_database(db_.syms(), db_));
    purity_ = std::make_unique<PuritySummary>(
        analyze_purity(*purity_prog_, db_.syms()));
  }
  return goal_effects(*purity_prog_, db_.syms(), builtins_, *purity_, tmpl,
                      tmpl.root);
}

std::string QueryService::cache_key(const TermTemplate& tmpl,
                                    const QueryRequest& req) {
  // Canonical query structure + variable names, then the engine identity
  // and every request field that shapes the result. Deadlines are not
  // part of the key: only completed runs are cached, and a hit satisfies
  // any deadline.
  std::string key = canonical_template_key(tmpl);
  const EngineConfig& c = req.engine;
  const unsigned flags =
      (c.lpco ? 1u : 0u) | (c.shallow ? 2u : 0u) | (c.pdo ? 4u : 0u) |
      (c.lao ? 8u : 0u) | (c.occurs_check ? 16u : 0u) |
      (c.tabling ? 32u : 0u) | (c.static_facts ? 64u : 0u) |
      (c.attrib ? 128u : 0u) | (c.use_threads ? 256u : 0u);
  key += strf("#m%u.a%u.f%x.rl%llu.qrl%llu.max%llu",
              static_cast<unsigned>(c.mode), c.agents, flags,
              (unsigned long long)c.resolution_limit,
              (unsigned long long)req.resolution_limit,
              (unsigned long long)req.max_solutions);
  return key;
}

void QueryService::serve_one(Pending&& p, obs::Track* track) {
  active_.fetch_add(1, std::memory_order_relaxed);
  struct ActiveGuard {
    std::atomic<std::uint64_t>& a;
    ~ActiveGuard() { a.fetch_sub(1, std::memory_order_relaxed); }
  } active_guard{active_};
  Shard& shard = *shards_[p.shard];

  // First phase boundary: everything before this instant was queue time.
  const SteadyClock::time_point t_dispatch = SteadyClock::now();
  QueryResult resp;
  resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
      t_dispatch - p.admitted_at);
  resp.phases.queue_ns = ns_between(p.admitted_at, t_dispatch);
  p.phase_mark = t_dispatch;
  metrics_.record_queue_wait(resp.queue_wait);
  if (track != nullptr) track->set_query(p.id);
  obs::Span serve_span(track, p.id, obs::EventKind::ServeBegin,
                       obs::EventKind::ServeEnd);

  // Deadline-aware dispatch: answer queue-expired requests without
  // spending an engine on them. (Phases: queue + render only.)
  if (p.has_deadline && t_dispatch >= p.deadline_at) {
    resp.outcome = QueryOutcome::DeadlineExpired;
    respond(p, std::move(resp));
    return;
  }
  // Cancelled while queued.
  if (p.token->stop_requested()) {
    resp.outcome = QueryOutcome::Cancelled;
    respond(p, std::move(resp));
    return;
  }

  // ---- Result cache front -------------------------------------------------
  // Decide cacheability on the dispatch thread (submit stays O(1)): parse
  // the query once for its canonical key and ask the purity analysis
  // whether running it could have observable effects. Any effect bit —
  // database writes, IO, snapshot pins, tabled answers, opaque metacalls —
  // routes the request around the cache.
  serve::ResultCache* cache = result_cache_.get();
  bool cacheable = false;
  std::string ckey;
  std::uint64_t epoch_before = 0;
  if (cache != nullptr) {
    if (p.req.cache_mode == CacheMode::Bypass) {
      cache->note_bypass();
    } else {
      try {
        const TermTemplate tmpl = parse_term_text(db_.syms(), p.req.query);
        if (query_effects(tmpl) == 0) {
          ckey = cache_key(tmpl, p.req);
          cacheable = true;
        } else {
          cache->note_bypass();
        }
      } catch (const AceError&) {
        // Unparseable: the engine path below reports the parse error.
        cache->note_bypass();
      }
    }
  }
  if (cacheable) {
    if (std::shared_ptr<const serve::CachedResult> hit = cache->lookup(ckey)) {
      // Served entirely from cache: no session checkout, no engine run.
      // The stored result carries outcome/solutions only — stats, attrib
      // and virtual_time are zero because no engine work happened.
      if (p.progress != nullptr) {
        p.progress->phase.store(static_cast<int>(ServePhase::Render),
                                std::memory_order_relaxed);
      }
      QueryResult cached = hit->result;
      cached.queue_wait = resp.queue_wait;
      cached.phases = resp.phases;
      cached.cache_hit = true;
      respond(p, std::move(cached));
      return;
    }
    // Miss: remember the pre-run epoch for the insert double-check.
    epoch_before = db_.epoch();
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Acquire),
                            std::memory_order_relaxed);
  }
  bool reused = false;
  std::unique_ptr<EngineSession> session;
  {
    obs::Span acquire_span(track, p.id, obs::EventKind::AcquireBegin,
                           obs::EventKind::AcquireEnd);
    session = checkout(shard, p.req.engine, &reused);
    acquire_span.close(reused ? 1 : 0);
  }
  const SteadyClock::time_point t_acquired = SteadyClock::now();
  resp.phases.acquire_ns = ns_between(t_dispatch, t_acquired);
  p.phase_mark = t_acquired;
  resp.engine_reused = reused;
  if (opts_.obs.recorder != nullptr) {
    session->set_recorder(opts_.obs.recorder);
    resp.trace_id = p.id;
    if (track != nullptr) {
      track->note(obs::EventKind::SessionCheckout, reused ? 1 : 0);
    }
  }

  QueryBudget budget;
  budget.max_solutions = p.req.max_solutions;
  budget.resolution_limit = p.req.resolution_limit;
  if (p.has_deadline) {
    budget.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
        p.deadline_at - t_dispatch);
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Engine),
                            std::memory_order_relaxed);
  }
  std::vector<tab::TableDep> run_deps;
  bool deps_ok = false;
  try {
    SolveResult sr =
        session->run(p.req.query, budget, p.token.get(), p.id, cacheable);
    // Wall boundaries stamped inside run(): parse covers session reset +
    // query parse/load, run covers the drive loop; both stay inside
    // [t_acquired, now] so the phase sum still telescopes exactly.
    resp.phases.parse_ns = ns_between(t_acquired, sr.wall_parse_done);
    resp.phases.run_ns = ns_between(sr.wall_parse_done, sr.wall_run_done);
    if (sr.wall_run_done.time_since_epoch().count() != 0) {
      p.phase_mark = sr.wall_run_done;
    }
    deps_ok = sr.deps_tracked && !sr.deps_tabled;
    run_deps = std::move(sr.query_deps);
    resp.absorb(std::move(sr));
  } catch (const AceError& e) {
    // Parse errors, undefined predicates, resolution-budget exhaustion,
    // uncaught throw/1 balls. The session's next run() resets all engine
    // state, so the pooled engine stays healthy regardless. Wall time of
    // the failed attempt lands in the render phase.
    resp.outcome = QueryOutcome::Error;
    resp.error = e.what();
  }

  // Publish to the result cache: only completed (Success/Fail), effect-free
  // runs whose dependency record is intact. completed() excludes stops, so
  // a deadline-truncated solution set can never be served as authoritative.
  if (cacheable && deps_ok && resp.completed() && resp.error.empty() &&
      resp.output.empty()) {
    auto entry = std::make_shared<serve::CachedResult>();
    entry->key = ckey;
    entry->result.outcome = resp.outcome;
    entry->result.query = p.req.query;
    entry->result.solutions = resp.solutions;
    entry->deps = std::move(run_deps);
    cache->insert(std::move(entry), epoch_before);
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Render),
                            std::memory_order_relaxed);
  }
  obs::Span render_span(track, p.id, obs::EventKind::RenderBegin,
                        obs::EventKind::RenderEnd);
  // Always return the session: the reset-on-run invariant means even a
  // stopped or errored session is safe to reuse.
  if (track != nullptr && opts_.obs.recorder != nullptr) {
    track->note(obs::EventKind::SessionCheckin);
  }
  checkin(shard, std::move(session));
  respond(p, std::move(resp));
}

std::unique_ptr<EngineSession> QueryService::checkout(
    Shard& shard, const EngineConfig& cfg, bool* reused_out) {
  {
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    for (auto it = shard.idle_sessions.begin();
         it != shard.idle_sessions.end(); ++it) {
      if ((*it)->config() == cfg) {
        std::unique_ptr<EngineSession> s = std::move(*it);
        shard.idle_sessions.erase(it);
        metrics_.on_pool_hit();
        shard.pool_hits.fetch_add(1, std::memory_order_relaxed);
        *reused_out = true;
        return s;
      }
    }
  }
  metrics_.on_pool_miss();
  shard.pool_misses.fetch_add(1, std::memory_order_relaxed);
  *reused_out = false;
  auto session = std::make_unique<EngineSession>(db_, builtins_, cfg, costs_);
  // Swap the session's private memo cache for the service-wide one so
  // completed tables serve every tenant (pooled sessions keep it for life).
  if (cfg.tabling) session->set_table_space(tablespace_);
  return session;
}

ServeMetricsSnapshot QueryService::metrics_snapshot() const {
  ServeMetricsSnapshot s = metrics_.snapshot();
  tab::TableSpace::Stats t = tablespace_->stats();
  s.tables_present = t.hits + t.misses + t.inserts + t.invalidations > 0 ||
                     t.entries > 0;
  s.table_hits = t.hits;
  s.table_misses = t.misses;
  s.table_inserts = t.inserts;
  s.table_invalidations = t.invalidations;
  s.table_entries = t.entries;
  s.table_bytes = t.bytes;
  if (result_cache_ != nullptr) {
    serve::ResultCache::Stats c = result_cache_->stats();
    s.cache_present = true;
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_inserts = c.inserts;
    s.cache_invalidations = c.invalidations;
    s.cache_evictions = c.evictions;
    s.cache_bypasses = c.bypasses;
    s.cache_entries = c.entries;
    s.cache_bytes = c.bytes;
    s.cache_capacity = result_cache_->capacity();
  }
  // Per-shard gauges (queue depth/peak, pool occupancy, traffic split).
  s.shards.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ServeMetricsSnapshot::ShardSnapshot ss;
    ss.queue_depth = sh->depth.load(std::memory_order_relaxed);
    ss.queue_peak = sh->depth_peak.load(std::memory_order_relaxed);
    ss.submitted = sh->submitted.load(std::memory_order_relaxed);
    ss.completed = sh->completed.load(std::memory_order_relaxed);
    ss.pool_hits = sh->pool_hits.load(std::memory_order_relaxed);
    ss.pool_misses = sh->pool_misses.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sh->pool_mu);
      ss.pool_idle = sh->idle_sessions.size();
    }
    s.shards.push_back(ss);
  }
  // Runtime health: only the service can see the pools, the registry and
  // the database's epoch machinery, so this block is filled here, not in
  // ServeMetrics::snapshot().
  s.runtime_present = true;
  s.pool_idle = pool_idle();
  s.pool_capacity = opts_.pool_capacity;
  s.dispatch_threads = opts_.dispatch_threads;
  s.active_queries = active_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    s.inflight = inflight_.size();
  }
  s.watchdog_fired = watchdog_fired_.load(std::memory_order_relaxed);
  Database::HealthStats h = db_.health_stats();
  s.db_epoch = h.epoch;
  s.db_epoch_lag = h.epoch_lag;
  s.db_limbo_depth = h.limbo_depth;
  s.db_pinned_snapshots = h.pinned_snapshots;
  s.db_index_versions = h.index_versions;
  s.db_oldest_pin_age_ns = h.oldest_pin_age_ns;
  s.db_pin_age_hw_ns = h.pin_age_hw_ns;
  return s;
}

std::string QueryService::watchdog_report(
    const QueryProgress& prog, std::chrono::nanoseconds age) const {
  const ServePhase phase =
      static_cast<ServePhase>(prog.phase.load(std::memory_order_relaxed));
  std::string out = strf(
      "watchdog: qid=%llu over budget (age %lldms, budget %lldms) "
      "phase=%s  %% %s\n",
      (unsigned long long)prog.id,
      (long long)(age.count() / 1000000),
      (long long)(opts_.obs.watchdog_budget.count() / 1000000),
      serve_phase_name(phase), prog.query.c_str());
  // Attribution rollup across served queries: the serving-side picture of
  // where virtual time has been going (top-3 categories).
  ServeMetricsSnapshot ms = metrics_.snapshot();
  if (ms.attrib.total() > 0) {
    out += "  attrib top:";
    for (CostCat cat : ms.attrib.top_categories(3)) {
      out += strf(" %s:%llu", cost_cat_name(cat),
                  (unsigned long long)ms.attrib.at[static_cast<std::size_t>(
                      cat)]);
    }
    out += "\n";
  }
  // Flight-recorder evidence: the stuck query's own timeline (phase spans
  // still open are closed at the track's last event). Ring snapshots are
  // lock-free; nothing here touches the running query.
  if (opts_.obs.recorder != nullptr) {
    std::vector<obs::QueryTimeline> tls =
        obs::extract_timelines(opts_.obs.recorder->snapshot(),
                               /*include_engine_events=*/true);
    for (const obs::QueryTimeline& tl : tls) {
      if (tl.qid != prog.id) continue;
      out += obs::render_timeline_detail(tl);
      break;
    }
  }
  return out;
}

void QueryService::watchdog_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wd_mu_);
      wd_cv_.wait_for(lock, opts_.obs.watchdog_poll,
                      [this] { return wd_stop_; });
      if (wd_stop_) return;
    }
    const SteadyClock::time_point now = SteadyClock::now();
    std::vector<std::shared_ptr<QueryProgress>> over;
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      for (const auto& [id, prog] : inflight_) {
        if (now - prog->admitted_at >= opts_.obs.watchdog_budget &&
            !prog->dumped.load(std::memory_order_relaxed)) {
          over.push_back(prog);
        }
      }
    }
    for (const auto& prog : over) {
      if (prog->dumped.exchange(true, std::memory_order_relaxed)) continue;
      const auto age = std::chrono::duration_cast<std::chrono::nanoseconds>(
          now - prog->admitted_at);
      watchdog_fired_.fetch_add(1, std::memory_order_relaxed);
      if (service_track_ != nullptr) {
        service_track_->note_qid(
            obs::EventKind::WatchdogFire, prog->id,
            static_cast<std::uint64_t>(
                prog->phase.load(std::memory_order_relaxed)),
            static_cast<std::uint64_t>(age.count() / 1000000));
      }
      slowlog_.add_flight_note(watchdog_report(*prog, age));
    }
  }
}

void QueryService::checkin(Shard& shard,
                           std::unique_ptr<EngineSession> session) {
  std::lock_guard<std::mutex> lock(shard.pool_mu);
  if (shard.idle_sessions.size() < opts_.pool_capacity) {
    shard.idle_sessions.push_back(std::move(session));
  }
  // else: drop — the pool is bounded.
}

}  // namespace ace
