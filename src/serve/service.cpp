#include "serve/service.hpp"

#include <algorithm>

#include "obs/recorder.hpp"
#include "obs/timeline.hpp"
#include "support/strutil.hpp"

namespace ace {

using SteadyClock = std::chrono::steady_clock;

namespace {

std::chrono::microseconds since(SteadyClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      SteadyClock::now() - t0);
}

std::uint64_t ns_between(SteadyClock::time_point a,
                         SteadyClock::time_point b) {
  return b > a ? static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         b - a)
                         .count())
               : 0;
}

}  // namespace

const char* serve_phase_name(ServePhase p) {
  switch (p) {
    case ServePhase::Queued:
      return "queued";
    case ServePhase::Acquire:
      return "acquire";
    case ServePhase::Engine:
      return "engine";
    case ServePhase::Render:
      return "render";
  }
  return "?";
}

QueryService::QueryService(Database& db, ServiceOptions opts,
                           const CostModel& costs)
    : db_(db),
      opts_(opts),
      costs_(costs),
      builtins_(db.syms()),
      tablespace_(std::make_shared<tab::TableSpace>(&db)),
      slowlog_(opts.slowlog),
      started_at_(SteadyClock::now()) {
  ACE_CHECK(opts_.dispatch_threads >= 1);
  if (opts_.recorder != nullptr) {
    // Tracks are created before the threads so every dispatch thread sees
    // its own pointer without synchronization.
    service_track_ = opts_.recorder->create_track("service");
    dispatch_tracks_.reserve(opts_.dispatch_threads);
    for (unsigned i = 0; i < opts_.dispatch_threads; ++i) {
      dispatch_tracks_.push_back(
          opts_.recorder->create_track(strf("dispatch %u", i)));
    }
  }
  threads_.reserve(opts_.dispatch_threads);
  for (unsigned i = 0; i < opts_.dispatch_threads; ++i) {
    threads_.emplace_back([this, i] { dispatch_loop(i); });
  }
  if (opts_.watchdog_budget.count() > 0) {
    wd_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (wd_thread_.joinable()) wd_thread_.join();
}

std::size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

QueryService::Ticket QueryService::submit(QueryRequest req) {
  metrics_.on_submitted();
  Pending p;
  p.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.req = std::move(req);
  p.token = std::make_shared<CancelToken>();
  p.admitted_at = SteadyClock::now();
  std::chrono::nanoseconds dl = p.req.deadline.count() != 0
                                    ? p.req.deadline
                                    : opts_.default_deadline;
  p.has_deadline = dl.count() > 0;
  p.deadline_at =
      p.has_deadline ? p.admitted_at + dl : SteadyClock::time_point::max();
  if (p.req.resolution_limit == 0) {
    p.req.resolution_limit = opts_.default_resolution_limit;
  }
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::Submit, p.id);
  }

  Ticket ticket;
  ticket.id = p.id;
  ticket.result = p.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ || queue_.size() >= opts_.queue_capacity) {
      // Reject-with-overload: resolve the future immediately; the caller
      // sees backpressure without blocking.
      metrics_.on_rejected();
      QueryResult resp;
      resp.id = p.id;
      resp.query = p.req.query;
      resp.outcome = QueryOutcome::Overload;
      resp.error = stopping_ ? "service stopping" : "admission queue full";
      resp.latency = since(p.admitted_at);
      p.promise.set_value(std::move(resp));
      return ticket;
    }
    metrics_.on_admitted();
    if (service_track_ != nullptr) {
      service_track_->note_qid(obs::EventKind::QueueEnter, p.id,
                               queue_.size());
    }
    p.progress = std::make_shared<QueryProgress>();
    p.progress->id = p.id;
    p.progress->query = p.req.query;
    p.progress->admitted_at = p.admitted_at;
    p.progress->token = p.token;
    {
      std::lock_guard<std::mutex> rlock(reg_mu_);
      inflight_.emplace(p.id, p.progress);
    }
    queue_.push_back(std::move(p));
    metrics_.set_queue_depth(queue_.size());
  }
  queue_cv_.notify_one();
  return ticket;
}

QueryResult QueryService::run(QueryRequest req) {
  Ticket t = submit(std::move(req));
  return t.result.get();
}

bool QueryService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  if (service_track_ != nullptr) {
    service_track_->note_qid(obs::EventKind::CancelRequest, id);
  }
  it->second->token->request_cancel();
  return true;
}

void QueryService::dispatch_loop(unsigned thread_index) {
  obs::Track* track = thread_index < dispatch_tracks_.size()
                          ? dispatch_tracks_[thread_index]
                          : nullptr;
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ && drained: exit after the queue is fully served.
        return;
      }
      p = std::move(queue_.front());
      queue_.pop_front();
      metrics_.set_queue_depth(queue_.size());
      if (service_track_ != nullptr) {
        service_track_->note_qid(obs::EventKind::QueueLeave, p.id,
                                 queue_.size());
      }
    }
    serve_one(std::move(p), track);
  }
}

void QueryService::respond(Pending& p, QueryResult&& resp) {
  resp.id = p.id;
  if (resp.query.empty()) resp.query = p.req.query;
  // One final timestamp closes both the render phase and the end-to-end
  // latency, so the phase durations telescope to exactly the reported
  // latency (admit -> this point).
  const SteadyClock::time_point t_final = SteadyClock::now();
  resp.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      t_final - p.admitted_at);
  if (p.phase_mark.time_since_epoch().count() != 0) {
    resp.phases.render_ns = ns_between(p.phase_mark, t_final);
    resp.phases.present = true;
  }
  metrics_.record_latency(resp.latency);
  // Roll the query's cost attribution into the serving metrics (skipped
  // for responses that never reached an engine: their breakdown is empty).
  if (resp.attrib.total() > 0) {
    metrics_.add_attrib(resp.attrib, resp.virtual_time);
  }
  metrics_.add_cge_checks(resp.stats.cge_checks);
  switch (resp.outcome) {
    case QueryOutcome::Success:
    case QueryOutcome::Fail:
      metrics_.on_completed();
      break;
    case QueryOutcome::Cancelled:
      metrics_.on_cancelled();
      break;
    case QueryOutcome::DeadlineExpired:
      metrics_.on_deadline_expired();
      break;
    case QueryOutcome::Error:
      metrics_.on_error();
      break;
    case QueryOutcome::Overload:
      metrics_.on_rejected();  // defensive: overloads resolve in submit()
      break;
  }
  slowlog_.consider(resp);
  {
    RecentQuery rq;
    rq.id = resp.id;
    rq.query = resp.query;
    rq.outcome = resp.outcome;
    rq.latency = resp.latency;
    rq.virtual_time = resp.virtual_time;
    rq.phases = resp.phases;
    rq.attrib = resp.attrib;
    std::lock_guard<std::mutex> lock(recent_mu_);
    if (recent_.size() >= kRecentCapacity) recent_.pop_front();
    recent_.push_back(std::move(rq));
  }
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    inflight_.erase(p.id);
  }
  p.promise.set_value(std::move(resp));
}

std::vector<RecentQuery> QueryService::recent_queries() const {
  std::lock_guard<std::mutex> lock(recent_mu_);
  return std::vector<RecentQuery>(recent_.begin(), recent_.end());
}

std::size_t QueryService::pool_idle() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return idle_sessions_.size();
}

void QueryService::serve_one(Pending&& p, obs::Track* track) {
  active_.fetch_add(1, std::memory_order_relaxed);
  struct ActiveGuard {
    std::atomic<std::uint64_t>& a;
    ~ActiveGuard() { a.fetch_sub(1, std::memory_order_relaxed); }
  } active_guard{active_};

  // First phase boundary: everything before this instant was queue time.
  const SteadyClock::time_point t_dispatch = SteadyClock::now();
  QueryResult resp;
  resp.queue_wait = std::chrono::duration_cast<std::chrono::microseconds>(
      t_dispatch - p.admitted_at);
  resp.phases.queue_ns = ns_between(p.admitted_at, t_dispatch);
  p.phase_mark = t_dispatch;
  metrics_.record_queue_wait(resp.queue_wait);
  if (track != nullptr) track->set_query(p.id);
  obs::Span serve_span(track, p.id, obs::EventKind::ServeBegin,
                       obs::EventKind::ServeEnd);

  // Deadline-aware dispatch: answer queue-expired requests without
  // spending an engine on them. (Phases: queue + render only.)
  if (p.has_deadline && t_dispatch >= p.deadline_at) {
    resp.outcome = QueryOutcome::DeadlineExpired;
    respond(p, std::move(resp));
    return;
  }
  // Cancelled while queued.
  if (p.token->stop_requested()) {
    resp.outcome = QueryOutcome::Cancelled;
    respond(p, std::move(resp));
    return;
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Acquire),
                            std::memory_order_relaxed);
  }
  bool reused = false;
  std::unique_ptr<EngineSession> session;
  {
    obs::Span acquire_span(track, p.id, obs::EventKind::AcquireBegin,
                           obs::EventKind::AcquireEnd);
    session = checkout(p.req.engine, &reused);
    acquire_span.close(reused ? 1 : 0);
  }
  const SteadyClock::time_point t_acquired = SteadyClock::now();
  resp.phases.acquire_ns = ns_between(t_dispatch, t_acquired);
  p.phase_mark = t_acquired;
  resp.engine_reused = reused;
  if (opts_.recorder != nullptr) {
    session->set_recorder(opts_.recorder);
    resp.trace_id = p.id;
    if (track != nullptr) {
      track->note(obs::EventKind::SessionCheckout, reused ? 1 : 0);
    }
  }

  QueryBudget budget;
  budget.max_solutions = p.req.max_solutions;
  budget.resolution_limit = p.req.resolution_limit;
  if (p.has_deadline) {
    budget.deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
        p.deadline_at - t_dispatch);
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Engine),
                            std::memory_order_relaxed);
  }
  try {
    SolveResult sr = session->run(p.req.query, budget, p.token.get(), p.id);
    // Wall boundaries stamped inside run(): parse covers session reset +
    // query parse/load, run covers the drive loop; both stay inside
    // [t_acquired, now] so the phase sum still telescopes exactly.
    resp.phases.parse_ns = ns_between(t_acquired, sr.wall_parse_done);
    resp.phases.run_ns = ns_between(sr.wall_parse_done, sr.wall_run_done);
    if (sr.wall_run_done.time_since_epoch().count() != 0) {
      p.phase_mark = sr.wall_run_done;
    }
    resp.absorb(std::move(sr));
  } catch (const AceError& e) {
    // Parse errors, undefined predicates, resolution-budget exhaustion,
    // uncaught throw/1 balls. The session's next run() resets all engine
    // state, so the pooled engine stays healthy regardless. Wall time of
    // the failed attempt lands in the render phase.
    resp.outcome = QueryOutcome::Error;
    resp.error = e.what();
  }

  if (p.progress != nullptr) {
    p.progress->phase.store(static_cast<int>(ServePhase::Render),
                            std::memory_order_relaxed);
  }
  obs::Span render_span(track, p.id, obs::EventKind::RenderBegin,
                        obs::EventKind::RenderEnd);
  // Always return the session: the reset-on-run invariant means even a
  // stopped or errored session is safe to reuse.
  if (track != nullptr && opts_.recorder != nullptr) {
    track->note(obs::EventKind::SessionCheckin);
  }
  checkin(std::move(session));
  respond(p, std::move(resp));
}

std::unique_ptr<EngineSession> QueryService::checkout(
    const EngineConfig& cfg, bool* reused_out) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (auto it = idle_sessions_.begin(); it != idle_sessions_.end(); ++it) {
      if ((*it)->config() == cfg) {
        std::unique_ptr<EngineSession> s = std::move(*it);
        idle_sessions_.erase(it);
        metrics_.on_pool_hit();
        *reused_out = true;
        return s;
      }
    }
  }
  metrics_.on_pool_miss();
  *reused_out = false;
  auto session = std::make_unique<EngineSession>(db_, builtins_, cfg, costs_);
  // Swap the session's private memo cache for the service-wide one so
  // completed tables serve every tenant (pooled sessions keep it for life).
  if (cfg.tabling) session->set_table_space(tablespace_);
  return session;
}

ServeMetricsSnapshot QueryService::metrics_snapshot() const {
  ServeMetricsSnapshot s = metrics_.snapshot();
  tab::TableSpace::Stats t = tablespace_->stats();
  s.tables_present = t.hits + t.misses + t.inserts + t.invalidations > 0 ||
                     t.entries > 0;
  s.table_hits = t.hits;
  s.table_misses = t.misses;
  s.table_inserts = t.inserts;
  s.table_invalidations = t.invalidations;
  s.table_entries = t.entries;
  s.table_bytes = t.bytes;
  // Runtime health: only the service can see the pool, the registry and
  // the database's epoch machinery, so this block is filled here, not in
  // ServeMetrics::snapshot().
  s.runtime_present = true;
  s.pool_idle = pool_idle();
  s.pool_capacity = opts_.pool_capacity;
  s.dispatch_threads = opts_.dispatch_threads;
  s.active_queries = active_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    s.inflight = inflight_.size();
  }
  s.watchdog_fired = watchdog_fired_.load(std::memory_order_relaxed);
  Database::HealthStats h = db_.health_stats();
  s.db_epoch = h.epoch;
  s.db_epoch_lag = h.epoch_lag;
  s.db_limbo_depth = h.limbo_depth;
  s.db_pinned_snapshots = h.pinned_snapshots;
  s.db_index_versions = h.index_versions;
  s.db_oldest_pin_age_ns = h.oldest_pin_age_ns;
  s.db_pin_age_hw_ns = h.pin_age_hw_ns;
  return s;
}

std::string QueryService::watchdog_report(
    const QueryProgress& prog, std::chrono::nanoseconds age) const {
  const ServePhase phase =
      static_cast<ServePhase>(prog.phase.load(std::memory_order_relaxed));
  std::string out = strf(
      "watchdog: qid=%llu over budget (age %lldms, budget %lldms) "
      "phase=%s  %% %s\n",
      (unsigned long long)prog.id,
      (long long)(age.count() / 1000000),
      (long long)(opts_.watchdog_budget.count() / 1000000),
      serve_phase_name(phase), prog.query.c_str());
  // Attribution rollup across served queries: the serving-side picture of
  // where virtual time has been going (top-3 categories).
  ServeMetricsSnapshot ms = metrics_.snapshot();
  if (ms.attrib.total() > 0) {
    out += "  attrib top:";
    for (CostCat cat : ms.attrib.top_categories(3)) {
      out += strf(" %s:%llu", cost_cat_name(cat),
                  (unsigned long long)ms.attrib.at[static_cast<std::size_t>(
                      cat)]);
    }
    out += "\n";
  }
  // Flight-recorder evidence: the stuck query's own timeline (phase spans
  // still open are closed at the track's last event). Ring snapshots are
  // lock-free; nothing here touches the running query.
  if (opts_.recorder != nullptr) {
    std::vector<obs::QueryTimeline> tls =
        obs::extract_timelines(opts_.recorder->snapshot(),
                               /*include_engine_events=*/true);
    for (const obs::QueryTimeline& tl : tls) {
      if (tl.qid != prog.id) continue;
      out += obs::render_timeline_detail(tl);
      break;
    }
  }
  return out;
}

void QueryService::watchdog_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wd_mu_);
      wd_cv_.wait_for(lock, opts_.watchdog_poll, [this] { return wd_stop_; });
      if (wd_stop_) return;
    }
    const SteadyClock::time_point now = SteadyClock::now();
    std::vector<std::shared_ptr<QueryProgress>> over;
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      for (const auto& [id, prog] : inflight_) {
        if (now - prog->admitted_at >= opts_.watchdog_budget &&
            !prog->dumped.load(std::memory_order_relaxed)) {
          over.push_back(prog);
        }
      }
    }
    for (const auto& prog : over) {
      if (prog->dumped.exchange(true, std::memory_order_relaxed)) continue;
      const auto age = std::chrono::duration_cast<std::chrono::nanoseconds>(
          now - prog->admitted_at);
      watchdog_fired_.fetch_add(1, std::memory_order_relaxed);
      if (service_track_ != nullptr) {
        service_track_->note_qid(
            obs::EventKind::WatchdogFire, prog->id,
            static_cast<std::uint64_t>(
                prog->phase.load(std::memory_order_relaxed)),
            static_cast<std::uint64_t>(age.count() / 1000000));
      }
      slowlog_.add_flight_note(watchdog_report(*prog, age));
    }
  }
}

void QueryService::checkin(std::unique_ptr<EngineSession> session) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (idle_sessions_.size() < opts_.pool_capacity) {
    idle_sessions_.push_back(std::move(session));
  }
  // else: drop — the pool is bounded.
}

}  // namespace ace
