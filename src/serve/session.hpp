// EngineSession: a pre-warmed, reusable engine instance for the serving
// layer (and the ace::Engine facade, which delegates here).
//
// A session owns everything one query execution needs except the shared
// Database: stores, workers, the and-/or-parallel context, the IO sink and
// a cancellation token. Unlike the historical machines — which allocated a
// fresh Store and fresh Workers per solve() call — a session keeps its
// arenas alive across queries and merely *truncates* them between runs.
// ChunkedVector never frees chunks on truncate, so a pooled session's next
// query executes entirely in warm memory: no chunk-table zeroing, no chunk
// allocation, no Store/Worker construction on the per-query hot path. This
// is the engine-pool reuse win that bench_serve measures.
//
// Stop protocol: run() arms the session token (or an externally supplied
// one) with the query's wall-clock deadline; every agent polls the token in
// Worker::step() and both drivers poll it between steps. A stop unwinds by
// QueryStopped; run() catches Cancelled/Deadline stops and returns the
// solutions found so far with SolveResult::stop set. ResolutionLimit stops
// are re-thrown (the historical contract of the resolution budget).
//
// Observability: set_recorder() attaches an obs::Recorder; the session
// creates one track per agent plus a session track, and every run() is
// wrapped in a query span (QueryBegin/ParseBegin/ParseEnd/RunBegin/RunEnd/
// QueryEnd) stamped with the caller-supplied query id, with the engine's
// per-step events (steals, slots, optimization triggers, MUSE copies)
// landing on the agent tracks. Without a recorder the engine pays one
// predicted branch per event site (Worker::trace's combined null check).
//
// Reuse invariants (see docs/INTERNALS.md "Serving layer"):
//   * run() resets all per-query state before loading the query, so a
//     cancelled, deadline-expired or failed run can never wedge a worker:
//     the next run starts from truncated arenas regardless of how the
//     previous one ended.
//   * a session is single-query-at-a-time; concurrency comes from running
//     many sessions (the QueryService pool), never from sharing one.
//   * the Database outlives the session and is the only mutable state
//     shared between concurrent sessions (epoch-reclaimed; workers read it
//     through per-step db::Snapshot pins, see docs/database.md).
#pragma once

#include <chrono>
#include <climits>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/worker.hpp"

namespace ace {

class ParContext;
class OrpContext;

namespace tab {
class TableSpace;
}

namespace obs {
class Recorder;
class Track;
}

class EngineSession {
 public:
  EngineSession(Database& db, const Builtins& builtins, EngineConfig cfg,
                const CostModel& costs = CostModel::standard());
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  // Runs one query to completion / budget exhaustion. If `external` is
  // non-null it is used as the stop token for this run (the serving layer
  // hands out per-request tokens so queued requests can be cancelled);
  // otherwise the session's own token is reset and used. `qid` stamps the
  // run's trace events when a recorder is attached (0 = anonymous).
  // `collect_deps` arms per-worker query-dependency tracking for the
  // serving result cache (SolveResult::query_deps); off by default so the
  // CLI/Engine paths stay bit-identical to a build without the cache.
  SolveResult run(const std::string& query_text,
                  const QueryBudget& budget = {},
                  CancelToken* external = nullptr, std::uint64_t qid = 0,
                  bool collect_deps = false);

  // The session-owned token (valid when run() was called without an
  // external one): cancel from another thread to stop the current query.
  CancelToken& token() { return token_; }

  const EngineConfig& config() const { return cfg_; }
  // Number of completed run() calls; >0 means the next run is a reuse.
  std::uint64_t queries_run() const { return queries_run_; }

  // Optional event tracing, applied to every agent on the next run.
  void set_tracer(Tracer* tracer);

  // Attaches the real-thread observability recorder (nullptr detaches).
  // Creates the session's tracks on first attach; idempotent otherwise.
  void set_recorder(obs::Recorder* recorder);

  // Cross-query memo-table cache. When the config has tabling enabled the
  // session constructs a private TableSpace, so repeated queries on one
  // session (the ace::Engine facade) already reuse completed tables. The
  // serving layer replaces it with one space shared by the whole pool, so
  // a table completed for one tenant serves every later variant call
  // until an assert/retract into a supporting predicate invalidates it.
  void set_table_space(std::shared_ptr<tab::TableSpace> space);
  tab::TableSpace* table_space() const { return tabsp_.get(); }

 private:
  void reset();
  SolveResult run_seq(const QueryBudget& budget, CancelToken* tok);
  SolveResult run_andp(const QueryBudget& budget, CancelToken* tok);
  SolveResult run_orp(const QueryBudget& budget, CancelToken* tok);
  void finalize(SolveResult& result);
  // Absorbs Cancelled/Deadline into result.stop; rethrows other causes.
  void absorb_stop(const QueryStopped& stopped, SolveResult& result);

  Database& db_;
  const Builtins& builtins_;
  EngineConfig cfg_;
  CostModel costs_;
  IoSink io_;
  std::vector<std::unique_ptr<Store>> stores_;  // [0] shared (Seq/Andp);
                                                // one per agent for Orp
  std::unique_ptr<ParContext> par_;             // Andp only
  std::unique_ptr<OrpContext> orp_;             // Orp only
  std::vector<std::unique_ptr<Worker>> owned_;
  std::vector<Worker*> workers_;
  std::shared_ptr<tab::TableSpace> tabsp_;
  CancelToken token_;
  std::uint64_t queries_run_ = 0;

  obs::Recorder* recorder_ = nullptr;
  obs::Track* session_track_ = nullptr;
  std::vector<obs::Track*> agent_tracks_;  // parallel to workers_
};

}  // namespace ace
