#include "serve/result_cache.hpp"

#include <algorithm>

#include "db/database.hpp"

namespace ace {
namespace serve {

ResultCache::ResultCache(Database* db, std::size_t capacity)
    : db_(db), capacity_(capacity == 0 ? 1 : capacity) {
  if (db_ != nullptr) {
    hook_id_ = db_->add_change_hook(
        [this](std::uint32_t sym, unsigned arity) {
          invalidate_pred(sym, arity);
        });
  }
}

ResultCache::~ResultCache() {
  if (db_ != nullptr) db_->remove_change_hook(hook_id_);
}

std::uint64_t ResultCache::approx_bytes(const CachedResult& e) {
  std::uint64_t n = sizeof(CachedResult) + e.key.size();
  for (const std::string& s : e.result.solutions) n += s.size();
  n += e.result.query.size() + e.result.output.size() +
       e.result.error.size();
  n += e.deps.size() * sizeof(tab::TableDep);
  return n;
}

bool ResultCache::erase_locked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  bytes_ -= approx_bytes(*it->second.entry);
  lru_.erase(it->second.lru);
  entries_.erase(it);
  // Stale keys may remain in by_dep_ lists; a missing-key erase later is a
  // no-op, so they are harmless and die with their predicate's next
  // invalidation (same policy as tab::TableSpace).
  return true;
}

std::shared_ptr<const CachedResult> ResultCache::lookup(
    const std::string& key) {
  std::shared_ptr<const CachedResult> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second.entry;
      // LRU bump now; a failed validation below removes the entry anyway.
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    }
  }
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Hit-time validation, outside mu_ (no lock nesting with the database):
  // every recorded generation must still be the published one. This closes
  // the publication->hook-drain window — a mutated predicate makes the
  // generations mismatch immediately, before its hook runs.
  if (db_ != nullptr) {
    for (const tab::TableDep& d : entry->deps) {
      if (db_->pred_generation(d.sym, d.arity) != d.gen) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          erase_locked(key);
        }
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

bool ResultCache::insert(std::shared_ptr<const CachedResult> entry,
                         std::uint64_t epoch_before) {
  // Discard outright when any write was published since the run began —
  // the entry may have observed a half-old, half-new database.
  if (db_ != nullptr && db_->epoch() != epoch_before) return false;
  const std::string key = entry->key;
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erase_locked(key);  // replace an older same-key derivation
    for (const tab::TableDep& d : entry->deps) {
      auto& keys = by_dep_[tab::dep_key(d.sym, d.arity)];
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
    bytes_ += approx_bytes(*entry);
    lru_.push_front(key);
    entries_[key] = Slot{std::move(entry), lru_.begin()};
    while (entries_.size() > capacity_) {
      erase_locked(lru_.back());
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
  // Publication double-check: a write racing this insert may have fired
  // its change hook before the entry was visible to it. Re-read the epoch
  // and self-invalidate on movement (the tabling publication pattern).
  if (db_ != nullptr && db_->epoch() != epoch_before) {
    bool dropped;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dropped = erase_locked(key);
    }
    if (dropped) {
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

void ResultCache::invalidate_pred(std::uint32_t sym, unsigned arity) {
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_dep_.find(tab::dep_key(sym, arity));
    if (it == by_dep_.end()) return;
    // Move the list out so erase_locked()'s by_dep_ laziness cannot touch
    // the bucket we are iterating.
    std::vector<std::string> keys = std::move(it->second);
    by_dep_.erase(it);
    for (const std::string& key : keys) {
      if (erase_locked(key)) ++dropped;
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  by_dep_.clear();
  bytes_ = 0;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace serve
}  // namespace ace
