#include "serve/http_metrics.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/diag.hpp"
#include "support/strutil.hpp"

namespace ace {

MetricsHttpServer::MetricsHttpServer(std::uint16_t port, RenderFn render)
    : render_(std::move(render)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw AceError(strf("metrics: socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw AceError(strf("metrics: cannot bind 127.0.0.1:%u: %s",
                        unsigned{port}, std::strerror(err)));
  }
  if (::listen(listen_fd_, 16) < 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw AceError(strf("metrics: listen() failed: %s", std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  thread_ = std::thread([this] { accept_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept(); close() then releases the fd.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::set_handler(const std::string& path,
                                    RenderFn render) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(render);
}

std::string MetricsHttpServer::request_path(const char* buf, std::size_t n) {
  // "GET /path HTTP/1.1\r\n..." — tolerate any method token; return the
  // path up to the first space or query string. Empty on malformed input.
  std::size_t i = 0;
  while (i < n && buf[i] != ' ') ++i;
  if (i >= n) return "";
  ++i;  // the space
  std::size_t start = i;
  while (i < n && buf[i] != ' ' && buf[i] != '\r' && buf[i] != '\n' &&
         buf[i] != '?') {
    ++i;
  }
  return std::string(buf + start, i - start);
}

void MetricsHttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listener gone
    }
    // Read the request line + headers (best effort: a scrape request fits
    // in one read; we only need the connection to have *sent* something).
    char buf[2048];
    ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    RenderFn handler;
    if (n > 0) {
      std::string path = request_path(buf, static_cast<std::size_t>(n));
      std::lock_guard<std::mutex> lock(handlers_mu_);
      auto it = handlers_.find(path);
      if (it != handlers_.end()) handler = it->second;
    }
    std::string body;
    bool ok = true;
    try {
      body = handler ? handler() : render_();
    } catch (const std::exception& e) {
      ok = false;
      body = strf("render error: %s\n", e.what());
    }
    std::string resp = strf(
        "HTTP/1.1 %s\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        ok ? "200 OK" : "500 Internal Server Error", body.size());
    resp += body;
    std::size_t off = 0;
    while (off < resp.size()) {
      ssize_t sent = ::send(fd, resp.data() + off, resp.size() - off,
#ifdef MSG_NOSIGNAL
                            MSG_NOSIGNAL
#else
                            0
#endif
      );
      if (sent <= 0) break;
      off += static_cast<std::size_t>(sent);
    }
    ::close(fd);
  }
}

}  // namespace ace
