#include "orp/machine.hpp"

#include "serve/session.hpp"

namespace ace {

OrpMachine::OrpMachine(Database& db, OrpOptions opts, const CostModel& costs)
    : db_(db), opts_(opts), costs_(costs), builtins_(db.syms()) {
  ACE_CHECK(opts_.agents >= 1);
}

SolveResult OrpMachine::solve(const std::string& query_text,
                              std::size_t max_solutions) {
  // One-shot facade over the reusable serving-layer session (the serving
  // pool keeps sessions alive across queries; here one is built per call).
  // The MUSE drive loop lives in EngineSession::run_orp.
  EngineConfig cfg;
  cfg.mode = EngineMode::Orp;
  cfg.agents = opts_.agents;
  cfg.lao = opts_.lao;
  cfg.occurs_check = opts_.occurs_check;
  cfg.resolution_limit = opts_.resolution_limit;
  EngineSession session(db_, builtins_, cfg, costs_);
  session.set_tracer(opts_.tracer);
  QueryBudget budget;
  budget.max_solutions = max_solutions;
  return session.run(query_text, budget);
}

}  // namespace ace
