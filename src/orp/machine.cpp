#include "orp/machine.hpp"

#include <algorithm>
#include <memory>

#include "orp/shared_tree.hpp"

namespace ace {

OrpMachine::OrpMachine(Database& db, OrpOptions opts, const CostModel& costs)
    : db_(db), opts_(opts), costs_(costs), builtins_(db.syms()) {
  ACE_CHECK(opts_.agents >= 1);
}

SolveResult OrpMachine::solve(const std::string& query_text,
                              std::size_t max_solutions) {
  TermTemplate query = parse_term_text(db_.syms(), query_text);

  IoSink io;
  OrpContext orp;

  WorkerOptions wopts;
  wopts.parallel_and = false;  // '&' runs sequentially in the or-engine
  wopts.lao = opts_.lao;
  wopts.occurs_check = opts_.occurs_check;
  wopts.resolution_limit = opts_.resolution_limit;

  std::vector<std::unique_ptr<Store>> stores;
  std::vector<std::unique_ptr<Worker>> owned;
  std::vector<Worker*> workers;
  for (unsigned a = 0; a < opts_.agents; ++a) {
    stores.push_back(std::make_unique<Store>(1));
    owned.push_back(std::make_unique<Worker>(a, *stores.back(), db_,
                                             builtins_, costs_, wopts, io));
    workers.push_back(owned.back().get());
  }
  for (Worker* w : workers) {
    w->orp_ = &orp;
    w->group_ = &workers;
    w->seg_ = 0;  // each worker owns segment 0 of its private store
    w->tracer_ = opts_.tracer;
    w->mode_ = Worker::Mode::Idle;
  }
  workers[0]->load_query(query);
  // Every worker can land on a solution; give them all the query-variable
  // bookkeeping (stack copying preserves offsets, so the addresses match).
  for (Worker* w : workers) {
    w->query_ = workers[0]->query_;
    w->query_vars_ = workers[0]->query_vars_;
  }

  SolveResult result;
  std::uint64_t idle_streak = 0;
  const std::uint64_t stall_limit = 1u << 22;
  while (result.solutions.size() < max_solutions) {
    // Exhausted when every worker is idle and no public alternatives
    // remain.
    bool all_idle = std::all_of(workers.begin(), workers.end(), [](Worker* w) {
      return w->mode_ == Worker::Mode::Idle;
    });
    if (all_idle && !orp.has_public_work()) break;

    Worker* next = nullptr;
    for (Worker* w : workers) {
      if (next == nullptr || w->clock_ < next->clock_) next = w;
    }
    StepOutcome out = next->step();
    if (out == StepOutcome::Solution) {
      result.solutions.push_back(next->solution_string());
      if (result.solutions.size() >= max_solutions) break;
      next->request_next_solution();
      idle_streak = 0;
    } else if (out == StepOutcome::Idle) {
      if (++idle_streak > stall_limit) {
        throw AceError("or-parallel driver stall");
      }
    } else {
      idle_streak = 0;
    }
  }

  // Makespan: the last clock that did useful work; use the max clock.
  std::uint64_t makespan = 0;
  for (Worker* w : workers) {
    makespan = std::max(makespan, w->clock_);
    result.stats.add(w->stats_);
    result.per_agent.push_back(w->stats_);
    result.agent_clocks.push_back(w->clock_);
  }
  result.virtual_time = makespan;
  result.output = io.text;
  return result;
}

}  // namespace ace
