// OrpMachine: the MUSE-style or-parallel engine facade.
//
// DEPRECATED (PR 2): thin wrapper kept for one PR. New code constructs
// ace::Engine with EngineMode::Orp (engine/engine.hpp), which pre-warms
// one session instead of rebuilding stores and workers per solve().
//
// Each agent is a full sequential engine over a private Store; idle agents
// obtain work through sharing sessions (stack copying) and public
// choice-point counters. The LAO optimization is toggled per machine.
//
// Note: the or-parallel machine runs under the deterministic virtual-time
// driver only — MUSE-style copying reads a peer's stacks at step
// granularity, which the simulator makes atomic (DESIGN.md §4). Solutions
// are reported in discovery order, which (as in any or-parallel Prolog)
// need not be the sequential solution order.
#pragma once

#include "engine/seq_engine.hpp"
#include "engine/worker.hpp"

namespace ace {

struct OrpOptions {
  unsigned agents = 1;
  bool lao = false;
  Tracer* tracer = nullptr;  // optional event tracing
  bool occurs_check = false;
  std::uint64_t resolution_limit = 0;
};

class OrpMachine {
 public:
  explicit OrpMachine(Database& db, OrpOptions opts = {},
                      const CostModel& costs = CostModel::standard());

  SolveResult solve(const std::string& query_text,
                    std::size_t max_solutions = SIZE_MAX);

 private:
  Database& db_;
  OrpOptions opts_;
  CostModel costs_;
  Builtins builtins_;
};

}  // namespace ace
