// MUSE-style or-parallel sharing: public choice-point nodes and the
// stack-copying machinery.
//
// Each or-parallel worker is a full sequential engine over a private Store.
// When an idle worker finds no public alternatives it picks the busiest
// peer, turns that peer's private choice points into public SharedNodes
// (a "sharing session"), copies the peer's stacks up to the chosen node
// (with binding de-installation along the diff) and resumes backtracking
// at the copied node, whose alternatives now come from the shared counter.
//
// LAO refills an exhausted public node in place (generation-guarded), which
// is exactly the paper's "all alternatives clubbed at one choice point".
#pragma once

#include <deque>
#include <mutex>

#include "engine/worker.hpp"

namespace ace {

struct SharedNode {
  std::mutex mu;
  const Predicate* pred = nullptr;
  IndexKey key;
  // Completed memo table (tabling): when set, alternatives are answer
  // indices (bucket_pos counts through tab->answers). The pointer stays
  // valid across workers because the publishing worker pins the table for
  // the whole query.
  const tab::CompletedTable* tab = nullptr;
  std::uint64_t pred_gen = 0;     // database generation when captured
  std::uint32_t bucket_pos = 0;   // next alternative (shared counter)
  long last_ordinal = -1;
  std::uint64_t generation = 0;   // bumped by LAO refill
  bool cancelled = false;         // killed by cut
  bool is_term = false;           // disjunction branch (single alternative)
  bool term_taken = false;
  unsigned owner_agent = 0;
  std::uint32_t ctrl_index = 0;   // frame position on the owner's stack
};

class OrpContext {
 public:
  SharedNode& node(std::uint32_t id) { return *nodes_[id]; }
  std::size_t num_nodes() const { return nodes_.size(); }

  std::uint32_t make_node() {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.push_back(std::make_unique<SharedNode>());
    std::uint32_t id = static_cast<std::uint32_t>(nodes_.size() - 1);
    active_.push_back(id);
    return id;
  }

  // Clears all public nodes so a pooled session can reuse this context for
  // its next query. Must only be called between queries (no agent running).
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.clear();
    active_.clear();
  }

  // True if some public node still has an untaken alternative.
  bool has_public_work() { return oldest_with_work(nullptr) != kNoShare; }

  // The oldest live public node with work, or kNoShare. Cancelled nodes
  // (killed by cut, or drained and popped by their owner) are permanently
  // workless and are dropped from the scan list on the way — idle-agent
  // work finding stays proportional to the live frontier, not to the total
  // number of nodes ever created. `scanned` (if non-null) receives the
  // number of node descriptors visited — the tree-traversal work the
  // LAO's flattening reduces (paper §3.2, Figure 7).
  std::uint32_t oldest_with_work(std::size_t* scanned);

 private:
  std::mutex mu_;
  std::deque<std::unique_ptr<SharedNode>> nodes_;
  std::vector<std::uint32_t> active_;  // sorted by id (creation order)
};

}  // namespace ace
