// Worker-side or-parallel protocol: shared-node takes, LAO reuse, sharing
// sessions and stack copying.
#include "orp/shared_tree.hpp"

namespace ace {
namespace {

// Callers must hold a pinned db::Snapshot (workers pin per step; the
// serving session pins one around its idle poll) — the single index() load
// below gives one consistent view per probe.
bool node_has_work(SharedNode& n) {
  std::lock_guard<std::mutex> lock(n.mu);
  if (n.cancelled) return false;
  if (n.is_term) return !n.term_taken;
  if (n.tab != nullptr) return n.bucket_pos < n.tab->answers.size();
  if (n.pred == nullptr) return false;
  const PredIndex& ix = n.pred->index();
  if (n.pred_gen != ix.generation()) {
    return ix.next_matching_from(n.key, n.last_ordinal) >= 0;
  }
  return n.bucket_pos < ix.candidates(n.key).size();
}

}  // namespace

std::uint32_t OrpContext::oldest_with_work(std::size_t* scanned) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t out = 0;
  std::uint32_t found = kNoShare;
  std::size_t i = 0;
  for (; i < active_.size(); ++i) {
    if (scanned != nullptr) ++*scanned;
    std::uint32_t id = active_[i];
    SharedNode& n = *nodes_[id];
    bool cancelled;
    {
      std::lock_guard<std::mutex> nlock(n.mu);
      cancelled = n.cancelled;
    }
    if (cancelled) continue;  // drop permanently
    active_[out++] = id;
    if (node_has_work(n)) {
      found = id;
      ++i;
      break;
    }
  }
  for (; i < active_.size(); ++i) active_[out++] = active_[i];
  active_.resize(out);
  return found;
}

long Worker::shared_take(std::uint32_t shared_id, std::uint64_t expected_gen,
                         const PredIndex** ix_out) {
  SharedNode& n = orp_->node(shared_id);
  std::lock_guard<std::mutex> lock(n.mu);
  ++stats_.public_node_takes;
  charge(CostCat::kPublish, costs_.public_take);
  if (n.cancelled || n.generation != expected_gen) return -1;
  if (n.is_term) {
    if (n.term_taken) return -1;
    n.term_taken = true;
    return kTakeTermAlt;
  }
  if (n.tab != nullptr) {
    // Completed memo table: grant the next answer index.
    if (n.bucket_pos >= n.tab->answers.size()) return -1;
    return static_cast<long>(n.bucket_pos++);
  }
  // One consistent view both for the grant and for the caller's clause
  // instantiation: the granted ordinal is only meaningful against the very
  // version it was drawn from (the worker's step-scoped pin keeps it
  // alive; see db/snapshot.hpp).
  const PredIndex& ix = n.pred->index();
  if (ix_out != nullptr) *ix_out = &ix;
  if (n.pred_gen != ix.generation()) {
    long ord = ix.next_matching_from(n.key, n.last_ordinal);
    if (ord >= 0) n.last_ordinal = ord;
    return ord;
  }
  const std::vector<std::uint32_t>& bucket = ix.candidates(n.key);
  if (n.bucket_pos >= bucket.size()) return -1;
  long ord = static_cast<long>(bucket[n.bucket_pos++]);
  n.last_ordinal = ord;
  return ord;
}

void Worker::orp_cancel_node(std::uint32_t shared_id,
                             std::uint64_t frame_gen) {
  SharedNode& n = orp_->node(shared_id);
  std::lock_guard<std::mutex> lock(n.mu);
  if (n.generation == frame_gen) n.cancelled = true;
}

bool Worker::lao_try_reuse(Addr goal, const Predicate* pred,
                           const PredIndex& ix, const IndexKey& key,
                           Ref cut_parent, std::uint32_t next_bucket_pos,
                           long last_ordinal) {
  if (ctrl_.size() == 0) return false;
  std::uint32_t top_idx = static_cast<std::uint32_t>(ctrl_.size()) - 1;
  if (bt_ != make_ref(agent_, top_idx)) return false;
  Frame& top = ctrl_[top_idx];
  if (top.kind != FrameKind::Choice || top.alt_kind != AltKind::Clauses) {
    return false;
  }
  // The previous choice point must be exhausted (its last alternative is
  // the execution creating this new choice point). One index view per
  // probed predicate keeps the generation check and the bucket size read
  // coherent.
  bool exhausted;
  if (top.shared_id != kNoShare) {
    SharedNode& n = orp_->node(top.shared_id);
    std::lock_guard<std::mutex> lock(n.mu);
    const PredIndex& nix = n.pred->index();
    exhausted = !n.cancelled && n.generation == top.pred_gen &&
                n.pred_gen == nix.generation() &&
                n.bucket_pos >= nix.candidates(n.key).size();
  } else {
    const PredIndex& tix = top.pred->index();
    exhausted = top.pred_gen == tix.generation() &&
                top.bucket_pos >= tix.candidates(top.key).size();
  }
  if (!exhausted) return false;

  (void)cut_parent;
  // Reuse in place: B1 becomes B2 (paper §3.2). Restore marks move up to
  // the current state — correct because B1 had nothing left to restore to.
  // The cut barrier of the recycled frame is B1's *predecessor*: B1 is
  // semantically popped, so a cut in B2's clauses must remove the reused
  // frame itself (callers re-read the barrier from the frame).
  top.call_goal = goal;
  top.cont = glist_;
  top.cut_parent = top.prev_bt;
  top.pred = pred;
  top.key = key;
  top.pred_gen = ix.generation();
  top.bucket_pos = next_bucket_pos;
  top.last_ordinal = last_ordinal;
  top.trail_mark = trail_.size();
  top.heap_mark = heap_size();
  top.garena_mark = garena_.size();
  if (top.shared_id != kNoShare) {
    // Refill the public node with the new alternatives (the flattened
    // or-tree of Figure 7): bump the generation so stale copies retire.
    SharedNode& n = orp_->node(top.shared_id);
    std::lock_guard<std::mutex> lock(n.mu);
    ++n.generation;
    n.pred = pred;
    n.key = key;
    n.pred_gen = ix.generation();
    n.bucket_pos = next_bucket_pos;
    n.last_ordinal = last_ordinal;
    // The refiller's copy of the frame carries the new (B2-era) state;
    // future stack copies must come from here, not the original owner
    // (whose frame retires on the generation mismatch).
    n.owner_agent = agent_;
    n.ctrl_index = top_idx;
    top.pred_gen = n.generation;  // shared frames track node generation
  }
  ++stats_.lao_reuses;
  trace(TraceEvent::LaoReuse, top_idx);
  charge(CostCat::kPublish, costs_.lao_update);
  return true;
}

// ---------------------------------------------------------------------------
// Idle or-parallel worker: find public work, else run a sharing session.

void Worker::orp_idle_step() {
  // oldest_with_work()/node_has_work() read candidate buckets and predicate
  // generations, and the sharing session publishes pred pointers into
  // shared nodes; the worker's step-scoped snapshot pin (refreshed at the
  // top of step()) keeps every version they touch alive, and the published
  // pred pointers are stable handles that need no pin at all. Context and
  // node mutexes are session-local, so no cross-session cycle is possible.
  std::size_t scanned = 0;
  std::uint32_t target = orp_->oldest_with_work(&scanned);
  charge(CostCat::kPublish, costs_.tree_descent * (scanned == 0 ? 1 : scanned));
  stats_.tree_descents += scanned == 0 ? 1 : scanned;

  if (target == kNoShare) {
    // Sharing session: publicize the busiest peer's private choice points.
    // A peer with a live tabled generator is not a candidate: its
    // in-progress (local) tables must never become reachable from public
    // nodes — MUSE's "everything below a public node is public" invariant
    // holds only for state both workers can reproduce, and a local table's
    // answers exist on the generator's worker alone. (tab_gens_ is always
    // empty when tabling is off, so victim choice is unchanged then.)
    Worker* victim = nullptr;
    for (Worker* w : *group_) {
      if (w == this) continue;
      if (w->private_cps_ > 0 && w->tab_gens_.empty() &&
          (victim == nullptr || w->private_cps_ > victim->private_cps_)) {
        victim = w;
      }
    }
    if (victim == nullptr) {
      ++stats_.idle_ticks;
      charge(CostCat::kIdle, costs_.idle_tick);
      return;
    }

    // Walk the victim's backtrack chain (newest to oldest). A live
    // IteElse frame means a condition is still being evaluated: every
    // newer frame is internal to that condition and must stay private
    // (speculative exploration past an uncommitted if-then-else is
    // unsound). Only frames older than the oldest live IteElse become
    // public.
    std::vector<Ref> chain;
    for (Ref r = victim->bt_; r != kNoRef;
         r = victim->ctrl_[ref_index(r)].prev_bt) {
      Frame& f = victim->ctrl_[ref_index(r)];
      if (f.kind != FrameKind::Choice) break;
      chain.push_back(r);
    }
    std::size_t first_shareable = 0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (victim->ctrl_[ref_index(chain[i])].alt_kind == AltKind::IteElse) {
        first_shareable = i + 1;
      }
    }
    // A session that could publish nothing (every candidate frame is
    // guarded by a live IteElse, already public, or of an unstealable
    // kind) must be a plain idle tick. Running the clock-sync protocol
    // below would drag the victim's clock up to the thief's without
    // yielding any work — under lowest-clock-first scheduling the victim
    // would then never be stepped again while thieves retry the same
    // empty session forever, stalling the driver (seen with `\+` goals:
    // their condition choice points all sit under the naf's IteElse).
    bool publishable = false;
    for (std::size_t i = first_shareable; i < chain.size(); ++i) {
      const Frame& f = victim->ctrl_[ref_index(chain[i])];
      if (f.shared_id != kNoShare) continue;
      if (f.alt_kind == AltKind::Clauses || f.alt_kind == AltKind::Term ||
          (f.alt_kind == AltKind::TabAnswers && f.tab_done != nullptr)) {
        publishable = true;
        break;
      }
    }
    if (!publishable) {
      ++stats_.idle_ticks;
      charge(CostCat::kIdle, costs_.idle_tick);
      return;
    }

    ++stats_.sharing_sessions;
    // Both sides synchronize for the session and each pays the fixed
    // session cost. The sequence below computes exactly
    //   clock_ = max(clock_ + share_session, victim->clock_) + share_session
    //   victim->clock_ = clock_
    // — the pre-attribution arithmetic, bit for bit — while preserving the
    // conservation invariant: the session costs are kPublish, and each
    // side's catch-up to the slower party's clock is attributed as kIdle
    // waiting via sync_clock_to.
    charge(CostCat::kPublish, costs_.share_session);
    sync_clock_to(victim->clock_);
    charge(CostCat::kPublish, costs_.share_session);
    victim->sync_clock_to(clock_);

    for (std::size_t i = first_shareable; i < chain.size(); ++i) {
      Frame& f = victim->ctrl_[ref_index(chain[i])];
      if (f.shared_id != kNoShare) continue;
      const bool shareable_tab =
          f.alt_kind == AltKind::TabAnswers && f.tab_done != nullptr;
      if (f.alt_kind != AltKind::Clauses && f.alt_kind != AltKind::Term &&
          !shareable_tab) {
        // Catch/ITE markers have nothing stealable; local (incomplete)
        // table consumers cannot exist here (the victim has no live
        // generator) and would not be shareable if they could.
        continue;
      }
      std::uint32_t id = orp_->make_node();
      SharedNode& n = orp_->node(id);
      if (f.alt_kind == AltKind::Clauses) {
        n.pred = f.pred;
        n.key = f.key;
        n.pred_gen = f.pred_gen;
        n.bucket_pos = f.bucket_pos;
        n.last_ordinal = f.last_ordinal;
      } else if (shareable_tab) {
        n.tab = f.tab_done;
        n.bucket_pos = f.bucket_pos;  // next answer index
      } else {
        n.is_term = true;  // disjunction branch: single alternative
      }
      n.owner_agent = victim->agent_;
      n.ctrl_index = ref_index(chain[i]);
      f.shared_id = id;
      f.pred_gen = n.generation;  // shared frames track node generation
      --victim->private_cps_;
      charge(CostCat::kPublish, costs_.public_make);
    }
    std::size_t rescanned = 0;
    target = orp_->oldest_with_work(&rescanned);
    charge(CostCat::kPublish, costs_.tree_descent * (rescanned == 0 ? 1 : rescanned));
    stats_.tree_descents += rescanned == 0 ? 1 : rescanned;
    if (target == kNoShare) {
      ++stats_.idle_ticks;
      charge(CostCat::kIdle, costs_.idle_tick);
      return;
    }
  }

  // Copy the owner's stacks up to the node and resume backtracking there.
  SharedNode& n = orp_->node(target);
  Worker& victim = peer(n.owner_agent);
  // Wait (virtually) until the node's owner has reached this point before
  // copying its stacks; the catch-up is idle time, not overhead.
  sync_clock_to(victim.clock_);
  ACE_CHECK_MSG(victim.ctrl_.size() > n.ctrl_index,
                "public node's owner frame vanished");
  const Frame& nf = victim.ctrl_[n.ctrl_index];
  ACE_CHECK_MSG(nf.kind == FrameKind::Choice && nf.shared_id == target,
                "public node's owner frame mismatched");

  // Prefix copies. The physical copy takes the whole prefix (simple and
  // obviously correct); the *charged* traffic is incremental, as in MUSE:
  // a prefix already shared with the same victim is not paid for again.
  // (A public node being alive guarantees the victim never backtracked
  // below it, so the shared prefix is unchanged.)
  auto inc = [&](std::uint64_t want, std::uint64_t have) {
    if (last_copy_victim_ != victim.agent_) return want;
    return want > have ? want - have : 0;
  };
  std::uint64_t copied = 0;
  copied += inc(n.ctrl_index + 1, last_copy_ctrl_) * kWordsChoicePoint;
  copied += inc(nf.garena_mark, last_copy_garena_) * 2;
  copied += inc(nf.trail_mark, last_copy_trail_);
  copied += inc(nf.heap_mark, last_copy_heap_);
  last_copy_victim_ = victim.agent_;
  last_copy_ctrl_ = n.ctrl_index + 1;
  last_copy_garena_ = nf.garena_mark;
  last_copy_trail_ = nf.trail_mark;
  last_copy_heap_ = nf.heap_mark;

  ctrl_.copy_prefix_from(victim.ctrl_, n.ctrl_index + 1);
  for (std::uint64_t i = 0; i <= n.ctrl_index; ++i) {
    Frame& f = ctrl_[i];
    auto remap = [&](Ref x) {
      return x == kNoRef ? kNoRef : make_ref(agent_, ref_index(x));
    };
    f.cont = remap(f.cont);
    f.cut_parent = remap(f.cut_parent);
    f.prev_bt = remap(f.prev_bt);
  }
  garena_.copy_prefix_from(victim.garena_, nf.garena_mark);
  for (std::uint64_t i = 0; i < nf.garena_mark; ++i) {
    GoalNode& g = garena_[i];
    if (g.next != kNoRef) g.next = make_ref(agent_, ref_index(g.next));
    if (g.cut_parent != kNoRef) {
      g.cut_parent = make_ref(agent_, ref_index(g.cut_parent));
    }
  }
  trail_.copy_prefix_from(victim.trail_, nf.trail_mark);
  store_.copy_seg0_prefix_from(victim.store_, nf.heap_mark);

  // De-install the bindings the owner made after this node into cells that
  // exist in our copy (the MUSE "installation diff").
  for (std::uint64_t i = nf.trail_mark; i < victim.trail_.size(); ++i) {
    Addr a = victim.trail_[i];
    if (addr_off(a) < nf.heap_mark) {
      store_.set(a, ref_cell(a));
      ++copied;
    }
  }

  stats_.copied_cells += copied;
  charge(CostCat::kPublish, copied * costs_.copy_cell);
  trace(TraceEvent::Share, victim.agent_, target);

  // Invariant: everything at or below a public node is public (the sharing
  // session publicizes the whole chain), so the copy brings no private
  // choice points with it — both workers draw lower alternatives from the
  // same shared counters, which is what prevents duplicated exploration.
  private_cps_ = 0;

  // Resume at the node.
  bt_ = make_ref(agent_, n.ctrl_index);
  glist_ = kNoRef;
  cur_pf_ = kNoPf;
  nested_.clear();
  waiting_pfs_.clear();
  mode_ = Mode::Backtrack;
}

}  // namespace ace
