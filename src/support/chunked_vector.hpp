// A grow-only chunked vector with stable element addresses.
//
// Used for per-agent heap/trail segments in the parallel engines. Unlike
// std::vector, growth never relocates existing elements, so one agent may
// append to its own segment while other agents concurrently read elements
// that were published to them earlier (publication happens-before is
// established externally, e.g. through parcall-frame state transitions).
//
// The chunk pointer table is a fixed-size array of atomic pointers so a
// reader racing with chunk allocation sees either null (address not yet
// published — a logic error upstream) or a fully constructed chunk.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>

#include "support/diag.hpp"

namespace ace {

template <typename T, std::size_t ChunkBits = 14, std::size_t MaxChunks = 1u << 16>
class ChunkedVector {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << ChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  ~ChunkedVector() {
    for (std::size_t i = 0; i < MaxChunks; ++i) {
      T* c = chunks_[i].load(std::memory_order_relaxed);
      if (c == nullptr) break;
      delete[] c;
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  // Appends a value; only the owning agent may call this.
  std::size_t push_back(const T& v) {
    std::size_t idx = size_.load(std::memory_order_relaxed);
    T* chunk = chunk_for(idx);
    chunk[idx & kChunkMask] = v;
    size_.store(idx + 1, std::memory_order_release);
    return idx;
  }

  T& operator[](std::size_t idx) {
    T* chunk = chunks_[idx >> ChunkBits].load(std::memory_order_acquire);
    ACE_DCHECK(chunk != nullptr);
    return chunk[idx & kChunkMask];
  }
  const T& operator[](std::size_t idx) const {
    T* chunk = chunks_[idx >> ChunkBits].load(std::memory_order_acquire);
    ACE_DCHECK(chunk != nullptr);
    return chunk[idx & kChunkMask];
  }

  // Truncation on backtracking; only the owning agent may call this.
  void truncate(std::size_t new_size) {
    ACE_DCHECK(new_size <= size());
    size_.store(new_size, std::memory_order_release);
  }

  // Copies the first n elements of `other` into this container, replacing
  // current contents. Used by the or-parallel engine's stack copying.
  void copy_prefix_from(const ChunkedVector& other, std::size_t n) {
    ACE_CHECK(n <= other.size());
    size_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) push_back(other[i]);
  }

 private:
  T* chunk_for(std::size_t idx) {
    std::size_t ci = idx >> ChunkBits;
    ACE_CHECK_MSG(ci < MaxChunks, "chunked vector capacity exhausted");
    T* chunk = chunks_[ci].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      chunks_[ci].store(chunk, std::memory_order_release);
    }
    return chunk;
  }

  std::atomic<std::size_t> size_{0};
  // Value-initialized array of atomic pointers (all null).
  std::unique_ptr<std::atomic<T*>[]> chunks_ =
      std::make_unique<std::atomic<T*>[]>(MaxChunks);
};

// A grow-only list with stable element addresses and geometrically growing
// chunks, sized for *many small instances* (e.g. the slot list of every
// parcall frame): the chunk pointer table is a small inline array instead
// of ChunkedVector's heap-allocated table, so an empty list costs
// NumChunks words and nothing else.
//
// Chunk c holds 2^(FirstBits + c) elements, so NumChunks chunks cover
// 2^FirstBits * (2^NumChunks - 1) elements total.
//
// Concurrency contract (same as ChunkedVector):
//   - writers (push_back / truncate) must be serialized externally (a
//     mutex, or single-owner phases),
//   - readers may access any index they learned through a
//     happens-before-establishing channel, without locks: the chunk
//     pointers are atomics, so a racing reader sees either null or a
//     fully constructed chunk, and element addresses never move.
template <typename T, std::size_t NumChunks = 16, std::size_t FirstBits = 3>
class StableChunkList {
 public:
  StableChunkList() = default;
  StableChunkList(const StableChunkList&) = delete;
  StableChunkList& operator=(const StableChunkList&) = delete;

  ~StableChunkList() {
    for (std::size_t c = 0; c < NumChunks; ++c) {
      T* p = chunks_[c].load(std::memory_order_relaxed);
      if (p == nullptr) break;
      delete[] p;
    }
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  // Appends a copy of `v`; writers must be serialized externally.
  std::size_t push_back(const T& v) {
    std::size_t idx = size_.load(std::memory_order_relaxed);
    locate(idx) = v;
    size_.store(idx + 1, std::memory_order_release);
    return idx;
  }

  T& operator[](std::size_t idx) { return locate_const(idx); }
  const T& operator[](std::size_t idx) const { return locate_const(idx); }

  // Drops elements from the tail (no destruction — elements are reused on
  // the next push_back). Writers must be serialized externally.
  void truncate(std::size_t new_size) {
    ACE_DCHECK(new_size <= size());
    size_.store(new_size, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kFirst = std::size_t{1} << FirstBits;

  // Chunk index / offset for element `idx`: chunk c spans
  // [kFirst*(2^c - 1), kFirst*(2^(c+1) - 1)).
  static std::size_t chunk_of(std::size_t idx) {
    std::size_t n = (idx >> FirstBits) + 1;
    std::size_t c = 0;
    while (n >>= 1) ++c;
    return c;
  }
  static std::size_t start_of(std::size_t c) {
    return ((std::size_t{1} << c) - 1) << FirstBits;
  }

  T& locate(std::size_t idx) {
    std::size_t c = chunk_of(idx);
    ACE_CHECK_MSG(c < NumChunks, "stable chunk list capacity exhausted");
    T* chunk = chunks_[c].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new T[kFirst << c]();
      chunks_[c].store(chunk, std::memory_order_release);
    }
    return chunk[idx - start_of(c)];
  }

  T& locate_const(std::size_t idx) const {
    std::size_t c = chunk_of(idx);
    T* chunk = chunks_[c].load(std::memory_order_acquire);
    ACE_DCHECK(chunk != nullptr);
    return chunk[idx - start_of(c)];
  }

  std::atomic<std::size_t> size_{0};
  mutable std::array<std::atomic<T*>, NumChunks> chunks_{};
};

}  // namespace ace
