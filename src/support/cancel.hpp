// Cooperative query-stop protocol.
//
// A CancelToken is the single stop signal shared by every agent of one
// query: the serving layer (or any host) arms it with a wall-clock deadline
// and/or requests cancellation from another thread; each Worker polls it at
// the top of step() and unwinds by throwing QueryStopped. The same token is
// also checked between steps by both drivers (the virtual-time simulator
// and the real-thread runtime), so simulated and threaded runs share one
// stop protocol. This generalizes the original resolution_limit abort: all
// stop sources (external cancel, deadline expiry, resolution budget) now
// funnel through the same structured exception, which the engine facades
// catch to report partial results.
//
// Cost discipline: the cancelled-flag load is a relaxed atomic read (one
// per step); the deadline comparison needs a clock read, so callers only
// request it every few dozen polls (Worker uses a 64-step stride).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/diag.hpp"

namespace ace {

// Why a query stopped early. None means it ran to completion (all
// solutions, or the caller's solution cap).
enum class StopCause : std::uint8_t {
  None = 0,
  Cancelled,        // external request_cancel()
  Deadline,         // wall-clock deadline expired
  ResolutionLimit,  // per-query resolution budget exhausted
};

inline const char* stop_cause_name(StopCause c) {
  switch (c) {
    case StopCause::None:
      return "none";
    case StopCause::Cancelled:
      return "cancelled";
    case StopCause::Deadline:
      return "deadline";
    case StopCause::ResolutionLimit:
      return "resolution_limit";
  }
  return "?";
}

// Thrown by Worker::step()/drivers when a stop is observed. Derives from
// AceError so host code that already handles engine errors keeps working;
// the engine facades catch it specifically to return partial solutions.
class QueryStopped : public AceError {
 public:
  explicit QueryStopped(StopCause cause)
      : AceError(std::string("query stopped: ") + stop_cause_name(cause)),
        cause_(cause) {}
  StopCause cause() const { return cause_; }

 private:
  StopCause cause_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Re-arms the token for a new query (engine-pool reuse).
  void reset() {
    cause_.store(0, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  // External cancellation; first cause to land wins and is sticky.
  void request_cancel() { set_cause(StopCause::Cancelled); }

  // Arms a deadline `budget` from now. A zero/negative budget means the
  // deadline is already expired (useful for queue-expired requests).
  void arm_deadline(std::chrono::nanoseconds budget) {
    deadline_ns_.store(now_ns() + budget.count(), std::memory_order_relaxed);
  }
  void disarm_deadline() { deadline_ns_.store(0, std::memory_order_relaxed); }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // Sticky observed cause (None while running).
  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }
  bool stop_requested() const { return cause() != StopCause::None; }

  // Poll from an agent/driver loop. Always checks the sticky cause flag;
  // reads the clock (and latches Deadline) only when `check_clock`.
  StopCause poll(bool check_clock) {
    StopCause c = cause();
    if (c != StopCause::None) return c;
    if (check_clock) {
      std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
      if (dl != 0 && now_ns() >= dl) {
        set_cause(StopCause::Deadline);
        return cause();
      }
    }
    return StopCause::None;
  }

  // Throws QueryStopped if a stop is (or becomes) observable.
  void raise_if_stopped(bool check_clock = true) {
    StopCause c = poll(check_clock);
    if (c != StopCause::None) throw QueryStopped(c);
  }

  // Latches an arbitrary cause (used by the resolution-budget check).
  void set_cause(StopCause c) {
    std::uint8_t expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<std::uint8_t>(c),
                                   std::memory_order_relaxed);
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  std::atomic<std::uint8_t> cause_{0};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = unarmed
};

}  // namespace ace
