// Deterministic pseudo-random number generation (SplitMix64).
//
// Property tests and synthetic workload generators must be reproducible
// across runs and platforms, so we avoid std::mt19937's distribution
// variance and use a tiny self-contained generator.
#pragma once

#include <cstdint>

namespace ace {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace ace
