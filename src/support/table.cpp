#include "support/table.hpp"

#include <algorithm>

#include "support/diag.hpp"
#include "support/strutil.hpp"

namespace ace {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  ACE_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::size_t pad = width[i] - row[i].size();
      if (i == 0) {
        line += row[i] + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[i];
      }
      line += (i + 1 == row.size()) ? "" : "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& r : rows_) out += emit_row(r);
  return out;
}

std::string paper_cell(double unopt, double opt) {
  double pct = unopt > 0 ? (unopt - opt) / unopt * 100.0 : 0.0;
  return strf("%.0f/%.0f (%+.0f%%)", unopt, opt, pct);
}

}  // namespace ace
