#include "support/diag.hpp"

namespace ace {

void panic(const char* file, int line, const char* cond, const char* msg) {
  std::fprintf(stderr, "ace: internal check failed at %s:%d: %s %s\n", file,
               line, cond, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ace
