// Diagnostic support: checked assertions and fatal errors.
//
// ACE_CHECK is active in all build types (the engine relies on it to catch
// internal invariant violations during fuzz/property tests); ACE_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ace {

// Thrown for user-level errors (bad source programs, type errors in
// arithmetic, ...) that a host application is expected to catch.
class AceError : public std::runtime_error {
 public:
  explicit AceError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void panic(const char* file, int line, const char* cond,
                        const char* msg);

}  // namespace ace

#define ACE_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) ::ace::panic(__FILE__, __LINE__, #cond, ""); \
  } while (0)

#define ACE_CHECK_MSG(cond, msg)                                 \
  do {                                                           \
    if (!(cond)) ::ace::panic(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

#ifdef NDEBUG
#define ACE_DCHECK(cond) ((void)0)
#else
#define ACE_DCHECK(cond) ACE_CHECK(cond)
#endif
