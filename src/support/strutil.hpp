// Small string helpers shared by the printer, parser diagnostics and the
// benchmark table formatter. (std::format is not yet available in the
// toolchain's libstdc++, so we provide a printf-based formatter.)
#pragma once

#include <string>
#include <vector>

namespace ace {

// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

bool starts_with(const std::string& s, const std::string& prefix);

// True if `name` can be printed as an unquoted Prolog atom.
bool is_plain_atom_name(const std::string& name);

// Escapes `s` for embedding inside a double-quoted JSON string (quotes,
// backslashes, control characters; no surrounding quotes added).
std::string json_escape(const std::string& s);

}  // namespace ace
