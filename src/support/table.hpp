// Plain-text table rendering for the benchmark harness. Produces the
// aligned `unoptimized/optimized (improvement%)` layout used by the paper's
// Tables 1-5 so bench output can be compared side by side with the paper.
#pragma once

#include <string>
#include <vector>

namespace ace {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Renders with column alignment; first column left-aligned, the rest
  // right-aligned.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats the paper's cell style: "unopt/opt (pct%)". `pct` is the
// improvement of opt over unopt in percent (negative = slowdown).
std::string paper_cell(double unopt, double opt);

}  // namespace ace
