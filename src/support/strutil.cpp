#include "support/strutil.hpp"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace ace {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool is_plain_atom_name(const std::string& name) {
  if (name.empty()) return false;
  // Solo and symbolic atoms commonly printed unquoted.
  if (name == "[]" || name == "!" || name == ";" || name == "{}") return true;
  unsigned char c0 = static_cast<unsigned char>(name[0]);
  if (std::islower(c0)) {
    for (char c : name) {
      unsigned char uc = static_cast<unsigned char>(c);
      if (!std::isalnum(uc) && c != '_') return false;
    }
    return true;
  }
  static const std::string kSymbolChars = "+-*/\\^<>=~:.?@#&$";
  for (char c : name) {
    if (kSymbolChars.find(c) == std::string::npos) return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ace
