// Unification with unconditional trailing.
#pragma once

#include <cstdint>

#include "term/store.hpp"

namespace ace {

// Unifies the terms at `a` and `b`. Bindings are trailed on `trail`; on
// failure the caller is responsible for untrailing to its own mark (the
// engine does this as part of backtracking — partial bindings from a failed
// head unification are undone by the choice point's trail mark, or by the
// caller's local mark for deterministic calls).
//
// If `steps` is non-null, it is incremented by the number of cell pairs
// visited (the simulator charges unification cost proportionally).
//
// `occurs_check` enables sound unification (used by property tests).
bool unify(Store& store, Trail& trail, Addr a, Addr b,
           std::uint64_t* steps = nullptr, bool occurs_check = false);

// True if the term at `a` contains the unbound variable `var`.
bool occurs_in(const Store& store, Addr var, Addr a);

// True if the term is ground (contains no unbound variables).
bool is_ground(const Store& store, Addr a);

}  // namespace ace
