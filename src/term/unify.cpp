#include "term/unify.hpp"

#include <utility>
#include <vector>

namespace ace {
namespace {

// Binds var -> value-at-addr. Var-to-var bindings point the younger cell at
// the older one within a segment (shortens chains); across segments the
// direction is arbitrary but consistent.
void bind_var(Store& store, Trail& trail, Addr var, Addr other) {
  Cell other_cell = store.get(other);
  if (other_cell.tag() == Tag::Ref && other_cell.ref() == other) {
    // var-var: order by address.
    if (other > var) {
      bind(store, trail, other, ref_cell(var));
    } else {
      bind(store, trail, var, ref_cell(other));
    }
    return;
  }
  // Bind to a reference so large terms are shared, not copied.
  Cell value = other_cell;
  if (other_cell.tag() == Tag::Fun) {
    // Should not happen: term roots never point at bare Fun cells.
    ACE_CHECK_MSG(false, "unify: dangling functor cell");
  }
  if (other_cell.tag() == Tag::Ref) value = ref_cell(other);
  bind(store, trail, var, value);
}

}  // namespace

bool occurs_in(const Store& store, Addr var, Addr a) {
  std::vector<Addr> work{a};
  while (!work.empty()) {
    Addr t = deref(store, work.back());
    work.pop_back();
    Cell c = store.get(t);
    switch (c.tag()) {
      case Tag::Ref:
        if (t == var) return true;
        break;
      case Tag::Str: {
        Cell f = store.get(c.ref());
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          work.push_back(c.ref() + i);
        }
        break;
      }
      case Tag::Lst:
        work.push_back(c.ref());
        work.push_back(c.ref() + 1);
        break;
      default:
        break;
    }
  }
  return false;
}

bool is_ground(const Store& store, Addr a) {
  std::vector<Addr> work{a};
  while (!work.empty()) {
    Addr t = deref(store, work.back());
    work.pop_back();
    Cell c = store.get(t);
    switch (c.tag()) {
      case Tag::Ref:
        return false;
      case Tag::Str: {
        Cell f = store.get(c.ref());
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          work.push_back(c.ref() + i);
        }
        break;
      }
      case Tag::Lst:
        work.push_back(c.ref());
        work.push_back(c.ref() + 1);
        break;
      default:
        break;
    }
  }
  return true;
}

bool unify(Store& store, Trail& trail, Addr a, Addr b, std::uint64_t* steps,
           bool occurs_check) {
  std::vector<std::pair<Addr, Addr>> work{{a, b}};
  while (!work.empty()) {
    auto [x, y] = work.back();
    work.pop_back();
    x = deref(store, x);
    y = deref(store, y);
    if (steps != nullptr) ++*steps;
    if (x == y) continue;

    Cell cx = store.get(x);
    Cell cy = store.get(y);
    bool x_var = cx.tag() == Tag::Ref;
    bool y_var = cy.tag() == Tag::Ref;
    if (x_var) {
      if (occurs_check && !y_var && occurs_in(store, x, y)) return false;
      bind_var(store, trail, x, y);
      continue;
    }
    if (y_var) {
      if (occurs_check && occurs_in(store, y, x)) return false;
      bind_var(store, trail, y, x);
      continue;
    }
    if (cx.tag() != cy.tag()) return false;
    switch (cx.tag()) {
      case Tag::Atm:
        if (cx.symbol() != cy.symbol()) return false;
        break;
      case Tag::Int:
        if (cx.integer() != cy.integer()) return false;
        break;
      case Tag::Lst:
        work.emplace_back(cx.ref(), cy.ref());
        work.emplace_back(cx.ref() + 1, cy.ref() + 1);
        break;
      case Tag::Str: {
        Cell fx = store.get(cx.ref());
        Cell fy = store.get(cy.ref());
        if (fx.raw != fy.raw) return false;
        for (unsigned i = 1; i <= fx.fun_arity(); ++i) {
          work.emplace_back(cx.ref() + i, cy.ref() + i);
        }
        break;
      }
      default:
        ACE_CHECK_MSG(false, "unify: unexpected cell tag");
    }
  }
  return true;
}

}  // namespace ace
