#include "term/print.hpp"

#include "parse/ops.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

class Printer {
 public:
  Printer(const Store& store, const SymbolTable& syms, const PrintOpts& opts)
      : store_(store), syms_(syms), opts_(opts) {}

  void print(Addr a, unsigned depth) {
    if (opts_.max_depth != 0 && depth > opts_.max_depth) {
      out_ += "...";
      return;
    }
    a = deref(store_, a);
    Cell c = store_.get(a);
    switch (c.tag()) {
      case Tag::Ref:
        print_var(a);
        break;
      case Tag::Int:
        out_ += strf("%lld", static_cast<long long>(c.integer()));
        break;
      case Tag::Atm:
        print_atom(c.symbol());
        break;
      case Tag::Lst:
        print_list(a, depth);
        break;
      case Tag::Str:
        print_struct(c.ref(), depth);
        break;
      default:
        out_ += "<bad-cell>";
        break;
    }
  }

  std::string take() { return std::move(out_); }

 private:
  void print_var(Addr a) {
    if (opts_.var_names != nullptr) {
      auto it = opts_.var_names->find(a);
      if (it != opts_.var_names->end() && it->second != "_") {
        out_ += it->second;
        return;
      }
    }
    out_ += strf("_G%u_%llu", addr_seg(a),
                 static_cast<unsigned long long>(addr_off(a)));
  }

  void print_atom(std::uint32_t sym, bool operand_pos = true) {
    const std::string& name = syms_.name(sym);
    // An atom that is also an operator must be parenthesized in operand
    // position or it would re-parse as an operator application.
    if (operand_pos && opts_.quoted && (infix_op(name) || prefix_op(name))) {
      out_ += "(" + name + ")";
      return;
    }
    if (!opts_.quoted || is_plain_atom_name(name)) {
      out_ += name;
      return;
    }
    out_ += '\'';
    for (char ch : name) {
      if (ch == '\'' || ch == '\\') out_ += '\\';
      out_ += ch;
    }
    out_ += '\'';
  }

  void print_list(Addr a, unsigned depth) {
    out_ += '[';
    bool first = true;
    for (;;) {
      a = deref(store_, a);
      Cell c = store_.get(a);
      if (c.tag() == Tag::Lst) {
        if (!first) out_ += ',';
        first = false;
        print(c.ref(), depth + 1);
        a = c.ref() + 1;
        continue;
      }
      if (c.tag() == Tag::Atm && c.symbol() == syms_.known().nil) break;
      out_ += '|';
      print(a, depth + 1);
      break;
    }
    out_ += ']';
  }

  bool is_infix(std::uint32_t sym) const {
    const auto& k = syms_.known();
    if (sym == k.comma || sym == k.amp || sym == k.semicolon ||
        sym == k.arrow || sym == k.neck) {
      return true;
    }
    const std::string& n = syms_.name(sym);
    static const char* kOps[] = {"+",  "-",  "*",   "/",   "//", "mod",
                                 "=",  "\\=", "==",  "\\==", "<",  ">",
                                 "=<", ">=", "=:=", "=\\=", "is", "@<",
                                 "@>", "@=<", "@>="};
    for (const char* op : kOps) {
      if (n == op) return true;
    }
    return false;
  }

  void print_struct(Addr fun_addr, unsigned depth) {
    Cell f = store_.get(fun_addr);
    unsigned arity = f.fun_arity();
    std::uint32_t sym = f.fun_symbol();
    if (arity == 2 && is_infix(sym)) {
      out_ += '(';
      print(fun_addr + 1, depth + 1);
      const std::string& n = syms_.name(sym);
      if (n == ",") {
        out_ += ",";
      } else {
        out_ += ' ';
        out_ += n;
        out_ += ' ';
      }
      print(fun_addr + 2, depth + 1);
      out_ += ')';
      return;
    }
    if (arity == 1 && syms_.name(sym) == "-") {
      out_ += "-";
      print(fun_addr + 1, depth + 1);
      return;
    }
    if (arity == 1 && syms_.name(sym) == "{}") {
      out_ += '{';
      print(fun_addr + 1, depth + 1);
      out_ += '}';
      return;
    }
    print_atom(sym, /*operand_pos=*/false);
    out_ += '(';
    for (unsigned i = 1; i <= arity; ++i) {
      if (i != 1) out_ += ',';
      print(fun_addr + i, depth + 1);
    }
    out_ += ')';
  }

  const Store& store_;
  const SymbolTable& syms_;
  const PrintOpts& opts_;
  std::string out_;
};

}  // namespace

std::string term_to_string(const Store& store, const SymbolTable& syms,
                           Addr a, const PrintOpts& opts) {
  Printer p(store, syms, opts);
  p.print(a, 1);
  return p.take();
}

}  // namespace ace
