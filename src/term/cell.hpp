// Tagged term cells.
//
// Every Prolog term is represented as cells in a Store (see store.hpp).
// A cell is a 64-bit word: low 3 bits tag, upper 61 bits payload.
//
//   Ref     payload = Addr of the referenced cell. An *unbound variable*
//           is a Ref whose payload is its own address.
//   Str     payload = Addr of a Fun cell; the structure's arguments are
//           the `arity` cells immediately following the Fun cell.
//   Lst     payload = Addr of two consecutive cells (head, tail).
//   Atm     payload = symbol id.
//   Int     payload = signed 61-bit integer.
//   Fun     payload = (symbol id << 12) | arity. Appears only as the first
//           cell of a structure, never as a term root.
//   VarSlot payload = variable slot number. Appears only inside clause
//           templates (see db/clause.hpp), never on the heap.
#pragma once

#include <cstdint>

#include "support/diag.hpp"

namespace ace {

enum class Tag : std::uint8_t {
  Ref = 0,
  Str = 1,
  Lst = 2,
  Atm = 3,
  Int = 4,
  Fun = 5,
  VarSlot = 6,
};

// Global cell address: (segment << 32) | offset. Segment 0 is used by the
// sequential and or-parallel engines; the and-parallel engine gives each
// agent its own segment of one shared store.
using Addr = std::uint64_t;

constexpr unsigned kSegShift = 32;
constexpr Addr kOffMask = (Addr{1} << kSegShift) - 1;

constexpr Addr make_addr(unsigned seg, std::uint64_t off) {
  return (Addr{seg} << kSegShift) | off;
}
constexpr unsigned addr_seg(Addr a) {
  return static_cast<unsigned>(a >> kSegShift);
}
constexpr std::uint64_t addr_off(Addr a) { return a & kOffMask; }

constexpr unsigned kMaxArity = (1u << 12) - 1;

struct Cell {
  std::uint64_t raw = 0;

  Tag tag() const { return static_cast<Tag>(raw & 7u); }
  std::uint64_t payload() const { return raw >> 3; }

  Addr ref() const {
    ACE_DCHECK(tag() == Tag::Ref || tag() == Tag::Str || tag() == Tag::Lst);
    return payload();
  }
  std::uint32_t symbol() const {
    ACE_DCHECK(tag() == Tag::Atm);
    return static_cast<std::uint32_t>(payload());
  }
  std::int64_t integer() const {
    ACE_DCHECK(tag() == Tag::Int);
    // Arithmetic shift restores the sign of the 61-bit payload.
    return static_cast<std::int64_t>(raw) >> 3;
  }
  std::uint32_t fun_symbol() const {
    ACE_DCHECK(tag() == Tag::Fun);
    return static_cast<std::uint32_t>(payload() >> 12);
  }
  unsigned fun_arity() const {
    ACE_DCHECK(tag() == Tag::Fun);
    return static_cast<unsigned>(payload() & kMaxArity);
  }
  std::uint32_t var_slot() const {
    ACE_DCHECK(tag() == Tag::VarSlot);
    return static_cast<std::uint32_t>(payload());
  }

  bool operator==(const Cell&) const = default;
};

inline Cell make_cell(Tag t, std::uint64_t payload) {
  return Cell{(payload << 3) | static_cast<std::uint64_t>(t)};
}
inline Cell ref_cell(Addr a) { return make_cell(Tag::Ref, a); }
inline Cell str_cell(Addr fun_addr) { return make_cell(Tag::Str, fun_addr); }
inline Cell lst_cell(Addr pair_addr) { return make_cell(Tag::Lst, pair_addr); }
inline Cell atm_cell(std::uint32_t sym) { return make_cell(Tag::Atm, sym); }
inline Cell int_cell(std::int64_t v) {
  return Cell{(static_cast<std::uint64_t>(v) << 3) |
              static_cast<std::uint64_t>(Tag::Int)};
}
inline Cell fun_cell(std::uint32_t sym, unsigned arity) {
  ACE_DCHECK(arity <= kMaxArity);
  return make_cell(Tag::Fun, (std::uint64_t{sym} << 12) | arity);
}
inline Cell varslot_cell(std::uint32_t slot) {
  return make_cell(Tag::VarSlot, slot);
}

}  // namespace ace
