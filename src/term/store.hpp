// Heap store and trail.
//
// A Store owns one heap segment per agent. All references between cells are
// global Addrs, so terms may span segments (an and-parallel subgoal executed
// by a stolen agent builds its result cells in the thief's segment while
// binding variables in the parent's segment).
//
// Segments use ChunkedVector so growth never invalidates addresses: in the
// real-thread runtime one agent may read cells another agent published
// earlier while the owner keeps appending.
//
// The Trail records every binding (unconditional trailing — see DESIGN.md;
// the parallel engines cannot cheaply compute conditional-trailing
// watermarks across segments, and the paper's cost accounting charges trail
// entries explicitly anyway).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/chunked_vector.hpp"
#include "term/cell.hpp"

namespace ace {

class Store {
 public:
  explicit Store(unsigned num_segments = 1);

  unsigned num_segments() const {
    return static_cast<unsigned>(segs_.size());
  }

  Cell get(Addr a) const { return (*segs_[addr_seg(a)])[addr_off(a)]; }
  void set(Addr a, Cell c) { (*segs_[addr_seg(a)])[addr_off(a)] = c; }

  Addr push(unsigned seg, Cell c) {
    return make_addr(seg, segs_[seg]->push_back(c));
  }

  // Allocates `n` consecutive cells in `seg` and returns the first address.
  Addr alloc(unsigned seg, std::size_t n);

  // Allocates a fresh unbound variable (self-referencing Ref cell).
  Addr new_var(unsigned seg) {
    std::uint64_t off = segs_[seg]->size();
    Addr a = make_addr(seg, off);
    segs_[seg]->push_back(ref_cell(a));
    return a;
  }

  std::size_t seg_size(unsigned seg) const { return segs_[seg]->size(); }
  void truncate(unsigned seg, std::size_t mark) { segs_[seg]->truncate(mark); }

  // Total live cells across all segments (memory accounting).
  std::size_t total_cells() const;

  // Replaces this store's segment 0 with a copy of the first n cells of
  // `other`'s segment 0. Or-parallel MUSE copying; both stores must be
  // single-segment.
  void copy_seg0_prefix_from(const Store& other, std::size_t n);

 private:
  using Segment = ChunkedVector<Cell>;
  std::vector<std::unique_ptr<Segment>> segs_;
};

// Follows Ref chains until reaching an unbound variable or a non-Ref cell.
// Returns the address of that final cell.
Addr deref(const Store& store, Addr a);

// True if the cell at (dereferenced) address `a` is an unbound variable.
inline bool is_unbound(const Store& store, Addr a) {
  Cell c = store.get(a);
  return c.tag() == Tag::Ref && c.ref() == a;
}

using Trail = ChunkedVector<Addr>;

// Binds the unbound variable at `var` to `value`, recording it on `trail`.
inline void bind(Store& store, Trail& trail, Addr var, Cell value) {
  ACE_DCHECK(is_unbound(store, var));
  store.set(var, value);
  trail.push_back(var);
}

// Undoes all bindings recorded in `trail` positions [mark, size), resetting
// each trailed variable to unbound, then truncates the trail to `mark`.
void untrail(Store& store, Trail& trail, std::size_t mark);

// Undoes bindings in trail positions [lo, hi) without truncating — used
// when unwinding a stack *section* in the middle of another agent's trail
// (the and-parallel engine's outside backtracking over remote sections).
void untrail_range(Store& store, const Trail& trail, std::size_t lo,
                   std::size_t hi);

}  // namespace ace
