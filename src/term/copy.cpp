#include "term/copy.hpp"

namespace ace {

Addr copy_term(Store& store, unsigned dest_seg, Addr a,
               std::unordered_map<Addr, Addr>& var_map, std::uint64_t* cells) {
  a = deref(store, a);
  Cell c = store.get(a);
  if (cells != nullptr) ++*cells;
  switch (c.tag()) {
    case Tag::Ref: {
      auto it = var_map.find(a);
      if (it != var_map.end()) return it->second;
      Addr fresh = store.new_var(dest_seg);
      var_map.emplace(a, fresh);
      return fresh;
    }
    case Tag::Atm:
    case Tag::Int:
      return store.push(dest_seg, c);
    case Tag::Lst: {
      Addr head = copy_term(store, dest_seg, c.ref(), var_map, cells);
      Addr tail = copy_term(store, dest_seg, c.ref() + 1, var_map, cells);
      Addr pair = store.push(dest_seg, ref_cell(head));
      store.push(dest_seg, ref_cell(tail));
      return store.push(dest_seg, lst_cell(pair));
    }
    case Tag::Str: {
      Cell f = store.get(c.ref());
      unsigned arity = f.fun_arity();
      std::vector<Addr> args;
      args.reserve(arity);
      for (unsigned i = 1; i <= arity; ++i) {
        args.push_back(copy_term(store, dest_seg, c.ref() + i, var_map, cells));
      }
      Addr fun = store.push(dest_seg, f);
      for (Addr arg : args) store.push(dest_seg, ref_cell(arg));
      return store.push(dest_seg, str_cell(fun));
    }
    default:
      ACE_CHECK_MSG(false, "copy_term: unexpected tag");
      return a;
  }
}

}  // namespace ace
