// Interned symbol (atom/functor name) table.
//
// A single SymbolTable is shared by a whole Machine (all agents); interning
// mostly happens at parse time but runtime builtins (atom construction) may
// intern too, so lookups and inserts are guarded by a mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ace {

class SymbolTable {
 public:
  SymbolTable();

  std::uint32_t intern(const std::string& name);
  const std::string& name(std::uint32_t id) const;
  std::size_t size() const;

  // Well-known symbols, interned at construction in a fixed order so their
  // ids are stable constants across all tables.
  struct Known {
    std::uint32_t nil;         // []
    std::uint32_t dot;         // '.' (unused list functor, kept for =..)
    std::uint32_t comma;       // ,
    std::uint32_t amp;         // &
    std::uint32_t semicolon;   // ;
    std::uint32_t arrow;       // ->
    std::uint32_t neck;        // :-
    std::uint32_t cut;         // !
    std::uint32_t truesym;     // true
    std::uint32_t fail;        // fail
    std::uint32_t curly;       // {}
    std::uint32_t minus;       // -
    std::uint32_t plus;        // +
    std::uint32_t call;        // call
    std::uint32_t naf;         // \+
  };
  const Known& known() const { return known_; }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  Known known_;
};

}  // namespace ace
