#include "term/symtab.hpp"

#include "support/diag.hpp"

namespace ace {

SymbolTable::SymbolTable() {
  known_.nil = intern("[]");
  known_.dot = intern(".");
  known_.comma = intern(",");
  known_.amp = intern("&");
  known_.semicolon = intern(";");
  known_.arrow = intern("->");
  known_.neck = intern(":-");
  known_.cut = intern("!");
  known_.truesym = intern("true");
  known_.fail = intern("fail");
  known_.curly = intern("{}");
  known_.minus = intern("-");
  known_.plus = intern("+");
  known_.call = intern("call");
  known_.naf = intern("\\+");
}

std::uint32_t SymbolTable::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

const std::string& SymbolTable::name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ACE_CHECK(id < names_.size());
  return names_[id];
}

std::size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace ace
