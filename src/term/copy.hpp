// Term copying with fresh variables (copy_term/2, findall solution capture,
// solution snapshots).
#pragma once

#include <unordered_map>

#include "term/store.hpp"

namespace ace {

// Copies the term at `a` into segment `dest_seg`, replacing each distinct
// unbound variable with a fresh variable in `dest_seg`. `var_map` maps
// source variable addresses to their copies; pass a fresh map per logical
// copy operation (reusing one map across calls shares variables between the
// copies, which findall uses to copy template+tail pairs coherently).
// If `cells` is non-null it is incremented by the number of cells written.
Addr copy_term(Store& store, unsigned dest_seg, Addr a,
               std::unordered_map<Addr, Addr>& var_map,
               std::uint64_t* cells = nullptr);

}  // namespace ace
