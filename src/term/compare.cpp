#include "term/compare.hpp"

namespace ace {
namespace {

enum Rank { kVar = 0, kInt = 1, kAtm = 2, kCompound = 3 };

int rank_of(Tag t) {
  switch (t) {
    case Tag::Ref:
      return kVar;
    case Tag::Int:
      return kInt;
    case Tag::Atm:
      return kAtm;
    case Tag::Lst:
    case Tag::Str:
      return kCompound;
    default:
      ACE_CHECK_MSG(false, "compare: unexpected tag");
      return kVar;
  }
}

template <typename T>
int cmp3(T a, T b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int compare_terms(const Store& store, const SymbolTable& syms, Addr a,
                  Addr b) {
  a = deref(store, a);
  b = deref(store, b);
  if (a == b) return 0;
  Cell ca = store.get(a);
  Cell cb = store.get(b);
  int ra = rank_of(ca.tag());
  int rb = rank_of(cb.tag());
  if (ra != rb) return cmp3(ra, rb);

  switch (ra) {
    case kVar:
      return cmp3(a, b);
    case kInt:
      return cmp3(ca.integer(), cb.integer());
    case kAtm:
      return syms.name(ca.symbol()).compare(syms.name(cb.symbol()));
    default:
      break;
  }

  // Compound: normalize (functor name, arity, arg base) for Lst and Str.
  auto shape = [&](Cell c) {
    struct S {
      unsigned arity;
      std::uint32_t sym;
      Addr args;
    };
    if (c.tag() == Tag::Lst) {
      return S{2, syms.known().dot, c.ref()};
    }
    Cell f = store.get(c.ref());
    return S{f.fun_arity(), f.fun_symbol(), c.ref() + 1};
  };
  auto sa = shape(ca);
  auto sb = shape(cb);
  if (int c = cmp3(sa.arity, sb.arity)) return c;
  if (int c = syms.name(sa.sym).compare(syms.name(sb.sym))) return c;
  for (unsigned i = 0; i < sa.arity; ++i) {
    if (int c = compare_terms(store, syms, sa.args + i, sb.args + i)) {
      return c;
    }
  }
  return 0;
}

}  // namespace ace
