// Standard order of terms: Var < Int < Atom < Compound; compounds compare
// by arity, then functor name, then arguments left to right. Lists are
// compared as './2' compounds (arity 2, name ".").
#pragma once

#include "term/store.hpp"
#include "term/symtab.hpp"

namespace ace {

// Returns <0, 0, >0 like strcmp.
int compare_terms(const Store& store, const SymbolTable& syms, Addr a,
                  Addr b);

}  // namespace ace
