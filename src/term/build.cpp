#include "term/build.hpp"

#include <unordered_map>

namespace ace {

Addr instantiate(Store& store, unsigned seg, const TermTemplate& tmpl,
                 std::vector<Addr>* out_vars) {
  const std::uint64_t varbase = store.seg_size(seg);
  for (std::uint32_t i = 0; i < tmpl.nvars; ++i) store.new_var(seg);
  const std::uint64_t cellbase = store.seg_size(seg);

  auto adjust = [&](Cell c) -> Cell {
    switch (c.tag()) {
      case Tag::VarSlot:
        return ref_cell(make_addr(seg, varbase + c.var_slot()));
      case Tag::Ref:
      case Tag::Str:
      case Tag::Lst:
        return make_cell(c.tag(), make_addr(seg, cellbase + c.payload()));
      default:
        return c;
    }
  };

  for (const Cell& c : tmpl.cells) store.push(seg, adjust(c));
  Addr root = store.push(seg, adjust(tmpl.root));

  if (out_vars != nullptr) {
    out_vars->clear();
    out_vars->reserve(tmpl.nvars);
    for (std::uint32_t i = 0; i < tmpl.nvars; ++i) {
      out_vars->push_back(make_addr(seg, varbase + i));
    }
  }
  return root;
}

Cell TemplateBuilder::atom(const std::string& name) {
  return atm_cell(syms_->intern(name));
}

Cell TemplateBuilder::var(const std::string& name) {
  if (name != "_") {
    for (std::uint32_t i = 0; i < tmpl_.nvars; ++i) {
      if (tmpl_.var_names[i] == name) return varslot_cell(i);
    }
  }
  std::uint32_t slot = tmpl_.nvars++;
  tmpl_.var_names.push_back(name);
  return varslot_cell(slot);
}

Cell TemplateBuilder::structure(const std::string& name,
                                const std::vector<Cell>& args) {
  return structure(syms_->intern(name), args);
}

Cell TemplateBuilder::structure(std::uint32_t sym,
                                const std::vector<Cell>& args) {
  ACE_CHECK(!args.empty() && args.size() <= kMaxArity);
  std::uint32_t p = static_cast<std::uint32_t>(tmpl_.cells.size());
  tmpl_.cells.push_back(fun_cell(sym, static_cast<unsigned>(args.size())));
  for (Cell a : args) tmpl_.cells.push_back(a);
  return str_cell(p);
}

Cell TemplateBuilder::list(const std::vector<Cell>& items) {
  return list(items, atom(syms_->known().nil));
}

Cell TemplateBuilder::list(const std::vector<Cell>& items, Cell tail) {
  Cell acc = tail;
  for (std::size_t i = items.size(); i > 0; --i) {
    std::uint32_t q = static_cast<std::uint32_t>(tmpl_.cells.size());
    tmpl_.cells.push_back(items[i - 1]);
    tmpl_.cells.push_back(acc);
    acc = lst_cell(q);
  }
  return acc;
}

TermTemplate TemplateBuilder::finish(Cell root) {
  TermTemplate out = std::move(tmpl_);
  out.root = root;
  tmpl_ = TermTemplate{};
  return out;
}

namespace {

Cell encode_template(const Store& store, Addr a, TermTemplate& tmpl,
                     std::unordered_map<Addr, std::uint32_t>& var_slots) {
  a = deref(store, a);
  Cell c = store.get(a);
  switch (c.tag()) {
    case Tag::Ref: {
      auto [it, inserted] = var_slots.emplace(a, tmpl.nvars);
      if (inserted) {
        ++tmpl.nvars;
        tmpl.var_names.push_back("_");
      }
      return varslot_cell(it->second);
    }
    case Tag::Atm:
    case Tag::Int:
      return c;
    case Tag::Lst: {
      Cell head = encode_template(store, c.ref(), tmpl, var_slots);
      Cell tail = encode_template(store, c.ref() + 1, tmpl, var_slots);
      std::uint32_t q = static_cast<std::uint32_t>(tmpl.cells.size());
      tmpl.cells.push_back(head);
      tmpl.cells.push_back(tail);
      return lst_cell(q);
    }
    case Tag::Str: {
      Cell f = store.get(c.ref());
      std::vector<Cell> args;
      args.reserve(f.fun_arity());
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        args.push_back(encode_template(store, c.ref() + i, tmpl, var_slots));
      }
      std::uint32_t p = static_cast<std::uint32_t>(tmpl.cells.size());
      tmpl.cells.push_back(f);
      for (Cell arg : args) tmpl.cells.push_back(arg);
      return str_cell(p);
    }
    default:
      ACE_CHECK_MSG(false, "term_to_template: unexpected tag");
      return c;
  }
}

}  // namespace

TermTemplate term_to_template(const Store& store, Addr root) {
  TermTemplate tmpl;
  std::unordered_map<Addr, std::uint32_t> var_slots;
  tmpl.root = encode_template(store, root, tmpl, var_slots);
  return tmpl;
}

Addr heap_atom(Store& store, unsigned seg, std::uint32_t sym) {
  return store.push(seg, atm_cell(sym));
}

Addr heap_int(Store& store, unsigned seg, std::int64_t v) {
  return store.push(seg, int_cell(v));
}

Addr heap_struct(Store& store, unsigned seg, std::uint32_t sym,
                 const std::vector<Addr>& args) {
  ACE_CHECK(!args.empty() && args.size() <= kMaxArity);
  Addr fun = store.push(seg, fun_cell(sym, static_cast<unsigned>(args.size())));
  for (Addr a : args) store.push(seg, ref_cell(a));
  return store.push(seg, str_cell(fun));
}

Addr heap_cons(Store& store, unsigned seg, Addr head, Addr tail) {
  Addr pair = store.push(seg, ref_cell(head));
  store.push(seg, ref_cell(tail));
  return store.push(seg, lst_cell(pair));
}

Addr heap_list(Store& store, unsigned seg, const std::vector<Addr>& items,
               std::uint32_t nil_sym) {
  return heap_list_tail(store, seg, items, heap_atom(store, seg, nil_sym));
}

Addr heap_list_tail(Store& store, unsigned seg, const std::vector<Addr>& items,
                    Addr tail) {
  Addr acc = tail;
  for (std::size_t i = items.size(); i > 0; --i) {
    acc = heap_cons(store, seg, items[i - 1], acc);
  }
  return acc;
}

}  // namespace ace
