#include "term/canon.hpp"

#include <unordered_map>
#include <vector>

#include "support/strutil.hpp"

namespace ace {

void canonical_term_key_into(const Store& store, Addr root,
                             std::string* out) {
  // Explicit work stack: an entry is either a term address to serialize or
  // a literal character to emit (closing parens). Entries are pushed in
  // reverse so they pop in left-to-right order.
  struct Item {
    Addr addr = 0;
    char lit = 0;  // nonzero: emit this character instead
  };
  std::vector<Item> work;
  std::unordered_map<Addr, unsigned> var_ids;
  work.push_back({root, 0});
  while (!work.empty()) {
    Item it = work.back();
    work.pop_back();
    if (it.lit != 0) {
      out->push_back(it.lit);
      continue;
    }
    Addr a = deref(store, it.addr);
    Cell c = store.get(a);
    switch (c.tag()) {
      case Tag::Ref: {  // unbound variable: number by first occurrence
        auto [pos, inserted] =
            var_ids.emplace(a, static_cast<unsigned>(var_ids.size()));
        *out += strf("_%u", pos->second);
        (void)inserted;
        break;
      }
      case Tag::Atm:
        *out += strf("a%u", c.symbol());
        break;
      case Tag::Int:
        *out += strf("i%lld", (long long)c.integer());
        break;
      case Tag::Str: {
        Cell f = store.get(c.ref());
        *out += strf("s%u:%u(", f.fun_symbol(), f.fun_arity());
        work.push_back({0, ')'});
        for (unsigned i = f.fun_arity(); i-- > 0;) {
          work.push_back({c.ref() + 1 + i, 0});
        }
        break;
      }
      case Tag::Lst:
        *out += "l(";
        work.push_back({0, ')'});
        work.push_back({c.ref() + 1, 0});
        work.push_back({c.ref() + 0, 0});
        break;
      default:
        // Fun/VarSlot never appear as dereferenced term roots.
        *out += "?";
        break;
    }
  }
}

std::string canonical_term_key(const Store& store, Addr a) {
  std::string out;
  canonical_term_key_into(store, a, &out);
  return out;
}

void canonical_template_key_into(const TermTemplate& tmpl, std::string* out) {
  // Same shape as canonical_term_key_into(), walking the template pool
  // instead of a heap: Str/Lst/Ref payloads are pool indices, variables
  // are VarSlot cells numbered here by first occurrence.
  struct Item {
    Cell cell{};
    char lit = 0;  // nonzero: emit this character instead
  };
  std::vector<Item> work;
  std::unordered_map<std::uint32_t, unsigned> var_ids;
  std::vector<std::uint32_t> var_order;  // slots in first-occurrence order
  work.push_back({tmpl.root, 0});
  while (!work.empty()) {
    Item it = work.back();
    work.pop_back();
    if (it.lit != 0) {
      out->push_back(it.lit);
      continue;
    }
    Cell c = it.cell;
    // Internal Ref cells (none are produced by the parser, but
    // term_to_template can emit them) point at another pool cell.
    while (c.tag() == Tag::Ref) c = tmpl.cells[c.ref()];
    switch (c.tag()) {
      case Tag::VarSlot: {
        auto [pos, inserted] =
            var_ids.emplace(c.var_slot(), static_cast<unsigned>(var_ids.size()));
        if (inserted) var_order.push_back(c.var_slot());
        *out += strf("_%u", pos->second);
        break;
      }
      case Tag::Atm:
        *out += strf("a%u", c.symbol());
        break;
      case Tag::Int:
        *out += strf("i%lld", (long long)c.integer());
        break;
      case Tag::Str: {
        const Cell f = tmpl.cells[c.ref()];
        *out += strf("s%u:%u(", f.fun_symbol(), f.fun_arity());
        work.push_back({Cell{}, ')'});
        for (unsigned i = f.fun_arity(); i-- > 0;) {
          work.push_back({tmpl.cells[c.ref() + 1 + i], 0});
        }
        break;
      }
      case Tag::Lst:
        *out += "l(";
        work.push_back({Cell{}, ')'});
        work.push_back({tmpl.cells[c.ref() + 1], 0});
        work.push_back({tmpl.cells[c.ref() + 0], 0});
        break;
      default:
        *out += "?";
        break;
    }
  }
  // Name trailer: cached solutions render "Name = value" lines, so keys
  // must distinguish variants that differ only in variable names.
  for (std::uint32_t slot : var_order) {
    out->push_back('|');
    *out += slot < tmpl.var_names.size() ? tmpl.var_names[slot] : "_";
  }
}

std::string canonical_template_key(const TermTemplate& tmpl) {
  std::string out;
  canonical_template_key_into(tmpl, &out);
  return out;
}

}  // namespace ace
