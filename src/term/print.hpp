// Term printing (writeq-style).
#pragma once

#include <string>
#include <unordered_map>

#include "term/store.hpp"
#include "term/symtab.hpp"

namespace ace {

struct PrintOpts {
  bool quoted = true;
  // Names for specific variable addresses (query variables); unnamed
  // variables print as _G<seg>_<offset>.
  const std::unordered_map<Addr, std::string>* var_names = nullptr;
  // Cap on recursion depth; 0 means unlimited. Deeper subterms print "...".
  unsigned max_depth = 0;
};

std::string term_to_string(const Store& store, const SymbolTable& syms,
                           Addr a, const PrintOpts& opts = {});

}  // namespace ace
