// Term construction: programmatic heap building, clause templates and
// template instantiation (structure-copying clause renaming).
//
// A TermTemplate is the stored form of a clause or query: a flat pool of
// cells whose internal Str/Lst/Ref payloads are *indices into the pool*,
// plus VarSlot cells marking variable positions. Instantiating a template
// allocates fresh heap variables for each slot and copies the pool with
// addresses rebased — this is the "rename apart" step of resolution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "term/cell.hpp"
#include "term/store.hpp"
#include "term/symtab.hpp"

namespace ace {

struct TermTemplate {
  std::vector<Cell> cells;
  Cell root;
  std::uint32_t nvars = 0;
  // Names for slots 0..nvars-1; "_" entries are anonymous.
  std::vector<std::string> var_names;

  std::size_t instantiation_cost() const { return cells.size() + nvars + 1; }
};

// Instantiates `tmpl` into segment `seg` of `store`. Returns the address of
// the root cell. If `out_vars` is non-null it receives the heap address of
// each variable slot (used to report query solutions).
Addr instantiate(Store& store, unsigned seg, const TermTemplate& tmpl,
                 std::vector<Addr>* out_vars = nullptr);

// Builder for constructing templates programmatically (tests, examples and
// the parser). Methods return the Cell value representing the built term;
// pass those values as arguments to enclosing constructors and finally to
// finish().
class TemplateBuilder {
 public:
  explicit TemplateBuilder(SymbolTable& syms) : syms_(&syms) {}

  Cell atom(const std::string& name);
  Cell atom(std::uint32_t sym) { return atm_cell(sym); }
  Cell integer(std::int64_t v) { return int_cell(v); }
  // Returns the cell for a named variable, creating the slot on first use.
  // The name "_" always creates a fresh anonymous slot.
  Cell var(const std::string& name);
  Cell structure(const std::string& name, const std::vector<Cell>& args);
  Cell structure(std::uint32_t sym, const std::vector<Cell>& args);
  // Builds a list of `items` terminated by `tail` (defaults to []).
  Cell list(const std::vector<Cell>& items);
  Cell list(const std::vector<Cell>& items, Cell tail);

  TermTemplate finish(Cell root);

  SymbolTable& syms() { return *syms_; }

 private:
  SymbolTable* syms_;
  TermTemplate tmpl_;
  std::vector<std::string> pending_names_;
};

// Converts a heap term back into a template (assert/1 of a constructed
// clause). Unbound variables become fresh template slots.
TermTemplate term_to_template(const Store& store, Addr root);

// Direct heap construction helpers (used by builtins and tests).
Addr heap_atom(Store& store, unsigned seg, std::uint32_t sym);
Addr heap_int(Store& store, unsigned seg, std::int64_t v);
Addr heap_struct(Store& store, unsigned seg, std::uint32_t sym,
                 const std::vector<Addr>& args);
Addr heap_list(Store& store, unsigned seg, const std::vector<Addr>& items,
               std::uint32_t nil_sym);
Addr heap_list_tail(Store& store, unsigned seg, const std::vector<Addr>& items,
                    Addr tail);
// Cons cell (head, tail) as a heap list node.
Addr heap_cons(Store& store, unsigned seg, Addr head, Addr tail);

}  // namespace ace
