#include "term/store.hpp"

namespace ace {

Store::Store(unsigned num_segments) {
  ACE_CHECK(num_segments >= 1);
  segs_.reserve(num_segments);
  for (unsigned i = 0; i < num_segments; ++i) {
    segs_.push_back(std::make_unique<Segment>());
  }
}

Addr Store::alloc(unsigned seg, std::size_t n) {
  ACE_DCHECK(n > 0);
  Addr first = push(seg, Cell{});
  for (std::size_t i = 1; i < n; ++i) push(seg, Cell{});
  return first;
}

std::size_t Store::total_cells() const {
  std::size_t total = 0;
  for (const auto& s : segs_) total += s->size();
  return total;
}

void Store::copy_seg0_prefix_from(const Store& other, std::size_t n) {
  ACE_CHECK(num_segments() == 1 && other.num_segments() == 1);
  segs_[0]->copy_prefix_from(*other.segs_[0], n);
}

Addr deref(const Store& store, Addr a) {
  for (;;) {
    Cell c = store.get(a);
    if (c.tag() != Tag::Ref) return a;
    Addr target = c.ref();
    if (target == a) return a;  // unbound
    a = target;
  }
}

void untrail(Store& store, Trail& trail, std::size_t mark) {
  std::size_t top = trail.size();
  ACE_DCHECK(mark <= top);
  for (std::size_t i = top; i > mark; --i) {
    Addr var = trail[i - 1];
    store.set(var, ref_cell(var));
  }
  trail.truncate(mark);
}

void untrail_range(Store& store, const Trail& trail, std::size_t lo,
                   std::size_t hi) {
  ACE_DCHECK(lo <= hi && hi <= trail.size());
  for (std::size_t i = hi; i > lo; --i) {
    Addr var = trail[i - 1];
    store.set(var, ref_cell(var));
  }
}

}  // namespace ace
