// Canonical term keys for variant checking (tabling subsystem).
//
// Two subgoals are *variants* when they are identical up to a consistent
// renaming of unbound variables. canonical_term_key() serializes a
// dereferenced term with variables numbered by first occurrence ("_0",
// "_1", ...), so two terms are variants iff their keys compare equal —
// the table-space lookup in src/tab reduces variant checking to a string
// hash. Symbols are serialized by id, which is stable for the lifetime of
// the owning SymbolTable (and therefore of any table space keyed by it).
#pragma once

#include <string>

#include "term/build.hpp"
#include "term/store.hpp"

namespace ace {

// Canonical serialization of the term at `a` (dereferenced). Iterative:
// safe on deep structures (long lists). The format is unambiguous:
//   atom      "a<sym>"        integer  "i<val>"
//   struct    "s<sym>:<arity>(" args ")"   list  "l(" head tail ")"
//   variable  "_<n>"          (n = first-occurrence index)
std::string canonical_term_key(const Store& store, Addr a);

// Appends the canonical key of `a` to `out` (bulk users avoid the
// per-term string allocation). Variable numbering restarts per call.
void canonical_term_key_into(const Store& store, Addr a, std::string* out);

// Canonical serialization of a parsed-but-uninstantiated TermTemplate
// (the serving result cache keys queries without touching any Store).
// Structure cells serialize exactly like canonical_term_key() — two
// queries produce equal structural prefixes iff instantiating both and
// serializing the heap terms would — with variable slots numbered by
// first occurrence. Because a cached QueryResult renders solutions with
// the query's *variable names* ("X = 1"), the structural key is followed
// by a '|'-separated trailer of the names in first-occurrence order:
// `p(X,Y)` and `p(A,B)` are variants but must not share a cache entry.
std::string canonical_template_key(const TermTemplate& tmpl);

// Appending variant of canonical_template_key().
void canonical_template_key_into(const TermTemplate& tmpl, std::string* out);

}  // namespace ace
