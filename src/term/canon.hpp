// Canonical term keys for variant checking (tabling subsystem).
//
// Two subgoals are *variants* when they are identical up to a consistent
// renaming of unbound variables. canonical_term_key() serializes a
// dereferenced term with variables numbered by first occurrence ("_0",
// "_1", ...), so two terms are variants iff their keys compare equal —
// the table-space lookup in src/tab reduces variant checking to a string
// hash. Symbols are serialized by id, which is stable for the lifetime of
// the owning SymbolTable (and therefore of any table space keyed by it).
#pragma once

#include <string>

#include "term/store.hpp"

namespace ace {

// Canonical serialization of the term at `a` (dereferenced). Iterative:
// safe on deep structures (long lists). The format is unambiguous:
//   atom      "a<sym>"        integer  "i<val>"
//   struct    "s<sym>:<arity>(" args ")"   list  "l(" head tail ")"
//   variable  "_<n>"          (n = first-occurrence index)
std::string canonical_term_key(const Store& store, Addr a);

// Appends the canonical key of `a` to `out` (bulk users avoid the
// per-term string allocation). Variable numbering restarts per call.
void canonical_term_key_into(const Store& store, Addr a, std::string* out);

}  // namespace ace
