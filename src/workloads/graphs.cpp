#include "workloads/graphs.hpp"

#include <set>
#include <utility>

#include "support/diag.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace ace {

std::string chain_edges(unsigned n) {
  std::string out;
  for (unsigned i = 1; i < n; ++i) out += strf("edge(%u, %u).\n", i, i + 1);
  return out;
}

std::string grid_edges(unsigned k) {
  std::string out;
  for (unsigned r = 0; r < k; ++r) {
    for (unsigned c = 0; c < k; ++c) {
      unsigned id = r * k + c + 1;
      if (c + 1 < k) out += strf("edge(%u, %u).\n", id, id + 1);
      if (r + 1 < k) out += strf("edge(%u, %u).\n", id, id + k);
    }
  }
  return out;
}

std::string random_edges(unsigned nodes, unsigned edges, std::uint64_t seed) {
  ACE_CHECK(nodes >= 2);
  SplitMix64 rng(seed);
  std::set<std::pair<unsigned, unsigned>> picked;
  // a < b keeps the graph acyclic so the untabled comparators terminate.
  while (picked.size() < edges) {
    unsigned a = 1 + static_cast<unsigned>(rng.below(nodes - 1));
    unsigned b = a + 1 + static_cast<unsigned>(rng.below(nodes - a));
    picked.emplace(a, b);
  }
  std::string out;
  for (const auto& [a, b] : picked) out += strf("edge(%u, %u).\n", a, b);
  return out;
}

const std::string& graph_program_text() {
  // tc/2 is deliberately LEFT recursive: without tabling it would loop
  // forever, which is exactly the class of program SLG resolution admits.
  // tcr/2 is the standard terminating right-recursive closure used as the
  // untabled comparator (exponential re-derivation on dense DAGs).
  static const std::string text = R"PL(
:- table tc/2.
tc(X, Y) :- tc(X, Z), edge(Z, Y).
tc(X, Y) :- edge(X, Y).

tcr(X, Y) :- edge(X, Y).
tcr(X, Y) :- edge(X, Z), tcr(Z, Y).

:- table path/2.
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).

:- table sg/2.
sg(X, X).
sg(X, Y) :- edge(P, X), sg(P, Q), edge(Q, Y).

sgu(X, X).
sgu(X, Y) :- edge(P, X), sgu(P, Q), edge(Q, Y).
)PL";
  return text;
}

namespace {

Workload graph_entry(const std::string& name, const std::string& desc,
                     const std::string& edges, const std::string& query,
                     const std::string& small_query) {
  Workload w;
  w.name = name;
  w.description = desc;
  w.source = graph_program_text() + edges;
  w.query = query;
  w.small_query = small_query;
  w.and_parallel = false;
  w.all_solutions = true;
  return w;
}

std::vector<Workload> make_graph_workloads() {
  std::vector<Workload> w;
  const std::string chain64 = chain_edges(64);
  const std::string grid8 = grid_edges(8);
  const std::string rand64 = random_edges(64, 96, 7);

  w.push_back(graph_entry(
      "tc_chain64", "tabled transitive closure, 64-node chain", chain64,
      "tc(1, X).", "tc(1, X)."));
  w.push_back(graph_entry(
      "tc_chain64_notab", "untabled transitive closure, 64-node chain",
      chain64, "tcr(1, X).", "tcr(1, X)."));
  w.push_back(graph_entry(
      "tc_grid8", "tabled transitive closure, 8x8 grid DAG", grid8,
      "tc(1, X).", "tc(1, X)."));
  w.push_back(graph_entry(
      "tc_grid8_notab",
      "untabled transitive closure, 8x8 grid DAG (path-count blowup)", grid8,
      "tcr(1, X).", "tcr(1, X)."));
  w.push_back(graph_entry(
      "tc_rand64", "tabled transitive closure, random sparse DAG (seed 7)",
      rand64, "tc(1, X).", "tc(1, X)."));
  w.push_back(graph_entry(
      "tc_rand64_notab",
      "untabled transitive closure, random sparse DAG (seed 7)", rand64,
      "tcr(1, X).", "tcr(1, X)."));
  w.push_back(graph_entry(
      "path_grid8", "tabled right-recursive reachability, 8x8 grid", grid8,
      "path(1, X).", "path(1, X)."));
  w.push_back(graph_entry(
      "path_grid8_notab", "untabled reachability, 8x8 grid", grid8,
      "tcr(1, X).", "tcr(1, X)."));
  w.push_back(graph_entry(
      "sg_grid8", "tabled same-generation, 8x8 grid", grid8, "sg(28, X).",
      "sg(28, X)."));
  w.push_back(graph_entry(
      "sg_grid8_notab", "untabled same-generation, 8x8 grid", grid8,
      "sgu(28, X).", "sgu(28, X)."));
  return w;
}

}  // namespace

const std::vector<Workload>& graph_workloads() {
  static const std::vector<Workload> w = make_graph_workloads();
  return w;
}

const Workload& graph_workload(const std::string& name) {
  for (const Workload& w : graph_workloads()) {
    if (w.name == name) return w;
  }
  throw AceError("unknown graph workload: " + name);
}

}  // namespace ace
