// Graph workload family for the tabling subsystem (src/tab/): seeded edge
// generators (chain, grid, random sparse DAG) combined with the classic
// tabling programs — transitive closure, path reachability and same
// generation — in tabled and untabled form.
//
// These live in their own registry (graph_workloads()) rather than in
// workloads(): the paper-corpus list feeds BENCH_attrib.json and must not
// change shape. workload(name) falls back to this registry, so ace_run
// --workload tc_grid8 and the sim sweep can still address them by name.
//
// Naming: <program>_<graph> runs the tabled predicate, and the paired
// <program>_<graph>_notab runs the equivalent untabled (right-recursive)
// definition over the same edge set — bench_tab reports both at 1/5/10
// agents so the memoization win is measured against real re-derivation.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/programs.hpp"

namespace ace {

// Edge-fact generators. All deterministic: the same arguments always
// produce the same fact text, so virtual times are reproducible.
//
// chain_edges(n):   edge(i, i+1) for 1 <= i < n (a path of n nodes).
// grid_edges(k):    k x k lattice, node (r,c) = r*k + c + 1, with right and
//                   down edges — the path-counting blowup graph: the number
//                   of distinct corner-to-corner derivations is binomial.
// random_edges(..): `edges` distinct edges a -> b with a < b (guaranteed
//                   acyclic, so untabled right recursion terminates) drawn
//                   from SplitMix64(seed).
std::string chain_edges(unsigned n);
std::string grid_edges(unsigned k);
std::string random_edges(unsigned nodes, unsigned edges, std::uint64_t seed);

// The shared program text: tabled tc/2 (left recursive), path/2 (right
// recursive) and sg/2, plus the untabled comparators tcr/2 and sgu/2.
// Tests combine it with a generated edge set of their own size.
const std::string& graph_program_text();

// The registered family (each entry = program text + one edge set).
const std::vector<Workload>& graph_workloads();
const Workload& graph_workload(const std::string& name);

}  // namespace ace
