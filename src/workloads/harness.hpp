// Workload runner: builds a database for a workload and runs it through
// ace::Engine with a given configuration, returning the paper-style
// measurements. Also provides the speedup/table helpers the bench binaries
// share.
#pragma once

#include "engine/engine.hpp"
#include "workloads/programs.hpp"

namespace ace {

// The harness runs everything through the unified ace::Engine; EngineKind
// is an alias of the engine's mode enum (identical enumerators).
using EngineKind = EngineMode;

struct RunConfig {
  EngineKind engine = EngineKind::Seq;
  unsigned agents = 1;
  bool lpco = false;
  bool shallow = false;
  bool pdo = false;
  bool lao = false;
  bool static_facts = false;  // elide statically proven opt checks
  bool attrib = false;        // per-predicate attribution rows
  bool tabling = true;        // honor `:- table p/N.` directives
  std::size_t max_solutions = SIZE_MAX;
  bool use_threads = false;  // Andp mode only
  std::uint64_t resolution_limit = 0;
  const CostModel* costs = nullptr;  // defaults to CostModel::standard()

  // The EngineConfig this run configuration denotes.
  EngineConfig engine_config() const {
    EngineConfig c;
    c.mode = engine;
    c.agents = agents;
    c.lpco = lpco;
    c.shallow = shallow;
    c.pdo = pdo;
    c.lao = lao;
    c.static_facts = static_facts;
    c.attrib = attrib;
    c.tabling = tabling;
    c.use_threads = use_threads;
    c.resolution_limit = resolution_limit;
    return c;
  }
};

struct RunOutcome {
  std::uint64_t virtual_time = 0;
  std::size_t num_solutions = 0;
  std::vector<std::string> solutions;
  Counters stats;
  // Attribution rollups (PR 4): per-category virtual time summed over
  // agents, one final clock per agent and the schema-savings estimate.
  AttribBreakdown attrib;
  std::vector<std::uint64_t> agent_clocks;
  SchemaSavings savings;
};

// Runs `query` against the workload's program. Uses the workload's default
// query if `query` is empty.
RunOutcome run_workload(const Workload& w, const RunConfig& cfg,
                        const std::string& query = "");

// Convenience used by tests: the solution list for a named workload's small
// query under `cfg`.
RunOutcome run_small(const std::string& workload_name, const RunConfig& cfg);

}  // namespace ace
