// The benchmark corpus: re-creations of the programs the paper evaluates
// (Tables 1-5, Figures 5 and 8), written in this system's Prolog dialect
// with '&' annotations for independent and-parallelism.
//
// Queries are parameterized by size so tests can run small instances and
// benches the paper-scale ones.
#pragma once

#include <string>
#include <vector>

namespace ace {

struct Workload {
  std::string name;         // e.g. "matrix"
  std::string description;  // one line, citing the table/figure it serves
  std::string source;       // Prolog program text
  std::string query;        // default query (bench scale)
  std::string small_query;  // reduced instance for tests
  bool and_parallel;        // uses '&' (and-parallel benchmarks)
  bool all_solutions;       // enumerate every solution (or-parallel style)
};

const std::vector<Workload>& workloads();
const Workload& workload(const std::string& name);

}  // namespace ace
