#include "workloads/programs.hpp"

#include "support/diag.hpp"
#include "workloads/graphs.hpp"

namespace ace {
namespace {

std::vector<Workload> make_workloads() {
  std::vector<Workload> w;

  // ---- Shared helper predicates (included where needed) -----------------
  const std::string kCommon = R"PL(
mkmat(0, _, []) :- !.
mkmat(N, M, [R|Rs]) :- mkrow(M, N, R), N1 is N - 1, mkmat(N1, M, Rs).
mkrow(0, _, []) :- !.
mkrow(M, N, [E|Es]) :- E is (M * 17 + N * 31) mod 10, M1 is M - 1,
    mkrow(M1, N, Es).
checksum([], 0).
checksum([R|Rs], S) :- sum_list(R, S1), checksum(Rs, S2), S is S1 + S2.
)PL";

  // ======================================================================
  // map1 — failure-driven parallel map: a nondeterministic seed generator
  // followed by an expensive parallel map; the test only accepts the last
  // seed, so every retry re-executes the whole parallel call. Heavy
  // backward execution over (flattened) parcalls: Table 2 and Figure 5
  // ("map"), the paper's LPCO showcase.
  w.push_back({
      "map1",
      "failure-driven parallel map (Table 2, Fig 5)",
      R"PL(
mix(0, A, _, A) :- !.
mix(K, A, S, V) :- A1 is (A * 31 + S) mod 1000003, K1 is K - 1,
    mix(K1, A1, S, V).
mapel(I, Seed, V) :- mix(12, I, Seed, V).
mapseed([], _, []).
mapseed([I|Is], Seed, [V|Vs]) :- mapel(I, Seed, V) & mapseed(Is, Seed, Vs).
map1(N, S, Out) :- numlist(1, N, L),
    between(1, S, Seed), mapseed(L, Seed, Out), Seed =:= S.
)PL",
      "map1(16, 50, Out).",
      "map1(5, 4, Out).",
      /*and_parallel=*/true,
      /*all_solutions=*/false,
  });

  // map2 — deterministic parallel map (forward execution only): Table 1.
  w.push_back({
      "map2",
      "deterministic parallel map, forward only (Table 1)",
      R"PL(
tr2(X, Y) :- tr2_work(12, X, Y).
tr2_work(0, A, A) :- !.
tr2_work(N, A, Y) :- A1 is (A * 3 + 1) mod 1000003, N1 is N - 1,
    tr2_work(N1, A1, Y).
map2l([], []).
map2l([H|T], [H2|T2]) :- tr2(H, H2) & map2l(T, T2).
map2(N, Out) :- numlist(1, N, L), map2l(L, Out).
)PL",
      "map2(300, Out).",
      "map2(12, Out).",
      true,
      false,
  });

  // occur — count occurrences of each symbol in a long list, one counter
  // per symbol in and-parallel: Tables 1, 4, 5; Figure 8 ("poccur").
  w.push_back({
      "occur",
      "parallel symbol-occurrence counting (Tables 1/4/5, Fig 8)",
      R"PL(
sym(0, a). sym(1, b). sym(2, c). sym(3, d). sym(4, e).
symlist(0, []) :- !.
symlist(N, [S|T]) :- M is N mod 5, sym(M, S), N1 is N - 1, symlist(N1, T).
count_occ([], _, 0).
count_occ([H|T], S, C) :- count_occ(T, S, C1),
    ( H == S -> C is C1 + 1 ; C = C1 ).
% The list is counted in chunks of 3, one parallel subgoal per chunk
% (data and-parallel style, recursion shaped for LPCO flattening; fine
% granularity makes the per-subgoal bookkeeping overhead visible).
taken(0, L, [], L) :- !.
taken(_, [], [], []) :- !.
taken(N, [H|T], [H|C], R) :- N1 is N - 1, taken(N1, T, C, R).
split8([], []) :- !.
split8(L, [C|Cs]) :- taken(3, L, C, R), split8(R, Cs).
chunk_counts([], _, []).
chunk_counts([Ch|Cs], S, [N|Ns]) :-
    count_occ(Ch, S, N) & chunk_counts(Cs, S, Ns).
percounts([], _, []).
percounts([S|Ss], Ch, [Ns|Rest]) :-
    chunk_counts(Ch, S, Ns) & percounts(Ss, Ch, Rest).
sums([], [], []).
sums([S|Ss], [Ns|Rest], [S - C|Cs]) :- sum_list(Ns, C), sums(Ss, Rest, Cs).
occur(N, Out) :- symlist(N, L), split8(L, Chunks),
    percounts([a, b, c, d, e], Chunks, Nss),
    sums([a, b, c, d, e], Nss, Out).
)PL",
      "occur(200, Cs).",
      "occur(25, Cs).",
      true,
      false,
  });

  // matrix — parallel matrix multiplication (rows in and-parallel):
  // forward instance for Tables 4/5, backward instance below for Table 2.
  w.push_back({
      "matrix",
      "parallel matrix multiplication, forward (Tables 4/5)",
      kCommon + R"PL(
dot([], [], 0).
dot([A|As], [B|Bs], S) :- dot(As, Bs, S1), S is S1 + A * B.
% And-parallel at both levels: rows in parallel, and the dot products of a
% row in parallel (fine granularity — the marker overhead the shallow
% optimization removes is a visible fraction of each subgoal).
mrow([], _, []).
mrow([C|Cs], R, [E|Es]) :- dot(R, C, E) & mrow(Cs, R, Es).
mmult([], _, []).
mmult([R|Rs], Cols, [O|Os]) :- mrow(Cols, R, O) & mmult(Rs, Cols, Os).
matrix(N, S) :- mkmat(N, N, M), mmult(M, M, Out), checksum(Out, S).
)PL",
      "matrix(12, S).",
      "matrix(4, S).",
      true,
      false,
  });

  // matrix_bt — matrix multiplication with a nondeterministic element
  // adjustment and a global test: backward execution, Table 2 / Figure 5.
  w.push_back({
      "matrix_bt",
      "failure-driven seeded matrix multiplication (Table 2, Fig 5)",
      kCommon + R"PL(
dot([], [], 0).
dot([A|As], [B|Bs], S) :- dot(As, Bs, S1), S is S1 + A * B.
mrow_s([], _, _, []).
mrow_s([C|Cs], R, S, [E|Es]) :- dot(R, C, D), E is (D * S + 1) mod 9973,
    mrow_s(Cs, R, S, Es).
mmult_s([], _, _, []).
mmult_s([R|Rs], Cols, S, [O|Os]) :-
    mrow_s(Cols, R, S, O) & mmult_s(Rs, Cols, S, Os).
% Failure-driven loop: every rejected seed redoes the full parallel
% multiply through backward execution over the parcall.
matrix_bt(N, S, Sum) :- mkmat(N, N, M),
    between(1, S, Seed), mmult_s(M, M, Seed, Out), Seed =:= S,
    checksum(Out, Sum).
)PL",
      "matrix_bt(8, 40, Sum).",
      "matrix_bt(3, 3, Sum).",
      true,
      false,
  });

  // pderiv — parallel symbolic differentiation: Table 2 / Figure 5
  // (backward variant pderiv_bt) and general and-parallel load.
  const std::string kDeriv = R"PL(
d(x, x, 1).
d(N, _, 0) :- integer(N).
d(A + B, X, DA + DB) :- d(A, X, DA) & d(B, X, DB).
d(A - B, X, DA - DB) :- d(A, X, DA) & d(B, X, DB).
d(A * B, X, A * DB + DA * B) :- d(A, X, DA) & d(B, X, DB).
mkexp(0, x) :- !.
mkexp(N, x * E + N) :- N1 is N - 1, mkexp(N1, E).
mkexps(0, _, []) :- !.
mkexps(K, N, [E|Es]) :- mkexp(N, E), K1 is K - 1, mkexps(K1, N, Es).
tsize(X, 1) :- atomic(X), !.
tsize(T, S) :- T =.. [_|As], tsizes(As, S1), S is S1 + 1.
tsizes([], 0).
tsizes([A|As], S) :- tsize(A, S1), tsizes(As, S2), S is S1 + S2.
)PL";
  w.push_back({
      "pderiv",
      "parallel symbolic differentiation, forward",
      kDeriv + R"PL(
deriv_all([], _, []).
deriv_all([E|Es], X, [D|Ds]) :- d(E, X, D) & deriv_all(Es, X, Ds).
pderiv(K, N, S) :- mkexps(K, N, Es), deriv_all(Es, x, Ds), tsizes(Ds, S).
)PL",
      "pderiv(20, 14, S).",
      "pderiv(4, 4, S).",
      true,
      false,
  });
  w.push_back({
      "pderiv_bt",
      "failure-driven seeded differentiation (Table 2, Fig 5)",
      kDeriv + R"PL(
% One parallel subgoal per expression: build a seed-dependent expression,
% differentiate it, measure the result. A rejected seed redoes all of it.
pder_el(I, Seed, N, Sz) :- D is 1 + (I * Seed) mod N, mkexp(D, E),
    d(E, x, DD), tsize(DD, Sz).
pder_all([], _, _, []).
pder_all([I|Is], Seed, N, [Sz|Szs]) :-
    pder_el(I, Seed, N, Sz) & pder_all(Is, Seed, N, Szs).
pderiv_bt(K, N, S, W) :- numlist(1, K, Idx),
    between(1, S, Seed), pder_all(Idx, Seed, N, Szs), Seed =:= S,
    sum_list(Szs, W).
)PL",
      "pderiv_bt(12, 8, 40, W).",
      "pderiv_bt(4, 3, 3, W).",
      true,
      false,
  });

  // annotator — a miniature independence annotator (the &ACE benchmark is
  // a program analyzer): Tables 2, 4, 5; Figure 8.
  const std::string kAnnotate = R"PL(
mkgoal(I, g(I, [V1, V2])) :- V1 is I mod 7, V2 is (I * 3 + 1) mod 7.
mkbody(0, _, []) :- !.
mkbody(N, I, [G|Gs]) :- J is I * 13 + N, mkgoal(J, G), N1 is N - 1,
    mkbody(N1, I, Gs).
mkbodies(0, []) :- !.
mkbodies(K, [B|Bs]) :- mkbody(6, K, B), K1 is K - 1, mkbodies(K1, Bs).
indep(g(_, V1), g(_, V2)) :- disjoint(V1, V2).
disjoint([], _).
disjoint([X|Xs], Ys) :- \+ member(X, Ys), disjoint(Xs, Ys).
annotate_body([], []).
annotate_body([G], [one(G)]) :- !.
annotate_body([G1, G2|Gs], [A|Rest]) :-
    ( indep(G1, G2) -> A = par(G1, G2) ; A = seq(G1, G2) ),
    annotate_body(Gs, Rest).
)PL";
  w.push_back({
      "annotator",
      "mini independence annotator, forward (Tables 4/5, Fig 8)",
      kAnnotate + R"PL(
% Each goal pair is annotated by its own parallel subgoal.
ann_pair(G1, G2, A) :-
    ( indep(G1, G2) -> A = par(G1, G2) ; A = seq(G1, G2) ).
annotate_pairs([], []).
annotate_pairs([G], [one(G)]) :- !.
annotate_pairs([G1, G2|Gs], [A|Rest]) :-
    ann_pair(G1, G2, A) & annotate_pairs(Gs, Rest).
annotate_all([], []).
annotate_all([B|Bs], [A|As]) :-
    annotate_pairs(B, A) & annotate_all(Bs, As).
annotator(K, Out) :- mkbodies(K, Bs), annotate_all(Bs, Out).
)PL",
      "annotator(60, Out).",
      "annotator(8, Out).",
      true,
      false,
  });
  w.push_back({
      "annotator_bt",
      "failure-driven seeded annotator (Table 2)",
      kAnnotate + R"PL(
% One parallel subgoal per clause body: build a seed-dependent body and
% annotate it. A rejected seed redoes the whole annotation in parallel.
ann_el(I, Seed, A) :- J is I * 17 + Seed, mkbody(6, J, B),
    annotate_body(B, A).
annseed([], _, []).
annseed([I|Is], Seed, [A|As]) :- ann_el(I, Seed, A) & annseed(Is, Seed, As).
annotator_bt(K, S, Out) :- numlist(1, K, Idx),
    between(1, S, Seed), annseed(Idx, Seed, Out), Seed =:= S.
)PL",
      "annotator_bt(10, 40, Out).",
      "annotator_bt(3, 3, Out).",
      true,
      false,
  });

  // takeuchi — parallel tak: Tables 4 and 5.
  w.push_back({
      "takeuchi",
      "parallel Takeuchi function (Tables 4/5)",
      R"PL(
tak(X, Y, Z, A) :- X =< Y, !, A = Z.
tak(X, Y, Z, A) :- X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    tak(X1, Y, Z, A1) & tak(Y1, Z, X, A2) & tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).
takeuchi(X, Y, Z, A) :- tak(X, Y, Z, A).
)PL",
      "takeuchi(14, 10, 3, A).",
      "takeuchi(5, 3, 0, A).",
      true,
      false,
  });

  // hanoi — parallel towers of Hanoi: Table 4 / Figure 8.
  w.push_back({
      "hanoi",
      "parallel towers of Hanoi (Table 4, Fig 8)",
      R"PL(
hanoi(0, _, _, _, []) :- !.
hanoi(N, A, B, C, M) :- N1 is N - 1,
    hanoi(N1, A, C, B, M1) & hanoi(N1, C, B, A, M2),
    append(M1, [mv(A, B)|M2], M).
htop(N, Len) :- hanoi(N, l, m, r, M), length(M, Len).
)PL",
      "htop(10, Len).",
      "htop(4, Len).",
      true,
      false,
  });

  // bt_cluster — parallel nearest-centre classification: Tables 4 and 5.
  w.push_back({
      "bt_cluster",
      "parallel point clustering (Tables 4/5)",
      R"PL(
pt(I, p(X, Y)) :- X is (I * 37) mod 100, Y is (I * 73) mod 100.
mkpts(0, []) :- !.
mkpts(N, [P|Ps]) :- pt(N, P), N1 is N - 1, mkpts(N1, Ps).
dist2(p(X1, Y1), p(X2, Y2), D) :- DX is X1 - X2, DY is Y1 - Y2,
    D is DX * DX + DY * DY.
nearest(P, [C], C, D) :- !, dist2(P, C, D).
nearest(P, [C|Cs], Best, BD) :- dist2(P, C, D1), nearest(P, Cs, B2, D2),
    ( D1 =< D2 -> Best = C, BD = D1 ; Best = B2, BD = D2 ).
classify([], _, []).
classify([P|Ps], Cs, [B|Bs]) :- nearest(P, Cs, B, _) & classify(Ps, Cs, Bs).
bt_cluster(N, Out) :- mkpts(N, Ps),
    classify(Ps, [p(10, 10), p(50, 50), p(90, 20), p(20, 80)], Out).
)PL",
      "bt_cluster(150, Out).",
      "bt_cluster(10, Out).",
      true,
      false,
  });

  // quick_sort — parallel quicksort: Table 5.
  w.push_back({
      "quick_sort",
      "parallel quicksort (Table 5)",
      R"PL(
qpartition([], _, [], []).
qpartition([H|T], P, [H|L], G) :- H =< P, !, qpartition(T, P, L, G).
qpartition([H|T], P, L, [H|G]) :- qpartition(T, P, L, G).
qsort([], []).
qsort([P|T], S) :- qpartition(T, P, L, G), qsort(L, SL) & qsort(G, SG),
    append(SL, [P|SG], S).
rnd_list(0, _, []) :- !.
rnd_list(N, Seed, [X|Xs]) :- X is (Seed * 1103515245 + 12345) mod 1000,
    N1 is N - 1, rnd_list(N1, X, Xs).
quick_sort(N, S) :- rnd_list(N, 42, L), qsort(L, S).
)PL",
      "quick_sort(120, S).",
      "quick_sort(12, S).",
      true,
      false,
  });

  // nrev — naive reverse, the classic LIPS benchmark. Note: nrev's two
  // body goals share RT, so they are NOT independent — the classic program
  // stays sequential (a useful negative example for the annotator, which
  // correctly refuses to fuse them).
  w.push_back({
      "nrev",
      "naive reverse (classic sequential Prolog benchmark)",
      R"PL(
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
nrev_top(N, Last) :- numlist(1, N, L), nrev(L, R), R = [Last|_].
)PL",
      "nrev_top(60, Last).",
      "nrev_top(12, Last).",
      true,
      false,
  });

  // fib — doubly recursive parallel Fibonacci (scheduling stress).
  w.push_back({
      "fib",
      "parallel Fibonacci (scheduling stress)",
      R"PL(
fibp(N, F) :- N < 2, !, F = N.
fibp(N, F) :- N1 is N - 1, N2 is N - 2,
    fibp(N1, F1) & fibp(N2, F2), F is F1 + F2.
)PL",
      "fibp(17, F).",
      "fibp(9, F).",
      true,
      false,
  });

  // ======================================================================
  // Or-parallel benchmarks (Table 3).

  w.push_back({
      "queens1",
      "n-queens, permutation coding (Table 3)",
      R"PL(
queens1(N, Qs) :- numlist(1, N, Ns), qperm(Ns, [], Qs).
qperm([], Acc, Acc).
qperm(L, Acc, Qs) :- select(Q, L, R), qsafe(Q, Acc, 1), qperm(R, [Q|Acc], Qs).
qsafe(_, [], _).
qsafe(Q, [P|Ps], D) :- Q =\= P + D, Q =\= P - D, D1 is D + 1, qsafe(Q, Ps, D1).
)PL",
      "queens1(7, Qs).",
      "queens1(5, Qs).",
      false,
      true,
  });

  w.push_back({
      "queens2",
      "n-queens, incremental generator coding (Table 3)",
      R"PL(
queens2(N, Qs) :- q2(N, N, [], Qs).
q2(0, _, Acc, Acc) :- !.
q2(K, N, Acc, Qs) :- between(1, N, Q), qsafe(Q, Acc, 1), K1 is K - 1,
    q2(K1, N, [Q|Acc], Qs).
% Unlike the permutation coding, the generator may repeat values, so the
% safety check also excludes same-column clashes.
qsafe(_, [], _).
qsafe(Q, [P|Ps], D) :- Q =\= P, Q =\= P + D, Q =\= P - D, D1 is D + 1,
    qsafe(Q, Ps, D1).
)PL",
      "queens2(7, Qs).",
      "queens2(5, Qs).",
      false,
      true,
  });

  // puzzle — 3x3 magic square via pruned selection: Table 3.
  w.push_back({
      "puzzle",
      "3x3 magic square search (Table 3)",
      R"PL(
puzzle([A, B, C, D, E, F, G, H, I]) :-
    L0 = [1, 2, 3, 4, 5, 6, 7, 8, 9],
    select(A, L0, L1), select(B, L1, L2), select(C, L2, L3),
    15 =:= A + B + C,
    select(D, L3, L4), select(E, L4, L5), select(F, L5, L6),
    15 =:= D + E + F,
    select(G, L6, L7), select(H, L7, L8), select(I, L8, []),
    15 =:= G + H + I,
    15 =:= A + D + G, 15 =:= B + E + H, 15 =:= C + F + I,
    15 =:= A + E + I, 15 =:= C + E + G.
)PL",
      "puzzle(S).",
      "puzzle(S).",
      false,
      true,
  });

  // ancestors — descendant enumeration over an implicit binary tree.
  w.push_back({
      "ancestors",
      "descendant enumeration, binary family tree (Table 3)",
      R"PL(
parent(X, Y) :- X =< 127, Y is X * 2.
parent(X, Y) :- X =< 127, Y is X * 2 + 1.
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
)PL",
      "anc(1, X).",
      "anc(16, X).",
      false,
      true,
  });

  // members — the paper's member/compute pattern (Figures 6 and 7), the
  // LAO showcase.
  w.push_back({
      "members",
      "member(V, L), compute(V, R) — the LAO pattern (Table 3, Figs 6/7)",
      R"PL(
mkvlist(0, []) :- !.
mkvlist(N, [M|T]) :- M is 40 + N mod 23, N1 is N - 1, mkvlist(N1, T).
fib_iter(0, A, _, A) :- !.
fib_iter(N, A, B, F) :- N1 is N - 1, C is A + B, fib_iter(N1, B, C, F).
compute(V, R) :- W is V * 6, fib_iter(W, 0, 1, R).
members(N, V, R) :- mkvlist(N, L), member(V, L), compute(V, R0),
    R is R0 mod 1000000007.
)PL",
      "members(120, V, R).",
      "members(8, V, R).",
      false,
      true,
  });

  // maps — map colouring: Table 3.
  w.push_back({
      "maps",
      "map colouring of a 10-region map (Table 3)",
      R"PL(
color(red). color(green). color(blue). color(yellow).
maps([A, B, C, D, E, F, G, H, I, J]) :-
    color(A), color(B), B \== A,
    color(C), C \== A, C \== B,
    color(D), D \== A, D \== C,
    color(E), E \== B, E \== C, E \== D,
    color(F), F \== A, F \== D,
    color(G), G \== D, G \== E, G \== F,
    color(H), H \== B, H \== E, H \== G,
    color(I), I \== F, I \== G, I \== H,
    color(J), J \== G, J \== H, J \== I.
)PL",
      "maps(Cs).",
      "maps(Cs).",
      false,
      true,
  });

  return w;
}

}  // namespace

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> w = make_workloads();
  return w;
}

const Workload& workload(const std::string& name) {
  for (const Workload& w : workloads()) {
    if (w.name == name) return w;
  }
  // The graph/tabling family lives in its own registry so the paper corpus
  // (and the benches iterating it) keeps its shape; resolve it by name here
  // so ace_run/ace_serve --workload address both.
  for (const Workload& w : graph_workloads()) {
    if (w.name == name) return w;
  }
  throw AceError("unknown workload: " + name);
}

}  // namespace ace
