#include "workloads/harness.hpp"

#include "builtins/lib.hpp"

namespace ace {

RunOutcome run_workload(const Workload& w, const RunConfig& cfg,
                        const std::string& query) {
  Database db;
  load_library(db);
  db.consult(w.source);
  const std::string& q = query.empty() ? w.query : query;
  const CostModel costs =
      cfg.costs != nullptr ? *cfg.costs : CostModel::standard();

  std::size_t max_solutions = cfg.max_solutions;
  if (max_solutions == SIZE_MAX && !w.all_solutions) max_solutions = 1;

  SolveResult r;
  switch (cfg.engine) {
    case EngineKind::Seq: {
      WorkerOptions wopts;
      wopts.resolution_limit = cfg.resolution_limit;
      SeqEngine eng(db, wopts, costs);
      r = eng.solve(q, max_solutions);
      break;
    }
    case EngineKind::Andp: {
      AndpOptions opts;
      opts.agents = cfg.agents;
      opts.lpco = cfg.lpco;
      opts.shallow = cfg.shallow;
      opts.pdo = cfg.pdo;
      opts.use_threads = cfg.use_threads;
      opts.resolution_limit = cfg.resolution_limit;
      AndpMachine m(db, opts, costs);
      r = m.solve(q, max_solutions);
      break;
    }
    case EngineKind::Orp: {
      OrpOptions opts;
      opts.agents = cfg.agents;
      opts.lao = cfg.lao;
      opts.resolution_limit = cfg.resolution_limit;
      OrpMachine m(db, opts, costs);
      r = m.solve(q, max_solutions);
      break;
    }
  }

  RunOutcome out;
  out.virtual_time = r.virtual_time;
  out.num_solutions = r.solutions.size();
  out.solutions = std::move(r.solutions);
  out.stats = r.stats;
  return out;
}

RunOutcome run_small(const std::string& workload_name, const RunConfig& cfg) {
  const Workload& w = workload(workload_name);
  return run_workload(w, cfg, w.small_query);
}

}  // namespace ace
