#include "workloads/harness.hpp"

#include "builtins/lib.hpp"
#include "db/database.hpp"

namespace ace {

RunOutcome run_workload(const Workload& w, const RunConfig& cfg,
                        const std::string& query) {
  Database db;
  load_library(db);
  db.consult(w.source);
  const std::string& q = query.empty() ? w.query : query;
  const CostModel costs =
      cfg.costs != nullptr ? *cfg.costs : CostModel::standard();

  std::size_t max_solutions = cfg.max_solutions;
  if (max_solutions == SIZE_MAX && !w.all_solutions) max_solutions = 1;

  // One facade for all three engines (PR 2): the session normalizes the
  // config (Seq forces one agent) and keeps arenas warm across solves,
  // though this harness runs one query per database anyway.
  Engine eng(db, cfg.engine_config(), costs);
  SolveResult r = eng.solve(q, max_solutions);

  RunOutcome out;
  out.virtual_time = r.virtual_time;
  out.num_solutions = r.solutions.size();
  out.solutions = std::move(r.solutions);
  out.stats = r.stats;
  out.attrib = r.attrib;
  out.agent_clocks = r.agent_clocks;
  out.savings = r.savings;
  return out;
}

RunOutcome run_small(const std::string& workload_name, const RunConfig& cfg) {
  const Workload& w = workload(workload_name);
  return run_workload(w, cfg, w.small_query);
}

}  // namespace ace
