// TableSpace: the cross-query answer cache of the SLG tabling subsystem.
//
// Tabled evaluation (see src/tab/eval.hpp and docs/tabling.md) proves
// subgoals *complete*: the answer set of a completed subgoal is final with
// respect to the clause database it was derived from, and — because
// answers are stored as store-independent TermTemplates keyed by the
// subgoal's canonical (variant) form — valid in any store, any worker,
// and any later query. A TableSpace holds exactly those completed tables.
//
// Sharing & lifetime. One TableSpace is shared by every EngineSession of
// a QueryService pool (and kept per-Engine on the CLI path), so a table
// completed by one query serves all subsequent queries: the memo table
// becomes a serving-scale cache. Entries are immutable CompletedTable
// objects handed out by shared_ptr; a session pins the tables it reads
// for the duration of its query, so invalidation can drop an entry from
// the space while readers finish on their pinned snapshot (the same
// logical-update view assert/retract already give untabled queries).
//
// Invalidation. Every completed table records the predicates its answers
// were derived from, with the Database generation observed during the
// derivation. The space registers a change hook with the Database (fired
// from assert/retract, exactly where StaticFacts are already discarded)
// and drops every table depending on the mutated predicate — the
// explicit-invalidation contract the serving layer's Prometheus
// ace_table_* counters report on. Hooks are dispatched *after* the
// database releases its writer lock (see docs/database.md), so
// publication re-verifies each dep generation after insert and
// self-invalidates on mismatch (engine/tabling.cpp's double-check).
//
// Locking. All methods take the space's own mutex only; the space never
// calls back into the Database. Callers may hold database read snapshots
// or the writer lock when calling in (db -> space order); the change hook
// runs outside the writer lock. The counters are relaxed atomics so the
// metrics snapshot never contends with queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tab/dep.hpp"
#include "term/build.hpp"

namespace ace {

class Database;

namespace tab {

// An immutable completed table: the full answer set of one canonical
// subgoal. Answers are templates of the *subgoal term itself* with the
// answer substitution applied (consuming = instantiate + unify with the
// call), so they carry everything a variant call needs.
struct CompletedTable {
  std::string key;  // canonical subgoal (term/canon.hpp)
  std::uint32_t sym = 0;
  unsigned arity = 0;
  std::vector<TermTemplate> answers;
  std::vector<TableDep> deps;
};

class TableSpace {
 public:
  // When `db` is non-null the space registers a change hook and
  // invalidates affected tables on every assert/retract; the hook is
  // removed on destruction. The space must not outlive the database.
  explicit TableSpace(Database* db = nullptr);
  ~TableSpace();

  TableSpace(const TableSpace&) = delete;
  TableSpace& operator=(const TableSpace&) = delete;

  // Completed-table lookup by canonical subgoal key. Counts a hit or a
  // miss; returns null on miss.
  std::shared_ptr<const CompletedTable> lookup(const std::string& key);

  // Installs a completed table (replacing any previous entry for the same
  // key — the newer derivation saw a newer database state).
  void insert(std::shared_ptr<const CompletedTable> table);

  // Drops every table whose deps include sym/arity. Called by the
  // database change hook; also usable directly by tests.
  void invalidate_pred(std::uint32_t sym, unsigned arity);

  // Drops everything (tests / explicit cache reset).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t invalidations = 0;  // tables dropped by pred changes
    std::uint64_t entries = 0;        // current table count (gauge)
    std::uint64_t bytes = 0;          // approx. resident bytes (gauge)
  };
  Stats stats() const;

  // Approximate resident size of one completed table (key + answer cells
  // + variable names + deps). A sizing gauge, not an allocator audit.
  static std::uint64_t approx_bytes(const CompletedTable& t);

 private:
  Database* db_ = nullptr;
  std::uint64_t hook_id_ = 0;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CompletedTable>>
      tables_;
  // Reverse dependency index: pred -> keys of tables derived from it.
  std::unordered_map<std::uint64_t, std::vector<std::string>> by_dep_;
  std::uint64_t bytes_ = 0;  // Σ approx_bytes over tables_; guarded by mu_

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace tab
}  // namespace ace
