// Worker-local tabling state: the in-progress ("local") tables and the
// generator stack of one agent's SLG evaluation.
//
// Evaluation strategy. The engines run *recomputation-based local
// evaluation* (in the spirit of DRA / linear tabling): the first call to a
// tabled subgoal becomes its **generator** — it runs the predicate's
// clauses and records every answer into a LocalTable. A later variant call
// found while the generator is still on the stack is a **consumer**: it
// backtracks through the answers recorded so far and then fails (a
// "suspension" in SLG terms). When the generator's clauses are exhausted,
// the leader of the strongly-connected component checks whether any table
// in the SCC gained answers during the pass; if so it re-runs the clauses
// (charged as table_resume) until a pass adds nothing — the fixpoint — at
// which point every table in the SCC is *complete*. Re-running clauses
// trades stack-freezing machinery (the CAT/SLG-WAM consumer stacks) for
// the choice-point rollback the engine already has; the cost shows up
// honestly in virtual time as kTableResume.
//
// SCC tracking is Tarjan-style: each generator gets a depth-first number
// (dfn) and maintains a low-link; a consumer call from inside generator G
// to an active table T lowers G.low to T's generator dfn. A generator
// whose low == dfn is a leader; its SCC is exactly the incomplete tables
// with dfn >= its own (generators stack in dfn order).
//
// Or-parallel fusion. Local (incomplete) tables never cross workers: a
// worker with a live generator is skipped as a sharing victim, so
// everything below a public node stays generator-free and MUSE's "all
// alternatives at or below a public node" invariant holds. *Completed*
// tables do cross workers — a completed-consumer choice point (AltKind::
// TabAnswers with tab_done set) is shareable like a clause node, and its
// remaining answer indices can be taken by thieves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "tab/table_space.hpp"
#include "term/cell.hpp"

namespace ace {
namespace tab {

// One subgoal's answer accumulation while its generator is (or was) live
// on this worker. Indexed by Worker-side key map; answers move into an
// immutable CompletedTable at SCC completion.
struct LocalTable {
  std::string key;  // canonical subgoal
  std::uint32_t sym = 0;
  unsigned arity = 0;

  std::vector<TermTemplate> answers;
  std::unordered_set<std::string> answer_keys;  // dedup by canonical form

  // Worker epoch (monotone answer-insert counter) of the last insert into
  // this table; the leader's fixpoint test compares it against the epoch
  // at the start of the current pass.
  std::uint64_t last_insert_epoch = 0;

  bool active = false;    // a generator for this table is on the stack
  bool complete = false;  // answer set proven final

  // dfn of this table's (current or most recent) generator.
  std::uint32_t dfn = 0;

  // Set at completion; pinned for the rest of the query so answer
  // consumption (including by or-parallel thieves holding shared
  // TabAnswers nodes) survives TableSpace invalidation.
  std::shared_ptr<const CompletedTable> done;

  // Predicates consulted while producing these answers, at the database
  // generation observed at call time. Used both for TableSpace
  // publication (generation re-check) and invalidation indexing.
  std::vector<TableDep> deps;
  std::unordered_set<std::uint64_t> dep_set;

  void add_dep(std::uint32_t dsym, unsigned darity, std::uint64_t gen) {
    const std::uint64_t k = (std::uint64_t{dsym} << 32) | darity;
    if (dep_set.insert(k).second) {
      deps.push_back(TableDep{dsym, darity, gen});
    }
  }
};

// One live generator on a worker's generator stack. GenFrames correspond
// 1:1, in order, with the worker's nested contexts of kind TabGen; the
// fixpoint driver lives in the worker (solve.cpp), these are its state.
struct GenFrame {
  std::uint32_t table_idx = 0;  // into the worker's local table list
  std::uint32_t dfn = 0;        // Tarjan depth-first number
  std::uint32_t low = 0;        // Tarjan low-link
  // Worker answer-epoch at the start of the current clause pass; a pass
  // that ends with any SCC table's last_insert_epoch above this must be
  // re-run.
  std::uint64_t pass_epoch = 0;
  std::uint32_t passes = 0;  // completed clause passes (first pass = 1)

  Addr goal = 0;     // the original call term (survives pass rollback)
  Addr wrapper = 0;  // '$tab_gen'(gen_index) — the re-runnable goal
  std::uint32_t sym = 0;
  unsigned arity = 0;
};

}  // namespace tab
}  // namespace ace
