// Dependency records shared by the answer caches.
//
// Both cross-query caches — the tabling TableSpace (src/tab) and the
// serving-layer ResultCache (src/serve) — remember which predicates an
// entry was derived from, at the Database generation observed during the
// derivation. The record powers two mechanisms:
//
//   * precise invalidation: the Database change hook maps a mutated
//     (sym, arity) to the entries derived from it via a reverse index
//     keyed by dep_key();
//   * staleness double-checks: publication (and, for the result cache,
//     every hit) re-verifies the recorded generations against the live
//     database, closing the window between a writer's publication and
//     its hook dispatch (engine/tabling.cpp's double-check pattern).
//
// Lives in its own header so engine/result.hpp can carry dep lists
// without pulling in the whole table-space machinery.
#pragma once

#include <cstdint>

namespace ace {
namespace tab {

// One predicate an entry's answers were derived from, at the Database
// generation observed during derivation.
struct TableDep {
  std::uint32_t sym = 0;
  unsigned arity = 0;
  std::uint64_t gen = 0;
};

// Generation recorded for a predicate that was *consulted but undefined*
// when the entry was derived (e.g. observed through catch/3). Any later
// definition publishes a real generation and mismatches this marker.
inline constexpr std::uint64_t kDepUndefined = ~std::uint64_t{0};

// Reverse-index key for a predicate.
inline constexpr std::uint64_t dep_key(std::uint32_t sym, unsigned arity) {
  return (std::uint64_t{sym} << 32) | arity;
}

}  // namespace tab
}  // namespace ace
