#include "tab/table_space.hpp"

#include <algorithm>

#include "db/database.hpp"

namespace ace {
namespace tab {

TableSpace::TableSpace(Database* db) : db_(db) {
  if (db_ != nullptr) {
    hook_id_ = db_->add_change_hook(
        [this](std::uint32_t sym, unsigned arity) {
          invalidate_pred(sym, arity);
        });
  }
}

TableSpace::~TableSpace() {
  if (db_ != nullptr) db_->remove_change_hook(hook_id_);
}

std::shared_ptr<const CompletedTable> TableSpace::lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::uint64_t TableSpace::approx_bytes(const CompletedTable& t) {
  std::uint64_t n = sizeof(CompletedTable) + t.key.size();
  for (const TermTemplate& a : t.answers) {
    n += sizeof(TermTemplate) + a.cells.size() * sizeof(Cell);
    for (const std::string& v : a.var_names) n += v.size();
  }
  n += t.deps.size() * sizeof(TableDep);
  return n;
}

void TableSpace::insert(std::shared_ptr<const CompletedTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TableDep& d : table->deps) {
    auto& keys = by_dep_[dep_key(d.sym, d.arity)];
    if (std::find(keys.begin(), keys.end(), table->key) == keys.end()) {
      keys.push_back(table->key);
    }
  }
  // Same-key insert replaces the older derivation: drop its bytes first.
  auto prev = tables_.find(table->key);
  if (prev != tables_.end()) bytes_ -= approx_bytes(*prev->second);
  bytes_ += approx_bytes(*table);
  tables_[table->key] = std::move(table);
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void TableSpace::invalidate_pred(std::uint32_t sym, unsigned arity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_dep_.find(dep_key(sym, arity));
  if (it == by_dep_.end()) return;
  std::uint64_t dropped = 0;
  for (const std::string& key : it->second) {
    auto entry = tables_.find(key);
    if (entry == tables_.end()) continue;
    bytes_ -= approx_bytes(*entry->second);
    tables_.erase(entry);
    ++dropped;
  }
  by_dep_.erase(it);
  // Stale keys may remain in other predicates' reverse lists; erase() of a
  // missing key above is a no-op, so they are harmless and die with their
  // own predicate's next invalidation.
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

void TableSpace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();
  by_dep_.clear();
  bytes_ = 0;
}

TableSpace::Stats TableSpace::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.entries = tables_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace tab
}  // namespace ace
