// ace::Engine facade implementation, plus the EngineConfig identity
// helpers (engine_mode_name / describe) shared by the serving layer and
// the CLI tools.
#include "engine/engine.hpp"

#include <chrono>

#include "db/database.hpp"
#include "serve/session.hpp"
#include "support/strutil.hpp"

namespace ace {

const char* engine_mode_name(EngineMode m) {
  switch (m) {
    case EngineMode::Seq:
      return "seq";
    case EngineMode::Andp:
      return "andp";
    case EngineMode::Orp:
      return "orp";
  }
  return "?";
}

std::string EngineConfig::describe() const {
  std::string out = strf("%s x%u", engine_mode_name(mode), agents);
  std::string flags;
  if (lpco) flags += "+lpco";
  if (shallow) flags += "+shallow";
  if (pdo) flags += "+pdo";
  if (lao) flags += "+lao";
  if (occurs_check) flags += "+occ";
  if (!tabling) flags += "+notab";
  if (static_facts) flags += "+sfacts";
  if (attrib) flags += "+attrib";
  if (use_threads) flags += "+threads";
  if (resolution_limit != 0) {
    flags += strf("+limit=%llu", (unsigned long long)resolution_limit);
  }
  if (!flags.empty()) out += " " + flags;
  return out;
}

Engine::Engine(Database& db, EngineConfig cfg, const CostModel& costs)
    : cfg_(cfg), builtins_(db.syms()) {
  session_ = std::make_unique<EngineSession>(db, builtins_, cfg_, costs);
  cfg_ = session_->config();  // session normalizes (e.g. Seq forces 1 agent)
}

Engine::~Engine() = default;

SolveResult Engine::solve(const std::string& query_text,
                          std::size_t max_solutions) {
  QueryBudget budget;
  budget.max_solutions = max_solutions;
  return session_->run(query_text, budget, nullptr, next_qid_++);
}

QueryResult Engine::query(const std::string& query_text,
                          const QueryBudget& budget) {
  QueryResult r;
  r.id = next_qid_++;
  r.query = query_text;
  auto t0 = std::chrono::steady_clock::now();
  try {
    r.absorb(session_->run(query_text, budget, nullptr, r.id));
    r.engine_reused = session_->queries_run() > 1;
  } catch (const QueryStopped& stopped) {
    // Only ResolutionLimit escapes run(); surface it as an error result
    // instead of throwing across the wire-facing API.
    r.outcome = QueryOutcome::Error;
    r.error = stopped.what();
  } catch (const AceError& err) {
    r.outcome = QueryOutcome::Error;
    r.error = err.what();
  }
  r.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
  return r;
}

std::uint64_t Engine::queries_run() const { return session_->queries_run(); }

CancelToken& Engine::token() { return session_->token(); }

void Engine::set_tracer(Tracer* tracer) { session_->set_tracer(tracer); }

void Engine::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  session_->set_recorder(recorder);
}

}  // namespace ace
