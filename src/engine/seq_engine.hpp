// SeqEngine: the sequential baseline engine (the paper's "state-of-the-art
// purely sequential system" stand-in that parallel overhead is measured
// against).
//
// Usage:
//   Database db;
//   load_library(db);
//   db.consult("p(1). p(2).");
//   SeqEngine eng(db);
//   auto solutions = eng.solve("p(X).");   // {"X = 1", "X = 2"}
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/worker.hpp"

namespace ace {

struct SolveResult {
  std::vector<std::string> solutions;  // "X = 1, Y = f(Z)" per solution
  std::uint64_t virtual_time = 0;
  Counters stats;           // aggregated over all agents
  std::vector<Counters> per_agent;  // one entry per agent (parallel engines)
  std::vector<std::uint64_t> agent_clocks;
  std::string output;  // text written by write/1
  // Why the run ended early (None = ran to completion / solution cap).
  // Cancelled and Deadline stops still return the solutions found so far.
  StopCause stop = StopCause::None;
};

// Renders a per-agent breakdown table (work distribution, steals, idle
// time, markers) for a parallel run.
std::string per_agent_report(const SolveResult& result);

class SeqEngine {
 public:
  explicit SeqEngine(Database& db, WorkerOptions opts = {},
                     const CostModel& costs = CostModel::standard());

  // Runs `query_text` (a '.'-terminated goal), collecting up to
  // `max_solutions` solutions. Each call resets the engine state.
  SolveResult solve(const std::string& query_text,
                    std::size_t max_solutions = SIZE_MAX);

  // Convenience: true if the query has at least one solution.
  bool succeeds(const std::string& query_text) {
    return !solve(query_text, 1).solutions.empty();
  }

 private:
  Database& db_;
  WorkerOptions opts_;
  CostModel costs_;
  Builtins builtins_;
};

}  // namespace ace
