// SeqEngine: the sequential baseline engine (the paper's "state-of-the-art
// purely sequential system" stand-in that parallel overhead is measured
// against).
//
// DEPRECATED (PR 2): thin wrapper kept for one PR. New code constructs
// ace::Engine with EngineMode::Seq (engine/engine.hpp); SolveResult and
// per_agent_report live in engine/result.hpp.
//
// Usage:
//   Database db;
//   load_library(db);
//   db.consult("p(1). p(2).");
//   SeqEngine eng(db);
//   auto solutions = eng.solve("p(X).");   // {"X = 1", "X = 2"}
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/result.hpp"
#include "engine/worker.hpp"

namespace ace {

class SeqEngine {
 public:
  explicit SeqEngine(Database& db, WorkerOptions opts = {},
                     const CostModel& costs = CostModel::standard());

  // Runs `query_text` (a '.'-terminated goal), collecting up to
  // `max_solutions` solutions. Each call resets the engine state.
  SolveResult solve(const std::string& query_text,
                    std::size_t max_solutions = SIZE_MAX);

  // Convenience: true if the query has at least one solution.
  bool succeeds(const std::string& query_text) {
    return !solve(query_text, 1).solutions.empty();
  }

 private:
  Database& db_;
  WorkerOptions opts_;
  CostModel costs_;
  Builtins builtins_;
};

}  // namespace ace
