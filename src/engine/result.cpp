#include "engine/result.hpp"

#include "support/strutil.hpp"

namespace ace {

const char* query_outcome_name(QueryOutcome o) {
  switch (o) {
    case QueryOutcome::Success:
      return "success";
    case QueryOutcome::Fail:
      return "fail";
    case QueryOutcome::Cancelled:
      return "cancelled";
    case QueryOutcome::DeadlineExpired:
      return "deadline_expired";
    case QueryOutcome::Overload:
      return "overload";
    case QueryOutcome::Error:
      return "error";
  }
  return "?";
}

void QueryResult::absorb(SolveResult&& r) {
  switch (r.stop) {
    case StopCause::None:
      outcome = r.solutions.empty() ? QueryOutcome::Fail
                                    : QueryOutcome::Success;
      break;
    case StopCause::Cancelled:
      outcome = QueryOutcome::Cancelled;
      break;
    case StopCause::Deadline:
      outcome = QueryOutcome::DeadlineExpired;
      break;
    case StopCause::ResolutionLimit:
      // EngineSession::run rethrows this cause; defensive mapping only.
      outcome = QueryOutcome::Error;
      error = "resolution limit exceeded";
      break;
  }
  solutions = std::move(r.solutions);
  output = std::move(r.output);
  stats = r.stats;
  virtual_time = r.virtual_time;
  attrib = r.attrib;
  savings = r.savings;
}

std::string QueryResult::to_json(bool include_stats,
                                 bool include_solutions) const {
  std::string out = strf("{\"v\":%d,\"id\":%llu,\"outcome\":\"%s\"",
                         kVersion, (unsigned long long)id,
                         query_outcome_name(outcome));
  if (!query.empty()) {
    out += strf(",\"query\":\"%s\"", json_escape(query).c_str());
  }
  out += strf(",\"sols\":%zu", solutions.size());
  if (include_solutions) {
    out += ",\"solutions\":[";
    for (std::size_t i = 0; i < solutions.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + json_escape(solutions[i]) + "\"";
    }
    out += "]";
  }
  if (!output.empty()) {
    out += strf(",\"output\":\"%s\"", json_escape(output).c_str());
  }
  if (!error.empty()) {
    out += strf(",\"error\":\"%s\"", json_escape(error).c_str());
  }
  out += strf(",\"reused\":%s", engine_reused ? "true" : "false");
  // Only cached responses carry the field: the uncached wire shape stays
  // byte-compatible with pre-cache v2 consumers.
  if (cache_hit) out += ",\"cache_hit\":true";
  out += strf(",\"queue_us\":%lld,\"latency_us\":%lld",
              (long long)queue_wait.count(), (long long)latency.count());
  if (phases.present) {
    out += strf(
        ",\"phases\":{\"queue_ns\":%llu,\"acquire_ns\":%llu,"
        "\"parse_ns\":%llu,\"run_ns\":%llu,\"render_ns\":%llu,"
        "\"total_ns\":%llu}",
        (unsigned long long)phases.queue_ns,
        (unsigned long long)phases.acquire_ns,
        (unsigned long long)phases.parse_ns,
        (unsigned long long)phases.run_ns,
        (unsigned long long)phases.render_ns,
        (unsigned long long)phases.total_ns());
  }
  if (trace_id != 0) {
    out += strf(",\"trace\":%llu", (unsigned long long)trace_id);
  }
  if (include_stats) {
    out += ",\"stats\":" + stats.to_json();
    out += strf(",\"vt\":%llu", (unsigned long long)virtual_time);
    out += ",\"attrib\":" + attrib.to_json();
    if (savings.total() > 0) {
      out += ",\"schema_savings\":" + savings.to_json();
    }
  }
  out += "}";
  return out;
}

}  // namespace ace
