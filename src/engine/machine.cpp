#include <algorithm>

#include "engine/worker.hpp"
#include "obs/recorder.hpp"
#include "support/strutil.hpp"

namespace ace {

// Cold path of Worker::trace(): at least one sink is attached. The obs
// EventKind vocabulary mirrors TraceEvent exactly for the engine-level
// events (static_asserted in obs/events.hpp), so the conversion is a cast.
void Worker::trace_slow(TraceEvent ev, std::uint64_t a, std::uint64_t b) {
  if (tracer_ != nullptr) tracer_->record(clock_, agent_, ev, a, b);
  if (obs_ != nullptr) obs_->note(static_cast<obs::EventKind>(ev), a, b);
}

Worker::Worker(unsigned agent, Store& store, Database& db, const Builtins& bi,
               const CostModel& costs, WorkerOptions opts, IoSink& io)
    : agent_(agent),
      seg_(agent),
      store_(store),
      db_(db),
      syms_(db.syms()),
      builtins_(bi),
      costs_(costs),
      opts_(opts),
      io_(io) {
  attrib_reset();
}

namespace {
// Map key for a predicate's attribution row; kEnginePred collects charges
// made before any user dispatch (query setup, scheduling on worker agents).
constexpr std::uint64_t kEnginePredKey = ~0ull;
std::uint64_t pred_key(std::uint32_t sym, unsigned arity) {
  return (static_cast<std::uint64_t>(sym) << 32) | arity;
}
}  // namespace

void Worker::attrib_reset() {
  pred_attrib_.clear();
  cur_pred_attrib_ =
      opts_.attrib ? &pred_attrib_[kEnginePredKey] : nullptr;
}

void Worker::attrib_set_pred(std::uint32_t sym, unsigned arity) {
  // unordered_map values are node-based: the cached pointer stays valid
  // across later insertions.
  cur_pred_attrib_ = &pred_attrib_[pred_key(sym, arity)];
}

std::vector<PredAttrib> Worker::pred_attrib_rows() const {
  std::vector<PredAttrib> rows;
  rows.reserve(pred_attrib_.size());
  for (const auto& [key, a] : pred_attrib_) {
    if (a.total() == 0) continue;
    PredAttrib row;
    if (key == kEnginePredKey) {
      row.pred = "<engine>";
    } else {
      row.pred = strf("%s/%u", syms_.name(static_cast<std::uint32_t>(key >> 32)).c_str(),
                      static_cast<unsigned>(key & 0xffffffffu));
    }
    row.a = a;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const PredAttrib& x, const PredAttrib& y) {
    std::uint64_t tx = x.a.total(), ty = y.a.total();
    if (tx != ty) return tx > ty;
    return x.pred < y.pred;
  });
  return rows;
}

void Worker::load_query(const TermTemplate& query) {
  query_ = &query;
  Addr root = instantiate(store_, seg(), query, &query_vars_);
  stats_.heap_cells += query.instantiation_cost();
  charge(CostCat::kUserWork, query.instantiation_cost() * costs_.heap_cell);
  glist_ = push_goal(root, kNoRef, kNoRef);
  bt_ = kNoRef;
  cur_pf_ = kNoPf;
  mode_ = Mode::Run;
}

Ref Worker::push_goal(Addr goal, Ref next, Ref cut_parent) {
  GoalNode node;
  node.goal = goal;
  node.next = next;
  node.cut_parent = cut_parent;
  std::uint64_t idx = garena_.push_back(node);
  ++stats_.goal_nodes;
  charge(CostCat::kUserWork, costs_.goal_node);
  return make_ref(agent_, idx);
}

bool Worker::unify_charge(Addr a, Addr b) {
  std::uint64_t steps = 0;
  std::uint64_t mark = trail_.size();
  bool ok = unify(store_, trail_, a, b, &steps, opts_.occurs_check);
  stats_.unify_steps += steps;
  charge(CostCat::kUnify, steps * costs_.unify_step);
  if (ok) {
    std::uint64_t added = trail_.size() - mark;
    stats_.trail_entries += added;
    charge(CostCat::kUnify, added * costs_.trail_entry);
  } else {
    untrail_charge(mark, CostCat::kUnify);
  }
  return ok;
}

void Worker::untrail_charge(std::uint64_t mark, CostCat cat) {
  std::uint64_t undone = trail_.size() - mark;
  untrail(store_, trail_, mark);
  stats_.untrail_ops += undone;
  charge(cat, undone * costs_.untrail_entry);
}

void Worker::note_ctrl_alloc(std::uint64_t words) {
  stats_.ctrl_words += words;
  stats_.ctrl_words_hw = std::max(stats_.ctrl_words_hw, stats_.ctrl_words);
}

void Worker::note_ctrl_free(std::uint64_t words) {
  stats_.ctrl_words = words > stats_.ctrl_words ? 0 : stats_.ctrl_words - words;
}

StepOutcome Worker::step() {
  // Cooperative stop: the shared token is the one protocol by which the
  // serving layer halts a query — and-parallel teammates, or-parallel
  // agents, and the sequential engine all observe it here and unwind by
  // exception; the owning session then resets every arena wholesale, which
  // releases all stack sections at once.
  if (mode_ != Mode::Done) poll_cancellation();
  // Per-step snapshot refresh: the step boundary is the safe point (no
  // PredIndex reference survives across it), so this is where the worker
  // re-announces its epoch and picks up concurrently published clause-set
  // versions — the per-query/per-step granularity that replaces the old
  // per-lookup read lock.
  snap_ensure();
  switch (mode_) {
    case Mode::Run:
      if (par_ != nullptr && check_cancellation()) break;
      run_step();
      break;
    case Mode::Backtrack:
      if (par_ != nullptr && check_cancellation()) break;
      backtrack_step();
      break;
    case Mode::FailWait:
      fail_wait_step();
      break;
    case Mode::ReentryWait:
      reentry_wait_step();
      break;
    case Mode::Idle:
      if (par_ != nullptr) {
        idle_step();
      } else if (orp_ != nullptr) {
        orp_idle_step();
      } else {
        return StepOutcome::Exhausted;  // sequential worker with no query
      }
      break;
    case Mode::SolutionPause:
      return StepOutcome::Solution;
    case Mode::Done:
      return StepOutcome::Exhausted;
  }
  switch (mode_) {
    case Mode::SolutionPause:
      return StepOutcome::Solution;
    case Mode::Done:
      return StepOutcome::Exhausted;
    case Mode::Idle:
      return StepOutcome::Idle;
    default:
      return StepOutcome::Progress;
  }
}

void Worker::request_next_solution() {
  ACE_CHECK(mode_ == Mode::SolutionPause);
  mode_ = Mode::Backtrack;
}

std::string Worker::solution_string() const {
  ACE_CHECK(query_ != nullptr);
  std::unordered_map<Addr, std::string> names;
  for (std::size_t i = 0; i < query_vars_.size(); ++i) {
    names.emplace(query_vars_[i], query_->var_names[i]);
  }
  PrintOpts opts;
  opts.var_names = &names;
  std::vector<std::string> parts;
  for (std::size_t i = 0; i < query_vars_.size(); ++i) {
    const std::string& name = query_->var_names[i];
    if (name == "_" || starts_with(name, "_")) continue;
    if (is_unbound(store_, deref(store_, query_vars_[i]))) continue;
    parts.push_back(
        name + " = " + term_to_string(store_, syms_, query_vars_[i], opts));
  }
  if (parts.empty()) return "true";
  return join(parts, ", ");
}

void Worker::reset_for_reuse() {
  // Truncate (never deallocate) every arena: ChunkedVector keeps its chunk
  // tables and allocated chunks across truncate(0), so a pooled engine's
  // next query runs entirely in warm memory.
  trail_.truncate(0);
  ctrl_.truncate(0);
  garena_.truncate(0);
  store_.truncate(seg_, 0);
  glist_ = kNoRef;
  bt_ = kNoRef;
  cur_pf_ = kNoPf;
  cur_slot_ = 0;
  pending_end_pf_ = kNoPf;
  pending_end_slot_ = 0;
  failing_pf_ = kNoPf;
  reentry_pf_ = kNoPf;
  last_done_pf_ = kNoPf;
  last_done_slot_ = 0;
  last_done_adjacent_ = false;
  waiting_pfs_.clear();
  nested_.clear();
  tab_tables_.clear();
  tab_local_ix_.clear();
  tab_done_.clear();  // releases this query's completed-table pins
  tab_gens_.clear();
  tab_epoch_ = 0;
  tab_next_dfn_ = 0;
  deps_track_.reset();
  deps_on_ = false;
  clock_ = 0;
  stats_ = Counters{};
  attrib_.clear();
  attrib_reset();
  query_ = nullptr;
  query_vars_.clear();
  private_cps_ = 0;
  last_copy_victim_ = ~0u;
  last_copy_ctrl_ = 0;
  last_copy_garena_ = 0;
  last_copy_trail_ = 0;
  last_copy_heap_ = 0;
  cancel_poll_stride_ = 0;
  mode_ = Mode::Idle;
  // Unpin between queries: a parked pooled worker must not hold an old
  // epoch open (that would stall reclamation for every writer on this db).
  snap_.reset();
}

Slot& Worker::cur_slot_ref() {
  ACE_CHECK(cur_pf_ != kNoPf);
  return parcall(cur_pf_).slots[cur_slot_];
}

void Worker::open_new_part(Slot& slot) {
  SectionPart part;
  part.agent = agent_;
  part.trail_lo = part.trail_hi = trail_.size();
  part.ctrl_lo = part.ctrl_hi = static_cast<std::uint32_t>(ctrl_.size());
  part.garena_lo = part.garena_hi = garena_.size();
  part.heap_lo = part.heap_hi = heap_size();
  part.open = true;
  slot.parts.push_back(part);
}

void Worker::close_current_part() {
  Slot& slot = cur_slot_ref();
  ACE_CHECK(!slot.parts.empty());
  SectionPart& part = slot.parts.back();
  ACE_CHECK(part.open && part.agent == agent_);
  part.trail_hi = trail_.size();
  part.ctrl_hi = static_cast<std::uint32_t>(ctrl_.size());
  part.garena_hi = garena_.size();
  part.heap_hi = heap_size();
  part.open = false;
}

}  // namespace ace
