// ace::Engine — the one engine facade.
//
// One class constructed from an EngineConfig replaces the three historical
// facades (SeqEngine / AndpMachine / OrpMachine, removed in the database
// API redesign PR). An Engine owns a pre-warmed EngineSession, so
// repeated queries on the same Engine run in warm arenas exactly like
// pooled serving-layer sessions — the old facades rebuilt stores and
// workers on every solve().
//
//   Database db;
//   load_library(db);
//   db.consult("p(X,Y) :- q(X) & r(Y).");
//   EngineConfig cfg{.mode = EngineMode::Andp, .agents = 4,
//                    .lpco = true, .shallow = true, .pdo = true};
//   Engine eng(db, cfg);
//   SolveResult r = eng.solve("p(A,B).");          // engine-internal form
//   QueryResult  q = eng.query("p(A,B).");         // wire-facing form (v2)
//
// Observability: attach an obs::Recorder (set_recorder) for real-thread
// tracing with per-query spans, or a sim Tracer (set_tracer) for
// virtual-time recording; both cost one predicted branch per event site
// when absent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "builtins/builtins.hpp"
#include "db/database.hpp"
#include "engine/result.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace ace {

namespace obs {
class Recorder;
}

class CancelToken;
class EngineSession;

enum class EngineMode : std::uint8_t { Seq, Andp, Orp };

const char* engine_mode_name(EngineMode m);

// The identity of an engine: two requests may share a pooled session iff
// their configs compare equal.
struct EngineConfig {
  EngineMode mode = EngineMode::Seq;
  unsigned agents = 1;  // forced to 1 for Seq
  bool lpco = false;
  bool shallow = false;
  bool pdo = false;
  bool lao = false;
  bool occurs_check = false;
  // SLG tabling (src/tab/): honor `:- table p/N.` directives and reuse
  // completed memo tables across queries. On by default — a program with
  // no table directives runs bit-identically either way, so the flag only
  // matters as an explicit kill switch (--no-table).
  bool tabling = true;
  // Consult load-time StaticFacts at the LPCO/SHALLOW/PDO/LAO trigger
  // sites: statically proven checks skip the charged opt_check and count
  // as Counters::static_elisions instead. Never changes control flow or
  // solutions — off by default so runs stay bit-identical.
  bool static_facts = false;
  // Per-predicate attribution rows in SolveResult (hash-map upkeep per
  // charge). Per-category attribution is always collected — it never
  // changes virtual times, so this flag only controls the extra detail.
  bool attrib = false;
  bool use_threads = false;            // Andp only: real std::thread driver
  std::uint64_t resolution_limit = 0;  // default per-query budget (0 = none)

  bool operator==(const EngineConfig&) const = default;

  // Human-readable identity, e.g. "andp x4 +lpco+shallow+pdo".
  std::string describe() const;
};

// Per-query execution budget.
struct QueryBudget {
  // Wall-clock budget measured from run() entry; zero means none.
  std::chrono::nanoseconds deadline{0};
  std::size_t max_solutions = SIZE_MAX;
  // Overrides EngineConfig::resolution_limit when nonzero.
  std::uint64_t resolution_limit = 0;
};

class Engine {
 public:
  explicit Engine(Database& db, EngineConfig cfg = {},
                  const CostModel& costs = CostModel::standard());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs `query_text` (a '.'-terminated goal), collecting up to
  // `max_solutions` solutions. Engine state is reset per call; arenas stay
  // warm across calls.
  SolveResult solve(const std::string& query_text,
                    std::size_t max_solutions = SIZE_MAX);

  // The wire-facing form: outcome enum, per-query Counters delta,
  // latency, optional trace handle. Engine errors land in
  // QueryResult::error instead of throwing (resolution-budget exhaustion
  // included).
  QueryResult query(const std::string& query_text,
                    const QueryBudget& budget = {});

  // Convenience: true if the query has at least one solution.
  bool succeeds(const std::string& query_text) {
    return !solve(query_text, 1).solutions.empty();
  }

  const EngineConfig& config() const { return cfg_; }
  // Completed runs on this engine; > 0 means the next run reuses warm
  // arenas.
  std::uint64_t queries_run() const;

  // Cancel the in-flight query from another thread.
  CancelToken& token();

  // Optional instrumentation (see class comment).
  void set_tracer(Tracer* tracer);
  void set_recorder(obs::Recorder* recorder);

  // The underlying session (serving-layer integration and tests).
  EngineSession& session() { return *session_; }

 private:
  EngineConfig cfg_;
  Builtins builtins_;
  std::unique_ptr<EngineSession> session_;
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t next_qid_ = 1;
};

}  // namespace ace
