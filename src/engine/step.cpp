// Forward execution: one goal dispatched per run_step().
#include "engine/worker.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

struct GoalShape {
  std::uint32_t sym;
  unsigned arity;
  Addr args;  // address of first argument cell (args at args+0 .. arity-1)
};

GoalShape shape_of(Store& store, const SymbolTable& syms, Addr goal) {
  Addr a = deref(store, goal);
  Cell c = store.get(a);
  switch (c.tag()) {
    case Tag::Atm:
      return {c.symbol(), 0, 0};
    case Tag::Str: {
      Cell f = store.get(c.ref());
      return {f.fun_symbol(), f.fun_arity(), c.ref() + 1};
    }
    case Tag::Ref:
      throw AceError("call: unbound goal");
    case Tag::Int:
      throw AceError("call: integer is not callable");
    case Tag::Lst:
      throw AceError(strf("call: list is not callable (%s)",
                          syms.name(syms.known().dot).c_str()));
    default:
      throw AceError("call: bad goal term");
  }
}

}  // namespace

void Worker::run_step() {
  if (glist_ == kNoRef) {
    on_goals_done();
    return;
  }
  GoalNode node = goal_node(glist_);
  glist_ = node.next;
  execute_goal(node.goal, node.cut_parent);
}

void Worker::execute_goal(Addr goal, Ref cut_parent) {
  goal = deref(store_, goal);
  GoalShape g = shape_of(store_, syms_, goal);
  const auto& k = syms_.known();

  // ---- Control constructs ----
  if (g.arity == 2 && g.sym == k.comma) {
    Ref right = push_goal(g.args + 1, glist_, cut_parent);
    glist_ = push_goal(g.args + 0, right, cut_parent);
    return;
  }
  if (g.arity == 2 && g.sym == k.amp) {
    if (opts_.parallel_and && par_ != nullptr && nested_.empty()) {
      begin_parcall(goal, cut_parent);
      return;
    }
    // Sequential fallback: '&' behaves as ','.
    Ref right = push_goal(g.args + 1, glist_, cut_parent);
    glist_ = push_goal(g.args + 0, right, cut_parent);
    return;
  }
  if (g.arity == 2 && g.sym == k.semicolon) {
    // If-then-else?
    Addr left = deref(store_, g.args + 0);
    Cell lc = store_.get(left);
    if (lc.tag() == Tag::Str) {
      Cell lf = store_.get(lc.ref());
      if (lf.fun_symbol() == k.arrow && lf.fun_arity() == 2) {
        Addr cond = lc.ref() + 1;
        Addr then = lc.ref() + 2;
        Ref ite = push_choice_term(g.args + 1, cut_parent, AltKind::IteElse);
        // Continuation: Cond, $ite_commit(ite), Then, rest.
        Addr commit = heap_struct(
            store_, seg(), builtins_.ite_commit_sym(),
            {heap_int(store_, seg(),
                      static_cast<std::int64_t>(ite))});
        stats_.heap_cells += 4;
        charge(CostCat::kUserWork, 4 * costs_.heap_cell);
        Ref then_ref = push_goal(then, glist_, cut_parent);
        Ref commit_ref = push_goal(commit, then_ref, cut_parent);
        // Cut inside the condition is local to the condition: its barrier
        // is the ITE frame itself (cutting to it keeps the else reachable
        // until the commit).
        glist_ = push_goal(cond, commit_ref, ite);
        return;
      }
    }
    // Plain disjunction.
    push_choice_term(g.args + 1, cut_parent, AltKind::Term);
    glist_ = push_goal(g.args + 0, glist_, cut_parent);
    return;
  }
  if (g.arity == 2 && g.sym == k.arrow) {
    // Bare (C -> T) is (C -> T ; fail). The else atom is allocated before
    // the frame so it sits below the frame's heap mark (or-parallel prefix
    // copies rely on this).
    Addr alt = heap_atom(store_, seg(), k.fail);
    Ref ite = push_choice_term(alt, cut_parent, AltKind::IteElse);
    Addr commit =
        heap_struct(store_, seg(), builtins_.ite_commit_sym(),
                    {heap_int(store_, seg(), static_cast<std::int64_t>(ite))});
    stats_.heap_cells += 5;
    charge(CostCat::kUserWork, 5 * costs_.heap_cell);
    Ref then_ref = push_goal(g.args + 1, glist_, cut_parent);
    Ref commit_ref = push_goal(commit, then_ref, cut_parent);
    glist_ = push_goal(g.args + 0, commit_ref, ite);
    return;
  }
  if (g.arity == 0 && g.sym == k.cut) {
    stats_.builtin_calls++;
    charge(CostCat::kBuiltin, costs_.builtin);
    do_cut(cut_parent);
    return;
  }
  if (g.arity == 1 && g.sym == k.call) {
    stats_.builtin_calls++;
    charge(CostCat::kBuiltin, costs_.builtin);
    // call/1 is opaque to cut: the inner goal's barrier is the current bt.
    glist_ = push_goal(g.args + 0, glist_, bt_);
    return;
  }
  if (g.arity >= 2 && g.arity <= 8 && g.sym == k.call) {
    // call/N: apply the closure in arg 1 to the remaining arguments.
    stats_.builtin_calls++;
    charge(CostCat::kBuiltin, costs_.builtin);
    Addr closure = deref(store_, g.args + 0);
    Cell cc = store_.get(closure);
    std::uint32_t fsym;
    std::vector<Addr> args;
    if (cc.tag() == Tag::Atm) {
      fsym = cc.symbol();
    } else if (cc.tag() == Tag::Str) {
      Cell f = store_.get(cc.ref());
      fsym = f.fun_symbol();
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        args.push_back(cc.ref() + i);
      }
    } else {
      throw AceError("call/N: closure is not callable");
    }
    for (unsigned i = 1; i < g.arity; ++i) args.push_back(g.args + i);
    std::size_t extra = args.size() + 1;
    Addr built = args.empty() ? heap_atom(store_, seg(), fsym)
                              : heap_struct(store_, seg(), fsym, args);
    stats_.heap_cells += extra;
    charge(CostCat::kUserWork, extra * costs_.heap_cell);
    glist_ = push_goal(built, glist_, bt_);
    return;
  }
  if (g.arity == 1 && g.sym == k.naf) {
    // \+ G  ==  (G -> fail ; true)
    stats_.builtin_calls++;
    charge(CostCat::kBuiltin, costs_.builtin);
    Addr alt = heap_atom(store_, seg(), k.truesym);
    Ref ite = push_choice_term(alt, cut_parent, AltKind::IteElse);
    Addr commit =
        heap_struct(store_, seg(), builtins_.ite_commit_sym(),
                    {heap_int(store_, seg(), static_cast<std::int64_t>(ite))});
    Addr failatom = heap_atom(store_, seg(), k.fail);
    stats_.heap_cells += 6;
    charge(CostCat::kUserWork, 6 * costs_.heap_cell);
    Ref fail_ref = push_goal(failatom, glist_, cut_parent);
    Ref commit_ref = push_goal(commit, fail_ref, cut_parent);
    glist_ = push_goal(g.args + 0, commit_ref, ite);
    return;
  }

  // ---- Builtins ----
  if (auto id = builtins_.lookup(g.sym, g.arity)) {
    if (*id == BuiltinId::Indep && snap_.find(g.sym, g.arity) != nullptr)
        [[unlikely]] {
      // indep/2 postdates user programs (the annotator corpus workload
      // defines its own): a program-defined indep/2 keeps its semantics,
      // and the builtin only serves CGE guards in programs that don't.
      call_user_pred(goal, g.sym, g.arity);
      return;
    }
    stats_.builtin_calls++;
    if (*id == BuiltinId::Ground || *id == BuiltinId::Indep) {
      // CGE guards get their own category so the attribution decomposition
      // can price conditional parallelism separately from ordinary builtin
      // work (the walk itself charges per cell inside exec_builtin).
      stats_.cge_checks++;
      charge(CostCat::kCgeCheck, costs_.cge_check);
    } else {
      charge(CostCat::kBuiltin, costs_.builtin);
    }
    switch (exec_builtin(*this, *id, goal, glist_, cut_parent)) {
      case BuiltinResult::Ok:
        return;
      case BuiltinResult::Failed:
        fail();
        return;
      case BuiltinResult::Handled:
        return;
    }
    return;
  }

  // ---- User predicates ----
  call_user_pred(goal, g.sym, g.arity);
}

void Worker::call_user_pred(Addr goal, std::uint32_t sym, unsigned arity) {
  ++stats_.resolutions;
  attrib_note_dispatch(sym, arity);  // dispatch cost bills to the callee
  charge(CostCat::kClauseLookup, costs_.call_dispatch);
  if (opts_.resolution_limit != 0 &&
      stats_.resolutions > opts_.resolution_limit) {
    // Generalized stop protocol: the resolution budget funnels through the
    // same sticky token as external cancels/deadlines, so parallel
    // teammates of the over-budget agent stop promptly too.
    if (cancel_ != nullptr) cancel_->set_cause(StopCause::ResolutionLimit);
    throw QueryStopped(StopCause::ResolutionLimit);
  }

  // Tabling interception (engine/tabling.cpp). has_tabled() is false for
  // programs with no `:- table` directive, so untabled runs take a single
  // predicted branch here and stay bit-identical in virtual time.
  if (opts_.tabling && db_.has_tabled()) [[unlikely]] {
    if (tab_call(goal, sym, arity)) {
      // Tabled answers carry their own TableSpace dep machinery; the
      // serving result cache declines to cache runs that went through it.
      if (deps_on_) deps_track_.tabled = true;
      return;
    }
  }
  call_user_pred_clauses(goal, sym, arity);
}

void Worker::call_user_pred_clauses(Addr goal, std::uint32_t sym,
                                    unsigned arity) {
  // One consistent index view for the whole call: the lock-free snapshot
  // lookup resolves the stable predicate handle, and a single index() load
  // pins the version used for the generation record, the bucket read, the
  // head unification and push_choice_clauses (LAO reuse reads the same
  // view). Under the serving layer, a concurrent assert/retract publishes
  // a *new* version — this one stays valid and internally consistent until
  // the next step's snapshot refresh.
  const Predicate* pred = snap_.find(sym, arity);
  if (pred == nullptr) {
    // Observed-undefined still counts as a cache dependency: a query that
    // catches the error depends on the predicate staying undefined.
    if (deps_on_) deps_track_.note(sym, arity, tab::kDepUndefined);
    throw AceError(strf("undefined predicate %s/%u",
                        syms_.name(sym).c_str(), arity));
  }
  const PredIndex& ix = snap_.view(*pred);
  // Inside a tabled generator, every consulted predicate becomes a
  // dependency of the table being produced (invalidation + publication
  // generation check). tab_gens_ is empty whenever tabling is off.
  if (!tab_gens_.empty()) [[unlikely]] {
    tab_note_dep(sym, arity, ix.generation());
  }
  // Serving result cache: record the consulted index generation so the
  // cached entry can be precisely invalidated and re-validated on hit.
  if (deps_on_) [[unlikely]] {
    deps_track_.note(sym, arity, ix.generation());
  }
  IndexKey key{IndexKey::Kind::AnyCall, 0};
  if (arity > 0) {
    Cell c = store_.get(deref(store_, goal));
    key = call_index_key(store_, c.ref() + 1, syms_);
  }
  const std::vector<std::uint32_t>& bucket = ix.candidates(key);
  if (bucket.empty()) {
    fail();
    return;
  }

  Ref barrier = bt_;
  if (bucket.size() == 1) {
    if (!try_clause(ix, bucket[0], goal, barrier)) fail();
    return;
  }
  Ref cp = push_choice_clauses(goal, pred, ix, key, /*next_bucket_pos=*/1,
                               static_cast<long>(bucket[0]), barrier);
  // LAO may have recycled an exhausted frame in place, in which case the
  // clause bodies' cut barrier is that frame's predecessor, not bt_ as it
  // was before the call. The frame records the correct barrier either way.
  barrier = frame(cp).cut_parent;
  if (!try_clause(ix, bucket[0], goal, barrier)) fail();
}

bool Worker::try_clause(const PredIndex& ix, std::uint32_t ordinal,
                        Addr goal, Ref barrier) {
  const Clause& clause = ix.clause(ordinal);
  Addr inst = instantiate(store_, seg(), clause.tmpl);
  stats_.heap_cells += clause.tmpl.instantiation_cost();
  charge(CostCat::kClauseLookup, clause.tmpl.instantiation_cost() * costs_.heap_cell);

  // inst is ':-'(Head, Body).
  Cell root = store_.get(deref(store_, inst));
  ACE_DCHECK(root.tag() == Tag::Str);
  Addr head = root.ref() + 1;
  Addr body = root.ref() + 2;

  if (!unify_charge(goal, head)) return false;
  if (!clause.body_is_true) {
    glist_ = push_goal(body, glist_, barrier);
  }
  mode_ = Mode::Run;
  return true;
}

Ref Worker::push_choice_clauses(Addr goal, const Predicate* pred,
                                const PredIndex& ix, const IndexKey& key,
                                std::uint32_t next_bucket_pos,
                                long last_ordinal, Ref cut_parent) {
  if (orp_ != nullptr && opts_.lao) {
    // LAO (paper §3.2): if the exhausted previous choice point is still on
    // top — i.e. its last alternative is creating this one — reuse it.
    // A static lao-chain fact (last clause tail-recursive, earlier clauses
    // leaf) proves the generator shape the charged test verifies, so the
    // charge is elided; lao_try_reuse itself runs either way.
    if (opts_.static_facts && ix.fact(StaticFacts::kLaoChain)) {
      ++stats_.static_elisions;
    } else {
      ++stats_.opt_checks;
      charge(CostCat::kOptCheck, costs_.opt_check);
    }
    if (lao_try_reuse(goal, pred, ix, key, cut_parent, next_bucket_pos,
                      last_ordinal)) {
      return bt_;
    }
  }
  Frame f;
  f.kind = FrameKind::Choice;
  f.alt_kind = AltKind::Clauses;
  f.call_goal = goal;
  f.cont = glist_;
  f.cut_parent = cut_parent;
  f.pred = pred;
  f.key = key;
  f.pred_gen = ix.generation();
  f.bucket_pos = next_bucket_pos;
  f.last_ordinal = last_ordinal;
  f.trail_mark = trail_.size();
  f.heap_mark = heap_size();
  f.garena_mark = garena_.size();
  f.prev_bt = bt_;
  f.pf_id = cur_pf_;
  f.slot_idx = cur_slot_;
  if (cur_pf_ != kNoPf) {
    Slot& s = cur_slot_ref();
    f.part_idx = static_cast<std::uint32_t>(s.parts.size()) - 1;
  }
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  f.ctrl_mark = idx;
  ctrl_.push_back(f);
  bt_ = make_ref(agent_, idx);
  ++stats_.choicepoints;
  if (orp_ != nullptr) ++private_cps_;
  charge(CostCat::kBacktrack, costs_.choicepoint);
  note_ctrl_alloc(kWordsChoicePoint);
  return bt_;
}

Ref Worker::push_choice_term(Addr alt, Ref cut_parent, AltKind kind) {
  Frame f;
  f.kind = FrameKind::Choice;
  f.alt_kind = kind;
  f.alt_term = alt;
  f.cont = glist_;
  f.cut_parent = cut_parent;
  f.trail_mark = trail_.size();
  f.heap_mark = heap_size();
  f.garena_mark = garena_.size();
  f.prev_bt = bt_;
  f.pf_id = cur_pf_;
  f.slot_idx = cur_slot_;
  if (cur_pf_ != kNoPf) {
    Slot& s = cur_slot_ref();
    f.part_idx = static_cast<std::uint32_t>(s.parts.size()) - 1;
  }
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  f.ctrl_mark = idx;
  ctrl_.push_back(f);
  bt_ = make_ref(agent_, idx);
  ++stats_.choicepoints;
  // Only shareable frames count toward sharing-session victim selection.
  if (orp_ != nullptr && kind == AltKind::Term) ++private_cps_;
  charge(CostCat::kBacktrack, costs_.choicepoint);
  note_ctrl_alloc(kWordsChoicePoint);
  return bt_;
}

void Worker::do_cut(Ref barrier) {
  // Discard backtrack points newer than `barrier`. Frames become dead;
  // contiguous dead suffixes of our own stack are reclaimed.
  while (bt_ != barrier && bt_ != kNoRef) {
    Frame& f = frame(bt_);
    Ref prev = f.prev_bt;
    if (f.kind == FrameKind::Choice) {
      mark_frame_dead(peer(ref_agent(bt_)), ref_index(bt_));
      bt_ = prev;
    } else {
      // Cutting across a parcall frame: stop at it (cuts are local to
      // their slot in independent and-parallel execution).
      break;
    }
  }
  pop_dead_suffix();
}

}  // namespace ace
