// Worker: one agent's resumable engine.
//
// A Worker executes goals step by step (one bounded unit of work per step()
// call) so that the virtual-time simulator can interleave N agents
// deterministically and the real-thread runtime can run the same loop per
// std::thread. All state lives in index-addressed, chunked (stable-address)
// arenas:
//
//   trail_   ChunkedVector<Addr>      bindings, unwound by range
//   ctrl_    ChunkedVector<Frame>     choice points / parcall frames / markers
//   garena_  ChunkedVector<GoalNode>  continuation lists
//   heap     a segment of the shared Store
//
// Three engines are built from Worker:
//   * sequential:   parallel_and off; '&' runs as ','  (the baseline)
//   * and-parallel: parallel_and on; a ParContext links the agents
//                   (optimizations: LPCO, SHALLOW, PDO)
//   * or-parallel:  one Worker per isolated Store; an OrpContext provides
//                   MUSE-style sharing (optimization: LAO)
//
// Backtracking follows the logical chain of Choice/Parcall frames (bt_),
// never raw stack order. Physical per-slot stack sections are unwound by
// range (SectionPart), which is the work the paper's markers exist to
// support. See DESIGN.md §4 for the protocol summary.
//
// Fields and internal methods are public: the andp/orp modules are
// co-implementors of the engine, not clients. Applications use the
// ace::Engine facade (engine/engine.hpp).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "builtins/builtins.hpp"
#include "db/database.hpp"
#include "db/snapshot.hpp"
#include "engine/frames.hpp"
#include "engine/parcall.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"
#include "stats/attrib.hpp"
#include "stats/stats.hpp"
#include "support/cancel.hpp"
#include "tab/eval.hpp"
#include "term/print.hpp"
#include "term/unify.hpp"

namespace ace {

class ParContext;
class OrpContext;

namespace obs {
class Track;
}

struct WorkerOptions {
  bool parallel_and = false;  // execute '&' as a parcall (else as ',')
  bool lpco = false;          // last parallel call optimization
  bool shallow = false;       // shallow parallelism optimization
  bool pdo = false;           // processor determinacy optimization
  bool lao = false;           // last alternative optimization (or-parallel)
  // Elide the charged opt_check at trigger sites whose outcome the
  // load-time static-facts pass proved (see analysis/static_facts.hpp).
  bool static_facts = false;
  // SLG tabling for predicates declared `:- table name/arity.` (src/tab/).
  // On by default; with no table directives in the program the
  // interception path is never entered and execution is bit-identical to
  // a tabling-free build. --no-table turns tabled predicates back into
  // plain ones.
  bool tabling = true;
  // Per-predicate attribution (hash-map upkeep on every charge made while a
  // predicate is current). Per-CATEGORY attribution is always on — it is one
  // array add per charge, never changes charge amounts, and keeps the
  // conservation invariant checkable on every run.
  bool attrib = false;
  bool occurs_check = false;
  // Abort the query (throws AceError) once resolutions exceed this
  // (0 = unlimited); failure-injection tests stop runaway programs with it.
  std::uint64_t resolution_limit = 0;
};

enum class StepOutcome : std::uint8_t {
  Progress,   // did work
  Idle,       // nothing to do (parallel agents between jobs)
  Solution,   // top-level query solution reached (worker paused)
  Exhausted,  // top-level query has no (more) solutions
};

// Shared sink for write/1 output.
struct IoSink {
  std::mutex mu;
  std::string text;
  void append(const std::string& s) {
    std::lock_guard<std::mutex> lock(mu);
    text += s;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu);
    text.clear();
  }
  std::string snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return text;
  }
};

// Nested-execution context (findall/3 and tabled-generator passes): runs a
// goal to exhaustion on top of the current stacks, collecting solution
// copies, then rolls everything back. Parallel conjunctions run
// sequentially inside a nested context. TabGen contexts correspond 1:1, in
// stack order, with the worker's tab_gens_ entries (findall contexts may
// interleave freely); for them template_term is the tabled subgoal and
// solutions are recorded into the generator's table instead of collected.
struct NestedCtx {
  enum class Kind : std::uint8_t { Findall, TabGen };
  Kind kind = Kind::Findall;
  Addr template_term = 0;
  Addr result_var = 0;
  // Solutions are serialized to templates so they survive the rollback of
  // the nested execution's heap.
  std::vector<TermTemplate> collected;
  Ref saved_glist = kNoRef;
  Ref saved_bt = kNoRef;
  std::uint64_t trail_mark = 0;
  std::uint64_t heap_mark = 0;
  std::uint64_t garena_mark = 0;
  std::uint32_t ctrl_mark = 0;
};

class Worker {
 public:
  Worker(unsigned agent, Store& store, Database& db, const Builtins& bi,
         const CostModel& costs, WorkerOptions opts, IoSink& io);

  // ---- Query control ---------------------------------------------------
  // Loads a query (its root term becomes the top-level goal). Only the
  // top-level agent of a machine calls this.
  void load_query(const TermTemplate& query);
  StepOutcome step();
  // After a Solution outcome: resume the search for the next solution.
  void request_next_solution();
  // Renders the current solution as "X = t, Y = u" over named query vars
  // ("true" if the query has no named variables).
  std::string solution_string() const;
  // Restores the worker to its pristine between-queries state while keeping
  // every arena's allocated chunks (the engine-pool reuse hot-path win:
  // trail/ctrl/garena/heap chunk tables survive across queries). The heap
  // segment this worker owns is truncated; callers owning multi-segment
  // stores truncate sibling segments via their own workers.
  void reset_for_reuse();

  // ---- Identity and environment -----------------------------------------
  unsigned agent_;
  // Heap segment this worker allocates in. Equals agent_ in the shared-
  // store and-parallel machine; 0 for or-parallel workers, which each own a
  // private single-segment Store (MUSE copying).
  unsigned seg_;
  Store& store_;
  Database& db_;
  // This worker's epoch-pinned read view of db_ (see db/snapshot.hpp).
  // Pinned lazily at the first step of a query and refreshed at the top of
  // every step() — a step is the safe point: no PredIndex reference
  // crosses a step boundary (frames and shared nodes hold stable Predicate
  // handles plus generation numbers instead). Released between queries so
  // parked workers never delay writers' epoch reclamation.
  db::Snapshot snap_;
  void snap_ensure() {
    if (!snap_.pinned()) {
      snap_.pin(db_);
    } else {
      snap_.refresh();
    }
  }
  const SymbolTable& syms_;
  const Builtins& builtins_;
  const CostModel& costs_;
  WorkerOptions opts_;
  IoSink& io_;
  ParContext* par_ = nullptr;              // set for Andp-mode sessions
  OrpContext* orp_ = nullptr;              // set for Orp-mode sessions
  Tracer* tracer_ = nullptr;               // optional sim event recording
  obs::Track* obs_ = nullptr;              // optional real-thread recording
  std::vector<Worker*>* group_ = nullptr;  // all agents, self included
  // Per-query stop signal shared by all agents (set by the serving layer /
  // engine facades). Polled at the top of step(); a stop unwinds via
  // QueryStopped.
  CancelToken* cancel_ = nullptr;
  unsigned cancel_poll_stride_ = 0;  // deadline clock-check decimation

  Worker& peer(unsigned agent) {
    return group_ != nullptr ? *(*group_)[agent] : *this;
  }

  // ---- Machine state -----------------------------------------------------
  enum class Mode : std::uint8_t {
    Idle,           // between jobs (parallel agents)
    Run,
    Backtrack,
    FailWait,       // waiting for sibling slots to acknowledge a kill
    ReentryWait,    // outside backtracking: waiting for in-flight
                    // recomputations of the target parcall to stop
    SolutionPause,  // top-level solution available
    Done,           // query exhausted
  };
  Mode mode_ = Mode::Idle;
  Trail trail_;
  ChunkedVector<Frame> ctrl_;
  ChunkedVector<GoalNode> garena_;
  Ref glist_ = kNoRef;  // current continuation head
  Ref bt_ = kNoRef;     // newest backtrack point (Choice or Parcall frame)

  // Current slot context (kNoPf at top level).
  std::uint32_t cur_pf_ = kNoPf;
  std::uint32_t cur_slot_ = 0;

  // Procrastinated end marker: set when a slot completes, resolved at the
  // next scheduling decision (PDO may merge it away).
  std::uint32_t pending_end_pf_ = kNoPf;
  std::uint32_t pending_end_slot_ = 0;

  // Parcall whose failure this worker is coordinating (FailWait mode).
  std::uint32_t failing_pf_ = kNoPf;
  // Parcall whose re-entry this worker is coordinating (ReentryWait mode).
  std::uint32_t reentry_pf_ = kNoPf;

  // PDO bookkeeping: the slot completed by the immediately preceding action
  // (valid only until any other action happens).
  std::uint32_t last_done_pf_ = kNoPf;
  std::uint32_t last_done_slot_ = 0;
  bool last_done_adjacent_ = false;

  // Parcalls this worker owns and is waiting on (innermost last).
  std::vector<std::uint32_t> waiting_pfs_;

  std::vector<NestedCtx> nested_;

  // ---- Tabling state (src/tab/, engine/tabling.cpp) ----------------------
  // Worker-local tables of this query's SLG evaluation. unique_ptr entries
  // keep LocalTable references stable while the vector grows.
  std::vector<std::unique_ptr<tab::LocalTable>> tab_tables_;
  std::unordered_map<std::string, std::uint32_t> tab_local_ix_;
  // Completed tables pinned for this query (from own completions or the
  // cross-query TableSpace); raw pointers in frames and shared nodes stay
  // valid until reset_for_reuse.
  std::unordered_map<std::string, std::shared_ptr<const tab::CompletedTable>>
      tab_done_;
  std::vector<tab::GenFrame> tab_gens_;  // live generators, innermost last
  std::uint64_t tab_epoch_ = 0;      // monotone answer-insert counter
  std::uint32_t tab_next_dfn_ = 0;   // Tarjan dfn allocator
  // Cross-query answer cache (may be null: tabling then still works, with
  // per-query memoization only). Set by the owning session, survives reset.
  tab::TableSpace* tabsp_ = nullptr;

  // ---- Query-dependency tracking (serving result cache) ------------------
  // When armed by the session (deps_on_), every user-predicate dispatch
  // records (sym, arity, generation) of the consulted index version —
  // dedup'd per worker, merged across agents in EngineSession::finalize().
  // Recording is observation-only: it never charges virtual time, so a
  // run with tracking on is clock- and solution-identical to one without.
  struct QueryDepTracker {
    std::vector<tab::TableDep> deps;
    std::unordered_set<std::uint64_t> seen;  // tab::dep_key() of deps
    bool tabled = false;  // query touched the tabling subsystem
    void note(std::uint32_t dsym, unsigned darity, std::uint64_t gen) {
      if (seen.insert(tab::dep_key(dsym, darity)).second) {
        deps.push_back(tab::TableDep{dsym, darity, gen});
      }
    }
    void reset() {
      deps.clear();
      seen.clear();
      tabled = false;
    }
  };
  QueryDepTracker deps_track_;
  bool deps_on_ = false;  // armed per run by EngineSession

  std::uint64_t clock_ = 0;  // virtual time
  Counters stats_;
  // Per-category virtual-time attribution. Invariant (tested): the category
  // sums exactly partition the clock — attrib_.total() == clock_ at all
  // times, because charge() and sync_clock_to() are the only clock
  // mutations and both update attrib_ by the same amount.
  AttribBreakdown attrib_;
  // Per-predicate attribution (opts_.attrib only). Charges are attributed
  // to the most recently dispatched user predicate on this agent (sampling
  // semantics: backtracking/scheduling between dispatches bills to the
  // predicate that triggered it); charges before any dispatch bill to the
  // "<engine>" pseudo-entry. cur_pred_attrib_ is non-null iff the feature
  // is enabled; values are stable (node-based map), so the cached pointer
  // survives rehashing.
  std::unordered_map<std::uint64_t, AttribBreakdown> pred_attrib_;
  AttribBreakdown* cur_pred_attrib_ = nullptr;

  // Query bookkeeping (top-level agent only).
  const TermTemplate* query_ = nullptr;
  std::vector<Addr> query_vars_;

  // Or-parallel bookkeeping: live private (unshared) choice points, used
  // for sharing-session victim selection.
  std::int64_t private_cps_ = 0;

  // Incremental-copy accounting (MUSE copies only the stack diff between
  // two workers; we physically copy the whole prefix for simplicity but
  // charge the incremental traffic — see DESIGN.md §5). Tracks the last
  // copy source and the prefix sizes already shared with it.
  unsigned last_copy_victim_ = ~0u;
  std::uint64_t last_copy_ctrl_ = 0;
  std::uint64_t last_copy_garena_ = 0;
  std::uint64_t last_copy_trail_ = 0;
  std::uint64_t last_copy_heap_ = 0;

  // ---- Small helpers -----------------------------------------------------
  // Advance the virtual clock and attribute the time to `cat`. Attribution
  // never alters amounts: runs with any combination of reporting flags are
  // bit-identical in virtual time.
  void charge(CostCat cat, std::uint64_t c) {
    clock_ += c;
    attrib_.at[static_cast<std::size_t>(cat)] += c;
    if (cur_pred_attrib_ != nullptr) [[unlikely]] {
      cur_pred_attrib_->at[static_cast<std::size_t>(cat)] += c;
    }
  }
  // Virtual-time barrier: wait (by jumping the clock) until `t`. The
  // catch-up is attributed to kIdle, keeping conservation intact. Replaces
  // the raw `clock_ = max(clock_, other)` synchronizations.
  void sync_clock_to(std::uint64_t t) {
    if (t > clock_) charge(CostCat::kIdle, t - clock_);
  }
  // Per-predicate attribution hooks (opts_.attrib). Dispatch sites call
  // attrib_note_dispatch before charging so the dispatch itself bills to
  // the callee; the cold path lives in machine.cpp.
  void attrib_note_dispatch(std::uint32_t sym, unsigned arity) {
    if (cur_pred_attrib_ != nullptr) [[unlikely]] attrib_set_pred(sym, arity);
  }
  void attrib_set_pred(std::uint32_t sym, unsigned arity);
  // (Re)starts per-predicate accounting when opts_.attrib is set: clears
  // the map and points the current row at the "<engine>" pseudo-entry.
  void attrib_reset();
  // Per-predicate rows with resolved "name/arity" keys, largest total
  // first. Empty unless opts_.attrib.
  std::vector<PredAttrib> pred_attrib_rows() const;
  // One combined predicted-not-taken branch per event site when neither the
  // sim tracer nor the obs recorder is attached (the ISSUE's <=1-branch
  // discipline); the cold path lives out of line in machine.cpp.
  void trace(TraceEvent ev, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (tracer_ != nullptr || obs_ != nullptr) [[unlikely]] {
      trace_slow(ev, a, b);
    }
  }
  void trace_slow(TraceEvent ev, std::uint64_t a, std::uint64_t b);
  unsigned seg() const { return seg_; }
  bool is_idle() const { return mode_ == Mode::Idle; }

  // Cooperative stop poll: cheap flag check every step, deadline clock
  // check every 64th. Throws QueryStopped when a stop is observed.
  void poll_cancellation() {
    if (cancel_ == nullptr) return;
    cancel_->raise_if_stopped((++cancel_poll_stride_ & 63u) == 0);
  }

  Ref push_goal(Addr goal, Ref next, Ref cut_parent);
  GoalNode goal_node(Ref r) {
    return peer(ref_agent(r)).garena_[ref_index(r)];
  }
  Frame& frame(Ref r) { return peer(ref_agent(r)).ctrl_[ref_index(r)]; }

  // Unifies with cost/stat accounting; on failure undoes its own bindings.
  bool unify_charge(Addr a, Addr b);
  void untrail_charge(std::uint64_t mark, CostCat cat = CostCat::kBacktrack);

  std::uint64_t heap_size() const { return store_.seg_size(seg_); }

  void note_ctrl_alloc(std::uint64_t words);
  void note_ctrl_free(std::uint64_t words);

  // ---- Step internals (engine/step.cpp) ----------------------------------
  void run_step();
  void execute_goal(Addr goal, Ref cut_parent);
  void call_user_pred(Addr goal, std::uint32_t sym, unsigned arity);
  // Clause dispatch for `goal` (the body of call_user_pred after the
  // tabling interception): bucket lookup, choice point, first clause. Also
  // the entry point of a generator's clause pass ($tab_gen builtin).
  void call_user_pred_clauses(Addr goal, std::uint32_t sym, unsigned arity);
  // `ix` is the caller's pinned index view — the same view that produced
  // the ordinal, so the clause template cannot have shifted under it.
  bool try_clause(const PredIndex& ix, std::uint32_t ordinal, Addr goal,
                  Ref barrier);
  Ref push_choice_clauses(Addr goal, const Predicate* pred,
                          const PredIndex& ix, const IndexKey& key,
                          std::uint32_t next_bucket_pos, long last_ordinal,
                          Ref cut_parent);
  Ref push_choice_term(Addr alt, Ref cut_parent, AltKind kind);
  void do_cut(Ref barrier);
  void fail() { mode_ = Mode::Backtrack; }
  // throw/1: unwinds the backtrack chain to the nearest matching catch/3
  // (propagating out of nested findall contexts); throws AceError if
  // uncaught or if it would cross a parallel-conjunction boundary.
  void do_throw(Addr ball);

  // ---- Goal-list completion (engine/solve.cpp) ---------------------------
  void on_goals_done();
  void begin_nested(Addr template_term, Addr goal, Addr result_var);
  void nested_solution();
  void nested_exhausted();

  // ---- Tabling (engine/tabling.cpp) --------------------------------------
  // Interception point of call_user_pred: true iff sym/arity is tabled and
  // the call was handled (answered from a table, suspended as a consumer,
  // or started as a generator). False -> caller runs plain clause dispatch.
  bool tab_call(Addr goal, std::uint32_t sym, unsigned arity);
  // Starts (or restarts, keeping accumulated answers) a generator for
  // local table `table_idx` on a fresh nested context.
  void begin_tab_gen(Addr goal, std::uint32_t sym, unsigned arity,
                     std::uint32_t table_idx);
  // nested_solution / nested_exhausted delegates for TabGen contexts.
  void tab_gen_solution();
  void tab_gen_exhausted();
  // Pushes a TabAnswers consumer frame over a completed table (done !=
  // null) or the worker-local table `local_ix`, and consumes the first
  // answer (fails if the table is empty).
  void tab_push_consumer(Addr goal, std::uint32_t local_ix,
                         const tab::CompletedTable* done);
  // Backtracking into a TabAnswers frame: next answer / pop on exhaustion.
  // Called by retry_choice_alternative after restore_choice.
  void tab_retry_answers(Ref cref, Frame& snapshot);
  // Records predicate `sym/arity` (at db generation `gen`) as a dependency
  // of the innermost live generator's table.
  void tab_note_dep(std::uint32_t sym, unsigned arity, std::uint64_t gen);
  // Unions a consumed completed table's dependencies into the innermost
  // live generator's table (no-op outside generators).
  void tab_union_deps(const tab::CompletedTable& t);
  // do_throw unwinding support: rolls back the generator bookkeeping of a
  // popped TabGen nested context (table goes inactive, gen frame pops).
  void tab_abort_gen();

  // ---- Backtracking (engine/backtrack.cpp) -------------------------------
  void backtrack_step();
  void retry_choice_alternative(Ref cref);
  void restore_choice(Ref cref);
  // Marks this worker's own frames in (above, top) dead — recursing into
  // parcall frames — and reclaims the contiguous dead suffix.
  void kill_own_frames_above(std::uint32_t above);
  void mark_frame_dead(Worker& owner_agent, std::uint32_t index);
  void pop_dead_suffix();

  // ---- And-parallel protocol (andp/*.cpp) --------------------------------
  void begin_parcall(Addr amp_goal, Ref cut_parent);
  bool lpco_try_merge(const std::vector<Addr>& subgoals);
  // Under --static-facts: the goal is a call to a predicate with a proven
  // determinacy fact that applies to this call — kDet unconditionally,
  // kDetIndexed only when the call's first argument is ground (see
  // Slot::static_det). Always false otherwise.
  bool goal_static_det(Addr goal);
  // Groundness walk used by goal_static_det for kDetIndexed.
  bool term_ground(Addr at);
  void start_slot(std::uint32_t pf_id, std::uint32_t slot_idx, bool stolen);
  // SHALLOW: allocates the procrastinated input marker just before the
  // slot's first choice point.
  void maybe_materialize_input_marker();
  void complete_slot();
  void resolve_pending_end_marker(bool pdo_merge);
  void resume_continuation(std::uint32_t pf_id);
  void slot_initial_failure();
  void slot_resumed_failure();
  void parcall_outside_backtrack(std::uint32_t pf_id);
  // Second phase of outside backtracking, once the parcall's subtree is
  // quiescent: undo the continuation, scan right-to-left, resume/teardown.
  void outside_backtrack_resume(std::uint32_t pf_id);
  void reentry_wait_step();
  // True if any slot in pf's subtree (nested parcalls included) is
  // currently executing.
  bool subtree_has_executing(std::uint32_t pf_id);
  // Undoes the (possibly remote) continuation region recorded by the last
  // resume_continuation of `pf`.
  void undo_continuation(Parcall& pf);
  void finish_parcall_failure();
  void owner_handle_failed_parcall(std::uint32_t pf_id);
  // Kill-poll: true if this worker's current slot belongs to a failing
  // parcall subtree and was abandoned (worker went Idle).
  bool check_cancellation();
  void idle_step();
  void fail_wait_step();

  // ---- Or-parallel protocol (orp/*.cpp) ----------------------------------
  void orp_idle_step();
  // LAO hook: attempts to reuse an exhausted top choice point in place
  // (returns true if reused; bt_ then references the recycled frame).
  bool lao_try_reuse(Addr goal, const Predicate* pred, const PredIndex& ix,
                     const IndexKey& key, Ref cut_parent,
                     std::uint32_t next_bucket_pos, long last_ordinal);
  // Takes the next alternative of a shared (public) choice point; -1 when
  // exhausted or the node moved on (LAO refill generation mismatch). For
  // clause nodes, *ix_out receives the index view the ordinal was drawn
  // from — the caller must instantiate through that same view.
  long shared_take(std::uint32_t shared_id, std::uint64_t expected_gen,
                   const PredIndex** ix_out = nullptr);
  // Cancels a public node when the dying frame still owns its current
  // incarnation (LAO refills bump the generation; a stale copy's death
  // must not kill the refilled node).
  void orp_cancel_node(std::uint32_t shared_id, std::uint64_t frame_gen);

  // Section unwinding (the markers' job).
  //
  // A slot's recorded control ranges can go stale: after the slot's frames
  // are marked dead cross-agent, the owning agent's pop_dead_suffix may
  // recycle those positions for unrelated new work. Range unwinding
  // therefore verifies each frame's context chain really descends from the
  // slot being unwound before touching it.
  bool ctx_within_slot(std::uint32_t frame_pf, std::uint32_t frame_slot,
                       std::uint32_t pf_id, std::uint32_t slot_idx);
  void unwind_part_range(const SectionPart& part, std::uint32_t pf_id,
                         std::uint32_t slot_idx);
  void unwind_slot(std::uint32_t pf_id, std::uint32_t slot_idx);
  void unwind_parcall(std::uint32_t pf_id);
  void open_new_part(Slot& slot);
  void close_current_part();
  Slot& cur_slot_ref();
  Parcall& parcall(std::uint32_t pf_id);

  std::uint64_t now() const { return clock_; }
};

}  // namespace ace
