// Result types shared by the engine facades, the CLI tools, and the
// serving layer.
//
// SolveResult is the engine-internal form: raw solutions plus the
// virtual-time and per-agent counter surfaces the paper's measurements are
// built from.
//
// QueryResult is the versioned, wire-facing response (v2): one outcome
// enum covering completion, failure, every stop cause and admission
// overload; the per-query Counters delta; latency/queue accounting from
// the serving layer; and an optional trace handle tying the response to
// its spans in an obs::Recorder. `ace_serve` emits it as JSON-lines (one
// to_json() object per line); `Engine::query()` returns it directly on
// the CLI path, so both paths speak the same type.
#pragma once

#include <chrono>
#include <climits>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/attrib.hpp"
#include "stats/stats.hpp"
#include "support/cancel.hpp"
#include "tab/dep.hpp"

namespace ace {

struct SolveResult {
  std::vector<std::string> solutions;  // "X = 1, Y = f(Z)" per solution
  std::uint64_t virtual_time = 0;
  Counters stats;           // aggregated over all agents
  std::vector<Counters> per_agent;  // one entry per agent (parallel engines)
  std::vector<std::uint64_t> agent_clocks;
  // Virtual-time attribution (always on). Invariants: per-agent totals
  // equal the agent clocks; `attrib` is the sum over agents (so its total
  // is Σ agent_clocks, not the makespan).
  AttribBreakdown attrib;
  std::vector<AttribBreakdown> per_agent_attrib;
  // Per-predicate rows per agent; empty unless EngineConfig::attrib.
  std::vector<std::vector<PredAttrib>> per_agent_preds;
  // Estimated per-schema savings derived from the optimization trigger
  // counters and the cost model.
  SchemaSavings savings;
  std::string output;  // text written by write/1
  // Why the run ended early (None = ran to completion / solution cap).
  // Cancelled and Deadline stops still return the solutions found so far.
  StopCause stop = StopCause::None;
  // Wall-clock phase boundaries stamped by EngineSession::run (steady
  // clock; zero when the solve ran outside a session). Virtual time above
  // is untouched by these — they only feed the serving phase timelines.
  std::chrono::steady_clock::time_point wall_parse_done{};
  std::chrono::steady_clock::time_point wall_run_done{};
  // Query-dependency record for the serving result cache, merged over all
  // agents; filled only when the session ran with collect_deps (the
  // default engine paths leave it empty and pay nothing).
  std::vector<tab::TableDep> query_deps;
  bool deps_tracked = false;  // query_deps is meaningful
  bool deps_tabled = false;   // run touched the tabling subsystem
};

// Renders a per-agent breakdown table (work distribution, steals, idle
// time, markers) for a parallel run.
std::string per_agent_report(const SolveResult& result);

// Terminal state of one query, as seen by a client.
enum class QueryOutcome : std::uint8_t {
  Success,          // ran to completion / solution cap, >= 1 solution
  Fail,             // ran to completion, no solution (a Prolog "no")
  Cancelled,        // stopped by external cancel; partials included
  DeadlineExpired,  // wall-clock deadline hit; partials included
  Overload,         // shed at admission (queue full / service stopping)
  Error,            // parse/engine error or resolution-budget exhaustion
};

const char* query_outcome_name(QueryOutcome o);

// Wall-clock phase breakdown of one served query. The phases are
// contiguous by construction (each boundary timestamp ends one phase and
// starts the next), so total_ns() is exactly the admit-to-respond wall
// time the serving layer measured — QueryResult::latency is derived from
// the same boundaries.
struct PhaseNanos {
  std::uint64_t queue_ns = 0;    // admit -> picked up by a dispatch thread
  std::uint64_t acquire_ns = 0;  // session checkout (pool hit or cold build)
  std::uint64_t parse_ns = 0;    // query-text parse + load
  std::uint64_t run_ns = 0;      // engine drive loop
  std::uint64_t render_ns = 0;   // response build + bookkeeping
  bool present = false;          // false for CLI-path results

  std::uint64_t total_ns() const {
    return queue_ns + acquire_ns + parse_ns + run_ns + render_ns;
  }
};

// The single response type for serve and CLI paths. Versioned: kVersion
// bumps (and is emitted as "v" in JSON) whenever the wire shape changes.
struct QueryResult {
  static constexpr int kVersion = 2;

  std::uint64_t id = 0;
  QueryOutcome outcome = QueryOutcome::Error;
  std::string query;                   // the '.'-terminated goal text
  std::vector<std::string> solutions;
  std::string output;                  // write/1 text
  std::string error;                   // set when outcome == Error
  Counters stats;                      // per-query delta (all agents)
  std::uint64_t virtual_time = 0;
  // Per-category attribution summed over agents (total == Σ agent clocks)
  // and the derived per-schema savings estimate.
  AttribBreakdown attrib;
  SchemaSavings savings;
  bool engine_reused = false;          // served by a warm pooled session
  // Served from the canonicalized result cache: the engine never ran, so
  // stats/virtual_time/attrib are zero. Emitted in JSON only when true
  // (the v2 wire shape is unchanged for uncached responses).
  bool cache_hit = false;
  std::chrono::microseconds queue_wait{0};
  std::chrono::microseconds latency{0};
  // Wall-clock phase breakdown (serve path only; phases.present gates the
  // JSON block). Phases partition `latency` exactly.
  PhaseNanos phases;
  // Non-zero when the query ran with an obs::Recorder attached: the qid
  // its spans/events are stamped with in the exported trace.
  std::uint64_t trace_id = 0;

  // Ran to completion (with or without solutions).
  bool completed() const {
    return outcome == QueryOutcome::Success || outcome == QueryOutcome::Fail;
  }

  // Fills outcome/solutions/output/stats from an engine SolveResult.
  void absorb(SolveResult&& r);

  // One JSON object (no trailing newline). `include_stats` controls the
  // per-query counter block, `include_solutions` the solution strings.
  std::string to_json(bool include_stats = true,
                      bool include_solutions = true) const;
};

}  // namespace ace
