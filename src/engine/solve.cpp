// Goal-list completion, findall/3 nested execution, and the per-agent
// report helper.
#include "engine/worker.hpp"
#include "serve/session.hpp"
#include "support/strutil.hpp"
#include "support/table.hpp"

namespace ace {

void Worker::on_goals_done() {
  if (!nested_.empty()) {
    nested_solution();
    return;
  }
  if (cur_pf_ != kNoPf) {
    complete_slot();
    return;
  }
  ++stats_.solutions;
  trace(TraceEvent::Solution);
  mode_ = Mode::SolutionPause;
}

void Worker::begin_nested(Addr template_term, Addr goal, Addr result_var) {
  NestedCtx ctx;
  ctx.template_term = template_term;
  ctx.result_var = result_var;
  ctx.saved_glist = glist_;
  ctx.saved_bt = bt_;
  ctx.trail_mark = trail_.size();
  ctx.heap_mark = heap_size();
  ctx.garena_mark = garena_.size();
  ctx.ctrl_mark = static_cast<std::uint32_t>(ctrl_.size());
  nested_.push_back(std::move(ctx));
  // Run the goal on a fresh backtrack chain; cut inside is local.
  bt_ = kNoRef;
  glist_ = push_goal(goal, kNoRef, kNoRef);
  mode_ = Mode::Run;
}

void Worker::nested_solution() {
  NestedCtx& ctx = nested_.back();
  if (ctx.kind == NestedCtx::Kind::TabGen) {
    tab_gen_solution();
    return;
  }
  ctx.collected.push_back(term_to_template(store_, ctx.template_term));
  charge(CostCat::kBuiltin, ctx.collected.back().cells.size() * costs_.heap_cell);
  mode_ = Mode::Backtrack;  // enumerate the next solution
}

void Worker::nested_exhausted() {
  if (nested_.back().kind == NestedCtx::Kind::TabGen) {
    // Generator pass exhausted: fixpoint driver (engine/tabling.cpp) —
    // re-run, suspend, or complete the SCC. It pops the context itself.
    tab_gen_exhausted();
    return;
  }
  NestedCtx ctx = std::move(nested_.back());
  nested_.pop_back();
  // Roll the nested execution back completely.
  untrail_charge(ctx.trail_mark);
  std::uint32_t top = static_cast<std::uint32_t>(ctrl_.size());
  for (std::uint32_t i = top; i-- > ctx.ctrl_mark;) {
    mark_frame_dead(*this, i);
  }
  ctrl_.truncate(ctx.ctrl_mark);
  garena_.truncate(ctx.garena_mark);
  store_.truncate(seg(), ctx.heap_mark);
  glist_ = ctx.saved_glist;
  bt_ = ctx.saved_bt;

  // Materialize the collected solutions as a list.
  std::vector<Addr> items;
  items.reserve(ctx.collected.size());
  for (const TermTemplate& tmpl : ctx.collected) {
    items.push_back(instantiate(store_, seg(), tmpl));
    stats_.heap_cells += tmpl.instantiation_cost();
    charge(CostCat::kBuiltin, tmpl.instantiation_cost() * costs_.heap_cell);
  }
  Addr list = heap_list(store_, seg(), items, syms_.known().nil);
  stats_.heap_cells += 2 * items.size() + 1;
  if (unify_charge(ctx.result_var, list)) {
    mode_ = Mode::Run;
  } else {
    mode_ = Mode::Backtrack;
  }
}

std::string per_agent_report(const SolveResult& result) {
  TextTable table({"agent", "clock", "resolutions", "fetches", "steals",
                   "idle", "markers", "cp", "untrail"});
  for (std::size_t a = 0; a < result.per_agent.size(); ++a) {
    const Counters& c = result.per_agent[a];
    std::uint64_t clock =
        a < result.agent_clocks.size() ? result.agent_clocks[a] : 0;
    table.add_row(
        {strf("%zu", a), strf("%llu", (unsigned long long)clock),
         strf("%llu", (unsigned long long)c.resolutions),
         strf("%llu", (unsigned long long)c.fetches),
         strf("%llu", (unsigned long long)c.steals),
         strf("%llu", (unsigned long long)c.idle_ticks),
         strf("%llu",
              (unsigned long long)(c.input_markers + c.end_markers)),
         strf("%llu", (unsigned long long)c.choicepoints),
         strf("%llu", (unsigned long long)c.untrail_ops)});
  }
  return table.render();
}

}  // namespace ace
