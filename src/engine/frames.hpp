// Control-stack frames, continuation (goal list) nodes and global frame
// references.
//
// The engines never walk raw stacks to backtrack; they follow the logical
// backtrack chain (Choice.prev_bt / Parcall.prev_bt), which may cross agent
// stacks. Physical stack *sections* (per-slot ranges of ctrl/trail/heap/goal
// arenas) are tracked by the and-parallel machinery and unwound explicitly —
// this is the role the paper's input/end markers play, and the SHALLOW/PDO
// optimizations elide exactly these marker frames.
#pragma once

#include <cstdint>

#include "db/predicate.hpp"
#include "term/cell.hpp"

namespace ace {

namespace tab {
struct CompletedTable;
}

// Global reference to a frame or goal node: (agent << 32) | index.
using Ref = std::uint64_t;
constexpr Ref kNoRef = ~std::uint64_t{0};
constexpr Ref make_ref(unsigned agent, std::uint64_t index) {
  return (Ref{agent} << 32) | index;
}
constexpr unsigned ref_agent(Ref r) { return static_cast<unsigned>(r >> 32); }
constexpr std::uint32_t ref_index(Ref r) {
  return static_cast<std::uint32_t>(r);
}

constexpr std::uint32_t kNoPf = ~std::uint32_t{0};
constexpr std::uint32_t kNoShare = ~std::uint32_t{0};
constexpr std::uint32_t kNoTab = ~std::uint32_t{0};

// Worker::shared_take() result for a term-alternative public node: the
// single term alternative was granted to the caller (>= 0 results are
// clause ordinals; -1 means exhausted).
constexpr long kTakeTermAlt = -2;

// One continuation node. Goal lists are immutable linked lists allocated in
// per-agent arenas; a choice point saves a single Ref to restore the whole
// continuation.
struct GoalNode {
  Addr goal = 0;
  Ref next = kNoRef;
  // The backtrack chain value to restore when a cut in this goal executes
  // (the bt register at entry of the clause this goal belongs to).
  Ref cut_parent = kNoRef;
};

enum class FrameKind : std::uint8_t {
  Choice,
  Parcall,
  InMarker,
  EndMarker,
  Dead,
};

// What a Choice frame iterates over.
enum class AltKind : std::uint8_t {
  Clauses,   // remaining matching clauses of a predicate
  Term,      // a single alternative goal term (disjunction right branch)
  IteElse,   // like Term, but killed by '$ite_commit' when the cond succeeds
  Catch,     // catch/3 marker: transparent to backtracking, a target for
             // throw/1 (call_goal = catcher, alt_term = recovery goal)
  TabAnswers,  // tabled-call consumer: iterates a memo table's answers
               // (bucket_pos = next answer index; tab_done set for
               // completed tables — shareable like Clauses — else
               // tab_local indexes the worker's in-progress table)
};

// A control frame. One struct covers all kinds (wasted fields are cheap and
// keep the stack a flat vector); `kind` selects the meaning.
struct Frame {
  FrameKind kind = FrameKind::Dead;

  // --- Choice ---
  AltKind alt_kind = AltKind::Clauses;
  Addr call_goal = 0;        // the call being retried (Clauses)
  Addr alt_term = 0;         // the alternative body (Term/IteElse)
  Ref cont = kNoRef;         // continuation after the retried goal
  Ref cut_parent = kNoRef;   // saved cut barrier of the retried goal
  const Predicate* pred = nullptr;
  IndexKey key;
  std::uint64_t pred_gen = 0;
  std::uint32_t bucket_pos = 0;  // next candidate within the index bucket
  long last_ordinal = -1;        // fallback scan cursor (dynamic preds)
  // Restore marks, local to the frame's own agent.
  std::uint64_t trail_mark = 0;
  std::uint64_t heap_mark = 0;
  std::uint64_t garena_mark = 0;
  std::uint32_t ctrl_mark = 0;   // own index; frames above die on restore
  Ref prev_bt = kNoRef;
  std::uint32_t part_idx = 0;    // which section part of the slot we sit in
  std::uint32_t shared_id = kNoShare;  // or-parallel public-node handle

  // --- TabAnswers ---
  // Exactly one of these identifies the answer source: tab_done points at
  // an immutable completed table (pinned by the owning worker for the
  // whole query, so raw pointers stay valid across or-parallel sharing);
  // tab_local indexes the worker's own in-progress table (never shared —
  // workers with live generators are excluded from sharing sessions).
  const tab::CompletedTable* tab_done = nullptr;
  std::uint32_t tab_local = kNoTab;

  // --- Parcall / markers ---
  std::uint32_t pf_id = kNoPf;
  std::uint32_t slot_idx = 0;
};

}  // namespace ace
