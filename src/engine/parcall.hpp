// Parcall frames and goal slots — the &ACE data structures for independent
// and-parallel execution (paper Section 2, Figure 2).
//
// A Parcall describes one parallel conjunction (g1 & ... & gn). Each Slot
// holds one subgoal plus the bookkeeping the markers support: which agent
// executed it, the stack/trail section(s) it occupies, and its newest
// internal backtrack point. Slots are stored append-only; *logical* order
// (the sequential semantics order used by right-to-left outside
// backtracking) is a doubly linked list through `order_prev`/`order_next`,
// which lets LPCO splice flattened subgoals in place of the goal they came
// from in O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/frames.hpp"
#include "support/chunked_vector.hpp"

namespace ace {

constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

// A contiguous range of one agent's stacks belonging to one slot execution.
// A slot that is re-entered by outside backtracking accumulates parts on
// the backtracking agent's stacks.
struct SectionPart {
  unsigned agent = 0;
  std::uint64_t trail_lo = 0, trail_hi = 0;
  std::uint32_t ctrl_lo = 0, ctrl_hi = 0;
  std::uint64_t garena_lo = 0, garena_hi = 0;
  std::uint64_t heap_lo = 0, heap_hi = 0;
  bool open = true;  // still being written by its agent
};

enum class SlotState : std::uint8_t {
  Pending,     // available for (re)execution
  Executing,
  Succeeded,
  Exhausted,   // alternatives used up during outside backtracking
  Aborted,     // abandoned by its executor (parcall failure kill); parts
               // remain until the failure coordinator unwinds them
  Dead,        // unwound (parcall failed/flattened away)
};

struct Slot {
  Addr goal = 0;
  // Atomic: the real-thread runtime reads slot states outside pf.mu
  // (work-pool prefilters, sticky dispatch, continuation resume) and
  // revalidates under the mutex before acting. The seq_cst store in the
  // writer / load in the reader also carries the happens-before for the
  // plain fields and stack sections published alongside a transition.
  std::atomic<SlotState> state{SlotState::Pending};
  unsigned exec_agent = 0;
  bool resumed = false;       // executing under outside backtracking
  Ref newest_bt = kNoRef;     // newest Choice/Parcall ref inside the slot
  std::vector<SectionPart> parts;
  std::vector<std::uint32_t> child_pfs;  // parcalls created inside this slot

  // Marker bookkeeping (what SHALLOW and PDO optimize away).
  bool marker_pending = false;  // SHALLOW: input marker procrastinated
  bool pdo_merged = false;      // PDO: continues the previous slot's section
  Ref in_marker = kNoRef;
  Ref end_marker = kNoRef;

  // Logical order links (slot ids within the same Parcall).
  std::uint32_t order_prev = kNoSlot;
  std::uint32_t order_next = kNoSlot;

  // LPCO lineage: the merged slot whose flattening created this slot, or
  // kNoSlot. When the parent is reset for recomputation its children are
  // deleted from the order list — the parent's re-execution re-merges and
  // re-creates them (fresh clause instance, fresh variables).
  std::uint32_t lpco_parent = kNoSlot;

  // Resolved once at slot creation under --static-facts: the slot goal's
  // predicate is statically determinate, so the determinacy half of the
  // LPCO/SHALLOW/PDO applicability checks involving this slot is proven
  // and the charged runtime test is elided (the tests themselves still
  // run; only the virtual-time charge is skipped).
  bool static_det = false;

  std::uint64_t publish_time = 0;  // virtual time when made fetchable

  // The atomic state member deletes the implicit copy operations; slots
  // are still copied when appended to a parcall's slot list, so spell the
  // copies out (a copy observes a quiescent slot — construction before
  // publication, or the holder of pf.mu).
  Slot() = default;
  Slot(const Slot& o) { *this = o; }
  Slot& operator=(const Slot& o) {
    if (this == &o) return *this;
    goal = o.goal;
    state.store(o.state.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    exec_agent = o.exec_agent;
    resumed = o.resumed;
    newest_bt = o.newest_bt;
    parts = o.parts;
    child_pfs = o.child_pfs;
    marker_pending = o.marker_pending;
    pdo_merged = o.pdo_merged;
    in_marker = o.in_marker;
    end_marker = o.end_marker;
    order_prev = o.order_prev;
    order_next = o.order_next;
    lpco_parent = o.lpco_parent;
    static_det = o.static_det;
    publish_time = o.publish_time;
    return *this;
  }
};

enum class PfState : std::uint8_t {
  Forward,    // slots executing toward first completion
  Complete,   // all slots succeeded; continuation may run
  Failing,    // some slot failed; being torn down
  Dead,
};

struct Parcall {
  std::uint32_t id = 0;
  unsigned owner = 0;           // agent that created the parcall
  Ref frame = kNoRef;           // the Parcall frame on the owner's stack
  Ref prev_bt = kNoRef;         // owner's backtrack chain below the parcall
  Ref cont = kNoRef;            // continuation goal list after the parcall
  std::uint32_t creator_pf = kNoPf;  // enclosing slot context of the owner
  std::uint32_t creator_slot = 0;

  // Stable-address, grow-only: agents read slots of a published parcall
  // without pf.mu (appends — parcall creation before publication, LPCO
  // flattening under pf.mu — are serialized; a std::vector's relocation
  // would race with those readers).
  StableChunkList<Slot, 12, 1> slots;
  std::uint32_t order_head = kNoSlot;  // leftmost slot in logical order
  std::uint32_t order_tail = kNoSlot;

  // Atomic for the same reason as Slot::state: prefilter reads happen
  // outside pf.mu, and the failure coordinator publishes Dead directly.
  std::atomic<PfState> state{PfState::Forward};
  std::atomic<std::uint32_t> pending{0};  // slots not yet Succeeded

  // Continuation-resume marks, taken on the coordinator's stacks each time
  // the continuation starts, so outside backtracking can undo the
  // continuation's work. `owner` is dynamic: an agent re-entering the
  // parcall takes over coordination (the original creator may long be busy
  // elsewhere).
  unsigned cont_agent = 0;
  std::uint32_t cont_part_idx = 0;  // part of the enclosing slot
  std::uint64_t cont_trail_mark = 0;
  std::uint64_t cont_garena_mark = 0;
  std::uint64_t cont_heap_mark = 0;
  std::uint32_t cont_ctrl_mark = 0;

  // Guards slot-state transitions in the real-thread runtime.
  std::mutex mu;

  // Appends a slot and links it at the tail of the logical order.
  std::uint32_t append_slot(Slot s);
  // Appends a slot and links it right after `after` in logical order.
  std::uint32_t insert_slot_after(Slot s, std::uint32_t after);
};

}  // namespace ace
