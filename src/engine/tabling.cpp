// SLG tabling: call interception, generator fixpoint driver, answer
// consumption. See src/tab/eval.hpp for the evaluation-strategy overview
// and docs/tabling.md for the user-facing contract.
#include "engine/worker.hpp"
#include "term/build.hpp"
#include "term/canon.hpp"

namespace ace {

bool Worker::tab_call(Addr goal, std::uint32_t sym, unsigned arity) {
  {
    // Tabled-predicate gate: lock-free snapshot lookup on a stable handle
    // plus one relaxed flag read — no index version is touched here.
    const Predicate* pred = snap_.find(sym, arity);
    if (pred == nullptr || !pred->is_tabled()) return false;
  }

  // One lump charge covers canonicalization plus the table probes; answer
  // consumption is charged per answer cell as answers are taken.
  charge(CostCat::kTableLookup, costs_.table_lookup);
  std::string key;
  canonical_term_key_into(store_, goal, &key);

  // 1. Completed table already pinned by this query?
  if (auto it = tab_done_.find(key); it != tab_done_.end()) {
    ++stats_.table_hits;
    tab_union_deps(*it->second);
    tab_push_consumer(goal, kNoTab, it->second.get());
    return true;
  }

  // 2. Known to this query's local evaluation?
  if (auto it = tab_local_ix_.find(key); it != tab_local_ix_.end()) {
    const std::uint32_t ti = it->second;
    tab::LocalTable& t = *tab_tables_[ti];
    if (t.active) {
      // Variant call under its own live generator: consume the answers
      // recorded so far, then fail (the SLG suspension); the leader's
      // fixpoint re-runs pick up later answers. Propagate the Tarjan
      // low-link so the SCC is completed as a unit.
      if (!tab_gens_.empty()) {
        tab::GenFrame& g = tab_gens_.back();
        g.low = std::min(g.low, t.dfn);
      }
      tab_push_consumer(goal, ti, nullptr);
      return true;
    }
    // Inactive and incomplete: a previous generator pass was abandoned
    // (non-leader exhaustion or an exception). Restart the generator,
    // keeping the answers accumulated so far.
    ++stats_.table_misses;
    begin_tab_gen(goal, sym, arity, ti);
    return true;
  }

  // 3. Cross-query serving cache (counts its own hit/miss statistics).
  if (tabsp_ != nullptr) {
    if (auto done = tabsp_->lookup(key)) {
      ++stats_.table_hits;
      tab_union_deps(*done);
      const tab::CompletedTable* raw = done.get();
      tab_done_.emplace(key, std::move(done));  // pin for this query
      tab_push_consumer(goal, kNoTab, raw);
      return true;
    }
  }

  // 4. New subgoal: become its generator.
  ++stats_.table_misses;
  const std::uint32_t ti = static_cast<std::uint32_t>(tab_tables_.size());
  auto table = std::make_unique<tab::LocalTable>();
  table->key = key;
  table->sym = sym;
  table->arity = arity;
  tab_tables_.push_back(std::move(table));
  tab_local_ix_.emplace(std::move(key), ti);
  begin_tab_gen(goal, sym, arity, ti);
  return true;
}

void Worker::begin_tab_gen(Addr goal, std::uint32_t sym, unsigned arity,
                           std::uint32_t table_idx) {
  tab::LocalTable& t = *tab_tables_[table_idx];
  t.active = true;
  t.dfn = ++tab_next_dfn_;

  // The re-runnable pass goal '$tab_gen'(gen_index) is allocated *before*
  // the nested context takes its heap mark, so fixpoint rollbacks keep it.
  const std::uint32_t gen_idx = static_cast<std::uint32_t>(tab_gens_.size());
  Addr wrapper =
      heap_struct(store_, seg(), builtins_.tab_gen_sym(),
                  {heap_int(store_, seg(), static_cast<std::int64_t>(gen_idx))});
  stats_.heap_cells += 3;
  charge(CostCat::kTableInsert, costs_.table_insert + 3 * costs_.heap_cell);

  tab::GenFrame g;
  g.table_idx = table_idx;
  g.dfn = t.dfn;
  g.low = t.dfn;
  g.pass_epoch = tab_epoch_;
  g.passes = 1;
  g.goal = goal;
  g.wrapper = wrapper;
  g.sym = sym;
  g.arity = arity;
  tab_gens_.push_back(g);

  NestedCtx ctx;
  ctx.kind = NestedCtx::Kind::TabGen;
  ctx.template_term = goal;
  ctx.saved_glist = glist_;
  ctx.saved_bt = bt_;
  ctx.trail_mark = trail_.size();
  ctx.heap_mark = heap_size();
  ctx.garena_mark = garena_.size();
  ctx.ctrl_mark = static_cast<std::uint32_t>(ctrl_.size());
  nested_.push_back(std::move(ctx));
  // The pass runs on a fresh backtrack chain, like findall: cut inside the
  // tabled predicate's clauses is local to the current pass.
  bt_ = kNoRef;
  glist_ = push_goal(wrapper, kNoRef, kNoRef);
  mode_ = Mode::Run;
}

void Worker::tab_gen_solution() {
  NestedCtx& ctx = nested_.back();
  tab::GenFrame& g = tab_gens_.back();
  tab::LocalTable& t = *tab_tables_[g.table_idx];
  // The subgoal term now carries the answer substitution; its canonical
  // form is the dedup key (variant answers are one answer).
  std::string akey;
  canonical_term_key_into(store_, ctx.template_term, &akey);
  if (t.answer_keys.insert(std::move(akey)).second) {
    t.answers.push_back(term_to_template(store_, ctx.template_term));
    t.last_insert_epoch = ++tab_epoch_;
    ++stats_.table_inserts;
    charge(CostCat::kTableInsert,
           costs_.table_insert +
               t.answers.back().cells.size() * costs_.heap_cell);
  } else {
    // Duplicate: the probe is the whole cost.
    charge(CostCat::kTableLookup, costs_.table_lookup);
  }
  mode_ = Mode::Backtrack;  // enumerate the next clause solution
}

namespace {

// Rolls back one nested region (trail, control, goal arena, heap) exactly
// as nested_exhausted does for findall.
void rollback_nested_region(Worker& w, const NestedCtx& ctx) {
  w.untrail_charge(ctx.trail_mark);
  std::uint32_t top = static_cast<std::uint32_t>(w.ctrl_.size());
  for (std::uint32_t i = top; i-- > ctx.ctrl_mark;) {
    w.mark_frame_dead(w, i);
  }
  w.ctrl_.truncate(ctx.ctrl_mark);
  w.garena_.truncate(ctx.garena_mark);
  w.store_.truncate(w.seg(), ctx.heap_mark);
}

}  // namespace

void Worker::tab_gen_exhausted() {
  tab::GenFrame& g = tab_gens_.back();

  if (g.low == g.dfn) {
    // Leader. Fixpoint test: did any table of this SCC — exactly the
    // incomplete tables with dfn >= ours, since generators stack in dfn
    // order and independent deeper SCCs completed before we exhausted —
    // gain an answer during this pass? Ancestors cannot gain answers while
    // suspended, so tables below our dfn never trigger a re-run.
    bool grew = false;
    for (const auto& tp : tab_tables_) {
      if (!tp->complete && tp->dfn >= g.dfn &&
          tp->last_insert_epoch > g.pass_epoch) {
        grew = true;
        break;
      }
    }
    if (grew) {
      // Re-run the pass from scratch against the bigger tables.
      rollback_nested_region(*this, nested_.back());
      g.low = g.dfn;
      g.pass_epoch = tab_epoch_;
      ++g.passes;
      ++stats_.table_resumes;
      charge(CostCat::kTableResume, costs_.table_resume);
      bt_ = kNoRef;
      glist_ = push_goal(g.wrapper, kNoRef, kNoRef);
      mode_ = Mode::Run;
      return;
    }

    // Fixpoint reached: complete the whole SCC.
    const std::uint32_t leader_dfn = g.dfn;
    NestedCtx ctx = std::move(nested_.back());
    nested_.pop_back();
    tab::GenFrame gen = g;
    tab_gens_.pop_back();
    rollback_nested_region(*this, ctx);
    glist_ = ctx.saved_glist;
    bt_ = ctx.saved_bt;

    // Union the member tables' dependencies: every member's answers may
    // rest on every other member (mutual recursion), so they share one
    // dependency set.
    std::vector<tab::TableDep> deps;
    std::unordered_set<std::uint64_t> dep_set;
    for (const auto& tp : tab_tables_) {
      if (tp->complete || tp->dfn < leader_dfn) continue;
      for (const tab::TableDep& d : tp->deps) {
        const std::uint64_t k = (std::uint64_t{d.sym} << 32) | d.arity;
        if (dep_set.insert(k).second) deps.push_back(d);
      }
    }

    std::vector<std::shared_ptr<const tab::CompletedTable>> fresh;
    for (auto& tp : tab_tables_) {
      tab::LocalTable& t = *tp;
      if (t.complete || t.dfn < leader_dfn) continue;
      auto done = std::make_shared<tab::CompletedTable>();
      done->key = t.key;
      done->sym = t.sym;
      done->arity = t.arity;
      done->answers = std::move(t.answers);
      done->deps = deps;
      t.done = done;
      t.complete = true;
      t.active = false;
      tab_done_[t.key] = done;
      fresh.push_back(std::move(done));
      ++stats_.table_completions;
      charge(CostCat::kTableInsert, costs_.table_insert);
    }

    // Publish to the cross-query cache — only if no dependency changed
    // under us while the answers were being derived (a concurrent session
    // asserting into an edge relation mid-derivation must not plant a
    // stale table). The local completion stands either way: this query
    // keeps its logical-update-view snapshot.
    if (tabsp_ != nullptr) {
      bool stable = true;
      for (const tab::TableDep& d : deps) {
        const Predicate* p = snap_.find(d.sym, d.arity);
        if (p == nullptr || p->generation() != d.gen) {
          stable = false;
          break;
        }
      }
      if (stable) {
        for (auto& done : fresh) tabsp_->insert(done);
        // Re-verify after the insert (lock-free double-check): a mutation
        // publishing between the check above and the insert may have fired
        // its change hook while our keys were not in the space yet, so the
        // hook could not drop them. Seeing the newer generation here means
        // exactly that race happened — drop the affected tables ourselves.
        // A mutation publishing after this re-check fires its hook after
        // our insert and invalidates the registered keys normally.
        for (const tab::TableDep& d : deps) {
          const Predicate* p = snap_.find(d.sym, d.arity);
          if (p == nullptr || p->generation() != d.gen) {
            tabsp_->invalidate_pred(d.sym, d.arity);
          }
        }
      }
    }

    // The SCC's answers may feed an enclosing generator.
    tab_union_deps(*tab_tables_[gen.table_idx]->done);
    // Resume the original call as a consumer of its completed table.
    tab_push_consumer(gen.goal, kNoTab,
                      tab_tables_[gen.table_idx]->done.get());
    return;
  }

  // Non-leader: this generator's SCC extends below it. Suspend — record
  // the low-link with the parent generator, leave the table inactive but
  // incomplete, and turn the call into a consumer of the answers so far.
  // The leader's next pass restarts this generator (tab_call case 2).
  NestedCtx ctx = std::move(nested_.back());
  nested_.pop_back();
  tab::GenFrame gen = g;
  tab_gens_.pop_back();
  rollback_nested_region(*this, ctx);
  glist_ = ctx.saved_glist;
  bt_ = ctx.saved_bt;

  tab::LocalTable& t = *tab_tables_[gen.table_idx];
  t.active = false;
  ACE_CHECK(!tab_gens_.empty());  // a non-leader always has a parent
  tab::GenFrame& parent = tab_gens_.back();
  parent.low = std::min(parent.low, gen.low);
  ++stats_.table_suspends;
  charge(CostCat::kTableSuspend, costs_.table_suspend);
  tab_push_consumer(gen.goal, gen.table_idx, nullptr);
}

void Worker::tab_push_consumer(Addr goal, std::uint32_t local_ix,
                               const tab::CompletedTable* done) {
  Frame f;
  f.kind = FrameKind::Choice;
  f.alt_kind = AltKind::TabAnswers;
  f.call_goal = goal;
  f.cont = glist_;
  f.cut_parent = bt_;
  f.tab_done = done;
  f.tab_local = done == nullptr ? local_ix : kNoTab;
  f.bucket_pos = 0;  // next answer index
  f.trail_mark = trail_.size();
  f.heap_mark = heap_size();
  f.garena_mark = garena_.size();
  f.prev_bt = bt_;
  f.pf_id = cur_pf_;
  f.slot_idx = cur_slot_;
  if (cur_pf_ != kNoPf) {
    Slot& s = cur_slot_ref();
    f.part_idx = static_cast<std::uint32_t>(s.parts.size()) - 1;
  }
  std::uint32_t idx = static_cast<std::uint32_t>(ctrl_.size());
  f.ctrl_mark = idx;
  ctrl_.push_back(f);
  bt_ = make_ref(agent_, idx);
  ++stats_.choicepoints;
  // Completed-table consumers are shareable (their answers can be taken by
  // or-parallel thieves); local consumers never leave this worker.
  if (orp_ != nullptr && done != nullptr) ++private_cps_;
  charge(CostCat::kBacktrack, costs_.choicepoint);
  note_ctrl_alloc(kWordsChoicePoint);

  Frame snapshot = ctrl_[idx];
  tab_retry_answers(bt_, snapshot);
}

void Worker::tab_retry_answers(Ref cref, Frame& snapshot) {
  const std::vector<TermTemplate>* answers;
  const bool local = snapshot.tab_done == nullptr;
  if (local) {
    answers = &tab_tables_[snapshot.tab_local]->answers;
  } else {
    answers = &snapshot.tab_done->answers;
  }

  while (snapshot.bucket_pos < answers->size()) {
    const TermTemplate& a = (*answers)[snapshot.bucket_pos];
    ++snapshot.bucket_pos;
    frame(cref).bucket_pos = snapshot.bucket_pos;
    Addr inst = instantiate(store_, seg(), a);
    stats_.heap_cells += a.instantiation_cost();
    charge(CostCat::kTableLookup, a.instantiation_cost() * costs_.heap_cell);
    if (unify_charge(snapshot.call_goal, inst)) {
      mode_ = Mode::Run;
      return;
    }
    // A variant call always unifies with its table's answers, but stay
    // robust (and keep enumerating) if an answer does not apply.
  }

  // Exhausted. A local (incomplete) table may still grow on a later
  // fixpoint pass — that is the SLG suspension, charged as such; the
  // frame pops either way (the re-run re-creates consumers from scratch).
  if (local) {
    ++stats_.table_suspends;
    charge(CostCat::kTableSuspend, costs_.table_suspend);
  }
  bt_ = snapshot.prev_bt;
  mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
  pop_dead_suffix();
  mode_ = Mode::Backtrack;
}

void Worker::tab_note_dep(std::uint32_t sym, unsigned arity,
                          std::uint64_t gen) {
  tab::LocalTable& t = *tab_tables_[tab_gens_.back().table_idx];
  t.add_dep(sym, arity, gen);
}

void Worker::tab_union_deps(const tab::CompletedTable& t) {
  if (tab_gens_.empty()) return;
  tab::LocalTable& inner = *tab_tables_[tab_gens_.back().table_idx];
  for (const tab::TableDep& d : t.deps) {
    inner.add_dep(d.sym, d.arity, d.gen);
  }
}

void Worker::tab_abort_gen() {
  ACE_CHECK(!tab_gens_.empty());
  tab_tables_[tab_gens_.back().table_idx]->active = false;
  tab_gens_.pop_back();
}

}  // namespace ace
