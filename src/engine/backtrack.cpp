// Backtracking: choice-point retry/restore, frame killing, and the
// section-range unwinding that the paper's markers exist to support.
#include "engine/worker.hpp"

namespace ace {
namespace {

std::uint64_t frame_words(FrameKind k) {
  switch (k) {
    case FrameKind::Choice:
      return kWordsChoicePoint;
    case FrameKind::Parcall:
      return kWordsParcallFrame;
    case FrameKind::InMarker:
      return kWordsInputMarker;
    case FrameKind::EndMarker:
      return kWordsEndMarker;
    case FrameKind::Dead:
      return 0;
  }
  return 0;
}

}  // namespace

void Worker::backtrack_step() {
  if (bt_ == kNoRef) {
    if (!nested_.empty()) {
      nested_exhausted();
      return;
    }
    if (cur_pf_ != kNoPf) {
      if (cur_slot_ref().resumed) {
        slot_resumed_failure();
      } else {
        slot_initial_failure();
      }
      return;
    }
    if (orp_ != nullptr) {
      // This worker's copy of the search tree is exhausted; go idle and
      // look for public alternatives elsewhere. Global exhaustion is
      // decided by the or-parallel machine.
      mode_ = Mode::Idle;
      return;
    }
    mode_ = Mode::Done;  // top-level query exhausted
    return;
  }
  Frame& f = frame(bt_);
  if (f.kind == FrameKind::Choice) {
    retry_choice_alternative(bt_);
    return;
  }
  ACE_CHECK(f.kind == FrameKind::Parcall);
  parcall_outside_backtrack(f.pf_id);
}

void Worker::retry_choice_alternative(Ref cref) {
  ++stats_.cp_restores;
  charge(CostCat::kBacktrack, costs_.cp_restore);
  // Candidate buckets, predicate generations and clause templates are read
  // below through the worker's step-scoped snapshot pin: concurrently
  // served assert/retract publish *new* index versions, so every view
  // loaded here stays alive and internally consistent for the whole retry.
  // Each scoped read below loads its view exactly once.
  restore_choice(cref);

  // Copy the immutable fields; the frame may be popped below.
  Frame snapshot = frame(cref);
  bt_ = cref;
  glist_ = snapshot.cont;

  if (snapshot.shared_id != kNoShare) {
    // Public (shared) choice point: alternatives come from the shared
    // node's counter. Never trust-popped — the node may be refilled (LAO)
    // or drained by thieves.
    for (;;) {
      const PredIndex* tix = nullptr;
      long ord = shared_take(snapshot.shared_id, snapshot.pred_gen, &tix);
      if (ord == kTakeTermAlt) {
        glist_ = push_goal(snapshot.alt_term, snapshot.cont,
                           snapshot.cut_parent);
        mode_ = Mode::Run;
        return;
      }
      if (ord < 0) {
        bt_ = snapshot.prev_bt;
        mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
        pop_dead_suffix();
        mode_ = Mode::Backtrack;
        return;
      }
      if (snapshot.alt_kind == AltKind::TabAnswers) {
        // Shared memo-table consumer: ord indexes the completed table's
        // answers (only completed tables are ever published).
        const TermTemplate& a =
            snapshot.tab_done->answers[static_cast<std::size_t>(ord)];
        Addr inst = instantiate(store_, seg(), a);
        stats_.heap_cells += a.instantiation_cost();
        charge(CostCat::kTableLookup,
               a.instantiation_cost() * costs_.heap_cell);
        if (unify_charge(snapshot.call_goal, inst)) {
          mode_ = Mode::Run;
          return;
        }
        continue;
      }
      if (try_clause(*tix, static_cast<std::uint32_t>(ord),
                     snapshot.call_goal, snapshot.cut_parent)) {
        mode_ = Mode::Run;
        return;
      }
    }
  }

  if (snapshot.alt_kind == AltKind::TabAnswers) {
    tab_retry_answers(cref, snapshot);
    return;
  }

  if (snapshot.alt_kind == AltKind::Catch) {
    // catch/3 is transparent to failure: the frame just leaves the chain.
    bt_ = snapshot.prev_bt;
    mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
    pop_dead_suffix();
    mode_ = Mode::Backtrack;
    return;
  }

  if (snapshot.alt_kind != AltKind::Clauses) {
    // Single term alternative: pop the frame and run it.
    bt_ = snapshot.prev_bt;
    mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
    pop_dead_suffix();
    glist_ = push_goal(snapshot.alt_term, snapshot.cont, snapshot.cut_parent);
    mode_ = Mode::Run;
    return;
  }

  // One index view for the whole retry loop: the generation check, the
  // bucket iteration and every clause instantiation go through the same
  // published version (the step-scoped pin keeps it alive).
  const PredIndex& ix = snapshot.pred->index();
  for (;;) {
    long ord = -1;
    bool is_last = false;
    if (snapshot.pred_gen == ix.generation()) {
      const std::vector<std::uint32_t>& bucket = ix.candidates(snapshot.key);
      if (snapshot.bucket_pos < bucket.size()) {
        ord = static_cast<long>(bucket[snapshot.bucket_pos]);
        ++snapshot.bucket_pos;
        snapshot.last_ordinal = ord;
        is_last = snapshot.bucket_pos >= bucket.size();
      }
    } else {
      // The predicate changed under us (assert/retract): fall back to an
      // ordinal scan over the mutated clause list.
      ord = ix.next_matching_from(snapshot.key, snapshot.last_ordinal);
      if (ord >= 0) {
        snapshot.last_ordinal = ord;
        is_last = ix.next_matching_from(snapshot.key, ord) < 0;
      }
    }

    if (ord < 0) {
      // Exhausted: pop from the chain and keep backtracking.
      bt_ = snapshot.prev_bt;
      Frame& live = frame(cref);
      live.bucket_pos = snapshot.bucket_pos;
      live.last_ordinal = snapshot.last_ordinal;
      mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
      pop_dead_suffix();
      mode_ = Mode::Backtrack;
      return;
    }

    if (is_last && orp_ != nullptr && opts_.lao) {
      // LAO keeps the exhausted frame on top so the next choice point can
      // reuse it in place (the revisit on failure is part of LAO's cost —
      // the paper's 1-agent slowdown in Table 3).
      is_last = false;
      Frame& live = frame(cref);
      live.bucket_pos = snapshot.bucket_pos;
      live.last_ordinal = snapshot.last_ordinal;
    } else if (is_last) {
      // Trust: the frame leaves the chain before the last alternative runs.
      bt_ = snapshot.prev_bt;
      Frame& live = frame(cref);
      live.bucket_pos = snapshot.bucket_pos;
      live.last_ordinal = snapshot.last_ordinal;
      mark_frame_dead(peer(ref_agent(cref)), ref_index(cref));
      pop_dead_suffix();
    } else {
      Frame& live = frame(cref);
      live.bucket_pos = snapshot.bucket_pos;
      live.last_ordinal = snapshot.last_ordinal;
    }

    if (try_clause(ix, static_cast<std::uint32_t>(ord), snapshot.call_goal,
                   snapshot.cut_parent)) {
      mode_ = Mode::Run;
      return;
    }
    // Head unification failed; try the next candidate (the loop re-reads
    // the iterator from the snapshot, which we kept advancing).
    if (is_last) {
      // Nothing left; resume backtracking below.
      mode_ = Mode::Backtrack;
      return;
    }
  }
}

void Worker::do_throw(Addr ball) {
  // The ball is copied out (serialized) so it survives the unwinding, as
  // ISO requires.
  TermTemplate tmpl = term_to_template(store_, deref(store_, ball));
  std::string rendered = term_to_string(store_, syms_, ball);

  Ref r = bt_;
  for (;;) {
    if (r == kNoRef) {
      if (!nested_.empty()) {
        // Propagate out of a nested (findall / tabled-generator) context:
        // roll it back and continue unwinding the outer chain.
        if (nested_.back().kind == NestedCtx::Kind::TabGen) tab_abort_gen();
        NestedCtx ctx = std::move(nested_.back());
        nested_.pop_back();
        untrail_charge(ctx.trail_mark);
        std::uint32_t top = static_cast<std::uint32_t>(ctrl_.size());
        for (std::uint32_t i = top; i-- > ctx.ctrl_mark;) {
          mark_frame_dead(*this, i);
        }
        ctrl_.truncate(ctx.ctrl_mark);
        garena_.truncate(ctx.garena_mark);
        store_.truncate(seg(), ctx.heap_mark);
        r = ctx.saved_bt;
        continue;
      }
      throw AceError("uncaught exception: " + rendered);
    }
    Frame& f = frame(r);
    if (f.kind == FrameKind::Parcall) {
      // Exceptions do not cross independent-and-parallel boundaries (the
      // sibling computations would have to be killed under recovery
      // semantics the paper's model does not define).
      throw AceError("uncaught exception in parallel goal: " + rendered);
    }
    ACE_CHECK(f.kind == FrameKind::Choice);
    if (f.alt_kind == AltKind::Catch) {
      ++stats_.cp_restores;
      charge(CostCat::kBacktrack, costs_.cp_restore);
      restore_choice(r);
      Frame snapshot = frame(r);
      bt_ = snapshot.prev_bt;
      mark_frame_dead(peer(ref_agent(r)), ref_index(r));
      pop_dead_suffix();
      Addr ball2 = instantiate(store_, seg(), tmpl);
      stats_.heap_cells += tmpl.instantiation_cost();
      charge(CostCat::kUserWork, tmpl.instantiation_cost() * costs_.heap_cell);
      if (unify_charge(snapshot.call_goal, ball2)) {
        glist_ = push_goal(snapshot.alt_term, snapshot.cont,
                           snapshot.cut_parent);
        mode_ = Mode::Run;
        return;
      }
      // Catcher does not match: keep unwinding outward.
      r = snapshot.prev_bt;
      continue;
    }
    Ref next = f.prev_bt;
    mark_frame_dead(peer(ref_agent(r)), ref_index(r));
    r = next;
  }
}

void Worker::restore_choice(Ref cref) {
  Frame& f = frame(cref);
  Worker& owner = peer(ref_agent(cref));

  if (par_ == nullptr) {
    // Sequential / or-parallel: one agent, one stack — full reclamation.
    ACE_CHECK(&owner == this);
    std::uint32_t top = static_cast<std::uint32_t>(ctrl_.size());
    for (std::uint32_t i = f.ctrl_mark + 1; i < top; ++i) {
      Frame& dead = ctrl_[i];
      if (dead.kind != FrameKind::Dead) {
        ++stats_.backtrack_frames;
        charge(CostCat::kBacktrack, costs_.backtrack_frame);
        note_ctrl_free(frame_words(dead.kind));
        dead.kind = FrameKind::Dead;
      }
    }
    ctrl_.truncate(f.ctrl_mark + 1);
    untrail_charge(f.trail_mark);
    store_.truncate(seg(), f.heap_mark);
    garena_.truncate(f.garena_mark);
    return;
  }

  // And-parallel restore.
  bool own_open_region =
      ref_agent(cref) == agent_ && f.pf_id == cur_pf_ &&
      (cur_pf_ == kNoPf ||
       (f.slot_idx == cur_slot_ &&
        f.part_idx + 1 == cur_slot_ref().parts.size()));
  if (own_open_region) {
    kill_own_frames_above(ref_index(cref));
    untrail_charge(f.trail_mark);
    // Heap and goal arena are not truncated in parallel mode (sections may
    // be trapped under other work); they are reclaimed per query.
    return;
  }

  // Re-entry into a (closed) section of some slot — the outside
  // backtracking path set up by parcall_outside_backtrack.
  ACE_CHECK(f.pf_id != kNoPf);
  Parcall& pf = parcall(f.pf_id);
  Slot& s = pf.slots[f.slot_idx];
  // Kill parts newer than the choice's part.
  while (s.parts.size() > f.part_idx + 1) {
    unwind_part_range(s.parts.back(), f.pf_id, f.slot_idx);
    s.parts.pop_back();
  }
  SectionPart& part = s.parts[f.part_idx];
  ACE_CHECK(!part.open || part.agent == agent_);
  std::uint32_t hi = part.open
                         ? static_cast<std::uint32_t>(owner.ctrl_.size())
                         : part.ctrl_hi;
  if (hi > owner.ctrl_.size()) {
    hi = static_cast<std::uint32_t>(owner.ctrl_.size());
  }
  for (std::uint32_t i = hi; i-- > ref_index(cref) + 1;) {
    Frame& dead = owner.ctrl_[i];
    if (dead.kind == FrameKind::Dead) continue;
    std::uint32_t fpf;
    std::uint32_t fslot;
    if (dead.kind == FrameKind::Parcall) {
      Parcall& child = parcall(dead.pf_id);
      fpf = child.creator_pf;
      fslot = child.creator_slot;
    } else {
      fpf = dead.pf_id;
      fslot = dead.slot_idx;
    }
    if (!ctx_within_slot(fpf, fslot, f.pf_id, f.slot_idx)) continue;
    mark_frame_dead(owner, i);
  }
  std::uint64_t thi = part.open ? owner.trail_.size() : part.trail_hi;
  std::uint64_t undone = thi > f.trail_mark ? thi - f.trail_mark : 0;
  untrail_range(store_, owner.trail_, f.trail_mark, thi);
  stats_.untrail_ops += undone;
  charge(CostCat::kBacktrack, undone * costs_.untrail_entry);
  part.trail_hi = f.trail_mark;
  part.ctrl_hi = ref_index(cref) + 1;
  if (part.open && part.agent == agent_) {
    // We are the part's owner: we can really truncate.
    trail_.truncate(f.trail_mark);
    part.open = false;
  }

  // Continue executing this slot here: new section part on our stacks,
  // current context switches to the slot.
  cur_pf_ = f.pf_id;
  cur_slot_ = f.slot_idx;
  s.resumed = true;
  s.state = SlotState::Executing;
  s.exec_agent = agent_;
  open_new_part(s);
}

void Worker::mark_frame_dead(Worker& owner_agent, std::uint32_t index) {
  Frame& f = owner_agent.ctrl_[index];
  if (f.kind == FrameKind::Dead) return;
  FrameKind kind = f.kind;
  f.kind = FrameKind::Dead;
  if (orp_ != nullptr && kind == FrameKind::Choice) {
    if (f.shared_id != kNoShare) {
      orp_cancel_node(f.shared_id, f.pred_gen);
    } else if (f.alt_kind == AltKind::Clauses ||
               f.alt_kind == AltKind::Term ||
               (f.alt_kind == AltKind::TabAnswers &&
                f.tab_done != nullptr)) {
      --owner_agent.private_cps_;
    }
  }
  ++stats_.backtrack_frames;
  charge(CostCat::kBacktrack, costs_.backtrack_frame);
  if (kind == FrameKind::InMarker || kind == FrameKind::EndMarker) {
    charge(CostCat::kMarker, costs_.marker_bt);
  }
  owner_agent.note_ctrl_free(frame_words(kind));
  if (kind == FrameKind::Parcall) {
    unwind_parcall(f.pf_id);
  }
}

void Worker::kill_own_frames_above(std::uint32_t above) {
  std::uint32_t top = static_cast<std::uint32_t>(ctrl_.size());
  for (std::uint32_t i = top; i-- > above + 1;) {
    mark_frame_dead(*this, i);
  }
  pop_dead_suffix();
}

void Worker::pop_dead_suffix() {
  std::size_t top = ctrl_.size();
  while (top > 0 && ctrl_[top - 1].kind == FrameKind::Dead) --top;
  ctrl_.truncate(top);
}

bool Worker::ctx_within_slot(std::uint32_t frame_pf,
                             std::uint32_t frame_slot, std::uint32_t pf_id,
                             std::uint32_t slot_idx) {
  while (frame_pf != kNoPf) {
    if (frame_pf == pf_id && frame_slot == slot_idx) return true;
    Parcall& p = parcall(frame_pf);
    frame_slot = p.creator_slot;
    frame_pf = p.creator_pf;
  }
  return false;
}

void Worker::unwind_part_range(const SectionPart& part, std::uint32_t pf_id,
                               std::uint32_t slot_idx) {
  Worker& owner = peer(part.agent);
  std::uint32_t hi = part.open
                         ? static_cast<std::uint32_t>(owner.ctrl_.size())
                         : part.ctrl_hi;
  std::uint32_t top = static_cast<std::uint32_t>(owner.ctrl_.size());
  if (hi > top) hi = top;  // the owner reclaimed part of the range
  for (std::uint32_t i = hi; i-- > part.ctrl_lo;) {
    Frame& f = owner.ctrl_[i];
    if (f.kind == FrameKind::Dead) continue;
    // Stale-range guard: after cross-agent dead-marking the owner may have
    // recycled these positions for unrelated work; only frames whose
    // context chain descends from the slot being unwound belong to it.
    std::uint32_t fpf;
    std::uint32_t fslot;
    if (f.kind == FrameKind::Parcall) {
      Parcall& child = parcall(f.pf_id);
      fpf = child.creator_pf;
      fslot = child.creator_slot;
    } else {
      fpf = f.pf_id;
      fslot = f.slot_idx;
    }
    if (!ctx_within_slot(fpf, fslot, pf_id, slot_idx)) continue;
    mark_frame_dead(owner, i);
  }
  std::uint64_t thi = part.open ? owner.trail_.size() : part.trail_hi;
  std::uint64_t undone = thi > part.trail_lo ? thi - part.trail_lo : 0;
  untrail_range(store_, owner.trail_, part.trail_lo, thi);
  stats_.untrail_ops += undone;
  charge(CostCat::kBacktrack, undone * costs_.untrail_entry);
}

void Worker::unwind_slot(std::uint32_t pf_id, std::uint32_t slot_idx) {
  Parcall& pf = parcall(pf_id);
  Slot& s = pf.slots[slot_idx];
  ACE_CHECK_MSG(s.state != SlotState::Executing,
                "unwinding a slot that is still executing");
  for (std::size_t p = s.parts.size(); p-- > 0;) {
    unwind_part_range(s.parts[p], pf_id, slot_idx);
  }
  s.parts.clear();
  s.newest_bt = kNoRef;
  s.resumed = false;
  s.marker_pending = false;
  s.in_marker = kNoRef;
  s.end_marker = kNoRef;
}

}  // namespace ace
