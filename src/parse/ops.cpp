#include "parse/ops.hpp"

#include <unordered_map>

namespace ace {
namespace {

const std::unordered_map<std::string, OpDef>& infix_table() {
  static const std::unordered_map<std::string, OpDef> table = {
      {":-", {1200, OpType::xfx}},
      {"-->", {1200, OpType::xfx}},
      {";", {1100, OpType::xfy}},
      {"->", {1050, OpType::xfy}},
      {",", {1000, OpType::xfy}},
      {"&", {975, OpType::xfy}},
      {"=", {700, OpType::xfx}},
      {"\\=", {700, OpType::xfx}},
      {"==", {700, OpType::xfx}},
      {"\\==", {700, OpType::xfx}},
      {"@<", {700, OpType::xfx}},
      {"@>", {700, OpType::xfx}},
      {"@=<", {700, OpType::xfx}},
      {"@>=", {700, OpType::xfx}},
      {"is", {700, OpType::xfx}},
      {"=:=", {700, OpType::xfx}},
      {"=\\=", {700, OpType::xfx}},
      {"<", {700, OpType::xfx}},
      {">", {700, OpType::xfx}},
      {"=<", {700, OpType::xfx}},
      {">=", {700, OpType::xfx}},
      {"=..", {700, OpType::xfx}},
      {"+", {500, OpType::yfx}},
      {"-", {500, OpType::yfx}},
      {"/\\", {500, OpType::yfx}},
      {"\\/", {500, OpType::yfx}},
      {"xor", {500, OpType::yfx}},
      {"*", {400, OpType::yfx}},
      {"/", {400, OpType::yfx}},
      {"//", {400, OpType::yfx}},
      {"mod", {400, OpType::yfx}},
      {"rem", {400, OpType::yfx}},
      {"<<", {400, OpType::yfx}},
      {">>", {400, OpType::yfx}},
      {"**", {200, OpType::xfx}},
  };
  return table;
}

const std::unordered_map<std::string, OpDef>& prefix_table() {
  static const std::unordered_map<std::string, OpDef> table = {
      {":-", {1200, OpType::fx}},
      {"?-", {1200, OpType::fx}},
      {"dynamic", {1150, OpType::fx}},
      {"table", {1150, OpType::fx}},
      {"discontiguous", {1150, OpType::fx}},
      {"multifile", {1150, OpType::fx}},
      {"\\+", {900, OpType::fy}},
      {"-", {200, OpType::fy}},
      {"+", {200, OpType::fy}},
  };
  return table;
}

}  // namespace

std::optional<OpDef> infix_op(const std::string& name) {
  auto it = infix_table().find(name);
  if (it == infix_table().end()) return std::nullopt;
  return it->second;
}

std::optional<OpDef> prefix_op(const std::string& name) {
  auto it = prefix_table().find(name);
  if (it == prefix_table().end()) return std::nullopt;
  return it->second;
}

}  // namespace ace
