#include "parse/lexer.hpp"

#include <cctype>

#include "support/strutil.hpp"

namespace ace {
namespace {

bool is_symbol_char(char c) {
  static const std::string kSymbolChars = "+-*/\\^<>=~:.?@#&$";
  return kSymbolChars.find(c) != std::string::npos;
}

bool is_alnum_(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string src) : src_(std::move(src)) {}

const Token& Lexer::peek(std::size_t ahead) {
  while (lookahead_.size() <= ahead) lookahead_.push_back(lex());
  return lookahead_[ahead];
}

Token Lexer::next() {
  peek(0);
  Token t = lookahead_.front();
  lookahead_.erase(lookahead_.begin());
  return t;
}

void Lexer::error(const std::string& msg, const Token& at) const {
  throw AceError(strf("parse error at line %d, column %d: %s", at.line,
                      at.col, msg.c_str()));
}

void Lexer::skip_layout() {
  for (;;) {
    if (pos_ >= src_.size()) return;
    char c = src_[pos_];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++col_;
      ++pos_;
    } else if (c == '%') {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
      pos_ += 2;
      col_ += 2;
      while (pos_ + 1 < src_.size() &&
             !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
        if (src_[pos_] == '\n') {
          ++line_;
          col_ = 1;
        } else {
          ++col_;
        }
        ++pos_;
      }
      if (pos_ + 1 >= src_.size()) {
        Token t{TokKind::Eof, "", 0, false, line_, col_};
        error("unterminated block comment", t);
      }
      pos_ += 2;
      col_ += 2;
    } else {
      return;
    }
  }
}

Token Lexer::lex() {
  std::size_t had_layout_pos = pos_;
  skip_layout();
  bool had_layout = pos_ != had_layout_pos;

  Token t;
  t.line = line_;
  t.col = col_;
  bool was_name = prev_was_name_;
  prev_was_name_ = false;

  if (pos_ >= src_.size()) {
    t.kind = TokKind::Eof;
    return t;
  }

  char c = src_[pos_];
  auto advance = [&](std::size_t n = 1) {
    pos_ += n;
    col_ += static_cast<int>(n);
  };

  // Punctuation.
  switch (c) {
    case '(':
      advance();
      t.kind = TokKind::LParen;
      t.functor_lparen = was_name && !had_layout;
      return t;
    case ')':
      advance();
      t.kind = TokKind::RParen;
      return t;
    case '[':
      advance();
      t.kind = TokKind::LBracket;
      return t;
    case ']':
      advance();
      t.kind = TokKind::RBracket;
      prev_was_name_ = true;  // `[]` may be a functor name part; harmless
      return t;
    case '{':
      advance();
      t.kind = TokKind::LBrace;
      return t;
    case '}':
      advance();
      t.kind = TokKind::RBrace;
      return t;
    case ',':
      advance();
      t.kind = TokKind::Comma;
      return t;
    case '|':
      advance();
      t.kind = TokKind::Bar;
      return t;
    case '!':
      advance();
      t.kind = TokKind::Atom;
      t.text = "!";
      prev_was_name_ = true;
      return t;
    case ';':
      advance();
      t.kind = TokKind::Atom;
      t.text = ";";
      prev_was_name_ = true;
      return t;
    default:
      break;
  }

  // Integer.
  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::int64_t v = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      v = v * 10 + (src_[pos_] - '0');
      advance();
    }
    // 0'c character code syntax.
    if (v == 0 && pos_ < src_.size() && src_[pos_] == '\'' &&
        pos_ + 1 < src_.size()) {
      advance();
      char ch = src_[pos_];
      advance();
      t.kind = TokKind::Int;
      t.value = static_cast<std::int64_t>(static_cast<unsigned char>(ch));
      return t;
    }
    t.kind = TokKind::Int;
    t.value = v;
    return t;
  }

  // Variable.
  if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
    std::string name;
    while (pos_ < src_.size() && is_alnum_(src_[pos_])) {
      name += src_[pos_];
      advance();
    }
    t.kind = TokKind::Var;
    t.text = std::move(name);
    return t;
  }

  // Plain atom.
  if (std::islower(static_cast<unsigned char>(c))) {
    std::string name;
    while (pos_ < src_.size() && is_alnum_(src_[pos_])) {
      name += src_[pos_];
      advance();
    }
    t.kind = TokKind::Atom;
    t.text = std::move(name);
    prev_was_name_ = true;
    return t;
  }

  // Quoted atom.
  if (c == '\'') {
    advance();
    std::string name;
    for (;;) {
      if (pos_ >= src_.size()) error("unterminated quoted atom", t);
      char ch = src_[pos_];
      if (ch == '\\' && pos_ + 1 < src_.size()) {
        char esc = src_[pos_ + 1];
        advance(2);
        switch (esc) {
          case 'n': name += '\n'; break;
          case 't': name += '\t'; break;
          case '\\': name += '\\'; break;
          case '\'': name += '\''; break;
          default: name += esc; break;
        }
        continue;
      }
      if (ch == '\'') {
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '\'') {
          name += '\'';
          advance(2);
          continue;
        }
        advance();
        break;
      }
      if (ch == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
        name += ch;
        continue;
      }
      name += ch;
      advance();
    }
    t.kind = TokKind::Atom;
    t.text = std::move(name);
    prev_was_name_ = true;
    return t;
  }

  // Symbolic atom / clause terminator.
  if (is_symbol_char(c)) {
    std::string name;
    while (pos_ < src_.size() && is_symbol_char(src_[pos_])) {
      name += src_[pos_];
      advance();
    }
    // A lone '.' followed by layout or EOF terminates a clause.
    if (name == "." ) {
      t.kind = TokKind::End;
      return t;
    }
    t.kind = TokKind::Atom;
    t.text = std::move(name);
    prev_was_name_ = true;
    return t;
  }

  error(strf("unexpected character '%c'", c), t);
}

}  // namespace ace
