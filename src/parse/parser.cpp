#include "parse/parser.hpp"

#include "parse/ops.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

// Recursive-descent operator-precedence parser (standard Prolog read/1
// algorithm, fixed operator table). One Parser instance parses one clause,
// sharing a TemplateBuilder so variables are scoped to the clause.
class Parser {
 public:
  Parser(Lexer& lex, TemplateBuilder& builder)
      : lex_(lex), builder_(builder) {}

  // term(1200) followed by End.
  Cell parse_clause() {
    Cell t = parse(1200);
    Token end = lex_.next();
    if (end.kind != TokKind::End) {
      lex_.error("expected '.' at end of clause", end);
    }
    return t;
  }

 private:
  Cell parse(int max_prec) {
    auto [left, left_prec] = parse_primary(max_prec);
    return parse_infix(left, left_prec, max_prec);
  }

  Cell parse_infix(Cell left, int left_prec, int max_prec) {
    for (;;) {
      const Token& tok = lex_.peek();
      std::string opname;
      if (tok.kind == TokKind::Atom) {
        opname = tok.text;
      } else if (tok.kind == TokKind::Comma) {
        opname = ",";
      } else if (tok.kind == TokKind::Bar) {
        // '|' as an infix is an alias for ';' at priority 1100.
        opname = ";";
      } else {
        return left;
      }
      auto op = infix_op(opname);
      if (!op) return left;
      int p = op->priority;
      if (p > max_prec) return left;
      int left_max = (op->type == OpType::yfx) ? p : p - 1;
      int right_max = (op->type == OpType::xfy) ? p : p - 1;
      if (left_prec > left_max) return left;
      lex_.next();
      Cell right = parse(right_max);
      left = builder_.structure(opname, {left, right});
      left_prec = p;
    }
  }

  std::pair<Cell, int> parse_primary(int max_prec) {
    Token tok = lex_.next();
    switch (tok.kind) {
      case TokKind::Int:
        return {builder_.integer(tok.value), 0};
      case TokKind::Var:
        return {builder_.var(tok.text), 0};
      case TokKind::LParen: {
        Cell inner = parse(1200);
        expect(TokKind::RParen, "expected ')'");
        return {inner, 0};
      }
      case TokKind::LBracket:
        return {parse_list(), 0};
      case TokKind::LBrace: {
        if (lex_.peek().kind == TokKind::RBrace) {
          lex_.next();
          return {builder_.atom("{}"), 0};
        }
        Cell inner = parse(1200);
        expect(TokKind::RBrace, "expected '}'");
        return {builder_.structure("{}", {inner}), 0};
      }
      case TokKind::Atom:
        return parse_atom_head(std::move(tok), max_prec);
      default:
        lex_.error("expected a term", tok);
    }
  }

  std::pair<Cell, int> parse_atom_head(Token tok, int max_prec) {
    // Functor application: name immediately followed by '('.
    const Token& after = lex_.peek();
    if (after.kind == TokKind::LParen && after.functor_lparen) {
      lex_.next();
      std::vector<Cell> args;
      args.push_back(parse(999));
      while (lex_.peek().kind == TokKind::Comma) {
        lex_.next();
        args.push_back(parse(999));
      }
      expect(TokKind::RParen, "expected ')' after arguments");
      return {builder_.structure(tok.text, args), 0};
    }

    // Prefix operator.
    if (auto op = prefix_op(tok.text); op && op->priority <= max_prec) {
      const Token& nxt = lex_.peek();
      bool operand_follows =
          nxt.kind == TokKind::Int || nxt.kind == TokKind::Var ||
          nxt.kind == TokKind::Atom || nxt.kind == TokKind::LParen ||
          nxt.kind == TokKind::LBracket || nxt.kind == TokKind::LBrace;
      // An atom that is also an infix op and is followed by an infix
      // position is not a prefix application (e.g. `- = X`).
      if (operand_follows) {
        // Negative integer literal folding.
        if (tok.text == "-" && nxt.kind == TokKind::Int) {
          Token num = lex_.next();
          return {builder_.integer(-num.value), 0};
        }
        int arg_max = (op->type == OpType::fy) ? op->priority
                                               : op->priority - 1;
        // Don't treat `op` as prefix if the next token is an infix op
        // (e.g. `X = -` is nonsense we'd rather reject than misparse, but
        // `a , - 1` must work). A plain atom that names an infix op still
        // counts as an operand when it cannot start a term... keep simple:
        // attempt prefix parse.
        Cell arg = parse(arg_max);
        return {builder_.structure(tok.text, {arg}), op->priority};
      }
    }

    // Plain atom.
    return {builder_.atom(tok.text), 0};
  }

  Cell parse_list() {
    if (lex_.peek().kind == TokKind::RBracket) {
      lex_.next();
      return builder_.atom("[]");
    }
    std::vector<Cell> items;
    items.push_back(parse(999));
    while (lex_.peek().kind == TokKind::Comma) {
      lex_.next();
      items.push_back(parse(999));
    }
    Cell tail = builder_.atom("[]");
    if (lex_.peek().kind == TokKind::Bar) {
      lex_.next();
      tail = parse(999);
    }
    expect(TokKind::RBracket, "expected ']'");
    return builder_.list(items, tail);
  }

  void expect(TokKind kind, const char* msg) {
    Token t = lex_.next();
    if (t.kind != kind) lex_.error(msg, t);
  }

  Lexer& lex_;
  TemplateBuilder& builder_;
};

}  // namespace

std::vector<TermTemplate> parse_program(SymbolTable& syms,
                                        const std::string& src) {
  Lexer lex(src);
  std::vector<TermTemplate> out;
  while (lex.peek().kind != TokKind::Eof) {
    TemplateBuilder builder(syms);
    Parser parser(lex, builder);
    Cell root = parser.parse_clause();
    out.push_back(builder.finish(root));
  }
  return out;
}

std::vector<SpannedTemplate> parse_program_spanned(SymbolTable& syms,
                                                   const std::string& src) {
  Lexer lex(src);
  std::vector<SpannedTemplate> out;
  while (lex.peek().kind != TokKind::Eof) {
    SpannedTemplate st;
    st.line = lex.peek().line;
    st.col = lex.peek().col;
    TemplateBuilder builder(syms);
    Parser parser(lex, builder);
    Cell root = parser.parse_clause();
    st.tmpl = builder.finish(root);
    out.push_back(std::move(st));
  }
  return out;
}

TermTemplate parse_term_text(SymbolTable& syms, const std::string& src) {
  Lexer lex(src);
  TemplateBuilder builder(syms);
  Parser parser(lex, builder);
  Cell root = parser.parse_clause();
  Token eof = lex.next();
  if (eof.kind != TokKind::Eof) {
    lex.error("unexpected input after term", eof);
  }
  return builder.finish(root);
}

}  // namespace ace
