// Prolog operator table.
//
// Fixed table (no user-defined operators): the standard operator set plus
// '&' — ACE's independent parallel conjunction — at priority 975 xfy,
// binding tighter than ',' as in &-Prolog.
#pragma once

#include <optional>
#include <string>

namespace ace {

enum class OpType { xfx, xfy, yfx, fy, fx };

struct OpDef {
  int priority;
  OpType type;
};

std::optional<OpDef> infix_op(const std::string& name);
std::optional<OpDef> prefix_op(const std::string& name);

}  // namespace ace
