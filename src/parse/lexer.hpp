// Tokenizer for the Prolog dialect accepted by this system.
//
// Supports: plain/quoted/symbolic atoms, variables, integers, punctuation,
// %-comments and /* */ comments, and the clause terminator '.'.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace ace {

enum class TokKind : std::uint8_t {
  Atom,     // foo, 'Foo bar', + , == , ...
  Var,      // X, _Y, _
  Int,      // 42
  LParen,   // (   (functor_lparen set if it directly follows an atom)
  RParen,   // )
  LBracket, // [
  RBracket, // ]
  LBrace,   // {
  RBrace,   // }
  Comma,    // ,
  Bar,      // |
  End,      // . clause terminator
  Eof,
};

struct Token {
  TokKind kind;
  std::string text;     // atom/var name
  std::int64_t value = 0;  // Int
  bool functor_lparen = false;  // for LParen: no whitespace before it
  int line = 0;
  int col = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string src);

  const Token& peek(std::size_t ahead = 0);
  Token next();

  [[noreturn]] void error(const std::string& msg, const Token& at) const;

 private:
  Token lex();
  void skip_layout();

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool prev_was_name_ = false;  // for functor '(' detection
  std::vector<Token> lookahead_;
};

}  // namespace ace
