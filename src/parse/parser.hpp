// Operator-precedence parser producing clause templates.
#pragma once

#include <string>
#include <vector>

#include "parse/lexer.hpp"
#include "term/build.hpp"

namespace ace {

// Parses a whole program: a sequence of '.'-terminated clauses. Throws
// AceError on syntax errors.
std::vector<TermTemplate> parse_program(SymbolTable& syms,
                                        const std::string& src);

// A parsed clause plus the source position of its first token (1-based),
// for analysis/linter diagnostics.
struct SpannedTemplate {
  TermTemplate tmpl;
  int line = 0;
  int col = 0;
};

std::vector<SpannedTemplate> parse_program_spanned(SymbolTable& syms,
                                                   const std::string& src);

// Parses a single term followed by '.' (a query body or a test term).
TermTemplate parse_term_text(SymbolTable& syms, const std::string& src);

}  // namespace ace
