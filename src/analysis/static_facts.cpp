#include "analysis/static_facts.hpp"

#include <map>

#include "analysis/absint.hpp"
#include "analysis/determinacy.hpp"
#include "support/strutil.hpp"

namespace ace {

std::string StaticFactsReport::to_json() const {
  return strf(
      "{\"preds\":%zu,\"det\":%zu,\"det_indexed\":%zu,\"no_choice\":%zu,"
      "\"lao_chain\":%zu,\"ground_on_success\":%zu}",
      preds_analyzed, det, det_indexed, no_choice, lao_chain,
      ground_on_success);
}

StaticFactsReport compute_static_facts(Database& db) {
  SymbolTable& syms = db.syms();
  const AbsProgram prog = AbsProgram::from_database(syms, db);
  const DeterminacyResult detres = analyze_determinacy_program(prog, syms);
  AbstractInterpreter interp(prog, syms);

  StaticFactsReport rep;
  std::map<PredKey, std::uint32_t> bits;
  for (const auto& [pk, pa] : detres.preds) {
    const auto sym = static_cast<std::uint32_t>(pk >> 12);
    const auto arity = static_cast<unsigned>(pk & 0xFFF);
    if (!prog.defines(sym, arity)) continue;
    std::uint32_t b = StaticFacts::kValid;
    if (pa.det) b |= StaticFacts::kDet;
    if (pa.det_indexed) b |= StaticFacts::kDetIndexed;
    if (pa.no_choice) b |= StaticFacts::kNoChoice;
    if (pa.lao_chain) b |= StaticFacts::kLaoChain;
    if (interp.ground_on_success_top(sym, arity)) {
      b |= StaticFacts::kGroundOnSuccess;
    }
    bits[pk] = b;
    ++rep.preds_analyzed;
    if (b & StaticFacts::kDet) ++rep.det;
    if (b & StaticFacts::kDetIndexed) ++rep.det_indexed;
    if (b & StaticFacts::kNoChoice) ++rep.no_choice;
    if (b & StaticFacts::kLaoChain) ++rep.lao_chain;
    if (b & StaticFacts::kGroundOnSuccess) ++rep.ground_on_success;
  }

  db.for_each_predicate_mutable([&](Predicate& p) {
    auto it = bits.find(pred_key(p.sym(), p.arity()));
    p.set_static_facts(it == bits.end() ? 0u : it->second);
  });
  return rep;
}

}  // namespace ace
