#include "analysis/render.hpp"

#include <algorithm>

#include "parse/ops.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

// Arguments in functional notation f(A, B), list items and list tails parse
// at maximum priority 999 (',' at 1000 would otherwise split them).
constexpr int kArgPrec = 999;

class Renderer {
 public:
  Renderer(const SymbolTable& syms, const TermTemplate& tmpl)
      : syms_(syms), tmpl_(tmpl) {}

  std::string render(Cell c, int max_prec) const {
    switch (c.tag()) {
      case Tag::VarSlot:
        return var_name(c.var_slot());
      case Tag::Int:
        return render_int(c.integer(), max_prec);
      case Tag::Atm:
        return render_atom(syms_.name(c.symbol()), max_prec);
      case Tag::Lst:
        return render_list(c);
      case Tag::Str:
        return render_struct(c, max_prec);
      default:
        // Ref/Fun never appear as template roots.
        return "?";
    }
  }

 private:
  std::string var_name(std::uint32_t slot) const {
    const std::string& name = tmpl_.var_names[slot];
    if (name == "_" || name.empty()) {
      // Each anonymous '_' in the source gets its own fresh slot, so giving
      // every anonymous slot a distinct name preserves term structure.
      return strf("_V%u", slot);
    }
    return name;
  }

  static std::string render_int(std::int64_t v, int max_prec) {
    std::string s = strf("%lld", static_cast<long long>(v));
    // A negative literal is (re-)read via the prefix '-' folding rule, which
    // carries priority 0 after folding — but in a priority-0 context (left
    // operand of a tight xfx like '**' never happens for priority < 0) we
    // would still be fine. Parenthesize defensively only when the context
    // cannot accept any operator at all (max_prec == 0 and v < 0).
    if (v < 0 && max_prec <= 0) return "(" + s + ")";
    return s;
  }

  static std::string render_atom(const std::string& n, int max_prec) {
    std::string text = is_plain_atom_name(n) ? n : "'" + n + "'";
    if (text == n) {
      // A bare atom that names an operator reads as that operator's priority
      // when it stands alone as a term; parenthesize when the context is
      // tighter (e.g. the atom '-' as an argument of priority-0 context).
      int p = 0;
      if (auto op = infix_op(n)) p = op->priority;
      if (auto op = prefix_op(n)) p = std::max(p, op->priority);
      if (p > max_prec) return "(" + text + ")";
    }
    return text;
  }

  std::string render_list(Cell c) const {
    std::string out = "[";
    Cell cur = c;
    bool first = true;
    for (;;) {
      if (cur.tag() == Tag::Lst) {
        if (!first) out += ", ";
        first = false;
        out += render(tmpl_.cells[cur.payload()], kArgPrec);
        cur = tmpl_.cells[cur.payload() + 1];
        continue;
      }
      if (cur.tag() == Tag::Atm && syms_.name(cur.symbol()) == "[]") break;
      out += "|" + render(cur, kArgPrec);
      break;
    }
    return out + "]";
  }

  std::string render_struct(Cell c, int max_prec) const {
    const Cell f = tmpl_.cells[c.payload()];
    const std::string& n = syms_.name(f.fun_symbol());
    const unsigned arity = f.fun_arity();

    if (arity == 1 && n == "{}") {
      return "{" + render(tmpl_.cells[c.payload() + 1], 1200) + "}";
    }

    if (arity == 2) {
      if (auto op = infix_op(n)) {
        const int p = op->priority;
        const int lmax = (op->type == OpType::yfx) ? p : p - 1;
        const int rmax = (op->type == OpType::xfy) ? p : p - 1;
        std::string left = render(tmpl_.cells[c.payload() + 1], lmax);
        std::string right = render(tmpl_.cells[c.payload() + 2], rmax);
        // ',' reads naturally without surrounding spaces on the left.
        std::string s = (n == ",") ? left + ", " + right
                                   : left + " " + n + " " + right;
        return (p > max_prec) ? "(" + s + ")" : s;
      }
    }

    if (arity == 1) {
      if (auto op = prefix_op(n)) {
        const Cell arg = tmpl_.cells[c.payload() + 1];
        // '-'/'+' applied to an integer literal must use functional notation:
        // `- 5` would re-read as the folded literal -5, not the structure.
        const bool int_fold_hazard =
            (n == "-" || n == "+") && arg.tag() == Tag::Int;
        if (!int_fold_hazard) {
          const int p = op->priority;
          const int amax = (op->type == OpType::fy) ? p : p - 1;
          // The space before a parenthesized operand matters: `\+(a, b)`
          // would re-read as the binary functor \+/2.
          std::string s = n + " " + render(arg, amax);
          return (p > max_prec) ? "(" + s + ")" : s;
        }
      }
    }

    // Functional notation. No space before '(' — the lexer marks that paren
    // as a functor application.
    std::string name = is_plain_atom_name(n) ? n : "'" + n + "'";
    std::string out = name + "(";
    for (unsigned i = 1; i <= arity; ++i) {
      if (i > 1) out += ", ";
      out += render(tmpl_.cells[c.payload() + i], kArgPrec);
    }
    return out + ")";
  }

  const SymbolTable& syms_;
  const TermTemplate& tmpl_;
};

}  // namespace

std::string render_template(const SymbolTable& syms, const TermTemplate& tmpl,
                            Cell c, int max_prec) {
  return Renderer(syms, tmpl).render(c, max_prec);
}

std::string render_clause(const SymbolTable& syms, const TermTemplate& tmpl) {
  return render_template(syms, tmpl, tmpl.root, 1200);
}

}  // namespace ace
