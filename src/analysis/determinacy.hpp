// Clause-level determinacy and mutual-exclusion analysis.
//
// Two clauses of a predicate are *mutually exclusive* when no call can
// succeed through both: provable from head-skeleton disjointness (distinct
// constants/functors in the same argument position), contradictory
// arithmetic guards (`N > 1` vs. a head constant 0, `X =< Y` vs. `X > Y`),
// or contradictory `==`/`\==` tests. Exclusion evidence comes in two
// strengths: *mode-independent* proofs hold for any call (arithmetic
// guards throw and `==` tests fail on unbound arguments, so the excluded
// side cannot succeed either way), while *indexed* proofs (disjoint head
// constants/functors) only hold when the discriminating argument is
// instantiated at call time — a free call unifies with both heads.
//
// Correspondingly a predicate is *determinate* (`det`: at most one
// solution for ANY call) when all clause pairs are mode-independently
// exclusive (or every non-last clause cuts) and every clause body — after
// its last top-level cut — only calls determinate goals (a greatest
// fixpoint over the call graph, so plain structural recursion stays
// determinate). It is *index-determinate* (`det_indexed`) when the same
// holds for calls whose first argument is GROUND, accepting
// first-position indexed evidence and tail calls whose own first argument
// is provably ground on entry (a subterm of the clause's ground first
// head argument, or bound by preceding arithmetic). Groundness rather
// than mere instantiation is required: a partially instantiated argument
// can select a single clause yet leave recursive calls free to produce
// many solutions.
//
// These proofs feed (a) the linter (unreachable/overlapping clauses) and
// (b) the runtime static-facts pass that elides the charged optimization
// checks of the paper's LPCO/SHALLOW/PDO/LAO schemas; the engines honour
// `det_indexed` only on calls whose first argument is ground right now
// (db/predicate.hpp StaticFacts::kDetIndexed).
#pragma once

#include <map>
#include <vector>

#include "analysis/absint.hpp"

namespace ace {

struct PredStaticAnalysis {
  bool det = false;          // at most one solution for any call, and no
                             // sibling-clause alternative can also succeed
  bool det_indexed = false;  // ... for calls whose first argument is
                             // ground (first-argument indexing picks at
                             // most one clause, and structural recursion
                             // stays ground); implied by `det`
  bool no_choice = false;    // at most one clause: a call never builds a
                             // clause-selection choice point worth keeping
  bool lao_chain = false;    // generator chain: last clause tail-recursive,
                             // earlier clauses leaf — the shape the
                             // last-alternative optimization targets
};

struct ClauseOverlap {
  std::size_t a = 0;  // clause indices into AbsProgram::clauses
  std::size_t b = 0;
};

struct DeterminacyResult {
  std::map<PredKey, PredStaticAnalysis> preds;
  // Clause indices provably never reached (an earlier most-general clause
  // always commits first).
  std::vector<std::size_t> unreachable;
  // Non-exclusive clause pairs of predicates not proven determinate.
  std::vector<ClauseOverlap> overlapping;
};

DeterminacyResult analyze_determinacy_program(const AbsProgram& prog,
                                              const SymbolTable& syms);

// True when clauses `a` and `b` (indices into prog.clauses, same predicate)
// are provably mutually exclusive. Exposed for tests.
bool clauses_mutually_exclusive(const AbsProgram& prog,
                                const SymbolTable& syms, std::size_t a,
                                std::size_t b);

}  // namespace ace
