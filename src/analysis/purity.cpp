#include "analysis/purity.hpp"

#include <string>

namespace ace {

unsigned goal_effects(const AbsProgram& prog, const SymbolTable& syms,
                      const Builtins& builtins, const PuritySummary& purity,
                      const TermTemplate& tmpl, Cell goal) {
  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (goal.tag() == Tag::Atm) {
    sym = goal.symbol();
  } else if (goal.tag() == Tag::Str) {
    const Cell f = tmpl.cells[goal.payload()];
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    // Variable metacall (or a non-callable term the runtime will reject).
    return kEffectMeta;
  }

  const SymbolTable::Known& k = syms.known();
  auto sub = [&](unsigned i) {
    return goal_effects(prog, syms, builtins, purity, tmpl,
                        tmpl.cells[goal.payload() + i]);
  };
  if (arity == 2 && (sym == k.comma || sym == k.amp || sym == k.semicolon ||
                     sym == k.arrow)) {
    return sub(1) | sub(2);
  }
  if (arity == 1 && (sym == k.naf || sym == k.call)) return sub(1);
  const std::string& n = syms.name(sym);
  if (arity == 1 && n == "once") return sub(1);
  if (arity == 3 && n == "findall") return sub(2);
  if (arity == 3 && n == "catch") return sub(1) | sub(3);
  if (arity >= 2 && sym == k.call) {
    // call/N closures: the callee's effective arity is unknown here.
    return kEffectMeta;
  }

  if (auto id = builtins.lookup(sym, arity)) {
    switch (*id) {
      case BuiltinId::AssertZ:
      case BuiltinId::AssertA:
      case BuiltinId::Retract:
        return kEffectDbWrite;
      case BuiltinId::Write:
      case BuiltinId::Nl:
      case BuiltinId::Tab:
        return kEffectIo;
      case BuiltinId::SnapshotRefresh:
        return kEffectSnapshot;
      default:
        return 0;
    }
  }

  unsigned e = 0;
  if (prog.is_tabled(sym, arity)) e |= kEffectTabled;
  if (prog.defines(sym, arity)) e |= purity.of(sym, arity);
  return e;
}

PuritySummary analyze_purity(const AbsProgram& prog, SymbolTable& syms) {
  Builtins builtins(syms);
  PuritySummary out;
  for (const auto& ci : prog.clauses) {
    out.effects[pred_key(ci.pred_sym, ci.pred_arity)] = 0;
  }
  // Chaotic iteration: bits only grow (five per predicate), so this
  // terminates quickly even over mutual recursion.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& ci : prog.clauses) {
      const unsigned e =
          goal_effects(prog, syms, builtins, out, ci.tmpl, ci.body);
      unsigned& cur = out.effects[pred_key(ci.pred_sym, ci.pred_arity)];
      if ((cur | e) != cur) {
        cur |= e;
        changed = true;
      }
    }
  }
  return out;
}

}  // namespace ace
