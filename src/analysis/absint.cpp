#include "analysis/absint.hpp"

#include <algorithm>

#include "builtins/lib.hpp"
#include "db/database.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

void collect_vars_rec(const TermTemplate& tmpl, Cell c,
                      std::vector<std::uint32_t>& out) {
  switch (c.tag()) {
    case Tag::VarSlot:
      out.push_back(c.var_slot());
      return;
    case Tag::Lst:
      collect_vars_rec(tmpl, tmpl.cells[c.payload()], out);
      collect_vars_rec(tmpl, tmpl.cells[c.payload() + 1], out);
      return;
    case Tag::Str: {
      const Cell f = tmpl.cells[c.payload()];
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        collect_vars_rec(tmpl, tmpl.cells[c.payload() + i], out);
      }
      return;
    }
    default:
      return;
  }
}

std::vector<std::uint32_t> nonground_vars(const AbsState& st,
                                          const TermTemplate& tmpl, Cell t) {
  std::vector<std::uint32_t> vs = collect_template_vars(tmpl, t);
  vs.erase(std::remove_if(vs.begin(), vs.end(),
                          [&](std::uint32_t v) { return st.is_ground(v); }),
           vs.end());
  return vs;
}

bool args_may_share(const AbsState& st, const TermTemplate& tmpl, Cell a,
                    Cell b) {
  const std::vector<std::uint32_t> va = nonground_vars(st, tmpl, a);
  const std::vector<std::uint32_t> vb = nonground_vars(st, tmpl, b);
  for (std::uint32_t u : va) {
    for (std::uint32_t v : vb) {
      if (u == v || st.may_share(u, v)) return true;
    }
  }
  return false;
}

}  // namespace

AbsMode join_mode(AbsMode a, AbsMode b) {
  if (a == b) return a;
  return AbsMode::Any;
}

const char* mode_name(AbsMode m) {
  switch (m) {
    case AbsMode::Ground:
      return "g";
    case AbsMode::Free:
      return "f";
    case AbsMode::Any:
      return "a";
  }
  return "?";
}

std::vector<std::uint32_t> collect_template_vars(const TermTemplate& tmpl,
                                                 Cell c) {
  std::vector<std::uint32_t> out;
  collect_vars_rec(tmpl, c, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// ArgPattern

ArgPattern ArgPattern::top(unsigned arity) {
  ArgPattern p;
  p.modes.assign(arity, AbsMode::Any);
  for (unsigned i = 0; i < arity; ++i) {
    for (unsigned j = i + 1; j < arity; ++j) p.share.emplace(i, j);
  }
  return p;
}

ArgPattern ArgPattern::all_ground(unsigned arity) {
  ArgPattern p;
  p.modes.assign(arity, AbsMode::Ground);
  return p;
}

void ArgPattern::join(const ArgPattern& o) {
  for (std::size_t i = 0; i < modes.size(); ++i) {
    modes[i] = join_mode(modes[i], o.modes[i]);
  }
  share.insert(o.share.begin(), o.share.end());
}

bool ArgPattern::operator==(const ArgPattern& o) const {
  return modes == o.modes && share == o.share;
}

bool ArgPattern::operator<(const ArgPattern& o) const {
  if (modes != o.modes) return modes < o.modes;
  return share < o.share;
}

std::string ArgPattern::describe() const {
  std::string out = "(";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (i > 0) out += ",";
    out += mode_name(modes[i]);
  }
  out += ")";
  if (!share.empty()) {
    out += " share={";
    bool first = true;
    for (auto [i, j] : share) {
      if (!first) out += ",";
      first = false;
      out += strf("%u-%u", i, j);
    }
    out += "}";
  }
  return out;
}

// ---------------------------------------------------------------------------
// AbsState

void AbsState::set_ground(std::uint32_t v) {
  modes[v] = AbsMode::Ground;
  for (auto it = share.begin(); it != share.end();) {
    if (it->first == v || it->second == v) {
      it = share.erase(it);
    } else {
      ++it;
    }
  }
}

void AbsState::demote(std::uint32_t v) {
  if (modes[v] == AbsMode::Free) modes[v] = AbsMode::Any;
}

void AbsState::add_share(std::uint32_t a, std::uint32_t b) {
  if (a == b) return;
  if (modes[a] == AbsMode::Ground || modes[b] == AbsMode::Ground) return;
  share.emplace(std::min(a, b), std::max(a, b));
}

bool AbsState::may_share(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return modes[a] != AbsMode::Ground;
  return share.count({std::min(a, b), std::max(a, b)}) != 0;
}

std::vector<std::uint32_t> AbsState::aliases_of(std::uint32_t v) const {
  std::vector<std::uint32_t> out;
  for (auto [a, b] : share) {
    if (a == v) out.push_back(b);
    if (b == v) out.push_back(a);
  }
  return out;
}

void AbsState::join(const AbsState& o) {
  for (std::size_t i = 0; i < modes.size(); ++i) {
    modes[i] = join_mode(modes[i], o.modes[i]);
  }
  share.insert(o.share.begin(), o.share.end());
}

// ---------------------------------------------------------------------------
// AbsProgram

void AbsProgram::add_clause(const SymbolTable& syms, TermTemplate tmpl,
                            SourceSpan span, bool from_library) {
  ClauseInfo ci;
  ci.span = span;
  ci.from_library = from_library;
  Cell head = tmpl.root;
  Cell body = atm_cell(syms.known().truesym);
  if (tmpl.root.tag() == Tag::Str) {
    const Cell f = tmpl.cells[tmpl.root.payload()];
    if (f.fun_symbol() == syms.known().neck && f.fun_arity() == 2) {
      head = tmpl.cells[tmpl.root.payload() + 1];
      body = tmpl.cells[tmpl.root.payload() + 2];
    } else if (f.fun_symbol() == syms.known().neck && f.fun_arity() == 1) {
      // Directives carry no clauses, but `:- table name/arity.` and
      // `:- dynamic name/arity.` (with the same comma-separated spec list
      // the Database accepts) feed the linter's APL007/APL008 passes.
      // Malformed specs are the runtime's problem.
      const Cell goal = tmpl.cells[tmpl.root.payload() + 1];
      if (goal.tag() != Tag::Str) return;
      const Cell g = tmpl.cells[goal.payload()];
      if (g.fun_arity() != 1) return;
      const std::string& dname = syms.name(g.fun_symbol());
      std::set<PredKey>* dest = nullptr;
      if (dname == "table") dest = &tabled;
      if (dname == "dynamic") dest = &dynamic;
      if (dest == nullptr) return;
      std::vector<Cell> work{tmpl.cells[goal.payload() + 1]};
      while (!work.empty()) {
        Cell spec = work.back();
        work.pop_back();
        if (spec.tag() != Tag::Str) continue;
        const Cell sf = tmpl.cells[spec.payload()];
        if (sf.fun_symbol() == syms.known().comma && sf.fun_arity() == 2) {
          work.push_back(tmpl.cells[spec.payload() + 1]);
          work.push_back(tmpl.cells[spec.payload() + 2]);
          continue;
        }
        if (syms.name(sf.fun_symbol()) == "/" && sf.fun_arity() == 2) {
          const Cell name = tmpl.cells[spec.payload() + 1];
          const Cell arity = tmpl.cells[spec.payload() + 2];
          if (name.tag() == Tag::Atm && arity.tag() == Tag::Int) {
            dest->insert(pred_key(name.symbol(),
                                  static_cast<unsigned>(arity.integer())));
          }
        }
      }
      return;
    }
  }
  if (head.tag() == Tag::Atm) {
    ci.pred_sym = head.symbol();
    ci.pred_arity = 0;
  } else if (head.tag() == Tag::Str) {
    const Cell f = tmpl.cells[head.payload()];
    ci.pred_sym = f.fun_symbol();
    ci.pred_arity = f.fun_arity();
  } else {
    return;  // not a callable head; the runtime rejects it too
  }
  ci.tmpl = std::move(tmpl);
  ci.head = head;
  ci.body = body;
  const std::size_t idx = clauses.size();
  clauses.push_back(std::move(ci));
  preds[pred_key(clauses[idx].pred_sym, clauses[idx].pred_arity)].push_back(
      idx);
}

AbsProgram AbsProgram::from_source(SymbolTable& syms, const std::string& src,
                                   bool include_library) {
  AbsProgram prog;
  for (SpannedTemplate& st : parse_program_spanned(syms, src)) {
    prog.add_clause(syms, std::move(st.tmpl), SourceSpan{st.line, st.col},
                    /*from_library=*/false);
  }
  if (include_library) {
    for (SpannedTemplate& st :
         parse_program_spanned(syms, prolog_library_source())) {
      prog.add_clause(syms, std::move(st.tmpl), SourceSpan{st.line, st.col},
                      /*from_library=*/true);
    }
  }
  return prog;
}

AbsProgram AbsProgram::from_database(const SymbolTable& syms,
                                     const Database& db) {
  AbsProgram prog;
  db.for_each_predicate([&](const Predicate& p) {
    if (p.is_tabled()) prog.tabled.insert(pred_key(p.sym(), p.arity()));
    if (p.is_dynamic()) prog.dynamic.insert(pred_key(p.sym(), p.arity()));
    for (std::uint32_t i = 0; i < p.num_clauses(); ++i) {
      const Clause& c = p.clause(i);
      if (c.retracted) continue;
      prog.add_clause(syms, c.tmpl, SourceSpan{},
                      /*from_library=*/false);
    }
  });
  return prog;
}

// ---------------------------------------------------------------------------
// AbstractInterpreter

AbstractInterpreter::AbstractInterpreter(const AbsProgram& prog,
                                         SymbolTable& syms)
    : prog_(prog), syms_(syms), builtins_(syms) {}

AbsMode AbstractInterpreter::term_mode(const AbsState& st,
                                       const TermTemplate& tmpl,
                                       Cell t) const {
  if (t.tag() == Tag::VarSlot) return st.mode(t.var_slot());
  const std::vector<std::uint32_t> vs = collect_template_vars(tmpl, t);
  for (std::uint32_t v : vs) {
    if (!st.is_ground(v)) return AbsMode::Any;
  }
  return AbsMode::Ground;
}

void AbstractInterpreter::ground_term(AbsState& st, const TermTemplate& tmpl,
                                      Cell t) {
  for (std::uint32_t v : collect_template_vars(tmpl, t)) st.set_ground(v);
}

void AbstractInterpreter::havoc_term(AbsState& st, const TermTemplate& tmpl,
                                     Cell t) {
  std::vector<std::uint32_t> vs = nonground_vars(st, tmpl, t);
  std::vector<std::uint32_t> closure = vs;
  for (std::uint32_t v : vs) {
    for (std::uint32_t w : st.aliases_of(v)) closure.push_back(w);
  }
  std::sort(closure.begin(), closure.end());
  closure.erase(std::unique(closure.begin(), closure.end()), closure.end());
  for (std::uint32_t v : closure) st.demote(v);
  for (std::size_t i = 0; i < closure.size(); ++i) {
    for (std::size_t j = i + 1; j < closure.size(); ++j) {
      st.add_share(closure[i], closure[j]);
    }
  }
}

ArgPattern AbstractInterpreter::call_pattern(const AbsState& st,
                                             const TermTemplate& tmpl,
                                             Cell goal,
                                             unsigned arity) const {
  ArgPattern pat;
  pat.modes.resize(arity);
  if (arity == 0) return pat;
  const std::uint64_t p = goal.payload();
  for (unsigned i = 0; i < arity; ++i) {
    pat.modes[i] = term_mode(st, tmpl, tmpl.cells[p + 1 + i]);
  }
  for (unsigned i = 0; i < arity; ++i) {
    for (unsigned j = i + 1; j < arity; ++j) {
      if (pat.modes[i] == AbsMode::Ground || pat.modes[j] == AbsMode::Ground) {
        continue;
      }
      if (args_may_share(st, tmpl, tmpl.cells[p + 1 + i],
                         tmpl.cells[p + 1 + j])) {
        pat.share.emplace(i, j);
      }
    }
  }
  return pat;
}

void AbstractInterpreter::apply_summary(AbsState& st, const TermTemplate& tmpl,
                                        Cell goal, unsigned arity,
                                        const SuccessSummary& sum) {
  if (arity == 0) return;
  const std::uint64_t p = goal.payload();

  // Call-time modes and the ripple set (variables aliased to any argument
  // the callee may bind), computed before mutation.
  std::vector<AbsMode> cm(arity);
  std::vector<std::uint32_t> ripple;
  for (unsigned i = 0; i < arity; ++i) {
    const Cell arg = tmpl.cells[p + 1 + i];
    cm[i] = term_mode(st, tmpl, arg);
    if (cm[i] == AbsMode::Ground) continue;
    for (std::uint32_t v : nonground_vars(st, tmpl, arg)) {
      for (std::uint32_t w : st.aliases_of(v)) ripple.push_back(w);
    }
  }

  // Phase 1: grounding.
  for (unsigned i = 0; i < arity; ++i) {
    if (sum.exit.modes[i] == AbsMode::Ground) {
      ground_term(st, tmpl, tmpl.cells[p + 1 + i]);
    }
  }
  // Phase 2: demotion + intra-argument aliasing for non-ground exits.
  for (unsigned i = 0; i < arity; ++i) {
    if (sum.exit.modes[i] == AbsMode::Ground) continue;
    const Cell arg = tmpl.cells[p + 1 + i];
    if (arg.tag() == Tag::VarSlot && sum.exit.modes[i] == AbsMode::Free) {
      continue;  // still definitely unbound
    }
    std::vector<std::uint32_t> vs = nonground_vars(st, tmpl, arg);
    for (std::uint32_t v : vs) st.demote(v);
    for (std::size_t a = 0; a < vs.size(); ++a) {
      for (std::size_t b = a + 1; b < vs.size(); ++b) {
        st.add_share(vs[a], vs[b]);
      }
    }
  }
  // Phase 3: cross-argument sharing from the exit pattern.
  for (auto [i, j] : sum.exit.share) {
    for (std::uint32_t u : nonground_vars(st, tmpl, tmpl.cells[p + 1 + i])) {
      for (std::uint32_t v :
           nonground_vars(st, tmpl, tmpl.cells[p + 1 + j])) {
        st.add_share(u, v);
      }
    }
  }
  // Phase 4: anything aliased to a possibly-bound argument loses freeness.
  for (std::uint32_t w : ripple) st.demote(w);
}

bool AbstractInterpreter::abs_unify(AbsState& st, const TermTemplate& tmpl,
                                    Cell a, Cell b) {
  if (a.tag() == Tag::VarSlot && b.tag() == Tag::VarSlot) {
    const std::uint32_t va = a.var_slot();
    const std::uint32_t vb = b.var_slot();
    if (st.is_ground(va)) {
      st.set_ground(vb);
      return true;
    }
    if (st.is_ground(vb)) {
      st.set_ground(va);
      return true;
    }
    if (st.mode(va) == AbsMode::Any) st.demote(vb);
    if (st.mode(vb) == AbsMode::Any) st.demote(va);
    st.add_share(va, vb);
    return true;
  }
  if (a.tag() == Tag::VarSlot || b.tag() == Tag::VarSlot) {
    const Cell var = (a.tag() == Tag::VarSlot) ? a : b;
    const Cell term = (a.tag() == Tag::VarSlot) ? b : a;
    const std::uint32_t v = var.var_slot();
    if (st.is_ground(v)) {
      ground_term(st, tmpl, term);
      return true;
    }
    if (term_mode(st, tmpl, term) == AbsMode::Ground) {
      st.set_ground(v);
      return true;
    }
    // v is bound to a partially instantiated term: v loses freeness, its
    // aliases may have been bound through it, and v now shares with the
    // term's non-ground variables (which keep their own modes).
    const std::vector<std::uint32_t> aliases = st.aliases_of(v);
    st.demote(v);
    for (std::uint32_t w : aliases) st.demote(w);
    for (std::uint32_t u : nonground_vars(st, tmpl, term)) {
      st.add_share(v, u);
      for (std::uint32_t w : aliases) st.add_share(w, u);
    }
    return true;
  }
  // Both sides non-var: structural.
  switch (a.tag()) {
    case Tag::Int:
      return b.tag() == Tag::Int && a.integer() == b.integer();
    case Tag::Atm:
      return b.tag() == Tag::Atm && a.symbol() == b.symbol();
    case Tag::Lst: {
      if (b.tag() != Tag::Lst) return false;
      return abs_unify(st, tmpl, tmpl.cells[a.payload()],
                       tmpl.cells[b.payload()]) &&
             abs_unify(st, tmpl, tmpl.cells[a.payload() + 1],
                       tmpl.cells[b.payload() + 1]);
    }
    case Tag::Str: {
      if (b.tag() != Tag::Str) return false;
      const Cell fa = tmpl.cells[a.payload()];
      const Cell fb = tmpl.cells[b.payload()];
      if (fa.fun_symbol() != fb.fun_symbol() ||
          fa.fun_arity() != fb.fun_arity()) {
        return false;
      }
      for (unsigned i = 1; i <= fa.fun_arity(); ++i) {
        if (!abs_unify(st, tmpl, tmpl.cells[a.payload() + i],
                       tmpl.cells[b.payload() + i])) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

bool AbstractInterpreter::exec_builtin(AbsState& st, const TermTemplate& tmpl,
                                       Cell goal, BuiltinId id,
                                       const AbsProgram::ClauseInfo& ci,
                                       std::size_t clause_idx) {
  const std::uint64_t p = (goal.tag() == Tag::Str) ? goal.payload() : 0;
  auto arg = [&](unsigned i) { return tmpl.cells[p + i]; };
  switch (id) {
    case BuiltinId::True:
    case BuiltinId::IteCommit:
    case BuiltinId::Write:
    case BuiltinId::Nl:
    case BuiltinId::Tab:
    case BuiltinId::NotUnify:
    case BuiltinId::TermEq:
    case BuiltinId::TermNeq:
    case BuiltinId::TermLt:
    case BuiltinId::TermGt:
    case BuiltinId::TermLeq:
    case BuiltinId::TermGeq:
    case BuiltinId::AssertZ:
    case BuiltinId::AssertA:
    case BuiltinId::SnapshotRefresh:
    case BuiltinId::TabGen:  // runtime-internal; never in analyzed source
      return true;  // no bindings on success
    case BuiltinId::Fail:
    case BuiltinId::Throw:
      return false;  // never succeeds normally
    case BuiltinId::Unify:
      return abs_unify(st, tmpl, arg(1), arg(2));
    case BuiltinId::Var: {
      const Cell t = arg(1);
      if (term_mode(st, tmpl, t) == AbsMode::Ground) return false;
      if (t.tag() == Tag::Lst || t.tag() == Tag::Str) return false;
      if (t.tag() == Tag::VarSlot) {
        st.modes[t.var_slot()] = AbsMode::Free;  // success refines to free
      }
      return true;
    }
    case BuiltinId::Nonvar:
      return !(arg(1).tag() == Tag::VarSlot &&
               st.mode(arg(1).var_slot()) == AbsMode::Free);
    case BuiltinId::Atom:
    case BuiltinId::Integer:
    case BuiltinId::Atomic: {
      const Cell t = arg(1);
      if (t.tag() == Tag::Lst || t.tag() == Tag::Str) return false;
      if (t.tag() == Tag::Int) return id != BuiltinId::Atom;
      if (t.tag() == Tag::Atm) return id != BuiltinId::Integer;
      if (st.mode(t.var_slot()) == AbsMode::Free) return false;
      st.set_ground(t.var_slot());  // atoms and integers are ground
      return true;
    }
    case BuiltinId::Compound: {
      const Cell t = arg(1);
      if (t.tag() == Tag::Int || t.tag() == Tag::Atm) return false;
      if (t.tag() == Tag::VarSlot && st.mode(t.var_slot()) == AbsMode::Free) {
        return false;
      }
      return true;
    }
    case BuiltinId::Ground: {
      if (arg(1).tag() == Tag::VarSlot &&
          st.mode(arg(1).var_slot()) == AbsMode::Free) {
        return false;
      }
      ground_term(st, tmpl, arg(1));
      return true;
    }
    case BuiltinId::Indep: {
      // indep(A, B) succeeds exactly when A and B reach no common unbound
      // variable at call time. Success therefore (a) grounds every
      // variable occurring on both sides (a shared non-ground binding
      // would be a common reachable variable), and (b) discharges every
      // may-share pair across the two sides. This is the transfer that
      // makes CGE then-branches APL001-clean by construction.
      const std::vector<std::uint32_t> va = collect_template_vars(tmpl, arg(1));
      const std::vector<std::uint32_t> vb = collect_template_vars(tmpl, arg(2));
      for (std::uint32_t u : va) {
        if (std::find(vb.begin(), vb.end(), u) == vb.end()) continue;
        if (st.mode(u) == AbsMode::Free) return false;  // always fails
        st.set_ground(u);
      }
      for (std::uint32_t u : va) {
        for (std::uint32_t v : vb) {
          if (u == v) continue;
          st.share.erase({std::min(u, v), std::max(u, v)});
        }
      }
      return true;
    }
    case BuiltinId::Is:
      // Success implies the expression evaluated (all its variables bound to
      // ground arithmetic terms) and the left side unified with a number.
      ground_term(st, tmpl, arg(2));
      ground_term(st, tmpl, arg(1));
      return true;
    case BuiltinId::ArithEq:
    case BuiltinId::ArithNeq:
    case BuiltinId::Lt:
    case BuiltinId::Gt:
    case BuiltinId::Leq:
    case BuiltinId::Geq:
      ground_term(st, tmpl, arg(1));
      ground_term(st, tmpl, arg(2));
      return true;
    case BuiltinId::Succ:
      ground_term(st, tmpl, arg(1));
      ground_term(st, tmpl, arg(2));
      return true;
    case BuiltinId::Functor:
      ground_term(st, tmpl, arg(2));
      ground_term(st, tmpl, arg(3));
      havoc_term(st, tmpl, arg(1));
      return true;
    case BuiltinId::Arg:
      ground_term(st, tmpl, arg(1));
      if (term_mode(st, tmpl, arg(2)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(3));
      } else {
        havoc_term(st, tmpl, arg(3));
        for (std::uint32_t u : nonground_vars(st, tmpl, arg(3))) {
          for (std::uint32_t v : nonground_vars(st, tmpl, arg(2))) {
            st.add_share(u, v);
          }
        }
      }
      return true;
    case BuiltinId::Univ:
      if (term_mode(st, tmpl, arg(1)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(2));
      } else if (term_mode(st, tmpl, arg(2)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(1));
      } else {
        havoc_term(st, tmpl, arg(1));
        havoc_term(st, tmpl, arg(2));
        for (std::uint32_t u : nonground_vars(st, tmpl, arg(1))) {
          for (std::uint32_t v : nonground_vars(st, tmpl, arg(2))) {
            st.add_share(u, v);
          }
        }
      }
      return true;
    case BuiltinId::CopyTerm:
      // The copy has fresh variables: no sharing with the original.
      if (term_mode(st, tmpl, arg(1)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(2));
      } else {
        havoc_term(st, tmpl, arg(2));
      }
      return true;
    case BuiltinId::Findall: {
      // The goal runs on a backtrack-local copy; its bindings are undone.
      AbsState scratch = st;
      const bool ok = exec_goal(ci, clause_idx, scratch, arg(2));
      if (!ok || term_mode(scratch, tmpl, arg(1)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(3));  // [] or a list of ground copies
      } else {
        havoc_term(st, tmpl, arg(3));  // copies: fresh vars, no sharing
      }
      return true;
    }
    case BuiltinId::Retract:
      havoc_term(st, tmpl, arg(1));
      return true;
    case BuiltinId::Catch: {
      AbsState normal = st;
      const bool ok1 = exec_goal(ci, clause_idx, normal, arg(1));
      AbsState recov = st;
      havoc_term(recov, tmpl, arg(2));
      const bool ok2 = exec_goal(ci, clause_idx, recov, arg(3));
      if (ok1 && ok2) {
        normal.join(recov);
        st = normal;
        return true;
      }
      if (ok1) {
        st = normal;
        return true;
      }
      if (ok2) {
        st = recov;
        return true;
      }
      return false;
    }
    case BuiltinId::Once:
      return exec_goal(ci, clause_idx, st, arg(1));
    case BuiltinId::MSort:
    case BuiltinId::Sort:
      if (term_mode(st, tmpl, arg(1)) == AbsMode::Ground) {
        ground_term(st, tmpl, arg(2));
      } else {
        havoc_term(st, tmpl, arg(2));
        for (std::uint32_t u : nonground_vars(st, tmpl, arg(1))) {
          for (std::uint32_t v : nonground_vars(st, tmpl, arg(2))) {
            st.add_share(u, v);
          }
        }
      }
      return true;
    case BuiltinId::AtomCodes:
    case BuiltinId::NumberCodes:
    case BuiltinId::AtomLength:
    case BuiltinId::AtomConcat:
    case BuiltinId::CharCode:
      // All arguments are atomic/code-list data on success.
      for (unsigned i = 1; i <= (goal.tag() == Tag::Str
                                     ? tmpl.cells[goal.payload()].fun_arity()
                                     : 0);
           ++i) {
        ground_term(st, tmpl, arg(i));
      }
      return true;
  }
  return true;
}

bool AbstractInterpreter::exec_user_call(AbsState& st,
                                         const TermTemplate& tmpl, Cell goal,
                                         std::uint32_t sym, unsigned arity) {
  const ArgPattern pat = call_pattern(st, tmpl, goal, arity);
  const SuccessSummary sum = summary_of(sym, arity, pat);
  if (!sum.may_succeed) return false;
  apply_summary(st, tmpl, goal, arity, sum);
  return true;
}

bool AbstractInterpreter::exec_goal(const AbsProgram::ClauseInfo& ci,
                                    std::size_t clause_idx, AbsState& st,
                                    Cell goal) {
  const TermTemplate& tmpl = ci.tmpl;
  if (observer_ != nullptr) (*observer_)(clause_idx, goal, st);

  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (goal.tag() == Tag::Atm) {
    sym = goal.symbol();
  } else if (goal.tag() == Tag::Str) {
    const Cell f = tmpl.cells[goal.payload()];
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else if (goal.tag() == Tag::VarSlot) {
    // Metacall of a variable: may run anything reachable from it.
    havoc_term(st, tmpl, goal);
    return true;
  } else {
    return false;  // integers/lists are not callable
  }
  const SymbolTable::Known& k = syms_.known();

  if (arity == 2 && (sym == k.comma)) {
    if (!exec_goal(ci, clause_idx, st, tmpl.cells[goal.payload() + 1])) {
      return false;
    }
    return exec_goal(ci, clause_idx, st, tmpl.cells[goal.payload() + 2]);
  }
  if (arity == 2 && sym == k.amp) {
    // Flatten the whole chain: the observer sees only the outermost '&'
    // (with the pre-state all parallel goals start from); members then run
    // in order, which over-approximates the parallel execution's bindings.
    std::vector<Cell> members;
    Cell cur = goal;
    for (;;) {
      if (cur.tag() == Tag::Str) {
        const Cell f = tmpl.cells[cur.payload()];
        if (f.fun_symbol() == k.amp && f.fun_arity() == 2) {
          members.push_back(tmpl.cells[cur.payload() + 1]);
          cur = tmpl.cells[cur.payload() + 2];
          continue;
        }
      }
      members.push_back(cur);
      break;
    }
    for (Cell m : members) {
      if (!exec_goal(ci, clause_idx, st, m)) return false;
    }
    return true;
  }
  if (arity == 2 && sym == k.semicolon) {
    const Cell l = tmpl.cells[goal.payload() + 1];
    const Cell r = tmpl.cells[goal.payload() + 2];
    Cell cond{};
    Cell then{};
    bool is_ite = false;
    if (l.tag() == Tag::Str) {
      const Cell f = tmpl.cells[l.payload()];
      if (f.fun_symbol() == k.arrow && f.fun_arity() == 2) {
        is_ite = true;
        cond = tmpl.cells[l.payload() + 1];
        then = tmpl.cells[l.payload() + 2];
      }
    }
    AbsState left_st = st;
    bool left_ok;
    if (is_ite) {
      if (observer_ != nullptr) (*observer_)(clause_idx, l, st);
      left_ok = exec_goal(ci, clause_idx, left_st, cond) &&
                exec_goal(ci, clause_idx, left_st, then);
    } else {
      left_ok = exec_goal(ci, clause_idx, left_st, l);
    }
    AbsState right_st = st;
    const bool right_ok = exec_goal(ci, clause_idx, right_st, r);
    if (left_ok && right_ok) {
      left_st.join(right_st);
      st = left_st;
      return true;
    }
    if (left_ok) {
      st = left_st;
      return true;
    }
    if (right_ok) {
      st = right_st;
      return true;
    }
    return false;
  }
  if (arity == 2 && sym == k.arrow) {
    if (!exec_goal(ci, clause_idx, st, tmpl.cells[goal.payload() + 1])) {
      return false;
    }
    return exec_goal(ci, clause_idx, st, tmpl.cells[goal.payload() + 2]);
  }
  if (arity == 1 && sym == k.naf) {
    AbsState scratch = st;
    exec_goal(ci, clause_idx, scratch, tmpl.cells[goal.payload() + 1]);
    return true;  // succeeds without bindings (if at all)
  }
  if (sym == k.call && arity >= 1) {
    const Cell g = tmpl.cells[goal.payload() + 1];
    if (arity == 1 && (g.tag() == Tag::Atm || g.tag() == Tag::Str)) {
      return exec_goal(ci, clause_idx, st, g);
    }
    for (unsigned i = 1; i <= arity; ++i) {
      havoc_term(st, tmpl, tmpl.cells[goal.payload() + i]);
    }
    return true;
  }
  if (arity == 0) {
    if (sym == k.cut || sym == k.truesym) return true;
    if (sym == k.fail) return false;
  }
  if (auto id = builtins_.lookup(sym, arity)) {
    return exec_builtin(st, tmpl, goal, *id, ci, clause_idx);
  }
  if (prog_.defines(sym, arity)) {
    return exec_user_call(st, tmpl, goal, sym, arity);
  }
  // Undefined predicate (the linter flags this separately): assume it may
  // succeed and bind anything it can reach.
  if (goal.tag() == Tag::Str) {
    for (unsigned i = 1; i <= arity; ++i) {
      havoc_term(st, tmpl, tmpl.cells[goal.payload() + i]);
    }
  }
  return true;
}

SuccessSummary AbstractInterpreter::exec_clause(
    const AbsProgram::ClauseInfo& ci, std::size_t clause_idx,
    const ArgPattern& pat) {
  const TermTemplate& tmpl = ci.tmpl;
  AbsState st(tmpl.nvars);
  const unsigned arity = ci.pred_arity;
  const std::uint64_t hp = (ci.head.tag() == Tag::Str) ? ci.head.payload() : 0;
  auto head_arg = [&](unsigned i) { return tmpl.cells[hp + 1 + i]; };

  // Head unification. Grounding first (definite information wins), then
  // demotion for Any arguments, then sharing.
  for (unsigned i = 0; i < arity; ++i) {
    if (pat.modes[i] == AbsMode::Ground) ground_term(st, tmpl, head_arg(i));
  }
  for (unsigned i = 0; i < arity; ++i) {
    if (pat.modes[i] != AbsMode::Any) continue;
    std::vector<std::uint32_t> vs = nonground_vars(st, tmpl, head_arg(i));
    for (std::uint32_t v : vs) st.demote(v);
    for (std::size_t a = 0; a < vs.size(); ++a) {
      for (std::size_t b = a + 1; b < vs.size(); ++b) {
        st.add_share(vs[a], vs[b]);
      }
    }
  }
  for (auto [i, j] : pat.share) {
    for (std::uint32_t u : nonground_vars(st, tmpl, head_arg(i))) {
      for (std::uint32_t v : nonground_vars(st, tmpl, head_arg(j))) {
        st.add_share(u, v);
      }
    }
  }

  SuccessSummary out;
  if (!exec_goal(ci, clause_idx, st, ci.body)) return out;  // no success
  out.may_succeed = true;
  out.exit.modes.resize(arity);
  for (unsigned i = 0; i < arity; ++i) {
    out.exit.modes[i] = term_mode(st, tmpl, head_arg(i));
  }
  for (unsigned i = 0; i < arity; ++i) {
    for (unsigned j = i + 1; j < arity; ++j) {
      if (out.exit.modes[i] == AbsMode::Ground ||
          out.exit.modes[j] == AbsMode::Ground) {
        continue;
      }
      if (args_may_share(st, tmpl, head_arg(i), head_arg(j))) {
        out.exit.share.emplace(i, j);
      }
    }
  }
  return out;
}

SuccessSummary AbstractInterpreter::compute_call(const MemoKey& key,
                                                 std::uint32_t sym,
                                                 unsigned arity) {
  auto it = prog_.preds.find(pred_key(sym, arity));
  if (it == prog_.preds.end()) {
    SuccessSummary top;
    top.may_succeed = true;
    top.exit = ArgPattern::top(arity);
    return top;
  }
  SuccessSummary out;
  out.exit.modes.resize(arity, AbsMode::Ground);
  bool first = true;
  for (std::size_t idx : it->second) {
    SuccessSummary s = exec_clause(prog_.clauses[idx], idx, key.second);
    if (!s.may_succeed) continue;
    if (first || !out.may_succeed) {
      out = s;
      first = false;
    } else {
      out.exit.join(s.exit);
    }
    out.may_succeed = true;
  }
  return out;
}

SuccessSummary AbstractInterpreter::summary_of(std::uint32_t sym,
                                               unsigned arity,
                                               const ArgPattern& pat) {
  const MemoKey key{pred_key(sym, arity), pat};
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  // Optimistic bottom ("no success yet"): recursive self-references read it
  // while we compute; stabilize() then iterates to the global fixpoint.
  memo_[key] = SuccessSummary{};
  SuccessSummary result = compute_call(key, sym, arity);
  memo_[key] = result;
  return result;
}

void AbstractInterpreter::stabilize() {
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<MemoKey> keys;
    keys.reserve(memo_.size());
    for (const auto& [k, v] : memo_) keys.push_back(k);
    for (const MemoKey& key : keys) {
      const std::uint32_t sym = static_cast<std::uint32_t>(key.first >> 12);
      const unsigned arity = static_cast<unsigned>(key.first & 0xFFF);
      SuccessSummary next = compute_call(key, sym, arity);
      // Join with the previous value: the chain only ascends, so the loop
      // terminates (finite lattice).
      SuccessSummary& cur = memo_[key];
      if (next.may_succeed && cur.may_succeed) next.exit.join(cur.exit);
      if (cur.may_succeed && !next.may_succeed) next = cur;
      if (!(next == cur)) {
        cur = next;
        changed = true;
      }
    }
  }
}

SuccessSummary AbstractInterpreter::analyze_call(std::uint32_t sym,
                                                 unsigned arity,
                                                 const ArgPattern& pat) {
  summary_of(sym, arity, pat);
  stabilize();
  return memo_[MemoKey{pred_key(sym, arity), pat}];
}

SuccessSummary AbstractInterpreter::analyze_entry(const TermTemplate& query,
                                                  AbsState* out_state) {
  AbsProgram::ClauseInfo ci;
  ci.tmpl = query;
  ci.head = query.root;
  ci.body = query.root;
  AbsState st(query.nvars);
  const bool ok = exec_goal(ci, kEntryClause, st, query.root);
  stabilize();
  // Re-run on the stabilized memo so the exit state reflects the fixpoint.
  AbsState st2(query.nvars);
  const bool ok2 = exec_goal(ci, kEntryClause, st2, query.root);
  if (out_state != nullptr) *out_state = st2;
  SuccessSummary s;
  s.may_succeed = ok2 || ok;
  return s;
}

void AbstractInterpreter::report(const GoalObserver& obs) {
  observer_ = &obs;
  std::vector<MemoKey> keys;
  keys.reserve(memo_.size());
  for (const auto& [k, v] : memo_) keys.push_back(k);
  for (const MemoKey& key : keys) {
    const std::uint32_t sym = static_cast<std::uint32_t>(key.first >> 12);
    const unsigned arity = static_cast<unsigned>(key.first & 0xFFF);
    auto it = prog_.preds.find(pred_key(sym, arity));
    if (it == prog_.preds.end()) continue;
    for (std::size_t idx : it->second) {
      (void)exec_clause(prog_.clauses[idx], idx, key.second);
    }
  }
  observer_ = nullptr;
}

bool AbstractInterpreter::ground_on_success_top(std::uint32_t sym,
                                                unsigned arity) {
  const SuccessSummary s = analyze_call(sym, arity, ArgPattern::top(arity));
  if (!s.may_succeed) return true;  // vacuously: it never succeeds
  for (AbsMode m : s.exit.modes) {
    if (m != AbsMode::Ground) return false;
  }
  return true;
}

}  // namespace ace
