#include "analysis/annotate.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/absint.hpp"
#include "analysis/purity.hpp"
#include "analysis/render.hpp"
#include "parse/parser.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

// Collects the variable slots occurring in a template subterm.
void collect_vars(const TermTemplate& tmpl, Cell c,
                  std::set<std::uint32_t>& out) {
  switch (c.tag()) {
    case Tag::VarSlot:
      out.insert(c.var_slot());
      return;
    case Tag::Lst:
      collect_vars(tmpl, tmpl.cells[c.payload()], out);
      collect_vars(tmpl, tmpl.cells[c.payload() + 1], out);
      return;
    case Tag::Str: {
      const Cell f = tmpl.cells[c.payload()];
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        collect_vars(tmpl, tmpl.cells[c.payload() + i], out);
      }
      return;
    }
    default:
      return;
  }
}

bool is_arith_or_test(const std::string& n, unsigned arity) {
  static const char* kBuiltins2[] = {"is", "=", "\\=", "==", "\\==", "<",
                                     ">",  "=<", ">=", "=:=", "=\\=", "@<",
                                     "@>", "@=<", "@>="};
  if (arity == 2) {
    for (const char* b : kBuiltins2) {
      if (n == b) return true;
    }
  }
  if (arity == 1 &&
      (n == "var" || n == "nonvar" || n == "atom" || n == "integer" ||
       n == "atomic" || n == "compound" || n == "ground" || n == "\\+")) {
    return true;
  }
  if (arity == 0 && (n == "true" || n == "fail" || n == "!")) return true;
  return false;
}

// Flattens a comma chain into conjunct cells.
void flatten_comma(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                   std::vector<Cell>& out) {
  if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    if (f.fun_symbol() == syms.known().comma && f.fun_arity() == 2) {
      flatten_comma(syms, tmpl, tmpl.cells[c.payload() + 1], out);
      flatten_comma(syms, tmpl, tmpl.cells[c.payload() + 2], out);
      return;
    }
  }
  out.push_back(c);
}

GoalInfo goal_info(const SymbolTable& syms, const TermTemplate& tmpl,
                   Cell c) {
  GoalInfo g;
  std::set<std::uint32_t> vars;
  collect_vars(tmpl, c, vars);
  g.vars.assign(vars.begin(), vars.end());
  if (c.tag() == Tag::Atm) {
    g.name = syms.name(c.symbol());
    g.arity = 0;
  } else if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    g.name = syms.name(f.fun_symbol());
    g.arity = f.fun_arity();
  } else {
    g.name = "?";
  }
  // Control constructs and tests never fork. This also makes the rewrite
  // idempotent: an existing '&' chain or CGE is one comma-level conjunct,
  // kept opaque and re-printed verbatim.
  g.builtin_like = is_arith_or_test(g.name, g.arity) || g.name == ";" ||
                   g.name == "->" || g.name == "," || g.name == "&";
  return g;
}

// Walks all goal positions of a body (the same descent as the linter) and
// calls `fn(goal)` for each callable goal.
void walk_goals(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                const std::function<void(Cell)>& fn) {
  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (c.tag() == Tag::Atm) {
    sym = c.symbol();
  } else if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    return;  // variables / data
  }
  const SymbolTable::Known& k = syms.known();
  const std::string& n = syms.name(sym);
  if (arity == 2 && (sym == k.comma || sym == k.amp || sym == k.semicolon ||
                     sym == k.arrow)) {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 2], fn);
    return;
  }
  if (arity == 1 && (sym == k.naf || sym == k.call || n == "once")) {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    return;
  }
  if (arity == 3 && n == "findall") {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 2], fn);
    fn(c);
    return;
  }
  if (arity == 3 && n == "catch") {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 3], fn);
    return;
  }
  fn(c);
}

// Renders a variable slot the way render_template does, so CGE guards name
// the same variables the re-printed goals do.
std::string var_text(const TermTemplate& tmpl, std::uint32_t slot) {
  const std::string& n = tmpl.var_names[slot];
  if (n == "_" || n.empty()) return strf("_V%u", slot);
  return n;
}

// ---------------------------------------------------------------------------
// Legacy syntactic path (use_absint = false): groundness is approximated by
// "bound by an arithmetic `is` earlier in the body"; independence is the
// absence of shared non-ground variables.

bool shares_unground_var(const GoalInfo& a, const GoalInfo& b,
                         const std::set<std::uint32_t>& ground) {
  for (std::uint32_t v : a.vars) {
    if (ground.count(v)) continue;
    if (std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end()) {
      return true;
    }
  }
  return false;
}

void group_syntactic(const TermTemplate& tmpl,
                     const std::vector<Cell>& conjuncts,
                     const AnnotateOptions& opts, ClauseAnalysis& out) {
  std::set<std::uint32_t> ground;
  std::vector<std::size_t> group;
  auto close_group = [&]() {
    if (!group.empty()) {
      ParGroup pg;
      pg.goals = group;
      out.par_groups.push_back(std::move(pg));
    }
    group.clear();
  };
  for (std::size_t i = 0; i < out.goals.size(); ++i) {
    const GoalInfo& g = out.goals[i];
    bool fuse = false;
    if (!g.builtin_like || !opts.skip_builtins) {
      fuse = !group.empty();
      for (std::size_t j : group) {
        if (shares_unground_var(out.goals[j], g, ground)) {
          fuse = false;
          break;
        }
      }
      // Never fuse with a builtin-like group member.
      for (std::size_t j : group) {
        if (out.goals[j].builtin_like) fuse = false;
      }
    }
    if (!fuse) close_group();
    group.push_back(i);
    if (g.builtin_like) close_group();

    // Post-goal groundness updates.
    if (g.name == "is" && g.arity == 2 && !g.vars.empty()) {
      // Result variable(s) of `is` become ground.
      Cell c = conjuncts[i];
      std::set<std::uint32_t> lhs;
      collect_vars(tmpl, tmpl.cells[c.payload() + 1], lhs);
      ground.insert(lhs.begin(), lhs.end());
    }
  }
  close_group();
}

// ---------------------------------------------------------------------------
// Abstract-interpretation path.

// Program-wide analysis context shared by all clauses.
struct AbsContext {
  AbsProgram prog;
  PuritySummary purity;
  std::optional<Builtins> builtins;
  // The program defines its own indep/2 (which then takes precedence over
  // the CGE-guard builtin at dispatch): never emit indep/2 checks, since
  // they would call user code instead of the runtime independence test.
  bool user_indep = false;
  // Joined (over all reached call patterns) abstract state *before* each
  // goal, keyed by (program clause index, goal cell).
  std::map<std::pair<std::size_t, std::uint64_t>, AbsState> pre;
};

AbsContext build_abs_context(SymbolTable& syms, const std::string& source,
                             const AnnotateOptions& opts) {
  AbsContext ctx;
  ctx.prog = AbsProgram::from_source(syms, source, /*include_library=*/true);
  ctx.purity = analyze_purity(ctx.prog, syms);
  ctx.builtins.emplace(syms);
  ctx.user_indep = ctx.prog.defines(syms.intern("indep"), 2);

  AbstractInterpreter interp(ctx.prog, syms);
  if (!opts.entries.empty()) {
    for (const std::string& q : opts.entries) {
      TermTemplate query = parse_term_text(syms, q);
      interp.analyze_entry(query);
    }
  } else {
    // Root predicates (never called by another predicate; self-recursion
    // does not count) under all-ground arguments — the benchmark-driver
    // shape. This mirrors the linter's default entry set exactly, so the
    // annotator's independence proofs cover every call pattern the
    // linter's APL001 replay will examine.
    std::set<PredKey> called;
    for (const auto& ci : ctx.prog.clauses) {
      if (ci.from_library) continue;
      walk_goals(syms, ci.tmpl, ci.body, [&](Cell g) {
        std::uint32_t sym = 0;
        unsigned arity = 0;
        if (g.tag() == Tag::Atm) {
          sym = g.symbol();
        } else if (g.tag() == Tag::Str) {
          const Cell f = ci.tmpl.cells[g.payload()];
          sym = f.fun_symbol();
          arity = f.fun_arity();
        } else {
          return;
        }
        if (pred_key(sym, arity) != pred_key(ci.pred_sym, ci.pred_arity)) {
          called.insert(pred_key(sym, arity));
        }
      });
    }
    std::set<PredKey> roots;
    for (const auto& ci : ctx.prog.clauses) {
      if (ci.from_library) continue;
      const PredKey pk = pred_key(ci.pred_sym, ci.pred_arity);
      if (called.count(pk) == 0) roots.insert(pk);
    }
    if (roots.empty()) {
      for (const auto& ci : ctx.prog.clauses) {
        if (!ci.from_library) {
          roots.insert(pred_key(ci.pred_sym, ci.pred_arity));
        }
      }
    }
    for (PredKey pk : roots) {
      const auto sym = static_cast<std::uint32_t>(pk >> 12);
      const auto arity = static_cast<unsigned>(pk & 0xFFF);
      interp.analyze_call(sym, arity, ArgPattern::all_ground(arity));
    }
  }

  interp.report([&](std::size_t clause_idx, Cell goal, const AbsState& st) {
    if (clause_idx == AbstractInterpreter::kEntryClause) return;
    auto key = std::make_pair(clause_idx, goal.raw);
    auto [it, fresh] = ctx.pre.emplace(key, st);
    if (!fresh) it->second.join(st);
  });
  return ctx;
}

enum class IndepStatus { kYes, kConditional, kNo };

// Independence of two goals under the abstract state at the group's fork
// point. Blocking pairs of mode Any become runtime checks; a definitely
// free shared variable means the check could never succeed, so the pair is
// reported dependent outright.
IndepStatus pair_status(const AbsContext& ctx, const AbsState& st,
                        const TermTemplate& tmpl, const GoalInfo& a,
                        const GoalInfo& b, std::vector<std::string>* checks) {
  bool conditional = false;
  for (std::uint32_t u : a.vars) {
    for (std::uint32_t v : b.vars) {
      if (u == v) {
        if (st.is_ground(u)) continue;
        if (st.mode(u) == AbsMode::Free) return IndepStatus::kNo;
        conditional = true;
        checks->push_back("ground(" + var_text(tmpl, u) + ")");
      } else if (st.may_share(u, v) && !st.is_ground(u) && !st.is_ground(v)) {
        if (ctx.user_indep) return IndepStatus::kNo;
        conditional = true;
        const std::uint32_t lo = std::min(u, v);
        const std::uint32_t hi = std::max(u, v);
        checks->push_back("indep(" + var_text(tmpl, lo) + ", " +
                          var_text(tmpl, hi) + ")");
      }
    }
  }
  return conditional ? IndepStatus::kConditional : IndepStatus::kYes;
}

void group_absint(const AbsContext& ctx, std::size_t clause_idx,
                  const TermTemplate& tmpl,
                  const std::vector<Cell>& conjuncts,
                  const AnnotateOptions& opts, ClauseAnalysis& out) {
  auto pre_of = [&](Cell c) -> const AbsState* {
    auto it = ctx.pre.find({clause_idx, c.raw});
    return it == ctx.pre.end() ? nullptr : &it->second;
  };

  ParGroup cur;
  const AbsState* start = nullptr;  // pre-state of the group's first member
  auto close = [&]() {
    if (!cur.goals.empty()) out.par_groups.push_back(std::move(cur));
    cur = ParGroup{};
    start = nullptr;
  };

  for (std::size_t i = 0; i < out.goals.size(); ++i) {
    const GoalInfo& g = out.goals[i];
    const AbsState* sti = pre_of(conjuncts[i]);
    // Goals with observable effects never join a group and close the
    // current one: side effects keep their sequential order. Clauses the
    // entry analysis never reaches have no pre-states and stay sequential.
    const bool eligible = (!g.builtin_like || !opts.skip_builtins) &&
                          g.effects == 0 && sti != nullptr;
    if (!eligible) {
      close();
      cur.goals.push_back(i);
      close();
      continue;
    }
    if (cur.goals.empty()) {
      cur.goals.push_back(i);
      start = sti;
      if (g.builtin_like) close();
      continue;
    }
    std::vector<std::string> checks;
    IndepStatus status = IndepStatus::kYes;
    bool member_builtin = false;
    for (std::size_t j : cur.goals) {
      if (out.goals[j].builtin_like) member_builtin = true;
      const IndepStatus s =
          pair_status(ctx, *start, tmpl, out.goals[j], g, &checks);
      if (s == IndepStatus::kNo) {
        status = IndepStatus::kNo;
        break;
      }
      if (s == IndepStatus::kConditional) status = IndepStatus::kConditional;
    }
    if (member_builtin || status == IndepStatus::kNo ||
        (status == IndepStatus::kConditional && !opts.cge)) {
      close();
      cur.goals.push_back(i);
      start = sti;
      if (g.builtin_like) close();
      continue;
    }
    cur.goals.push_back(i);
    for (std::string& c : checks) {
      if (std::find(cur.checks.begin(), cur.checks.end(), c) ==
          cur.checks.end()) {
        cur.checks.push_back(std::move(c));
      }
    }
    if (g.builtin_like) close();
  }
  close();
}

// ---------------------------------------------------------------------------

// One analyzed source term, with everything needed to re-print it.
struct AnalyzedTerm {
  ClauseAnalysis ca;
  const TermTemplate* tmpl = nullptr;
  std::vector<Cell> conjuncts;
};

bool is_directive(const SymbolTable& syms, const TermTemplate& tmpl) {
  if (tmpl.root.tag() != Tag::Str) return false;
  const Cell f = tmpl.cells[tmpl.root.payload()];
  return f.fun_symbol() == syms.known().neck && f.fun_arity() == 1;
}

AnalyzedTerm analyze_clause_term(const SymbolTable& syms,
                                 const TermTemplate& tmpl,
                                 const AnnotateOptions& opts,
                                 const AbsContext* ctx,
                                 std::size_t clause_idx) {
  AnalyzedTerm out;
  out.tmpl = &tmpl;

  // Split head/body (templates from the parser are not yet normalized).
  Cell head = tmpl.root;
  Cell body = atm_cell(syms.known().truesym);
  if (tmpl.root.tag() == Tag::Str) {
    const Cell f = tmpl.cells[tmpl.root.payload()];
    if (f.fun_symbol() == syms.known().neck && f.fun_arity() == 2) {
      head = tmpl.cells[tmpl.root.payload() + 1];
      body = tmpl.cells[tmpl.root.payload() + 2];
    }
  }
  // The head sits left of xfx ':-' (priority 1200), so it may carry
  // priority up to 1199.
  out.ca.head = render_template(syms, tmpl, head, 1199);
  if (ctx != nullptr) {
    const AbsProgram::ClauseInfo& ci = ctx->prog.clauses[clause_idx];
    out.ca.pred = strf("%s/%u", syms.name(ci.pred_sym).c_str(),
                       ci.pred_arity);
    out.ca.line = ci.span.line;
    out.ca.col = ci.span.col;
  }

  flatten_comma(syms, tmpl, body, out.conjuncts);
  for (Cell c : out.conjuncts) {
    GoalInfo g = goal_info(syms, tmpl, c);
    if (ctx != nullptr) {
      g.effects = goal_effects(ctx->prog, syms, *ctx->builtins, ctx->purity,
                               tmpl, c);
    }
    out.ca.goals.push_back(std::move(g));
  }

  if (ctx != nullptr) {
    group_absint(*ctx, clause_idx, tmpl, out.conjuncts, opts, out.ca);
  } else {
    group_syntactic(tmpl, out.conjuncts, opts, out.ca);
  }
  for (const ParGroup& pg : out.ca.par_groups) {
    out.ca.groups.push_back(pg.goals);
  }
  return out;
}

std::vector<AnalyzedTerm> analyze_impl(SymbolTable& syms,
                                       const std::string& source,
                                       const std::vector<TermTemplate>& tmpls,
                                       const AnnotateOptions& opts,
                                       const AbsContext* ctx) {
  std::vector<AnalyzedTerm> out;
  std::size_t clause_idx = 0;  // index into ctx->prog.clauses
  (void)source;
  for (const TermTemplate& tmpl : tmpls) {
    if (is_directive(syms, tmpl)) {
      AnalyzedTerm at;
      at.tmpl = &tmpl;
      at.ca.directive = true;
      // A directive term carries priority 1200 (prefix ':-').
      at.ca.head = render_template(syms, tmpl, tmpl.root, 1200);
      out.push_back(std::move(at));
      continue;
    }
    // AbsProgram skips directives, so non-directive templates line up with
    // its program clauses in order. Analyze against the AbsProgram's own
    // template: the observer's pre-states are keyed by its cells.
    const TermTemplate& atmpl =
        ctx != nullptr ? ctx->prog.clauses[clause_idx].tmpl : tmpl;
    out.push_back(analyze_clause_term(syms, atmpl, opts, ctx, clause_idx));
    ++clause_idx;
  }
  return out;
}

std::string render_annotated(const SymbolTable& syms, const AnalyzedTerm& at) {
  const ClauseAnalysis& ca = at.ca;
  if (ca.directive) return ca.head + ".";
  if (ca.goals.empty() ||
      (ca.goals.size() == 1 && ca.goals[0].name == "true" &&
       ca.goals[0].arity == 0)) {
    return ca.head + ".";
  }
  const TermTemplate& tmpl = *at.tmpl;
  std::vector<std::string> parts;
  for (const ParGroup& grp : ca.par_groups) {
    // Members of a '&' group (xfy 975) may carry priority up to 974; a
    // lone conjunct of the ',' chain (xfy 1000) up to 999. This is what
    // keeps ';'/'->' subterms parenthesized on re-print, and what makes a
    // second annotation pass re-print '&' chains and CGEs byte-identically.
    if (grp.goals.size() == 1) {
      parts.push_back(
          render_template(syms, tmpl, at.conjuncts[grp.goals[0]], 999));
      continue;
    }
    std::vector<std::string> members;
    for (std::size_t idx : grp.goals) {
      members.push_back(render_template(syms, tmpl, at.conjuncts[idx], 974));
    }
    const std::string amp = join(members, " & ");
    if (grp.checks.empty()) {
      parts.push_back(amp);
      continue;
    }
    // Conditional Graph Expression: checks guard the parallel conjunction,
    // the else branch preserves the sequential program.
    std::vector<std::string> seq;
    for (std::size_t idx : grp.goals) {
      seq.push_back(render_template(syms, tmpl, at.conjuncts[idx], 999));
    }
    parts.push_back("(" + join(grp.checks, ", ") + " -> " + amp + " ; " +
                    join(seq, ", ") + ")");
  }
  return ca.head + " :-\n    " + join(parts, ",\n    ") + ".";
}

}  // namespace

std::vector<ClauseAnalysis> analyze_program(SymbolTable& syms,
                                            const std::string& source,
                                            const AnnotateOptions& opts) {
  std::vector<TermTemplate> tmpls = parse_program(syms, source);
  AbsContext ctx;
  if (opts.use_absint) ctx = build_abs_context(syms, source, opts);
  std::vector<ClauseAnalysis> out;
  for (AnalyzedTerm& at :
       analyze_impl(syms, source, tmpls, opts,
                    opts.use_absint ? &ctx : nullptr)) {
    out.push_back(std::move(at.ca));
  }
  return out;
}

std::string annotate_program(SymbolTable& syms, const std::string& source,
                             const AnnotateOptions& opts) {
  std::vector<TermTemplate> tmpls = parse_program(syms, source);
  AbsContext ctx;
  if (opts.use_absint) ctx = build_abs_context(syms, source, opts);
  std::string out;
  for (const AnalyzedTerm& at :
       analyze_impl(syms, source, tmpls, opts,
                    opts.use_absint ? &ctx : nullptr)) {
    out += render_annotated(syms, at) + "\n";
  }
  return out;
}

Determinacy analyze_determinacy(const Database& db, std::uint32_t sym,
                                unsigned arity) {
  const Predicate* pred = db.find(sym, arity);
  if (pred == nullptr) return Determinacy::Det;  // no clauses: fails det
  if (pred->is_dynamic()) return Determinacy::Unknown;

  // Provably deterministic if (a) at most one live clause, or (b) every
  // clause has a distinct non-Var index key (any call selects at most one
  // candidate... modulo unbound calls, which we cannot rule out statically
  // — the paper's point about compile-time approximation; we still call
  // this Det for the common first-arg-bound usage and leave the precise
  // answer to the runtime check).
  std::vector<const Clause*> live;
  for (std::uint32_t i = 0; i < pred->num_clauses(); ++i) {
    if (!pred->clause(i).retracted) live.push_back(&pred->clause(i));
  }
  if (live.size() <= 1) return Determinacy::Det;
  std::set<std::pair<std::uint8_t, std::uint64_t>> keys;
  for (const Clause* c : live) {
    if (c->key.kind == IndexKey::Kind::Var) return Determinacy::Unknown;
    if (!keys.emplace(static_cast<std::uint8_t>(c->key.kind), c->key.value)
             .second) {
      return Determinacy::Unknown;  // two clauses share a key
    }
  }
  return Determinacy::Det;
}

}  // namespace ace
