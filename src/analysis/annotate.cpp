#include "analysis/annotate.hpp"

#include <algorithm>
#include <set>

#include "analysis/render.hpp"
#include "parse/parser.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

// Collects the variable slots occurring in a template subterm.
void collect_vars(const TermTemplate& tmpl, Cell c,
                  std::set<std::uint32_t>& out) {
  switch (c.tag()) {
    case Tag::VarSlot:
      out.insert(c.var_slot());
      return;
    case Tag::Lst:
      collect_vars(tmpl, tmpl.cells[c.payload()], out);
      collect_vars(tmpl, tmpl.cells[c.payload() + 1], out);
      return;
    case Tag::Str: {
      const Cell f = tmpl.cells[c.payload()];
      for (unsigned i = 1; i <= f.fun_arity(); ++i) {
        collect_vars(tmpl, tmpl.cells[c.payload() + i], out);
      }
      return;
    }
    default:
      return;
  }
}

bool is_arith_or_test(const std::string& n, unsigned arity) {
  static const char* kBuiltins2[] = {"is", "=", "\\=", "==", "\\==", "<",
                                     ">",  "=<", ">=", "=:=", "=\\=", "@<",
                                     "@>", "@=<", "@>="};
  if (arity == 2) {
    for (const char* b : kBuiltins2) {
      if (n == b) return true;
    }
  }
  if (arity == 1 &&
      (n == "var" || n == "nonvar" || n == "atom" || n == "integer" ||
       n == "atomic" || n == "compound" || n == "ground" || n == "\\+")) {
    return true;
  }
  if (arity == 0 && (n == "true" || n == "fail" || n == "!")) return true;
  return false;
}

// Flattens a comma chain into conjunct cells.
void flatten_comma(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                   std::vector<Cell>& out) {
  if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    if (f.fun_symbol() == syms.known().comma && f.fun_arity() == 2) {
      flatten_comma(syms, tmpl, tmpl.cells[c.payload() + 1], out);
      flatten_comma(syms, tmpl, tmpl.cells[c.payload() + 2], out);
      return;
    }
  }
  out.push_back(c);
}

GoalInfo goal_info(const SymbolTable& syms, const TermTemplate& tmpl,
                   Cell c) {
  GoalInfo g;
  std::set<std::uint32_t> vars;
  collect_vars(tmpl, c, vars);
  g.vars.assign(vars.begin(), vars.end());
  if (c.tag() == Tag::Atm) {
    g.name = syms.name(c.symbol());
    g.arity = 0;
  } else if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    g.name = syms.name(f.fun_symbol());
    g.arity = f.fun_arity();
  } else {
    g.name = "?";
  }
  // Control constructs and tests never fork.
  g.builtin_like = is_arith_or_test(g.name, g.arity) || g.name == ";" ||
                   g.name == "->" || g.name == "," || g.name == "&";
  return g;
}

bool shares_unground_var(const GoalInfo& a, const GoalInfo& b,
                         const std::set<std::uint32_t>& ground) {
  for (std::uint32_t v : a.vars) {
    if (ground.count(v)) continue;
    if (std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end()) {
      return true;
    }
  }
  return false;
}

ClauseAnalysis analyze_clause(const SymbolTable& syms,
                              const TermTemplate& tmpl,
                              const AnnotateOptions& opts) {
  ClauseAnalysis out;

  // Split head/body (templates from the parser are not yet normalized).
  Cell head = tmpl.root;
  Cell body = atm_cell(syms.known().truesym);
  if (tmpl.root.tag() == Tag::Str) {
    const Cell f = tmpl.cells[tmpl.root.payload()];
    if (f.fun_symbol() == syms.known().neck && f.fun_arity() == 2) {
      head = tmpl.cells[tmpl.root.payload() + 1];
      body = tmpl.cells[tmpl.root.payload() + 2];
    }
  }
  // The head sits left of xfx ':-' (priority 1200), so it may carry
  // priority up to 1199.
  out.head = render_template(syms, tmpl, head, 1199);

  std::vector<Cell> conjuncts;
  flatten_comma(syms, tmpl, body, conjuncts);
  for (Cell c : conjuncts) out.goals.push_back(goal_info(syms, tmpl, c));

  // Groundness approximation: the left-hand side of an `is` is ground after
  // the goal runs (it is a fresh arithmetic result in all our corpora).
  std::set<std::uint32_t> ground;

  std::vector<std::size_t> group;
  auto close_group = [&]() {
    if (!group.empty()) out.groups.push_back(group);
    group.clear();
  };
  for (std::size_t i = 0; i < out.goals.size(); ++i) {
    const GoalInfo& g = out.goals[i];
    bool fuse = false;
    if (!g.builtin_like || !opts.skip_builtins) {
      fuse = !group.empty();
      for (std::size_t j : group) {
        if (shares_unground_var(out.goals[j], g, ground)) {
          fuse = false;
          break;
        }
      }
      // Never fuse with a builtin-like group member.
      for (std::size_t j : group) {
        if (out.goals[j].builtin_like) fuse = false;
      }
    }
    if (!fuse) close_group();
    group.push_back(i);
    if (g.builtin_like) close_group();

    // Post-goal groundness updates.
    if (g.name == "is" && g.arity == 2 && !g.vars.empty()) {
      // Result variable(s) of `is` become ground.
      Cell c = conjuncts[i];
      std::set<std::uint32_t> lhs;
      collect_vars(tmpl, tmpl.cells[c.payload() + 1], lhs);
      ground.insert(lhs.begin(), lhs.end());
    }
  }
  close_group();
  return out;
}

std::string render_annotated(const SymbolTable& syms,
                             const TermTemplate& tmpl,
                             const ClauseAnalysis& ca,
                             const std::vector<Cell>& conjuncts) {
  if (ca.goals.empty() ||
      (ca.goals.size() == 1 && ca.goals[0].name == "true" &&
       ca.goals[0].arity == 0)) {
    return ca.head + ".";
  }
  std::vector<std::string> parts;
  for (const auto& grp : ca.groups) {
    // Members of a '&' group (xfy 975) may carry priority up to 974; a
    // lone conjunct of the ',' chain (xfy 1000) up to 999. This is what
    // keeps ';'/'->' subterms parenthesized on re-print.
    const int member_prec = grp.size() == 1 ? 999 : 974;
    std::vector<std::string> members;
    for (std::size_t idx : grp) {
      members.push_back(
          render_template(syms, tmpl, conjuncts[idx], member_prec));
    }
    parts.push_back(members.size() == 1 ? members[0]
                                        : join(members, " & "));
  }
  return ca.head + " :-\n    " + join(parts, ",\n    ") + ".";
}

}  // namespace

std::vector<ClauseAnalysis> analyze_program(SymbolTable& syms,
                                            const std::string& source,
                                            const AnnotateOptions& opts) {
  std::vector<ClauseAnalysis> out;
  for (const TermTemplate& tmpl : parse_program(syms, source)) {
    out.push_back(analyze_clause(syms, tmpl, opts));
  }
  return out;
}

std::string annotate_program(SymbolTable& syms, const std::string& source,
                             const AnnotateOptions& opts) {
  std::string out;
  for (const TermTemplate& tmpl : parse_program(syms, source)) {
    ClauseAnalysis ca = analyze_clause(syms, tmpl, opts);
    // Recompute the conjunct cells (analyze_clause keeps only GoalInfo).
    Cell body = atm_cell(syms.known().truesym);
    if (tmpl.root.tag() == Tag::Str) {
      const Cell f = tmpl.cells[tmpl.root.payload()];
      if (f.fun_symbol() == syms.known().neck && f.fun_arity() == 2) {
        body = tmpl.cells[tmpl.root.payload() + 2];
      }
    }
    std::vector<Cell> conjuncts;
    flatten_comma(syms, tmpl, body, conjuncts);
    out += render_annotated(syms, tmpl, ca, conjuncts) + "\n";
  }
  return out;
}

Determinacy analyze_determinacy(const Database& db, std::uint32_t sym,
                                unsigned arity) {
  const Predicate* pred = db.find(sym, arity);
  if (pred == nullptr) return Determinacy::Det;  // no clauses: fails det
  if (pred->is_dynamic()) return Determinacy::Unknown;

  // Provably deterministic if (a) at most one live clause, or (b) every
  // clause has a distinct non-Var index key (any call selects at most one
  // candidate... modulo unbound calls, which we cannot rule out statically
  // — the paper's point about compile-time approximation; we still call
  // this Det for the common first-arg-bound usage and leave the precise
  // answer to the runtime check).
  std::vector<const Clause*> live;
  for (std::uint32_t i = 0; i < pred->num_clauses(); ++i) {
    if (!pred->clause(i).retracted) live.push_back(&pred->clause(i));
  }
  if (live.size() <= 1) return Determinacy::Det;
  std::set<std::pair<std::uint8_t, std::uint64_t>> keys;
  for (const Clause* c : live) {
    if (c->key.kind == IndexKey::Kind::Var) return Determinacy::Unknown;
    if (!keys.emplace(static_cast<std::uint8_t>(c->key.kind), c->key.value)
             .second) {
      return Determinacy::Unknown;  // two clauses share a key
    }
  }
  return Determinacy::Det;
}

}  // namespace ace
