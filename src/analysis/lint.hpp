// The and-parallel safety linter: a "race detector" for bad '&' annotations
// plus general program hygiene, built on the abstract interpreter
// (absint.hpp) and the determinacy analysis (determinacy.hpp).
//
// Lint codes are documented in diagnostics.hpp. APL001 (unsafe '&') and
// APL004 (possibly-non-ground arithmetic) are flow-sensitive: they come
// from the goal-dependent analysis driven by the configured entry queries.
// When no entries are given, every root predicate (defined but never called
// by another predicate) is analyzed under an all-ground call pattern — the
// common benchmark shape; pass real queries for full precision.
#pragma once

#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/determinacy.hpp"
#include "analysis/diagnostics.hpp"

namespace ace {

struct LintOptions {
  // Entry queries ("goal args.") driving the sharing/groundness analysis.
  std::vector<std::string> entries;
  // Emit APL006 overlapping-clause notes.
  bool pedantic = false;
};

struct LintReport {
  DiagnosticSink sink;
  DeterminacyResult det;
  std::size_t num_clauses = 0;    // program clauses (library excluded)
  std::size_t num_summaries = 0;  // (predicate, call-pattern) pairs analyzed

  std::size_t warnings() const { return sink.count(Severity::Warning); }
  std::size_t errors() const { return sink.count(Severity::Error); }
};

// Parses and lints `source`. Throws AceError on syntax errors (and on
// unparsable entry queries).
LintReport lint_program(SymbolTable& syms, const std::string& source,
                        const LintOptions& opts = {});

}  // namespace ace
