// Interprocedural purity / side-effect analysis.
//
// Computes, for every defined predicate, a bitset of observable effects a
// call may perform: database writes (assert/asserta/assertz/retract),
// stream output (write/print/nl/tab), snapshot re-pinning
// (snapshot_refresh/0), answers drawn from a shared memo table (tabled
// predicates), and opaque metacalls (call(Var), call/N closures). The
// auto-parallelizing annotator uses these bits to forbid '&'-fusion of
// impure goals and to keep every impure goal as a sequential barrier, so
// side effects observe the same order as the unannotated program.
//
// The analysis is a least fixpoint over the call graph: effect bits only
// grow, so chaotic iteration over all clauses terminates.
#pragma once

#include <cstdint>
#include <map>

#include "analysis/absint.hpp"

namespace ace {

// Effect bits. kEffectMeta marks goals whose callee cannot be resolved
// statically (variable metacalls, call/N closures, non-callable terms);
// the annotator must assume the worst for those.
inline constexpr unsigned kEffectDbWrite = 1u << 0;
inline constexpr unsigned kEffectIo = 1u << 1;
inline constexpr unsigned kEffectSnapshot = 1u << 2;
inline constexpr unsigned kEffectTabled = 1u << 3;
inline constexpr unsigned kEffectMeta = 1u << 4;

inline constexpr unsigned kEffectAll = kEffectDbWrite | kEffectIo |
                                       kEffectSnapshot | kEffectTabled |
                                       kEffectMeta;

struct PuritySummary {
  // Effects of one call to each defined predicate (program + library).
  std::map<PredKey, unsigned> effects;

  unsigned of(std::uint32_t sym, unsigned arity) const {
    auto it = effects.find(pred_key(sym, arity));
    return it == effects.end() ? 0u : it->second;
  }
};

// Least fixpoint of the effect bits over `prog`'s call graph. `syms` is
// non-const because the builtin registry interns its names on construction.
PuritySummary analyze_purity(const AbsProgram& prog, SymbolTable& syms);

// Effects of one goal term, descending through the control constructs the
// engine knows (',', '&', ';', '->', '\+', call/1, once/1, findall/3,
// catch/3). Calls to undefined non-builtin predicates report no effects:
// they simply fail at runtime (the linter flags them as APL003).
unsigned goal_effects(const AbsProgram& prog, const SymbolTable& syms,
                      const Builtins& builtins, const PuritySummary& purity,
                      const TermTemplate& tmpl, Cell goal);

}  // namespace ace
