#include "analysis/lint.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "analysis/annotate.hpp"
#include "analysis/render.hpp"
#include "support/strutil.hpp"

namespace ace {
namespace {

std::string pred_name(const SymbolTable& syms, std::uint32_t sym,
                      unsigned arity) {
  return strf("%s/%u", syms.name(sym).c_str(), arity);
}

std::string clause_pred(const SymbolTable& syms,
                        const AbsProgram::ClauseInfo& ci) {
  return pred_name(syms, ci.pred_sym, ci.pred_arity);
}

// Walks all goal positions of a body (descending through the control
// constructs the engine knows) and calls `fn(goal)` for each callable goal.
void walk_goals(const SymbolTable& syms, const TermTemplate& tmpl, Cell c,
                const std::function<void(Cell)>& fn) {
  std::uint32_t sym = 0;
  unsigned arity = 0;
  if (c.tag() == Tag::Atm) {
    sym = c.symbol();
  } else if (c.tag() == Tag::Str) {
    const Cell f = tmpl.cells[c.payload()];
    sym = f.fun_symbol();
    arity = f.fun_arity();
  } else {
    return;  // variables / data
  }
  const SymbolTable::Known& k = syms.known();
  const std::string& n = syms.name(sym);
  if (arity == 2 && (sym == k.comma || sym == k.amp || sym == k.semicolon ||
                     sym == k.arrow)) {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 2], fn);
    return;
  }
  if (arity == 1 && (sym == k.naf || (sym == k.call) || n == "once")) {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    return;
  }
  if (arity == 3 && n == "findall") {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 2], fn);
    fn(c);
    return;
  }
  if (arity == 3 && n == "catch") {
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 1], fn);
    walk_goals(syms, tmpl, tmpl.cells[c.payload() + 3], fn);
    return;
  }
  fn(c);
}

// Flattens an '&' chain into its parallel members.
std::vector<Cell> amp_members(const SymbolTable& syms,
                              const TermTemplate& tmpl, Cell c) {
  std::vector<Cell> out;
  Cell cur = c;
  for (;;) {
    if (cur.tag() == Tag::Str) {
      const Cell f = tmpl.cells[cur.payload()];
      if (f.fun_symbol() == syms.known().amp && f.fun_arity() == 2) {
        out.push_back(tmpl.cells[cur.payload() + 1]);
        cur = tmpl.cells[cur.payload() + 2];
        continue;
      }
    }
    out.push_back(cur);
    break;
  }
  return out;
}

std::string var_display_name(const TermTemplate& tmpl, std::uint32_t slot) {
  const std::string& n = tmpl.var_names[slot];
  return (n.empty() || n == "_") ? "_" : n;
}

}  // namespace

LintReport lint_program(SymbolTable& syms, const std::string& source,
                        const LintOptions& opts) {
  LintReport rep;
  AbsProgram prog =
      AbsProgram::from_source(syms, source, /*include_library=*/true);
  Builtins builtins(syms);
  const SymbolTable::Known& k = syms.known();

  for (const auto& ci : prog.clauses) {
    if (!ci.from_library) ++rep.num_clauses;
  }

  // ---- Syntactic passes ---------------------------------------------------

  // APL002: singleton variables (named, single occurrence in the clause).
  for (const auto& ci : prog.clauses) {
    if (ci.from_library) continue;
    std::map<std::uint32_t, unsigned> occurrences;
    std::vector<std::uint32_t> occ;
    // Count occurrences (not distinct slots) from the clause root.
    std::function<void(Cell)> count = [&](Cell c) {
      switch (c.tag()) {
        case Tag::VarSlot:
          ++occurrences[c.var_slot()];
          return;
        case Tag::Lst:
          count(ci.tmpl.cells[c.payload()]);
          count(ci.tmpl.cells[c.payload() + 1]);
          return;
        case Tag::Str: {
          const Cell f = ci.tmpl.cells[c.payload()];
          for (unsigned i = 1; i <= f.fun_arity(); ++i) {
            count(ci.tmpl.cells[c.payload() + i]);
          }
          return;
        }
        default:
          return;
      }
    };
    count(ci.tmpl.root);
    for (const auto& [slot, n] : occurrences) {
      if (n != 1) continue;
      const std::string& name = ci.tmpl.var_names[slot];
      if (name.empty() || name[0] == '_') continue;
      rep.sink.add("APL002", Severity::Warning,
                   SourceSpan{ci.span.line, ci.span.col}, clause_pred(syms, ci),
                   strf("singleton variable %s (use _%s to silence)",
                        name.c_str(), name.c_str()));
    }
  }

  // APL003: calls to undefined predicates.
  for (const auto& ci : prog.clauses) {
    if (ci.from_library) continue;
    walk_goals(syms, ci.tmpl, ci.body, [&](Cell g) {
      std::uint32_t sym = 0;
      unsigned arity = 0;
      if (g.tag() == Tag::Atm) {
        sym = g.symbol();
      } else if (g.tag() == Tag::Str) {
        const Cell f = ci.tmpl.cells[g.payload()];
        sym = f.fun_symbol();
        arity = f.fun_arity();
      } else {
        return;
      }
      if (arity == 0 &&
          (sym == k.cut || sym == k.truesym || sym == k.fail)) {
        return;
      }
      if (builtins.lookup(sym, arity).has_value()) return;
      if (prog.defines(sym, arity)) return;
      rep.sink.add("APL003", Severity::Warning,
                   SourceSpan{ci.span.line, ci.span.col}, clause_pred(syms, ci),
                   strf("call to undefined predicate %s",
                        pred_name(syms, sym, arity).c_str()));
    });
  }

  // ---- Determinacy-based passes ------------------------------------------

  rep.det = analyze_determinacy_program(prog, syms);

  // APL005: unreachable clauses.
  for (std::size_t idx : rep.det.unreachable) {
    const auto& ci = prog.clauses[idx];
    if (ci.from_library) continue;
    rep.sink.add("APL005", Severity::Warning,
                 SourceSpan{ci.span.line, ci.span.col}, clause_pred(syms, ci),
                 "unreachable clause: an earlier clause always commits first");
  }

  // APL006: overlapping clauses (pedantic).
  if (opts.pedantic) {
    for (const ClauseOverlap& ov : rep.det.overlapping) {
      const auto& ca = prog.clauses[ov.a];
      if (ca.from_library || prog.clauses[ov.b].from_library) continue;
      rep.sink.add(
          "APL006", Severity::Note,
          SourceSpan{prog.clauses[ov.b].span.line,
                     prog.clauses[ov.b].span.col},
          clause_pred(syms, ca),
          strf("clauses at lines %d and %d may both match the same call",
               ca.span.line, prog.clauses[ov.b].span.line));
    }
  }

  // APL007: directly-recursive predicates that are neither tabled nor
  // provably determinate re-derive the same subgoals on every alternative —
  // the exponential-recomputation class SLG tabling exists to collapse.
  // det_indexed counts as "provably det": structural recursion over a
  // ground first argument (nrev, append-style) yields each answer once.
  // Requiring a genuinely overlapping clause pair (not just "unproven det")
  // keeps structurally exclusive recursion like []/[H|T] walkers quiet:
  // their subgoal trees are linear even when the det proof falls short.
  std::set<PredKey> overlapping_preds;
  for (const ClauseOverlap& ov : rep.det.overlapping) {
    const auto& ci = prog.clauses[ov.a];
    overlapping_preds.insert(pred_key(ci.pred_sym, ci.pred_arity));
  }
  for (const auto& [pk, idxs] : prog.preds) {
    const auto& first = prog.clauses[idxs.front()];
    if (first.from_library) continue;
    if (prog.tabled.count(pk) != 0) continue;
    if (overlapping_preds.count(pk) == 0) continue;
    const auto it = rep.det.preds.find(pk);
    if (it != rep.det.preds.end() &&
        (it->second.det || it->second.det_indexed)) {
      continue;
    }
    bool recursive = false;
    for (std::size_t idx : idxs) {
      const auto& ci = prog.clauses[idx];
      walk_goals(syms, ci.tmpl, ci.body, [&](Cell g) {
        std::uint32_t sym = 0;
        unsigned arity = 0;
        if (g.tag() == Tag::Atm) {
          sym = g.symbol();
        } else if (g.tag() == Tag::Str) {
          const Cell f = ci.tmpl.cells[g.payload()];
          sym = f.fun_symbol();
          arity = f.fun_arity();
        } else {
          return;
        }
        if (pred_key(sym, arity) == pk) recursive = true;
      });
      if (recursive) break;
    }
    if (!recursive) continue;
    const std::string pred = clause_pred(syms, first);
    Diagnostic d{
        "APL007", Severity::Warning,
        SourceSpan{first.span.line, first.span.col}, pred,
        strf("directly recursive predicate %s is neither tabled nor provably "
             "determinate: backtracking re-derives its subgoals "
             "exponentially; consider adding ':- table %s.'",
             pred.c_str(), pred.c_str()),
        Fixit{}};
    // Machine-applicable: insert the table directive right before the
    // predicate's first clause (applied by `ace_lint --fix`).
    d.fixit.line = first.span.line;
    d.fixit.text = strf(":- table %s.", pred.c_str());
    rep.sink.add(std::move(d));
  }

  // APL008: a dynamic predicate asserted or retracted in one branch of a
  // '&'-parallel conjunction and read in a parallel sibling. Workers read
  // the clause database through epoch-pinned db::Snapshot views refreshed
  // at their own step boundaries, so whether the sibling observes the
  // update depends on agent scheduling. The snapshot-refresh idiom — a
  // snapshot_refresh/0 call at the start of the reading goal — makes the
  // read ordering explicit and silences the warning.
  {
    std::set<std::pair<std::size_t, PredKey>> reported;
    const std::uint32_t refresh_sym = syms.intern("snapshot_refresh");
    auto goal_pred = [&](const TermTemplate& tmpl, Cell g, std::uint32_t* sym,
                         unsigned* arity) {
      if (g.tag() == Tag::Atm) {
        *sym = g.symbol();
        *arity = 0;
        return true;
      }
      if (g.tag() == Tag::Str) {
        const Cell f = tmpl.cells[g.payload()];
        *sym = f.fun_symbol();
        *arity = f.fun_arity();
        return true;
      }
      return false;
    };
    // The predicate a clause/fact template denotes (assert/retract arg).
    auto clause_arg_pred = [&](const TermTemplate& tmpl, Cell t,
                               std::uint32_t* sym, unsigned* arity) {
      Cell head = t;
      if (t.tag() == Tag::Str) {
        const Cell f = tmpl.cells[t.payload()];
        if (f.fun_symbol() == k.neck && f.fun_arity() == 2) {
          head = tmpl.cells[t.payload() + 1];
        }
      }
      return goal_pred(tmpl, head, sym, arity);
    };
    for (const auto& ci : prog.clauses) {
      if (ci.from_library) continue;
      const TermTemplate& tmpl = ci.tmpl;
      auto process_chain = [&](Cell amp_node) {
        const std::vector<Cell> members = amp_members(syms, tmpl, amp_node);
        const std::size_t n = members.size();
        std::vector<std::set<PredKey>> mutated(n), called(n);
        std::vector<bool> refreshed(n, false);
        for (std::size_t i = 0; i < n; ++i) {
          walk_goals(syms, tmpl, members[i], [&](Cell g) {
            std::uint32_t sym = 0;
            unsigned arity = 0;
            if (!goal_pred(tmpl, g, &sym, &arity)) return;
            if (arity == 0 && sym == refresh_sym) refreshed[i] = true;
            const std::string& gn = syms.name(sym);
            if (arity == 1 && (gn == "assert" || gn == "asserta" ||
                               gn == "assertz" || gn == "retract")) {
              std::uint32_t tsym = 0;
              unsigned tarity = 0;
              if (clause_arg_pred(tmpl, tmpl.cells[g.payload() + 1], &tsym,
                                  &tarity) &&
                  prog.is_dynamic(tsym, tarity)) {
                mutated[i].insert(pred_key(tsym, tarity));
              }
              return;
            }
            called[i].insert(pred_key(sym, arity));
          });
        }
        for (std::size_t i = 0; i < n; ++i) {
          for (PredKey pk : mutated[i]) {
            for (std::size_t j = 0; j < n; ++j) {
              if (j == i || refreshed[j] || called[j].count(pk) == 0) {
                continue;
              }
              const std::size_t idx =
                  static_cast<std::size_t>(&ci - prog.clauses.data());
              if (!reported.emplace(idx, pk).second) continue;
              const std::string pred =
                  pred_name(syms, static_cast<std::uint32_t>(pk >> 12),
                            static_cast<unsigned>(pk & 0xFFF));
              rep.sink.add(
                  "APL008", Severity::Warning,
                  SourceSpan{ci.span.line, ci.span.col},
                  clause_pred(syms, ci),
                  strf("dynamic predicate %s is asserted/retracted in one "
                       "'&' branch and read in a parallel sibling; the "
                       "sibling reads an epoch-pinned snapshot, so whether "
                       "it sees the update depends on scheduling — start "
                       "the reading goal with snapshot_refresh/0 to order "
                       "the read, or move the update out of the parallel "
                       "region",
                       pred.c_str()));
            }
          }
        }
      };
      std::function<void(Cell)> scan = [&](Cell c) {
        if (c.tag() == Tag::Lst) {
          scan(tmpl.cells[c.payload()]);
          scan(tmpl.cells[c.payload() + 1]);
          return;
        }
        if (c.tag() != Tag::Str) return;
        const Cell f = tmpl.cells[c.payload()];
        if (f.fun_symbol() == k.amp && f.fun_arity() == 2) process_chain(c);
        for (unsigned i = 1; i <= f.fun_arity(); ++i) {
          scan(tmpl.cells[c.payload() + i]);
        }
      };
      scan(ci.body);
    }
  }

  // ---- Flow-sensitive passes (abstract interpretation) --------------------

  AbstractInterpreter interp(prog, syms);

  if (!opts.entries.empty()) {
    for (const std::string& q : opts.entries) {
      TermTemplate query = parse_term_text(syms, q);
      interp.analyze_entry(query);
    }
  } else {
    // Root predicates (never called by another predicate) under all-ground
    // arguments — the benchmark-driver shape.
    std::set<PredKey> called;
    for (const auto& ci : prog.clauses) {
      if (ci.from_library) continue;
      walk_goals(syms, ci.tmpl, ci.body, [&](Cell g) {
        std::uint32_t sym = 0;
        unsigned arity = 0;
        if (g.tag() == Tag::Atm) {
          sym = g.symbol();
        } else if (g.tag() == Tag::Str) {
          const Cell f = ci.tmpl.cells[g.payload()];
          sym = f.fun_symbol();
          arity = f.fun_arity();
        } else {
          return;
        }
        if (pred_key(sym, arity) != pred_key(ci.pred_sym, ci.pred_arity)) {
          called.insert(pred_key(sym, arity));
        }
      });
    }
    std::set<PredKey> roots;
    for (const auto& ci : prog.clauses) {
      if (ci.from_library) continue;
      const PredKey pk = pred_key(ci.pred_sym, ci.pred_arity);
      if (called.count(pk) == 0) roots.insert(pk);
    }
    if (roots.empty()) {
      for (const auto& ci : prog.clauses) {
        if (!ci.from_library) {
          roots.insert(pred_key(ci.pred_sym, ci.pred_arity));
        }
      }
    }
    for (PredKey pk : roots) {
      const auto sym = static_cast<std::uint32_t>(pk >> 12);
      const auto arity = static_cast<unsigned>(pk & 0xFFF);
      interp.analyze_call(sym, arity, ArgPattern::all_ground(arity));
    }
  }

  // Replay with an observer: APL001 at '&' conjunctions, APL004 at
  // arithmetic goals. Deduplicate across call patterns.
  std::set<std::tuple<std::size_t, std::string, std::uint64_t>> seen;
  auto observer = [&](std::size_t clause_idx, Cell goal,
                      const AbsState& pre) {
    if (clause_idx == AbstractInterpreter::kEntryClause) return;
    const auto& ci = prog.clauses[clause_idx];
    if (ci.from_library) return;
    const TermTemplate& tmpl = ci.tmpl;
    if (goal.tag() != Tag::Str) return;
    const Cell f = tmpl.cells[goal.payload()];
    const std::uint32_t sym = f.fun_symbol();
    const unsigned arity = f.fun_arity();
    const std::string& n = syms.name(sym);

    if (sym == k.amp && arity == 2) {
      const std::vector<Cell> members = amp_members(syms, tmpl, goal);
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          // A shared possibly-unbound variable between two parallel goals.
          std::uint32_t witness = 0;
          bool found = false;
          for (std::uint32_t u : collect_template_vars(tmpl, members[i])) {
            if (pre.is_ground(u)) continue;
            for (std::uint32_t v :
                 collect_template_vars(tmpl, members[j])) {
              if (pre.is_ground(v)) continue;
              if (u == v || pre.may_share(u, v)) {
                witness = u;
                found = true;
                break;
              }
            }
            if (found) break;
          }
          if (!found) continue;
          if (!seen.emplace(clause_idx, "APL001", goal.raw).second) continue;
          rep.sink.add(
              "APL001", Severity::Warning,
              SourceSpan{ci.span.line, ci.span.col}, clause_pred(syms, ci),
              strf("unsafe '&': parallel goals %zu and %zu may share unbound "
                   "variable %s (goals: %s | %s)",
                   i + 1, j + 1,
                   var_display_name(tmpl, witness).c_str(),
                   render_template(syms, tmpl, members[i], 974).c_str(),
                   render_template(syms, tmpl, members[j], 974).c_str()));
          return;  // one report per conjunction
        }
      }
      return;
    }

    const bool is_is = (n == "is" && arity == 2);
    const bool is_cmp =
        arity == 2 && (n == "<" || n == ">" || n == "=<" || n == ">=" ||
                       n == "=:=" || n == "=\\=");
    if (is_is || is_cmp) {
      // Arithmetic needs ground operands (is/2: the right-hand side).
      for (unsigned a = is_is ? 2 : 1; a <= 2; ++a) {
        const Cell operand = tmpl.cells[goal.payload() + a];
        for (std::uint32_t v : collect_template_vars(tmpl, operand)) {
          if (pre.is_ground(v)) continue;
          if (!seen.emplace(clause_idx, "APL004", goal.raw).second) return;
          rep.sink.add(
              "APL004", Severity::Warning,
              SourceSpan{ci.span.line, ci.span.col}, clause_pred(syms, ci),
              strf("%s may see non-ground operand (variable %s in %s)",
                   pred_name(syms, sym, arity).c_str(),
                   var_display_name(tmpl, v).c_str(),
                   render_template(syms, tmpl, goal, 999).c_str()));
          return;
        }
      }
    }
  };
  interp.report(observer);
  rep.num_summaries = interp.num_summaries();

  // APL009 (pedantic): provably-independent conjunctions left sequential —
  // the advisor dual of APL001. Re-uses the auto-annotator's analysis: any
  // unconditional group of >= 2 sequential conjuncts is a parallelization
  // the programmer left on the table. Existing '&' chains and CGEs are
  // opaque conjuncts to the annotator, so annotated code stays quiet.
  if (opts.pedantic) {
    AnnotateOptions aopts;
    aopts.entries = opts.entries;
    for (const ClauseAnalysis& ca : analyze_program(syms, source, aopts)) {
      for (const ParGroup& g : ca.par_groups) {
        if (g.goals.size() < 2 || !g.checks.empty()) continue;
        std::string members;
        for (std::size_t idx : g.goals) {
          if (!members.empty()) members += " & ";
          members += strf("%s/%u", ca.goals[idx].name.c_str(),
                          ca.goals[idx].arity);
        }
        rep.sink.add(
            "APL009", Severity::Note, SourceSpan{ca.line, ca.col}, ca.pred,
            strf("provably independent goals %s run sequentially; "
                 "ace_annotate would rewrite them with '&'",
                 members.c_str()));
      }
    }
  }

  rep.sink.sort_by_location();
  return rep;
}

}  // namespace ace
